package sentinel_test

import (
	"fmt"

	sentinel "repro"
)

// ExampleMaxSet shows the paper's Definition 5.1: the composite timestamp
// of a set of primitive stamps keeps only the mutually concurrent
// "latest" ones.
func ExampleMaxSet() {
	early := sentinel.DeriveStamp("siteA", 100, 10) // global 10
	late1 := sentinel.DeriveStamp("siteB", 500, 10) // global 50
	late2 := sentinel.DeriveStamp("siteC", 505, 10) // global 50: concurrent with late1
	fmt.Println(sentinel.MaxSet([]sentinel.Stamp{early, late1, late2}))
	// Output: {(siteB, 50, 500), (siteC, 50, 505)}
}

// ExampleSetStamp_Relate classifies the Section 5.1 temporal relations.
func ExampleSetStamp_Relate() {
	a := sentinel.NewSetStamp(sentinel.DeriveStamp("x", 100, 10))
	b := sentinel.NewSetStamp(sentinel.DeriveStamp("y", 110, 10)) // one granule apart
	c := sentinel.NewSetStamp(sentinel.DeriveStamp("z", 500, 10))
	fmt.Println(a.Relate(b), a.Relate(c), c.Relate(a))
	// Output: ~ < >
}

// ExampleMax shows the Max operator joining concurrent timestamps
// (Definition 5.9 / Theorem 5.4).
func ExampleMax() {
	a := sentinel.NewSetStamp(sentinel.DeriveStamp("x", 100, 10))
	b := sentinel.NewSetStamp(sentinel.DeriveStamp("y", 105, 10))
	fmt.Println(sentinel.Max(a, b))
	// Output: {(x, 10, 100), (y, 10, 105)}
}

// ExampleParseExpr parses the Snoop concrete syntax, including an
// attribute mask.
func ExampleParseExpr() {
	e, err := sentinel.ParseExpr(`Deposit[amount >= 1000] ; Withdraw`)
	if err != nil {
		panic(err)
	}
	fmt.Println(e)
	// Output: (Deposit[amount >= 1000] ; Withdraw)
}

// ExampleSystem runs a tiny two-site detection end to end.
func ExampleSystem() {
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{
		Net: sentinel.NetConfig{BaseLatency: 10},
	})
	hub := sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	_ = sys.Declare("Buy", sentinel.Explicit)
	_ = sys.Declare("Sell", sentinel.Explicit)
	if _, err := sys.DefineAt("hub", "RoundTrip", "Buy ; Sell", sentinel.Chronicle); err != nil {
		panic(err)
	}
	_ = sys.Subscribe("RoundTrip", func(o *sentinel.Occurrence) {
		fmt.Println("detected", o.Type, "with", len(o.Constituents), "constituents")
	})
	edge.MustRaise("Buy", sentinel.Explicit, nil)
	sys.Run(400, 50) // two global granules: unambiguously ordered
	hub.MustRaise("Sell", sentinel.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		panic(err)
	}
	// Output: detected RoundTrip with 2 constituents
}
