// Package sentinel is the public API of this reproduction of Yang &
// Chakravarthy, "Formal Semantics of Composite Events for Distributed
// Environments" (ICDE 1999): a Sentinel-style composite event detection
// engine — centralized and distributed — built on the paper's
// distributed timestamp algebra.
//
// The package re-exports the pieces a downstream user needs:
//
//   - the timestamp algebra (Stamp, SetStamp, the <, ~, ⪯ relations, the
//     Max operator) from internal/core;
//   - the simulated approximated-global-time base from internal/clock;
//   - the Snoop event expression language from internal/expr;
//   - the detector with its parameter contexts from internal/detector;
//   - the multi-site simulation (sites, network, watermark reordering)
//     from internal/ddetect;
//   - the active-database substrate and ECA rules from internal/activedb
//     and internal/rules.
//
// # Architecture: the staged detection pipeline
//
// Every System tick runs an explicit five-stage pipeline
// (internal/pipeline composed by internal/ddetect):
//
//	ingest    — site raises: stamping, simultaneity enforcement,
//	            journaling, hand-off to the bus; watermark heartbeats
//	transport — batch bus drain + per-link FIFO restore
//	release   — watermark release of stable events (ReleaseTotalOrder /
//	            ReleaseExtension) into per-site detect inboxes
//	detect    — per-site detector graphs over the released batches,
//	            in parallel across sites when PipelineConfig.Workers > 1
//	publish   — subscriber fan-out, hierarchical forwarding, stats
//
// Only the detect stage runs on worker goroutines, and each worker owns
// one site's state outright; everything that touches shared state (the
// bus and its seeded RNG, counters, user handlers) happens afterwards on
// the crank goroutine in site-ID order.  Released batches are already
// deterministically ordered by (watermark global, site, local, arrival),
// so sequential and parallel runs produce bit-for-bit identical
// occurrence streams — set SystemConfig.Pipeline.Workers freely.
// Per-stage counters and wall-clock latency histograms are exposed via
// SystemStats.Stages, and PipelineConfig.OnStage hooks every stage tick.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	sys := sentinel.MustNewSystem(sentinel.SystemConfig{})
//	sys.MustAddSite("ny", 0, 0)
//	sys.MustAddSite("ldn", 30, 0)
//	_ = sys.Declare("Buy", sentinel.Explicit)
//	_ = sys.Declare("Sell", sentinel.Explicit)
//	sys.DefineAt("ny", "RoundTrip", "Buy ; Sell", sentinel.Chronicle)
//	sys.Subscribe("RoundTrip", func(o *sentinel.Occurrence) { ... })
//	sys.Site("ldn").MustRaise("Buy", sentinel.Explicit, nil)
//	sys.Run(1000, 100)
package sentinel

import (
	"repro/internal/activedb"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ddetect"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/live"
	"repro/internal/network"
	"repro/internal/pipeline"
	"repro/internal/rules"
)

// Timestamp algebra (Sections 4 and 5 of the paper).
type (
	// SiteID identifies a site.
	SiteID = core.SiteID
	// Stamp is a distributed primitive timestamp (site, global, local).
	Stamp = core.Stamp
	// SetStamp is a distributed composite timestamp: a set of mutually
	// concurrent "latest" primitive stamps.
	SetStamp = core.SetStamp
	// Relation classifies two primitive stamps.
	Relation = core.Relation
	// SetRelation classifies two composite stamps.
	SetRelation = core.SetRelation
)

// Event model.
type (
	// Occurrence is one event occurrence, primitive or composite.
	Occurrence = event.Occurrence
	// Params is an occurrence's parameter list.
	Params = event.Params
	// Class is a primitive event class.
	Class = event.Class
	// Registry catalogs declared event types.
	Registry = event.Registry
)

// Expression language.
type (
	// Expr is an event expression AST node.
	Expr = expr.Node
)

// Detection.
type (
	// Context is a Snoop parameter context.
	Context = detector.Context
	// Detector is the single-site detection engine.
	Detector = detector.Detector
	// Definition is a compiled named composite event.
	Definition = detector.Definition
	// Handler receives detected occurrences.
	Handler = detector.Handler
	// TimeSource supplies a detector's local time.
	TimeSource = detector.TimeSource
)

// Distributed simulation.
type (
	// System is the multi-site detection deployment.
	System = ddetect.System
	// Site is one simulated site runtime.
	Site = ddetect.Site
	// SystemConfig configures a System.
	SystemConfig = ddetect.Config
	// SystemStats aggregates a System's counters.
	SystemStats = ddetect.Stats
	// NetConfig configures the simulated network.
	NetConfig = network.Config
	// ClockConfig configures the simulated time base.
	ClockConfig = clock.Config
	// Microticks is simulated time in reference granules.
	Microticks = clock.Microticks
	// ReleaseMode selects the watermark release policy.
	ReleaseMode = ddetect.ReleaseMode
	// Runtime makes a System safe for concurrent producers.
	Runtime = live.Runtime
	// PipelineConfig tunes the staged execution: Workers is the
	// detect-stage worker count (0 = sequential legacy behavior, with
	// identical results either way) and OnStage hooks instrumentation.
	PipelineConfig = pipeline.Config
	// StageEvent is one per-stage instrumentation sample.
	StageEvent = pipeline.StageEvent
	// StageStats aggregates one pipeline stage's counters and latency
	// histogram; SystemStats.Stages holds one per stage.
	StageStats = pipeline.StageStats
	// StageHistogram is a power-of-two-bucketed wall-clock histogram.
	StageHistogram = pipeline.Histogram
)

// Watermark release modes.
const (
	// ReleaseTotalOrder is deterministic and centralized-equivalent.
	ReleaseTotalOrder = ddetect.ReleaseTotalOrder
	// ReleaseExtension trades determinism among concurrent events for
	// two granules less latency.
	ReleaseExtension = ddetect.ReleaseExtension
)

// Active database and ECA rules.
type (
	// Store is the in-memory active object store.
	Store = activedb.Store
	// Tx is a store transaction.
	Tx = activedb.Tx
	// Object is a stored object.
	Object = activedb.Object
	// Rule is an ECA rule.
	Rule = rules.Rule
	// RuleManager owns a rule set.
	RuleManager = rules.Manager
	// Coupling is an ECA coupling mode.
	Coupling = rules.Coupling
)

// Parameter contexts.
const (
	Unrestricted = detector.Unrestricted
	Recent       = detector.Recent
	Chronicle    = detector.Chronicle
	Continuous   = detector.Continuous
	Cumulative   = detector.Cumulative
)

// Event classes.
const (
	Temporal    = event.Temporal
	Database    = event.Database
	Transaction = event.Transaction
	Explicit    = event.Explicit
	Composite   = event.Composite
)

// Coupling modes.
const (
	Immediate = rules.Immediate
	Deferred  = rules.Deferred
	Detached  = rules.Detached
)

// Set relations.
const (
	SetBefore       = core.SetBefore
	SetAfter        = core.SetAfter
	SetConcurrent   = core.SetConcurrent
	SetIncomparable = core.SetIncomparable
)

// Algebra entry points.
var (
	// MaxSet computes max(ST) per Definition 5.1.
	MaxSet = core.MaxSet
	// Max is the composite-timestamp Max operator (Definition 5.9 /
	// Theorem 5.4).
	Max = core.Max
	// MaxAll folds Max over several timestamps.
	MaxAll = core.MaxAll
	// NewSetStamp builds a composite timestamp from primitive stamps.
	NewSetStamp = core.NewSetStamp
	// DeriveStamp builds a primitive stamp from a local tick.
	DeriveStamp = core.DeriveStamp
)

// Language entry points.
var (
	// ParseExpr parses the Snoop concrete syntax.
	ParseExpr = expr.Parse
	// MustParseExpr panics on parse errors.
	MustParseExpr = expr.MustParse
)

// Engine entry points.
var (
	// NewDetector creates a single-site detector.
	NewDetector = detector.New
	// NewSystem creates a distributed system.
	NewSystem = ddetect.NewSystem
	// MustNewSystem panics on configuration errors.
	MustNewSystem = ddetect.MustNewSystem
	// NewRegistry creates an event type registry.
	NewRegistry = event.NewRegistry
	// NewStore creates an active object store.
	NewStore = activedb.NewStore
	// NewRuleManager creates an ECA rule manager.
	NewRuleManager = rules.NewManager
	// PaperClockConfig is the Section 5.1 clock scale.
	PaperClockConfig = clock.PaperConfig
	// NewRuntime wraps a System for concurrent producers.
	NewRuntime = live.New
)
