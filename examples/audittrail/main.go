// Audit trail: the active-database usage the paper's semantics was built
// for.  An in-memory object store raises database and transaction events
// into a site's detector; composite events over those primitives drive
// ECA rules:
//
//   - BigMove   = Account.update ; Account.update       (Chronicle)
//     two updates to accounts in one window; the rule's condition checks
//     the amounts and writes an audit record (inside a fresh store
//     transaction — a detached action, in Sentinel terms);
//   - Rollback  = Account.update ; tx.abort             (Recent)
//     an update whose transaction later aborted — logged for forensics.
//
// Run with: go run ./examples/audittrail
package main

import (
	"fmt"

	sentinel "repro"
)

func main() {
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{})
	branch := sys.MustAddSite("branch", 0, 0)

	// Declare the event types the Account class and transactions raise.
	for _, typ := range []string{
		"Account.insert", "Account.update", "Account.delete", "Account.retrieve",
		"AuditRecord.insert", "AuditRecord.update", "AuditRecord.delete", "AuditRecord.retrieve",
		"tx.begin", "tx.commit", "tx.abort",
	} {
		if err := sys.Declare(typ, sentinel.Explicit); err != nil {
			panic(err)
		}
	}

	must := func(_ *sentinel.Definition, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(sys.DefineAt("branch", "BigMove", "Account.update ; Account.update", sentinel.Chronicle))
	must(sys.DefineAt("branch", "Rollback", "Account.update ; tx.abort", sentinel.Recent))

	// The store raises its events through the site, so they are stamped
	// by the site clock and flow into detection like any other primitive.
	store := sentinel.NewStore(storeSink{site: branch, sys: sys})
	for _, class := range []string{"Account", "AuditRecord"} {
		if err := store.DeclareClass(class); err != nil {
			panic(err)
		}
	}

	mgr := sentinel.NewRuleManager(branch.Detector(), 8)
	if _, err := mgr.Add(sentinel.Rule{
		Name: "audit-big-moves", EventName: "BigMove", Coupling: sentinel.Detached,
		Condition: func(o *sentinel.Occurrence) bool {
			total := 0
			for _, c := range o.Flatten() {
				if v, ok := c.Params["delta"].(int); ok {
					total += v
				}
			}
			return total >= 1000
		},
		Action: func(o *sentinel.Occurrence) error {
			tx := store.Begin()
			if _, err := tx.Insert("AuditRecord", map[string]any{"stamp": o.Stamp.String()}); err != nil {
				tx.Abort()
				return err
			}
			fmt.Printf("[rule audit-big-moves] audit record written for %v\n", o.Stamp)
			return tx.Commit()
		},
	}); err != nil {
		panic(err)
	}
	if _, err := mgr.Add(sentinel.Rule{
		Name: "log-rollbacks", EventName: "Rollback",
		Action: func(o *sentinel.Occurrence) error {
			upd := o.Flatten()[0]
			fmt.Printf("[rule log-rollbacks] update to oid %v was rolled back\n", upd.Params["oid"])
			return nil
		},
	}); err != nil {
		panic(err)
	}

	// --- business transactions ---
	fmt.Println("--- seed accounts ---")
	seed := store.Begin()
	alice, _ := seed.Insert("Account", map[string]any{"owner": "alice", "balance": 5000})
	bob, _ := seed.Insert("Account", map[string]any{"owner": "bob", "balance": 300})
	if err := seed.Commit(); err != nil {
		panic(err)
	}

	fmt.Println("--- large transfer (audited) ---")
	xfer := store.Begin()
	if err := xfer.Update(alice.OID, map[string]any{"balance": 4200, "delta": 800}); err != nil {
		panic(err)
	}
	sys.Step(50) // a few local ticks pass between the two legs
	if err := xfer.Update(bob.OID, map[string]any{"balance": 1100, "delta": 800}); err != nil {
		panic(err)
	}
	if err := xfer.Commit(); err != nil {
		panic(err)
	}
	// Detached actions run as their own transaction after commit.
	mgr.RunDetached()

	fmt.Println("--- aborted withdrawal ---")
	bad := store.Begin()
	if err := bad.Update(bob.OID, map[string]any{"balance": 0, "delta": 1100}); err != nil {
		panic(err)
	}
	sys.Step(50)
	if err := bad.Abort(); err != nil {
		panic(err)
	}
	mgr.RunDetached()

	audits := store.Select("AuditRecord", nil)
	balance := store.Select("Account", func(o *sentinel.Object) bool { return o.Attrs["owner"] == "bob" })
	fmt.Printf("--- final: %d audit record(s); bob's balance %v (abort rolled back)\n",
		len(audits), balance[0].Attrs["balance"])
	if errs := mgr.Errs(); len(errs) > 0 {
		fmt.Println("rule errors:", errs)
	}
}

// storeSink routes store events through the site so they are stamped by
// its clock and participate in detection.  Each raise advances the
// simulated clock by one local tick so successive database events get
// distinct stamps (the paper's assumption that no two database events are
// simultaneous).
type storeSink struct {
	site *sentinel.Site
	sys  *sentinel.System
}

func (s storeSink) RaiseDB(typ string, class sentinel.Class, params sentinel.Params) {
	s.sys.Step(10) // one local tick at the paper scale
	s.site.MustRaise(typ, class, params)
	s.sys.Step(10)
}
