// Stock monitor: the classic active-database motivation.  Price ticks
// arrive at three exchange sites; composite events detect cross-site
// patterns and ECA rules react:
//
//   - Spike      = IBM.rise ; IBM.rise ; IBM.rise   (Chronicle)
//     three successive rises anywhere in the system — the rule issues a
//     (simulated) portfolio rebalance;
//   - Straddle   = NYSE.halt AND LSE.halt           (Chronicle)
//     both exchanges halted, possibly concurrently — the rule pages the
//     operator immediately;
//   - QuietClose = NOT(IBM.trade)[Bell.open, Bell.close]  (Chronicle)
//     a session with no IBM trade at all.
//
// Run with: go run ./examples/stockmonitor
package main

import (
	"fmt"
	"math/rand"

	sentinel "repro"
)

func main() {
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{
		Net: sentinel.NetConfig{BaseLatency: 15, Jitter: 30, Seed: 11},
	})
	nyse := sys.MustAddSite("nyse", -20, 0)
	lse := sys.MustAddSite("lse", 25, 0)
	hub := sys.MustAddSite("hub", 0, 0)

	for _, typ := range []string{"IBM.rise", "IBM.trade", "NYSE.halt", "LSE.halt", "Bell.open", "Bell.close"} {
		if err := sys.Declare(typ, sentinel.Explicit); err != nil {
			panic(err)
		}
	}

	must := func(_ *sentinel.Definition, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(sys.DefineAt("hub", "Spike", "(IBM.rise ; IBM.rise) ; IBM.rise", sentinel.Chronicle))
	must(sys.DefineAt("hub", "Straddle", "NYSE.halt AND LSE.halt", sentinel.Chronicle))
	must(sys.DefineAt("hub", "QuietClose", "NOT(IBM.trade)[Bell.open, Bell.close]", sentinel.Chronicle))

	// ECA rules at the hub.
	mgr := sentinel.NewRuleManager(sys.Site("hub").Detector(), 8)
	mustRule := func(r sentinel.Rule) {
		if _, err := mgr.Add(r); err != nil {
			panic(err)
		}
	}
	mustRule(sentinel.Rule{
		Name: "rebalance", EventName: "Spike", Priority: 5,
		Condition: func(o *sentinel.Occurrence) bool {
			// Only rebalance when the spike is fast: constituents within
			// 10 global granules.
			flat := o.Flatten()
			return flat[len(flat)-1].Stamp.MaxGlobal()-flat[0].Stamp.MaxGlobal() <= 10
		},
		Action: func(o *sentinel.Occurrence) error {
			fmt.Printf("[rule rebalance] spike ending at %v — rebalancing portfolio\n", o.Stamp)
			return nil
		},
	})
	mustRule(sentinel.Rule{
		Name: "page-operator", EventName: "Straddle", Priority: 10, Coupling: sentinel.Immediate,
		Action: func(o *sentinel.Occurrence) error {
			fmt.Printf("[rule page-operator] both exchanges halted, stamp %v (concurrent components: %d)\n",
				o.Stamp, len(o.Stamp))
			return nil
		},
	})
	mustRule(sentinel.Rule{
		Name: "audit-quiet-session", EventName: "QuietClose", Coupling: sentinel.Deferred,
		Action: func(o *sentinel.Occurrence) error {
			fmt.Printf("[rule audit-quiet-session] session with no IBM trades: %v\n", o.Stamp)
			return nil
		},
	})

	// --- Session 1: a quiet session (no trades) plus a fast spike. ---
	fmt.Println("--- session 1 ---")
	hub.MustRaise("Bell.open", sentinel.Explicit, nil)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		sys.Run(sys.Now()+300+rng.Int63n(100), 50)
		site := []*sentinel.Site{nyse, lse}[i%2]
		site.MustRaise("IBM.rise", sentinel.Explicit, sentinel.Params{"px": 100 + i})
	}
	sys.Run(sys.Now()+400, 50)
	hub.MustRaise("Bell.close", sentinel.Explicit, nil)
	if err := sys.Settle(200); err != nil {
		panic(err)
	}
	// End of "transaction": run deferred actions.
	if n := mgr.FlushDeferred(); n > 0 {
		fmt.Printf("(flushed %d deferred actions)\n", n)
	}

	// --- Session 2: concurrent halts at both exchanges. ---
	fmt.Println("--- session 2 ---")
	hub.MustRaise("Bell.open", sentinel.Explicit, nil)
	sys.Run(sys.Now()+300, 50)
	nyse.MustRaise("IBM.trade", sentinel.Explicit, sentinel.Params{"qty": 10})
	sys.Run(sys.Now()+200, 50)
	// Halts raised in the same instant at two sites: concurrent stamps.
	nyse.MustRaise("NYSE.halt", sentinel.Explicit, nil)
	lse.MustRaise("LSE.halt", sentinel.Explicit, nil)
	sys.Run(sys.Now()+400, 50)
	hub.MustRaise("Bell.close", sentinel.Explicit, nil)
	if err := sys.Settle(200); err != nil {
		panic(err)
	}
	if n := mgr.FlushDeferred(); n > 0 {
		fmt.Printf("(flushed %d deferred actions)\n", n)
	} else {
		fmt.Println("(no deferred actions: the session traded)")
	}

	st := sys.Stats()
	rs := mgr.Stats()
	fmt.Printf("--- stats: raised=%d detections=%d rulesTriggered=%d executed=%d\n",
		st.Raised, st.Detections, rs.Triggered, rs.Executed)
	if errs := mgr.Errs(); len(errs) > 0 {
		fmt.Println("rule errors:", errs)
	}
}
