// Quickstart: define composite events over two simulated sites, raise
// primitive events, and watch detections with their distributed max-set
// timestamps.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	sentinel "repro"
)

func main() {
	// A system with the paper's clock scale (local ticks of 1/100s,
	// global granularity 1/10s, Π < 1/10s) and a mildly jittery network.
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{
		Net: sentinel.NetConfig{BaseLatency: 20, Jitter: 40, Seed: 1},
	})

	// Two sites with skewed clocks (both within Π/2 of the reference).
	ny := sys.MustAddSite("ny", -30, 0)
	ldn := sys.MustAddSite("ldn", 40, 0)

	// Primitive event types.
	for _, typ := range []string{"Buy", "Sell"} {
		if err := sys.Declare(typ, sentinel.Explicit); err != nil {
			panic(err)
		}
	}

	// Two composite events hosted at ny:
	//   RoundTrip — a Buy followed (in the distributed happen-before
	//   order of the paper) by a Sell;
	//   Flurry — a Buy and a Sell in any order, even concurrent.
	if _, err := sys.DefineAt("ny", "RoundTrip", "Buy ; Sell", sentinel.Chronicle); err != nil {
		panic(err)
	}
	if _, err := sys.DefineAt("ny", "Flurry", "Buy AND Sell", sentinel.Chronicle); err != nil {
		panic(err)
	}
	report := func(o *sentinel.Occurrence) {
		fmt.Printf("detected %-10s stamp=%v\n", o.Type, o.Stamp)
		for _, c := range o.Flatten() {
			fmt.Printf("  constituent %-5s from %-3s at local tick %d\n",
				c.Type, c.Site, c.Stamp[0].Local)
		}
	}
	if err := sys.Subscribe("RoundTrip", report); err != nil {
		panic(err)
	}
	if err := sys.Subscribe("Flurry", report); err != nil {
		panic(err)
	}

	// Scenario 1: a Buy in London clearly before a Sell in New York
	// (two global granules apart) — both RoundTrip and Flurry fire.
	fmt.Println("--- scenario 1: ordered Buy ; Sell ---")
	ldn.MustRaise("Buy", sentinel.Explicit, sentinel.Params{"qty": 100})
	sys.Run(sys.Now()+400, 50) // 4 granules later
	ny.MustRaise("Sell", sentinel.Explicit, sentinel.Params{"qty": 100})
	if err := sys.Settle(100); err != nil {
		panic(err)
	}

	// Scenario 2: a Buy and a Sell within the same global granule at
	// different sites: concurrent under the 2g_g-restricted order, so the
	// sequence does NOT fire but the conjunction does — the heart of the
	// paper's semantics.
	fmt.Println("--- scenario 2: concurrent Buy, Sell ---")
	ldn.MustRaise("Buy", sentinel.Explicit, sentinel.Params{"qty": 5})
	ny.MustRaise("Sell", sentinel.Explicit, sentinel.Params{"qty": 5})
	if err := sys.Settle(100); err != nil {
		panic(err)
	}

	st := sys.Stats()
	fmt.Printf("--- stats: raised=%d released=%d detections=%d meanLatency=%.1f microticks\n",
		st.Raised, st.Released, st.Detections, st.MeanLatency())
}
