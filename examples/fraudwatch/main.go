// Fraud watch: event masks and concurrent producers.
//
// Teller goroutines at two branches raise Transfer events concurrently
// through the live.Runtime (the system itself stays single-threaded —
// share memory by communicating).  Masked composite events watch only the
// interesting slice of the stream:
//
//	Structuring = Transfer[amount < 10000] ; Transfer[amount < 10000] ; Transfer[amount < 10000]
//	  three sub-reporting-threshold transfers in a row (classic
//	  structuring pattern);
//	Whale = Transfer[amount >= 250000]
//	  any single transfer above a quarter million.
//
// Run with: go run ./examples/fraudwatch
package main

import (
	"fmt"
	"math/rand"
	"sync"

	sentinel "repro"
)

func main() {
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{
		Net: sentinel.NetConfig{BaseLatency: 10, Jitter: 15, Seed: 8},
	})
	sys.MustAddSite("hq", 0, 0)
	sys.MustAddSite("north", 20, 0)
	sys.MustAddSite("south", -20, 0)
	if err := sys.Declare("Transfer", sentinel.Explicit); err != nil {
		panic(err)
	}

	must := func(_ *sentinel.Definition, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(sys.DefineAt("hq", "Structuring",
		"(Transfer[amount < 10000] ; Transfer[amount < 10000]) ; Transfer[amount < 10000]",
		sentinel.Chronicle))
	must(sys.DefineAt("hq", "Whale", "Transfer[amount >= 250000]", sentinel.Recent))

	var mu sync.Mutex
	alerts := map[string]int{}
	report := func(o *sentinel.Occurrence) {
		mu.Lock()
		alerts[o.Type]++
		mu.Unlock()
		total := 0
		for _, c := range o.Flatten() {
			total += c.Params["amount"].(int)
		}
		fmt.Printf("[alert %-11s] total=%d stamp=%v\n", o.Type, total, o.Stamp)
	}
	if err := sys.Subscribe("Structuring", report); err != nil {
		panic(err)
	}
	if err := sys.Subscribe("Whale", report); err != nil {
		panic(err)
	}

	// The runtime owns the system from here; tellers are free to race.
	rt := sentinel.NewRuntime(sys)
	defer rt.Close()

	var wg sync.WaitGroup
	for t, branch := range []sentinel.SiteID{"north", "south"} {
		t, branch := t, branch
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t) + 1))
			for i := 0; i < 12; i++ {
				amount := 3_000 + rng.Intn(6_000) // mostly sub-threshold
				if i == 7 && t == 0 {
					amount = 300_000 // one whale from the north branch
				}
				if _, err := rt.Raise(branch, "Transfer", sentinel.Explicit,
					sentinel.Params{"amount": amount, "teller": t}); err != nil {
					panic(err)
				}
				if err := rt.Step(300); err != nil { // ticks pass between transfers
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if err := rt.Settle(1_000); err != nil {
		panic(err)
	}

	st, err := rt.Stats()
	if err != nil {
		panic(err)
	}
	mu.Lock()
	fmt.Printf("--- stats: raised=%d structuring=%d whale=%d\n",
		st.Raised, alerts["Structuring"], alerts["Whale"])
	mu.Unlock()
}
