// Hospital monitoring: temporal operators over distributed wards.
//
//   - VitalsWatch = P(Admit, 30s, Discharge)            (Recent)
//     while a patient is admitted, a periodic vitals check fires every
//     30 simulated seconds until discharge;
//   - SessionLog  = A*(Admit, Alarm, Discharge)         (Continuous)
//     all alarms raised during a stay, delivered as one cumulative
//     occurrence at discharge;
//   - Escalate    = PLUS(Alarm, 10s)                    (Recent)
//     ten seconds after any alarm, an escalation event fires (the rule
//     below cancels the page if a nurse acknowledged in time).
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"

	sentinel "repro"
)

func main() {
	sys := sentinel.MustNewSystem(sentinel.SystemConfig{
		Net: sentinel.NetConfig{BaseLatency: 10, Jitter: 20, Seed: 5},
	})
	icu := sys.MustAddSite("icu", 15, 0)
	wardA := sys.MustAddSite("wardA", -10, 0)

	for _, typ := range []string{"Admit", "Discharge", "Alarm", "Ack"} {
		if err := sys.Declare(typ, sentinel.Explicit); err != nil {
			panic(err)
		}
	}

	must := func(_ *sentinel.Definition, err error) {
		if err != nil {
			panic(err)
		}
	}
	// All composite definitions hosted at the ICU site, which therefore
	// receives forwarded events from the wards.
	must(sys.DefineAt("icu", "VitalsWatch", "P(Admit, 30s, Discharge)", sentinel.Recent))
	must(sys.DefineAt("icu", "SessionLog", "A*(Admit, Alarm, Discharge)", sentinel.Continuous))
	must(sys.DefineAt("icu", "Escalate", "PLUS(Alarm, 10s)", sentinel.Recent))
	// A pass-through definition turns the primitive Ack into a named
	// composite the dashboard can subscribe to.
	must(sys.DefineAt("icu", "AckSeen", "Ack", sentinel.Recent))

	acked := false
	subscribe := func(name string, h sentinel.Handler) {
		if err := sys.Subscribe(name, h); err != nil {
			panic(err)
		}
	}
	subscribe("VitalsWatch", func(o *sentinel.Occurrence) {
		tick := o.Flatten()[1]
		fmt.Printf("[vitals] periodic check #%v at stamp %v\n", tick.Params["count"], o.Stamp)
	})
	subscribe("SessionLog", func(o *sentinel.Occurrence) {
		alarms := 0
		for _, c := range o.Flatten() {
			if c.Type == "Alarm" {
				alarms++
			}
		}
		fmt.Printf("[session] discharge summary: %d alarm(s) during stay, stamp %v\n", alarms, o.Stamp)
	})
	subscribe("Escalate", func(o *sentinel.Occurrence) {
		if acked {
			fmt.Println("[escalate] alarm was acknowledged in time — no page")
			return
		}
		fmt.Printf("[escalate] alarm unacknowledged for 10s — paging physician (stamp %v)\n", o.Stamp)
	})
	subscribe("AckSeen", func(*sentinel.Occurrence) { acked = true })

	// Admission at ward A; the ICU dashboard follows the stay.
	fmt.Println("--- patient stay ---")
	wardA.MustRaise("Admit", sentinel.Explicit, sentinel.Params{"patient": "p-17"})

	// 70 simulated seconds pass: two vitals checks (at 30s and 60s).
	sys.Run(sys.Now()+70_000, 1_000)

	// An alarm, acknowledged 4 seconds later: escalation finds it acked.
	icu.MustRaise("Alarm", sentinel.Explicit, sentinel.Params{"code": "SpO2"})
	sys.Run(sys.Now()+4_000, 500)
	icu.MustRaise("Ack", sentinel.Explicit, nil)
	sys.Run(sys.Now()+8_000, 500)

	// A second alarm that nobody acknowledges.
	acked = false
	wardA.MustRaise("Alarm", sentinel.Explicit, sentinel.Params{"code": "HR"})
	sys.Run(sys.Now()+12_000, 500)

	// Discharge ends the periodic watch and emits the session log.
	wardA.MustRaise("Discharge", sentinel.Explicit, nil)
	if err := sys.Settle(300); err != nil {
		panic(err)
	}

	st := sys.Stats()
	fmt.Printf("--- stats: raised=%d detections=%d forwarded=%d heartbeats=%d\n",
		st.Raised, st.Detections, st.Forwarded, st.Heartbeats)
}
