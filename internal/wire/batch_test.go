package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
)

func sampleEnvelopes() []Envelope {
	o1 := event.NewPrimitive("Deposit", event.Database, stamp("bank1", 11), event.Params{
		"amount": int64(40), "memo": "salary",
	})
	o1.Seq = 3
	o2 := event.NewPrimitive("Withdraw", event.Explicit, stamp("bank2", 17), nil)
	o2.Seq = 4
	return []Envelope{
		{Kind: KindEvent, Occ: o1, RaisedAt: 100},
		{Kind: KindHeartbeat, Global: 55, RaisedAt: 120},
		{Kind: KindEvent, Occ: o2, RaisedAt: 140},
	}
}

func encodeBatch(t *testing.T, envs []Envelope) []byte {
	t.Helper()
	buf, err := AppendBatch(nil, envs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	return buf
}

func decodeBatchAll(buf []byte) ([]Envelope, error) {
	var out []Envelope
	err := DecodeBatch(buf, func(e Envelope) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

func TestBatchRoundTrip(t *testing.T) {
	envs := sampleEnvelopes()
	buf := encodeBatch(t, envs)
	if !IsBatch(buf) {
		t.Fatalf("IsBatch = false on a batch frame")
	}
	got, err := decodeBatchAll(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i, e := range got {
		w := envs[i]
		if e.Kind != w.Kind || e.Global != w.Global || e.RaisedAt != w.RaisedAt {
			t.Fatalf("envelope %d = %+v, want %+v", i, e, w)
		}
		if (e.Occ == nil) != (w.Occ == nil) {
			t.Fatalf("envelope %d Occ presence mismatch", i)
		}
		if e.Occ != nil && !occurrenceEqual(e.Occ, w.Occ) {
			t.Fatalf("envelope %d occurrence mismatch", i)
		}
	}
}

// Each batch member must be byte-identical to its single-envelope frame:
// the batch adds framing, never re-encodes.
func TestBatchMembersMatchSingleFrames(t *testing.T) {
	envs := sampleEnvelopes()
	buf := encodeBatch(t, envs)
	r := &reader{buf: buf}
	if k, _ := r.byte(); k != KindBatch {
		t.Fatalf("kind = %d", k)
	}
	n, err := r.uvarint()
	if err != nil || n != uint64(len(envs)) {
		t.Fatalf("count = %d, %v", n, err)
	}
	for i, e := range envs {
		l, err := r.uvarint()
		if err != nil {
			t.Fatalf("member %d length: %v", i, err)
		}
		member := r.buf[r.pos : r.pos+int(l)]
		r.pos += int(l)
		single, err := Encode(e)
		if err != nil {
			t.Fatalf("Encode member %d: %v", i, err)
		}
		if string(member) != string(single) {
			t.Fatalf("member %d bytes differ from single-envelope frame", i)
		}
	}
}

func TestEncodeAppendMatchesEncode(t *testing.T) {
	for i, e := range sampleEnvelopes() {
		a, err := Encode(e)
		if err != nil {
			t.Fatalf("Encode %d: %v", i, err)
		}
		prefix := []byte{0xde, 0xad}
		b, err := EncodeAppend(prefix, e)
		if err != nil {
			t.Fatalf("EncodeAppend %d: %v", i, err)
		}
		if string(b[:2]) != string(prefix[:2]) || string(b[2:]) != string(a) {
			t.Fatalf("EncodeAppend %d diverged from Encode", i)
		}
	}
}

func TestDecodeRejectsTopLevelBatch(t *testing.T) {
	buf := encodeBatch(t, sampleEnvelopes())
	if _, err := Decode(buf); !errors.Is(err, ErrNestedBatch) {
		t.Fatalf("Decode(batch) err = %v, want ErrNestedBatch", err)
	}
}

func TestNestedBatchRejected(t *testing.T) {
	inner := encodeBatch(t, sampleEnvelopes())
	// Hand-build an outer frame claiming one member whose bytes are the
	// inner batch — AppendBatch itself refuses to encode this.
	outer := []byte{KindBatch}
	outer = binary.AppendUvarint(outer, 1)
	outer = binary.AppendUvarint(outer, uint64(len(inner)))
	outer = append(outer, inner...)
	_, err := decodeBatchAll(outer)
	if !errors.Is(err, ErrNestedBatch) {
		t.Fatalf("nested batch err = %v, want ErrNestedBatch", err)
	}

	if _, aerr := AppendBatch(nil, []Envelope{{Kind: KindBatch}}); !errors.Is(aerr, ErrNestedBatch) {
		t.Fatalf("AppendBatch(KindBatch member) err = %v, want ErrNestedBatch", aerr)
	}
}

func TestBatchHostileInputs(t *testing.T) {
	valid := encodeBatch(t, sampleEnvelopes())

	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := decodeBatchAll(valid[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := decodeBatchAll(append(append([]byte{}, valid...), 0x7)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("huge count", func(t *testing.T) {
		buf := binary.AppendUvarint([]byte{KindBatch}, 1<<40)
		if _, err := decodeBatchAll(buf); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("zero count", func(t *testing.T) {
		buf := binary.AppendUvarint([]byte{KindBatch}, 0)
		if _, err := decodeBatchAll(buf); err == nil {
			t.Fatalf("empty batch accepted")
		}
	})
	t.Run("member length past end", func(t *testing.T) {
		buf := binary.AppendUvarint([]byte{KindBatch}, 1)
		buf = binary.AppendUvarint(buf, 1<<40)
		if _, err := decodeBatchAll(buf); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("member shorter than declared", func(t *testing.T) {
		single, _ := Encode(Envelope{Kind: KindHeartbeat, Global: 1, RaisedAt: 2})
		buf := binary.AppendUvarint([]byte{KindBatch}, 1)
		buf = binary.AppendUvarint(buf, uint64(len(single)+3))
		buf = append(buf, single...)
		buf = append(buf, 0, 0, 0) // padding inside the declared window
		if _, err := decodeBatchAll(buf); err == nil {
			t.Fatalf("padded member accepted")
		}
	})
	t.Run("not a batch", func(t *testing.T) {
		single, _ := Encode(Envelope{Kind: KindHeartbeat, Global: 1, RaisedAt: 2})
		if _, err := decodeBatchAll(single); !errors.Is(err, ErrBadTag) {
			t.Fatalf("err = %v", err)
		}
		if IsBatch(single) || IsBatch(nil) {
			t.Fatalf("IsBatch false positive")
		}
	})
}

func TestDecodeBatchCallbackErrorAborts(t *testing.T) {
	buf := encodeBatch(t, sampleEnvelopes())
	boom := errors.New("boom")
	seen := 0
	err := DecodeBatch(buf, func(Envelope) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || seen != 2 {
		t.Fatalf("err = %v after %d envelopes", err, seen)
	}
}

func TestValidateOccurrence(t *testing.T) {
	good := event.NewPrimitive("A", event.Database, stamp("s", 1), event.Params{"n": 7, "s": "x"})
	if err := ValidateOccurrence(good); err != nil {
		t.Fatalf("valid occurrence rejected: %v", err)
	}
	bad := event.NewPrimitive("A", event.Database, stamp("s", 1), event.Params{"ch": make(chan int)})
	if err := ValidateOccurrence(bad); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	// Validate must agree with the encoder on both.
	if _, err := Encode(Envelope{Kind: KindEvent, Occ: good}); err != nil {
		t.Fatalf("encoder rejects what Validate accepted: %v", err)
	}
	if _, err := Encode(Envelope{Kind: KindEvent, Occ: bad}); err == nil {
		t.Fatalf("encoder accepts what Validate rejected")
	}
	// Depth abuse: a linear constituent chain past maxDepth.
	deep := event.NewPrimitive("A", event.Database, stamp("s", 1), nil)
	for i := 0; i < maxDepth+2; i++ {
		parent := event.NewPrimitive("A", event.Database, stamp("s", 1), nil)
		parent.Constituents = []*event.Occurrence{deep}
		deep = parent
	}
	if err := ValidateOccurrence(deep); err == nil {
		t.Fatalf("over-deep occurrence accepted")
	}
}

// Steady-state batch encoding — recycled dst, warm pools — must not
// allocate, even with parameterized occurrences (the sorted-key scratch
// is pooled too).
func TestAppendBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool caching")
	}
	envs := sampleEnvelopes()
	dst, err := AppendBatch(nil, envs) // warm dst and the pools
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, err = AppendBatch(dst[:0], envs)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendBatch: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	envs := sampleEnvelopes()
	dst, err := AppendBatch(nil, envs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = AppendBatch(dst[:0], envs)
		if err != nil {
			b.Fatal(err)
		}
	}
	benchSinkBytes = dst
}

func BenchmarkBatchDecode(b *testing.B) {
	buf := func() []byte {
		dst, err := AppendBatch(nil, sampleEnvelopes())
		if err != nil {
			b.Fatal(err)
		}
		return dst
	}()
	n := 0
	count := func(Envelope) error { n++; return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeBatch(buf, count); err != nil {
			b.Fatal(err)
		}
	}
	benchSinkInt = n
}

var (
	benchSinkBytes []byte
	benchSinkInt   int
)
