package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

func stamp(site string, local int64) core.Stamp {
	return core.DeriveStamp(core.SiteID(site), local, 10)
}

func roundTrip(t *testing.T, e Envelope) Envelope {
	t.Helper()
	buf, err := Encode(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestHeartbeatRoundTrip(t *testing.T) {
	e := Envelope{Kind: KindHeartbeat, Global: -42, RaisedAt: 12345}
	got := roundTrip(t, e)
	if got.Kind != KindHeartbeat || got.Global != -42 || got.RaisedAt != 12345 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestPrimitiveOccurrenceRoundTrip(t *testing.T) {
	o := event.NewPrimitive("Deposit", event.Database, stamp("bank1", 123), event.Params{
		"amount": int64(40),
		"rate":   1.25,
		"memo":   "salary",
		"flag":   true,
		"n":      7,
		"u":      uint64(9),
	})
	o.Seq = 99
	got := roundTrip(t, Envelope{Kind: KindEvent, Occ: o, RaisedAt: 5})
	g := got.Occ
	if g.Type != "Deposit" || g.Class != event.Database || g.Site != "bank1" || g.Seq != 99 {
		t.Fatalf("fields: %+v", g)
	}
	if !g.Stamp.Equal(o.Stamp) {
		t.Fatalf("stamp: %s vs %s", g.Stamp, o.Stamp)
	}
	// int is normalized to int64 on the wire.
	want := event.Params{"amount": int64(40), "rate": 1.25, "memo": "salary",
		"flag": true, "n": int64(7), "u": uint64(9)}
	if !reflect.DeepEqual(map[string]any(g.Params), map[string]any(want)) {
		t.Fatalf("params: %v vs %v", g.Params, want)
	}
}

func TestCompositeTreeRoundTrip(t *testing.T) {
	a := event.NewPrimitive("A", event.Explicit, stamp("s1", 100), event.Params{"k": int64(1)})
	b := event.NewPrimitive("B", event.Explicit, stamp("s2", 105), nil)
	inner := event.NewComposite("AB", "hub", a, b)
	c := event.NewPrimitive("C", event.Explicit, stamp("s1", 300), nil)
	outer := event.NewComposite("ABC", "hub", inner, c)

	got := roundTrip(t, Envelope{Kind: KindEvent, Occ: outer}).Occ
	if got.Type != "ABC" || len(got.Constituents) != 2 {
		t.Fatalf("outer: %+v", got)
	}
	if !got.Stamp.Equal(outer.Stamp) {
		t.Fatalf("outer stamp differs")
	}
	flat := got.Flatten()
	if len(flat) != 3 || flat[0].Type != "A" || flat[1].Type != "B" || flat[2].Type != "C" {
		t.Fatalf("flattened: %v", flat)
	}
	if flat[0].Params["k"] != int64(1) {
		t.Fatalf("nested params lost: %v", flat[0].Params)
	}
}

func TestConcurrentSetStampRoundTrip(t *testing.T) {
	s := core.NewSetStamp(stamp("x", 100), stamp("y", 105))
	b := AppendSetStamp(nil, s)
	r := &reader{buf: b}
	got, err := r.setStamp()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("set stamp: %s vs %s", got, s)
	}
}

func TestUnsupportedParamType(t *testing.T) {
	o := event.NewPrimitive("E", event.Explicit, stamp("s", 1), event.Params{"bad": []int{1}})
	if _, err := Encode(Envelope{Kind: KindEvent, Occ: o}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Envelope{Kind: KindEvent}); err == nil {
		t.Fatalf("event envelope without occurrence accepted")
	}
	if _, err := Encode(Envelope{Kind: 99}); !errors.Is(err, ErrBadTag) {
		t.Fatalf("bad kind = %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	o := event.NewPrimitive("Deposit", event.Database, stamp("bank1", 123),
		event.Params{"amount": int64(40)})
	buf, err := Encode(Envelope{Kind: KindEvent, Occ: o})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := Decode(append(append([]byte{}, buf...), 0x00)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage = %v", err)
	}
	// Unknown envelope kind.
	bad := append([]byte{}, buf...)
	bad[0] = 7
	if _, err := Decode(bad); !errors.Is(err, ErrBadTag) {
		t.Fatalf("bad kind byte = %v", err)
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		_, _ = Decode(buf) // must not panic
	}
}

// randomOccurrence builds a random occurrence tree for property testing.
func randomOccurrence(r *rand.Rand, depth int) *event.Occurrence {
	if depth <= 0 || r.Intn(3) == 0 {
		params := event.Params{}
		switch r.Intn(4) {
		case 0:
			params["v"] = r.Int63()
		case 1:
			params["v"] = r.Float64()
		case 2:
			params["v"] = "s" + string(rune('a'+r.Intn(26)))
		case 3:
			params["v"] = r.Intn(2) == 0
		}
		return event.NewPrimitive(
			"T"+string(rune('A'+r.Intn(4))), event.Explicit,
			stamp("s"+string(rune('0'+r.Intn(4))), r.Int63n(10_000)), params)
	}
	n := 1 + r.Intn(3)
	kids := make([]*event.Occurrence, n)
	for i := range kids {
		kids[i] = randomOccurrence(r, depth-1)
	}
	return event.NewComposite("C"+string(rune('A'+r.Intn(4))), "hub", kids...)
}

func occurrenceEqual(a, b *event.Occurrence) bool {
	if a.Type != b.Type || a.Class != b.Class || a.Site != b.Site || a.Seq != b.Seq {
		return false
	}
	if !a.Stamp.Equal(b.Stamp) {
		return false
	}
	if len(a.Params) != len(b.Params) {
		// nil and empty collapse on the wire; treat both as equal.
		if !(len(a.Params) == 0 && len(b.Params) == 0) {
			return false
		}
	}
	for k, v := range a.Params {
		w, ok := b.Params[k]
		if !ok {
			return false
		}
		// ints normalize to int64.
		if iv, isInt := v.(int); isInt {
			v = int64(iv)
		}
		if !reflect.DeepEqual(v, w) {
			return false
		}
	}
	if len(a.Constituents) != len(b.Constituents) {
		return false
	}
	for i := range a.Constituents {
		if !occurrenceEqual(a.Constituents[i], b.Constituents[i]) {
			return false
		}
	}
	return true
}

func TestRandomOccurrenceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 2000; trial++ {
		o := randomOccurrence(r, 3)
		got := roundTrip(t, Envelope{Kind: KindEvent, Occ: o, RaisedAt: int64(trial)})
		if !occurrenceEqual(o, got.Occ) {
			t.Fatalf("trial %d: round trip changed occurrence:\n  in:  %v\n  out: %v", trial, o, got.Occ)
		}
		if got.RaisedAt != int64(trial) {
			t.Fatalf("RaisedAt lost")
		}
	}
}

func TestDepthLimit(t *testing.T) {
	o := event.NewPrimitive("E", event.Explicit, stamp("s", 1), nil)
	for i := 0; i < maxDepth+2; i++ {
		o = event.NewComposite("C", "hub", o)
	}
	if _, err := Encode(Envelope{Kind: KindEvent, Occ: o}); err == nil {
		t.Fatalf("over-deep tree accepted")
	}
}

func TestNegativeStampComponents(t *testing.T) {
	// Zigzag varints must handle negative globals/locals.
	s := core.Stamp{Site: "s", Global: -5, Local: -50}
	b := AppendStamp(nil, s)
	r := &reader{buf: b}
	got, err := r.stamp()
	if err != nil || got != s {
		t.Fatalf("negative stamp round trip: %v %v", got, err)
	}
}
