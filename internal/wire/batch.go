package wire

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/event"
)

// This file is the batch framing the transport layer coalesces a tick's
// per-link traffic with (see internal/ddetect and DESIGN.md §2e):
//
//	KindBatch | uvarint count | count × (uvarint length | envelope bytes)
//
// Each member is a complete single-envelope frame as produced by
// EncodeAppend, so the batch adds exactly one byte, one count and one
// length prefix per member over the unbatched wire format.  Batches never
// nest: a KindBatch byte in an envelope position is ErrNestedBatch, both
// when encoding and when decoding, so the frame grammar stays one level
// deep no matter what arrives off the network.

// scratchPool recycles the per-envelope staging buffer AppendBatch needs
// to learn each member's length before writing its prefix.  With a
// recycled dst and a warm pool, batch encoding is allocation-free.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// AppendBatch encodes envs as one batch frame, appending to dst (which
// may be nil or a recycled buffer).  It rejects empty batches and
// KindBatch members.
func AppendBatch(dst []byte, envs []Envelope) ([]byte, error) {
	return appendBatchWith(dst, envs, EncodeAppend)
}

// appendBatchWith is the shared batch-framing body: enc supplies the
// member encoding (the string EncodeAppend, or a Codec's dense form).
func appendBatchWith(dst []byte, envs []Envelope, enc func([]byte, Envelope) ([]byte, error)) ([]byte, error) {
	if len(envs) == 0 {
		return nil, errors.New("wire: empty batch")
	}
	if len(envs) > maxBatch {
		//lint:allow hotalloc — error path: oversized batches are a caller bug, never the steady state
		return nil, fmt.Errorf("wire: batch of %d envelopes exceeds %d", len(envs), maxBatch)
	}
	dst = append(dst, KindBatch)
	dst = appendUvarint(dst, uint64(len(envs)))
	sp := scratchPool.Get().(*[]byte)
	scratch := *sp
	var err error
	for i := range envs {
		scratch, err = enc(scratch[:0], envs[i])
		if err != nil {
			err = fmt.Errorf("wire: batch envelope %d: %w", i, err)
			dst = nil
			break
		}
		dst = appendUvarint(dst, uint64(len(scratch)))
		dst = append(dst, scratch...)
	}
	*sp = scratch[:0]
	scratchPool.Put(sp)
	return dst, err
}

// IsBatch reports whether buf starts a batch frame.
func IsBatch(buf []byte) bool {
	return len(buf) > 0 && buf[0] == KindBatch
}

// DecodeBatch parses a batch frame, handing each member envelope to fn in
// frame order; fn's error aborts the scan.  Decoding streams: memory use
// is bounded by one envelope regardless of the count the frame claims,
// and all the single-envelope hostile-input limits apply to each member.
func DecodeBatch(buf []byte, fn func(Envelope) error) error {
	return decodeBatchWith(buf, Decode, fn)
}

// decodeBatchWith is the shared batch-walking body: dec parses each
// member frame (the string Decode, or a Codec's dense-aware form).
func decodeBatchWith(buf []byte, dec func([]byte) (Envelope, error), fn func(Envelope) error) error {
	r := &reader{buf: buf}
	kind, err := r.byte()
	if err != nil {
		return err
	}
	if kind != KindBatch {
		//lint:allow hotalloc — error path: rejecting a non-batch frame; never formats on valid input
		return fmt.Errorf("%w: kind %d is not a batch frame", ErrBadTag, kind)
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 {
		return errors.New("wire: empty batch")
	}
	if n > maxBatch {
		return fmt.Errorf("%w: batch of %d envelopes", ErrTruncated, n)
	}
	for i := uint64(0); i < n; i++ {
		l, err := r.uvarint()
		if err != nil {
			return err
		}
		if l > uint64(len(r.buf)-r.pos) {
			return fmt.Errorf("%w: batch envelope %d claims %d bytes", ErrTruncated, i, l)
		}
		member := r.buf[r.pos : r.pos+int(l)]
		r.pos += int(l)
		// Decode rejects trailing garbage, so the member must fill its
		// declared window exactly, and rejects KindBatch (ErrNestedBatch).
		e, err := dec(member)
		if err != nil {
			return fmt.Errorf("wire: batch envelope %d: %w", i, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if r.pos != len(buf) {
		return fmt.Errorf("wire: %d trailing bytes after batch", len(buf)-r.pos)
	}
	return nil
}

// ValidateOccurrence reports whether o would survive AppendOccurrence —
// same depth limit, same parameter-type support — without paying for the
// encoding.  The raise path uses it to fail unencodable occurrences
// eagerly, at the Raise call, rather than at the deferred transport
// flush.
func ValidateOccurrence(o *event.Occurrence) error {
	return validateOccurrence(o, 0)
}

func validateOccurrence(o *event.Occurrence, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("wire: occurrence tree deeper than %d", maxDepth)
	}
	//lint:allow mapiter — type checks only: validity is order-independent (at worst the key named in the error varies, and errors never reach the occurrence stream)
	for k, v := range o.Params {
		switch v.(type) {
		case int64, int, uint64, float64, string, bool:
		default:
			return fmt.Errorf("%w: %T (key %q)", ErrUnsupported, v, k)
		}
	}
	for _, c := range o.Constituents {
		if err := validateOccurrence(c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
