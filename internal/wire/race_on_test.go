//go:build race

package wire

// raceEnabled reports whether the race detector is on.  Its
// instrumentation defeats sync.Pool caching, so zero-alloc assertions
// only hold on non-race builds.
const raceEnabled = true
