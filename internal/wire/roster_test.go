package wire

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

func testRoster() *core.Roster {
	return core.NewRoster([]core.SiteID{"bank1", "bank2", "hq", "s"})
}

func testCodec() *Codec {
	return &Codec{Roster: testRoster(), Granule: 10}
}

func codecOccurrence() *event.Occurrence {
	inner := event.NewPrimitive("Withdraw", event.Database, stamp("bank2", 41), nil)
	o := event.NewPrimitive("Deposit", event.Database, stamp("bank1", 123), event.Params{
		"amount": int64(40), "memo": "salary", "rate": 1.5, "flag": true, "u": uint64(3),
	})
	o.Seq = 7
	o.Constituents = append(o.Constituents, inner)
	o.Stamp = core.NewSetStamp(stamp("bank1", 123), stamp("hq", 124))
	return o
}

// assertInterned checks that a decoded occurrence tree carries the
// roster-interned form of every stamp.
func assertInterned(t *testing.T, r *core.Roster, o *event.Occurrence) {
	t.Helper()
	want, ok := r.AppendCanon(nil, o.Stamp)
	if !ok {
		t.Fatalf("stamp %s not internable against the roster", o.Stamp)
	}
	if !reflect.DeepEqual(o.Interned, want) {
		t.Fatalf("decoded %s: interned stamp = %v, want %v", o.Type, o.Interned, want)
	}
	for _, c := range o.Constituents {
		assertInterned(t, r, c)
	}
}

// stripInterned drops the decode-side enrichment so DeepEqual can compare
// against the encoder's input, which never carried it.
func stripInterned(o *event.Occurrence) {
	o.Interned = nil
	for _, c := range o.Constituents {
		stripInterned(c)
	}
}

func TestRosterFrameRoundTrip(t *testing.T) {
	r := testRoster()
	buf := AppendRoster(nil, r)
	got, err := DecodeRoster(buf)
	if err != nil {
		t.Fatalf("DecodeRoster: %v", err)
	}
	if !reflect.DeepEqual(got.IDs(), r.IDs()) {
		t.Fatalf("round trip = %v, want %v", got.IDs(), r.IDs())
	}
}

func TestRosterFrameHostile(t *testing.T) {
	dup := []byte{KindRoster}
	dup = binary.AppendUvarint(dup, 2)
	dup = appendString(dup, "a")
	dup = appendString(dup, "a")
	if _, err := DecodeRoster(dup); !errors.Is(err, ErrDuplicateSite) {
		t.Fatalf("duplicate site: err = %v, want ErrDuplicateSite", err)
	}
	disorder := []byte{KindRoster}
	disorder = binary.AppendUvarint(disorder, 2)
	disorder = appendString(disorder, "b")
	disorder = appendString(disorder, "a")
	if _, err := DecodeRoster(disorder); !errors.Is(err, ErrDuplicateSite) {
		t.Fatalf("disorder: err = %v, want ErrDuplicateSite", err)
	}
	huge := binary.AppendUvarint([]byte{KindRoster}, 1<<40)
	if _, err := DecodeRoster(huge); err == nil {
		t.Fatal("hostile roster count accepted")
	}
	if _, err := DecodeRoster(binary.AppendUvarint([]byte{KindRoster}, 0)); err == nil {
		t.Fatal("empty roster accepted")
	}
}

func TestCodecEventIdxRoundTrip(t *testing.T) {
	c := testCodec()
	e := Envelope{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 1234}
	buf, err := c.Encode(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if buf[0] != KindEventIdx {
		t.Fatalf("kind byte = %d, want KindEventIdx", buf[0])
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != KindEvent || got.RaisedAt != 1234 {
		t.Fatalf("envelope header = %+v", got)
	}
	// Decoding enriches: the dense indexes already on the wire are kept
	// as the interned stamp, so the receiving side compares integer-only.
	assertInterned(t, c.Roster, got.Occ)
	stripInterned(got.Occ)
	if !reflect.DeepEqual(got.Occ, e.Occ) {
		t.Fatalf("occurrence round trip:\n got %+v\nwant %+v", got.Occ, e.Occ)
	}
	// The interned frame must beat the string frame on size — that is the
	// whole point of the encoding.
	strBuf, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) >= len(strBuf) {
		t.Fatalf("idx frame %dB not smaller than string frame %dB", len(buf), len(strBuf))
	}
}

func TestCodecFrontierDeltaRoundTrip(t *testing.T) {
	c := testCodec()
	for _, tc := range []struct{ global, raisedAt int64 }{
		{global: 123, raisedAt: 1234},  // frontier exactly at the raise granule
		{global: 120, raisedAt: 1239},  // frontier behind
		{global: 125, raisedAt: 1230},  // frontier ahead
		{global: -3, raisedAt: -25},    // negative time (floor semantics)
		{global: 0, raisedAt: 0},       // origin
		{global: 1 << 40, raisedAt: 7}, // wild skew still round-trips
	} {
		e := Envelope{Kind: KindHeartbeat, Global: tc.global, RaisedAt: tc.raisedAt}
		buf, err := c.Encode(e)
		if err != nil {
			t.Fatalf("encode %+v: %v", tc, err)
		}
		if buf[0] != KindFrontierDelta {
			t.Fatalf("kind byte = %d, want KindFrontierDelta", buf[0])
		}
		got, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", tc, err)
		}
		if got.Kind != KindHeartbeat || got.Global != tc.global || got.RaisedAt != tc.raisedAt {
			t.Fatalf("round trip %+v = %+v", tc, got)
		}
	}
	// A tracking frontier (global ≈ raisedAt/granule) must delta-encode
	// smaller than the absolute form.
	e := Envelope{Kind: KindHeartbeat, Global: 123456, RaisedAt: 1234567}
	dense, _ := c.Encode(e)
	str, _ := Encode(e)
	if len(dense) >= len(str) {
		t.Fatalf("delta frame %dB not smaller than absolute frame %dB", len(dense), len(str))
	}
}

func TestCodecDecodesLegacyFrames(t *testing.T) {
	c := testCodec()
	e := Envelope{Kind: KindHeartbeat, Global: 9, RaisedAt: 90}
	legacy, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(legacy)
	if err != nil {
		t.Fatalf("codec rejected legacy heartbeat: %v", err)
	}
	if got != e {
		t.Fatalf("legacy round trip = %+v, want %+v", got, e)
	}
	ev := Envelope{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 5}
	legacyEv, err := Encode(ev)
	if err != nil {
		t.Fatal(err)
	}
	gotEv, err := c.Decode(legacyEv)
	if err != nil {
		t.Fatalf("codec rejected legacy event: %v", err)
	}
	if !reflect.DeepEqual(gotEv.Occ, ev.Occ) {
		t.Fatal("legacy event occurrence mismatch")
	}
}

func TestCodecHostileInputs(t *testing.T) {
	c := testCodec()
	// Unknown site index: one past the roster.
	bad := []byte{KindEventIdx}
	bad = binary.AppendVarint(bad, 0) // raisedAt
	bad = appendString(bad, "T")
	bad = append(bad, 0)                                    // class
	bad = binary.AppendUvarint(bad, uint64(c.Roster.Len())) // site index out of range
	if _, err := c.Decode(bad); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown index: err = %v, want ErrUnknownSite", err)
	}
	// Encoding a site outside the roster must fail, not silently intern.
	alien := event.NewPrimitive("T", event.Database, stamp("alien", 1), nil)
	if _, err := c.Encode(Envelope{Kind: KindEvent, Occ: alien, RaisedAt: 0}); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("alien encode: err = %v, want ErrUnknownSite", err)
	}
	// Truncated delta: header but no delta varint.
	trunc := []byte{KindFrontierDelta}
	trunc = binary.AppendVarint(trunc, 1234)
	if _, err := c.Decode(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated delta: err = %v, want ErrTruncated", err)
	}
	// A delta frame is undecodable without a granule.
	whole := binary.AppendVarint(trunc, 0)
	noGranule := &Codec{Roster: c.Roster}
	if _, err := noGranule.Decode(whole); err == nil {
		t.Fatal("granule-less codec accepted a delta frame")
	}
	// An idx frame is undecodable without a roster.
	good, err := c.Encode(Envelope{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	noRoster := &Codec{Granule: 10}
	if _, err := noRoster.Decode(good); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("rosterless idx decode: err = %v, want ErrUnknownSite", err)
	}
	// Roster frames never sit in envelope positions.
	if _, err := c.Decode(AppendRoster(nil, c.Roster)); !errors.Is(err, ErrBadTag) {
		t.Fatalf("roster in envelope position: err = %v, want ErrBadTag", err)
	}
}

func TestCodecBatchRoundTrip(t *testing.T) {
	c := testCodec()
	envs := []Envelope{
		{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 9},
		{Kind: KindHeartbeat, Global: 4, RaisedAt: 49},
		{Kind: KindHeartbeat, Global: 6, RaisedAt: 58},
	}
	buf, err := c.AppendBatch(nil, envs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if !IsBatch(buf) {
		t.Fatal("codec batch not recognized by IsBatch")
	}
	var got []Envelope
	if err := c.DecodeBatch(buf, func(e Envelope) error { got = append(got, e); return nil }); err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		if got[i].Kind != envs[i].Kind || got[i].Global != envs[i].Global || got[i].RaisedAt != envs[i].RaisedAt {
			t.Fatalf("member %d = %+v, want %+v", i, got[i], envs[i])
		}
	}
	assertInterned(t, c.Roster, got[0].Occ)
	stripInterned(got[0].Occ)
	if !reflect.DeepEqual(got[0].Occ, envs[0].Occ) {
		t.Fatal("member occurrence mismatch")
	}
	// The string DecodeBatch must reject dense members — rosterless
	// receivers cannot resolve indexes, and silence would corrupt.
	if err := DecodeBatch(buf, discard); err == nil {
		t.Fatal("string DecodeBatch accepted dense members")
	}
}
