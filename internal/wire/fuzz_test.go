package wire

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// discard is the DecodeBatch callback the fuzzer uses: accept everything,
// so the decoder itself is what's under attack.
func discard(Envelope) error { return nil }

// fuzzSeeds is the regression corpus: every shape that has tripped (or
// could plausibly trip) the decoder — run by plain `go test` through
// FuzzDecode's seed phase and again explicitly by TestFuzzSeedsDontPanic,
// so the corpus guards CI even without -fuzz.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	occ := event.NewPrimitive("Deposit", event.Database, stamp("bank1", 7), event.Params{
		"amount": int64(40), "memo": "salary", "rate": 1.5, "flag": true, "u": uint64(3),
	})
	occ.Seq = 2
	single, err := Encode(Envelope{Kind: KindEvent, Occ: occ, RaisedAt: 9})
	if err != nil {
		tb.Fatal(err)
	}
	hb, err := Encode(Envelope{Kind: KindHeartbeat, Global: -3, RaisedAt: 1})
	if err != nil {
		tb.Fatal(err)
	}
	batch, err := AppendBatch(nil, []Envelope{
		{Kind: KindEvent, Occ: occ, RaisedAt: 9},
		{Kind: KindHeartbeat, Global: 4, RaisedAt: 10},
	})
	if err != nil {
		tb.Fatal(err)
	}

	seeds := [][]byte{
		nil,
		{},
		single,
		hb,
		batch,
		single[:len(single)/2], // truncated envelope
		batch[:len(batch)/2],   // truncated batch
		append(batch[:0:0], batch...)[:len(batch)-1],
		{KindBatch},        // batch with no count
		{KindEvent},        // envelope with no body
		{0xFF, 0x01, 0x02}, // unknown kind
		binary.AppendUvarint([]byte{KindBatch}, 0),                // zero count
		binary.AppendUvarint([]byte{KindBatch}, 1<<40),            // hostile count
		binary.AppendUvarint([]byte{KindBatch}, uint64(maxBatch)), // max count, no members
	}
	// Member length abuse: claims far more bytes than remain.
	abuse := binary.AppendUvarint([]byte{KindBatch}, 1)
	abuse = binary.AppendUvarint(abuse, 1<<40)
	seeds = append(seeds, abuse)
	// Nested batch: outer frame whose one member is itself a batch.
	nested := binary.AppendUvarint([]byte{KindBatch}, 1)
	nested = binary.AppendUvarint(nested, uint64(len(batch)))
	seeds = append(seeds, append(nested, batch...))
	// Depth abuse on the occurrence tree: each level claims one
	// constituent, far past maxDepth.
	deep := []byte{KindEvent}
	deep = binary.AppendVarint(deep, 0) // RaisedAt
	for i := 0; i < maxDepth+8; i++ {
		deep = appendString(deep, "A")       // type
		deep = append(deep, 0)               // class
		deep = appendString(deep, "s")       // site
		deep = binary.AppendUvarint(deep, 0) // seq
		deep = binary.AppendUvarint(deep, 0) // stamp components
		deep = binary.AppendUvarint(deep, 0) // params
		deep = binary.AppendUvarint(deep, 1) // constituents: one more level
	}
	seeds = append(seeds, deep)
	// Hostile string length inside an envelope.
	longStr := []byte{KindEvent}
	longStr = binary.AppendVarint(longStr, 0)
	longStr = binary.AppendUvarint(longStr, 1<<40) // type-string length
	seeds = append(seeds, longStr)

	// Roster-aware frames (decoded by fuzzCodec in exercise).
	roster := fuzzCodec.Roster
	seeds = append(seeds, AppendRoster(nil, roster))
	idxEnv, err := fuzzCodec.Encode(Envelope{Kind: KindEvent, Occ: occ, RaisedAt: 9})
	if err != nil {
		tb.Fatal(err)
	}
	delta, err := fuzzCodec.Encode(Envelope{Kind: KindHeartbeat, Global: 3, RaisedAt: 31})
	if err != nil {
		tb.Fatal(err)
	}
	denseBatch, err := fuzzCodec.AppendBatch(nil, []Envelope{
		{Kind: KindEvent, Occ: occ, RaisedAt: 9},
		{Kind: KindHeartbeat, Global: 4, RaisedAt: 42},
	})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds,
		idxEnv,
		delta,
		denseBatch,
		idxEnv[:len(idxEnv)/2],         // truncated idx frame
		delta[:len(delta)-1],           // truncated delta
		denseBatch[:len(denseBatch)-2], // truncated dense batch
	)
	// Unknown site index: one past the roster length.
	unknownIdx := []byte{KindEventIdx}
	unknownIdx = binary.AppendVarint(unknownIdx, 0)
	unknownIdx = appendString(unknownIdx, "T")
	unknownIdx = append(unknownIdx, 0)
	unknownIdx = binary.AppendUvarint(unknownIdx, uint64(roster.Len()))
	seeds = append(seeds, unknownIdx)
	// Duplicate site in a roster frame.
	dupRoster := []byte{KindRoster}
	dupRoster = binary.AppendUvarint(dupRoster, 2)
	dupRoster = appendString(dupRoster, "s")
	dupRoster = appendString(dupRoster, "s")
	seeds = append(seeds, dupRoster)
	// Hostile roster count with no members.
	seeds = append(seeds, binary.AppendUvarint([]byte{KindRoster}, 1<<40))
	return seeds
}

// fuzzCodec is the roster-aware decoder under attack alongside the string
// one: a small fixed roster and granule, so idx and delta seeds decode.
var fuzzCodec = &Codec{
	Roster:  core.NewRoster([]core.SiteID{"bank1", "s", "t"}),
	Granule: 10,
}

// exercise runs every decoder entry point over data — the string codec
// and the roster-aware one; any panic or unbounded allocation is the
// fuzzer's (or the corpus test's) failure.
func exercise(data []byte) {
	if IsBatch(data) {
		_ = DecodeBatch(data, discard)
		_ = fuzzCodec.DecodeBatch(data, discard)
	}
	_, _ = Decode(data)
	_, _ = fuzzCodec.Decode(data)
	_, _ = DecodeOccurrence(data)
	_, _ = DecodeRoster(data)
}

func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exercise(data)
	})
}

// TestFuzzSeedsDontPanic pins the corpus in the normal test run: every
// seed must decode cleanly or error — never panic — and the hostile ones
// must error.
func TestFuzzSeedsDontPanic(t *testing.T) {
	for i, s := range fuzzSeeds(t) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", i, r)
				}
			}()
			exercise(s)
		}()
	}
}

// The count prefix must not drive allocation: a frame claiming maxBatch
// envelopes but carrying none has to fail after O(1) work, not after
// reserving room for 65536 envelopes.
func TestDecodeBatchNoCountPreallocation(t *testing.T) {
	buf := binary.AppendUvarint([]byte{KindBatch}, uint64(maxBatch))
	allocs := testing.AllocsPerRun(20, func() {
		if err := DecodeBatch(buf, discard); err == nil {
			t.Fatal("hostile count accepted")
		}
	})
	// The only allocations allowed are the error values themselves.
	if allocs > 8 {
		t.Fatalf("hostile count allocated %v objects/op", allocs)
	}
}
