package wire

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

func testRegistry() *event.Registry {
	reg := event.NewRegistry()
	reg.MustDeclare("Withdraw", event.Database)
	reg.MustDeclare("Deposit", event.Database)
	reg.MustDeclare("Pair", event.Composite)
	return reg
}

func typedCodec() *Codec {
	return &Codec{Roster: testRoster(), Granule: 10, Types: testRegistry()}
}

// A registry-equipped codec emits KindEventTyped frames that round-trip
// to the same occurrence, enriched with the dense TypeID.
func TestCodecEventTypedRoundTrip(t *testing.T) {
	c := typedCodec()
	e := Envelope{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 1234}
	buf, err := c.Encode(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if buf[0] != KindEventTyped {
		t.Fatalf("kind byte = %d, want KindEventTyped", buf[0])
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != KindEvent || got.RaisedAt != 1234 {
		t.Fatalf("envelope header = %+v", got)
	}
	if want := c.Types.TypeID("Deposit"); got.Occ.TypeID != want {
		t.Fatalf("decoded TypeID = %d, want %d", got.Occ.TypeID, want)
	}
	if got.Occ.Constituents[0].TypeID != c.Types.TypeID("Withdraw") {
		t.Fatalf("constituent TypeID = %d", got.Occ.Constituents[0].TypeID)
	}
	assertInterned(t, c.Roster, got.Occ)
	stripInterned(got.Occ)
	stripTypeIDs(got.Occ)
	if !reflect.DeepEqual(got.Occ, e.Occ) {
		t.Fatalf("occurrence round trip:\n got %+v\nwant %+v", got.Occ, e.Occ)
	}
	// The typed frame must not be larger than the idx frame: a one- or
	// two-byte uvarint replaces a length-prefixed name.
	idxBuf, err := (&Codec{Roster: c.Roster, Granule: c.Granule}).Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) >= len(idxBuf) {
		t.Fatalf("typed frame %dB not smaller than idx frame %dB", len(buf), len(idxBuf))
	}
}

func stripTypeIDs(o *event.Occurrence) {
	o.TypeID = 0
	for _, c := range o.Constituents {
		stripTypeIDs(c)
	}
}

// Occurrences whose type the registry does not know — anonymous inner
// composites like "(A ; B)" — travel through the 0+string escape and
// still round-trip.
func TestCodecEventTypedUndeclaredName(t *testing.T) {
	c := typedCodec()
	inner := event.NewPrimitive("Withdraw", event.Database, stamp("bank2", 41), nil)
	anon := &event.Occurrence{
		Type:         "(Withdraw ; Deposit)",
		Class:        event.Composite,
		Site:         "bank1",
		Stamp:        core.NewSetStamp(stamp("bank1", 50)),
		Constituents: []*event.Occurrence{inner},
	}
	e := Envelope{Kind: KindEvent, Occ: anon, RaisedAt: 7}
	buf, err := c.Encode(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Occ.Type != anon.Type {
		t.Fatalf("type = %q, want %q", got.Occ.Type, anon.Type)
	}
	if got.Occ.TypeID != 0 {
		t.Fatalf("undeclared type decoded with TypeID %d, want 0", got.Occ.TypeID)
	}
	if got.Occ.Constituents[0].TypeID != c.Types.TypeID("Withdraw") {
		t.Fatal("declared constituent lost its TypeID through the escape path")
	}
}

// An occurrence already carrying its TypeID encodes to the same bytes as
// one that needs the name lookup: the fast path is a pure optimization.
func TestCodecEventTypedPrefilledID(t *testing.T) {
	c := typedCodec()
	plain := codecOccurrence()
	filled := codecOccurrence()
	filled.TypeID = c.Types.TypeID("Deposit")
	filled.Constituents[0].TypeID = c.Types.TypeID("Withdraw")
	b1, err := c.Encode(Envelope{Kind: KindEvent, Occ: plain, RaisedAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Encode(Envelope{Kind: KindEvent, Occ: filled, RaisedAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatalf("prefilled TypeID changed the wire bytes:\n %v\n %v", b1, b2)
	}
}

// Hostile typed frames: out-of-range IDs and registry-less decode.
func TestCodecEventTypedHostile(t *testing.T) {
	c := typedCodec()
	buf, err := c.Encode(Envelope{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A codec without a registry must reject the typed frame, not
	// misread it.
	bare := &Codec{Roster: testRoster(), Granule: 10}
	if _, err := bare.Decode(buf); !errors.Is(err, ErrUnknownTypeID) {
		t.Fatalf("registry-less decode: err = %v, want ErrUnknownTypeID", err)
	}
	// An index beyond the registry is corruption.
	evil := []byte{KindEventTyped}
	evil = appendVarint(evil, 1)                     // raisedAt
	evil = binary.AppendUvarint(evil, uint64(1<<20)) // type index way out of range
	if _, err := c.Decode(evil); !errors.Is(err, ErrUnknownTypeID) {
		t.Fatalf("out-of-range id: err = %v, want ErrUnknownTypeID", err)
	}
	// Truncations anywhere must error, never panic.
	for i := range buf {
		if _, err := c.Decode(buf[:i]); err == nil && i > 0 {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// Typed frames flow through batches like any other member frame.
func TestCodecTypedBatchRoundTrip(t *testing.T) {
	c := typedCodec()
	envs := []Envelope{
		{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 1},
		{Kind: KindHeartbeat, Global: 12, RaisedAt: 125},
		{Kind: KindEvent, Occ: codecOccurrence(), RaisedAt: 3},
	}
	buf, err := c.AppendBatch(nil, envs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	var got []Envelope
	if err := c.DecodeBatch(buf, func(e Envelope) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i, e := range got {
		if e.Kind != envs[i].Kind || e.RaisedAt != envs[i].RaisedAt {
			t.Fatalf("envelope %d header = %+v, want %+v", i, e, envs[i])
		}
		if e.Kind == KindEvent && e.Occ.TypeID == 0 {
			t.Fatalf("envelope %d decoded without TypeID", i)
		}
	}
}
