// Package wire is the binary codec for the distributed detector's
// messages: primitive/composite event occurrences (with their set
// timestamps, parameters and constituent trees) and watermark heartbeats.
//
// The simulated bus could pass Go pointers, but a reproduction of a
// distributed system should not depend on shared memory: with
// ddetect.Config.Serialize enabled every envelope crossing the network is
// encoded here and decoded at the receiver, so the engine demonstrably
// works over a byte transport, and the codec's cost is measurable
// (BenchmarkWireCodec).
//
// Format: length-prefixed, varint-based (encoding/binary), no reflection.
// Integers are zigzag varints; strings are length-prefixed UTF-8.
// Parameter values support the types the engine itself produces: int,
// int64, uint64, float64, bool and string.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
)

// Value type tags for parameters.
const (
	tagInt64 byte = iota
	tagFloat64
	tagString
	tagBool
	tagUint64
)

// Message kind tags.
const (
	// KindEvent marks an encoded occurrence.
	KindEvent byte = 1
	// KindHeartbeat marks an encoded watermark.
	KindHeartbeat byte = 2
	// KindBatch marks a frame coalescing several envelopes (see
	// AppendBatch/DecodeBatch).  Batches never nest.
	KindBatch byte = 3
)

// Errors returned by the decoder.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrBadTag      = errors.New("wire: unknown tag")
	ErrUnsupported = errors.New("wire: unsupported parameter type")
	// ErrNestedBatch marks a KindBatch frame inside a batch (or handed to
	// the single-envelope Decode): batches are a transport framing, one
	// level deep by construction, so a nested one is always corruption or
	// an attack.
	ErrNestedBatch = errors.New("wire: batch frame inside an envelope position")
)

// limits guard against hostile or corrupt input.
const (
	maxString       = 1 << 16
	maxComponents   = 1 << 12
	maxParams       = 1 << 12
	maxConstituents = 1 << 16
	maxDepth        = 64
	maxBatch        = 1 << 16
)

// --- primitives -----------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) str(limit int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) || r.pos+int(n) > len(r.buf) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// --- stamps -----------------------------------------------------------------

// AppendStamp encodes one primitive stamp.
func AppendStamp(b []byte, t core.Stamp) []byte {
	b = appendString(b, string(t.Site))
	b = appendVarint(b, t.Global)
	return appendVarint(b, t.Local)
}

func (r *reader) stamp() (core.Stamp, error) {
	site, err := r.str(maxString)
	if err != nil {
		return core.Stamp{}, err
	}
	g, err := r.varint()
	if err != nil {
		return core.Stamp{}, err
	}
	l, err := r.varint()
	if err != nil {
		return core.Stamp{}, err
	}
	return core.Stamp{Site: core.SiteID(site), Global: g, Local: l}, nil
}

// AppendSetStamp encodes a composite timestamp.
func AppendSetStamp(b []byte, s core.SetStamp) []byte {
	b = appendUvarint(b, uint64(len(s)))
	for _, t := range s {
		b = AppendStamp(b, t)
	}
	return b
}

func (r *reader) setStamp() (core.SetStamp, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxComponents {
		return nil, fmt.Errorf("%w: %d stamp components", ErrTruncated, n)
	}
	out := make(core.SetStamp, 0, n)
	for i := uint64(0); i < n; i++ {
		t, err := r.stamp()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// --- params -----------------------------------------------------------------

// keysPool recycles the sorted-key scratch slice AppendParams needs for
// deterministic key order, so steady-state encoding of parameterized
// occurrences allocates nothing.
var keysPool = sync.Pool{New: func() any { return new([]string) }}

// AppendParams encodes a parameter list with deterministic key order.
func AppendParams(b []byte, p event.Params) ([]byte, error) {
	if len(p) == 0 {
		return appendUvarint(b, 0), nil
	}
	kp := keysPool.Get().(*[]string)
	keys := (*kp)[:0]
	//lint:allow mapiter — keys are collected then sorted; the encoded order is deterministic whatever order the range yields
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = appendString(b, k)
		b, err = appendValue(b, p[k])
		if err != nil {
			err = fmt.Errorf("%w (key %q)", err, k)
			b = nil
			break
		}
	}
	clear(keys) // drop the string references before pooling
	*kp = keys[:0]
	keysPool.Put(kp)
	return b, err
}

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case int64:
		return appendVarint(append(b, tagInt64), x), nil
	case int:
		return appendVarint(append(b, tagInt64), int64(x)), nil
	case uint64:
		return appendUvarint(append(b, tagUint64), x), nil
	case float64:
		b = append(b, tagFloat64)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		return append(b, tmp[:]...), nil
	case string:
		return appendString(append(b, tagString), x), nil
	case bool:
		b = append(b, tagBool)
		if x {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, v)
	}
}

func (r *reader) params() (event.Params, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxParams {
		return nil, fmt.Errorf("%w: %d params", ErrTruncated, n)
	}
	p := make(event.Params, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.str(maxString)
		if err != nil {
			return nil, err
		}
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		p[k] = v
	}
	return p, nil
}

func (r *reader) value() (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagInt64:
		return r.varint()
	case tagUint64:
		return r.uvarint()
	case tagFloat64:
		if r.pos+8 > len(r.buf) {
			return nil, ErrTruncated
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
		return v, nil
	case tagString:
		return r.str(maxString)
	case tagBool:
		b, err := r.byte()
		if err != nil {
			return nil, err
		}
		return b != 0, nil
	default:
		return nil, fmt.Errorf("%w: value tag %d", ErrBadTag, tag)
	}
}

// --- occurrences ------------------------------------------------------------

// AppendOccurrence encodes an occurrence with its constituent tree.
func AppendOccurrence(b []byte, o *event.Occurrence) ([]byte, error) {
	return appendOccurrence(b, o, 0)
}

func appendOccurrence(b []byte, o *event.Occurrence, depth int) ([]byte, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("wire: occurrence tree deeper than %d", maxDepth)
	}
	b = appendString(b, o.Type)
	b = append(b, byte(o.Class))
	b = appendString(b, string(o.Site))
	b = appendUvarint(b, o.Seq)
	b = AppendSetStamp(b, o.Stamp)
	var err error
	b, err = AppendParams(b, o.Params)
	if err != nil {
		return nil, err
	}
	b = appendUvarint(b, uint64(len(o.Constituents)))
	for _, c := range o.Constituents {
		b, err = appendOccurrence(b, c, depth+1)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (r *reader) occurrence(depth int) (*event.Occurrence, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("wire: occurrence tree deeper than %d", maxDepth)
	}
	typ, err := r.str(maxString)
	if err != nil {
		return nil, err
	}
	classByte, err := r.byte()
	if err != nil {
		return nil, err
	}
	site, err := r.str(maxString)
	if err != nil {
		return nil, err
	}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	stamp, err := r.setStamp()
	if err != nil {
		return nil, err
	}
	params, err := r.params()
	if err != nil {
		return nil, err
	}
	nKids, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nKids > maxConstituents {
		return nil, fmt.Errorf("%w: %d constituents", ErrTruncated, nKids)
	}
	o := &event.Occurrence{
		Type:   typ,
		Class:  event.Class(classByte),
		Site:   core.SiteID(site),
		Seq:    seq,
		Stamp:  stamp,
		Params: params,
	}
	for i := uint64(0); i < nKids; i++ {
		c, err := r.occurrence(depth + 1)
		if err != nil {
			return nil, err
		}
		o.Constituents = append(o.Constituents, c)
	}
	return o, nil
}

// --- envelopes ---------------------------------------------------------------

// Envelope is the transport-level message: either an event occurrence or a
// heartbeat watermark, plus the raise time used for latency accounting.
type Envelope struct {
	Kind     byte // KindEvent or KindHeartbeat
	Occ      *event.Occurrence
	Global   int64
	RaisedAt int64
}

// Encode serializes an envelope.
func Encode(e Envelope) ([]byte, error) {
	return EncodeAppend(make([]byte, 0, 64), e)
}

// EncodeAppend serializes an envelope, appending to dst (which may be
// nil, or a recycled buffer — the allocation-free form of Encode).
func EncodeAppend(dst []byte, e Envelope) ([]byte, error) {
	dst = append(dst, e.Kind)
	dst = appendVarint(dst, e.RaisedAt)
	switch e.Kind {
	case KindHeartbeat:
		return appendVarint(dst, e.Global), nil
	case KindEvent:
		if e.Occ == nil {
			return nil, errors.New("wire: event envelope without occurrence")
		}
		return AppendOccurrence(dst, e.Occ)
	case KindBatch:
		// A batch is a frame of envelopes, not an envelope.
		return nil, ErrNestedBatch
	default:
		return nil, fmt.Errorf("%w: envelope kind %d", ErrBadTag, e.Kind)
	}
}

// DecodeOccurrence parses a bare occurrence (as produced by
// AppendOccurrence), rejecting trailing garbage.
func DecodeOccurrence(buf []byte) (*event.Occurrence, error) {
	r := &reader{buf: buf}
	o, err := r.occurrence(0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(buf)-r.pos)
	}
	return o, nil
}

// Decode parses an envelope, rejecting trailing garbage.
func Decode(buf []byte) (Envelope, error) {
	r := &reader{buf: buf}
	kind, err := r.byte()
	if err != nil {
		return Envelope{}, err
	}
	if kind == KindBatch {
		// The frame layout after KindBatch is a count, not an envelope
		// body; callers must route batches through DecodeBatch.  Reject
		// here so a batch can never be mistaken for (or nested inside)
		// an envelope.
		return Envelope{}, ErrNestedBatch
	}
	raisedAt, err := r.varint()
	if err != nil {
		return Envelope{}, err
	}
	e := Envelope{Kind: kind, RaisedAt: raisedAt}
	switch kind {
	case KindHeartbeat:
		g, err := r.varint()
		if err != nil {
			return Envelope{}, err
		}
		e.Global = g
	case KindEvent:
		o, err := r.occurrence(0)
		if err != nil {
			return Envelope{}, err
		}
		e.Occ = o
	default:
		return Envelope{}, fmt.Errorf("%w: envelope kind %d", ErrBadTag, kind)
	}
	if r.pos != len(buf) {
		return Envelope{}, fmt.Errorf("wire: %d trailing bytes", len(buf)-r.pos)
	}
	return e, nil
}
