package wire

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
)

// This file is the roster-aware side of the codec (DESIGN.md §2g): once
// both ends of a link share a sealed core.Roster, site identities travel
// as uvarint dense indexes instead of length-prefixed strings, and
// heartbeat frontiers are delta-encoded against the raise time.  The
// string frames of wire.go remain the rosterless interchange form — a
// Codec decodes both, so old captures and the fuzz corpus stay readable.
//
// Frames:
//
//	KindRoster        | uvarint n | n × string        (strictly ascending)
//	KindEventIdx      | varint raisedAt | occurrence with uvarint site indexes
//	KindFrontierDelta | varint raisedAt | varint (global − raisedAt/granule)
//
// The delta form exploits that a watermark heartbeat's global frontier
// tracks its own raise time: with the granule (microticks per global
// tick) agreed out of band, the difference is a small integer — typically
// one varint byte where the absolute global costs four or five.

// Roster-aware message kinds.
const (
	// KindRoster frames a sealed site membership (see AppendRoster).
	KindRoster byte = 4
	// KindEventIdx is KindEvent with interned sites.
	KindEventIdx byte = 5
	// KindFrontierDelta is KindHeartbeat with the global frontier encoded
	// as a delta against the raise time's granule.
	KindFrontierDelta byte = 6
	// KindEventTyped is KindEventIdx with the event type carried as its
	// dense registry TypeID (uvarint) instead of a length-prefixed
	// string; undeclared names (anonymous inner composites like
	// "(A ; B)") travel as a 0 marker followed by the string form.
	KindEventTyped byte = 7
)

// Errors specific to roster frames.
var (
	// ErrUnknownSite marks a site index at or beyond the roster length, or
	// an idx frame decoded without a roster.
	ErrUnknownSite = errors.New("wire: site index outside roster")
	// ErrDuplicateSite marks a roster frame whose IDs are not strictly
	// ascending — duplicates and disorder are both corruption, since
	// NewRoster output is canonical by construction.
	ErrDuplicateSite = errors.New("wire: roster sites not strictly ascending")
	// ErrUnknownTypeID marks a typed frame whose type index is outside
	// the codec's registry, or a typed frame decoded without one.
	ErrUnknownTypeID = errors.New("wire: event type index outside registry")
)

// maxRosterSites bounds a roster frame's claimed membership.
const maxRosterSites = 1 << 16

// AppendRoster encodes a roster frame: the sealed membership in canonical
// order, so equal rosters always produce identical bytes.
func AppendRoster(dst []byte, r *core.Roster) []byte {
	dst = append(dst, KindRoster)
	dst = appendUvarint(dst, uint64(r.Len()))
	for _, id := range r.IDs() {
		dst = appendString(dst, string(id))
	}
	return dst
}

// DecodeRoster parses a roster frame, rejecting disorder, duplicates and
// trailing garbage.
func DecodeRoster(buf []byte) (*core.Roster, error) {
	r := &reader{buf: buf}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	if kind != KindRoster {
		return nil, fmt.Errorf("%w: kind %d is not a roster frame", ErrBadTag, kind)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errors.New("wire: empty roster")
	}
	if n > maxRosterSites {
		return nil, fmt.Errorf("%w: roster of %d sites", ErrTruncated, n)
	}
	capHint := n
	if capHint > 1024 {
		capHint = 1024 // never trust the claimed count for allocation
	}
	ids := make([]core.SiteID, 0, capHint)
	prev := ""
	for i := uint64(0); i < n; i++ {
		s, err := r.str(maxString)
		if err != nil {
			return nil, err
		}
		if i > 0 && s <= prev {
			return nil, fmt.Errorf("%w: %q after %q", ErrDuplicateSite, s, prev)
		}
		prev = s
		ids = append(ids, core.SiteID(s))
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after roster", len(buf)-r.pos)
	}
	return core.NewRoster(ids), nil
}

// Codec is the roster-aware encoder/decoder for one sealed run.  Both
// ends build it from shared configuration (the roster from the sealed
// membership, the granule from the clock's local-per-global ratio), so
// delta frames decode statelessly.  A zero Granule disables frontier
// deltas; a nil Roster makes Codec equivalent to the package-level
// string codec.
//
// Codec is immutable after construction and safe for concurrent use.
type Codec struct {
	Roster *core.Roster
	// Granule is the number of RaisedAt microticks per global granule
	// (clock's local-per-global ratio), the shared reference the frontier
	// delta is taken against.
	Granule int64
	// Types, when non-nil alongside Roster, upgrades event frames to
	// KindEventTyped: type identities travel as dense registry IDs the
	// same way site identities travel as roster indexes, and decode
	// fills Occurrence.TypeID so the receiving detector dispatches
	// without a name lookup.  Both ends must share the declaration
	// order (in the simulator they share the registry itself).
	Types *event.Registry
}

// frontierBase is the shared reference point a heartbeat's global
// frontier is delta-encoded against: the granule floor of its raise time.
func (c *Codec) frontierBase(raisedAt int64) int64 {
	g := raisedAt / c.Granule
	if raisedAt < 0 && raisedAt%c.Granule != 0 {
		g--
	}
	return g
}

// EncodeAppend serializes an envelope in the densest form the codec
// supports: interned occurrence frames when a roster is attached
// (ErrUnknownSite if the occurrence mentions a site outside it) and
// delta heartbeats when a granule is configured.
func (c *Codec) EncodeAppend(dst []byte, e Envelope) ([]byte, error) {
	switch e.Kind {
	case KindHeartbeat:
		if c.Granule <= 0 {
			return EncodeAppend(dst, e)
		}
		dst = append(dst, KindFrontierDelta)
		dst = appendVarint(dst, e.RaisedAt)
		return appendVarint(dst, e.Global-c.frontierBase(e.RaisedAt)), nil
	case KindEvent:
		if c.Roster == nil {
			return EncodeAppend(dst, e)
		}
		if e.Occ == nil {
			return nil, errors.New("wire: event envelope without occurrence")
		}
		if c.Types != nil {
			dst = append(dst, KindEventTyped)
			dst = appendVarint(dst, e.RaisedAt)
			return c.appendOccurrenceIdx(dst, e.Occ, 0, true)
		}
		dst = append(dst, KindEventIdx)
		dst = appendVarint(dst, e.RaisedAt)
		return c.appendOccurrenceIdx(dst, e.Occ, 0, false)
	case KindBatch:
		return nil, ErrNestedBatch
	default:
		return nil, fmt.Errorf("%w: envelope kind %d", ErrBadTag, e.Kind)
	}
}

// Encode is the allocating form of EncodeAppend.
//
//lint:allow hotalloc — the encoded frame is the product handed to the transport; callers that can reuse buffers use EncodeAppend
func (c *Codec) Encode(e Envelope) ([]byte, error) {
	return c.EncodeAppend(make([]byte, 0, 64), e)
}

// appendSite writes one interned site identity.
func (c *Codec) appendSite(dst []byte, id core.SiteID) ([]byte, error) {
	s := c.Roster.Site(id)
	if s == core.NoSite {
		return nil, fmt.Errorf("%w: %q not in roster", ErrUnknownSite, id)
	}
	return appendUvarint(dst, uint64(s)), nil
}

// appendOccurrenceIdx is appendOccurrence with every site identity —
// the occurrence's own and each stamp component's — as a roster index.
// With typed set, the type name is interned too: occurrences usually
// carry their TypeID already (set at raise or by the emitting detector);
// a zero falls back to one registry lookup, and names the registry does
// not know (anonymous inner composites) are escaped as 0 + string.
func (c *Codec) appendOccurrenceIdx(b []byte, o *event.Occurrence, depth int, typed bool) ([]byte, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("wire: occurrence tree deeper than %d", maxDepth)
	}
	if typed {
		id := o.TypeID
		if id == 0 {
			id = c.Types.TypeID(o.Type)
		}
		if id != 0 {
			b = appendUvarint(b, uint64(id))
		} else {
			b = appendUvarint(b, 0)
			b = appendString(b, o.Type)
		}
	} else {
		b = appendString(b, o.Type)
	}
	b = append(b, byte(o.Class))
	b, err := c.appendSite(b, o.Site)
	if err != nil {
		return nil, err
	}
	b = appendUvarint(b, o.Seq)
	b = appendUvarint(b, uint64(len(o.Stamp)))
	for _, t := range o.Stamp {
		b, err = c.appendSite(b, t.Site)
		if err != nil {
			return nil, err
		}
		b = appendVarint(b, t.Global)
		b = appendVarint(b, t.Local)
	}
	b, err = AppendParams(b, o.Params)
	if err != nil {
		return nil, err
	}
	b = appendUvarint(b, uint64(len(o.Constituents)))
	for _, k := range o.Constituents {
		b, err = c.appendOccurrenceIdx(b, k, depth+1, typed)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// site reads one interned site identity, validating against the roster.
func (c *Codec) site(r *reader) (core.SiteID, error) {
	idx, err := c.siteIdx(r)
	if err != nil {
		return "", err
	}
	return c.Roster.ID(idx), nil
}

// siteIdx reads one interned site identity as its dense roster index.
func (c *Codec) siteIdx(r *reader) (core.Site, error) {
	v, err := r.uvarint()
	if err != nil {
		return core.NoSite, err
	}
	if c.Roster == nil || v >= uint64(c.Roster.Len()) {
		return core.NoSite, fmt.Errorf("%w: index %d", ErrUnknownSite, v)
	}
	return core.Site(v), nil
}

func (c *Codec) occurrenceIdx(r *reader, depth int, typed bool) (*event.Occurrence, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("wire: occurrence tree deeper than %d", maxDepth)
	}
	var typ string
	var typeID event.TypeID
	var err error
	if typed {
		typeID, typ, err = c.typeRef(r)
	} else {
		typ, err = r.str(maxString)
	}
	if err != nil {
		return nil, err
	}
	classByte, err := r.byte()
	if err != nil {
		return nil, err
	}
	site, err := c.site(r)
	if err != nil {
		return nil, err
	}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nStamps, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nStamps > maxComponents {
		return nil, fmt.Errorf("%w: %d stamp components", ErrTruncated, nStamps)
	}
	stamp := make(core.SetStamp, 0, nStamps)
	interned := make(core.RSetStamp, 0, nStamps)
	for i := uint64(0); i < nStamps; i++ {
		// The frame carries the dense index; materialize both forms in
		// one pass, so decoded occurrences keep the interned stamp the
		// sender's pool built (release watermarking and comparisons on
		// the receiving side stay integer-only).
		tsIdx, err := c.siteIdx(r)
		if err != nil {
			return nil, err
		}
		g, err := r.varint()
		if err != nil {
			return nil, err
		}
		l, err := r.varint()
		if err != nil {
			return nil, err
		}
		stamp = append(stamp, core.Stamp{Site: c.Roster.ID(tsIdx), Global: g, Local: l})
		interned = append(interned, core.RStamp{Site: tsIdx, Global: g, Local: l})
	}
	params, err := r.params()
	if err != nil {
		return nil, err
	}
	nKids, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nKids > maxConstituents {
		return nil, fmt.Errorf("%w: %d constituents", ErrTruncated, nKids)
	}
	o := &event.Occurrence{
		Type:     typ,
		TypeID:   typeID,
		Class:    event.Class(classByte),
		Site:     site,
		Seq:      seq,
		Stamp:    stamp,
		Interned: interned,
		Params:   params,
	}
	for i := uint64(0); i < nKids; i++ {
		k, err := c.occurrenceIdx(r, depth+1, typed)
		if err != nil {
			return nil, err
		}
		o.Constituents = append(o.Constituents, k)
	}
	return o, nil
}

// typeRef reads one interned type identity: a dense registry ID, or the
// 0 escape followed by the literal name (which may still resolve — a
// registry that learned the name after the sender encoded it).
func (c *Codec) typeRef(r *reader) (event.TypeID, string, error) {
	if c.Types == nil {
		return 0, "", fmt.Errorf("%w: typed frame without a registry", ErrUnknownTypeID)
	}
	v, err := r.uvarint()
	if err != nil {
		return 0, "", err
	}
	if v == 0 {
		typ, err := r.str(maxString)
		if err != nil {
			return 0, "", err
		}
		return c.Types.TypeID(typ), typ, nil
	}
	id := event.TypeID(v)
	if uint64(id) != v { // overflow
		return 0, "", fmt.Errorf("%w: index %d", ErrUnknownTypeID, v)
	}
	name := c.Types.NameOf(id)
	if name == "" {
		return 0, "", fmt.Errorf("%w: index %d", ErrUnknownTypeID, v)
	}
	return id, name, nil
}

// Decode parses any envelope frame — interned, delta, or the legacy
// string forms — rejecting trailing garbage.  Idx frames require the
// codec's roster (ErrUnknownSite otherwise); delta frames require its
// granule.
func (c *Codec) Decode(buf []byte) (Envelope, error) {
	if len(buf) == 0 {
		return Envelope{}, ErrTruncated
	}
	switch buf[0] {
	case KindEvent, KindHeartbeat:
		return Decode(buf)
	case KindBatch:
		return Envelope{}, ErrNestedBatch
	case KindRoster:
		//lint:allow hotalloc — error path: corrupt-input rejection; never formats on valid frames
		return Envelope{}, fmt.Errorf("%w: roster frame in envelope position", ErrBadTag)
	}
	r := &reader{buf: buf}
	kind, _ := r.byte()
	raisedAt, err := r.varint()
	if err != nil {
		return Envelope{}, err
	}
	e := Envelope{RaisedAt: raisedAt}
	switch kind {
	case KindFrontierDelta:
		if c.Granule <= 0 {
			//lint:allow hotalloc — error path: misconfigured codec rejection; never formats on valid frames
			return Envelope{}, fmt.Errorf("%w: frontier delta without a granule", ErrBadTag)
		}
		delta, err := r.varint()
		if err != nil {
			return Envelope{}, err
		}
		e.Kind = KindHeartbeat
		e.Global = c.frontierBase(raisedAt) + delta
	case KindEventIdx:
		o, err := c.occurrenceIdx(r, 0, false)
		if err != nil {
			return Envelope{}, err
		}
		e.Kind = KindEvent
		e.Occ = o
	case KindEventTyped:
		o, err := c.occurrenceIdx(r, 0, true)
		if err != nil {
			return Envelope{}, err
		}
		e.Kind = KindEvent
		e.Occ = o
	default:
		//lint:allow hotalloc — error path: corrupt-input rejection; never formats on valid frames
		return Envelope{}, fmt.Errorf("%w: envelope kind %d", ErrBadTag, kind)
	}
	if r.pos != len(buf) {
		//lint:allow hotalloc — error path: corrupt-input rejection; never formats on valid frames
		return Envelope{}, fmt.Errorf("wire: %d trailing bytes", len(buf)-r.pos)
	}
	return e, nil
}

// AppendBatch is AppendBatch with the codec's dense member encoding.
func (c *Codec) AppendBatch(dst []byte, envs []Envelope) ([]byte, error) {
	return appendBatchWith(dst, envs, c.EncodeAppend)
}

// DecodeBatch is DecodeBatch accepting the codec's dense member frames
// alongside the legacy string ones.
func (c *Codec) DecodeBatch(buf []byte, fn func(Envelope) error) error {
	return decodeBatchWith(buf, c.Decode, fn)
}
