package network

import (
	"testing"

	"repro/internal/core"
)

// TestSiteSendsMatchStringSends drives two identically seeded buses — one
// addressed by strings, one by dense roster indexes — through the same
// traffic and asserts the delivered messages and link stats agree, so the
// dense index is a pure addressing change.
func TestSiteSendsMatchStringSends(t *testing.T) {
	ids := []core.SiteID{"a", "b", "c"}
	roster := core.NewRoster(ids)
	cfg := Config{BaseLatency: 5, Jitter: 3, DropRate: 0.2, RetransmitDelay: 7, Seed: 9}
	byStr := NewBus(cfg)
	bySite := NewBus(cfg)
	bySite.SetRoster(roster)

	for i := 0; i < 50; i++ {
		from := ids[i%len(ids)]
		to := ids[(i+1)%len(ids)]
		now := int64(i * 10)
		byStr.SendBatch(now, from, to, i, 3, 12)
		bySite.SendBatchSite(now, roster.MustSite(from), roster.MustSite(to), i, 3, 12)
		byStr.SendUnbatched(now, to, from, 2, func(j int) any { return j })
		bySite.SendUnbatchedSite(now, roster.MustSite(to), roster.MustSite(from), 2, func(j int) any { return j })
	}

	var a, b []Message
	a = byStr.DrainDue(1<<40, a)
	b = bySite.DrainDue(1<<40, b)
	if len(a) != len(b) {
		t.Fatalf("delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || a[i].Seq != b[i].Seq ||
			a[i].DeliverAt != b[i].DeliverAt || a[i].Attempts != b[i].Attempts {
			t.Fatalf("message %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if b[i].FromSite != roster.MustSite(b[i].From) || b[i].ToSite != roster.MustSite(b[i].To) {
			t.Fatalf("message %d dense addressing wrong: %+v", i, b[i])
		}
		if a[i].FromSite != core.NoSite || a[i].ToSite != core.NoSite {
			t.Fatalf("rosterless message %d should carry NoSite: %+v", i, a[i])
		}
	}

	sa, sb := byStr.LinkStats(), bySite.LinkStats()
	if len(sa) != len(sb) {
		t.Fatalf("link stats length %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("link stat %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestSetRosterRehomesExistingLinks checks a link opened before SetRoster
// is reachable through the dense path afterwards with its sequence intact.
func TestSetRosterRehomesExistingLinks(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b"})
	bus := NewBus(Config{})
	bus.Send(0, "a", "b", "early")
	bus.SetRoster(roster)
	m := bus.SendBatchSite(1, roster.MustSite("a"), roster.MustSite("b"), "late", 1, 0)
	if m.Seq != 2 {
		t.Fatalf("dense send after re-home got seq %d, want 2 (continuing the string link)", m.Seq)
	}
	if m.From != "a" || m.To != "b" {
		t.Fatalf("dense send lost string addressing: %+v", m)
	}
}
