// Package network simulates the message-passing substrate of a distributed
// event-detection system: point-to-point links with configurable latency,
// jitter and loss-with-retransmission, driven by the same simulated clock
// as everything else (internal/clock), so every adversarial delivery
// schedule is deterministic and reproducible.
//
// The bus is reliable but unordered: a message is never lost for good
// (loss is modelled as retransmission delay, the abstraction a CEP
// transport needs), but jitter freely reorders messages on a link.  The
// distributed detector (internal/ddetect) restores per-link FIFO order
// from the sequence numbers the bus stamps and uses watermarks for
// cross-site ordering, exactly the problem Section 5 of the paper's
// timestamp algebra exists to solve.
package network

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
)

// Message is one transmission on the bus.
type Message struct {
	From, To core.SiteID
	// Seq is the per-(From,To)-link FIFO sequence number, starting at 1.
	Seq uint64
	// SentAt and DeliverAt are reference times.
	SentAt, DeliverAt clock.Microticks
	// Attempts is 1 plus the number of simulated losses.
	Attempts int
	// Payload is the application message (an event occurrence or a
	// heartbeat in ddetect).
	Payload any
}

// Config describes link behaviour.  The zero value is a perfect network:
// zero latency, no jitter, no loss.
type Config struct {
	// BaseLatency is the fixed one-way delay.
	BaseLatency clock.Microticks
	// Jitter adds a uniform random delay in [0, Jitter).  Jitter larger
	// than the inter-message gap reorders messages on a link.
	Jitter clock.Microticks
	// DropRate is the per-transmission loss probability in [0, 1); each
	// loss costs RetransmitDelay before the next attempt.
	DropRate float64
	// RetransmitDelay is the delay added per lost transmission.
	RetransmitDelay clock.Microticks
	// Seed makes the jitter/loss schedule reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseLatency < 0 || c.Jitter < 0 || c.RetransmitDelay < 0 {
		return fmt.Errorf("network: negative delay in config %+v", c)
	}
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("network: DropRate %v outside [0, 1)", c.DropRate)
	}
	if c.DropRate > 0 && c.RetransmitDelay == 0 {
		return fmt.Errorf("network: DropRate without RetransmitDelay would be a free drop")
	}
	return nil
}

// Stats counts bus activity.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	Retransmitted uint64
	MaxInFlight   int
}

// Bus is the deterministic simulated network.  It is safe for concurrent
// use, though the simulation driver typically owns it from one goroutine.
type Bus struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	queue   deliveryQueue
	pushSeq uint64
	linkSeq map[linkKey]uint64
	stats   Stats
}

type linkKey struct {
	from, to core.SiteID
}

// NewBus creates a bus; it panics on an invalid configuration (a
// configuration is code, not input).
func NewBus(cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		linkSeq: make(map[linkKey]uint64),
	}
}

// Send enqueues a message at reference time now and returns it with its
// link sequence number and delivery time filled in.
func (b *Bus) Send(now clock.Microticks, from, to core.SiteID, payload any) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := linkKey{from: from, to: to}
	b.linkSeq[k]++
	delay := b.cfg.BaseLatency
	if b.cfg.Jitter > 0 {
		delay += b.rng.Int63n(b.cfg.Jitter)
	}
	attempts := 1
	for b.cfg.DropRate > 0 && b.rng.Float64() < b.cfg.DropRate {
		delay += b.cfg.RetransmitDelay
		attempts++
	}
	m := Message{
		From:      from,
		To:        to,
		Seq:       b.linkSeq[k],
		SentAt:    now,
		DeliverAt: now + delay,
		Attempts:  attempts,
		Payload:   payload,
	}
	b.pushSeq++
	heap.Push(&b.queue, &queued{msg: m, order: b.pushSeq})
	b.stats.Sent++
	if attempts > 1 {
		b.stats.Retransmitted += uint64(attempts - 1)
	}
	if n := b.queue.Len(); n > b.stats.MaxInFlight {
		b.stats.MaxInFlight = n
	}
	return m
}

// DrainDue pops every message due at or before now, in deterministic
// (DeliverAt, send order) order, appending to buf (pass the previous
// tick's slice, resliced to zero length, to reuse its backing array).
// This is the batch form the transport stage drains the bus with: one
// lock acquisition and one pre-sized append run per tick instead of a
// lock round trip per message.
func (b *Bus) DrainDue(now clock.Microticks, buf []Message) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Pre-size: count the due messages (a linear scan over the heap
	// slice, no allocation) and grow buf once.
	due := 0
	for _, q := range b.queue {
		if q.msg.DeliverAt <= now {
			due++
		}
	}
	if due == 0 {
		return buf
	}
	if free := cap(buf) - len(buf); free < due {
		grown := make([]Message, len(buf), len(buf)+due)
		copy(grown, buf)
		buf = grown
	}
	for b.queue.Len() > 0 && b.queue[0].msg.DeliverAt <= now {
		q := heap.Pop(&b.queue).(*queued)
		b.stats.Delivered++
		buf = append(buf, q.msg)
	}
	return buf
}

// DeliverDue pops every message due at or before now, in deterministic
// (DeliverAt, send order) order, and hands each to fn.
func (b *Bus) DeliverDue(now clock.Microticks, fn func(Message)) int {
	n := 0
	for {
		b.mu.Lock()
		if b.queue.Len() == 0 || b.queue[0].msg.DeliverAt > now {
			b.mu.Unlock()
			return n
		}
		q := heap.Pop(&b.queue).(*queued)
		b.stats.Delivered++
		b.mu.Unlock()
		fn(q.msg)
		n++
	}
}

// Pending returns the number of in-flight messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queue.Len()
}

// NextDeliveryAt returns the earliest pending delivery time.
func (b *Bus) NextDeliveryAt() (clock.Microticks, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.queue.Len() == 0 {
		return 0, false
	}
	return b.queue[0].msg.DeliverAt, true
}

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

type queued struct {
	msg   Message
	order uint64
}

type deliveryQueue []*queued

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if q[i].msg.DeliverAt != q[j].msg.DeliverAt {
		return q[i].msg.DeliverAt < q[j].msg.DeliverAt
	}
	return q[i].order < q[j].order
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*queued)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
