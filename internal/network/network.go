// Package network simulates the message-passing substrate of a distributed
// event-detection system: point-to-point links with configurable latency,
// jitter and loss-with-retransmission, driven by the same simulated clock
// as everything else (internal/clock), so every adversarial delivery
// schedule is deterministic and reproducible.
//
// The bus is reliable but unordered: a message is never lost for good
// (loss is modelled as retransmission delay, the abstraction a CEP
// transport needs), but jitter freely reorders messages on a link.  The
// distributed detector (internal/ddetect) restores per-link FIFO order
// from the sequence numbers the bus stamps and uses watermarks for
// cross-site ordering, exactly the problem Section 5 of the paper's
// timestamp algebra exists to solve.
//
// A message may carry more than one application envelope: SendBatch
// models one physical frame coalescing a tick's traffic for a link (the
// transport batching of internal/ddetect), and the Stats distinguish
// messages sent from envelopes carried so the coalescing ratio is
// measurable.  SendUnbatched is the differential twin — the same traffic
// as envelope-per-message frames under the same delay schedule — used to
// prove batching is a pure transport optimization.
package network

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
)

// Message is one transmission on the bus.
type Message struct {
	From, To core.SiteID
	// FromSite and ToSite are the dense roster indexes of From and To when
	// the message was sent through one of the roster-native Site methods;
	// core.NoSite otherwise.  Receivers on the hot path dispatch on these
	// instead of re-resolving the string IDs.
	FromSite, ToSite core.Site
	// Seq is the per-(From,To)-link FIFO sequence number, starting at 1.
	Seq uint64
	// SentAt and DeliverAt are reference times.
	SentAt, DeliverAt clock.Microticks
	// Attempts is 1 plus the number of simulated losses.
	Attempts int
	// Payload is the application message (an event occurrence, a
	// heartbeat, or a coalesced multi-envelope batch in ddetect).
	Payload any
}

// Config describes link behaviour.  The zero value is a perfect network:
// zero latency, no jitter, no loss.
type Config struct {
	// BaseLatency is the fixed one-way delay.
	BaseLatency clock.Microticks
	// Jitter adds a uniform random delay in [0, Jitter).  Jitter larger
	// than the inter-message gap reorders messages on a link.
	Jitter clock.Microticks
	// DropRate is the per-transmission loss probability in [0, 1); each
	// loss costs RetransmitDelay before the next attempt.
	DropRate float64
	// RetransmitDelay is the delay added per lost transmission.
	RetransmitDelay clock.Microticks
	// Seed makes the jitter/loss schedule reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseLatency < 0 || c.Jitter < 0 || c.RetransmitDelay < 0 {
		return fmt.Errorf("network: negative delay in config %+v", c)
	}
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("network: DropRate %v outside [0, 1)", c.DropRate)
	}
	if c.DropRate > 0 && c.RetransmitDelay == 0 {
		return fmt.Errorf("network: DropRate without RetransmitDelay would be a free drop")
	}
	return nil
}

// Stats counts bus activity.  Sent counts bus messages; Envelopes counts
// the application envelopes they carried (equal when nothing is batched),
// so Envelopes/Sent is the coalescing ratio of the transport layer.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	Retransmitted uint64
	MaxInFlight   int
	// Envelopes is the number of application envelopes carried across
	// all messages (SendBatch adds its whole batch to one message).
	Envelopes uint64
	// Batches is the number of messages that coalesced more than one
	// envelope.
	Batches uint64
	// PayloadBytes accumulates serialized payload sizes where the sender
	// reported them (zero for in-memory payloads).
	PayloadBytes uint64
}

// LinkStat is the per-(from,to)-link activity breakdown.
type LinkStat struct {
	From, To  core.SiteID
	Sent      uint64
	Envelopes uint64
	Batches   uint64
	Bytes     uint64
}

// Bus is the deterministic simulated network.  It is safe for concurrent
// use, though the simulation driver typically owns it from one goroutine.
type Bus struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	queue   deliveryQueue
	pushSeq uint64
	links   map[linkKey]*linkState
	// byFrom is the dense (from,to) link index, populated once SetRoster
	// attaches a roster: byFrom[from] holds the destinations this site has
	// ever sent to, resolved by a short linear scan (a site's out-degree is
	// the number of sinks it feeds — small by construction, see ddetect's
	// seal).  It indexes the same *linkState values as the string map, which
	// stays authoritative for rosterless sends and LinkStats enumeration.
	byFrom []fromLinks
	roster *core.Roster
	stats  Stats
}

type linkKey struct {
	from, to core.SiteID
}

// fromLinks is one site's outbound links: parallel destination-index and
// state slices, appended on first use and scanned linearly.
type fromLinks struct {
	tos []core.Site
	ls  []*linkState
}

// linkState carries the per-link FIFO counter and activity counters in
// one map entry, so the Send hot path resolves a link with one lookup.
type linkState struct {
	key       linkKey
	seq       uint64
	sent      uint64
	envelopes uint64
	batches   uint64
	bytes     uint64
}

// NewBus creates a bus; it panics on an invalid configuration (a
// configuration is code, not input).
func NewBus(cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		links: make(map[linkKey]*linkState),
	}
}

// SetRoster attaches the sealed site roster, enabling the dense link
// index and the Site send methods.  Call it before traffic flows (ddetect
// does so at seal); links opened earlier through the string path are
// re-homed into the dense index.
func (b *Bus) SetRoster(r *core.Roster) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roster = r
	b.byFrom = make([]fromLinks, r.Len())
	for k, ls := range b.links { //lint:allow mapiter — one-time re-home at seal; per-link state is independent, so index order is immaterial
		f, t := r.Site(k.from), r.Site(k.to)
		if f != core.NoSite && t != core.NoSite {
			b.byFrom[f].tos = append(b.byFrom[f].tos, t)
			b.byFrom[f].ls = append(b.byFrom[f].ls, ls)
		}
	}
}

// link returns (creating on first use) the state for a link, keeping the
// dense index in sync when a roster is attached.
func (b *Bus) link(from, to core.SiteID) *linkState {
	k := linkKey{from: from, to: to}
	ls := b.links[k]
	if ls == nil {
		ls = &linkState{key: k}
		b.links[k] = ls
		if b.roster != nil {
			if f, t := b.roster.Site(from), b.roster.Site(to); f != core.NoSite && t != core.NoSite {
				b.byFrom[f].tos = append(b.byFrom[f].tos, t)
				b.byFrom[f].ls = append(b.byFrom[f].ls, ls)
			}
		}
	}
	return ls
}

// linkSite resolves a link by dense indexes: a short scan of the sender's
// destination list, falling through to creation on first use.  Requires a
// roster (the Site send methods are unreachable without one).
func (b *Bus) linkSite(from, to core.Site) *linkState {
	fl := &b.byFrom[from]
	for i, t := range fl.tos {
		if t == to {
			return fl.ls[i]
		}
	}
	ls := &linkState{key: linkKey{from: b.roster.ID(from), to: b.roster.ID(to)}}
	fl.tos = append(fl.tos, to)
	fl.ls = append(fl.ls, ls)
	b.links[ls.key] = ls
	return ls
}

// draw rolls one latency/jitter/loss schedule: the delay until delivery
// and the number of transmission attempts.  Caller holds b.mu.
func (b *Bus) draw() (delay clock.Microticks, attempts int) {
	delay = b.cfg.BaseLatency
	if b.cfg.Jitter > 0 {
		delay += b.rng.Int63n(b.cfg.Jitter)
	}
	attempts = 1
	for b.cfg.DropRate > 0 && b.rng.Float64() < b.cfg.DropRate {
		delay += b.cfg.RetransmitDelay
		attempts++
	}
	return delay, attempts
}

// enqueue pushes one message and maintains the send-side counters.
// Caller holds b.mu.
func (b *Bus) enqueue(m Message) {
	b.pushSeq++
	b.queue.push(queued{msg: m, order: b.pushSeq})
	b.stats.Sent++
	if n := len(b.queue); n > b.stats.MaxInFlight {
		b.stats.MaxInFlight = n
	}
}

// Send enqueues a single-envelope message at reference time now and
// returns it with its link sequence number and delivery time filled in.
//
//sentinel:hotpath
func (b *Bus) Send(now clock.Microticks, from, to core.SiteID, payload any) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	ls := b.link(from, to)
	delay, attempts := b.draw()
	ls.seq++
	m := Message{
		From:      from,
		To:        to,
		FromSite:  core.NoSite,
		ToSite:    core.NoSite,
		Seq:       ls.seq,
		SentAt:    now,
		DeliverAt: now + delay,
		Attempts:  attempts,
		Payload:   payload,
	}
	if b.roster != nil {
		m.FromSite, m.ToSite = b.roster.Site(from), b.roster.Site(to)
	}
	b.enqueue(m)
	ls.sent++
	ls.envelopes++
	b.stats.Envelopes++
	if attempts > 1 {
		b.stats.Retransmitted += uint64(attempts - 1)
	}
	return m
}

// SendBatch enqueues one message carrying envelopes coalesced application
// envelopes (the payload is their container — a slice or an encoded batch
// frame of bytes bytes; pass bytes 0 for in-memory payloads).  The batch
// consumes exactly one latency/jitter/loss draw: it models one physical
// frame on the link.
//
//sentinel:hotpath
func (b *Bus) SendBatch(now clock.Microticks, from, to core.SiteID, payload any, envelopes, bytes int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	fromSite, toSite := core.NoSite, core.NoSite
	if b.roster != nil {
		fromSite, toSite = b.roster.Site(from), b.roster.Site(to)
	}
	return b.sendBatchLocked(now, b.link(from, to), from, to, fromSite, toSite, payload, envelopes, bytes)
}

// SendBatchSite is SendBatch addressed by dense roster indexes — the form
// the transport coalescer uses once the topology is sealed.  Link
// resolution is a slice index plus a short scan; no string is hashed.
//
//sentinel:hotpath
func (b *Bus) SendBatchSite(now clock.Microticks, from, to core.Site, payload any, envelopes, bytes int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	ls := b.linkSite(from, to)
	return b.sendBatchLocked(now, ls, ls.key.from, ls.key.to, from, to, payload, envelopes, bytes)
}

// sendBatchLocked is the shared body of SendBatch/SendBatchSite.  Caller
// holds b.mu.
func (b *Bus) sendBatchLocked(now clock.Microticks, ls *linkState, from, to core.SiteID,
	fromSite, toSite core.Site, payload any, envelopes, bytes int) Message {
	delay, attempts := b.draw()
	ls.seq++
	m := Message{
		From:      from,
		To:        to,
		FromSite:  fromSite,
		ToSite:    toSite,
		Seq:       ls.seq,
		SentAt:    now,
		DeliverAt: now + delay,
		Attempts:  attempts,
		Payload:   payload,
	}
	b.enqueue(m)
	ls.sent++
	ls.envelopes += uint64(envelopes)
	ls.bytes += uint64(bytes)
	b.stats.Envelopes += uint64(envelopes)
	b.stats.PayloadBytes += uint64(bytes)
	if envelopes > 1 {
		ls.batches++
		b.stats.Batches++
	}
	if attempts > 1 {
		b.stats.Retransmitted += uint64(attempts - 1)
	}
	return m
}

// SendUnbatched enqueues n consecutive messages on the (from,to) link —
// payloadAt(i) supplies the i-th payload — all sharing a single
// latency/jitter/loss draw, exactly the schedule SendBatch would give the
// same traffic as one coalesced frame.  It is the differential twin of
// SendBatch (ddetect's DisableBatching mode): per-envelope framing, same
// deterministic delivery order, so detection results can be compared
// byte for byte.  payloadAt is invoked with the bus lock held and must
// not call back into the Bus.
//
//sentinel:hotpath
func (b *Bus) SendUnbatched(now clock.Microticks, from, to core.SiteID, n int, payloadAt func(int) any) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fromSite, toSite := core.NoSite, core.NoSite
	if b.roster != nil {
		fromSite, toSite = b.roster.Site(from), b.roster.Site(to)
	}
	b.sendUnbatchedLocked(b.link(from, to), now, from, to, fromSite, toSite, n, payloadAt)
}

// SendUnbatchedSite is SendUnbatched addressed by dense roster indexes.
//
//sentinel:hotpath
func (b *Bus) SendUnbatchedSite(now clock.Microticks, from, to core.Site, n int, payloadAt func(int) any) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ls := b.linkSite(from, to)
	b.sendUnbatchedLocked(ls, now, ls.key.from, ls.key.to, from, to, n, payloadAt)
}

// sendUnbatchedLocked is the shared body of SendUnbatched and its Site
// twin.  Caller holds b.mu.
func (b *Bus) sendUnbatchedLocked(ls *linkState, now clock.Microticks, from, to core.SiteID,
	fromSite, toSite core.Site, n int, payloadAt func(int) any) {
	delay, attempts := b.draw()
	for i := 0; i < n; i++ {
		ls.seq++
		b.enqueue(Message{
			From:      from,
			To:        to,
			FromSite:  fromSite,
			ToSite:    toSite,
			Seq:       ls.seq,
			SentAt:    now,
			DeliverAt: now + delay,
			Attempts:  attempts,
			Payload:   payloadAt(i),
		})
	}
	ls.sent += uint64(n)
	ls.envelopes += uint64(n)
	b.stats.Envelopes += uint64(n)
	if attempts > 1 {
		b.stats.Retransmitted += uint64(attempts - 1)
	}
}

// DrainDue pops every message due at or before now, in deterministic
// (DeliverAt, send order) order, appending to buf (pass the previous
// tick's slice, resliced to zero length, to reuse its backing array).
// This is the batch form the transport stage drains the bus with: one
// lock acquisition and one pre-sized append run per tick instead of a
// lock round trip per message.
//
//sentinel:hotpath
func (b *Bus) DrainDue(now clock.Microticks, buf []Message) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Pre-size: count the due messages (a linear scan over the heap
	// slice, no allocation) and grow buf once.
	due := 0
	for i := range b.queue {
		if b.queue[i].msg.DeliverAt <= now {
			due++
		}
	}
	if due == 0 {
		return buf
	}
	if free := cap(buf) - len(buf); free < due {
		//lint:allow hotalloc — amortized growth of the caller-owned reuse buffer; steady state reuses the grown capacity tick after tick
		grown := make([]Message, len(buf), len(buf)+due)
		copy(grown, buf)
		buf = grown
	}
	for len(b.queue) > 0 && b.queue[0].msg.DeliverAt <= now {
		buf = append(buf, b.queue.pop().msg)
	}
	b.stats.Delivered += uint64(due)
	return buf
}

// DeliverDue pops every message due at or before now, in deterministic
// (DeliverAt, send order) order, and hands each to fn.
//
//sentinel:hotpath
func (b *Bus) DeliverDue(now clock.Microticks, fn func(Message)) int {
	n := 0
	for {
		b.mu.Lock()
		if len(b.queue) == 0 || b.queue[0].msg.DeliverAt > now {
			b.mu.Unlock()
			return n
		}
		q := b.queue.pop()
		b.stats.Delivered++
		b.mu.Unlock()
		fn(q.msg)
		n++
	}
}

// Pending returns the number of in-flight messages.
func (b *Bus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// NextDeliveryAt returns the earliest pending delivery time.
func (b *Bus) NextDeliveryAt() (clock.Microticks, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return 0, false
	}
	return b.queue[0].msg.DeliverAt, true
}

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// LinkStats returns the per-link activity breakdown, sorted by (From, To)
// for deterministic reporting.
func (b *Bus) LinkStats() []LinkStat {
	b.mu.Lock()
	out := make([]LinkStat, 0, len(b.links))
	for _, ls := range b.links { //lint:allow mapiter — snapshot is sorted below; map order never escapes
		out = append(out, LinkStat{
			From: ls.key.from, To: ls.key.to,
			Sent: ls.sent, Envelopes: ls.envelopes, Batches: ls.batches, Bytes: ls.bytes,
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

type queued struct {
	msg   Message
	order uint64
}

func (q queued) less(u queued) bool {
	if q.msg.DeliverAt != u.msg.DeliverAt {
		return q.msg.DeliverAt < u.msg.DeliverAt
	}
	return q.order < u.order
}

// deliveryQueue is a value-based binary min-heap on (DeliverAt, send
// order).  Like ddetect's readyQueue it deliberately avoids
// container/heap: entries live by value in one backing array (no per-item
// allocation) and push/pop sift directly (no interface boxing on the
// per-message hot path).
type deliveryQueue []queued

func (q *deliveryQueue) push(it queued) {
	*q = append(*q, it)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *deliveryQueue) pop() queued {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = queued{} // release the payload reference
	h = h[:n]
	*q = h
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			least = r
		}
		if !h[least].less(h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}
