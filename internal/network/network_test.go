package network

import (
	"testing"
)

func TestPerfectNetworkDeliversInOrder(t *testing.T) {
	b := NewBus(Config{})
	for i := 0; i < 5; i++ {
		b.Send(int64(i), "a", "b", i)
	}
	var got []int
	b.DeliverDue(100, func(m Message) { got = append(got, m.Payload.(int)) })
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestLinkSequenceNumbers(t *testing.T) {
	b := NewBus(Config{})
	m1 := b.Send(0, "a", "b", nil)
	m2 := b.Send(0, "a", "b", nil)
	m3 := b.Send(0, "a", "c", nil)
	m4 := b.Send(0, "c", "b", nil)
	if m1.Seq != 1 || m2.Seq != 2 {
		t.Errorf("same-link seqs = %d, %d", m1.Seq, m2.Seq)
	}
	if m3.Seq != 1 || m4.Seq != 1 {
		t.Errorf("distinct links must have independent seqs: %d, %d", m3.Seq, m4.Seq)
	}
}

func TestLatencyDefersDelivery(t *testing.T) {
	b := NewBus(Config{BaseLatency: 50})
	b.Send(10, "a", "b", "x")
	n := b.DeliverDue(59, func(Message) {})
	if n != 0 {
		t.Fatalf("delivered before due")
	}
	if due, ok := b.NextDeliveryAt(); !ok || due != 60 {
		t.Fatalf("NextDeliveryAt = %d, %v", due, ok)
	}
	if n := b.DeliverDue(60, func(Message) {}); n != 1 {
		t.Fatalf("due message not delivered")
	}
	if _, ok := b.NextDeliveryAt(); ok {
		t.Fatalf("queue should be empty")
	}
}

func TestJitterReorders(t *testing.T) {
	b := NewBus(Config{BaseLatency: 10, Jitter: 100, Seed: 1})
	const n = 50
	for i := 0; i < n; i++ {
		b.Send(int64(i), "a", "b", i)
	}
	var got []int
	b.DeliverDue(1_000, func(m Message) { got = append(got, m.Payload.(int)) })
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("jitter 10x the gap should reorder at least one pair")
	}
}

func TestDropsRetransmit(t *testing.T) {
	b := NewBus(Config{DropRate: 0.5, RetransmitDelay: 100, Seed: 3})
	const n = 100
	for i := 0; i < n; i++ {
		b.Send(0, "a", "b", i)
	}
	delivered := 0
	b.DeliverDue(1_000_000, func(Message) { delivered++ })
	if delivered != n {
		t.Fatalf("reliable delivery broken: %d of %d", delivered, n)
	}
	st := b.Stats()
	if st.Retransmitted == 0 {
		t.Fatalf("no retransmissions at 50%% drop rate")
	}
	if st.Sent != n || st.Delivered != n {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAttemptsRecorded(t *testing.T) {
	b := NewBus(Config{DropRate: 0.9, RetransmitDelay: 10, Seed: 12})
	m := b.Send(0, "a", "b", nil)
	if m.Attempts < 1 {
		t.Fatalf("Attempts = %d", m.Attempts)
	}
	if m.DeliverAt != int64(m.Attempts-1)*10 {
		t.Fatalf("delay %d inconsistent with %d attempts", m.DeliverAt, m.Attempts)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	mk := func() []int64 {
		b := NewBus(Config{BaseLatency: 5, Jitter: 50, DropRate: 0.2, RetransmitDelay: 30, Seed: 42})
		var due []int64
		for i := 0; i < 20; i++ {
			due = append(due, b.Send(int64(i), "a", "b", nil).DeliverAt)
		}
		return due
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BaseLatency: -1},
		{Jitter: -1},
		{DropRate: -0.1},
		{DropRate: 1.0, RetransmitDelay: 1},
		{DropRate: 0.5}, // no retransmit delay
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestNewBusPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewBus must panic on invalid config")
		}
	}()
	NewBus(Config{DropRate: -1})
}

func TestMaxInFlightTracked(t *testing.T) {
	b := NewBus(Config{BaseLatency: 100})
	for i := 0; i < 7; i++ {
		b.Send(0, "a", "b", nil)
	}
	if st := b.Stats(); st.MaxInFlight != 7 {
		t.Fatalf("MaxInFlight = %d, want 7", st.MaxInFlight)
	}
	if b.Pending() != 7 {
		t.Fatalf("Pending = %d", b.Pending())
	}
}
