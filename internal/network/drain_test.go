package network

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// TestDrainDueMatchesDeliverDue pins that the batch-drain path yields
// exactly the per-message path's messages, in the same deterministic
// (DeliverAt, send order) order, and reuses the caller's buffer.
func TestDrainDueMatchesDeliverDue(t *testing.T) {
	cfg := Config{BaseLatency: 10, Jitter: 50, Seed: 8}
	load := func(b *Bus) {
		for i := 0; i < 200; i++ {
			b.Send(clock.Microticks(i), "a", "b", i)
			b.Send(clock.Microticks(i), "b", "a", i)
		}
	}
	one := NewBus(cfg)
	load(one)
	var want []Message
	for now := clock.Microticks(0); one.Pending() > 0; now += 25 {
		one.DeliverDue(now, func(m Message) { want = append(want, m) })
	}

	batch := NewBus(cfg)
	load(batch)
	var got []Message
	var buf []Message
	for now := clock.Microticks(0); batch.Pending() > 0; now += 25 {
		buf = batch.DrainDue(now, buf[:0])
		got = append(got, buf...)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d messages, delivered %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if batch.Stats().Delivered != one.Stats().Delivered {
		t.Fatalf("delivered stats diverge: %d vs %d", batch.Stats().Delivered, one.Stats().Delivered)
	}
}

func TestDrainDueEmptyAndBufferGrowth(t *testing.T) {
	b := NewBus(Config{})
	if got := b.DrainDue(100, nil); got != nil {
		t.Fatalf("empty bus drained %v", got)
	}
	for i := 0; i < 10; i++ {
		b.Send(0, "a", "b", i)
	}
	buf := make([]Message, 0, 2) // force growth
	buf = b.DrainDue(0, buf)
	if len(buf) != 10 {
		t.Fatalf("drained %d of 10", len(buf))
	}
	for i, m := range buf {
		if m.Payload.(int) != i {
			t.Fatalf("message %d out of order: %v", i, m.Payload)
		}
	}
}

// loadBus enqueues n messages across k links, all due by horizon.
func loadBus(b *Bus, n int) {
	for i := 0; i < n; i++ {
		from := core.SiteID(fmt.Sprintf("s%d", i%8))
		to := core.SiteID(fmt.Sprintf("s%d", (i+1)%8))
		b.Send(clock.Microticks(i%100), from, to, i)
	}
}

// BenchmarkDeliverDue measures the legacy per-message drain (one lock
// round trip per message).
func BenchmarkDeliverDue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bus := NewBus(Config{BaseLatency: 5, Jitter: 20, Seed: 1})
		loadBus(bus, 1024)
		b.StartTimer()
		n := 0
		bus.DeliverDue(1_000_000, func(m Message) { n++ })
		if n != 1024 {
			b.Fatalf("delivered %d", n)
		}
	}
}

// BenchmarkDrainDue measures the batch-drain path the transport stage
// uses: one lock acquisition, one pre-sized batch slice reused across
// iterations.
func BenchmarkDrainDue(b *testing.B) {
	b.ReportAllocs()
	var buf []Message
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bus := NewBus(Config{BaseLatency: 5, Jitter: 20, Seed: 1})
		loadBus(bus, 1024)
		b.StartTimer()
		buf = bus.DrainDue(1_000_000, buf[:0])
		if len(buf) != 1024 {
			b.Fatalf("drained %d", len(buf))
		}
	}
}
