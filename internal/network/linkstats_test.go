package network

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// meshTraffic drives a deterministic mix of single sends, coalesced
// batches and unbatched runs over a 3-site mesh and returns the bus
// send-side expectation per link.
func meshTraffic(b *Bus) map[linkKey]LinkStat {
	sites := []core.SiteID{"a", "b", "c"}
	want := map[linkKey]LinkStat{}
	acc := func(from, to core.SiteID, sent, envs, batches, bytes uint64) {
		k := linkKey{from: from, to: to}
		ls := want[k]
		ls.From, ls.To = from, to
		ls.Sent += sent
		ls.Envelopes += envs
		ls.Batches += batches
		ls.Bytes += bytes
		want[k] = ls
	}
	now := clock.Microticks(0)
	for round := 0; round < 20; round++ {
		now += 10
		for i, from := range sites {
			to := sites[(i+1)%len(sites)]
			b.Send(now, from, to, round)
			acc(from, to, 1, 1, 0, 0)
			if round%2 == 0 {
				back := sites[(i+2)%len(sites)]
				b.SendBatch(now, from, back, []int{round, round}, 2, 64)
				acc(from, back, 1, 2, 1, 64)
			}
			if round%5 == 0 {
				b.SendUnbatched(now, from, to, 3, func(j int) any { return j })
				acc(from, to, 3, 3, 0, 0)
			}
		}
	}
	return want
}

// TestLinkStatsUnderLossAndReorder pins that loss and reorder are
// delivery-side phenomena: the per-link send accounting (sent, envelopes,
// batches, payload bytes) is exact under heavy jitter and drop, the
// snapshot stays (From, To)-sorted, and the per-link rows sum to the
// global Stats counters.
func TestLinkStatsUnderLossAndReorder(t *testing.T) {
	b := NewBus(Config{BaseLatency: 5, Jitter: 50, DropRate: 0.3, RetransmitDelay: 40, Seed: 8})
	want := meshTraffic(b)

	got := b.LinkStats()
	if len(got) != len(want) {
		t.Fatalf("got %d links, want %d", len(got), len(want))
	}
	var sum Stats
	for i, ls := range got {
		if i > 0 {
			prev := got[i-1]
			if prev.From > ls.From || (prev.From == ls.From && prev.To >= ls.To) {
				t.Fatalf("LinkStats not sorted by (From, To): %v before %v", prev, ls)
			}
		}
		if w := want[linkKey{from: ls.From, to: ls.To}]; ls != w {
			t.Errorf("link %s->%s = %+v, want %+v (adversity must not leak into send accounting)",
				ls.From, ls.To, ls, w)
		}
		sum.Sent += ls.Sent
		sum.Envelopes += ls.Envelopes
		sum.Batches += ls.Batches
		sum.PayloadBytes += ls.Bytes
	}

	st := b.Stats()
	if st.Retransmitted == 0 {
		t.Fatal("30% drop never retransmitted — adversity misconfigured, test is vacuous")
	}
	if sum.Sent != st.Sent || sum.Envelopes != st.Envelopes ||
		sum.Batches != st.Batches || sum.PayloadBytes != st.PayloadBytes {
		t.Errorf("per-link sums %+v disagree with bus totals %+v", sum, st)
	}

	// Draining to quiescence delivers every message exactly once despite
	// the scrambled schedule.
	delivered := 0
	for b.Pending() > 0 {
		at, _ := b.NextDeliveryAt()
		delivered += b.DeliverDue(at, func(m Message) {
			if m.SentAt > at {
				t.Errorf("message delivered before it was sent: %+v", m)
			}
		})
	}
	if uint64(delivered) != st.Sent {
		t.Fatalf("delivered %d of %d sent messages", delivered, st.Sent)
	}
	if b.Stats().Delivered != st.Sent {
		t.Fatalf("Delivered counter %d, want %d", b.Stats().Delivered, st.Sent)
	}
}

// TestLinkStatsAdversityInvariant pins the stronger differential claim:
// the entire LinkStats snapshot is byte-identical between a perfect
// network and a jittery, lossy one fed the same traffic — the delivery
// schedule owns delay and retransmission, the links own accounting.
func TestLinkStatsAdversityInvariant(t *testing.T) {
	perfect := NewBus(Config{})
	adverse := NewBus(Config{BaseLatency: 20, Jitter: 200, DropRate: 0.25, RetransmitDelay: 75, Seed: 3})
	meshTraffic(perfect)
	meshTraffic(adverse)
	a, p := adverse.LinkStats(), perfect.LinkStats()
	if !reflect.DeepEqual(a, p) {
		t.Fatalf("link accounting diverges under adversity:\nperfect: %+v\nadverse: %+v", p, a)
	}
	if adverse.Stats().Retransmitted == 0 {
		t.Fatal("adverse bus never retransmitted — comparison is vacuous")
	}
}

// TestLinkStatsReorderWithinLink pins that jitter beyond the send gap
// reorders deliveries on a single link while the link's FIFO sequence
// numbers stay monotone in send order — the property ddetect's reorder
// buffer rebuilds FIFO from.
func TestLinkStatsReorderWithinLink(t *testing.T) {
	b := NewBus(Config{BaseLatency: 1, Jitter: 500, Seed: 11})
	const n = 40
	for i := 0; i < n; i++ {
		b.Send(clock.Microticks(i*5), "a", "b", i)
	}
	var seqs []uint64
	for b.Pending() > 0 {
		at, _ := b.NextDeliveryAt()
		b.DeliverDue(at, func(m Message) { seqs = append(seqs, m.Seq) })
	}
	if len(seqs) != n {
		t.Fatalf("delivered %d of %d", len(seqs), n)
	}
	inOrder := true
	seen := map[uint64]bool{}
	for i, s := range seqs {
		if seen[s] {
			t.Fatalf("sequence %d delivered twice", s)
		}
		seen[s] = true
		if i > 0 && seqs[i-1] > s {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("jitter 100x the send gap never reordered the link: %v", seqs)
	}
	ls := b.LinkStats()
	if len(ls) != 1 || ls[0].Sent != n || ls[0].Envelopes != n || ls[0].Batches != 0 {
		t.Fatalf("link stats = %+v, want one a->b link with %d singles", ls, n)
	}
	if got := fmt.Sprintf("%s->%s", ls[0].From, ls[0].To); got != "a->b" {
		t.Fatalf("link identity = %s", got)
	}
}
