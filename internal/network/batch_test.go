package network

import (
	"reflect"
	"testing"
)

func TestSendBatchCountsEnvelopes(t *testing.T) {
	b := NewBus(Config{})
	m := b.SendBatch(0, "a", "b", []int{1, 2, 3}, 3, 120)
	if m.Seq != 1 {
		t.Fatalf("Seq = %d, want 1", m.Seq)
	}
	b.Send(0, "a", "b", nil) // singles share the same link seq space
	st := b.Stats()
	if st.Sent != 2 || st.Envelopes != 4 || st.Batches != 1 || st.PayloadBytes != 120 {
		t.Fatalf("stats = %+v", st)
	}
	links := b.LinkStats()
	if len(links) != 1 {
		t.Fatalf("links = %+v", links)
	}
	want := LinkStat{From: "a", To: "b", Sent: 2, Envelopes: 4, Batches: 1, Bytes: 120}
	if links[0] != want {
		t.Fatalf("link stat = %+v, want %+v", links[0], want)
	}
}

func TestSendBatchSingleEnvelopeIsNotABatch(t *testing.T) {
	b := NewBus(Config{})
	b.SendBatch(0, "a", "b", []int{1}, 1, 0)
	if st := b.Stats(); st.Batches != 0 || st.Envelopes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// SendUnbatched must give its n messages the exact delivery schedule
// SendBatch would give the same traffic as one frame: one delay/loss
// draw, shared DeliverAt and Attempts, consecutive link seqs.  ddetect's
// DisableBatching differential mode depends on this.
func TestSendUnbatchedSharesOneDraw(t *testing.T) {
	cfg := Config{BaseLatency: 5, Jitter: 50, DropRate: 0.3, RetransmitDelay: 40, Seed: 7}

	batched := NewBus(cfg)
	bm := batched.SendBatch(100, "a", "b", "frame", 3, 0)
	after := batched.Send(100, "a", "c", nil) // next draw on a fresh bus state

	un := NewBus(cfg)
	var msgs []Message
	un.SendUnbatched(100, "a", "b", 3, func(i int) any { return i })
	un.DeliverDue(1<<40, func(m Message) { msgs = append(msgs, m) })
	if len(msgs) != 3 {
		t.Fatalf("delivered %d, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.Seq != uint64(i+1) {
			t.Errorf("msg %d Seq = %d", i, m.Seq)
		}
		if m.DeliverAt != bm.DeliverAt || m.Attempts != bm.Attempts {
			t.Errorf("msg %d schedule (%d, %d) diverged from batch (%d, %d)",
				i, m.DeliverAt, m.Attempts, bm.DeliverAt, bm.Attempts)
		}
		if m.Payload.(int) != i {
			t.Errorf("msg %d payload = %v", i, m.Payload)
		}
	}
	// Both modes consumed exactly one draw: the NEXT send sees the same
	// RNG state.
	unAfter := un.Send(100, "a", "c", nil)
	if unAfter.DeliverAt != after.DeliverAt || unAfter.Attempts != after.Attempts {
		t.Fatalf("post-flush draw diverged: (%d, %d) vs (%d, %d)",
			unAfter.DeliverAt, unAfter.Attempts, after.DeliverAt, after.Attempts)
	}

	if st := un.Stats(); st.Sent != 4 || st.Envelopes != 4 || st.Batches != 0 {
		t.Fatalf("unbatched stats = %+v", st)
	}
	if st := batched.Stats(); st.Sent != 2 || st.Envelopes != 4 || st.Batches != 1 {
		t.Fatalf("batched stats = %+v", st)
	}
}

func TestSendUnbatchedZero(t *testing.T) {
	b := NewBus(Config{Jitter: 10, Seed: 1})
	b.SendUnbatched(0, "a", "b", 0, func(int) any { return nil })
	if st := b.Stats(); st.Sent != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// No draw consumed either: schedule matches a fresh bus.
	fresh := NewBus(Config{Jitter: 10, Seed: 1})
	if b.Send(0, "a", "b", nil).DeliverAt != fresh.Send(0, "a", "b", nil).DeliverAt {
		t.Fatalf("SendUnbatched(n=0) consumed an RNG draw")
	}
}

func TestLinkStatsSorted(t *testing.T) {
	b := NewBus(Config{})
	b.Send(0, "c", "a", nil)
	b.Send(0, "a", "b", nil)
	b.Send(0, "a", "a2", nil)
	var got [][2]string
	for _, ls := range b.LinkStats() {
		got = append(got, [2]string{string(ls.From), string(ls.To)})
	}
	want := [][2]string{{"a", "a2"}, {"a", "b"}, {"c", "a"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LinkStats order = %v, want %v", got, want)
	}
}

// The value-based heap must agree with a straightforward sort on the
// (DeliverAt, push order) key across an adversarial schedule.
func TestDeliveryQueueOrdering(t *testing.T) {
	b := NewBus(Config{BaseLatency: 1, Jitter: 200, DropRate: 0.25, RetransmitDelay: 50, Seed: 99})
	const n = 500
	for i := 0; i < n; i++ {
		b.Send(int64(i), "a", "b", i)
	}
	var prevAt int64 = -1
	seen := 0
	var prevPayload int = -1
	b.DeliverDue(1<<40, func(m Message) {
		if m.DeliverAt < prevAt {
			t.Fatalf("DeliverAt went backwards: %d after %d", m.DeliverAt, prevAt)
		}
		if m.DeliverAt == prevAt && m.Payload.(int) < prevPayload {
			t.Fatalf("tie not broken by send order: %d after %d", m.Payload, prevPayload)
		}
		prevAt, prevPayload = m.DeliverAt, m.Payload.(int)
		seen++
	})
	if seen != n {
		t.Fatalf("delivered %d, want %d", seen, n)
	}
}

func BenchmarkBusSend(b *testing.B) {
	bus := NewBus(Config{BaseLatency: 10, Jitter: 40, Seed: 1})
	payload := struct{ x int }{1}
	var drain []Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Send(int64(i), "a", "b", payload)
		if i%1024 == 1023 {
			b.StopTimer()
			drain = bus.DrainDue(int64(i)+1024, drain[:0])
			b.StartTimer()
		}
	}
}

func BenchmarkBusSendBatch(b *testing.B) {
	bus := NewBus(Config{BaseLatency: 10, Jitter: 40, Seed: 1})
	payload := struct{ x int }{1}
	var drain []Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.SendBatch(int64(i), "a", "b", payload, 8, 256)
		if i%1024 == 1023 {
			b.StopTimer()
			drain = bus.DrainDue(int64(i)+1024, drain[:0])
			b.StartTimer()
		}
	}
}
