// Package denote implements the paper's *denotational* operator semantics
// (Sections 3.2 and 5.3) by brute force: given the complete history of
// primitive occurrences, it enumerates every instant at which a composite
// event expression is true, directly from the formulas
//
//	(E1 ∧ E2)(ts) ⇔ ∃t1,t2: E1(t1) ∧ E2(t2)            (conjunction)
//	(E1 ; E2)(ts) ⇔ ∃t1,t2: E1(t1) ∧ E2(t2) ∧ t1 < t2  (sequence)
//	(E1 ∨ E2)(ts) ⇔ E1(ts) ∨ E2(ts)                    (disjunction)
//	¬(E2)(E1,E3)(ts) ⇔ ∃t1: E1(t1) ∧ E3(ts) ∧ t1 < ts
//	                     ∧ ¬∃t2: E2(t2) ∧ t1 < t2 < ts (NOT)
//	A(E1,E2,E3)(ts) ⇔ ∃t1: E1(t1) ∧ E2(ts) ∧ t1 < ts
//	                     ∧ ¬∃t3: E3(t3) ∧ t1 < t3 < ts (aperiodic)
//
// with each detected instant's timestamp the Max of its constituents'
// (Definition 5.9).  The complexity is polynomial in the history length —
// useless as an engine, perfect as an oracle: the incremental detector of
// internal/detector, run in the Unrestricted context, must produce exactly
// these detections.  The comparison is exact for histories published in an
// order where the linear extension equals the stamp order (e.g. totally
// ordered single-site histories); see the tests.
package denote

import (
	"sort"

	"repro/internal/core"
	"repro/internal/event"
)

// History is a complete, finished trace of primitive occurrences.
type History struct {
	byType map[string][]*event.Occurrence
}

// NewHistory indexes a trace by event type.
func NewHistory(occs []*event.Occurrence) *History {
	h := &History{byType: make(map[string][]*event.Occurrence)}
	for _, o := range occs {
		h.byType[o.Type] = append(h.byType[o.Type], o)
	}
	return h
}

// Detection is one instant at which a composite expression is true.
type Detection struct {
	// Stamp is Max over the constituents' timestamps.
	Stamp core.SetStamp
	// Constituents are the primitive occurrences witnessing the formula,
	// in the operator's canonical order.
	Constituents []*event.Occurrence
}

// Of returns the occurrences of a primitive type, as singleton detections.
func (h *History) Of(name string) []Detection {
	occs := h.byType[name]
	out := make([]Detection, len(occs))
	for i, o := range occs {
		out[i] = Detection{Stamp: o.Stamp, Constituents: []*event.Occurrence{o}}
	}
	return out
}

// Or enumerates (E1 ∨ E2): every occurrence of either constituent.
func Or(a, b []Detection) []Detection {
	out := append(append([]Detection{}, a...), b...)
	return canonical(out)
}

// And enumerates (E1 ∧ E2): every pair, in either order, stamped with the
// Max of the pair.
func And(a, b []Detection) []Detection {
	var out []Detection
	for _, x := range a {
		for _, y := range b {
			out = append(out, combine(x, y))
		}
	}
	return canonical(out)
}

// Seq enumerates (E1 ; E2): pairs with T(e1) < T(e2) under the composite
// happen-before order.
func Seq(a, b []Detection) []Detection {
	var out []Detection
	for _, x := range a {
		for _, y := range b {
			if x.Stamp.Less(y.Stamp) {
				out = append(out, combine(x, y))
			}
		}
	}
	return canonical(out)
}

// Not enumerates NOT(E2)[E1, E3]: initiator/terminator pairs with no
// occurrence of the absent event strictly inside the open interval.
func Not(absent, initiators, terminators []Detection) []Detection {
	var out []Detection
	for _, e1 := range initiators {
		for _, e3 := range terminators {
			if !e1.Stamp.Less(e3.Stamp) {
				continue
			}
			spoiled := false
			for _, e2 := range absent {
				if e2.Stamp.InOpenSet(e1.Stamp, e3.Stamp) {
					spoiled = true
					break
				}
			}
			if !spoiled {
				out = append(out, combine(e1, e3))
			}
		}
	}
	return canonical(out)
}

// Aperiodic enumerates A(E1, E2, E3): each monitored occurrence inside an
// interval opened by E1 and not yet closed by an E3.
func Aperiodic(initiators, monitored, terminators []Detection) []Detection {
	var out []Detection
	for _, e1 := range initiators {
		for _, e2 := range monitored {
			if !e1.Stamp.Less(e2.Stamp) {
				continue
			}
			closed := false
			for _, e3 := range terminators {
				if e3.Stamp.InOpenSet(e1.Stamp, e2.Stamp) {
					closed = true
					break
				}
			}
			if !closed {
				out = append(out, combine(e1, e2))
			}
		}
	}
	return canonical(out)
}

// Any enumerates ANY(m, …): every selection of one detection from each of
// m distinct constituent lists.
func Any(m int, lists ...[]Detection) []Detection {
	var out []Detection
	n := len(lists)
	idx := make([]int, 0, m)
	var rec func(start int)
	rec = func(start int) {
		if len(idx) == m {
			out = append(out, product(lists, idx)...)
			return
		}
		for i := start; i <= n-(m-len(idx)); i++ {
			idx = append(idx, i)
			rec(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	rec(0)
	return canonical(out)
}

// product enumerates the cartesian product of the selected lists.
func product(lists [][]Detection, idx []int) []Detection {
	acc := []Detection{{}}
	for _, li := range idx {
		var next []Detection
		for _, partial := range acc {
			for _, d := range lists[li] {
				next = append(next, combine(partial, d))
			}
		}
		acc = next
	}
	return acc
}

// combine merges two detections: concatenated constituents, Max stamps.
func combine(a, b Detection) Detection {
	return Detection{
		Stamp:        core.Max(a.Stamp, b.Stamp),
		Constituents: append(append([]*event.Occurrence{}, a.Constituents...), b.Constituents...),
	}
}

// canonical orders detections deterministically (by constituent stamps)
// for comparison with the incremental engine.
func canonical(ds []Detection) []Detection {
	sort.SliceStable(ds, func(i, j int) bool { return Key(ds[i]) < Key(ds[j]) })
	return ds
}

// Key renders a detection's identity: the ordered list of constituent
// (type, site, local) triples.
func Key(d Detection) string {
	k := ""
	for _, c := range d.Constituents {
		k += c.Type + "@" + string(c.Site) + ":" + itoa(c.Stamp[0].Local) + ";"
	}
	return k
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
