package denote

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
)

// The keystone property: on totally ordered histories, the incremental
// detector in the Unrestricted context produces exactly the detections the
// paper's denotational formulas enumerate.

// randomHistory builds a single-site, strictly increasing trace over the
// given types.
func randomHistory(seed int64, n int, types []string) []*event.Occurrence {
	r := rand.New(rand.NewSource(seed))
	occs := make([]*event.Occurrence, n)
	for i := range occs {
		occs[i] = event.NewPrimitive(types[r.Intn(len(types))], event.Explicit,
			core.DeriveStamp("s1", int64(i)*25, 10), event.Params{"n": i})
	}
	return occs
}

// engineDetections replays the history through the incremental detector
// and returns sorted detection keys.
func engineDetections(t *testing.T, expression string, history []*event.Occurrence) []string {
	t.Helper()
	reg := event.NewRegistry()
	for _, n := range []string{"A", "B", "C"} {
		reg.MustDeclare(n, event.Explicit)
	}
	d := detector.New("s1", reg, nil)
	if _, err := d.DefineString("X", expression, detector.Unrestricted); err != nil {
		t.Fatal(err)
	}
	var keys []string
	d.Subscribe("X", func(o *event.Occurrence) {
		k := ""
		for _, c := range o.Flatten() {
			k += c.Type + "@" + string(c.Site) + ":" + itoa(c.Stamp[0].Local) + ";"
		}
		keys = append(keys, k)
	})
	for _, o := range history {
		d.Publish(o)
	}
	sort.Strings(keys)
	return keys
}

// oracleDetections evaluates the denotational formula on the same history.
func oracleDetections(h *History, expression string) []string {
	var dets []Detection
	switch expression {
	case "A OR B":
		dets = Or(h.Of("A"), h.Of("B"))
	case "A AND B":
		dets = And(h.Of("A"), h.Of("B"))
	case "A ; B":
		dets = Seq(h.Of("A"), h.Of("B"))
	case "NOT(B)[A, C]":
		dets = Not(h.Of("B"), h.Of("A"), h.Of("C"))
	case "A(A, B, C)":
		dets = Aperiodic(h.Of("A"), h.Of("B"), h.Of("C"))
	case "ANY(2, A, B, C)":
		dets = Any(2, h.Of("A"), h.Of("B"), h.Of("C"))
	default:
		panic("no oracle for " + expression)
	}
	keys := make([]string, len(dets))
	for i, d := range dets {
		keys[i] = Key(d)
	}
	sort.Strings(keys)
	return keys
}

func TestDetectorMatchesDenotationalSemantics(t *testing.T) {
	expressions := []string{
		"A OR B",
		"A AND B",
		"A ; B",
		"NOT(B)[A, C]",
		"A(A, B, C)",
		"ANY(2, A, B, C)",
	}
	for _, expression := range expressions {
		expression := expression
		t.Run(expression, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				history := randomHistory(seed, 40, []string{"A", "B", "C"})
				got := engineDetections(t, expression, history)
				want := oracleDetections(NewHistory(history), expression)
				if len(got) != len(want) {
					t.Fatalf("seed %d: engine detected %d, oracle %d\n engine: %v\n oracle: %v",
						seed, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d: detection %d differs\n engine: %s\n oracle: %s",
							seed, i, got[i], want[i])
					}
				}
				if len(want) == 0 && expression != "NOT(B)[A, C]" {
					t.Fatalf("seed %d: degenerate history for %s", seed, expression)
				}
			}
		})
	}
}

// The oracle also agrees on multi-site histories when the publication
// order is a linear extension and events are spaced beyond concurrency
// (every event two granules after the previous one).
func TestOracleMultiSiteWellSeparated(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sites := []core.SiteID{"s1", "s2", "s3"}
	types := []string{"A", "B", "C"}
	var history []*event.Occurrence
	for i := 0; i < 30; i++ {
		history = append(history, event.NewPrimitive(types[r.Intn(3)], event.Explicit,
			core.DeriveStamp(sites[r.Intn(3)], int64(i)*25, 10), nil))
	}
	for _, expression := range []string{"A ; B", "NOT(B)[A, C]", "A AND B"} {
		got := engineDetections(t, expression, history)
		want := oracleDetections(NewHistory(history), expression)
		if len(got) != len(want) {
			t.Fatalf("%s: engine %d vs oracle %d", expression, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: detection %d differs: %s vs %s", expression, i, got[i], want[i])
			}
		}
	}
}

func TestOracleHelpers(t *testing.T) {
	a := event.NewPrimitive("A", event.Explicit, core.DeriveStamp("s1", 10, 10), nil)
	b := event.NewPrimitive("B", event.Explicit, core.DeriveStamp("s1", 40, 10), nil)
	h := NewHistory([]*event.Occurrence{a, b})
	if len(h.Of("A")) != 1 || len(h.Of("B")) != 1 || len(h.Of("C")) != 0 {
		t.Fatalf("history indexing broken")
	}
	seq := Seq(h.Of("A"), h.Of("B"))
	if len(seq) != 1 {
		t.Fatalf("Seq = %d detections", len(seq))
	}
	if !seq[0].Stamp.Equal(b.Stamp) {
		t.Fatalf("Seq stamp = %s, want terminator's", seq[0].Stamp)
	}
	rev := Seq(h.Of("B"), h.Of("A"))
	if len(rev) != 0 {
		t.Fatalf("reverse Seq must be empty")
	}
	if Key(seq[0]) != "A@s1:10;B@s1:40;" {
		t.Fatalf("Key = %q", Key(seq[0]))
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", 120: "120", -5: "-5"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q", in, got)
		}
	}
}
