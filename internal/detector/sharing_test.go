package detector

import (
	"testing"

	"repro/internal/event"
)

// Subexpression sharing is semantically transparent: identical detections
// with sharing on and off, on a trace exercising the shared subgraph.
func TestSharingTransparent(t *testing.T) {
	runWith := func(sharing bool) [][]string {
		d, _ := newTestDetector(t)
		d.SetSharing(sharing)
		c1, c2 := &collector{}, &collector{}
		d.MustDefine("X", "(A ; B) ; C", Chronicle)
		d.MustDefine("Y", "(A ; B) AND D", Chronicle)
		d.Subscribe("X", c1.handler)
		d.Subscribe("Y", c2.handler)
		for i := int64(0); i < 40; i++ {
			typ := []string{"A", "B", "C", "D"}[i%4]
			d.Publish(occAt("s1", i*25, typ))
		}
		return [][]string{c1.sigs(), c2.sigs()}
	}
	on := runWith(true)
	off := runWith(false)
	for k := 0; k < 2; k++ {
		if len(on[k]) != len(off[k]) {
			t.Fatalf("definition %d: sharing changed detection count %d vs %d\non: %v\noff: %v",
				k, len(on[k]), len(off[k]), on[k], off[k])
		}
		for i := range on[k] {
			if on[k][i] != off[k][i] {
				t.Fatalf("definition %d detection %d: %s vs %s", k, i, on[k][i], off[k][i])
			}
		}
	}
}

func TestSharingReducesNodeCount(t *testing.T) {
	build := func(sharing bool) int {
		d, _ := newTestDetector(t)
		d.SetSharing(sharing)
		d.MustDefine("X", "(A ; B) ; C", Chronicle)
		d.MustDefine("Y", "(A ; B) AND D", Chronicle)
		return d.NodeCount()
	}
	shared, unshared := build(true), build(false)
	if shared >= unshared {
		t.Fatalf("sharing did not reduce nodes: %d vs %d", shared, unshared)
	}
	// Two roots plus one shared (A ; B) node.
	if shared != 3 {
		t.Fatalf("shared graph has %d nodes, want 3", shared)
	}
	if unshared != 4 {
		t.Fatalf("unshared graph has %d nodes, want 4", unshared)
	}
}

func TestSharingRespectsContext(t *testing.T) {
	// The same sub-expression under different contexts must NOT share.
	d, _ := newTestDetector(t)
	d.MustDefine("X", "(A ; B) ; C", Chronicle)
	d.MustDefine("Y", "(A ; B) ; D", Recent)
	if d.NodeCount() != 4 {
		t.Fatalf("different contexts shared a node: %d nodes, want 4", d.NodeCount())
	}
	// Behaviour check: Chronicle consumes, Recent retains.
	cX, cY := &collector{}, &collector{}
	d.Subscribe("X", cX.handler)
	d.Subscribe("Y", cY.handler)
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "B"))
	d.Publish(occAt("s1", 30, "C"))
	d.Publish(occAt("s1", 40, "D"))
	cX.assertSigs(t, "X[A@10 B@20 C@30]")
	cY.assertSigs(t, "Y[A@10 B@20 D@40]")
}

func TestSharingRespectsMasks(t *testing.T) {
	// Same shape, different masks: distinct expressions, no sharing.
	d, _ := newTestDetector(t)
	d.MustDefine("X", "(A[local > 5] ; B) ; C", Chronicle)
	d.MustDefine("Y", "(A[local > 500] ; B) ; C", Chronicle)
	if d.NodeCount() != 4 {
		t.Fatalf("different masks shared a node: %d nodes, want 4", d.NodeCount())
	}
	cX, cY := &collector{}, &collector{}
	d.Subscribe("X", cX.handler)
	d.Subscribe("Y", cY.handler)
	d.Publish(occAt("s1", 10, "A")) // passes X's mask only
	d.Publish(occAt("s1", 20, "B"))
	d.Publish(occAt("s1", 30, "C"))
	cX.assertSigs(t, "X[A@10 B@20 C@30]")
	if len(cY.got) != 0 {
		t.Fatalf("Y fired despite failing mask: %v", cY.sigs())
	}
}

func TestSharedSubgraphFansOutToEveryParent(t *testing.T) {
	// Three identical definitions share one (A ; B) node; each completed
	// pair must reach all three roots exactly once.
	d, _ := newTestDetector(t)
	counts := map[string]int{}
	for _, def := range []string{"X", "Y", "Z"} {
		def := def
		d.MustDefine(def, "(A ; B) ; C", Chronicle)
		d.Subscribe(def, func(o *event.Occurrence) { counts[def]++ })
	}
	// Three roots + one shared inner node.
	if d.NodeCount() != 4 {
		t.Fatalf("NodeCount = %d, want 4", d.NodeCount())
	}
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "B"))
	d.Publish(occAt("s1", 30, "C"))
	for _, def := range []string{"X", "Y", "Z"} {
		if counts[def] != 1 {
			t.Fatalf("definition %s fired %d times, want 1 (counts %v)", def, counts[def], counts)
		}
	}
}
