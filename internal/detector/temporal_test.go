package detector

import (
	"strings"
	"testing"

	"repro/internal/event"
)

// temporalHarness builds a detector with a PLUS/P definition and drives
// the fake clock.
func temporalHarness(t *testing.T, expression string, ctx Context) (*Detector, *fakeTime, *collector) {
	t.Helper()
	d, ft := newTestDetector(t)
	c := &collector{}
	if _, err := d.DefineString("X", expression, ctx); err != nil {
		t.Fatalf("define %q: %v", expression, err)
	}
	d.Subscribe("X", c.handler)
	return d, ft, c
}

func TestPlusFiresAfterDelta(t *testing.T) {
	d, ft, c := temporalHarness(t, "PLUS(A, 50)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "A"))
	d.AdvanceTo(149)
	if len(c.got) != 0 {
		t.Fatalf("PLUS fired early: %v", c.sigs())
	}
	ft.now = 150
	d.AdvanceTo(150)
	if len(c.got) != 1 {
		t.Fatalf("PLUS fired %d times, want 1", len(c.got))
	}
	// The composite stamp reflects the fire time (ref 150 → local 15).
	if st := c.got[0].Stamp; len(st) != 1 || st[0].Local != 15 {
		t.Errorf("PLUS stamp = %s, want local 15 at fire time", st)
	}
}

func TestPlusFiresPerTrigger(t *testing.T) {
	d, ft, c := temporalHarness(t, "PLUS(A, 50)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "A"))
	ft.now = 120
	d.Publish(occAt("s1", 12, "A"))
	ft.now = 200
	d.AdvanceTo(200)
	if len(c.got) != 2 {
		t.Fatalf("PLUS fired %d times, want 2: %v", len(c.got), c.sigs())
	}
}

func TestPeriodicTicksUntilTerminator(t *testing.T) {
	d, ft, c := temporalHarness(t, "P(S, 100, T)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 350
	d.AdvanceTo(350) // ticks due at 200 and 300
	if len(c.got) != 2 {
		t.Fatalf("P fired %d times, want 2: %v", len(c.got), c.sigs())
	}
	if p := c.got[1].Flatten()[1].Params["count"]; p != int64(2) {
		t.Errorf("second tick count = %v, want 2", p)
	}
	// Terminator must be after the initiator (same site, later local).
	d.Publish(occAt("s1", 40, "T"))
	ft.now = 1000
	d.AdvanceTo(1000)
	if len(c.got) != 2 {
		t.Fatalf("P kept ticking after terminator: %d detections", len(c.got))
	}
	if d.PendingTimers() != 0 {
		// A cancelled window's timer may still be armed but must not fire
		// a composite; after one more advance the queue drains.
		t.Logf("pending timers after close: %d (inert)", d.PendingTimers())
	}
}

func TestPeriodicCumulativeStar(t *testing.T) {
	d, ft, c := temporalHarness(t, "P*(S, 100, T)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 350
	d.AdvanceTo(350)
	if len(c.got) != 0 {
		t.Fatalf("P* must not fire before the terminator: %v", c.sigs())
	}
	d.Publish(occAt("s1", 40, "T"))
	if len(c.got) != 1 {
		t.Fatalf("P* fired %d times at terminator, want 1", len(c.got))
	}
	parts := c.got[0].Flatten()
	// init + 2 ticks + terminator
	if len(parts) != 4 {
		t.Fatalf("P* constituents = %d, want 4 (%v)", len(parts), sig(c.got[0]))
	}
	if parts[0].Type != "S" || parts[3].Type != "T" {
		t.Errorf("P* constituent order wrong: %v", sig(c.got[0]))
	}
}

func TestPeriodicRecentReplacesWindow(t *testing.T) {
	d, ft, c := temporalHarness(t, "P(S, 100, T)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 150
	d.Publish(occAt("s1", 15, "S")) // replaces the window; old timer inert
	ft.now = 260
	d.AdvanceTo(260) // old window's 200 tick suppressed; new tick at 250
	if len(c.got) != 1 {
		t.Fatalf("P fired %d times, want 1 (old window cancelled): %v", len(c.got), c.sigs())
	}
	if got := c.got[0].Flatten()[0]; got.Stamp[0].Local != 15 {
		t.Errorf("tick attributed to old window: %v", sig(c.got[0]))
	}
}

func TestTemporalOperatorsNeedTimeSource(t *testing.T) {
	reg := event.NewRegistry()
	reg.MustDeclare("A", event.Explicit)
	reg.MustDeclare("B", event.Explicit)
	d := New("s1", reg, nil)
	if _, err := d.DefineString("X", "PLUS(A, 5s)", Recent); err == nil ||
		!strings.Contains(err.Error(), "TimeSource") {
		t.Fatalf("PLUS without TimeSource must fail, got %v", err)
	}
	if _, err := d.DefineString("Y", "P(A, 5s, B)", Recent); err == nil {
		t.Fatalf("P without TimeSource must fail")
	}
	// Non-temporal definitions are fine without a TimeSource.
	if _, err := d.DefineString("Z", "A ; B", Recent); err != nil {
		t.Fatalf("SEQ without TimeSource should work: %v", err)
	}
}

func TestNextTimerDue(t *testing.T) {
	d, ft, _ := temporalHarness(t, "PLUS(A, 50)", Recent)
	if _, ok := d.NextTimerDue(); ok {
		t.Fatalf("no timers armed yet")
	}
	ft.now = 100
	d.Publish(occAt("s1", 10, "A"))
	due, ok := d.NextTimerDue()
	if !ok || due != 150 {
		t.Fatalf("NextTimerDue = %d,%v want 150,true", due, ok)
	}
	if d.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d, want 1", d.PendingTimers())
	}
}

func TestTimerOrderDeterministic(t *testing.T) {
	d, ft, c := temporalHarness(t, "PLUS(A, 50)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 11, "A")) // same due time, later scheduling
	ft.now = 150
	d.AdvanceTo(150)
	if len(c.got) != 2 {
		t.Fatalf("want 2 firings, got %d", len(c.got))
	}
	if c.got[0].Flatten()[0].Stamp[0].Local != 10 {
		t.Errorf("same-due timers must fire in scheduling order: %v", c.sigs())
	}
}

func TestPeriodicContinuousMultipleWindows(t *testing.T) {
	d, ft, c := temporalHarness(t, "P(S, 100, T)", Continuous)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 150
	d.Publish(occAt("s1", 15, "S")) // second window; both tick in Continuous
	ft.now = 260
	d.AdvanceTo(260) // first window ticks at 200; second at 250
	if len(c.got) != 2 {
		t.Fatalf("detections = %d, want 2 (one per window): %v", len(c.got), c.sigs())
	}
	inits := map[int64]bool{}
	for _, o := range c.got {
		inits[o.Flatten()[0].Stamp[0].Local] = true
	}
	if !inits[10] || !inits[15] {
		t.Fatalf("both windows must tick: %v", c.sigs())
	}
}

func TestPeriodicTerminatorClosesOnlyPrecedingWindows(t *testing.T) {
	d, ft, c := temporalHarness(t, "P(S, 100, T)", Continuous)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	d.Publish(occAt("s1", 20, "T")) // closes the first window
	ft.now = 150
	d.Publish(occAt("s1", 30, "S")) // new window survives
	ft.now = 400
	d.AdvanceTo(400)
	for _, o := range c.got {
		if o.Flatten()[0].Stamp[0].Local != 30 {
			t.Fatalf("closed window ticked: %v", sig(o))
		}
	}
	if len(c.got) != 2 { // ticks at 250 and 350
		t.Fatalf("detections = %d, want 2: %v", len(c.got), c.sigs())
	}
}

func TestPeriodicStarSeparateWindowEmissions(t *testing.T) {
	d, ft, c := temporalHarness(t, "P*(S, 100, T)", Continuous)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 150
	d.Publish(occAt("s1", 15, "S"))
	ft.now = 360
	d.AdvanceTo(360) // window1 ticks at 200,300; window2 at 250,350
	d.Publish(occAt("s1", 40, "T"))
	if len(c.got) != 2 {
		t.Fatalf("P* emissions = %d, want one per window: %v", len(c.got), c.sigs())
	}
	for _, o := range c.got {
		flat := o.Flatten()
		// init + 2 ticks + terminator each.
		if len(flat) != 4 {
			t.Fatalf("window emission has %d constituents: %v", len(flat), sig(o))
		}
	}
}
