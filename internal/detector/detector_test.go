package detector

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
)

func TestDefineRejectsUndeclaredEvent(t *testing.T) {
	d, _ := newTestDetector(t)
	if _, err := d.DefineString("X", "A ; Nope", Recent); err == nil {
		t.Fatalf("undeclared constituent must be rejected")
	}
}

func TestDefineRejectsDuplicates(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Recent)
	if _, err := d.DefineString("X", "A ; B", Recent); !errors.Is(err, ErrDuplicateDefinition) {
		t.Fatalf("duplicate definition error = %v", err)
	}
}

func TestDefineRejectsEmptyNameAndBadSyntax(t *testing.T) {
	d, _ := newTestDetector(t)
	if _, err := d.DefineString("", "A ; B", Recent); err == nil {
		t.Fatalf("empty name must be rejected")
	}
	if _, err := d.DefineString("X", "A ;;", Recent); err == nil {
		t.Fatalf("syntax error must surface")
	}
}

func TestCompositeReuseAcrossDefinitions(t *testing.T) {
	// A named composite feeds another definition, as Sentinel allows.
	d, _ := newTestDetector(t)
	inner := &collector{}
	outer := &collector{}
	d.MustDefine("AB", "A ; B", Chronicle)
	d.Subscribe("AB", inner.handler)
	d.MustDefine("ABC", "AB ; C", Chronicle)
	d.Subscribe("ABC", outer.handler)

	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "B"))
	d.Publish(occAt("s1", 30, "C"))

	inner.assertSigs(t, "AB[A@10 B@20]")
	outer.assertSigs(t, "ABC[A@10 B@20 C@30]")
}

func TestSelfReferenceRejected(t *testing.T) {
	d, _ := newTestDetector(t)
	// "X" is not declared when X is being defined, so a self-reference
	// fails validation rather than looping.
	if _, err := d.DefineString("X", "A ; X", Recent); err == nil {
		t.Fatalf("self-referential definition must be rejected")
	}
}

func TestSamePrimitiveTwiceInExpression(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.MustDefine("X", "A ; A", Chronicle)
	d.Subscribe("X", c.handler)
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "A"))
	// The first A initiates; the second A both terminates against the
	// first and initiates for a future one.
	c.assertSigs(t, "X[A@10 A@20]")
	d.Publish(occAt("s1", 30, "A"))
	if len(c.got) != 2 || c.sigs()[1] != "X[A@20 A@30]" {
		t.Fatalf("chained A;A detections = %v", c.sigs())
	}
}

func TestSubscribeToPrimitive(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.Subscribe("A", c.handler)
	d.Publish(occAt("s1", 10, "A"))
	c.assertSigs(t, "A[A@10]")
}

func TestMultipleSubscribersOrdered(t *testing.T) {
	d, _ := newTestDetector(t)
	var order []string
	d.MustDefine("X", "A OR B", Recent)
	d.Subscribe("X", func(*event.Occurrence) { order = append(order, "first") })
	d.Subscribe("X", func(*event.Occurrence) { order = append(order, "second") })
	d.Publish(occAt("s1", 10, "A"))
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("subscriber order = %v", order)
	}
}

func TestDefinitionsListing(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Recent)
	d.MustDefine("Y", "A AND B", Chronicle)
	defs := d.Definitions()
	if len(defs) != 2 {
		t.Fatalf("Definitions = %d, want 2", len(defs))
	}
	for _, def := range defs {
		if def.Name != "X" && def.Name != "Y" {
			t.Errorf("unexpected definition %q", def.Name)
		}
		if def.Expr == nil {
			t.Errorf("definition %q lost its expression", def.Name)
		}
	}
}

func TestNestedExpressionInline(t *testing.T) {
	// Operators nest without named intermediates.
	c := run(t, "(A ; B) AND C", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "C"), occAt("s1", 30, "B"))
	// A;B completes at B@30, then pairs with buffered C@20.
	c.assertSigs(t, "X[A@10 B@30 C@20]")
}

func TestDeepNesting(t *testing.T) {
	c := run(t, "((A ; B) ; C) ; D", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"), occAt("s1", 40, "D"))
	c.assertSigs(t, "X[A@10 B@20 C@30 D@40]")
}

func TestOrOfSeq(t *testing.T) {
	c := run(t, "(A ; B) OR (C ; D)", Chronicle,
		occAt("s1", 10, "C"), occAt("s1", 20, "A"), occAt("s1", 30, "D"), occAt("s1", 40, "B"))
	c.assertSigs(t, "X[C@10 D@30]", "X[A@20 B@40]")
}

func TestMustDefinePanics(t *testing.T) {
	d, _ := newTestDetector(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("MustDefine of bad expression must panic")
		}
	}()
	d.MustDefine("X", "A ;;", Recent)
}

func TestLockedPublishSmoke(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.MustDefine("X", "A ; B", Recent)
	d.Subscribe("X", c.handler)
	d.LockedPublish(occAt("s1", 10, "A"))
	d.LockedPublish(occAt("s1", 20, "B"))
	c.assertSigs(t, "X[A@10 B@20]")
}

func TestSiteAndRegistryAccessors(t *testing.T) {
	d, _ := newTestDetector(t)
	if d.Site() != "s1" {
		t.Errorf("Site = %q", d.Site())
	}
	if d.Registry() == nil || !d.Registry().Has("A") {
		t.Errorf("Registry accessor broken")
	}
}

func TestDefineDeclaresCompositeType(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Recent)
	typ, err := d.Registry().Lookup("X")
	if err != nil || typ.Class != event.Composite {
		t.Fatalf("definition must declare a composite type, got %v/%v", typ, err)
	}
}

func TestContextStrings(t *testing.T) {
	want := map[Context]string{
		Unrestricted: "unrestricted", Recent: "recent", Chronicle: "chronicle",
		Continuous: "continuous", Cumulative: "cumulative",
	}
	for ctx, s := range want {
		if ctx.String() != s {
			t.Errorf("Context %d String = %q, want %q", int(ctx), ctx.String(), s)
		}
	}
	if !strings.Contains(Context(42).String(), "42") {
		t.Errorf("unknown context String should include the value")
	}
	if len(Contexts()) != 5 {
		t.Errorf("Contexts() = %d entries, want 5", len(Contexts()))
	}
}

// Parameters flow through composites via constituents.
func TestParameterPropagation(t *testing.T) {
	d, _ := newTestDetector(t)
	var got []int64
	d.MustDefine("X", "A ; B", Chronicle)
	d.Subscribe("X", func(o *event.Occurrence) {
		for _, p := range o.Flatten() {
			got = append(got, p.Params["local"].(int64))
		}
	})
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "B"))
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("parameters = %v, want [10 20]", got)
	}
}
