package detector

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
)

// Test conventions: ratio 10 local ticks per global tick (the paper's
// Section 5.1 scale), one site "s1" for centralized traces, extra sites
// for distributed-stamp traces.

const tRatio = 10

// fakeTime is a deterministic TimeSource whose local tick is ref/10.
type fakeTime struct {
	now  clock.Microticks
	site core.SiteID
}

func (f *fakeTime) Now() clock.Microticks { return f.now }

func (f *fakeTime) StampAt(ref clock.Microticks) core.Stamp {
	return core.DeriveStamp(f.site, ref/10, tRatio)
}

// occAt builds a primitive occurrence of typ at the given site and local
// tick.
func occAt(site core.SiteID, local int64, typ string) *event.Occurrence {
	return event.NewPrimitive(typ, event.Explicit, core.DeriveStamp(site, local, tRatio),
		event.Params{"local": local})
}

// collector gathers detected occurrences and renders compact signatures
// for assertions: "Name[A@10 B@30]" lists the flattened primitive
// constituents as type@local.
type collector struct {
	got []*event.Occurrence
}

func (c *collector) handler(o *event.Occurrence) { c.got = append(c.got, o) }

func sig(o *event.Occurrence) string {
	parts := make([]string, 0, 4)
	for _, p := range o.Flatten() {
		parts = append(parts, fmt.Sprintf("%s@%d", p.Type, p.Stamp[0].Local))
	}
	return fmt.Sprintf("%s[%s]", o.Type, strings.Join(parts, " "))
}

func (c *collector) sigs() []string {
	out := make([]string, len(c.got))
	for i, o := range c.got {
		out[i] = sig(o)
	}
	return out
}

func (c *collector) assertSigs(t *testing.T, want ...string) {
	t.Helper()
	got := c.sigs()
	if len(got) != len(want) {
		t.Fatalf("detected %d occurrences %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

// newTestDetector builds a detector on site s1 with the standard test
// event types declared and a fake time source.
func newTestDetector(t *testing.T) (*Detector, *fakeTime) {
	t.Helper()
	reg := event.NewRegistry()
	for _, name := range []string{"A", "B", "C", "D", "S", "M", "T"} {
		reg.MustDeclare(name, event.Explicit)
	}
	ft := &fakeTime{site: "s1"}
	return New("s1", reg, ft), ft
}

// run defines the expression under ctx, publishes the trace in order, and
// returns the collector.
func run(t *testing.T, expression string, ctx Context, trace ...*event.Occurrence) *collector {
	t.Helper()
	d, _ := newTestDetector(t)
	c := &collector{}
	if _, err := d.DefineString("X", expression, ctx); err != nil {
		t.Fatalf("define %q: %v", expression, err)
	}
	d.Subscribe("X", c.handler)
	for _, o := range trace {
		d.Publish(o)
	}
	return c
}
