package detector

import "testing"

func TestBufferLimitBoundsUnrestricted(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetBufferLimit(8)
	d.MustDefine("X", "A ; B", Unrestricted)
	for i := int64(0); i < 500; i++ {
		d.Publish(occAt("s1", i*50, "A"))
	}
	if d.StateSize() > 8 {
		t.Fatalf("StateSize = %d exceeds limit 8", d.StateSize())
	}
	if d.DroppedOccurrences() != 500-8 {
		t.Fatalf("dropped = %d, want 492", d.DroppedOccurrences())
	}
}

func TestBufferLimitEvictsOldestFirst(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.SetBufferLimit(2)
	d.MustDefine("X", "A ; B", Continuous)
	d.Subscribe("X", c.handler)
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "A"))
	d.Publish(occAt("s1", 30, "A")) // evicts A@10
	d.Publish(occAt("s1", 40, "B"))
	c.assertSigs(t, "X[A@20 B@40]", "X[A@30 B@40]")
}

func TestBufferLimitCountsNotBuffers(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetBufferLimit(4)
	d.MustDefine("X", "NOT(B)[A, C]", Chronicle)
	// Spoiled initiators accumulate; the limit must bound them.
	for i := int64(0); i < 50; i++ {
		d.Publish(occAt("s1", i*100, "A"))
		d.Publish(occAt("s1", i*100+50, "B"))
	}
	if d.StateSize() > 8 { // 4 inits + 4 spoilers
		t.Fatalf("StateSize = %d, want ≤ 8", d.StateSize())
	}
	if d.DroppedOccurrences() == 0 {
		t.Fatalf("expected evictions")
	}
}

func TestBufferLimitDisarmsEvictedPeriodicWindows(t *testing.T) {
	d, ft, c := temporalHarness(t, "P(S, 100, T)", Continuous)
	d.SetBufferLimit(1)
	ft.now = 100
	d.Publish(occAt("s1", 10, "S"))
	ft.now = 150
	d.Publish(occAt("s1", 15, "S")) // evicts the first window
	ft.now = 400
	d.AdvanceTo(400) // only the second window's ticks fire (250, 350)
	for _, o := range c.got {
		if o.Flatten()[0].Stamp[0].Local != 15 {
			t.Fatalf("evicted window still ticking: %v", sig(o))
		}
	}
	if len(c.got) != 2 {
		t.Fatalf("detections = %d, want 2", len(c.got))
	}
}

func TestZeroLimitMeansUnlimited(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetBufferLimit(0)
	d.MustDefine("X", "A ; B", Unrestricted)
	for i := int64(0); i < 100; i++ {
		d.Publish(occAt("s1", i*50, "A"))
	}
	if d.StateSize() != 100 || d.DroppedOccurrences() != 0 {
		t.Fatalf("unlimited mode dropped: state %d dropped %d", d.StateSize(), d.DroppedOccurrences())
	}
	d.SetBufferLimit(-5) // negative normalizes to unlimited
	d.Publish(occAt("s1", 100_000, "A"))
	if d.DroppedOccurrences() != 0 {
		t.Fatalf("negative limit dropped entries")
	}
}

func TestBufferLimitPreservesDetectionUnderCapacity(t *testing.T) {
	// A workload that never exceeds the cap detects identically.
	run := func(limit int) []string {
		d, _ := newTestDetector(t)
		d.SetBufferLimit(limit)
		c := &collector{}
		d.MustDefine("X", "A ; B", Chronicle)
		d.Subscribe("X", c.handler)
		for i := int64(0); i < 40; i++ {
			d.Publish(occAt("s1", i*50, []string{"A", "B"}[i%2]))
		}
		return c.sigs()
	}
	capped, uncapped := run(4), run(0)
	if len(capped) != len(uncapped) {
		t.Fatalf("capacity cap changed under-capacity behaviour: %d vs %d", len(capped), len(uncapped))
	}
	for i := range capped {
		if capped[i] != uncapped[i] {
			t.Fatalf("detection %d differs: %s vs %s", i, capped[i], uncapped[i])
		}
	}
}
