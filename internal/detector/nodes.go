package detector

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
)

// emitFunc receives an occurrence produced by a node.
type emitFunc func(*event.Occurrence)

// opNode is one operator in the event graph.  Constituent occurrences are
// delivered with onChild; idx identifies which constituent expression the
// occurrence belongs to (in the order of expr.Node.Children).  Nodes call
// their wired output for every composite occurrence they produce.
//
// The contract all nodes rely on: onChild is invoked in an arrival order
// that is a linear extension of the composite happen-before order of
// Definition 5.3 — if an occurrence a with T(a) < T(b) exists, a is
// delivered before b.  Occurrences delivered later are therefore never
// happen-before buffered ones.
//
// Buffering follows the pool ledger (event.Pool): every pointer a node
// stores past onChild's return — a buffer slot, a window, a timer
// closure — takes a reference with Retain, and every removal drops it
// with Release.  Emission goes through Detector.emit, which retains the
// constituents into the composite and drops the composite's creator
// reference after the output chain returns.  With no pool attached every
// ledger call is a no-op, so unpooled detection is bit-identical.
type opNode interface {
	onChild(idx int, o *event.Occurrence)
}

// timeDriven is implemented by nodes that schedule timers (P, P*, PLUS).
type timeDriven interface {
	opNode
	bindScheduler(s scheduler) error
}

// scheduler is the timer service operator nodes use; the Detector
// implements it over a TimeSource and a deterministic timer heap.
type scheduler interface {
	now() clock.Microticks
	stampAt(ref clock.Microticks) core.Stamp
	schedule(due clock.Microticks, fire func(due clock.Microticks))
}

// retain takes a buffer reference on o and returns it, so appends read
// naturally: buf = append(buf, retain(o)).
//
//sentinel:hotpath
func retain(o *event.Occurrence) *event.Occurrence {
	o.Retain()
	return o
}

// releaseAll drops the buffer references of every occurrence in buf, nils
// the slots (consumed occurrences must not stay reachable — or recycled
// ones dangling — through the buffer's capacity) and returns the empty
// slice for reuse.
func releaseAll(buf []*event.Occurrence) []*event.Occurrence {
	for i, o := range buf {
		buf[i] = nil
		o.Release()
	}
	return buf[:0]
}

// passNode wraps a bare constituent as a named composite occurrence, used
// when a definition's root is a single primitive or named event.
type passNode struct {
	det  *Detector
	name string
	out  emitFunc
}

//sentinel:hotpath
func (n *passNode) onChild(_ int, o *event.Occurrence) {
	n.det.emit(n.out, n.name, o)
}

// orNode implements OR: the composite occurs whenever either constituent
// occurs.  There is no initiator/terminator pairing, so the parameter
// context is irrelevant.
type orNode struct {
	det  *Detector
	name string
	out  emitFunc
}

//sentinel:hotpath
func (n *orNode) onChild(_ int, o *event.Occurrence) {
	n.det.emit(n.out, n.name, o)
}

// binaryNode implements AND (seq=false) and SEQ (seq=true).
//
// For SEQ the initiator is always the left constituent and the pairing
// requires T(init) < T(term) under the composite happen-before order
// (Section 5.3: (E1;E2)(ts) ⇔ ∃t1,t2: E1(t1) ∧ E2(t2) ∧ t1 < t2).
//
// For AND either constituent may initiate; an occurrence of one side
// terminates against buffered occurrences of the other side with no
// ordering requirement (Section 5.3: conjunction in any order).
type binaryNode struct {
	det  *Detector
	name string
	ctx  Context
	seq  bool
	out  emitFunc

	buf [2][]*event.Occurrence
	// eligible is scratch for the per-terminator initiator scan, reused
	// across onChild calls so steady-state detection does not allocate.
	eligible []int
}

//sentinel:hotpath
func (n *binaryNode) onChild(idx int, o *event.Occurrence) {
	if n.seq {
		n.onSeq(idx, o)
	} else {
		n.onAnd(idx, o)
	}
}

func (n *binaryNode) onSeq(idx int, o *event.Occurrence) {
	if idx == 0 { // initiator
		if n.ctx == Recent {
			n.buf[0] = releaseAll(n.buf[0])
		}
		n.buf[0] = append(n.buf[0], retain(o))
		return
	}
	// Terminator: eligible initiators happen before it.
	eligible := n.eligible[:0]
	for i, init := range n.buf[0] {
		if event.StampLess(init, o) {
			eligible = append(eligible, i)
		}
	}
	n.eligible = eligible[:0]
	if len(eligible) == 0 {
		return
	}
	switch n.ctx {
	case Unrestricted, Recent:
		for _, i := range eligible {
			n.det.emit(n.out, n.name, n.buf[0][i], o)
		}
	case Chronicle:
		n.det.emit(n.out, n.name, n.buf[0][eligible[0]], o)
		n.buf[0] = removeIndices(n.buf[0], eligible[:1])
	case Continuous:
		for _, i := range eligible {
			n.det.emit(n.out, n.name, n.buf[0][i], o)
		}
		n.buf[0] = removeIndices(n.buf[0], eligible)
	case Cumulative:
		//lint:allow hotalloc — the constituents slice is retained by the emitted occurrence (or copied into pooled storage); the allocation is the product, not garbage
		constituents := make([]*event.Occurrence, 0, len(eligible)+1)
		for _, i := range eligible {
			constituents = append(constituents, n.buf[0][i])
		}
		constituents = append(constituents, o)
		n.det.emit(n.out, n.name, constituents...)
		n.buf[0] = removeIndices(n.buf[0], eligible)
	}
}

func (n *binaryNode) onAnd(idx int, o *event.Occurrence) {
	other := 1 - idx
	if len(n.buf[other]) == 0 {
		if n.ctx == Recent {
			n.buf[idx] = releaseAll(n.buf[idx])
		}
		n.buf[idx] = append(n.buf[idx], retain(o))
		return
	}
	// emitOne pairs the arriving occurrence with a single buffered
	// partner, left child first regardless of arrival.  It hands the pair
	// to emit as plain variadic arguments: the four single-partner
	// contexts used to wrap each partner in a transient one-element slice
	// per emission, which was pure garbage on the detect path.
	emitOne := func(b *event.Occurrence) {
		if idx == 1 {
			n.det.emit(n.out, n.name, b, o)
		} else {
			n.det.emit(n.out, n.name, o, b)
		}
	}
	switch n.ctx {
	case Unrestricted:
		for _, b := range n.buf[other] {
			emitOne(b)
		}
		n.buf[idx] = append(n.buf[idx], retain(o))
	case Recent:
		emitOne(n.buf[other][len(n.buf[other])-1])
		n.buf[idx] = append(releaseAll(n.buf[idx]), retain(o))
	case Chronicle:
		emitOne(n.buf[other][0])
		n.buf[other] = removeIndices(n.buf[other], zeroIndex)
	case Continuous:
		for _, b := range n.buf[other] {
			emitOne(b)
		}
		n.buf[other] = releaseAll(n.buf[other])
	case Cumulative:
		others := n.buf[other]
		//lint:allow hotalloc — the constituents slice is retained by the emitted occurrence (or copied into pooled storage); the allocation is the product, not garbage
		constituents := make([]*event.Occurrence, 0, len(others)+1)
		if idx == 1 {
			constituents = append(append(constituents, others...), o)
		} else {
			constituents = append(append(constituents, o), others...)
		}
		n.det.emit(n.out, n.name, constituents...)
		n.buf[other] = releaseAll(n.buf[other])
	}
}

// anyNode implements ANY(m, E1 … En): the composite occurs when
// occurrences of m distinct constituent expressions are available, the
// current occurrence among them.
//
// Context policies: Recent keeps the most recent occurrence of each
// constituent and does not consume; Chronicle and Continuous use the
// oldest buffered occurrence of each selected constituent and consume the
// occurrences used (for ANY the two coincide in this implementation —
// there is a single terminator, so "close all open windows" degenerates to
// the FIFO pairing); Cumulative emits one composite containing every
// buffered occurrence of every non-empty constituent and consumes them
// all; Unrestricted emits one composite per selection of m−1 buffered
// occurrences of distinct other constituents and consumes nothing.
type anyNode struct {
	det  *Detector
	name string
	ctx  Context
	m    int
	out  emitFunc

	buf [][]*event.Occurrence
	// Scratch reused across onChild calls: eligible holds the child
	// indexes with buffered occurrences, chooseSel backs the subset
	// enumeration, and combo assembles each emitted selection before it
	// is ordered.  None of them escapes an emission (emitOrdered copies
	// into the fresh constituents slice the Occurrence retains).
	eligible  []int
	chooseSel []int
	combo     []childOcc
	// ordered is a second childOcc scratch: emitOrdered sorts its input
	// in place, so combinations assembled in the shared combo backing are
	// copied here first to leave the recursion's accumulator untouched.
	ordered []childOcc
}

// childOcc pairs a constituent occurrence with the child index it arrived
// on, so composites can list constituents in child-index order
// deterministically regardless of arrival order.
type childOcc struct {
	c   int
	occ *event.Occurrence
}

//sentinel:hotpath
func (n *anyNode) onChild(idx int, o *event.Occurrence) {
	if n.ctx == Recent {
		n.buf[idx] = releaseAll(n.buf[idx])
	}
	n.buf[idx] = append(n.buf[idx], retain(o))

	eligible := n.eligible[:0] // children with occurrences available, o's child first
	eligible = append(eligible, idx)
	for c := range n.buf {
		if c != idx && len(n.buf[c]) > 0 {
			eligible = append(eligible, c)
		}
	}
	n.eligible = eligible[:0]
	if len(eligible) < n.m {
		return
	}
	switch n.ctx {
	case Unrestricted:
		others := eligible[1:]
		n.chooseSel = choose(n.chooseSel, others, n.m-1, func(sel []int) {
			n.emitCombo(childOcc{c: idx, occ: o}, sel)
		})
		// o stays buffered (already appended).
	case Recent:
		sel := n.combo[:0]
		for _, c := range eligible[:n.m] {
			sel = append(sel, childOcc{c: c, occ: n.buf[c][len(n.buf[c])-1]})
		}
		n.emitOrdered(sel)
		n.combo = sel[:0]
	case Chronicle, Continuous:
		sel := n.combo[:0]
		used := eligible[:n.m]
		for _, c := range used {
			sel = append(sel, childOcc{c: c, occ: n.buf[c][0]})
		}
		n.emitOrdered(sel)
		n.combo = sel[:0]
		for _, c := range used {
			n.buf[c] = removeIndices(n.buf[c], zeroIndex)
		}
	case Cumulative:
		sel := n.combo[:0]
		for _, c := range eligible {
			for _, b := range n.buf[c] {
				sel = append(sel, childOcc{c: c, occ: b})
			}
		}
		n.emitOrdered(sel)
		n.combo = sel[:0]
		// Consume after the emission holds its constituent references.
		for _, c := range eligible {
			n.buf[c] = releaseAll(n.buf[c])
		}
	}
}

// zeroIndex is the shared index slice for "remove the head" compactions.
var zeroIndex = []int{0}

// emitCombo assembles one combination — one buffered occurrence per
// selected other child, with o fixed — in the combo scratch and emits
// it.  The combination fan-out walks sel depth-first without allocating
// per emission.
func (n *anyNode) emitCombo(o childOcc, sel []int) {
	if cap(n.combo) < n.m {
		// Pre-size so recursive appends never outgrow the scratch (depth
		// is at most m), which would silently drop the reuse.
		//lint:allow hotalloc — scratch grown once to m and reused across every later emission
		n.combo = make([]childOcc, 0, n.m)
	}
	n.emitCombos(o, sel, 0, n.combo[:0])
}

// emitCombos emits one composite per combination of one buffered
// occurrence from each selected other child, with o fixed.  acc rides the
// shared combo scratch — each recursion level appends its choice and the
// slice header truncates on the way out; the completed combination is
// copied into the ordered scratch because emitOrdered sorts in place and
// must not permute the live accumulator under the recursion.
func (n *anyNode) emitCombos(o childOcc, sel []int, depth int, acc []childOcc) {
	if depth == len(sel) {
		n.ordered = append(n.ordered[:0], acc...)
		n.ordered = append(n.ordered, o)
		n.emitOrdered(n.ordered)
		return
	}
	for _, b := range n.buf[sel[depth]] {
		n.emitCombos(o, sel, depth+1, append(acc, childOcc{c: sel[depth], occ: b}))
	}
}

// emitOrdered emits with constituents sorted into child-index order (ties
// by buffer order) for deterministic parameter lists.
func (n *anyNode) emitOrdered(sel []childOcc) {
	sort.SliceStable(sel, func(i, j int) bool { return sel[i].c < sel[j].c })
	//lint:allow hotalloc — the constituents slice is retained by the emitted occurrence (or copied into pooled storage); the allocation is the product, not garbage
	constituents := make([]*event.Occurrence, len(sel))
	for i, s := range sel {
		constituents[i] = s.occ
	}
	n.det.emit(n.out, n.name, constituents...)
}

// choose invokes fn with each size-k subset of items, preserving order.
// The selection slice handed to fn is a single scratch buffer reused
// across invocations — fn must not retain it.  scratch provides the
// backing array; the (possibly grown) buffer is returned for the caller
// to keep, so steady-state enumeration allocates nothing per combination.
func choose(scratch []int, items []int, k int, fn func([]int)) []int {
	if k == 0 {
		fn(nil)
		return scratch
	}
	if k > len(items) {
		return scratch
	}
	if cap(scratch) < k {
		//lint:allow hotalloc — scratch grown once to k and returned to the caller for reuse across combinations
		scratch = make([]int, 0, k)
	}
	sel := scratch[:0]
	var rec func(start int)
	rec = func(start int) {
		if len(sel) == k {
			fn(sel)
			return
		}
		for i := start; i <= len(items)-(k-len(sel)); i++ {
			sel = append(sel, items[i])
			rec(i + 1)
			sel = sel[:len(sel)-1]
		}
	}
	rec(0)
	return sel[:0]
}

// notNode implements NOT(E2)[E1, E3]: the composite occurs when E3 occurs
// after an initiator E1 with no occurrence of E2 in the open interval
// (T(e1), T(e3)) of Definition 5.5.  Children are wired in AST order:
// 0 = E2 (the absent event), 1 = E1 (initiator), 2 = E3 (terminator).
//
// Because arrival order is a linear extension of happen-before, an E2
// delivered before an initiator can never satisfy T(e1) < T(e2), so E2
// occurrences are buffered only while some live initiator precedes them.
type notNode struct {
	det  *Detector
	name string
	ctx  Context
	out  emitFunc

	inits []*event.Occurrence
	e2s   []*event.Occurrence
	// eligible is scratch for the per-terminator initiator scan.
	eligible []int
}

//sentinel:hotpath
func (n *notNode) onChild(idx int, o *event.Occurrence) {
	switch idx {
	case 1: // initiator E1
		if n.ctx == Recent {
			n.inits = releaseAll(n.inits)
			n.pruneE2s()
		}
		n.inits = append(n.inits, retain(o))
	case 0: // E2 — potential spoiler
		for _, init := range n.inits {
			if event.StampLess(init, o) {
				n.e2s = append(n.e2s, retain(o))
				return
			}
		}
		// No live initiator precedes it and none arriving later can
		// (linear extension), so it can never spoil: drop.
	case 2: // terminator E3
		t3 := o.Stamp
		eligible := n.eligible[:0]
		for i, init := range n.inits {
			if event.StampLess(init, o) && !n.spoiled(init.Stamp, t3) {
				eligible = append(eligible, i)
			}
		}
		n.eligible = eligible[:0]
		if len(eligible) == 0 {
			return
		}
		switch n.ctx {
		case Unrestricted, Recent:
			for _, i := range eligible {
				n.det.emit(n.out, n.name, n.inits[i], o)
			}
		case Chronicle:
			n.det.emit(n.out, n.name, n.inits[eligible[0]], o)
			n.inits = removeIndices(n.inits, eligible[:1])
			n.pruneE2s()
		case Continuous:
			for _, i := range eligible {
				n.det.emit(n.out, n.name, n.inits[i], o)
			}
			n.inits = removeIndices(n.inits, eligible)
			n.pruneE2s()
		case Cumulative:
			//lint:allow hotalloc — the constituents slice is retained by the emitted occurrence (or copied into pooled storage); the allocation is the product, not garbage
			constituents := make([]*event.Occurrence, 0, len(eligible)+1)
			for _, i := range eligible {
				constituents = append(constituents, n.inits[i])
			}
			constituents = append(constituents, o)
			n.det.emit(n.out, n.name, constituents...)
			n.inits = removeIndices(n.inits, eligible)
			n.pruneE2s()
		}
	}
}

// spoiled reports whether a buffered E2 lies in the open interval
// (t1, t3).
func (n *notNode) spoiled(t1, t3 core.SetStamp) bool {
	for _, e2 := range n.e2s {
		if e2.Stamp.InOpenSet(t1, t3) {
			return true
		}
	}
	return false
}

// pruneE2s drops (and releases) E2 occurrences no live initiator
// precedes, nil-ing the vacated tail.
func (n *notNode) pruneE2s() {
	w := 0
outer:
	for _, e2 := range n.e2s {
		for _, init := range n.inits {
			if event.StampLess(init, e2) {
				n.e2s[w] = e2
				w++
				continue outer
			}
		}
		e2.Release()
	}
	for i := w; i < len(n.e2s); i++ {
		n.e2s[i] = nil
	}
	n.e2s = n.e2s[:w]
}

// apWindow is one open interval of an aperiodic or periodic operator.
type apWindow struct {
	init *event.Occurrence
	acc  []*event.Occurrence // accumulated E2s (A*) or ticks (P*)
}

// release drops the window's buffer references when it is discarded or
// after its closing emission.
func (w *apWindow) release() {
	w.init.Release()
	w.init = nil
	w.acc = releaseAll(w.acc)
}

// aperiodicNode implements A(E1, E2, E3) and, with cumulative=true,
// A*(E1, E2, E3) (Section 5.3).  Children in AST order: 0 = E1
// (initiator), 1 = E2 (the monitored event), 2 = E3 (terminator).
//
// A fires once per E2 occurrence falling after an open initiator; E3
// closes the windows it follows (closing is intrinsic to the operator, not
// a context policy, so it happens in every context).  A* accumulates E2
// occurrences per window and fires once when E3 closes the window,
// carrying the E2s strictly inside the open interval.
type aperiodicNode struct {
	det        *Detector
	name       string
	ctx        Context
	cumulative bool
	out        emitFunc

	windows []*apWindow
	// eligible and closed are scratch for the per-occurrence window
	// scans; window pointers never escape through them (emissions copy
	// what they need into fresh constituent slices).
	eligible []*apWindow
	closed   []*apWindow
}

//sentinel:hotpath
func (n *aperiodicNode) onChild(idx int, o *event.Occurrence) {
	switch idx {
	case 0: // E1 opens a window
		if n.ctx == Recent {
			for i, w := range n.windows {
				w.release()
				n.windows[i] = nil
			}
			n.windows = n.windows[:0]
		}
		n.windows = append(n.windows, &apWindow{init: retain(o)})
	case 1: // E2
		eligible := n.eligible[:0]
		for _, w := range n.windows {
			if event.StampLess(w.init, o) {
				eligible = append(eligible, w)
			}
		}
		n.eligible = eligible[:0]
		if len(eligible) == 0 {
			return
		}
		if n.cumulative {
			switch n.ctx {
			case Chronicle:
				eligible[0].acc = append(eligible[0].acc, retain(o))
			default:
				for _, w := range eligible {
					w.acc = append(w.acc, retain(o))
				}
			}
			return
		}
		switch n.ctx {
		case Chronicle:
			n.det.emit(n.out, n.name, eligible[0].init, o)
		case Recent:
			n.det.emit(n.out, n.name, eligible[len(eligible)-1].init, o)
		default: // Unrestricted, Continuous, Cumulative: every open window
			for _, w := range eligible {
				n.det.emit(n.out, n.name, w.init, o)
			}
		}
	case 2: // E3 closes windows
		closed := n.closed[:0]
		live := n.windows[:0]
		for _, w := range n.windows {
			if event.StampLess(w.init, o) {
				closed = append(closed, w)
			} else {
				live = append(live, w)
			}
		}
		for i := len(live); i < len(n.windows); i++ {
			n.windows[i] = nil
		}
		n.windows = live
		n.closed = closed[:0]
		if !n.cumulative || len(closed) == 0 {
			// A closed window emits nothing here in the non-cumulative
			// operator; its buffered references end with it.
			for _, w := range closed {
				w.release()
			}
			return
		}
		emitWindow := func(ws []*apWindow) {
			// Initiators first, then the union of accumulated E2s
			// strictly inside the open interval (an E2 shared by several
			// merged windows appears once), then the terminator.
			var constituents []*event.Occurrence
			for _, w := range ws {
				constituents = append(constituents, w.init)
			}
			//lint:allow hotalloc — dedup map allocated once per closing terminator, not per monitored E2; terminators are the rare event of the A* operator
			seen := make(map[*event.Occurrence]bool)
			for _, w := range ws {
				for _, e2 := range w.acc {
					if !seen[e2] && event.StampLess(e2, o) {
						seen[e2] = true
						constituents = append(constituents, e2)
					}
				}
			}
			constituents = append(constituents, o)
			n.det.emit(n.out, n.name, constituents...)
		}
		switch n.ctx {
		case Chronicle:
			emitWindow(closed[:1])
			// Later windows closed by the same E3 are discarded in
			// Chronicle: each terminator accounts for one initiator.
		case Cumulative:
			emitWindow(closed)
		default: // Unrestricted, Recent, Continuous: one composite per window
			// Subslicing closed hands emitWindow a one-window view without
			// the transient one-element slice a literal would allocate.
			for i := range closed {
				emitWindow(closed[i : i+1])
			}
		}
		for _, w := range closed {
			w.release()
		}
	}
}

// periodicNode implements P(E1, [t], E3) and, with cumulative=true,
// P*(E1, [t], E3): a temporal event that fires every period microticks
// from the initiator until the terminator.  Children in AST order:
// 0 = E1, 1 = E3.  Ticks are temporal occurrences stamped by the
// detector's TimeSource at their due instant.
type periodicNode struct {
	det        *Detector
	name       string
	ctx        Context
	cumulative bool
	period     clock.Microticks
	out        emitFunc
	sched      scheduler
	// tickType is the precomputed name+".tick" event type: ticks fire on
	// every period of every open window, so the concatenation is hoisted
	// to construction instead of rebuilt per tick.
	tickType string

	windows []*pWindow
}

type pWindow struct {
	init   *event.Occurrence
	acc    []*event.Occurrence
	ticks  int64
	closed bool
}

// close marks the window dead for its pending timer and drops its buffer
// references.
func (w *pWindow) close() {
	w.closed = true
	w.init.Release()
	w.init = nil
	w.acc = releaseAll(w.acc)
}

func (n *periodicNode) bindScheduler(s scheduler) error {
	if s == nil {
		return fmt.Errorf("detector: %s needs a TimeSource for periodic timers", n.name)
	}
	n.sched = s
	return nil
}

//sentinel:hotpath
func (n *periodicNode) onChild(idx int, o *event.Occurrence) {
	switch idx {
	case 0: // E1 opens a periodic window
		if n.ctx == Recent {
			for i, w := range n.windows {
				w.close()
				n.windows[i] = nil
			}
			n.windows = n.windows[:0]
		}
		w := &pWindow{init: retain(o)}
		n.windows = append(n.windows, w)
		n.scheduleTick(w, n.sched.now()+n.period)
	case 1: // E3 closes windows it follows
		live := n.windows[:0]
		for _, w := range n.windows {
			if event.StampLess(w.init, o) {
				if n.cumulative {
					var constituents []*event.Occurrence
					constituents = append(constituents, w.init)
					constituents = append(constituents, w.acc...)
					constituents = append(constituents, o)
					n.det.emit(n.out, n.name, constituents...)
				}
				w.close()
			} else {
				live = append(live, w)
			}
		}
		for i := len(live); i < len(n.windows); i++ {
			n.windows[i] = nil
		}
		n.windows = live
	}
}

func (n *periodicNode) scheduleTick(w *pWindow, due clock.Microticks) {
	n.sched.schedule(due, func(at clock.Microticks) {
		if w.closed {
			return
		}
		w.ticks++
		//lint:allow hotalloc — the count parameter map is retained by the emitted tick occurrence; the allocation is the product, not garbage
		params := event.Params{"count": w.ticks}
		// Ticks are plain heap occurrences (not pooled): their lifetime is
		// the emitted composite's, and temporal firings are orders of
		// magnitude rarer than the event path the pool serves.
		tick := event.NewPrimitive(n.tickType, event.Temporal, n.sched.stampAt(at), params)
		if n.cumulative {
			w.acc = append(w.acc, tick)
		} else {
			n.det.emit(n.out, n.name, w.init, tick)
		}
		n.scheduleTick(w, at+n.period)
	})
}

// plusNode implements PLUS(E, t): the composite occurs t microticks after
// each occurrence of E.  The emitted occurrence composes the triggering
// occurrence with a temporal occurrence stamped at the due instant, so the
// composite timestamp reflects the fire time via the Max operator.
type plusNode struct {
	det   *Detector
	name  string
	delta clock.Microticks
	out   emitFunc
	sched scheduler
	// timerType is the precomputed name+".timer" event type, hoisted to
	// construction so each PLUS firing builds no string.
	timerType string
}

func (n *plusNode) bindScheduler(s scheduler) error {
	if s == nil {
		return fmt.Errorf("detector: %s needs a TimeSource for PLUS timers", n.name)
	}
	n.sched = s
	return nil
}

//sentinel:hotpath
func (n *plusNode) onChild(_ int, o *event.Occurrence) {
	// The timer closure stores o past onChild's return, so it holds a
	// buffer reference until it fires (a timer that never fires leaks the
	// reference — the ledger's safe direction).
	o.Retain()
	n.sched.schedule(n.sched.now()+n.delta, func(at clock.Microticks) {
		tick := event.NewPrimitive(n.timerType, event.Temporal, n.sched.stampAt(at), nil)
		n.det.emit(n.out, n.name, o, tick)
		o.Release()
	})
}

// removeIndices removes the (ascending) indices from s in a single
// compaction pass, preserving order, releasing each removed occurrence's
// buffer reference.  The prefix before the first removed index is left
// untouched, and the vacated tail is nil-ed so consumed occurrences don't
// stay reachable through the buffer's capacity.
func removeIndices(s []*event.Occurrence, idx []int) []*event.Occurrence {
	if len(idx) == 0 {
		return s
	}
	w := idx[0]
	s[w].Release()
	k := 1
	for i := w + 1; i < len(s); i++ {
		if k < len(idx) && idx[k] == i {
			k++
			s[i].Release()
			continue
		}
		s[w] = s[i]
		w++
	}
	for i := w; i < len(s); i++ {
		s[i] = nil
	}
	return s[:w]
}
