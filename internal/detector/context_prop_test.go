package detector

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/event"
)

// Cross-context properties on random single-site traces (total order, so
// the properties are exact).  These pin the relationships between the
// parameter contexts that the Snoop literature states informally.

// randomTrace publishes n random A/B events (single site, strictly
// increasing ticks) into a fresh engine per context and returns the
// detections of each context.
func contextDetections(t *testing.T, expression string, seed int64, n int) map[Context][]*event.Occurrence {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	types := make([]string, n)
	for i := range types {
		types[i] = []string{"A", "B"}[r.Intn(2)]
	}
	out := make(map[Context][]*event.Occurrence)
	for _, ctx := range Contexts() {
		d, _ := newTestDetector(t)
		c := &collector{}
		if _, err := d.DefineString("X", expression, ctx); err != nil {
			t.Fatal(err)
		}
		d.Subscribe("X", c.handler)
		for i, typ := range types {
			d.Publish(occAt("s1", int64(i)*25, typ))
		}
		out[ctx] = c.got
	}
	return out
}

// pairKey renders a detection's constituent identity.
func pairKey(o *event.Occurrence) string {
	k := ""
	for _, c := range o.Flatten() {
		k += fmt.Sprintf("%s@%d;", c.Type, c.Stamp[0].Local)
	}
	return k
}

// Every pair detected by a consuming context is also detected by
// Unrestricted (Unrestricted is the complete semantics).
func TestContextsSubsetOfUnrestricted(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dets := contextDetections(t, "A ; B", seed, 60)
		unrestricted := map[string]bool{}
		for _, o := range dets[Unrestricted] {
			unrestricted[pairKey(o)] = true
		}
		for _, ctx := range []Context{Recent, Chronicle, Continuous} {
			for _, o := range dets[ctx] {
				if !unrestricted[pairKey(o)] {
					t.Fatalf("seed %d: %s detected %s not present in Unrestricted", seed, ctx, pairKey(o))
				}
			}
		}
	}
}

// Chronicle and Continuous never reuse an initiator occurrence.
func TestConsumingContextsUseInitiatorsOnce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dets := contextDetections(t, "A ; B", seed, 60)
		for _, ctx := range []Context{Chronicle, Cumulative} {
			seen := map[int64]bool{}
			for _, o := range dets[ctx] {
				for _, c := range o.Flatten() {
					if c.Type != "A" {
						continue
					}
					local := c.Stamp[0].Local
					if seen[local] {
						t.Fatalf("seed %d: %s reused initiator A@%d", seed, ctx, local)
					}
					seen[local] = true
				}
			}
		}
	}
}

// For SEQ, Cumulative fires exactly once per terminator on which
// Continuous fires (both consume every open initiator, so they go empty
// and refill in lockstep); Chronicle may fire on strictly more
// terminators because it consumes only one initiator per firing.
func TestCumulativeFiresOnContinuousTerminators(t *testing.T) {
	terminators := func(os []*event.Occurrence) map[int64]int {
		out := map[int64]int{}
		for _, o := range os {
			flat := o.Flatten()
			out[flat[len(flat)-1].Stamp[0].Local]++
		}
		return out
	}
	for seed := int64(1); seed <= 10; seed++ {
		dets := contextDetections(t, "A ; B", seed, 60)
		cont := terminators(dets[Continuous])
		cum := terminators(dets[Cumulative])
		if len(cont) != len(cum) {
			t.Fatalf("seed %d: continuous fired on %d terminators, cumulative on %d",
				seed, len(cont), len(cum))
		}
		for term, n := range cum {
			if n != 1 {
				t.Fatalf("seed %d: cumulative fired %d times on terminator %d", seed, n, term)
			}
			if cont[term] == 0 {
				t.Fatalf("seed %d: cumulative fired on terminator %d that continuous skipped", seed, term)
			}
		}
		if len(dets[Cumulative]) > len(dets[Chronicle]) {
			t.Fatalf("seed %d: cumulative fired more often than chronicle", seed)
		}
	}
}

// Detection counts order: Chronicle ≤ Continuous ≤ Unrestricted.
func TestContextDetectionCountOrdering(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dets := contextDetections(t, "A ; B", seed, 60)
		nChr, nCont, nUnr := len(dets[Chronicle]), len(dets[Continuous]), len(dets[Unrestricted])
		if nChr > nCont || nCont > nUnr {
			t.Fatalf("seed %d: counts chronicle=%d continuous=%d unrestricted=%d violate ordering",
				seed, nChr, nCont, nUnr)
		}
		if nUnr == 0 {
			t.Fatalf("seed %d: degenerate trace", seed)
		}
	}
}

// Recent pairs each terminator with the latest preceding initiator: there
// is never an initiator strictly between the paired initiator and the
// terminator.
func TestRecentUsesLatestInitiator(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 60
		types := make([]string, n)
		for i := range types {
			types[i] = []string{"A", "B"}[r.Intn(2)]
		}
		d, _ := newTestDetector(t)
		c := &collector{}
		if _, err := d.DefineString("X", "A ; B", Recent); err != nil {
			t.Fatal(err)
		}
		d.Subscribe("X", c.handler)
		var aTicks []int64
		for i, typ := range types {
			tick := int64(i) * 25
			if typ == "A" {
				aTicks = append(aTicks, tick)
			}
			d.Publish(occAt("s1", tick, typ))
		}
		for _, o := range c.got {
			flat := o.Flatten()
			init, term := flat[0].Stamp[0].Local, flat[1].Stamp[0].Local
			for _, a := range aTicks {
				if a > init && a < term {
					t.Fatalf("seed %d: Recent paired A@%d with B@%d although A@%d is between",
						seed, init, term, a)
				}
			}
		}
	}
}

// Cumulative detections partition exactly the initiators that Continuous
// detects individually.
func TestCumulativeAggregatesContinuous(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dets := contextDetections(t, "A ; B", seed, 60)
		contInits := map[int64]bool{}
		for _, o := range dets[Continuous] {
			contInits[o.Flatten()[0].Stamp[0].Local] = true
		}
		cumInits := map[int64]bool{}
		for _, o := range dets[Cumulative] {
			flat := o.Flatten()
			for _, c := range flat[:len(flat)-1] {
				cumInits[c.Stamp[0].Local] = true
			}
		}
		if len(contInits) != len(cumInits) {
			t.Fatalf("seed %d: continuous used %d initiators, cumulative %d",
				seed, len(contInits), len(cumInits))
		}
		for k := range contInits {
			if !cumInits[k] {
				t.Fatalf("seed %d: initiator %d in continuous but not cumulative", seed, k)
			}
		}
	}
}

// The same properties hold for AND (no ordering requirement).
func TestAndContextsSubsetOfUnrestricted(t *testing.T) {
	for seed := int64(21); seed <= 26; seed++ {
		dets := contextDetections(t, "A AND B", seed, 60)
		unrestricted := map[string]bool{}
		for _, o := range dets[Unrestricted] {
			unrestricted[pairKey(o)] = true
		}
		for _, ctx := range []Context{Recent, Chronicle, Continuous} {
			for _, o := range dets[ctx] {
				if !unrestricted[pairKey(o)] {
					t.Fatalf("seed %d: AND %s detected %s outside Unrestricted", seed, ctx, pairKey(o))
				}
			}
		}
		if len(dets[Chronicle]) > len(dets[Unrestricted]) {
			t.Fatalf("seed %d: AND chronicle exceeded unrestricted", seed)
		}
	}
}
