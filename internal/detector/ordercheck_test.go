package detector

import "testing"

func TestOrderCheckingCleanStream(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetOrderChecking(true)
	d.MustDefine("X", "A ; B", Chronicle)
	for i := int64(0); i < 50; i++ {
		d.Publish(occAt("s1", i*25, []string{"A", "B"}[i%2]))
	}
	if d.OrderViolations() != 0 {
		t.Fatalf("clean stream flagged %d violations", d.OrderViolations())
	}
}

func TestOrderCheckingFlagsRegression(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetOrderChecking(true)
	d.Publish(occAt("s1", 100, "A"))
	d.Publish(occAt("s1", 50, "A")) // behind the frontier: violation
	if d.OrderViolations() != 1 {
		t.Fatalf("violations = %d, want 1", d.OrderViolations())
	}
}

func TestOrderCheckingAllowsConcurrent(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetOrderChecking(true)
	d.Publish(occAt("s1", 100, "A"))
	d.Publish(occAt("s2", 105, "A")) // concurrent: either order is a valid extension
	if d.OrderViolations() != 0 {
		t.Fatalf("concurrent publication flagged: %d", d.OrderViolations())
	}
}

// The distributed reorderer's output always passes the order check — an
// end-to-end guard wired through the centralized replay path.
func TestOrderCheckingAcceptsReordererOutput(t *testing.T) {
	d, _ := newTestDetector(t)
	d.SetOrderChecking(true)
	d.MustDefine("X", "A ; B", Chronicle)
	// Simulate the reorderer's (global, site, local) release order for a
	// two-site interleaving.
	d.Publish(occAt("s1", 100, "A"))
	d.Publish(occAt("s2", 105, "A"))
	d.Publish(occAt("s1", 130, "B"))
	d.Publish(occAt("s2", 135, "B"))
	if d.OrderViolations() != 0 {
		t.Fatalf("extension order flagged: %d", d.OrderViolations())
	}
}
