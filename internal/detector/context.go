// Package detector implements Sentinel's composite event detection over
// the distributed timestamp algebra of internal/core.
//
// Composite events are compiled into an event graph (one operator node per
// AST node); primitive occurrences are published into the graph and flow
// upward, each operator node emitting composite occurrences whose
// timestamps are propagated with the paper's Max operator
// (event.NewComposite → core.MaxAll).  All temporal tests inside the
// operators use the composite relations of Definition 5.3 — happen-before
// `<`, concurrency `~`, the weaker `⪯` and interval membership — so the
// *same* node implementations serve both the centralized engine (Section
// 3: one site, singleton stamps, total order) and the distributed engine
// of internal/ddetect (Section 5: multi-site max-set stamps, partial
// order).
//
// Operator nodes process constituent occurrences in a total "arrival
// order" that the caller must make a linear extension of the composite
// happen-before order: in the centralized engine this is just timestamp
// order, and internal/ddetect restores it with per-source FIFO sequencing
// plus watermark-based reordering.  Under that discipline an occurrence
// processed after another is never happen-before it, which is what makes
// the initiator/terminator bookkeeping below sound.
package detector

import "fmt"

// Context is a Snoop parameter context: the policy that selects which
// initiator occurrences pair with a terminator occurrence and which are
// consumed by the pairing.  The contexts are orthogonal to the operator
// definitions (Section 3.2) and were introduced because the unrestricted
// semantics is combinatorially explosive for most applications.
type Context int

const (
	// Unrestricted pairs a terminator with every eligible initiator and
	// consumes nothing — the pure Definition 3.1 semantics.  It is
	// exponential in general and serves as the correctness oracle for
	// the other contexts in tests.
	Unrestricted Context = iota
	// Recent keeps only the most recent initiator (per constituent);
	// pairing does not consume it — it stands until a newer initiator
	// replaces it.  Suited to sensor-style applications where the latest
	// reading matters.
	Recent
	// Chronicle pairs the oldest unconsumed initiator with the
	// terminator and consumes it — FIFO, suited to transaction-log
	// style applications where each initiator must be accounted once.
	Chronicle
	// Continuous pairs the terminator with every open initiator and
	// consumes them all: each initiator starts a window, a terminator
	// closes all open windows, one occurrence per window.
	Continuous
	// Cumulative pairs the terminator with every open initiator in a
	// single composite occurrence that accumulates all their parameters,
	// and consumes them all.
	Cumulative
)

func (c Context) String() string {
	switch c {
	case Unrestricted:
		return "unrestricted"
	case Recent:
		return "recent"
	case Chronicle:
		return "chronicle"
	case Continuous:
		return "continuous"
	case Cumulative:
		return "cumulative"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// Contexts lists all parameter contexts, for table-driven tests and
// benchmarks.
func Contexts() []Context {
	return []Context{Unrestricted, Recent, Chronicle, Continuous, Cumulative}
}
