package detector

// Buffer limiting: in the partial order some retained state can never be
// garbage-collected safely by reasoning alone (a NOT initiator spoiled by
// an E2 can still pair with a terminator concurrent with the spoiler; an
// Unrestricted context never consumes).  Production deployments bound
// that state instead: SetBufferLimit caps every per-node buffer, evicting
// the oldest entries first and counting what was dropped, so memory is
// bounded at an explicit, observable recall cost.

// trimmable is implemented by nodes with evictable buffers.
type trimmable interface {
	trim(max int) int
}

// trimOldest drops the oldest entries of a buffer beyond max.
func trimOldest[T any](buf []T, max int) ([]T, int) {
	if max <= 0 || len(buf) <= max {
		return buf, 0
	}
	drop := len(buf) - max
	copy(buf, buf[drop:])
	return buf[:max], drop
}

func (n *binaryNode) trim(max int) int {
	dropped := 0
	for i := range n.buf {
		var d int
		n.buf[i], d = trimOldest(n.buf[i], max)
		dropped += d
	}
	return dropped
}

func (n *anyNode) trim(max int) int {
	dropped := 0
	for i := range n.buf {
		var d int
		n.buf[i], d = trimOldest(n.buf[i], max)
		dropped += d
	}
	return dropped
}

func (n *notNode) trim(max int) int {
	var d1, d2 int
	n.inits, d1 = trimOldest(n.inits, max)
	n.e2s, d2 = trimOldest(n.e2s, max)
	return d1 + d2
}

func (n *aperiodicNode) trim(max int) int {
	var d int
	n.windows, d = trimOldest(n.windows, max)
	return d
}

func (n *periodicNode) trim(max int) int {
	if max <= 0 || len(n.windows) <= max {
		return 0
	}
	drop := len(n.windows) - max
	// Evicted periodic windows must disarm their timers.
	for _, w := range n.windows[:drop] {
		w.closed = true
	}
	copy(n.windows, n.windows[drop:])
	n.windows = n.windows[:max]
	return drop
}

// SetBufferLimit caps every operator node's buffers at max occurrences
// (windows for A/A*/P/P*), evicting oldest-first after each publication.
// Zero (the default) means unlimited.  Dropped entries are counted in
// DroppedOccurrences; a non-zero count means detection recall was traded
// for bounded memory.
func (d *Detector) SetBufferLimit(max int) {
	if max < 0 {
		max = 0
	}
	d.bufferLimit = max
}

// DroppedOccurrences returns the number of buffered entries evicted by
// the buffer limit so far.
func (d *Detector) DroppedOccurrences() uint64 { return d.dropped }

// enforceLimit trims every node; called after each publication when a
// limit is set.
func (d *Detector) enforceLimit() {
	if d.bufferLimit <= 0 {
		return
	}
	for _, n := range d.nodes {
		if tn, ok := n.(trimmable); ok {
			d.dropped += uint64(tn.trim(d.bufferLimit))
		}
	}
}
