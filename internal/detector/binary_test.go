package detector

import "testing"

// trace helpers: events at site s1 with increasing local ticks, so the
// publication order is the (total) centralized timestamp order.

func TestSeqUnrestricted(t *testing.T) {
	c := run(t, "A ; B", Unrestricted,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"))
	c.assertSigs(t, "X[A@10 B@30]", "X[A@20 B@30]")
}

func TestSeqRecent(t *testing.T) {
	c := run(t, "A ; B", Recent,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"), occAt("s1", 40, "B"))
	// The most recent initiator pairs and is retained.
	c.assertSigs(t, "X[A@20 B@30]", "X[A@20 B@40]")
}

func TestSeqChronicle(t *testing.T) {
	c := run(t, "A ; B", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"), occAt("s1", 40, "B"))
	// Oldest initiator first, consumed on use.
	c.assertSigs(t, "X[A@10 B@30]", "X[A@20 B@40]")
}

func TestSeqContinuous(t *testing.T) {
	c := run(t, "A ; B", Continuous,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"), occAt("s1", 40, "B"))
	// The first terminator closes both windows; the second finds none.
	c.assertSigs(t, "X[A@10 B@30]", "X[A@20 B@30]")
}

func TestSeqCumulative(t *testing.T) {
	c := run(t, "A ; B", Cumulative,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"), occAt("s1", 40, "B"))
	// One composite accumulating both initiators, then nothing left.
	c.assertSigs(t, "X[A@10 A@20 B@30]")
}

func TestSeqTerminatorWithoutInitiator(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "A ; B", ctx, occAt("s1", 10, "B"))
		if len(c.got) != 0 {
			t.Errorf("%s: SEQ fired with no initiator: %v", ctx, c.sigs())
		}
	}
}

func TestSeqRequiresHappenBefore(t *testing.T) {
	// Cross-site stamps one granule apart are concurrent, not ordered:
	// the sequence must NOT fire (Section 5.3: t1 < t2 required).
	for _, ctx := range Contexts() {
		c := run(t, "A ; B", ctx,
			occAt("s1", 100, "A"), occAt("s2", 110, "B"))
		if len(c.got) != 0 {
			t.Errorf("%s: SEQ fired on concurrent cross-site stamps: %v", ctx, c.sigs())
		}
	}
}

func TestSeqFiresAcrossSitesWhenOrdered(t *testing.T) {
	// Two granules apart: ordered, fires.
	c := run(t, "A ; B", Chronicle,
		occAt("s1", 100, "A"), occAt("s2", 120, "B"))
	c.assertSigs(t, "X[A@100 B@120]")
}

func TestSeqCompositeStampIsMax(t *testing.T) {
	c := run(t, "A ; B", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 30, "B"))
	if len(c.got) != 1 {
		t.Fatalf("want one detection, got %v", c.sigs())
	}
	st := c.got[0].Stamp
	if len(st) != 1 || st[0].Local != 30 {
		t.Errorf("composite stamp = %s, want the max {(s1, 3, 30)}", st)
	}
}

func TestAndBothOrders(t *testing.T) {
	// AND fires regardless of constituent order.
	c1 := run(t, "A AND B", Chronicle, occAt("s1", 10, "A"), occAt("s1", 20, "B"))
	c1.assertSigs(t, "X[A@10 B@20]")
	c2 := run(t, "A AND B", Chronicle, occAt("s1", 10, "B"), occAt("s1", 20, "A"))
	// Constituents are listed left child first even though B arrived first.
	c2.assertSigs(t, "X[A@20 B@10]")
}

func TestAndUnrestricted(t *testing.T) {
	c := run(t, "A AND B", Unrestricted,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "B"))
	c.assertSigs(t, "X[A@10 B@20]", "X[A@10 B@30]")
}

func TestAndRecentRepairs(t *testing.T) {
	c := run(t, "A AND B", Recent,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "B"), occAt("s1", 40, "A"))
	// Each new occurrence pairs with the retained most recent other.
	c.assertSigs(t, "X[A@10 B@20]", "X[A@10 B@30]", "X[A@40 B@30]")
}

func TestAndChronicleConsumes(t *testing.T) {
	c := run(t, "A AND B", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "B"), occAt("s1", 40, "A"))
	// A@10 consumed by B@20; B@30 buffers; A@40 pairs with it.
	c.assertSigs(t, "X[A@10 B@20]", "X[A@40 B@30]")
}

func TestAndCumulative(t *testing.T) {
	c := run(t, "A AND B", Cumulative,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"))
	c.assertSigs(t, "X[A@10 A@20 B@30]")
}

func TestAndConcurrentCrossSiteStampsFire(t *testing.T) {
	// Conjunction has no ordering requirement: concurrent stamps pair.
	c := run(t, "A AND B", Chronicle,
		occAt("s1", 100, "A"), occAt("s2", 105, "B"))
	c.assertSigs(t, "X[A@100 B@105]")
	if len(c.got[0].Stamp) != 2 {
		t.Errorf("concurrent constituents must yield a 2-component max-set stamp, got %s", c.got[0].Stamp)
	}
}

func TestOrFiresOnEither(t *testing.T) {
	c := run(t, "A OR B", Recent,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "A"))
	c.assertSigs(t, "X[A@10]", "X[B@20]", "X[A@30]")
}

func TestOrContextIrrelevant(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "A OR B", ctx, occAt("s1", 10, "A"), occAt("s1", 20, "B"))
		if len(c.got) != 2 {
			t.Errorf("%s: OR fired %d times, want 2", ctx, len(c.got))
		}
	}
}
