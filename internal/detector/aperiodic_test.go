package detector

import "testing"

func TestAperiodicFiresPerMonitoredEvent(t *testing.T) {
	c := run(t, "A(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 20, "M"), occAt("s1", 30, "M"),
		occAt("s1", 40, "T"), occAt("s1", 50, "M"))
	// Two M's inside the window; the one after T finds it closed.
	c.assertSigs(t, "X[S@10 M@20]", "X[S@10 M@30]")
}

func TestAperiodicNoWindowNoFire(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "A(S, M, T)", ctx, occAt("s1", 20, "M"))
		if len(c.got) != 0 {
			t.Errorf("%s: A fired without initiator: %v", ctx, c.sigs())
		}
	}
}

func TestAperiodicRecentKeepsLatestWindow(t *testing.T) {
	c := run(t, "A(S, M, T)", Recent,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"))
	c.assertSigs(t, "X[S@20 M@30]")
}

func TestAperiodicChronicleUsesOldestWindow(t *testing.T) {
	c := run(t, "A(S, M, T)", Chronicle,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"))
	c.assertSigs(t, "X[S@10 M@30]")
}

func TestAperiodicContinuousAllWindows(t *testing.T) {
	c := run(t, "A(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"))
	c.assertSigs(t, "X[S@10 M@30]", "X[S@20 M@30]")
}

func TestAperiodicTerminatorClosesInEveryContext(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "A(S, M, T)", ctx,
			occAt("s1", 10, "S"), occAt("s1", 20, "T"), occAt("s1", 30, "M"))
		if len(c.got) != 0 {
			t.Errorf("%s: A fired after terminator closed the window: %v", ctx, c.sigs())
		}
	}
}

func TestAperiodicTerminatorOnlyClosesPrecedingWindows(t *testing.T) {
	// T@20 closes S@10's window but not S@30's.
	c := run(t, "A(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 20, "T"), occAt("s1", 30, "S"), occAt("s1", 40, "M"))
	c.assertSigs(t, "X[S@30 M@40]")
}

func TestAperiodicCumulativeStar(t *testing.T) {
	c := run(t, "A*(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 20, "M"), occAt("s1", 30, "M"), occAt("s1", 40, "T"))
	// One emission at the terminator with the accumulated M's.
	c.assertSigs(t, "X[S@10 M@20 M@30 T@40]")
}

func TestAperiodicStarEmptyWindowStillFires(t *testing.T) {
	// Snoop's A* signals when E3 occurs even with no E2 in the interval;
	// the composite then carries just the bounds.
	c := run(t, "A*(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 40, "T"))
	c.assertSigs(t, "X[S@10 T@40]")
}

func TestAperiodicStarTwoWindowsContinuous(t *testing.T) {
	c := run(t, "A*(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"), occAt("s1", 40, "T"))
	c.assertSigs(t, "X[S@10 M@30 T@40]", "X[S@20 M@30 T@40]")
}

func TestAperiodicStarChronicleOldestOnly(t *testing.T) {
	c := run(t, "A*(S, M, T)", Chronicle,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"), occAt("s1", 40, "T"))
	// M accumulates only into the oldest window; the terminator emits it
	// and discards the younger window it also closed.
	c.assertSigs(t, "X[S@10 M@30 T@40]")
}

func TestAperiodicStarCumulativeMergesWindows(t *testing.T) {
	c := run(t, "A*(S, M, T)", Cumulative,
		occAt("s1", 10, "S"), occAt("s1", 20, "S"), occAt("s1", 30, "M"), occAt("s1", 40, "T"))
	// One composite merging both windows; the shared M appears once.
	c.assertSigs(t, "X[S@10 S@20 M@30 T@40]")
}

func TestAperiodicStarExcludesConcurrentWithTerminator(t *testing.T) {
	// An M concurrent with T is not strictly inside the open interval.
	c := run(t, "A*(S, M, T)", Continuous,
		occAt("s1", 100, "S"), occAt("s1", 150, "M"), occAt("s2", 205, "M"), occAt("s1", 210, "T"))
	c.assertSigs(t, "X[S@100 M@150 T@210]")
}

func TestAperiodicStarLateMonitoredIgnored(t *testing.T) {
	c := run(t, "A*(S, M, T)", Continuous,
		occAt("s1", 10, "S"), occAt("s1", 40, "T"), occAt("s1", 50, "M"), occAt("s1", 60, "T"))
	c.assertSigs(t, "X[S@10 T@40]")
}
