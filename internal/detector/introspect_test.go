package detector

import "testing"

func TestStateSizeTracksBuffers(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Chronicle)
	if d.StateSize() != 0 {
		t.Fatalf("fresh detector StateSize = %d", d.StateSize())
	}
	d.Publish(occAt("s1", 10, "A"))
	d.Publish(occAt("s1", 20, "A"))
	if d.StateSize() != 2 {
		t.Fatalf("StateSize after two initiators = %d, want 2", d.StateSize())
	}
	d.Publish(occAt("s1", 30, "B")) // consumes one initiator
	if d.StateSize() != 1 {
		t.Fatalf("StateSize after detection = %d, want 1", d.StateSize())
	}
}

func TestStateSizeBoundedInConsumingContexts(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Chronicle)
	for i := int64(0); i < 1000; i++ {
		d.Publish(occAt("s1", i*50, "A"))
		d.Publish(occAt("s1", i*50+25, "B"))
	}
	if d.StateSize() != 0 {
		t.Fatalf("Chronicle steady state leaked %d occurrences", d.StateSize())
	}
}

func TestStateSizeGrowsUnrestricted(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A ; B", Unrestricted)
	for i := int64(0); i < 100; i++ {
		d.Publish(occAt("s1", i*50, "A"))
		d.Publish(occAt("s1", i*50+25, "B"))
	}
	if d.StateSize() != 100 {
		t.Fatalf("Unrestricted retained %d, want all 100 initiators", d.StateSize())
	}
}

func TestStateSizeIncludesTimers(t *testing.T) {
	d, ft, _ := temporalHarness(t, "PLUS(A, 50)", Recent)
	ft.now = 100
	d.Publish(occAt("s1", 10, "A"))
	if d.StateSize() != 1 {
		t.Fatalf("armed timer not counted: %d", d.StateSize())
	}
}

func TestStateSizeAperiodicWindows(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "A*(S, M, T)", Continuous)
	d.Publish(occAt("s1", 10, "S"))
	d.Publish(occAt("s1", 20, "M"))
	d.Publish(occAt("s1", 30, "M"))
	if d.StateSize() != 3 { // window init + 2 accumulated
		t.Fatalf("A* window state = %d, want 3", d.StateSize())
	}
	d.Publish(occAt("s1", 40, "T"))
	if d.StateSize() != 0 {
		t.Fatalf("A* window not consumed: %d", d.StateSize())
	}
}

func TestNodeCount(t *testing.T) {
	d, _ := newTestDetector(t)
	d.MustDefine("X", "(A ; B) AND C", Chronicle)
	// One SEQ node + one AND node.
	if d.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2", d.NodeCount())
	}
	d.MustDefine("Y", "A", Chronicle) // pass-through node
	if d.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", d.NodeCount())
	}
}
