package detector

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/eventlog"
)

// genRandomExpr produces a random well-formed expression over the
// alphabet: binary operators recurse, ANY and NOT stay over primitives
// (their argument grammar is the narrowest).  Small alphabet + bounded
// depth makes structural collisions — the subtrees hash-consing folds —
// common by construction.
func genRandomExpr(r *rand.Rand, types []string, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		return types[r.Intn(len(types))]
	}
	switch r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s ; %s)",
			genRandomExpr(r, types, depth-1), genRandomExpr(r, types, depth-1))
	case 1:
		return fmt.Sprintf("(%s OR %s)",
			genRandomExpr(r, types, depth-1), genRandomExpr(r, types, depth-1))
	case 2:
		return fmt.Sprintf("(%s AND %s)",
			genRandomExpr(r, types, depth-1), genRandomExpr(r, types, depth-1))
	case 3:
		i := r.Intn(len(types))
		return fmt.Sprintf("ANY(2, %s, %s, %s)",
			types[i], types[(i+1)%len(types)], types[(i+2)%len(types)])
	default:
		i := r.Intn(len(types))
		return fmt.Sprintf("NOT(%s)[%s, %s]",
			types[(i+1)%len(types)], types[i], types[(i+2)%len(types)])
	}
}

// TestSharingDifferentialProperty is the property-based differential
// oracle for the hash-consed compiler: across random definition sets
// (random bodies, random parameter contexts, deliberately injected
// common subexpressions) and random single-site streams, the detector
// with sharing enabled must produce the byte-identical occurrence stream
// as the one with sharing disabled.  Sharing must also actually occur in
// a healthy fraction of trials, or the property is vacuous.
func TestSharingDifferentialProperty(t *testing.T) {
	types := []string{"A", "B", "C", "D", "E"}
	// Consuming contexts only: Unrestricted keeps every partial match
	// alive, so random nested expressions over a 300-event stream would be
	// combinatorial — the differential claim is about compilation, and the
	// four consuming contexts cover every sharing-relevant code path.
	ctxs := []Context{Recent, Chronicle, Continuous, Cumulative}
	ops := []string{";", "OR", "AND"}
	sharedTrials, detections := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		poolRand := rand.New(rand.NewSource(int64(1000 + trial)))
		pool := make([]string, 4)
		for i := range pool {
			pool[i] = genRandomExpr(poolRand, types, 2)
		}
		nDefs := 5 + poolRand.Intn(20)

		run := func(sharing bool) ([]byte, IntrospectStats) {
			reg := event.NewRegistry()
			for _, typ := range types {
				reg.MustDeclare(typ, event.Explicit)
			}
			d := New("s1", reg, nil)
			d.SetSharing(sharing)
			var buf bytes.Buffer
			log := eventlog.NewWriter(&buf)
			// One generator per arm, same seed: both arms draw the identical
			// definition set and stream.
			r := rand.New(rand.NewSource(int64(5000 + trial)))
			for i := 0; i < nDefs; i++ {
				var body string
				if r.Intn(2) == 0 {
					// Half the definitions embed pool subexpressions, so common
					// subtrees appear across definitions, not just by luck.
					body = fmt.Sprintf("(%s %s %s)",
						pool[r.Intn(len(pool))], ops[r.Intn(len(ops))], pool[r.Intn(len(pool))])
				} else {
					body = genRandomExpr(r, types, 3)
				}
				name := fmt.Sprintf("R%02d", i)
				if _, err := d.DefineString(name, body, ctxs[r.Intn(len(ctxs))]); err != nil {
					t.Fatalf("trial %d: define %q: %v", trial, body, err)
				}
				d.Subscribe(name, func(o *event.Occurrence) {
					if err := log.Append(o); err != nil {
						t.Error(err)
					}
				})
			}
			for i := 0; i < 300; i++ {
				d.Publish(event.NewPrimitive(types[r.Intn(len(types))], event.Explicit,
					core.DeriveStamp("s1", int64(i)*10+int64(r.Intn(5)), 10), nil))
			}
			return buf.Bytes(), d.Introspect()
		}

		onLog, onStats := run(true)
		offLog, offStats := run(false)
		if !bytes.Equal(onLog, offLog) {
			t.Errorf("trial %d: occurrence stream differs with sharing on (%d bytes) vs off (%d bytes)",
				trial, len(onLog), len(offLog))
		}
		if onStats.SharedSubexprs > 0 {
			sharedTrials++
			if offStats.NodeCount <= onStats.NodeCount {
				t.Errorf("trial %d: sharing did not shrink the graph (%d shared nodes vs %d unshared)",
					trial, onStats.NodeCount, offStats.NodeCount)
			}
		}
		if len(onLog) > 0 {
			detections++
		}
	}
	if sharedTrials < trials/2 {
		t.Fatalf("only %d/%d trials exercised subexpression sharing; the property is vacuous", sharedTrials, trials)
	}
	if detections < trials/2 {
		t.Fatalf("only %d/%d trials produced detections; the property is vacuous", detections, trials)
	}
}
