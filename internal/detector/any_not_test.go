package detector

import "testing"

func TestAnyRecentFiresOnEachArrival(t *testing.T) {
	c := run(t, "ANY(2, A, B, C)", Recent,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"))
	// B completes {A,B}; C then pairs with the retained most recent of
	// the first eligible constituent (A).
	c.assertSigs(t, "X[A@10 B@20]", "X[A@10 C@30]")
}

func TestAnyChronicleConsumes(t *testing.T) {
	c := run(t, "ANY(2, A, B, C)", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"))
	// A and B consumed by the first detection; C alone cannot complete.
	c.assertSigs(t, "X[A@10 B@20]")
}

func TestAnyChronicleOldestFirst(t *testing.T) {
	c := run(t, "ANY(2, A, B)", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"), occAt("s1", 40, "B"))
	c.assertSigs(t, "X[A@10 B@30]", "X[A@20 B@40]")
}

func TestAnyCumulativeTakesEverything(t *testing.T) {
	c := run(t, "ANY(2, A, B)", Cumulative,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "B"))
	c.assertSigs(t, "X[A@10 A@20 B@30]")
}

func TestAnyUnrestrictedCombinations(t *testing.T) {
	c := run(t, "ANY(2, A, B, C)", Unrestricted,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"))
	// B pairs with A; C pairs with each of A and B.
	c.assertSigs(t, "X[A@10 B@20]", "X[A@10 C@30]", "X[B@20 C@30]")
}

func TestAnyThreeOfThree(t *testing.T) {
	c := run(t, "ANY(3, A, B, C)", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"))
	c.assertSigs(t, "X[A@10 B@20 C@30]")
}

func TestAnyDoesNotFireBelowThreshold(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "ANY(2, A, B, C)", ctx, occAt("s1", 10, "A"), occAt("s1", 20, "A"))
		if len(c.got) != 0 {
			t.Errorf("%s: ANY fired on one distinct type: %v", ctx, c.sigs())
		}
	}
}

// ANY(2, A, B) behaves like AND(A, B) in Chronicle for a simple trace —
// a consistency check between the two implementations.
func TestAnyTwoMatchesAndChronicle(t *testing.T) {
	trace := []int64{10, 20, 30, 40}
	types := []string{"A", "B", "B", "A"}
	cAny := run(t, "ANY(2, A, B)", Chronicle,
		occAt("s1", trace[0], types[0]), occAt("s1", trace[1], types[1]),
		occAt("s1", trace[2], types[2]), occAt("s1", trace[3], types[3]))
	cAnd := run(t, "A AND B", Chronicle,
		occAt("s1", trace[0], types[0]), occAt("s1", trace[1], types[1]),
		occAt("s1", trace[2], types[2]), occAt("s1", trace[3], types[3]))
	a, b := cAny.sigs(), cAnd.sigs()
	if len(a) != len(b) {
		t.Fatalf("ANY(2) detected %v, AND detected %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ANY(2) detected %v, AND detected %v", a, b)
		}
	}
}

func TestNotFiresWhenAbsent(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 30, "C"))
	c.assertSigs(t, "X[A@10 C@30]")
}

func TestNotSuppressedBySpoiler(t *testing.T) {
	for _, ctx := range Contexts() {
		c := run(t, "NOT(B)[A, C]", ctx,
			occAt("s1", 10, "A"), occAt("s1", 20, "B"), occAt("s1", 30, "C"))
		if len(c.got) != 0 {
			t.Errorf("%s: NOT fired despite spoiler: %v", ctx, c.sigs())
		}
	}
}

func TestNotSpoilerBeforeInitiatorIgnored(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Chronicle,
		occAt("s1", 5, "B"), occAt("s1", 10, "A"), occAt("s1", 30, "C"))
	c.assertSigs(t, "X[A@10 C@30]")
}

func TestNotSpoilerAfterTerminatorIgnored(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 30, "C"), occAt("s1", 40, "B"))
	c.assertSigs(t, "X[A@10 C@30]")
}

func TestNotChroniclePartialSpoil(t *testing.T) {
	// B@15 spoils A@10 but not A@20.
	c := run(t, "NOT(B)[A, C]", Chronicle,
		occAt("s1", 10, "A"), occAt("s1", 15, "B"), occAt("s1", 20, "A"), occAt("s1", 30, "C"))
	c.assertSigs(t, "X[A@20 C@30]")
}

func TestNotRecentUsesLatestInitiator(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Recent,
		occAt("s1", 10, "A"), occAt("s1", 15, "B"), occAt("s1", 20, "A"), occAt("s1", 30, "C"))
	// Recent only tracks A@20; B@15 precedes it and cannot spoil.
	c.assertSigs(t, "X[A@20 C@30]")
}

func TestNotRecentSpoiledLatest(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Recent,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 25, "B"), occAt("s1", 30, "C"))
	if len(c.got) != 0 {
		t.Errorf("NOT fired although the retained initiator was spoiled: %v", c.sigs())
	}
}

func TestNotCumulative(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Cumulative,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "C"))
	c.assertSigs(t, "X[A@10 A@20 C@30]")
}

func TestNotConcurrentSpoilerDoesNotSpoil(t *testing.T) {
	// A spoiler concurrent with the terminator is not strictly inside the
	// open interval (Definition 5.5 needs t2 < t3), so it does not spoil.
	c := run(t, "NOT(B)[A, C]", Chronicle,
		occAt("s1", 100, "A"), occAt("s2", 205, "B"), occAt("s1", 210, "C"))
	c.assertSigs(t, "X[A@100 C@210]")
}

func TestNotContinuousConsumesAllClean(t *testing.T) {
	c := run(t, "NOT(B)[A, C]", Continuous,
		occAt("s1", 10, "A"), occAt("s1", 20, "A"), occAt("s1", 30, "C"), occAt("s1", 40, "C"))
	c.assertSigs(t, "X[A@10 C@30]", "X[A@20 C@30]")
}
