package detector

// Introspection: operator nodes report how much constituent state they
// retain, so operators and deployments can be monitored for buffer growth
// (e.g. Unrestricted-context definitions, or NOT initiators retained
// because a spoiler does not dominate every future terminator in the
// partial order).

// stateful is implemented by nodes that buffer occurrences.
type stateful interface {
	stateSize() int
}

func (n *binaryNode) stateSize() int { return len(n.buf[0]) + len(n.buf[1]) }

func (n *anyNode) stateSize() int {
	total := 0
	for _, b := range n.buf {
		total += len(b)
	}
	return total
}

func (n *notNode) stateSize() int { return len(n.inits) + len(n.e2s) }

func (n *aperiodicNode) stateSize() int {
	total := 0
	for _, w := range n.windows {
		total += 1 + len(w.acc)
	}
	return total
}

func (n *periodicNode) stateSize() int {
	total := 0
	for _, w := range n.windows {
		total += 1 + len(w.acc)
	}
	return total
}

// StateSize returns the total number of occurrences buffered across all
// operator nodes of all definitions, plus armed timers.  A steady
// workload against consuming contexts keeps this bounded; Unrestricted
// (and spoiler-heavy NOT workloads) grow it, which is exactly what a
// deployment wants to alarm on.
func (d *Detector) StateSize() int {
	total := d.timers.Len()
	for _, n := range d.nodes {
		if s, ok := n.(stateful); ok {
			total += s.stateSize()
		}
	}
	return total
}

// NodeCount returns the number of operator nodes compiled into the graph.
func (d *Detector) NodeCount() int { return len(d.nodes) }

// IntrospectStats is a one-call snapshot of the detector's health
// gauges, for monitoring bridges (the observability registry reads one
// per site at export time instead of four separate accessors).
type IntrospectStats struct {
	// StateSize is Detector.StateSize: buffered occurrences plus armed
	// timers across all operator nodes.
	StateSize int
	// NodeCount is the number of compiled operator nodes.
	NodeCount int
	// PendingTimers is the number of armed temporal-operator timers.
	PendingTimers int
	// Dropped is DroppedOccurrences: buffer-limit evictions (recall lost
	// to bounded state).
	Dropped uint64
	// OrderViolations is OrderViolations: out-of-order publishes seen
	// with order checking enabled.
	OrderViolations uint64
	// SharedSubexprs is the number of (context, subtree) entries in the
	// CSE cache — compiled sub-expressions reused across definitions.
	SharedSubexprs int
	// InternedSubtrees is the number of distinct expression subtrees
	// hash-consed by the compiler; NodeCount / InternedSubtrees > 1
	// would mean sharing is off or contexts diverge.
	InternedSubtrees int
}

// Introspect returns the current health gauges.  Like the accessors it
// bundles, it must not run concurrently with Publish.
func (d *Detector) Introspect() IntrospectStats {
	return IntrospectStats{
		StateSize:        d.StateSize(),
		NodeCount:        len(d.nodes),
		PendingTimers:    d.timers.Len(),
		Dropped:          d.dropped,
		OrderViolations:  d.orderViolations,
		SharedSubexprs:   len(d.shared),
		InternedSubtrees: d.interner.Len(),
	}
}
