package detector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

func occWith(site core.SiteID, local int64, typ string, params event.Params) *event.Occurrence {
	return event.NewPrimitive(typ, event.Explicit, core.DeriveStamp(site, local, tRatio), params)
}

func TestMaskFiltersAtGraphEdge(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.MustDefine("Big", "A[amount >= 1000] ; B", Chronicle)
	d.Subscribe("Big", c.handler)

	d.Publish(occWith("s1", 10, "A", event.Params{"amount": 50}))   // filtered out
	d.Publish(occWith("s1", 20, "A", event.Params{"amount": 2000})) // passes
	d.Publish(occWith("s1", 30, "B", nil))
	if len(c.got) != 1 {
		t.Fatalf("detections = %v", c.sigs())
	}
	if init := c.got[0].Flatten()[0]; init.Params["amount"] != 2000 {
		t.Fatalf("wrong initiator paired: %v", init.Params)
	}
	// Filtered occurrences never enter the buffers.
	if d.StateSize() != 0 {
		t.Fatalf("filtered occurrence buffered: state %d", d.StateSize())
	}
}

func TestMaskOnBothSides(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	d.MustDefine("X", `A[side == "buy"] ; A[side == "sell"]`, Chronicle)
	d.Subscribe("X", c.handler)

	d.Publish(occWith("s1", 10, "A", event.Params{"side": "sell"})) // not an initiator
	d.Publish(occWith("s1", 20, "A", event.Params{"side": "buy"}))
	d.Publish(occWith("s1", 30, "A", event.Params{"side": "sell"}))
	if len(c.got) != 1 {
		t.Fatalf("detections = %d, want 1", len(c.got))
	}
	flat := c.got[0].Flatten()
	if flat[0].Params["side"] != "buy" || flat[1].Params["side"] != "sell" {
		t.Fatalf("wrong pairing: %v / %v", flat[0].Params, flat[1].Params)
	}
	// The first sell could not terminate: no buy was buffered yet.
	if flat[1].Stamp[0].Local != 30 {
		t.Fatalf("terminated by the wrong occurrence: %v", flat[1])
	}
}

func TestMaskInNotOperator(t *testing.T) {
	d, _ := newTestDetector(t)
	c := &collector{}
	// Only *hard* cancels spoil the window.
	d.MustDefine("X", "NOT(B[hard == true])[A, C]", Chronicle)
	d.Subscribe("X", c.handler)

	d.Publish(occWith("s1", 10, "A", nil))
	d.Publish(occWith("s1", 20, "B", event.Params{"hard": false})) // soft cancel: ignored
	d.Publish(occWith("s1", 30, "C", nil))
	if len(c.got) != 1 {
		t.Fatalf("soft cancel suppressed detection: %v", c.sigs())
	}

	d.Publish(occWith("s1", 40, "A", nil))
	d.Publish(occWith("s1", 50, "B", event.Params{"hard": true})) // hard cancel spoils
	d.Publish(occWith("s1", 60, "C", nil))
	if len(c.got) != 1 {
		t.Fatalf("hard cancel did not spoil: %v", c.sigs())
	}
}

func TestUnmaskedRouteStillReceives(t *testing.T) {
	// Two definitions over the same primitive, one masked: the mask on
	// one route must not filter the other.
	d, _ := newTestDetector(t)
	big := &collector{}
	all := &collector{}
	d.MustDefine("Big", "A[amount > 100] ; B", Chronicle)
	d.MustDefine("All", "A ; B", Chronicle)
	d.Subscribe("Big", big.handler)
	d.Subscribe("All", all.handler)

	d.Publish(occWith("s1", 10, "A", event.Params{"amount": 5}))
	d.Publish(occWith("s1", 20, "B", nil))
	if len(big.got) != 0 {
		t.Fatalf("masked definition fired: %v", big.sigs())
	}
	if len(all.got) != 1 {
		t.Fatalf("unmasked definition suppressed: %v", all.sigs())
	}
}
