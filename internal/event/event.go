// Package event defines the event model of Sentinel as used by the paper:
// typed primitive events raised at sites (Section 3.1) and event
// occurrences — primitive or composite — carrying the distributed
// timestamps of internal/core (Sections 4 and 5).
//
// An event (Definition 3.1 / Section 5.3) is a function from the time
// (stamp) domain to booleans; operationally an event *type* names a
// pattern and an *occurrence* is one instant at which the function is
// true, together with its timestamp and parameters.  Composite occurrences
// additionally reference the constituent occurrences that made them true,
// which is what Sentinel propagates to rule conditions and actions.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Class is the kind of a primitive event, following the taxonomy the
// paper inherits from Sentinel and [10]: temporal events, data
// manipulation (database) events, transaction events, and explicit
// (abstract, application-raised) events.
type Class int

const (
	// Temporal events are clock events (absolute or relative time).
	Temporal Class = iota
	// Database events are data-manipulation events (insert, update,
	// delete, retrieve) raised by the active database substrate.
	Database
	// Transaction events are begin/commit/abort events.
	Transaction
	// Explicit events are raised directly by applications.
	Explicit
	// Composite marks occurrences produced by an operator node rather
	// than a primitive source.
	Composite
)

func (c Class) String() string {
	switch c {
	case Temporal:
		return "temporal"
	case Database:
		return "database"
	case Transaction:
		return "transaction"
	case Explicit:
		return "explicit"
	case Composite:
		return "composite"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Type describes an event type: the name of an interesting primitive
// event, or the name of a composite pattern.
type Type struct {
	Name  string
	Class Class
}

// TypeID is a dense registry-assigned identifier for an event type,
// numbered from 1 in declaration order.  0 is the unresolved sentinel —
// the zero value of an occurrence built outside a registry — so slices
// indexed by TypeID reserve slot 0 and dispatch falls back to a name
// lookup when it sees it.  IDs mirror PR 6's core.Site roster interning,
// but for event *types*: the detector's routing tables index dense
// []TypeID slices instead of hashing type-name strings per occurrence.
type TypeID int32

// Params is an event occurrence's parameter list.  Keys are parameter
// names; values are application data (object identity, attribute values,
// tick counts, …).
type Params map[string]any

// Clone returns an independent shallow copy.
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// String renders the parameters deterministically (sorted by key).
func (p Params) String() string {
	if len(p) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, p[k])
	}
	b.WriteByte('}')
	return b.String()
}

// SampleState is the tri-state head-sampling decision carried by an
// occurrence.  The zero value is Undecided so hand-built and decoded
// occurrences default to "not yet decided", which span gates treat as
// kept — only an explicit Drop suppresses lineage spans.
type SampleState uint8

const (
	// SampleUndecided means no sampler has ruled on this occurrence.
	SampleUndecided SampleState = iota
	// SampleKeep marks the occurrence's lineage as sampled.
	SampleKeep
	// SampleDrop suppresses the occurrence's lineage spans.
	SampleDrop
)

// StageMark names the pipeline-stage boundary an occurrence last crossed
// (see Occurrence.Mark).  The zero value means "no crossing recorded".
type StageMark uint8

const (
	// MarkNone is the unset sentinel.
	MarkNone StageMark = iota
	// MarkRaise: entered the system at its origin site.
	MarkRaise
	// MarkSend: left the origin inside a transport envelope.
	MarkSend
	// MarkRecv: arrived at a consumer site.
	MarkRecv
	// MarkRelease: handed to the detectors by the reorder buffer.
	MarkRelease
)

// Occurrence is one occurrence of an event — the operational counterpart
// of "E(ts) = true".  Primitive occurrences have a singleton Stamp and no
// constituents.  Composite occurrences carry the max-set timestamp built
// by core.Max over their constituents (Definition 5.9) and reference the
// constituent occurrences, which is how parameters are made available to
// ECA conditions and actions.
type Occurrence struct {
	// Type is the event type name.
	Type string
	// TypeID is the dense registry ID for Type, or 0 when the occurrence
	// was built without a registry in reach (hand-built tests, rosterless
	// wire decode).  The detector resolves 0 lazily on publish; every
	// in-pipeline producer (ingest, wire decode, composite emission) sets
	// it so the hot dispatch path never touches the type-name string.
	TypeID TypeID
	// Class distinguishes primitive classes from composite occurrences.
	Class Class
	// Site is the site at which the occurrence was raised (primitive) or
	// detected (composite).
	Site core.SiteID
	// Stamp is the distributed timestamp: a singleton for primitive
	// events, a mutually concurrent max-set for composite events.
	Stamp core.SetStamp
	// Seq is a per-site, per-stream sequence number used by the
	// transport layer to restore FIFO order; it has no temporal
	// semantics across sites.
	Seq uint64
	// Params is the occurrence's parameter list.
	Params Params
	// Constituents are the child occurrences of a composite occurrence,
	// in detection order.
	Constituents []*Occurrence
	// Interned is the roster-interned form of Stamp, carried only by
	// occurrences built through a Pool attached to a sealed roster
	// (string sites survive at the wire/rosterless boundary and in
	// reference.go).  When two occurrences both carry it, stamp
	// comparisons run integer-only; when either lacks it, callers fall
	// back to the string algebra — the two agree on every valid set
	// (rsetstamp_test.go), so the fallback is invisible in output.
	Interned core.RSetStamp

	// Sample is the head-sampling decision for this occurrence's lineage
	// spans (obs.Sampler): undecided until the engine stamps it at raise
	// (or, for composites, at publish as the AND over constituents).  It
	// gates span emission only — stats, eventlogs and detection are
	// sampling-blind.  Cleared on recycle like every other pooled field.
	Sample SampleState

	// Mark/MarkAt track the last pipeline-stage boundary this occurrence
	// crossed (MarkRaise…MarkRelease) and the simulated microtick it did,
	// feeding the engine's per-stage latency attribution.  For an
	// occurrence consumed at several sites the mark follows the most
	// recent crossing in crank order — a deterministic approximation
	// documented with the stage legs in internal/ddetect.
	Mark   StageMark
	MarkAt int64

	// Pool lifecycle state (see pool.go).  pool is nil for ordinary
	// heap-allocated occurrences, for which Retain/Release are no-ops.
	pool  *Pool
	refs  atomic.Int32
	gen   uint32
	freed bool
	// Inline and reusable storage: stamp0/istamp0 back the singleton
	// stamp of a pooled primitive; sbuf/sbuf2 and ibuf/ibuf2 are the
	// ping-pong fold buffers a pooled composite builds its stamp in; the
	// recycled Constituents slice keeps its capacity across generations.
	stamp0  [1]core.Stamp
	istamp0 [1]core.RStamp
	sbuf    core.SetStamp
	sbuf2   core.SetStamp
	ibuf    core.RSetStamp
	ibuf2   core.RSetStamp
}

// NewPrimitive builds a primitive occurrence from a single stamp.
//
//lint:allow hotalloc — the occurrence and its singleton stamp are the product of a raise; their allocation is inherent, not hot-path garbage
func NewPrimitive(typ string, class Class, stamp core.Stamp, params Params) *Occurrence {
	return &Occurrence{
		Type:   typ,
		Class:  class,
		Site:   stamp.Site,
		Stamp:  core.Singleton(stamp),
		Params: params,
	}
}

// NewComposite builds a composite occurrence at the given detection site.
// Its timestamp is the Max fold over the constituents' timestamps — the
// paper's Max-operator propagation (Definition 5.9) — and its
// constituents are recorded in the order given.
//
// The fold uses core.MaxShared: occurrence stamps are immutable after
// construction, so a single-constituent composite shares its
// constituent's stamp instead of cloning it, and the multi-constituent
// case allocates only the folded results.  This is the innermost
// allocation site of the whole detection engine.
//
//lint:allow hotalloc — the composite occurrence and its folded stamp are the product of detection; their allocation is inherent, not hot-path garbage
func NewComposite(typ string, site core.SiteID, constituents ...*Occurrence) *Occurrence {
	if len(constituents) == 0 {
		panic("event: composite occurrence with no constituents")
	}
	stamp := constituents[0].Stamp
	for _, c := range constituents[1:] {
		stamp = core.MaxShared(stamp, c.Stamp)
	}
	return &Occurrence{
		Type:  typ,
		Class: Composite,
		Site:  site,
		Stamp: stamp,
		// Params stays nil: composite parameters live on the constituents
		// (see Flatten), nothing writes into a composite's own map, and an
		// empty map per composite was measurable garbage on the detect path.
		Constituents: constituents,
	}
}

// String renders the occurrence compactly, e.g.
// "Deposit@bank1 {(bank1, 12, 123)} {amount=40}".
func (o *Occurrence) String() string {
	if o == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s@%s %s %s", o.Type, o.Site, o.Stamp, o.Params)
}

// Flatten returns the primitive occurrences underlying o in left-to-right
// constituent order (o itself if primitive).  This is the parameter list a
// cumulative context presents to rules.
func (o *Occurrence) Flatten() []*Occurrence {
	if len(o.Constituents) == 0 {
		return []*Occurrence{o}
	}
	return o.AppendFlatten(nil)
}

// AppendFlatten is Flatten with caller-provided storage: the primitive
// occurrences are appended to dst and the extended slice returned, so a
// reused scratch buffer makes repeated flattening allocation-free.
func (o *Occurrence) AppendFlatten(dst []*Occurrence) []*Occurrence {
	if len(o.Constituents) == 0 {
		return append(dst, o)
	}
	for _, c := range o.Constituents {
		dst = c.AppendFlatten(dst)
	}
	return dst
}

// StampLess compares two occurrences' timestamps under the composite "<"
// (Definition 5.3(2)), integer-only when both carry interned stamps and
// via the string algebra otherwise.  The two paths agree on every valid
// set (core's differential tests), so which one runs is unobservable in
// detection output.
//
//sentinel:hotpath
func StampLess(a, b *Occurrence) bool {
	if len(a.Interned) > 0 && len(b.Interned) > 0 {
		return a.Interned.Less(b.Interned)
	}
	return a.Stamp.Less(b.Stamp)
}

// StampConcurrent is StampLess for the composite "~" (Definition 5.3(1)).
//
//sentinel:hotpath
func StampConcurrent(a, b *Occurrence) bool {
	if len(a.Interned) > 0 && len(b.Interned) > 0 {
		return a.Interned.ConcurrentWith(b.Interned)
	}
	return a.Stamp.ConcurrentWith(b.Stamp)
}

// StampWeakLE is StampLess for the composite "⪯" (Definition 5.4).
//
//sentinel:hotpath
func StampWeakLE(a, b *Occurrence) bool {
	if len(a.Interned) > 0 && len(b.Interned) > 0 {
		return a.Interned.WeakLE(b.Interned)
	}
	return a.Stamp.WeakLE(b.Stamp)
}

// ErrDuplicateType reports a second registration of an event type name.
var ErrDuplicateType = errors.New("event: duplicate event type")

// ErrUnknownType reports a reference to an unregistered event type.
var ErrUnknownType = errors.New("event: unknown event type")

// Registry is the catalog of declared event types.  Sentinel requires
// events be pre-defined before use in expressions; the registry enforces
// that and records each type's class.  It is safe for concurrent use.
type Registry struct {
	// mu is load-bearing: one registry is shared by every site's
	// detector, and with the parallel detect stage (internal/ddetect,
	// Config.Pipeline.Workers > 1) lookups can race with declarations
	// made by a detector defining a composite type mid-detection.  Reads
	// vastly outnumber writes, hence the RWMutex.
	mu    sync.RWMutex
	types map[string]Type
	// Dense interning: ids maps name → TypeID (from 1, declaration
	// order) and byID is the inverse with slot 0 reserved for the
	// unresolved sentinel.  Declaration order is deterministic in this
	// codebase (definitions and alphabets are set up in program order
	// before traffic), so IDs are reproducible run to run.
	ids  map[string]TypeID
	byID []Type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types: make(map[string]Type),
		ids:   make(map[string]TypeID),
		byID:  make([]Type, 1), // slot 0 = unresolved sentinel
	}
}

// Declare registers an event type.
func (r *Registry) Declare(name string, class Class) (Type, error) {
	if name == "" {
		return Type{}, errors.New("event: empty event type name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.types[name]; dup {
		return Type{}, fmt.Errorf("%w: %q", ErrDuplicateType, name)
	}
	t := Type{Name: name, Class: class}
	r.types[name] = t
	r.ids[name] = TypeID(len(r.byID))
	r.byID = append(r.byID, t)
	return t, nil
}

// MustDeclare is Declare that panics on error.
func (r *Registry) MustDeclare(name string, class Class) Type {
	t, err := r.Declare(name, class)
	if err != nil {
		panic(err)
	}
	return t
}

// Lookup returns the type registered under name.
func (r *Registry) Lookup(name string) (Type, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[name]
	if !ok {
		return Type{}, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	return t, nil
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.types[name]
	return ok
}

// TypeID returns the dense ID registered for name, or 0 if the name is
// unknown.
//
//sentinel:hotpath
func (r *Registry) TypeID(name string) TypeID {
	r.mu.RLock()
	//lint:allow strindex — the registry IS the name→ID boundary; callers resolve once and interned dispatch carries the TypeID from there
	id := r.ids[name]
	r.mu.RUnlock()
	return id
}

// NameOf returns the type name for a dense ID, or "" for 0 and
// out-of-range IDs.
func (r *Registry) NameOf(id TypeID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id <= 0 || int(id) >= len(r.byID) {
		return ""
	}
	return r.byID[id].Name
}

// TypeOf returns the Type for a dense ID and whether the ID is valid.
func (r *Registry) TypeOf(id TypeID) (Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id <= 0 || int(id) >= len(r.byID) {
		return Type{}, false
	}
	return r.byID[id], true
}

// Count returns the number of declared types.  Valid TypeIDs are
// 1..Count inclusive, so a slice of length Count+1 indexes every type.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID) - 1
}

// Names returns the registered type names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.types))
	for n := range r.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
