package event

import (
	"testing"

	"repro/internal/core"
)

// Dense IDs number from 1 in declaration order; 0 is the unresolved
// sentinel for unknown names and invalid IDs.
func TestRegistryTypeIDs(t *testing.T) {
	r := NewRegistry()
	if got := r.Count(); got != 0 {
		t.Fatalf("empty registry Count = %d, want 0", got)
	}
	if id := r.TypeID("A"); id != 0 {
		t.Fatalf("undeclared TypeID = %d, want 0", id)
	}
	names := []string{"A", "B", "Pair"}
	classes := []Class{Explicit, Database, Composite}
	for i, n := range names {
		r.MustDeclare(n, classes[i])
	}
	for i, n := range names {
		want := TypeID(i + 1)
		if id := r.TypeID(n); id != want {
			t.Errorf("TypeID(%q) = %d, want %d", n, id, want)
		}
		if got := r.NameOf(TypeID(i + 1)); got != n {
			t.Errorf("NameOf(%d) = %q, want %q", i+1, got, n)
		}
		typ, ok := r.TypeOf(TypeID(i + 1))
		if !ok || typ.Name != n || typ.Class != classes[i] {
			t.Errorf("TypeOf(%d) = %+v, %v", i+1, typ, ok)
		}
	}
	if got := r.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	for _, bad := range []TypeID{0, -1, 4, 99} {
		if got := r.NameOf(bad); got != "" {
			t.Errorf("NameOf(%d) = %q, want \"\"", bad, got)
		}
		if _, ok := r.TypeOf(bad); ok {
			t.Errorf("TypeOf(%d) reported ok", bad)
		}
	}
}

// A duplicate declaration must not burn an ID.
func TestRegistryTypeIDNoGapOnDuplicate(t *testing.T) {
	r := NewRegistry()
	r.MustDeclare("A", Explicit)
	if _, err := r.Declare("A", Explicit); err == nil {
		t.Fatal("duplicate Declare succeeded")
	}
	r.MustDeclare("B", Explicit)
	if id := r.TypeID("B"); id != 2 {
		t.Fatalf("TypeID(B) = %d after duplicate declare, want 2", id)
	}
	if got := r.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

// Recycling clears TypeID like every other identity field.
func TestPoolClearsTypeID(t *testing.T) {
	p := NewPool(nil)
	o := p.GetPrimitive("A", Explicit, stampAt("s1", 1, 10), core.NoSite, nil)
	o.TypeID = 7
	o.Release()
	o2 := p.GetPrimitive("B", Explicit, stampAt("s1", 2, 20), core.NoSite, nil)
	if o2.TypeID != 0 {
		t.Fatalf("recycled occurrence carries TypeID %d, want 0", o2.TypeID)
	}
}
