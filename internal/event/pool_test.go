package event

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func testRoster() *core.Roster {
	return core.NewRoster([]core.SiteID{"a", "b", "c"})
}

func stampAt(site core.SiteID, g, l int64) core.Stamp {
	return core.Stamp{Site: site, Global: g, Local: l}
}

// TestPoolPrimitiveLifecycle checks the basic get → release → recycle
// round trip, the generation counter, and the field-zeroing contract.
func TestPoolPrimitiveLifecycle(t *testing.T) {
	r := testRoster()
	p := NewPool(r)
	o := p.GetPrimitive("A", Explicit, stampAt("a", 3, 30), r.MustSite("a"), Params{"n": 1})
	if !o.Pooled() || o.Refs() != 1 {
		t.Fatalf("fresh pooled occurrence: pooled=%v refs=%d", o.Pooled(), o.Refs())
	}
	if len(o.Interned) != 1 || o.Interned[0].Site != r.MustSite("a") {
		t.Fatalf("interned singleton not filled: %v", o.Interned)
	}
	gen := o.Gen()
	o.Release()
	if o.Gen() != gen+1 {
		t.Fatalf("recycle did not bump generation: %d -> %d", gen, o.Gen())
	}
	if o.Params != nil || o.Stamp != nil || o.Interned != nil || o.Constituents != nil && len(o.Constituents) != 0 {
		t.Fatalf("recycled occurrence not cleared: %+v", o)
	}
	st := p.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.Misses != 1 {
		t.Fatalf("stats after one round trip: %+v", st)
	}
	// The next get must reuse recycled storage (single goroutine, so the
	// sync.Pool's private slot serves it back).  Under the race detector
	// sync.Pool deliberately drops a quarter of Puts on the floor, so
	// allow a few round trips rather than pinning the very next get.
	reused := false
	for i := 0; i < 32 && !reused; i++ {
		before := p.Stats().Misses
		o2 := p.GetPrimitive("B", Explicit, stampAt("b", 4, 40), r.MustSite("b"), nil)
		reused = p.Stats().Misses == before
		o2.Release()
	}
	if !reused {
		t.Fatalf("no get reused recycled storage: %+v", p.Stats())
	}
}

// TestPoolCompositeMatchesNewComposite pins the pooled constructor against
// the plain one: same type/site/constituents and byte-identical stamps,
// whether the fold ran interned or string-form.
func TestPoolCompositeMatchesNewComposite(t *testing.T) {
	r := testRoster()
	p := NewPool(r)
	a := p.GetPrimitive("A", Explicit, stampAt("a", 3, 30), r.MustSite("a"), nil)
	b := p.GetPrimitive("B", Explicit, stampAt("b", 3, 31), r.MustSite("b"), nil)
	c := p.GetPrimitive("C", Explicit, stampAt("c", 9, 90), r.MustSite("c"), nil)

	want := NewComposite("X", "c", a, b, c)
	got := p.GetComposite("X", "c", []*Occurrence{a, b, c})
	if !got.Stamp.Equal(want.Stamp) {
		t.Fatalf("pooled composite stamp %s, plain %s", got.Stamp, want.Stamp)
	}
	if len(got.Interned) != len(got.Stamp) {
		t.Fatalf("interned fold length %d vs stamp %d", len(got.Interned), len(got.Stamp))
	}
	if a.Refs() != 2 || b.Refs() != 2 || c.Refs() != 2 {
		t.Fatalf("constituents not retained: %d %d %d", a.Refs(), b.Refs(), c.Refs())
	}

	// Mixed interned/uninterned constituents fall back to the string fold
	// with the same resulting stamp.
	plain := NewPrimitive("D", Explicit, stampAt("a", 9, 91), nil)
	got2 := p.GetComposite("Y", "a", []*Occurrence{c, plain})
	want2 := NewComposite("Y", "a", c, plain)
	if !got2.Stamp.Equal(want2.Stamp) {
		t.Fatalf("mixed composite stamp %s, plain %s", got2.Stamp, want2.Stamp)
	}
	if got2.Interned != nil {
		t.Fatalf("mixed composite should not carry an interned stamp: %v", got2.Interned)
	}

	// Cascade: releasing the creator refs and then the composites frees
	// everything bottom-up.
	a.Release()
	b.Release()
	c.Release()
	gen := a.Gen()
	got2.Release() // frees got2, releases c and plain
	got.Release()  // frees got, releases a, b, c -> all recycled
	if a.Gen() != gen+1 {
		t.Fatalf("constituent not cascaded on composite recycle")
	}
	st := p.Stats()
	if st.Puts != 5 { // a, b, c, got, got2
		t.Fatalf("expected 5 puts after cascade, got %+v", st)
	}
}

// TestPoolDoublePutAvertedAndStrict checks both double-put modes: counted
// and averted by default, panic under Strict — the generation-counter
// safety rail the race tests exercise.
func TestPoolDoublePutAvertedAndStrict(t *testing.T) {
	r := testRoster()
	p := NewPool(r)
	o := p.GetPrimitive("A", Explicit, stampAt("a", 1, 10), r.MustSite("a"), nil)
	o.Release()
	o.Release() // double put: averted, counted
	if st := p.Stats(); st.DoublePuts != 1 {
		t.Fatalf("double put not counted: %+v", st)
	}

	p.Strict = true
	o2 := p.GetPrimitive("B", Explicit, stampAt("b", 1, 10), r.MustSite("b"), nil)
	o2.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Strict pool did not panic on double put")
			}
		}()
		o2.Release()
	}()
}

// TestPoolUseAfterPutDetection demonstrates the generation check: a holder
// of a stale pointer can detect that the object was recycled (and possibly
// reissued) underneath it.
func TestPoolUseAfterPutDetection(t *testing.T) {
	r := testRoster()
	p := NewPool(r)
	o := p.GetPrimitive("A", Explicit, stampAt("a", 1, 10), r.MustSite("a"), nil)
	gen := o.Gen()
	o.Release()
	if o.Gen() == gen {
		t.Fatalf("stale holder cannot detect recycle: generation unchanged")
	}
}

// TestPoolConcurrentRetainRelease hammers one shared occurrence from many
// goroutines under -race: the refcount must neither recycle early nor
// leak the final reference.
func TestPoolConcurrentRetainRelease(t *testing.T) {
	r := testRoster()
	p := NewPool(r)
	p.Strict = true
	const workers = 8
	const rounds = 2000
	o := p.GetPrimitive("A", Explicit, stampAt("a", 1, 10), r.MustSite("a"), nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				o.Retain()
				o.Release()
			}
		}()
	}
	wg.Wait()
	if o.Refs() != 1 {
		t.Fatalf("refcount drifted under concurrency: %d", o.Refs())
	}
	o.Release()
	if st := p.Stats(); st.Puts != 1 || st.DoublePuts != 0 {
		t.Fatalf("unexpected stats after concurrent churn: %+v", st)
	}
}

// TestUnpooledOpsAreNoops pins the property the engine's unconditional
// ledger relies on: Retain/Release on plain or nil occurrences do nothing.
func TestUnpooledOpsAreNoops(t *testing.T) {
	o := NewPrimitive("A", Explicit, stampAt("a", 1, 10), nil)
	o.Retain()
	o.Release()
	o.Release()
	if o.Pooled() {
		t.Fatalf("plain occurrence claims to be pooled")
	}
	var nilOcc *Occurrence
	nilOcc.Retain()
	nilOcc.Release()
}
