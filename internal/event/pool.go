// Occurrence pooling: the free-list discipline internal/ddetect already
// applies to transport frames (coalesce.go, internal/wire), extended to
// the occurrence lifecycle itself.  A steady-state detection path raises,
// forwards, buffers, folds and publishes millions of occurrences whose
// lifetimes end at publish (primitives consumed by a context, composites
// nobody subscribed to); without recycling, every one of them is garbage.
//
// Ownership rules (DESIGN.md §2h):
//
//   - An occurrence built by a Pool starts with one reference — the
//     creator's.  Every party that stores the pointer past the current
//     call (a transport envelope, a detector buffer, a composite's
//     constituent list, a publish queue) takes its own reference with
//     Retain and drops it with Release when it lets go.
//   - Release of the last reference recycles the occurrence into the
//     pool; recycling a composite releases its constituents (the cascade
//     that frees a detection tree bottom-up as consumers let go).
//   - The ledger is leak-biased: a path that cannot prove it holds the
//     last reference simply never calls Release and the object falls to
//     the garbage collector — exactly the pre-pool behaviour.  A missed
//     Release is a leak; a spurious one is corruption; only the former is
//     tolerated.
//   - Parameter maps are caller-owned and never pooled: recycling nils
//     the Params field (the poolfx analyzer enforces that every
//     reference-carrying field is cleared before Put) but the map itself
//     belongs to whoever raised the event.
//
// Safety rails: a generation counter increments at every recycle so
// use-after-put is observable (pool_test.go), and an extra Release on a
// recycled occurrence is detected by the reference count going negative —
// counted as an averted double put, or a panic in Strict mode (the mode
// the race tests run under).
package event

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// PoolStats is a snapshot of a pool's counters.
type PoolStats struct {
	// Gets counts occurrences handed out (primitive + composite).
	Gets uint64
	// Puts counts occurrences recycled into the pool.
	Puts uint64
	// Misses counts Gets served by a fresh allocation because the pool
	// was empty.  Unlike the other counters it is timing-dependent (the
	// runtime may drop pooled objects under GC pressure), so it is
	// reported but never part of a determinism comparison.
	Misses uint64
	// DoublePuts counts releases of an already-recycled occurrence that
	// were detected and averted (Strict pools panic instead).
	DoublePuts uint64
}

// Pool recycles Occurrence objects, their stamp component storage and
// their constituent lists.  It is safe for concurrent use: detect-stage
// workers retain, release and build composites in parallel.
type Pool struct {
	p sync.Pool
	// roster, when non-nil, lets pooled constructors intern stamp
	// components (Occurrence.Interned); without it pooled occurrences
	// carry string stamps only.
	roster *core.Roster
	// Strict makes a detected double put panic instead of being counted
	// and averted — the setting for tests hunting lifecycle bugs.
	Strict bool

	gets, puts, misses, doublePuts atomic.Uint64
}

// NewPool returns a pool whose constructors intern stamp sites against
// roster (which may be nil for a string-only pool).
func NewPool(roster *core.Roster) *Pool {
	return &Pool{roster: roster}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Gets:       p.gets.Load(),
		Puts:       p.puts.Load(),
		Misses:     p.misses.Load(),
		DoublePuts: p.doublePuts.Load(),
	}
}

// get pops a recycled occurrence or allocates a fresh one; either way the
// result carries the creator's reference.
//
//lint:allow hotalloc — the pool-miss fallback is the one allocation the pool exists to amortize; steady state never takes it
func (p *Pool) get() *Occurrence {
	p.gets.Add(1)
	if o, _ := p.p.Get().(*Occurrence); o != nil {
		o.freed = false
		o.refs.Store(1)
		return o
	}
	p.misses.Add(1)
	o := &Occurrence{pool: p}
	o.refs.Store(1)
	return o
}

// GetPrimitive is NewPrimitive from pooled storage: the singleton stamp
// lives in the occurrence's inline array, and when the pool has a roster
// and idx names the raising site, the interned singleton is filled from
// idx directly — no map lookup.  The caller owns params (see the package
// comment).
func (p *Pool) GetPrimitive(typ string, class Class, stamp core.Stamp, idx core.Site, params Params) *Occurrence {
	o := p.get()
	o.Type, o.Class, o.Site, o.Params = typ, class, stamp.Site, params
	o.stamp0[0] = stamp
	o.Stamp = o.stamp0[:1]
	if idx != core.NoSite {
		o.istamp0[0] = core.RStamp{Site: idx, Global: stamp.Global, Local: stamp.Local}
		o.Interned = o.istamp0[:1]
	}
	return o
}

// GetComposite is NewComposite from pooled storage: it retains every
// constituent, folds the Max-set timestamp (Definition 5.9) in the
// occurrence's reusable buffers, and — when every constituent carries an
// interned stamp — runs the fold integer-only and materializes the string
// form from the roster afterwards, producing byte-for-byte the stamp the
// string fold yields (TestRMaxIntoMatchesMax).  The constituent slice is
// copied, so callers may pass a stack-scoped argument list.
func (p *Pool) GetComposite(typ string, site core.SiteID, cs []*Occurrence) *Occurrence {
	if len(cs) == 0 {
		panic("event: composite occurrence with no constituents")
	}
	o := p.get()
	o.Type, o.Class, o.Site = typ, Composite, site
	buf := o.Constituents[:0]
	for _, c := range cs {
		c.Retain()
		buf = append(buf, c)
	}
	o.Constituents = buf

	interned := p.roster != nil
	for _, c := range cs {
		if len(c.Interned) == 0 {
			interned = false
			break
		}
	}
	if interned {
		acc := cs[0].Interned
		if len(cs) == 1 {
			acc = append(o.ibuf[:0], acc...)
			o.ibuf = acc
		} else {
			bufs := [2]core.RSetStamp{o.ibuf, o.ibuf2}
			k := 0
			for _, c := range cs[1:] {
				bufs[k] = core.RMaxInto(bufs[k][:0], acc, c.Interned)
				acc = bufs[k]
				k = 1 - k
			}
			o.ibuf, o.ibuf2 = bufs[0], bufs[1]
		}
		o.Interned = acc
		o.sbuf = p.roster.AppendStamps(o.sbuf[:0], acc)
		o.Stamp = o.sbuf
		return o
	}
	sacc := cs[0].Stamp
	if len(cs) == 1 {
		sacc = append(o.sbuf[:0], sacc...)
		o.sbuf = sacc
	} else {
		bufs := [2]core.SetStamp{o.sbuf, o.sbuf2}
		k := 0
		for _, c := range cs[1:] {
			bufs[k] = core.MaxInto(bufs[k][:0], sacc, c.Stamp)
			sacc = bufs[k]
			k = 1 - k
		}
		o.sbuf, o.sbuf2 = bufs[0], bufs[1]
	}
	o.Stamp = sacc
	return o
}

// Retain takes one reference on a pooled occurrence and returns it (for
// chaining in store-the-pointer handlers); on an ordinary heap-allocated
// occurrence (or nil) it is a no-op, which is what lets the engine run
// one ledger unconditionally whether pooling is on or off.
//
//sentinel:hotpath
func (o *Occurrence) Retain() *Occurrence {
	if o != nil && o.pool != nil {
		o.refs.Add(1)
	}
	return o
}

// Release drops one reference; the last one recycles the occurrence (and
// cascades into its constituents).  No-op on unpooled or nil occurrences.
//
//sentinel:hotpath
func (o *Occurrence) Release() {
	if o == nil || o.pool == nil {
		return
	}
	if n := o.refs.Add(-1); n == 0 {
		o.pool.put(o)
	} else if n < 0 {
		// A release after the recycling release: the object may already
		// be in (or out of!) the pool.  Undo, count, and in Strict mode
		// fail loudly.
		o.refs.Add(1)
		o.pool.doublePuts.Add(1)
		if o.pool.Strict {
			panic("event: Release of an already-recycled occurrence (double put)")
		}
	}
}

// Pooled reports whether o participates in a pool's lifecycle.
func (o *Occurrence) Pooled() bool { return o != nil && o.pool != nil }

// Gen returns the occurrence's recycle generation — it increments every
// time the object goes back to the pool, so a reader holding a stale
// pointer can detect use-after-put (pool_test.go).
func (o *Occurrence) Gen() uint32 { return o.gen }

// Refs returns the current reference count (diagnostic).
func (o *Occurrence) Refs() int32 { return o.refs.Load() }

// put recycles o: release the constituents, clear every reference-carrying
// field (Params is caller-owned and only dropped — see the package
// comment), bump the generation and return the storage to the pool.  The
// fold buffers and the constituent slice keep their capacity across
// generations; that reuse is the pool's entire point.
func (p *Pool) put(o *Occurrence) {
	if o.freed {
		// Unreachable through Release (the refcount goes negative first)
		// but kept as the last line of defense for direct misuse.
		p.doublePuts.Add(1)
		if p.Strict {
			panic("event: double put of a recycled occurrence")
		}
		return
	}
	o.freed = true
	o.gen++
	p.puts.Add(1)
	cs := o.Constituents
	for i, c := range cs {
		cs[i] = nil
		c.Release()
	}
	o.Constituents = cs[:0]
	o.Type = ""
	o.TypeID = 0
	o.Class = 0
	o.Site = ""
	o.Seq = 0
	o.Params = nil
	o.Stamp = nil
	o.Interned = nil
	o.Sample = SampleUndecided
	o.Mark = MarkNone
	o.MarkAt = 0
	o.stamp0[0] = core.Stamp{}
	o.istamp0[0] = core.RStamp{}
	o.sbuf = o.sbuf[:0]
	o.sbuf2 = o.sbuf2[:0]
	o.ibuf = o.ibuf[:0]
	o.ibuf2 = o.ibuf2[:0]
	p.p.Put(o)
}
