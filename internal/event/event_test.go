package event

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func stamp(site core.SiteID, local int64) core.Stamp {
	return core.DeriveStamp(site, local, 10)
}

func TestNewPrimitive(t *testing.T) {
	o := NewPrimitive("Deposit", Database, stamp("bank1", 123), Params{"amount": 40})
	if o.Type != "Deposit" || o.Class != Database || o.Site != "bank1" {
		t.Fatalf("primitive fields wrong: %s", o)
	}
	if len(o.Stamp) != 1 || o.Stamp[0].Local != 123 {
		t.Fatalf("primitive stamp must be a singleton: %s", o.Stamp)
	}
	if len(o.Constituents) != 0 {
		t.Fatalf("primitive has constituents")
	}
}

func TestNewCompositeStampIsMax(t *testing.T) {
	a := NewPrimitive("A", Explicit, stamp("s1", 10), nil)
	b := NewPrimitive("B", Explicit, stamp("s1", 30), nil)
	c := NewComposite("X", "s1", a, b)
	if c.Class != Composite || c.Site != "s1" {
		t.Fatalf("composite fields wrong: %s", c)
	}
	if len(c.Stamp) != 1 || c.Stamp[0].Local != 30 {
		t.Fatalf("composite stamp = %s, want the later constituent's", c.Stamp)
	}
}

func TestNewCompositeConcurrentConstituents(t *testing.T) {
	a := NewPrimitive("A", Explicit, stamp("s1", 100), nil)
	b := NewPrimitive("B", Explicit, stamp("s2", 105), nil)
	c := NewComposite("X", "s9", a, b)
	if len(c.Stamp) != 2 {
		t.Fatalf("concurrent constituents must both appear in the max-set: %s", c.Stamp)
	}
	if err := c.Stamp.Valid(); err != nil {
		t.Fatalf("composite stamp invalid: %v", err)
	}
}

func TestNewCompositePanicsWithoutConstituents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewComposite() must panic")
		}
	}()
	NewComposite("X", "s1")
}

func TestFlattenNested(t *testing.T) {
	a := NewPrimitive("A", Explicit, stamp("s1", 10), nil)
	b := NewPrimitive("B", Explicit, stamp("s1", 20), nil)
	c := NewPrimitive("C", Explicit, stamp("s1", 30), nil)
	inner := NewComposite("AB", "s1", a, b)
	outer := NewComposite("ABC", "s1", inner, c)
	flat := outer.Flatten()
	if len(flat) != 3 || flat[0] != a || flat[1] != b || flat[2] != c {
		t.Fatalf("Flatten order wrong: %v", flat)
	}
	if prim := a.Flatten(); len(prim) != 1 || prim[0] != a {
		t.Fatalf("Flatten of a primitive is itself")
	}
}

func TestOccurrenceString(t *testing.T) {
	o := NewPrimitive("Deposit", Database, stamp("bank1", 123), Params{"amount": 40})
	s := o.String()
	if !strings.Contains(s, "Deposit@bank1") || !strings.Contains(s, "amount=40") {
		t.Errorf("String = %q", s)
	}
	var nilOcc *Occurrence
	if nilOcc.String() != "<nil>" {
		t.Errorf("nil String = %q", nilOcc.String())
	}
}

func TestParamsCloneAndString(t *testing.T) {
	p := Params{"b": 2, "a": 1}
	q := p.Clone()
	q["a"] = 99
	if p["a"] != 1 {
		t.Errorf("Clone shares storage")
	}
	if got := p.String(); got != "{a=1, b=2}" {
		t.Errorf("Params.String = %q, want sorted keys", got)
	}
	if Params(nil).Clone() != nil {
		t.Errorf("Clone(nil) must be nil")
	}
	if (Params{}).String() != "{}" {
		t.Errorf("empty Params String wrong")
	}
}

func TestRegistryDeclareLookup(t *testing.T) {
	r := NewRegistry()
	typ, err := r.Declare("Deposit", Database)
	if err != nil || typ.Name != "Deposit" || typ.Class != Database {
		t.Fatalf("Declare = %v, %v", typ, err)
	}
	got, err := r.Lookup("Deposit")
	if err != nil || got != typ {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if !r.Has("Deposit") || r.Has("Nope") {
		t.Errorf("Has broken")
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	r.MustDeclare("E", Explicit)
	if _, err := r.Declare("E", Explicit); !errors.Is(err, ErrDuplicateType) {
		t.Errorf("duplicate Declare = %v", err)
	}
	if _, err := r.Declare("", Explicit); err == nil {
		t.Errorf("empty name must be rejected")
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrUnknownType) {
		t.Errorf("Lookup missing = %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.MustDeclare("zeta", Explicit)
	r.MustDeclare("alpha", Temporal)
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestMustDeclarePanics(t *testing.T) {
	r := NewRegistry()
	r.MustDeclare("E", Explicit)
	defer func() {
		if recover() == nil {
			t.Fatalf("MustDeclare duplicate must panic")
		}
	}()
	r.MustDeclare("E", Explicit)
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Temporal: "temporal", Database: "database", Transaction: "transaction",
		Explicit: "explicit", Composite: "composite",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class %d = %q, want %q", int(c), c.String(), s)
		}
	}
	if !strings.Contains(Class(9).String(), "9") {
		t.Errorf("unknown class String should include value")
	}
}
