package clock

import (
	"math/rand"
	"testing"
)

// Property tests for the clock model hypotheses the timestamp algebra
// depends on (Proposition 4.1 and Theorem 4.1 rely on them).

func randomSystem(t *testing.T, seed int64, sites int) *System {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := MustNewSystem(PaperConfig())
	for i := 0; i < sites; i++ {
		offset := r.Int63n(99) - 49 // within Π/2
		s.MustAddSite(string(rune('a'+i)), offset, r.Int63n(3))
	}
	return s
}

// Local ticks never decrease as reference time advances.
func TestLocalTickMonotone(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomSystem(t, seed, 4)
		for _, name := range s.Sites() {
			sc := s.Site(name)
			prev := sc.LocalTick(0)
			for ref := Microticks(1); ref < 50_000; ref += 13 {
				cur := sc.LocalTick(ref)
				if cur < prev {
					t.Fatalf("seed %d site %s: local tick decreased %d -> %d at ref %d",
						seed, name, prev, cur, ref)
				}
				prev = cur
			}
		}
	}
}

// Global ticks are monotone in local ticks (the Proposition 4.1 backbone).
func TestGlobalTickMonotoneInLocal(t *testing.T) {
	s := randomSystem(t, 3, 2)
	sc := s.Site("a")
	prev := sc.GlobalTick(-100)
	for l := int64(-99); l < 5_000; l++ {
		cur := sc.GlobalTick(l)
		if cur < prev {
			t.Fatalf("global tick decreased %d -> %d at local %d", prev, cur, l)
		}
		if cur > prev+1 {
			// With local granularity 10 and global 100, one local tick
			// advances global by at most... 10 locals per global: jumps
			// of more than one global per local tick are impossible.
			t.Fatalf("global tick jumped %d -> %d at local %d", prev, cur, l)
		}
		prev = cur
	}
}

// Simultaneous readings at any two synchronized sites stay within one
// global granule — the guarantee g_g > Π buys (Section 4.1).
func TestSimultaneousReadingsWithinOneGranuleProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomSystem(t, seed, 5)
		names := s.Sites()
		r := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 2_000; trial++ {
			ref := r.Int63n(1_000_000)
			a := s.Site(names[r.Intn(len(names))])
			b := s.Site(names[r.Intn(len(names))])
			ga := a.GlobalTick(a.LocalTick(ref))
			gb := b.GlobalTick(b.LocalTick(ref))
			d := ga - gb
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("seed %d ref %d: sites %s/%s globals differ by %d",
					seed, ref, a.Name(), b.Name(), d)
			}
		}
	}
}

// Drift within the checked horizon keeps precision; CheckPrecision agrees
// with a brute-force pairwise check.
func TestCheckPrecisionAgreesWithBruteForce(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	s.MustAddSite("x", 40, 200)
	s.MustAddSite("y", -40, 0)
	horizon := Microticks(80_000)
	err := s.CheckPrecision(horizon, 500)
	brute := func() bool {
		x, y := s.Site("x"), s.Site("y")
		for ref := Microticks(0); ref <= horizon; ref += 500 {
			dx, dy := x.Divergence(ref), y.Divergence(ref)
			if dx+dy > s.Config().Precision {
				return false
			}
		}
		return true
	}()
	if (err == nil) != brute {
		t.Fatalf("CheckPrecision=%v but brute force says ok=%v", err, brute)
	}
}
