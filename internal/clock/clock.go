// Package clock simulates the approximated global time base of Section 4.1
// of Yang & Chakravarthy (ICDE 1999).
//
// In a distributed system there is no global time in nature.  Each site has
// a local physical clock; local clocks are kept within a known precision Π
// of each other (as observed by a reference clock z with granularity g_z).
// A global notion of time is obtained by truncating each local clock to a
// coarser global granularity g_g with g_g > Π, so that two simultaneous
// events receive global timestamps at most one global tick apart.
//
// This package provides a deterministic simulation of that model.  All
// quantities are expressed in integer microticks, the granularity g_z of the
// reference clock (e.g. one microtick = 1ms of simulated time).  A SiteClock
// converts reference time into local clock ticks (granularity g, e.g. 10
// microticks = 1/100s) subject to a bounded offset and a bounded drift, and
// local ticks into global ticks (granularity g_g, e.g. 100 microticks =
// 1/10s) using a configurable TRUNC function (Definition 4.3).
//
// The simulation never reads the wall clock: time advances only when the
// test or application calls System.Advance, which makes every scenario in
// the paper — including adversarial clock skews — reproducible.
package clock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Microticks is a time quantity in units of the reference clock granularity
// g_z.  It is used both for instants (microticks since the simulation epoch)
// and durations.
type Microticks = int64

// TruncMode selects the TRUNC function of Definition 4.3.  The paper allows
// round, ceiling or floor "as long as it is consistent throughout the
// system"; from Section 4.1 on, the paper fixes TRUNC to integer division,
// which is TruncFloor for non-negative times.
type TruncMode int

const (
	// TruncFloor is integer division (the paper's default).
	TruncFloor TruncMode = iota
	// TruncRound rounds half away from zero.
	TruncRound
	// TruncCeil rounds up.
	TruncCeil
)

func (m TruncMode) String() string {
	switch m {
	case TruncFloor:
		return "floor"
	case TruncRound:
		return "round"
	case TruncCeil:
		return "ceil"
	default:
		return fmt.Sprintf("TruncMode(%d)", int(m))
	}
}

// Trunc truncates t to multiples of granularity g according to the mode.
// It panics if g <= 0.  Negative t is handled symmetrically so that the
// function is consistent over the whole time line.
func (m TruncMode) Trunc(t Microticks, g Microticks) int64 {
	if g <= 0 {
		//lint:allow hotalloc — panic message on a configuration bug; the formatting never runs on a valid granularity
		panic(fmt.Sprintf("clock: non-positive granularity %d", g))
	}
	switch m {
	case TruncFloor:
		return floorDiv(t, g)
	case TruncCeil:
		return ceilDiv(t, g)
	case TruncRound:
		if t >= 0 {
			return floorDiv(t+g/2, g)
		}
		return ceilDiv(t-g/2, g)
	default:
		//lint:allow hotalloc — panic message on a configuration bug; the formatting never runs on a valid mode
		panic(fmt.Sprintf("clock: unknown trunc mode %d", int(m)))
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Config describes a simulated time base.
type Config struct {
	// LocalGranularity is the local clock granularity g in microticks per
	// local tick (paper example: g = 1/100s = 10 microticks of 1ms).
	LocalGranularity Microticks
	// GlobalGranularity is g_g in microticks per global tick (paper
	// example: g_g = 1/10s = 100 microticks).  Must exceed Precision.
	GlobalGranularity Microticks
	// Precision is Π, the maximum offset between any two local clocks as
	// observed by the reference clock, in microticks (paper example:
	// Π < 1/10s).  The paper requires g_g > Π.
	Precision Microticks
	// Trunc selects the TRUNC function; the zero value is TruncFloor,
	// matching the paper.
	Trunc TruncMode
}

// Validate reports whether the configuration satisfies the constraints of
// Section 4.1.
func (c Config) Validate() error {
	if c.LocalGranularity <= 0 {
		return fmt.Errorf("clock: LocalGranularity must be positive, got %d", c.LocalGranularity)
	}
	if c.GlobalGranularity <= 0 {
		return fmt.Errorf("clock: GlobalGranularity must be positive, got %d", c.GlobalGranularity)
	}
	if c.Precision < 0 {
		return fmt.Errorf("clock: Precision must be non-negative, got %d", c.Precision)
	}
	if c.GlobalGranularity <= c.Precision {
		return fmt.Errorf("clock: need g_g > Π to bound simultaneous-event stamps (g_g=%d, Π=%d)",
			c.GlobalGranularity, c.Precision)
	}
	if c.GlobalGranularity < c.LocalGranularity {
		return fmt.Errorf("clock: global granularity %d must be no finer than local granularity %d",
			c.GlobalGranularity, c.LocalGranularity)
	}
	return nil
}

// PaperConfig returns the configuration of the worked example in Section
// 5.1: local clocks with granularity g = 1/100s, reference granularity
// g_z = 1/1000s, precision Π < 1/10s and global granularity g_g = 1/10s.
// One microtick is 1ms.
func PaperConfig() Config {
	return Config{
		LocalGranularity:  10,  // 1/100 s
		GlobalGranularity: 100, // 1/10 s
		Precision:         99,  // Π < g_g
		Trunc:             TruncFloor,
	}
}

// SiteClock is one site's local physical clock.  Its reading differs from
// the reference clock by a constant offset plus a linear drift; the System
// verifies that the total divergence stays within Π/2 of the reference (so
// that any two clocks stay within Π of each other) over a stated horizon.
type SiteClock struct {
	name     string
	offset   Microticks // initial offset from the reference clock
	driftPPM int64      // drift in parts per million of elapsed reference time
	cfg      Config
}

// Name returns the site name the clock belongs to.
func (sc *SiteClock) Name() string { return sc.name }

// Offset returns the clock's constant offset from the reference clock.
func (sc *SiteClock) Offset() Microticks { return sc.offset }

// DriftPPM returns the clock's drift rate in parts per million.
func (sc *SiteClock) DriftPPM() int64 { return sc.driftPPM }

// localTime returns the clock's raw reading (in microticks) at reference
// time ref.
func (sc *SiteClock) localTime(ref Microticks) Microticks {
	return ref + sc.offset + ref*sc.driftPPM/1_000_000
}

// LocalTick returns the local clock tick l_k (Definition 4.3's input) at
// reference time ref: the raw reading truncated to the local granularity.
func (sc *SiteClock) LocalTick(ref Microticks) int64 {
	return floorDiv(sc.localTime(ref), sc.cfg.LocalGranularity)
}

// GlobalTick implements Definition 4.3: the global time g_k(l_k) of a local
// clock tick is the tick's calendar time truncated to the global
// granularity g_g.
func (sc *SiteClock) GlobalTick(localTick int64) int64 {
	return sc.cfg.Trunc.Trunc(localTick*sc.cfg.LocalGranularity, sc.cfg.GlobalGranularity)
}

// Divergence returns |clock reading − reference| at reference time ref.
func (sc *SiteClock) Divergence(ref Microticks) Microticks {
	d := sc.localTime(ref) - ref
	if d < 0 {
		return -d
	}
	return d
}

// System is a deterministic simulated time base shared by a set of sites.
// It is safe for concurrent use.
type System struct {
	mu    sync.RWMutex
	cfg   Config
	now   Microticks
	sites map[string]*SiteClock
}

// NewSystem creates a time base with the given configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, sites: make(map[string]*SiteClock)}, nil
}

// MustNewSystem is NewSystem that panics on error, for tests and examples
// with known-good configurations.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// ErrDuplicateSite is returned by AddSite when the name is already taken.
var ErrDuplicateSite = errors.New("clock: duplicate site name")

// AddSite registers a site clock with a constant offset and a drift rate.
// The offset must keep the clock within Π/2 of the reference so that any
// pair of clocks stays within Π; drift tightens that budget over time and
// is checked by CheckPrecision for an explicit horizon.
func (s *System) AddSite(name string, offset Microticks, driftPPM int64) (*SiteClock, error) {
	if name == "" {
		return nil, errors.New("clock: empty site name")
	}
	half := s.cfg.Precision / 2
	if offset > half || offset < -half {
		return nil, fmt.Errorf("clock: site %q offset %d exceeds Π/2 = %d", name, offset, half)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sites[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSite, name)
	}
	sc := &SiteClock{name: name, offset: offset, driftPPM: driftPPM, cfg: s.cfg}
	s.sites[name] = sc
	return sc, nil
}

// MustAddSite is AddSite that panics on error.
func (s *System) MustAddSite(name string, offset Microticks, driftPPM int64) *SiteClock {
	sc, err := s.AddSite(name, offset, driftPPM)
	if err != nil {
		panic(err)
	}
	return sc
}

// Site returns the clock registered under name, or nil.
func (s *System) Site(name string) *SiteClock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sites[name]
}

// Sites returns the registered site names in sorted order.
func (s *System) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.sites))
	for n := range s.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Now returns the current reference time.
func (s *System) Now() Microticks {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the reference clock forward by d microticks and returns the
// new reference time.  Advancing by a negative duration panics: simulated
// time, like real time, is monotonic.
func (s *System) Advance(d Microticks) Microticks {
	if d < 0 {
		panic("clock: cannot advance time backwards")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now += d
	return s.now
}

// AdvanceTo moves the reference clock to the absolute time t, which must
// not precede the current time.
func (s *System) AdvanceTo(t Microticks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		panic(fmt.Sprintf("clock: AdvanceTo(%d) would move time backwards from %d", t, s.now))
	}
	s.now = t
}

// Reading is a site clock observation: the local tick and the derived
// global tick at some reference instant.
type Reading struct {
	Site   string
	Local  int64
	Global int64
}

// ReadSite observes the named site's clock at the current reference time.
func (s *System) ReadSite(name string) (Reading, error) {
	s.mu.RLock()
	sc := s.sites[name]
	now := s.now
	s.mu.RUnlock()
	if sc == nil {
		return Reading{}, fmt.Errorf("clock: unknown site %q", name)
	}
	local := sc.LocalTick(now)
	return Reading{Site: name, Local: local, Global: sc.GlobalTick(local)}, nil
}

// CheckPrecision verifies that every pair of site clocks stays within Π of
// each other at every multiple of step in [0, horizon].  It returns the
// first violation found, or nil.
func (s *System) CheckPrecision(horizon, step Microticks) error {
	if step <= 0 {
		return errors.New("clock: CheckPrecision step must be positive")
	}
	s.mu.RLock()
	clocks := make([]*SiteClock, 0, len(s.sites))
	for _, sc := range s.sites {
		clocks = append(clocks, sc)
	}
	s.mu.RUnlock()
	sort.Slice(clocks, func(i, j int) bool { return clocks[i].name < clocks[j].name })
	for t := Microticks(0); t <= horizon; t += step {
		for i := 0; i < len(clocks); i++ {
			for j := i + 1; j < len(clocks); j++ {
				a, b := clocks[i].localTime(t), clocks[j].localTime(t)
				d := a - b
				if d < 0 {
					d = -d
				}
				if d > s.cfg.Precision {
					return fmt.Errorf("clock: sites %q and %q diverge by %d > Π=%d at t=%d",
						clocks[i].name, clocks[j].name, d, s.cfg.Precision, t)
				}
			}
		}
	}
	return nil
}
