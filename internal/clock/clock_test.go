package clock

import (
	"errors"
	"strings"
	"testing"
)

func TestTruncModes(t *testing.T) {
	cases := []struct {
		mode TruncMode
		t, g Microticks
		want int64
	}{
		{TruncFloor, 91548289*10 + 5, 100, 9154828}, // within the paper's scale
		{TruncFloor, 99, 100, 0},
		{TruncFloor, 100, 100, 1},
		{TruncFloor, -1, 100, -1},
		{TruncFloor, -100, 100, -1},
		{TruncFloor, -101, 100, -2},
		{TruncCeil, 1, 100, 1},
		{TruncCeil, 100, 100, 1},
		{TruncCeil, -1, 100, 0},
		{TruncRound, 49, 100, 0},
		{TruncRound, 50, 100, 1},
		{TruncRound, -49, 100, 0},
		{TruncRound, -50, 100, -1},
	}
	for _, c := range cases {
		if got := c.mode.Trunc(c.t, c.g); got != c.want {
			t.Errorf("%s.Trunc(%d, %d) = %d, want %d", c.mode, c.t, c.g, got, c.want)
		}
	}
}

func TestTruncPanicsOnBadGranularity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Trunc with granularity 0 must panic")
		}
	}()
	TruncFloor.Trunc(1, 0)
}

func TestTruncModeString(t *testing.T) {
	if TruncFloor.String() != "floor" || TruncRound.String() != "round" || TruncCeil.String() != "ceil" {
		t.Errorf("TruncMode strings wrong")
	}
	if !strings.Contains(TruncMode(9).String(), "9") {
		t.Errorf("unknown mode String should include the value")
	}
}

func TestConfigValidate(t *testing.T) {
	good := PaperConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	bad := []Config{
		{LocalGranularity: 0, GlobalGranularity: 100, Precision: 10},
		{LocalGranularity: 10, GlobalGranularity: 0, Precision: 10},
		{LocalGranularity: 10, GlobalGranularity: 100, Precision: -1},
		{LocalGranularity: 10, GlobalGranularity: 100, Precision: 100}, // g_g must exceed Π
		{LocalGranularity: 200, GlobalGranularity: 100, Precision: 10}, // g_g finer than g
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatalf("NewSystem with zero config must fail")
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewSystem with bad config must panic")
		}
	}()
	MustNewSystem(Config{})
}

func TestAddSiteOffsetBounds(t *testing.T) {
	s := MustNewSystem(PaperConfig()) // Π = 99, so |offset| ≤ 49
	if _, err := s.AddSite("ok", 49, 0); err != nil {
		t.Errorf("offset at Π/2 should be accepted: %v", err)
	}
	if _, err := s.AddSite("toofar", 50, 0); err == nil {
		t.Errorf("offset beyond Π/2 must be rejected")
	}
	if _, err := s.AddSite("", 0, 0); err == nil {
		t.Errorf("empty site name must be rejected")
	}
	if _, err := s.AddSite("ok", 0, 0); !errors.Is(err, ErrDuplicateSite) {
		t.Errorf("duplicate site must return ErrDuplicateSite, got %v", err)
	}
}

func TestLocalAndGlobalTicks(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	k := s.MustAddSite("k", 0, 0)
	s.AdvanceTo(915482760) // 91548276 local ticks of 10 microticks
	local := k.LocalTick(s.Now())
	if local != 91548276 {
		t.Fatalf("local tick = %d, want 91548276", local)
	}
	if g := k.GlobalTick(local); g != 9154827 {
		t.Fatalf("global tick = %d, want 9154827", g)
	}
}

func TestOffsetShiftsReading(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	ahead := s.MustAddSite("ahead", 30, 0)
	behind := s.MustAddSite("behind", -30, 0)
	s.AdvanceTo(1000)
	if a, b := ahead.LocalTick(1000), behind.LocalTick(1000); a <= b {
		t.Errorf("ahead clock (%d) must read later than behind clock (%d)", a, b)
	}
}

func TestDriftAccumulates(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	fast := s.MustAddSite("fast", 0, 1000) // +1000 ppm
	if d0, d1 := fast.Divergence(0), fast.Divergence(10_000); d1 <= d0 {
		t.Errorf("drift must accumulate: divergence %d -> %d", d0, d1)
	}
}

func TestReadSite(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	s.MustAddSite("k", 0, 0)
	s.AdvanceTo(12345)
	r, err := s.ReadSite("k")
	if err != nil {
		t.Fatalf("ReadSite: %v", err)
	}
	if r.Site != "k" || r.Local != 1234 || r.Global != 123 {
		t.Errorf("Reading = %+v, want local 1234 global 123", r)
	}
	if _, err := s.ReadSite("nope"); err == nil {
		t.Errorf("ReadSite of unknown site must fail")
	}
}

func TestAdvanceMonotonic(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	if got := s.Advance(10); got != 10 {
		t.Fatalf("Advance returned %d, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("negative Advance must panic")
		}
	}()
	s.Advance(-1)
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	s.AdvanceTo(100)
	defer func() {
		if recover() == nil {
			t.Fatalf("AdvanceTo backwards must panic")
		}
	}()
	s.AdvanceTo(50)
}

func TestSitesSorted(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	s.MustAddSite("m", 0, 0)
	s.MustAddSite("k", 0, 0)
	s.MustAddSite("l", 0, 0)
	got := s.Sites()
	if len(got) != 3 || got[0] != "k" || got[1] != "l" || got[2] != "m" {
		t.Errorf("Sites = %v, want [k l m]", got)
	}
	if s.Site("k") == nil || s.Site("zz") != nil {
		t.Errorf("Site lookup broken")
	}
}

func TestCheckPrecisionDetectsDrifters(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	s.MustAddSite("good", 0, 0)
	s.MustAddSite("drifty", 0, 5000) // 5000 ppm: at t=100_000 diverges by 500 > Π
	if err := s.CheckPrecision(1_000, 100); err != nil {
		t.Errorf("short horizon should still be in sync: %v", err)
	}
	if err := s.CheckPrecision(100_000, 1_000); err == nil {
		t.Errorf("long horizon must detect the drifting clock")
	}
	if err := s.CheckPrecision(100, 0); err == nil {
		t.Errorf("non-positive step must be rejected")
	}
}

// Simultaneous events at synchronized sites receive global stamps at most
// one granule apart — the property g_g > Π exists to guarantee.
func TestSimultaneousEventsWithinOneGranule(t *testing.T) {
	s := MustNewSystem(PaperConfig())
	a := s.MustAddSite("a", 49, 0)
	b := s.MustAddSite("b", -49, 0)
	for ref := Microticks(0); ref < 100_000; ref += 7 {
		ga := a.GlobalTick(a.LocalTick(ref))
		gb := b.GlobalTick(b.LocalTick(ref))
		d := ga - gb
		if d < 0 {
			d = -d
		}
		if d > 1 {
			t.Fatalf("at ref %d globals %d and %d differ by more than one granule", ref, ga, gb)
		}
	}
}

func TestPaperConfigScale(t *testing.T) {
	c := PaperConfig()
	// 1 microtick = 1ms: local granularity 1/100s = 10 microticks, global
	// granularity 1/10s = 100 microticks, Π < g_g.
	if c.LocalGranularity != 10 || c.GlobalGranularity != 100 || c.Precision >= c.GlobalGranularity {
		t.Errorf("PaperConfig drifted from the Section 5.1 scale: %+v", c)
	}
}
