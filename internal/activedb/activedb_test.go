package activedb

import (
	"errors"
	"testing"

	"repro/internal/event"
)

// recordingSink captures raised events.
type recordingSink struct {
	types  []string
	params []event.Params
}

func (r *recordingSink) RaiseDB(typ string, class event.Class, params event.Params) {
	r.types = append(r.types, typ)
	r.params = append(r.params, params)
}

func newStore(t *testing.T) (*Store, *recordingSink) {
	t.Helper()
	sink := &recordingSink{}
	s := NewStore(sink)
	if err := s.DeclareClass("Stock"); err != nil {
		t.Fatal(err)
	}
	return s, sink
}

func TestInsertRaisesEvent(t *testing.T) {
	s, sink := newStore(t)
	tx := s.Begin()
	obj, err := tx.Insert("Stock", map[string]any{"symbol": "IBM", "price": 100})
	if err != nil {
		t.Fatal(err)
	}
	if obj.OID == 0 || obj.Attrs["symbol"] != "IBM" {
		t.Fatalf("inserted object wrong: %+v", obj)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"tx.begin", "Stock.insert", "tx.commit"}
	if len(sink.types) != len(want) {
		t.Fatalf("events = %v, want %v", sink.types, want)
	}
	for i := range want {
		if sink.types[i] != want[i] {
			t.Fatalf("events = %v, want %v", sink.types, want)
		}
	}
	if sink.params[1]["symbol"] != "IBM" || sink.params[1]["class"] != "Stock" {
		t.Errorf("insert params = %v", sink.params[1])
	}
}

func TestUpdateCarriesOldAndNew(t *testing.T) {
	s, sink := newStore(t)
	tx := s.Begin()
	obj, _ := tx.Insert("Stock", map[string]any{"price": 100})
	if err := tx.Update(obj.OID, map[string]any{"price": 120}); err != nil {
		t.Fatal(err)
	}
	last := sink.params[len(sink.params)-1]
	if last["old.price"] != 100 || last["price"] != 120 {
		t.Errorf("update params = %v", last)
	}
}

func TestDeleteAndRetrieve(t *testing.T) {
	s, sink := newStore(t)
	tx := s.Begin()
	obj, _ := tx.Insert("Stock", map[string]any{"price": 1})
	if _, err := tx.Retrieve(obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(obj.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Retrieve(obj.OID); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("retrieve after delete = %v", err)
	}
	found := false
	for _, typ := range sink.types {
		if typ == "Stock.retrieve" {
			found = true
		}
	}
	if !found {
		t.Errorf("no retrieve event raised: %v", sink.types)
	}
}

func TestAbortRollsBack(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	obj, _ := tx.Insert("Stock", map[string]any{"price": 100})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := s.Begin()
	if err := tx2.Update(obj.OID, map[string]any{"price": 999}); err != nil {
		t.Fatal(err)
	}
	inserted, _ := tx2.Insert("Stock", map[string]any{"price": 5})
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	tx3 := s.Begin()
	got, err := tx3.Retrieve(obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["price"] != 100 {
		t.Errorf("abort did not restore price: %v", got.Attrs)
	}
	if _, err := tx3.Retrieve(inserted.OID); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("abort did not remove inserted object: %v", err)
	}
}

func TestAbortRestoresMultipleUpdatesInOrder(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	obj, _ := tx.Insert("Stock", map[string]any{"price": 1})
	tx.Commit()

	tx2 := s.Begin()
	_ = tx2.Update(obj.OID, map[string]any{"price": 2})
	_ = tx2.Update(obj.OID, map[string]any{"price": 3})
	tx2.Abort()

	got := s.Select("Stock", nil)
	if len(got) != 1 || got[0].Attrs["price"] != 1 {
		t.Errorf("multi-update abort wrong: %v", got)
	}
}

func TestWriteConflictDetected(t *testing.T) {
	s, _ := newStore(t)
	setup := s.Begin()
	obj, _ := setup.Insert("Stock", map[string]any{"price": 1})
	setup.Commit()

	tx1 := s.Begin()
	tx2 := s.Begin()
	if err := tx1.Update(obj.OID, map[string]any{"price": 2}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(obj.OID, map[string]any{"price": 3}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("conflicting update = %v, want ErrWriteConflict", err)
	}
	tx1.Commit()
	// Lock released: tx2 can now write.
	if err := tx2.Update(obj.OID, map[string]any{"price": 3}); err != nil {
		t.Fatalf("update after release failed: %v", err)
	}
	tx2.Commit()
}

func TestFinishedTxUnusable(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	tx.Commit()
	if _, err := tx.Insert("Stock", nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("insert on committed tx = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit = %v", err)
	}
}

func TestUndeclaredClassRejected(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	if _, err := tx.Insert("Ghost", nil); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("insert into undeclared class = %v", err)
	}
}

func TestDeclareClassValidation(t *testing.T) {
	s, _ := newStore(t)
	if err := s.DeclareClass(""); err == nil {
		t.Errorf("empty class accepted")
	}
	if err := s.DeclareClass("Stock"); err == nil {
		t.Errorf("duplicate class accepted")
	}
	got := s.Classes()
	if len(got) != 1 || got[0] != "Stock" {
		t.Errorf("Classes = %v", got)
	}
}

func TestSelectFiltersAndSorts(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	for i := 1; i <= 5; i++ {
		if _, err := tx.Insert("Stock", map[string]any{"price": i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	got := s.Select("Stock", func(o *Object) bool { return o.Attrs["price"].(int) >= 30 })
	if len(got) != 3 {
		t.Fatalf("Select = %d objects, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].OID <= got[i-1].OID {
			t.Errorf("Select not OID-sorted: %v", got)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin()
	obj, _ := tx.Insert("Stock", map[string]any{"price": 1})
	tx.Commit()
	s.Select("Stock", nil)[0].Attrs["price"] = 999
	tx2 := s.Begin()
	got, _ := tx2.Retrieve(obj.OID)
	if got.Attrs["price"] != 1 {
		t.Errorf("Select leaked internal state")
	}
}

func TestEventTypeNames(t *testing.T) {
	types := EventTypes("Stock")
	want := []string{"Stock.insert", "Stock.update", "Stock.delete", "Stock.retrieve"}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("EventTypes = %v", types)
		}
	}
	txTypes := TxEventTypes()
	if len(txTypes) != 3 || txTypes[0] != "tx.begin" {
		t.Fatalf("TxEventTypes = %v", txTypes)
	}
}

func TestTxStateStrings(t *testing.T) {
	if TxActive.String() != "active" || TxCommitted.String() != "committed" || TxAborted.String() != "aborted" {
		t.Errorf("TxState strings wrong")
	}
	s, _ := newStore(t)
	tx := s.Begin()
	if tx.State() != TxActive {
		t.Errorf("fresh tx state = %v", tx.State())
	}
	tx.Abort()
	if tx.State() != TxAborted {
		t.Errorf("aborted tx state = %v", tx.State())
	}
}

func TestSinkFuncAdapter(t *testing.T) {
	var got string
	sink := SinkFunc(func(typ string, _ event.Class, _ event.Params) { got = typ })
	s := NewStore(sink)
	s.Begin()
	if got != "tx.begin" {
		t.Errorf("SinkFunc not invoked: %q", got)
	}
}
