// Package activedb is a minimal in-memory active object database — the
// Sentinel substrate the paper's event semantics lives in.  It stores
// typed objects, runs (single-writer) transactions, and raises the
// primitive event classes of Section 3.1 as data is manipulated:
//
//   - database events: insert, update, delete, retrieve — one per class
//     of object, named "<class>.<op>";
//   - transaction events: "tx.begin", "tx.commit", "tx.abort".
//
// Raised events carry the object identity, the affected attributes and
// the transaction id as parameters, and are stamped by the owning site's
// clock through the EventSink the store is constructed with — usually a
// ddetect.Site, making every database change visible to distributed
// composite event detection, which is exactly the ECA coupling the paper
// assumes.
package activedb

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/event"
)

// EventSink receives the primitive events the store raises.  Both
// *ddetect.Site (via the adapter in that package's examples) and plain
// functions can serve; the sink decides stamping and routing.
type EventSink interface {
	RaiseDB(typ string, class event.Class, params event.Params)
}

// SinkFunc adapts a function to EventSink.
type SinkFunc func(typ string, class event.Class, params event.Params)

// RaiseDB calls f.
func (f SinkFunc) RaiseDB(typ string, class event.Class, params event.Params) {
	f(typ, class, params)
}

// OID identifies an object in the store.
type OID uint64

// Object is a stored object: a class name plus attribute values.
type Object struct {
	OID   OID
	Class string
	Attrs map[string]any
}

func (o *Object) clone() *Object {
	attrs := make(map[string]any, len(o.Attrs))
	for k, v := range o.Attrs {
		attrs[k] = v
	}
	return &Object{OID: o.OID, Class: o.Class, Attrs: attrs}
}

// Op names a data-manipulation operation.
type Op string

// Data-manipulation operations that raise database events.
const (
	OpInsert   Op = "insert"
	OpUpdate   Op = "update"
	OpDelete   Op = "delete"
	OpRetrieve Op = "retrieve"
)

// EventName returns the primitive event type raised for an operation on a
// class, e.g. "Stock.update".
func EventName(class string, op Op) string {
	return class + "." + string(op)
}

// TxState is a transaction's lifecycle state.
type TxState int

// Transaction states.
const (
	TxActive TxState = iota
	TxCommitted
	TxAborted
)

func (s TxState) String() string {
	switch s {
	case TxActive:
		return "active"
	case TxCommitted:
		return "committed"
	case TxAborted:
		return "aborted"
	default:
		return fmt.Sprintf("TxState(%d)", int(s))
	}
}

// Errors returned by the store.
var (
	ErrNoSuchObject  = errors.New("activedb: no such object")
	ErrNoSuchClass   = errors.New("activedb: class not declared")
	ErrTxDone        = errors.New("activedb: transaction already finished")
	ErrWriteConflict = errors.New("activedb: object written by another active transaction")
)

// Store is an in-memory active object store.  It is single-threaded by
// design: the owning site drives it (and the simulated clock) from one
// goroutine, which is what makes runs reproducible.
type Store struct {
	sink    EventSink
	classes map[string]bool
	objects map[OID]*Object
	nextOID OID
	nextTx  uint64
	// writeLocks maps an OID to the transaction holding it.
	writeLocks map[OID]*Tx
	active     map[uint64]*Tx
}

// NewStore creates a store raising events into sink.
func NewStore(sink EventSink) *Store {
	return &Store{
		sink:       sink,
		classes:    make(map[string]bool),
		objects:    make(map[OID]*Object),
		nextOID:    1,
		writeLocks: make(map[OID]*Tx),
		active:     make(map[uint64]*Tx),
	}
}

// DeclareClass registers an object class.  The corresponding database
// event types (class.insert etc.) should be declared with the event
// registry by the caller; EventTypes lists them.
func (s *Store) DeclareClass(name string) error {
	if name == "" {
		return errors.New("activedb: empty class name")
	}
	if s.classes[name] {
		return fmt.Errorf("activedb: class %q already declared", name)
	}
	s.classes[name] = true
	return nil
}

// EventTypes returns the primitive event type names a class raises.
func EventTypes(class string) []string {
	return []string{
		EventName(class, OpInsert),
		EventName(class, OpUpdate),
		EventName(class, OpDelete),
		EventName(class, OpRetrieve),
	}
}

// TxEventTypes returns the transaction event type names.
func TxEventTypes() []string { return []string{"tx.begin", "tx.commit", "tx.abort"} }

// Classes returns declared class names in sorted order.
func (s *Store) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for c := range s.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// Tx is a single-writer transaction with pessimistic write locks and
// rollback on abort.
type Tx struct {
	ID    uint64
	store *Store
	state TxState
	// undo records pre-images (nil for inserts) in apply order.
	undo []undoRecord
}

type undoRecord struct {
	oid      OID
	preImage *Object // nil means the object did not exist
}

// Begin starts a transaction and raises tx.begin.
func (s *Store) Begin() *Tx {
	s.nextTx++
	tx := &Tx{ID: s.nextTx, store: s}
	s.active[tx.ID] = tx
	s.sink.RaiseDB("tx.begin", event.Transaction, event.Params{"tx": tx.ID})
	return tx
}

// State returns the transaction state.
func (tx *Tx) State() TxState { return tx.state }

func (tx *Tx) usable() error {
	if tx.state != TxActive {
		return fmt.Errorf("%w: tx %d is %s", ErrTxDone, tx.ID, tx.state)
	}
	return nil
}

// lock acquires the write lock on oid or fails with ErrWriteConflict.
func (tx *Tx) lock(oid OID) error {
	holder, locked := tx.store.writeLocks[oid]
	if locked && holder != tx {
		return fmt.Errorf("%w: oid %d held by tx %d", ErrWriteConflict, oid, holder.ID)
	}
	tx.store.writeLocks[oid] = tx
	return nil
}

// Insert creates an object and raises class.insert.
func (tx *Tx) Insert(class string, attrs map[string]any) (*Object, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	if !tx.store.classes[class] {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, class)
	}
	oid := tx.store.nextOID
	tx.store.nextOID++
	obj := &Object{OID: oid, Class: class, Attrs: map[string]any{}}
	for k, v := range attrs {
		obj.Attrs[k] = v
	}
	if err := tx.lock(oid); err != nil {
		return nil, err
	}
	tx.store.objects[oid] = obj
	tx.undo = append(tx.undo, undoRecord{oid: oid, preImage: nil})
	params := event.Params{"oid": oid, "class": class, "tx": tx.ID}
	for k, v := range obj.Attrs {
		params[k] = v
	}
	tx.store.sink.RaiseDB(EventName(class, OpInsert), event.Database, params)
	return obj.clone(), nil
}

// Update modifies attributes of an object and raises class.update with
// old and new values.
func (tx *Tx) Update(oid OID, attrs map[string]any) error {
	if err := tx.usable(); err != nil {
		return err
	}
	obj, ok := tx.store.objects[oid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchObject, oid)
	}
	if err := tx.lock(oid); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRecord{oid: oid, preImage: obj.clone()})
	params := event.Params{"oid": oid, "class": obj.Class, "tx": tx.ID}
	for k, v := range attrs {
		if old, had := obj.Attrs[k]; had {
			params["old."+k] = old
		}
		obj.Attrs[k] = v
		params[k] = v
	}
	tx.store.sink.RaiseDB(EventName(obj.Class, OpUpdate), event.Database, params)
	return nil
}

// Delete removes an object and raises class.delete.
func (tx *Tx) Delete(oid OID) error {
	if err := tx.usable(); err != nil {
		return err
	}
	obj, ok := tx.store.objects[oid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchObject, oid)
	}
	if err := tx.lock(oid); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRecord{oid: oid, preImage: obj.clone()})
	delete(tx.store.objects, oid)
	tx.store.sink.RaiseDB(EventName(obj.Class, OpDelete), event.Database,
		event.Params{"oid": oid, "class": obj.Class, "tx": tx.ID})
	return nil
}

// Retrieve reads an object (a copy) and raises class.retrieve.
func (tx *Tx) Retrieve(oid OID) (*Object, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	obj, ok := tx.store.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchObject, oid)
	}
	tx.store.sink.RaiseDB(EventName(obj.Class, OpRetrieve), event.Database,
		event.Params{"oid": oid, "class": obj.Class, "tx": tx.ID})
	return obj.clone(), nil
}

// Select returns copies of all objects of a class matching pred (pred nil
// matches all), without raising events (bulk scans are not "interesting
// occurrences" in Sentinel's sense).
func (s *Store) Select(class string, pred func(*Object) bool) []*Object {
	var out []*Object
	for _, obj := range s.objects {
		if obj.Class == class && (pred == nil || pred(obj)) {
			out = append(out, obj.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

// Commit finishes the transaction, releases its locks and raises
// tx.commit.
func (tx *Tx) Commit() error {
	if err := tx.usable(); err != nil {
		return err
	}
	tx.state = TxCommitted
	tx.release()
	tx.store.sink.RaiseDB("tx.commit", event.Transaction, event.Params{"tx": tx.ID})
	return nil
}

// Abort rolls the transaction back (restoring pre-images in reverse
// order), releases its locks and raises tx.abort.
func (tx *Tx) Abort() error {
	if err := tx.usable(); err != nil {
		return err
	}
	tx.state = TxAborted
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		if u.preImage == nil {
			delete(tx.store.objects, u.oid)
		} else {
			tx.store.objects[u.oid] = u.preImage
		}
	}
	tx.release()
	tx.store.sink.RaiseDB("tx.abort", event.Transaction, event.Params{"tx": tx.ID})
	return nil
}

func (tx *Tx) release() {
	delete(tx.store.active, tx.ID)
	for oid, holder := range tx.store.writeLocks {
		if holder == tx {
			delete(tx.store.writeLocks, oid)
		}
	}
}
