package rules

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
)

func newEngine(t *testing.T) (*detector.Detector, *Manager) {
	t.Helper()
	reg := event.NewRegistry()
	reg.MustDeclare("A", event.Explicit)
	reg.MustDeclare("B", event.Explicit)
	d := detector.New("s1", reg, nil)
	d.MustDefine("AB", "A ; B", detector.Chronicle)
	return d, NewManager(d, 0)
}

func occ(typ string, local int64) *event.Occurrence {
	return event.NewPrimitive(typ, event.Explicit, core.DeriveStamp("s1", local, 10),
		event.Params{"local": local})
}

func fireAB(d *detector.Detector, base int64) {
	d.Publish(occ("A", base))
	d.Publish(occ("B", base+10))
}

func TestImmediateRuleRuns(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	m.MustAdd(Rule{
		Name: "r1", EventName: "AB",
		Action: func(o *event.Occurrence) error { ran++; return nil },
	})
	fireAB(d, 10)
	if ran != 1 {
		t.Fatalf("action ran %d times, want 1", ran)
	}
	st := m.Stats()
	if st.Triggered != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConditionGatesAction(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	m.MustAdd(Rule{
		Name: "r1", EventName: "AB",
		Condition: func(o *event.Occurrence) bool {
			return o.Flatten()[0].Params["local"].(int64) > 50
		},
		Action: func(*event.Occurrence) error { ran++; return nil },
	})
	fireAB(d, 10) // condition false
	fireAB(d, 60) // condition true
	if ran != 1 {
		t.Fatalf("action ran %d times, want 1", ran)
	}
	if st := m.Stats(); st.ConditionFalse != 1 {
		t.Errorf("ConditionFalse = %d, want 1", st.ConditionFalse)
	}
}

func TestPriorityOrder(t *testing.T) {
	d, m := newEngine(t)
	var order []string
	add := func(name string, prio int) {
		m.MustAdd(Rule{
			Name: name, EventName: "AB", Priority: prio,
			Action: func(*event.Occurrence) error { order = append(order, name); return nil },
		})
	}
	add("low", 1)
	add("high", 10)
	add("mid2", 5)
	add("mid1", 5)
	fireAB(d, 10)
	want := []string{"high", "mid1", "mid2", "low"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeferredCoupling(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	m.MustAdd(Rule{
		Name: "r1", EventName: "AB", Coupling: Deferred,
		Action: func(*event.Occurrence) error { ran++; return nil },
	})
	fireAB(d, 10)
	if ran != 0 || m.PendingDeferred() != 1 {
		t.Fatalf("deferred ran early (ran=%d pending=%d)", ran, m.PendingDeferred())
	}
	if n := m.FlushDeferred(); n != 1 || ran != 1 {
		t.Fatalf("FlushDeferred = %d, ran = %d", n, ran)
	}
	if m.PendingDeferred() != 0 {
		t.Fatalf("queue not drained")
	}
}

func TestDetachedCoupling(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	m.MustAdd(Rule{
		Name: "r1", EventName: "AB", Coupling: Detached,
		Action: func(*event.Occurrence) error { ran++; return nil },
	})
	fireAB(d, 10)
	if ran != 0 || m.PendingDetached() != 1 {
		t.Fatalf("detached ran early")
	}
	if n := m.RunDetached(); n != 1 || ran != 1 {
		t.Fatalf("RunDetached = %d, ran = %d", n, ran)
	}
}

func TestDisableEnable(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	r := m.MustAdd(Rule{
		Name: "r1", EventName: "AB",
		Action: func(*event.Occurrence) error { ran++; return nil },
	})
	if !r.Enabled() {
		t.Fatalf("fresh rule must be enabled")
	}
	if err := m.Disable("r1"); err != nil {
		t.Fatal(err)
	}
	fireAB(d, 10)
	if ran != 0 {
		t.Fatalf("disabled rule ran")
	}
	if err := m.Enable("r1"); err != nil {
		t.Fatal(err)
	}
	fireAB(d, 100)
	if ran != 1 {
		t.Fatalf("re-enabled rule did not run")
	}
	if err := m.Disable("ghost"); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("Disable ghost = %v", err)
	}
}

func TestCascadeTriggersRules(t *testing.T) {
	// An action raises a primitive that triggers another rule.
	reg := event.NewRegistry()
	reg.MustDeclare("A", event.Explicit)
	reg.MustDeclare("B", event.Explicit)
	reg.MustDeclare("Alarm", event.Explicit)
	d := detector.New("s1", reg, nil)
	d.MustDefine("AB", "A ; B", detector.Chronicle)
	m := NewManager(d, 0)
	var log []string
	m.MustAdd(Rule{
		Name: "raise-alarm", EventName: "AB",
		Action: func(o *event.Occurrence) error {
			log = append(log, "raising")
			d.Publish(occ("Alarm", 99))
			return nil
		},
	})
	m.MustAdd(Rule{
		Name: "on-alarm", EventName: "Alarm",
		Action: func(*event.Occurrence) error { log = append(log, "alarm"); return nil },
	})
	fireAB(d, 10)
	if len(log) != 2 || log[0] != "raising" || log[1] != "alarm" {
		t.Fatalf("cascade log = %v", log)
	}
}

func TestCascadeLimit(t *testing.T) {
	reg := event.NewRegistry()
	reg.MustDeclare("Ping", event.Explicit)
	d := detector.New("s1", reg, nil)
	m := NewManager(d, 4)
	n := int64(0)
	m.MustAdd(Rule{
		Name: "loop", EventName: "Ping",
		Action: func(*event.Occurrence) error {
			n++
			d.Publish(occ("Ping", n))
			return nil
		},
	})
	d.Publish(occ("Ping", 0))
	if n != 4 {
		t.Fatalf("cascade ran %d times, want 4 (the limit)", n)
	}
	errs := m.Errs()
	if len(errs) != 1 || !errors.Is(errs[0], ErrCascadeLimit) {
		t.Fatalf("errs = %v, want one ErrCascadeLimit", errs)
	}
	if len(m.Errs()) != 0 {
		t.Fatalf("Errs must clear")
	}
}

func TestActionErrorsCollected(t *testing.T) {
	d, m := newEngine(t)
	m.MustAdd(Rule{
		Name: "r1", EventName: "AB",
		Action: func(*event.Occurrence) error { return fmt.Errorf("boom") },
	})
	fireAB(d, 10)
	errs := m.Errs()
	if len(errs) != 1 || errs[0] == nil {
		t.Fatalf("errs = %v", errs)
	}
	if st := m.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d", st.Errors)
	}
}

func TestAddValidation(t *testing.T) {
	_, m := newEngine(t)
	if _, err := m.Add(Rule{Name: "", EventName: "AB", Action: func(*event.Occurrence) error { return nil }}); err == nil {
		t.Errorf("empty name accepted")
	}
	if _, err := m.Add(Rule{Name: "x", EventName: "AB"}); err == nil {
		t.Errorf("nil action accepted")
	}
	m.MustAdd(Rule{Name: "x", EventName: "AB", Action: func(*event.Occurrence) error { return nil }})
	if _, err := m.Add(Rule{Name: "x", EventName: "AB", Action: func(*event.Occurrence) error { return nil }}); !errors.Is(err, ErrDuplicateRule) {
		t.Errorf("duplicate = %v", err)
	}
}

func TestRulesListingSorted(t *testing.T) {
	_, m := newEngine(t)
	noop := func(*event.Occurrence) error { return nil }
	m.MustAdd(Rule{Name: "zz", EventName: "AB", Action: noop})
	m.MustAdd(Rule{Name: "aa", EventName: "AB", Action: noop})
	rs := m.Rules()
	if len(rs) != 2 || rs[0].Name != "aa" || rs[1].Name != "zz" {
		t.Errorf("Rules = %v", rs)
	}
}

func TestRuleOnPrimitiveEvent(t *testing.T) {
	d, m := newEngine(t)
	ran := 0
	m.MustAdd(Rule{Name: "onA", EventName: "A",
		Action: func(*event.Occurrence) error { ran++; return nil }})
	d.Publish(occ("A", 5))
	if ran != 1 {
		t.Fatalf("primitive-event rule did not run")
	}
}

func TestCouplingStrings(t *testing.T) {
	if Immediate.String() != "immediate" || Deferred.String() != "deferred" || Detached.String() != "detached" {
		t.Errorf("Coupling strings wrong")
	}
	if Coupling(7).String() == "" {
		t.Errorf("unknown coupling String empty")
	}
}

func TestSubFuncAdapter(t *testing.T) {
	called := ""
	sub := SubFunc(func(name string, h detector.Handler) { called = name })
	m := NewManager(sub, 0)
	m.MustAdd(Rule{Name: "r", EventName: "E", Action: func(*event.Occurrence) error { return nil }})
	if called != "E" {
		t.Errorf("SubFunc not used: %q", called)
	}
}

func TestDeferredFlushRunsCascadedDeferred(t *testing.T) {
	d, m := newEngine(t)
	var log []string
	cascaded := false
	m.MustAdd(Rule{
		Name: "first", EventName: "AB", Coupling: Deferred,
		Action: func(o *event.Occurrence) error {
			log = append(log, "first")
			// Trigger the same rule set once more while flushing.
			if !cascaded {
				cascaded = true
				fireAB(d, 500)
			}
			return nil
		},
	})
	fireAB(d, 10)
	m.FlushDeferred()
	if len(log) != 2 {
		t.Fatalf("cascaded deferred actions = %v, want 2 entries", log)
	}
}
