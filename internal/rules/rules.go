// Package rules implements ECA (Event-Condition-Action) rule management
// over the composite event detector: when a named (composite or
// primitive) event is detected and the rule's condition holds on the
// occurrence, the action runs — the active-database capability the
// paper's event semantics exists to serve.
//
// Supported features, following Sentinel:
//
//   - priorities: rules triggered by the same occurrence run in
//     descending priority order (ties by name, for determinism);
//   - coupling modes: Immediate actions run synchronously inside the
//     triggering detection; Deferred actions queue until the application
//     flushes them (typically at transaction commit); Detached actions
//     queue for an independent execution step;
//   - enable/disable at runtime;
//   - cascade limiting: actions may raise further events and trigger more
//     rules; a configurable depth bound turns runaway recursion into an
//     error instead of a hang.
package rules

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/event"
)

// Coupling is an ECA coupling mode.
type Coupling int

const (
	// Immediate runs the action synchronously when the event fires.
	Immediate Coupling = iota
	// Deferred queues the action until FlushDeferred (end of the
	// triggering transaction, in Sentinel terms).
	Deferred
	// Detached queues the action for RunDetached (a separate
	// transaction).
	Detached
)

func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "immediate"
	case Deferred:
		return "deferred"
	case Detached:
		return "detached"
	default:
		return fmt.Sprintf("Coupling(%d)", int(c))
	}
}

// Condition decides whether a triggered rule fires.  A nil Condition is
// always true.
type Condition func(*event.Occurrence) bool

// Action is a rule body.  Errors are collected by the manager, not
// propagated into detection.
type Action func(*event.Occurrence) error

// Rule is one ECA rule.
type Rule struct {
	Name      string
	EventName string
	Condition Condition
	Action    Action
	Priority  int
	Coupling  Coupling

	enabled bool
}

// Enabled reports whether the rule currently fires.
func (r *Rule) Enabled() bool { return r.enabled }

// Subscriber is the slice of the detector API the manager needs
// (satisfied by *detector.Detector; wrap APIs that return errors, such as
// *ddetect.System, with SubFunc).
type Subscriber interface {
	Subscribe(name string, h detector.Handler)
}

// SubFunc adapts a function to Subscriber.
type SubFunc func(name string, h detector.Handler)

// Subscribe calls f.
func (f SubFunc) Subscribe(name string, h detector.Handler) { f(name, h) }

// Stats counts rule activity.
type Stats struct {
	Triggered      uint64 // rule evaluations started
	ConditionFalse uint64
	Executed       uint64
	Errors         uint64
	DeferredQueued uint64
	DetachedQueued uint64
}

// Manager owns a rule set bound to one detector.  Like the detector it is
// single-threaded by design.
type Manager struct {
	sub        Subscriber
	rules      map[string]*Rule
	byEvent    map[string][]*Rule
	subscribed map[string]bool

	deferred []pending
	detached []pending

	maxCascade int
	depth      int
	errs       []error
	stats      Stats
}

type pending struct {
	rule *Rule
	occ  *event.Occurrence
}

// NewManager creates a manager over the subscriber with the given cascade
// depth limit (≤0 means the default of 16).
func NewManager(sub Subscriber, maxCascade int) *Manager {
	if maxCascade <= 0 {
		maxCascade = 16
	}
	return &Manager{
		sub:        sub,
		rules:      make(map[string]*Rule),
		byEvent:    make(map[string][]*Rule),
		subscribed: make(map[string]bool),
		maxCascade: maxCascade,
	}
}

// Errors returned by the manager.
var (
	ErrDuplicateRule = errors.New("rules: duplicate rule name")
	ErrUnknownRule   = errors.New("rules: unknown rule")
	ErrCascadeLimit  = errors.New("rules: cascade depth limit exceeded")
)

// Add registers and enables a rule.
func (m *Manager) Add(r Rule) (*Rule, error) {
	if r.Name == "" || r.EventName == "" {
		return nil, errors.New("rules: rule needs a name and an event")
	}
	if r.Action == nil {
		return nil, fmt.Errorf("rules: rule %q has no action", r.Name)
	}
	if _, dup := m.rules[r.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateRule, r.Name)
	}
	rule := &Rule{
		Name: r.Name, EventName: r.EventName, Condition: r.Condition,
		Action: r.Action, Priority: r.Priority, Coupling: r.Coupling, enabled: true,
	}
	m.rules[rule.Name] = rule
	m.byEvent[rule.EventName] = insertByPriority(m.byEvent[rule.EventName], rule)
	if !m.subscribed[rule.EventName] {
		m.subscribed[rule.EventName] = true
		name := rule.EventName
		m.sub.Subscribe(name, func(o *event.Occurrence) { m.trigger(name, o) })
	}
	return rule, nil
}

// MustAdd is Add that panics on error.
func (m *Manager) MustAdd(r Rule) *Rule {
	rule, err := m.Add(r)
	if err != nil {
		panic(err)
	}
	return rule
}

// insertByPriority keeps descending priority, ties by ascending name.
func insertByPriority(rs []*Rule, r *Rule) []*Rule {
	rs = append(rs, r)
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Priority != rs[j].Priority {
			return rs[i].Priority > rs[j].Priority
		}
		return rs[i].Name < rs[j].Name
	})
	return rs
}

// Enable re-enables a rule.
func (m *Manager) Enable(name string) error { return m.setEnabled(name, true) }

// Disable stops a rule from firing (it stays registered).
func (m *Manager) Disable(name string) error { return m.setEnabled(name, false) }

func (m *Manager) setEnabled(name string, v bool) error {
	r, ok := m.rules[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	r.enabled = v
	return nil
}

// Rules returns all rules sorted by name.
func (m *Manager) Rules() []*Rule {
	out := make([]*Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Errs returns and clears the accumulated action errors.
func (m *Manager) Errs() []error {
	e := m.errs
	m.errs = nil
	return e
}

// trigger evaluates all rules bound to an event occurrence.
func (m *Manager) trigger(name string, o *event.Occurrence) {
	for _, r := range m.byEvent[name] {
		if !r.enabled {
			continue
		}
		m.stats.Triggered++
		if r.Condition != nil && !r.Condition(o) {
			m.stats.ConditionFalse++
			continue
		}
		switch r.Coupling {
		case Immediate:
			m.execute(r, o)
		case Deferred:
			m.deferred = append(m.deferred, pending{rule: r, occ: o})
			m.stats.DeferredQueued++
		case Detached:
			m.detached = append(m.detached, pending{rule: r, occ: o})
			m.stats.DetachedQueued++
		}
	}
}

// execute runs an action with cascade accounting.
func (m *Manager) execute(r *Rule, o *event.Occurrence) {
	if m.depth >= m.maxCascade {
		m.stats.Errors++
		m.errs = append(m.errs, fmt.Errorf("%w: rule %q at depth %d", ErrCascadeLimit, r.Name, m.depth))
		return
	}
	m.depth++
	defer func() { m.depth-- }()
	m.stats.Executed++
	if err := r.Action(o); err != nil {
		m.stats.Errors++
		m.errs = append(m.errs, fmt.Errorf("rules: rule %q: %w", r.Name, err))
	}
}

// FlushDeferred runs all queued deferred actions (in queue order) —
// Sentinel's end-of-transaction point.  Actions queued *while* flushing
// (cascades) run in the same flush.
func (m *Manager) FlushDeferred() int {
	n := 0
	for len(m.deferred) > 0 {
		p := m.deferred[0]
		m.deferred = m.deferred[1:]
		m.execute(p.rule, p.occ)
		n++
	}
	return n
}

// RunDetached runs all queued detached actions, each notionally its own
// transaction.
func (m *Manager) RunDetached() int {
	n := 0
	for len(m.detached) > 0 {
		p := m.detached[0]
		m.detached = m.detached[1:]
		m.execute(p.rule, p.occ)
		n++
	}
	return n
}

// PendingDeferred and PendingDetached report queue depths.
func (m *Manager) PendingDeferred() int { return len(m.deferred) }

// PendingDetached reports the detached queue depth.
func (m *Manager) PendingDetached() int { return len(m.detached) }
