package core
