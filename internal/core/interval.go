package core

import "fmt"

// This file implements the open and closed intervals of Definitions
// 4.9/4.10 (primitive timestamps) and 5.5/5.6 (composite timestamps),
// which the paper introduces because several Sentinel operators — NOT,
// the aperiodic A/A* and the periodic P/P* — are defined over the interval
// formed by an initiator and a terminator occurrence.

// InOpen reports membership in the open interval of Definition 4.9:
// t ∈ (a, b) iff a < t < b.  The interval is only sensibly formed when
// a < b; InOpen returns false otherwise, since no stamp can satisfy both
// bounds in that case.
func (t Stamp) InOpen(a, b Stamp) bool {
	return a.Less(t) && t.Less(b)
}

// InClosed reports membership in the closed interval of Definition 4.10:
// t ∈ [a, b] iff a ⪯ t ⪯ b.  The paper requires a ⪯ b for the interval to
// be well-formed; when that fails no stamp satisfies the definition anyway
// for stamps produced by synchronized clocks.
func (t Stamp) InClosed(a, b Stamp) bool {
	return a.WeakLE(t) && t.WeakLE(b)
}

// GlobalWindow is an inclusive range of global times, the paper's
// "intuitive" rendering of an interval on the global time line (Figure 1).
type GlobalWindow struct {
	Lo, Hi int64 // inclusive bounds, in g_g units
}

// Empty reports whether the window contains no global tick.
func (w GlobalWindow) Empty() bool { return w.Lo > w.Hi }

// Contains reports whether the global tick g falls inside the window.
func (w GlobalWindow) Contains(g int64) bool { return g >= w.Lo && g <= w.Hi }

// Width returns the number of global ticks in the window (0 if empty).
func (w GlobalWindow) Width() int64 {
	if w.Empty() {
		return 0
	}
	return w.Hi - w.Lo + 1
}

func (w GlobalWindow) String() string {
	if w.Empty() {
		return "∅"
	}
	return fmt.Sprintf("{%dg_g .. %dg_g}", w.Lo, w.Hi)
}

// OpenWindow returns the global-time rendering of the open interval
// (a, b) for stamps at *distinct* sites, as derived below Definition 4.9:
//
//	(a.global, b.global) = {a.global+2g_g, …, b.global−2g_g}
//
// because a cross-site stamp t with a < t < b needs a.global < t.global−1
// and t.global < b.global−1.  The interval is non-empty only when
// a.global < b.global − 3 (the paper's non-emptiness condition).
func OpenWindow(a, b Stamp) GlobalWindow {
	return GlobalWindow{Lo: a.Global + 2, Hi: b.Global - 2}
}

// ClosedWindow returns the global-time rendering of the closed interval
// [a, b] for stamps at distinct sites, as derived below Definition 4.10:
//
//	[a.global, b.global] = {a.global−1g_g, …, b.global+1g_g}
//
// non-empty when |a.global − b.global| ≤ 1 or a < b (i.e. a ⪯ b).
func ClosedWindow(a, b Stamp) GlobalWindow {
	return GlobalWindow{Lo: a.Global - 1, Hi: b.Global + 1}
}

// InOpenSet reports membership in the open interval of composite
// timestamps (Definition 5.5): T ∈ (A, B) iff A < T < B under the
// composite order.
func (s SetStamp) InOpenSet(a, b SetStamp) bool {
	return a.Less(s) && s.Less(b)
}

// InClosedSet reports membership in the closed interval of composite
// timestamps (Definition 5.6): T ∈ [A, B] iff A ⪯ T ⪯ B under the
// composite weaker-less-than-or-equal relation.
func (s SetStamp) InClosedSet(a, b SetStamp) bool {
	return a.WeakLE(s) && s.WeakLE(b)
}
