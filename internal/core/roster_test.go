package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRosterInternsSortedDeduped(t *testing.T) {
	r := NewRoster([]SiteID{"m", "k", "z", "k", "a", "m"})
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	want := []SiteID{"a", "k", "m", "z"}
	for i, id := range r.IDs() {
		if id != want[i] {
			t.Fatalf("IDs()[%d] = %q, want %q", i, id, want[i])
		}
		if r.ID(Site(i)) != id {
			t.Fatalf("ID(%d) = %q, want %q", i, r.ID(Site(i)), id)
		}
		if r.Site(id) != Site(i) || r.MustSite(id) != Site(i) {
			t.Fatalf("Site(%q) = %d, want %d", id, r.Site(id), i)
		}
	}
	if got := r.Site("nosuch"); got != NoSite {
		t.Fatalf("Site of unknown id = %d, want NoSite", got)
	}
}

func TestRosterIndexOrderIsCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		ids := make([]SiteID, n)
		for i := range ids {
			ids[i] = SiteID(fmt.Sprintf("s%03d", rng.Intn(60)))
		}
		r := NewRoster(ids)
		for i := 1; i < r.Len(); i++ {
			if !(r.ID(Site(i-1)) < r.ID(Site(i))) {
				t.Fatalf("roster not strictly ascending at %d: %q, %q",
					i, r.ID(Site(i-1)), r.ID(Site(i)))
			}
		}
	}
}

func TestRosterMustSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSite of unknown id did not panic")
		}
	}()
	NewRoster([]SiteID{"a"}).MustSite("b")
}

func TestRosterCanonRoundTrip(t *testing.T) {
	r := NewRoster([]SiteID{"a", "b", "c"})
	in := Stamp{Site: "b", Global: 7, Local: 71}
	rt, ok := r.Canon(in)
	if !ok {
		t.Fatal("Canon of member site reported not ok")
	}
	if back := r.Stamp(rt); back != in {
		t.Fatalf("round trip = %v, want %v", back, in)
	}
	if _, ok := r.Canon(Stamp{Site: "x"}); ok {
		t.Fatal("Canon of non-member site reported ok")
	}
}

// TestRStampRelationsMatchStamp is the differential pin for the tentpole:
// on arbitrary clock-shaped and adversarial stamps, the interned relations
// must agree with the string semantics of record, including inside the
// ±1-granule guard band where Less's two integer tests disagree.
func TestRStampRelationsMatchStamp(t *testing.T) {
	r := NewRoster([]SiteID{"k", "l", "m", "n", "o", "p", "q", "r"})
	rng := rand.New(rand.NewSource(62))
	randStamp := func() Stamp {
		// Globals clustered within a few granules of each other so the
		// guard band is hit constantly; locals sometimes derived,
		// sometimes adversarial.
		g := int64(100 + rng.Intn(5))
		l := g*10 + int64(rng.Intn(10))
		if rng.Intn(4) == 0 {
			l = int64(rng.Intn(2000))
		}
		return Stamp{Site: r.ID(Site(rng.Intn(r.Len()))), Global: g, Local: l}
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randStamp(), randStamp()
		ra, ok := r.Canon(a)
		if !ok {
			t.Fatalf("Canon(%v) not ok", a)
		}
		rb, _ := r.Canon(b)
		if got, want := ra.Less(rb), a.Less(b); got != want {
			t.Fatalf("RStamp.Less(%v, %v) = %v, Stamp.Less = %v", a, b, got, want)
		}
		if got, want := ra.Simultaneous(rb), a.Simultaneous(b); got != want {
			t.Fatalf("RStamp.Simultaneous(%v, %v) = %v, want %v", a, b, got, want)
		}
		if got, want := ra.Concurrent(rb), a.Concurrent(b); got != want {
			t.Fatalf("RStamp.Concurrent(%v, %v) = %v, want %v", a, b, got, want)
		}
		if got, want := CompareCanonicalR(ra, rb), CompareCanonical(a, b); got != want {
			t.Fatalf("CompareCanonicalR(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

func BenchmarkRStampLess(b *testing.B) {
	r := NewRoster([]SiteID{"site00", "site01", "site02", "site03"})
	rng := rand.New(rand.NewSource(63))
	const n = 1024
	stamps := make([]RStamp, n)
	for i := range stamps {
		g := int64(100 + rng.Intn(4))
		stamps[i] = RStamp{Site: Site(rng.Intn(r.Len())), Global: g, Local: g*10 + int64(rng.Intn(10))}
	}
	b.ReportAllocs()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = stamps[i%n].Less(stamps[(i+1)%n]) != sink
	}
	_ = sink
}
