package core

import (
	"fmt"
	"math/rand"
)

// This file implements the candidate composite-timestamp orderings that
// Section 5.1 analyses and rejects, plus tooling to demonstrate *why* the
// paper's ∀∃ order is the right choice: the ∃∃ candidate is not
// transitive, the ∀∀ and min-based candidates are valid but strictly more
// restricted (they relate fewer pairs), and the dual ∀∃ order <_g is the
// only other least-restricted choice.  cmd/ablation and cmd/counterexample
// drive these.

// OrderFunc is a candidate strict-order predicate on composite timestamps.
type OrderFunc func(a, b SetStamp) bool

// Ordering is a named candidate ordering with its paper classification.
type Ordering struct {
	// Name is the paper's notation for the ordering.
	Name string
	// Less is the ordering predicate.
	Less OrderFunc
	// Valid reports whether the paper classifies the ordering as a
	// well-defined strict partial order (irreflexive and transitive).
	Valid bool
	// LeastRestricted reports whether the paper classifies the ordering
	// as least restricted among the valid ones.
	LeastRestricted bool
	// Description explains the quantifier structure.
	Description string
}

// LessForallExists is the paper's chosen order <_p (Definition 5.3(2)):
// ∀t2∈B ∃t1∈A: t1 < t2.  Exported here under its analysis name; SetStamp.Less
// is the same predicate.
func LessForallExists(a, b SetStamp) bool { return a.Less(b) }

// LessExistsExists is <_p1: ∃t1∈A ∃t2∈B: t1 < t2.  Section 5.1 shows it is
// not transitive (the witness search below finds concrete violations), so
// it is not a valid ordering.
func LessExistsExists(a, b SetStamp) bool {
	for _, t1 := range a {
		for _, t2 := range b {
			if t1.Less(t2) {
				return true
			}
		}
	}
	return false
}

// LessForallForall is <_p2: ∀t1∈A ∀t2∈B: t1 < t2.  Valid but more
// restricted than <_p; the paper's example is A = {(site1,8,80),
// (site2,7,70)}, B = {(site3,9,90)}: A <_p B but not A <_p2 B.
func LessForallForall(a, b SetStamp) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for _, t1 := range a {
		for _, t2 := range b {
			if !t1.Less(t2) {
				return false
			}
		}
	}
	return true
}

// LessMinGlobal is <_p3: with m the component of A of minimum global time,
// A <_p3 B iff ∀t2∈B: m < t2.  Valid but more restricted than <_p; the
// paper's example is A = {(site1,8,80),(site2,7,70)},
// B = {(site1,8,81),(site2,7,71)}.
func LessMinGlobal(a, b SetStamp) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	m := a[0]
	for _, t := range a[1:] {
		if t.Global < m.Global {
			m = t
		}
	}
	for _, t2 := range b {
		if !m.Less(t2) {
			return false
		}
	}
	return true
}

// LessDual is <_g, the dual least-restricted order: ∀t1∈A ∃t2∈B: t1 < t2.
// The paper notes (<_p, >_g) and (<_g, >_p) are the two dual pairs
// satisfying all three requirements and picks <_p.
func LessDual(a, b SetStamp) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for _, t1 := range a {
		found := false
		for _, t2 := range b {
			if t1.Less(t2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// LessTenGranules is the deliberately over-restricted strawman of Section
// 5.1's requirement 3: ∀t1∈A ∀t2∈B: t1.global < t2.global − 10g_g.  Valid
// (irreflexive, transitive) but absurdly restricted.
func LessTenGranules(a, b SetStamp) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for _, t1 := range a {
		for _, t2 := range b {
			if !(t1.Global < t2.Global-10) {
				return false
			}
		}
	}
	return true
}

// Orderings returns all candidate orderings analysed in Section 5.1, the
// paper's choice first.
func Orderings() []Ordering {
	return []Ordering{
		{
			Name:            "<_p (chosen)",
			Less:            LessForallExists,
			Valid:           true,
			LeastRestricted: true,
			Description:     "∀t2∈B ∃t1∈A: t1<t2 — the paper's Definition 5.3(2)",
		},
		{
			Name:            "<_g (dual)",
			Less:            LessDual,
			Valid:           true,
			LeastRestricted: true,
			Description:     "∀t1∈A ∃t2∈B: t1<t2 — the other least-restricted choice",
		},
		{
			Name:            "<_p1 (∃∃)",
			Less:            LessExistsExists,
			Valid:           false,
			LeastRestricted: false,
			Description:     "∃t1∈A ∃t2∈B: t1<t2 — not transitive, hence invalid",
		},
		{
			Name:            "<_p2 (∀∀)",
			Less:            LessForallForall,
			Valid:           true,
			LeastRestricted: false,
			Description:     "∀t1∈A ∀t2∈B: t1<t2 — valid but more restricted than <_p",
		},
		{
			Name:            "<_p3 (min)",
			Less:            LessMinGlobal,
			Valid:           true,
			LeastRestricted: false,
			Description:     "min-global component of A before every component of B — valid but more restricted",
		},
		{
			Name:            "<_10g (strawman)",
			Less:            LessTenGranules,
			Valid:           true,
			LeastRestricted: false,
			Description:     "all pairs 10 granules apart — requirement 3's motivating strawman",
		},
	}
}

// Triple is a transitivity witness: A rel B, B rel C, but ¬(A rel C).
type Triple struct {
	A, B, C SetStamp
}

func (w Triple) String() string {
	return fmt.Sprintf("A=%s  B=%s  C=%s", w.A, w.B, w.C)
}

// FindNonTransitiveTriple searches random valid composite timestamps for a
// transitivity violation of ord: ord(A,B) ∧ ord(B,C) ∧ ¬ord(A,C).  It
// returns the first witness found within tries attempts, or nil.  gen
// produces one random valid composite timestamp per call.
func FindNonTransitiveTriple(ord OrderFunc, gen func() SetStamp, tries int) *Triple {
	for i := 0; i < tries; i++ {
		a, b, c := gen(), gen(), gen()
		if ord(a, b) && ord(b, c) && !ord(a, c) {
			return &Triple{A: a, B: b, C: c}
		}
	}
	return nil
}

// FindIrreflexivityViolation searches for A with ord(A, A).
func FindIrreflexivityViolation(ord OrderFunc, gen func() SetStamp, tries int) SetStamp {
	for i := 0; i < tries; i++ {
		if a := gen(); ord(a, a) {
			return a
		}
	}
	return nil
}

// ComparabilityRate estimates, by sampling, the fraction of random pairs of
// valid composite timestamps that the ordering relates in either direction.
// The paper's requirement 3 ("least restricted") is exactly the demand that
// this rate be maximal among valid orderings; cmd/ablation prints the rates
// side by side.
func ComparabilityRate(ord OrderFunc, gen func() SetStamp, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	n := 0
	for i := 0; i < samples; i++ {
		a, b := gen(), gen()
		if ord(a, b) || ord(b, a) {
			n++
		}
	}
	return float64(n) / float64(samples)
}

// Generator returns a deterministic random source of *valid* composite
// timestamps for property tests and ablation sweeps: it draws up to
// maxComponents primitive stamps from `sites` sites with local ticks in
// [0, horizon) at the given local-per-global ratio, and keeps their max
// set (which Theorem 5.1 makes mutually concurrent).  To produce sets
// with more than one component it concentrates the draws in a 2-granule
// band, where cross-site concurrency is common.
func Generator(r *rand.Rand, sites, maxComponents int, ratio, horizon int64) func() SetStamp {
	if sites < 1 || maxComponents < 1 || ratio < 1 || horizon < ratio*4 {
		panic("core: Generator called with degenerate parameters")
	}
	return func() SetStamp {
		n := 1 + r.Intn(maxComponents)
		base := r.Int63n(horizon - 2*ratio)
		stamps := make([]Stamp, 0, n)
		for i := 0; i < n; i++ {
			site := SiteID(fmt.Sprintf("site%d", r.Intn(sites)+1))
			local := base + r.Int63n(2*ratio)
			stamps = append(stamps, DeriveStamp(site, local, ratio))
		}
		return MaxSet(stamps)
	}
}

// GenStamp draws one random primitive stamp with the same conventions as
// Generator; used by primitive-level property tests.
func GenStamp(r *rand.Rand, sites int, ratio, horizon int64) Stamp {
	site := SiteID(fmt.Sprintf("site%d", r.Intn(sites)+1))
	return DeriveStamp(site, r.Int63n(horizon), ratio)
}
