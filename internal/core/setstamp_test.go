package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// qSet generates random *valid* composite timestamps (max-sets of stamps
// respecting the clock model), as the set-level theorems require.
type qSet SetStamp

func (qSet) Generate(r *rand.Rand, _ int) reflect.Value {
	gen := Generator(r, qSites, 4, qRatio, qHorizon)
	return reflect.ValueOf(qSet(gen()))
}

func mkSet(t *testing.T, stamps ...Stamp) SetStamp {
	t.Helper()
	s := NewSetStamp(stamps...)
	if err := s.Valid(); err != nil {
		t.Fatalf("mkSet produced invalid set: %v", err)
	}
	return s
}

func TestMaxSetKeepsOnlyMaxima(t *testing.T) {
	early := Stamp{Site: "a", Global: 1, Local: 10}
	late1 := Stamp{Site: "b", Global: 5, Local: 50}
	late2 := Stamp{Site: "c", Global: 6, Local: 60}
	got := MaxSet([]Stamp{early, late1, late2})
	want := SetStamp{late1, late2}
	if !got.Equal(want) {
		t.Errorf("MaxSet = %s, want %s", got, want)
	}
}

func TestMaxSetDeduplicates(t *testing.T) {
	s := Stamp{Site: "a", Global: 1, Local: 10}
	got := MaxSet([]Stamp{s, s, s})
	if len(got) != 1 {
		t.Errorf("MaxSet of identical stamps has %d components, want 1", len(got))
	}
}

func TestMaxSetEmpty(t *testing.T) {
	if got := MaxSet(nil); got != nil {
		t.Errorf("MaxSet(nil) = %v, want nil", got)
	}
}

// Theorem 5.1: the components of max(ST) are mutually concurrent.
func TestMaxSetMutuallyConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(8)
		stamps := make([]Stamp, n)
		for i := range stamps {
			stamps[i] = GenStamp(r, qSites, qRatio, qHorizon)
		}
		ms := MaxSet(stamps)
		if err := ms.Valid(); err != nil {
			t.Fatalf("trial %d: MaxSet(%s) invalid: %v", trial, FormatStamps(stamps), err)
		}
	}
}

func TestNewSetStampPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewSetStamp() must panic")
		}
	}()
	NewSetStamp()
}

func TestValidRejections(t *testing.T) {
	if err := (SetStamp{}).Valid(); err != ErrEmptySetStamp {
		t.Errorf("empty set Valid = %v, want ErrEmptySetStamp", err)
	}
	dup := Stamp{Site: "a", Global: 1, Local: 10}
	if err := (SetStamp{dup, dup}).Valid(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate components Valid = %v, want duplicate error", err)
	}
	unordered := SetStamp{{Site: "b", Global: 1, Local: 10}, {Site: "a", Global: 1, Local: 10}}
	if err := unordered.Valid(); err == nil || !strings.Contains(err.Error(), "ordered") {
		t.Errorf("unordered Valid = %v, want ordering error", err)
	}
	ordered := SetStamp{{Site: "a", Global: 1, Local: 10}, {Site: "b", Global: 9, Local: 90}}
	if err := ordered.Valid(); err == nil || !strings.Contains(err.Error(), "not concurrent") {
		t.Errorf("non-concurrent Valid = %v, want concurrency error", err)
	}
}

func TestSingleton(t *testing.T) {
	s := Stamp{Site: "a", Global: 1, Local: 10}
	set := Singleton(s)
	if len(set) != 1 || set[0] != s {
		t.Errorf("Singleton = %s", set)
	}
	if err := set.Valid(); err != nil {
		t.Errorf("Singleton invalid: %v", err)
	}
}

func TestSetLessBasic(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 1, Local: 10})
	b := mkSet(t, Stamp{Site: "y", Global: 5, Local: 50})
	if !a.Less(b) {
		t.Errorf("%s < %s expected", a, b)
	}
	if b.Less(a) {
		t.Errorf("%s < %s must not hold", b, a)
	}
	if a.Less(a) {
		t.Errorf("< must be irreflexive")
	}
}

func TestSetLessForallExistsShape(t *testing.T) {
	// The ∀∃ shape: every component of the right set must be preceded by
	// SOME component of the left set, not by all of them.
	a := mkSet(t,
		Stamp{Site: "s1", Global: 8, Local: 80},
		Stamp{Site: "s2", Global: 7, Local: 70},
	)
	b := mkSet(t, Stamp{Site: "s3", Global: 9, Local: 90})
	// (s2,7) < (s3,9) (gap 2) but (s1,8) is concurrent with (s3,9):
	if !a.Less(b) {
		t.Errorf("∀∃: %s < %s expected via the s2 component", a, b)
	}
	if LessForallForall(a, b) {
		t.Errorf("∀∀ must NOT relate %s and %s", a, b)
	}
}

func TestSetConcurrent(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 5, Local: 50})
	b := mkSet(t, Stamp{Site: "y", Global: 6, Local: 60})
	if !a.ConcurrentWith(b) {
		t.Errorf("%s ~ %s expected", a, b)
	}
	c := mkSet(t, Stamp{Site: "z", Global: 9, Local: 90})
	if a.ConcurrentWith(c) {
		t.Errorf("%s ~ %s must not hold", a, c)
	}
}

func TestSetIncomparable(t *testing.T) {
	// One component before, one after: neither <, >, nor ~.
	a := mkSet(t,
		Stamp{Site: "x", Global: 5, Local: 50},
		Stamp{Site: "y", Global: 6, Local: 60},
	)
	b := mkSet(t,
		Stamp{Site: "x", Global: 5, Local: 55}, // after a's x-component (same site)
		Stamp{Site: "y", Global: 5, Local: 55}, // before a's y-component (same site)
	)
	if !a.IncomparableWith(b) {
		t.Errorf("%s ≬ %s expected, got %s", a, b, a.Relate(b))
	}
}

// Theorem 5.2: the composite < is irreflexive and transitive.
func TestCompositeOrderStrictPartialIrreflexive(t *testing.T) {
	prop := func(a qSet) bool { return !SetStamp(a).Less(SetStamp(a)) }
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestCompositeOrderStrictPartialTransitive(t *testing.T) {
	prop := func(a, b, c qSet) bool {
		x, y, z := SetStamp(a), SetStamp(b), SetStamp(c)
		if x.Less(y) && y.Less(z) {
			return x.Less(z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Theorem 5.3 claims ⪯ ⇔ (~ or <) on composite timestamps.  Only the ⇐
// direction actually holds for the printed Definition 5.4 (∀∀ pairwise
// ⪯); TestWeakerLEEquivalenceConverseFails pins a counterexample to the ⇒
// direction.  This test verifies the sound direction on random data.
func TestWeakerLEEquivalence(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		if x.ConcurrentWith(y) || x.Less(y) {
			return x.WeakLE(y)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Reproduction finding: Theorem 5.3's ⇒ direction is false as printed.
// All component pairs below satisfy the primitive ⪯ (some strictly <,
// some ~), yet the sets are neither concurrent (a same-site pair is
// strictly ordered) nor happen-before (B's site1 component has no strict
// predecessor in A).  Found by random search; kept as a regression pin so
// the documented claim in EXPERIMENTS.md stays honest.
func TestWeakerLEEquivalenceConverseFails(t *testing.T) {
	a := mkSet(t, Stamp{Site: "site2", Global: 7, Local: 72}, Stamp{Site: "site3", Global: 7, Local: 75})
	b := mkSet(t, Stamp{Site: "site1", Global: 8, Local: 88}, Stamp{Site: "site2", Global: 8, Local: 82})
	if !a.WeakLE(b) {
		t.Fatalf("setup: %s ⪯ %s expected (all pairs ⪯)", a, b)
	}
	if a.Less(b) {
		t.Fatalf("setup: %s < %s must not hold", a, b)
	}
	if a.ConcurrentWith(b) {
		t.Fatalf("setup: %s ~ %s must not hold", a, b)
	}
}

// At most one of <, >, ~ holds for valid composite timestamps.
func TestCompositeRelationsMutuallyExclusive(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		n := 0
		if x.Less(y) {
			n++
		}
		if y.Less(x) {
			n++
		}
		if x.ConcurrentWith(y) {
			n++
		}
		return n <= 1
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinConcurrentIsUnion(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 5, Local: 50})
	b := mkSet(t, Stamp{Site: "y", Global: 6, Local: 60})
	j := JoinConcurrent(a, b)
	want := mkSet(t, a[0], b[0])
	if !j.Equal(want) {
		t.Errorf("JoinConcurrent = %s, want %s", j, want)
	}
}

func TestJoinConcurrentPanicsOnOrdered(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 1, Local: 10})
	b := mkSet(t, Stamp{Site: "y", Global: 9, Local: 90})
	defer func() {
		if recover() == nil {
			t.Fatalf("JoinConcurrent of ordered sets must panic")
		}
	}()
	JoinConcurrent(a, b)
}

func TestJoinIncomparableKeepsLatest(t *testing.T) {
	a := mkSet(t,
		Stamp{Site: "x", Global: 5, Local: 50},
		Stamp{Site: "y", Global: 6, Local: 60},
	)
	b := mkSet(t,
		Stamp{Site: "x", Global: 5, Local: 55},
		Stamp{Site: "y", Global: 5, Local: 55},
	)
	if !a.IncomparableWith(b) {
		t.Fatalf("setup: want incomparable")
	}
	j := JoinIncomparable(a, b)
	// (x,5,50) is dominated by (x,5,55); (y,5,55) is dominated by (y,6,60).
	want := mkSet(t, Stamp{Site: "x", Global: 5, Local: 55}, Stamp{Site: "y", Global: 6, Local: 60})
	if !j.Equal(want) {
		t.Errorf("JoinIncomparable = %s, want %s", j, want)
	}
	if err := j.Valid(); err != nil {
		t.Errorf("join result invalid: %v", err)
	}
}

func TestJoinIncomparablePanicsOnConcurrent(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 5, Local: 50})
	b := mkSet(t, Stamp{Site: "y", Global: 6, Local: 60})
	defer func() {
		if recover() == nil {
			t.Fatalf("JoinIncomparable of concurrent sets must panic")
		}
	}()
	JoinIncomparable(a, b)
}

// Theorem 5.4: Max(T1, T2) = max(T1 ∪ T2) and the result is a valid
// composite timestamp.
func TestMaxOperatorEqualsMaxOfUnion(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		got := Max(x, y)
		union := append(append([]Stamp{}, x...), y...)
		want := MaxSet(union)
		return got.Equal(want) && got.Valid() == nil
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestMaxComparableKeepsSurvivors(t *testing.T) {
	// The reproduction note on Definition 5.9: a < b, yet a component of
	// a survives because it is concurrent with everything in b.
	a := mkSet(t, Stamp{Site: "s1", Global: 5, Local: 50}, Stamp{Site: "s2", Global: 6, Local: 69})
	b := mkSet(t, Stamp{Site: "s3", Global: 7, Local: 75})
	if !a.Less(b) {
		t.Fatalf("setup: %s < %s expected", a, b)
	}
	got := Max(a, b)
	want := mkSet(t, Stamp{Site: "s2", Global: 6, Local: 69}, Stamp{Site: "s3", Global: 7, Local: 75})
	if !got.Equal(want) {
		t.Errorf("Max = %s, want %s (Theorem 5.4 form)", got, want)
	}
	// The literal Definition 5.9 would discard the surviving component:
	lit := MaxLiteral59(a, b)
	if !lit.Equal(b) {
		t.Errorf("MaxLiteral59 = %s, want %s", lit, b)
	}
	if lit.Equal(got) {
		t.Errorf("expected the printed definition and Theorem 5.4 to disagree on this input")
	}
}

func TestMaxWithEmpty(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 1, Local: 10})
	if got := Max(nil, a); !got.Equal(a) {
		t.Errorf("Max(nil, a) = %s, want %s", got, a)
	}
	if got := Max(a, nil); !got.Equal(a) {
		t.Errorf("Max(a, nil) = %s, want %s", got, a)
	}
}

// Max is associative and commutative (a consequence of the max-of-union
// form), so MaxAll is fold-order independent.
func TestMaxAssociativeCommutative(t *testing.T) {
	prop := func(a, b, c qSet) bool {
		x, y, z := SetStamp(a), SetStamp(b), SetStamp(c)
		if !Max(x, y).Equal(Max(y, x)) {
			return false
		}
		return Max(Max(x, y), z).Equal(Max(x, Max(y, z)))
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestMaxAll(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 1, Local: 10})
	b := mkSet(t, Stamp{Site: "y", Global: 5, Local: 50})
	c := mkSet(t, Stamp{Site: "z", Global: 6, Local: 60})
	got := MaxAll(a, b, c)
	want := mkSet(t, b[0], c[0])
	if !got.Equal(want) {
		t.Errorf("MaxAll = %s, want %s", got, want)
	}
	if got := MaxAll(); got != nil {
		t.Errorf("MaxAll() = %v, want nil", got)
	}
}

func TestSitesAndGlobals(t *testing.T) {
	s := mkSet(t, Stamp{Site: "x", Global: 5, Local: 50}, Stamp{Site: "y", Global: 6, Local: 60})
	sites := s.Sites()
	if len(sites) != 2 || sites[0] != "x" || sites[1] != "y" {
		t.Errorf("Sites = %v", sites)
	}
	if s.MaxGlobal() != 6 || s.MinGlobal() != 5 {
		t.Errorf("MaxGlobal/MinGlobal = %d/%d, want 6/5", s.MaxGlobal(), s.MinGlobal())
	}
}

func TestMaxGlobalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MaxGlobal of empty set must panic")
		}
	}()
	SetStamp{}.MaxGlobal()
}

func TestCloneIndependence(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 5, Local: 50})
	b := a.Clone()
	b[0].Local = 99
	if a[0].Local != 50 {
		t.Errorf("Clone shares backing array")
	}
	if SetStamp(nil).Clone() != nil {
		t.Errorf("Clone(nil) must be nil")
	}
}

func TestSetRelationString(t *testing.T) {
	cases := map[SetRelation]string{SetBefore: "<", SetAfter: ">", SetConcurrent: "~", SetIncomparable: "≬"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("SetRelation %d = %q, want %q", int(r), got, want)
		}
	}
}

func TestSetRelateClassifies(t *testing.T) {
	a := mkSet(t, Stamp{Site: "x", Global: 1, Local: 10})
	b := mkSet(t, Stamp{Site: "y", Global: 5, Local: 50})
	if a.Relate(b) != SetBefore || b.Relate(a) != SetAfter {
		t.Errorf("ordered sets misclassified: %s / %s", a.Relate(b), b.Relate(a))
	}
	c := mkSet(t, Stamp{Site: "z", Global: 1, Local: 11})
	if a.Relate(c) != SetConcurrent {
		t.Errorf("concurrent sets misclassified: %s", a.Relate(c))
	}
}
