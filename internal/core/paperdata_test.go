package core

import "testing"

// TestPaperSection51Example reproduces the worked example of Section 5.1
// exactly as published: five composite timestamps from sites k, l, m with
// g = 1/100s and g_g = 1/10s, with the reported relations
// T(e1) ≬ T(e2) ≬ T(e3), T(e4) ~ T(e3) and T(e3) < T(e5).
func TestPaperSection51Example(t *testing.T) {
	ts := PaperSection51Stamps()
	for i, s := range ts {
		if err := s.Valid(); err != nil {
			t.Fatalf("T(e%d) = %s is not a valid composite timestamp: %v", i+1, s, err)
		}
	}
	e1, e2, e3, e4, e5 := ts[0], ts[1], ts[2], ts[3], ts[4]

	if rel := e1.Relate(e2); rel != SetIncomparable {
		t.Errorf("T(e1) %s T(e2), want ≬", rel)
	}
	if rel := e2.Relate(e3); rel != SetIncomparable {
		t.Errorf("T(e2) %s T(e3), want ≬", rel)
	}
	if rel := e4.Relate(e3); rel != SetConcurrent {
		t.Errorf("T(e4) %s T(e3), want ~", rel)
	}
	if rel := e3.Relate(e5); rel != SetBefore {
		t.Errorf("T(e3) %s T(e5), want <", rel)
	}
}

// The Section 5.1 example's globals are consistent with its locals under
// the stated granularities (ratio 10 with floor TRUNC) — with one
// documented exception: T(e5)'s k component is published as
// (k, 9154829, 91548289) although floor(91548289/10) = 9154828.  The
// published global is not a harmless slip: the example's reported
// relation T(e3) < T(e5) holds only with global 9154829 (with 9154828 the
// k component has no strict predecessor in T(e3)).  We therefore keep the
// stamps verbatim and pin the discrepancy here (see EXPERIMENTS.md, EX51).
func TestPaperSection51StampsDerivable(t *testing.T) {
	exception := Stamp{Site: "k", Global: 9154829, Local: 91548289}
	sawException := false
	for i, s := range PaperSection51Stamps() {
		for _, comp := range s {
			derived := DeriveStamp(comp.Site, comp.Local, Paper51Ratio)
			if comp == exception {
				sawException = true
				if derived.Global != comp.Global-1 {
					t.Errorf("T(e5) exception drifted: derived %d, published %d", derived.Global, comp.Global)
				}
				continue
			}
			if derived.Global != comp.Global {
				t.Errorf("T(e%d) component %s: derived global %d differs", i+1, comp, derived.Global)
			}
		}
	}
	if !sawException {
		t.Errorf("expected to encounter the documented T(e5) exception")
	}
}

// With floor-derived globals (the paper's own TRUNC convention), the
// published relation T(e3) < T(e5) would NOT hold — evidence that the
// published T(e5) global is load-bearing, not a typo in our favor.
func TestPaperSection51DerivedBreaksE3E5(t *testing.T) {
	ts := PaperSection51Stamps()
	rederive := func(s SetStamp) SetStamp {
		out := make([]Stamp, len(s))
		for i, c := range s {
			out[i] = DeriveStamp(c.Site, c.Local, Paper51Ratio)
		}
		return MaxSet(out)
	}
	e3, e5 := rederive(ts[2]), rederive(ts[4])
	if e3.Less(e5) {
		t.Errorf("with floor-derived globals T(e3) < T(e5) unexpectedly holds: %s vs %s", e3, e5)
	}
}

// Figure 2's example stamp is a valid composite timestamp.
func TestPaperFigure2StampValid(t *testing.T) {
	s := PaperFigure2Stamp()
	if err := s.Valid(); err != nil {
		t.Fatalf("Figure 2 stamp %s invalid: %v", s, err)
	}
	if len(s) != 2 {
		t.Fatalf("Figure 2 stamp has %d components, want 2", len(s))
	}
}

// Figure 2 region checks: representative composite timestamps on each side
// of the published lines relate to T(e) = {(Site3,8,81),(Site6,7,72)} as
// the figure indicates.
func TestPaperFigure2Regions(t *testing.T) {
	e := PaperFigure2Stamp()

	// Well before Line1 (both components at least two granules before
	// every component of e... the ∀∃ order needs every component of e
	// preceded by something).
	before := NewSetStamp(Stamp{Site: "Site1", Global: 4, Local: 41})
	if rel := before.Relate(e); rel != SetBefore {
		t.Errorf("global 4 %s T(e), want < (region before Line1)", rel)
	}

	// Concurrent band: a stamp concurrent with both components
	// (globals 7 and 8 are each within one granule of {7,8}).
	mid := NewSetStamp(Stamp{Site: "Site1", Global: 7, Local: 75})
	if rel := mid.Relate(e); rel != SetConcurrent {
		t.Errorf("global 7 %s T(e), want ~ (between Line2 and Line3)", rel)
	}
	mid8 := NewSetStamp(Stamp{Site: "Site1", Global: 8, Local: 85})
	if rel := mid8.Relate(e); rel != SetConcurrent {
		t.Errorf("global 8 %s T(e), want ~", rel)
	}

	// After Line4: beyond both components by two granules.
	after := NewSetStamp(Stamp{Site: "Site1", Global: 10, Local: 105})
	if rel := after.Relate(e); rel != SetAfter {
		t.Errorf("global 10 %s T(e), want >", rel)
	}

	// ⪯ region: everything before Line3 satisfies T(e1) ⪯ T(e), which
	// includes both the < region and the ~ band.
	for _, s := range []SetStamp{before, mid, mid8} {
		if !s.WeakLE(e) {
			t.Errorf("%s ⪯ T(e) expected", s)
		}
	}
	if after.WeakLE(e) {
		t.Errorf("%s ⪯ T(e) must not hold", after)
	}

	// A stamp straddling the lines is incomparable: one component before,
	// one after.
	straddle := NewSetStamp(
		Stamp{Site: "Site3", Global: 8, Local: 82}, // after e's Site3 component (same site)
		Stamp{Site: "Site6", Global: 7, Local: 71}, // before e's Site6 component (same site)
	)
	if rel := straddle.Relate(e); rel != SetIncomparable {
		t.Errorf("straddling stamp %s T(e), want ≬", rel)
	}
}

// The counterexample stamps against [10] are reproduced verbatim; the
// published T(e1) is not internally concurrent (see the function comment),
// which this test documents.
func TestPaperCounterexampleStampsVerbatim(t *testing.T) {
	ts := PaperCounterexampleStamps()
	if err := ts[0].Valid(); err == nil {
		t.Errorf("published T(e1) unexpectedly satisfies Definition 5.2; the fidelity note is stale")
	}
	if err := ts[1].Valid(); err != nil {
		t.Errorf("published T(e2) should be valid: %v", err)
	}
	if err := ts[2].Valid(); err != nil {
		t.Errorf("published T(e3) should be valid: %v", err)
	}
	// Our ∀∃ order is transitive on these stamps: verify directly on all
	// orderings of the triple.
	for _, x := range ts {
		for _, y := range ts {
			for _, z := range ts {
				if x.Less(y) && y.Less(z) && !x.Less(z) {
					t.Errorf("<_p transitivity violated on published stamps: %s, %s, %s", x, y, z)
				}
			}
		}
	}
}

func TestProp42CounterexampleGlobalsShape(t *testing.T) {
	t1, t2, t3 := Prop42CounterexampleGlobals()
	if t1.Global != 1 || t2.Global != 2 || t3.Global != 3 {
		t.Fatalf("counterexample globals must be 1,2,3; got %d,%d,%d", t1.Global, t2.Global, t3.Global)
	}
	if t1.Site == t2.Site || t2.Site == t3.Site || t1.Site == t3.Site {
		t.Fatalf("counterexample stamps must be at distinct sites")
	}
}
