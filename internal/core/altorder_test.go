package core

import (
	"math/rand"
	"testing"
)

// The paper's example showing <_p2 (∀∀) is more restricted than <_p.
func TestAltOrderPaperExampleP2(t *testing.T) {
	a, b := PaperAltOrderExampleP2()
	if !LessForallExists(a, b) {
		t.Fatalf("paper example: %s <_p %s expected", a, b)
	}
	if LessForallForall(a, b) {
		t.Fatalf("paper example: %s <_p2 %s must NOT hold", a, b)
	}
}

// The paper's example showing <_p3 (min-based) is more restricted than <_p.
func TestAltOrderPaperExampleP3(t *testing.T) {
	a, b := PaperAltOrderExampleP3()
	if !LessForallExists(a, b) {
		t.Fatalf("paper example: %s <_p %s expected", a, b)
	}
	if LessMinGlobal(a, b) {
		t.Fatalf("paper example: %s <_p3 %s must NOT hold", a, b)
	}
}

// <_p1 (∃∃) is not transitive: the random search must find a witness.
func TestExistsExistsNotTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	gen := Generator(r, qSites, 4, qRatio, qHorizon)
	w := FindNonTransitiveTriple(LessExistsExists, gen, 200000)
	if w == nil {
		t.Fatalf("no non-transitivity witness found for <_p1; it should be easy to find")
	}
	// Double-check the witness.
	if !LessExistsExists(w.A, w.B) || !LessExistsExists(w.B, w.C) || LessExistsExists(w.A, w.C) {
		t.Fatalf("reported witness does not violate transitivity: %s", w)
	}
}

// Every ordering the paper calls valid must have no transitivity or
// irreflexivity violation on a large random sample.
func TestValidOrderingsAreStrictPartialOrders(t *testing.T) {
	for _, ord := range Orderings() {
		if !ord.Valid {
			continue
		}
		ord := ord
		t.Run(ord.Name, func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			gen := Generator(r, qSites, 4, qRatio, qHorizon)
			if w := FindNonTransitiveTriple(ord.Less, gen, 100000); w != nil {
				t.Errorf("%s: transitivity violated: %s", ord.Name, w)
			}
			if a := FindIrreflexivityViolation(ord.Less, gen, 20000); a != nil {
				t.Errorf("%s: irreflexivity violated by %s", ord.Name, a)
			}
		})
	}
}

// Requirement 3 ("least restricted"): <_p relates every pair the more
// restricted valid orderings relate — i.e. <_p2, <_p3 and the 10-granule
// strawman are subsets of <_p.
func TestChosenOrderSupersetOfRestrictedOnes(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	gen := Generator(r, qSites, 4, qRatio, qHorizon)
	restricted := []struct {
		name string
		less OrderFunc
	}{
		{"<_p2", LessForallForall},
		{"<_p3", LessMinGlobal},
		{"<_10g", LessTenGranules},
	}
	for i := 0; i < 50000; i++ {
		a, b := gen(), gen()
		for _, o := range restricted {
			if o.less(a, b) && !LessForallExists(a, b) {
				t.Fatalf("%s relates %s and %s but <_p does not", o.name, a, b)
			}
		}
	}
}

// The comparability-rate ablation: <_p must relate at least as many random
// pairs as each valid restricted ordering, and strictly more overall.
func TestComparabilityRateOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	gen := Generator(r, qSites, 4, qRatio, qHorizon)
	samples := 20000
	rateP := ComparabilityRate(LessForallExists, gen, samples)
	rateP2 := ComparabilityRate(LessForallForall, gen, samples)
	rateP3 := ComparabilityRate(LessMinGlobal, gen, samples)
	rate10 := ComparabilityRate(LessTenGranules, gen, samples)
	if rateP <= rateP2 || rateP <= rate10 {
		t.Errorf("comparability rates: <_p=%.4f must exceed <_p2=%.4f and <_10g=%.4f", rateP, rateP2, rate10)
	}
	if rateP < rateP3 {
		t.Errorf("comparability rates: <_p=%.4f must be at least <_p3=%.4f", rateP, rateP3)
	}
	if rateP == 0 {
		t.Errorf("degenerate sample: <_p relates nothing")
	}
}

func TestComparabilityRateDegenerate(t *testing.T) {
	if got := ComparabilityRate(LessForallExists, nil, 0); got != 0 {
		t.Errorf("ComparabilityRate with no samples = %v, want 0", got)
	}
}

func TestOrderingsMetadata(t *testing.T) {
	ords := Orderings()
	if len(ords) != 6 {
		t.Fatalf("expected 6 candidate orderings, got %d", len(ords))
	}
	if !ords[0].LeastRestricted || ords[0].Name != "<_p (chosen)" {
		t.Errorf("first ordering must be the paper's choice, got %+v", ords[0])
	}
	validCount := 0
	for _, o := range ords {
		if o.Less == nil || o.Name == "" || o.Description == "" {
			t.Errorf("incomplete ordering metadata: %+v", o)
		}
		if o.Valid {
			validCount++
		}
	}
	if validCount != 5 {
		t.Errorf("expected 5 valid orderings (only ∃∃ invalid), got %d", validCount)
	}
}

func TestGeneratorProducesValidSets(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	gen := Generator(r, 3, 5, 10, 1000)
	multi := false
	for i := 0; i < 2000; i++ {
		s := gen()
		if err := s.Valid(); err != nil {
			t.Fatalf("generated invalid set: %v", err)
		}
		if len(s) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("generator never produced a multi-component set; ablations would be vacuous")
	}
}

func TestGeneratorPanicsOnDegenerateParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Generator with zero sites must panic")
		}
	}()
	Generator(rand.New(rand.NewSource(1)), 0, 1, 10, 1000)
}

func TestFindNonTransitiveTripleNilOnValidOrder(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	gen := Generator(r, qSites, 3, qRatio, qHorizon)
	if w := FindNonTransitiveTriple(LessForallExists, gen, 5000); w != nil {
		t.Fatalf("the chosen order must have no witness, got %s", w)
	}
}
