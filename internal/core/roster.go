package core

import (
	"fmt"
	"sort"
)

// Site is a dense roster index for a SiteID: sites are interned once, at
// topology seal, into 0..n-1 in canonical (sorted SiteID) order.  All hot
// per-site state downstream — frontiers, reorder sources, link tables,
// trace tracks — is indexed by Site instead of being keyed by the string
// SiteID, so the per-event cost of identifying a site drops from a string
// hash or compare to an integer.
//
// The interning order is the load-bearing part: because index order equals
// canonical SiteID order, comparing two Site values with < is exactly the
// string comparison CompareCanonical would have performed, and iterating
// 0..n-1 visits sites in the same order every deterministic export path
// already uses.
type Site int32

// NoSite is the sentinel for "no such site" (unknown ID, unset field).
const NoSite Site = -1

// Roster is the sealed site membership of a run: an immutable bijection
// between SiteID strings and dense Site indexes.  Build it once with
// NewRoster when the topology is final; it is never mutated afterwards,
// so concurrent readers need no locking.
type Roster struct {
	ids []SiteID        // index → ID, sorted ascending
	idx map[SiteID]Site // ID → index
}

// NewRoster interns the given site IDs.  Input order is irrelevant: the
// roster sorts and dedupes, so equal memberships always produce equal
// rosters (and therefore equal wire frames and trace track orders).
func NewRoster(ids []SiteID) *Roster {
	sorted := make([]SiteID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w := 0
	for i, id := range sorted {
		if i == 0 || id != sorted[w-1] {
			sorted[w] = id
			w++
		}
	}
	sorted = sorted[:w]
	idx := make(map[SiteID]Site, len(sorted))
	for i, id := range sorted {
		idx[id] = Site(i)
	}
	return &Roster{ids: sorted, idx: idx}
}

// Len returns the number of sites.
func (r *Roster) Len() int { return len(r.ids) }

// ID returns the SiteID at index s.  It panics on an out-of-range index —
// indexes only come from this roster, so a bad one is a programming error,
// not an input error.
func (r *Roster) ID(s Site) SiteID { return r.ids[s] }

// Site returns the dense index of id, or NoSite if id is not a member.
func (r *Roster) Site(id SiteID) Site {
	if s, ok := r.idx[id]; ok {
		return s
	}
	return NoSite
}

// MustSite is Site for callers that have already validated membership; it
// panics on an unknown ID.
func (r *Roster) MustSite(id SiteID) Site {
	s, ok := r.idx[id]
	if !ok {
		//lint:allow hotalloc — panic message on a membership bug the caller promised away; the formatting never runs on a valid ID
		panic(fmt.Sprintf("core: site %q not in roster", id))
	}
	return s
}

// IDs returns the membership in canonical order.  The slice is the
// roster's own backing store — callers must not mutate it.
func (r *Roster) IDs() []SiteID { return r.ids }

// Canon interns a stamp: the dense-index form of t, or ok=false when
// t.Site is not a roster member.
func (r *Roster) Canon(t Stamp) (RStamp, bool) {
	s, ok := r.idx[t.Site]
	if !ok {
		return RStamp{Site: NoSite}, false
	}
	return RStamp{Site: s, Global: t.Global, Local: t.Local}, true
}

// Stamp is the inverse of Canon: the string form of an interned stamp.
func (r *Roster) Stamp(t RStamp) Stamp {
	return Stamp{Site: r.ids[t.Site], Global: t.Global, Local: t.Local}
}

// RStamp is a primitive timestamp with its site interned to a roster
// index: the same (site, global, local) triple as Stamp, identical
// temporal relations, no string in sight.  The string Stamp stays the
// semantics of record (reference.go and the differential property tests
// pin the relations); RStamp exists so the per-event hot paths — release
// keys, reorder heaps, frontier vectors — compare three integers instead
// of hashing or comparing a string.
type RStamp struct {
	Site   Site
	Global int64
	Local  int64
}

// Less is Stamp.Less on interned stamps (Definition 4.7 with the
// one-granule guard band).  The branch structure mirrors the string
// version exactly; only the same-site test changes representation, and
// roster interning is injective, so t.Site == u.Site iff the string IDs
// are equal.  TestRStampRelationsMatchStamp pins the equivalence on
// arbitrary inputs.
func (t RStamp) Less(u RStamp) bool {
	cross := t.Global < u.Global-1
	local := t.Local < u.Local
	if cross == local {
		return cross
	}
	if t.Site == u.Site {
		return local
	}
	return cross
}

// Simultaneous is Stamp.Simultaneous on interned stamps: same site, same
// local tick.
func (t RStamp) Simultaneous(u RStamp) bool {
	return t.Site == u.Site && t.Local == u.Local
}

// Concurrent is Stamp.Concurrent on interned stamps: neither happens
// before the other.
func (t RStamp) Concurrent(u RStamp) bool {
	return !t.Less(u) && !u.Less(t)
}

// WeakLE is Stamp.WeakLE ("⪯", Definition 4.8) on interned stamps.
func (t RStamp) WeakLE(u RStamp) bool {
	return t.Less(u) || t.Concurrent(u)
}

// CompareCanonicalR is CompareCanonical on interned stamps.  Roster
// interning preserves ID order, so the integer site comparison here
// orders exactly as the string comparison does — the property that lets
// roster-indexed state iterate in the same canonical order as the string
// paths it replaced.
func CompareCanonicalR(a, b RStamp) int {
	if a.Site != b.Site {
		if a.Site < b.Site {
			return -1
		}
		return 1
	}
	if a.Local != b.Local {
		if a.Local < b.Local {
			return -1
		}
		return 1
	}
	if a.Global != b.Global {
		if a.Global < b.Global {
			return -1
		}
		return 1
	}
	return 0
}
