package core

// Differential property tests for the single-pass merge algebra of
// merge.go against the quantifier-for-quantifier reference
// implementations of reference.go.  The merge paths exploit the canonical
// shape of valid composite timestamps, so agreement is asserted both on
// valid sets (Generator: max-sets, hence mutually concurrent, one
// component per site) and on adversarially invalid ones — unsorted,
// duplicate-site, duplicate-component, non-concurrent, empty — where the
// exported operations must degrade exactly like the reference scans.

import (
	"fmt"
	"math/rand"
	"testing"
)

// refLess applies the exported emptiness convention to the reference scan.
func refLess(s, u SetStamp) bool {
	return len(s) > 0 && len(u) > 0 && lessRef(s, u)
}

func refConcurrent(s, u SetStamp) bool {
	return len(s) > 0 && len(u) > 0 && concurrentRef(s, u)
}

func refWeakLE(s, u SetStamp) bool {
	return len(s) > 0 && len(u) > 0 && weakLERef(s, u)
}

func refRelate(s, u SetStamp) SetRelation {
	switch {
	case refLess(s, u):
		return SetBefore
	case refLess(u, s):
		return SetAfter
	case refConcurrent(s, u):
		return SetConcurrent
	default:
		return SetIncomparable
	}
}

func refMax(a, b SetStamp) SetStamp {
	switch {
	case len(a) == 0:
		return b.Clone()
	case len(b) == 0:
		return a.Clone()
	default:
		return unionDominantRef(a, b)
	}
}

// checkAgreement asserts every exported relation and the Max operator
// agree with the reference implementations on the pair (a, b), and —
// whenever the pair qualifies for the merge fast paths — that the merge
// functions themselves agree with the reference scans.  The direct merge
// assertions matter because the exported dispatch only routes to the
// merges above mergeThreshold; without them small-set merge behaviour
// would go untested.
func checkAgreement(t *testing.T, a, b SetStamp) {
	t.Helper()
	if got, want := a.Less(b), refLess(a, b); got != want {
		t.Fatalf("Less(%s, %s) = %v, reference %v", a, b, got, want)
	}
	if got, want := b.Less(a), refLess(b, a); got != want {
		t.Fatalf("Less(%s, %s) = %v, reference %v", b, a, got, want)
	}
	if got, want := a.ConcurrentWith(b), refConcurrent(a, b); got != want {
		t.Fatalf("ConcurrentWith(%s, %s) = %v, reference %v", a, b, got, want)
	}
	if got, want := a.WeakLE(b), refWeakLE(a, b); got != want {
		t.Fatalf("WeakLE(%s, %s) = %v, reference %v", a, b, got, want)
	}
	if got, want := b.WeakLE(a), refWeakLE(b, a); got != want {
		t.Fatalf("WeakLE(%s, %s) = %v, reference %v", b, a, got, want)
	}
	if got, want := a.Relate(b), refRelate(a, b); got != want {
		t.Fatalf("Relate(%s, %s) = %v, reference %v", a, b, got, want)
	}
	if got, want := Max(a, b), refMax(a, b); !got.Equal(want) {
		t.Fatalf("Max(%s, %s) = %s, reference %s", a, b, got, want)
	}
	if len(a) > 0 && len(b) > 0 && siteStrict(a) && siteStrict(b) {
		if got, want := lessMerge(a, b), lessRef(a, b); got != want {
			t.Fatalf("lessMerge(%s, %s) = %v, reference %v", a, b, got, want)
		}
		if got, want := concurrentMerge(a, b), concurrentRef(a, b); got != want {
			t.Fatalf("concurrentMerge(%s, %s) = %v, reference %v", a, b, got, want)
		}
		if got, want := weakLEMerge(a, b), weakLERef(a, b); got != want {
			t.Fatalf("weakLEMerge(%s, %s) = %v, reference %v", a, b, got, want)
		}
	}
}

func TestMergeAgreesWithReferenceOnValidSets(t *testing.T) {
	for _, p := range []struct {
		sites, comps int
	}{{2, 2}, {3, 3}, {4, 4}, {6, 6}, {8, 4}, {24, 20}} {
		p := p
		t.Run(fmt.Sprintf("sites=%d/comps=%d", p.sites, p.comps), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(41*p.sites + p.comps)))
			gen := Generator(r, p.sites, p.comps, 10, 600)
			for i := 0; i < 4000; i++ {
				a, b := gen(), gen()
				checkAgreement(t, a, b)
			}
		})
	}
}

// genAdversarial draws a composite timestamp with none of the validity
// invariants: sites collide, globals are decoupled from locals (no clock
// would derive them), the slice may be unsorted, contain exact
// duplicates, or be empty.  The tight value ranges concentrate samples on
// the guard-band boundaries (global difference exactly 1 and 2).
func genAdversarial(r *rand.Rand) SetStamp {
	n := r.Intn(5)
	s := make(SetStamp, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, Stamp{
			Site:   SiteID(fmt.Sprintf("site%d", r.Intn(3)+1)),
			Global: int64(r.Intn(6)),
			Local:  int64(r.Intn(12)),
		})
	}
	switch r.Intn(3) {
	case 0: // unsorted: stays as drawn
	case 1:
		SortCanonical(s)
	case 2: // sorted with a duplicated component
		SortCanonical(s)
		if len(s) > 0 {
			s = append(s, s[r.Intn(len(s))])
			SortCanonical(s)
		}
	}
	return s
}

func TestMergeAgreesWithReferenceOnAdversarialSets(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for i := 0; i < 20000; i++ {
		a, b := genAdversarial(r), genAdversarial(r)
		checkAgreement(t, a, b)
	}
}

func TestMergeAgreesWithReferenceOnMixedSets(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	gen := Generator(r, 4, 4, 10, 300)
	for i := 0; i < 10000; i++ {
		valid, bad := gen(), genAdversarial(r)
		checkAgreement(t, valid, bad)
		checkAgreement(t, bad, valid)
	}
}

func TestMaxSetAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		n := r.Intn(13)
		stamps := make([]Stamp, 0, n)
		for j := 0; j < n; j++ {
			stamps = append(stamps, Stamp{
				Site:   SiteID(fmt.Sprintf("site%d", r.Intn(4)+1)),
				Global: int64(r.Intn(6)),
				Local:  int64(r.Intn(12)),
			})
		}
		got := MaxSet(stamps)
		want := maxSetRef(stamps)
		if len(stamps) == 0 {
			if got != nil {
				t.Fatalf("MaxSet(empty) = %s, want nil", got)
			}
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("MaxSet(%s) = %s, reference %s", FormatStamps(stamps), got, want)
		}
		// Theorem 5.1: surviving maxima are pairwise concurrent, so any
		// non-empty MaxSet output is a valid SetStamp.  (Adversarial
		// stamps whose globals are decoupled from their locals can make
		// the primitive happen-before cyclic, leaving no maxima at all —
		// no clock-derived multiset does.)
		if len(got) > 0 {
			if err := got.Valid(); err != nil {
				t.Fatalf("MaxSet(%s) = %s not valid: %v", FormatStamps(stamps), got, err)
			}
		}
	}
}

// TestMaxOutputStaysValid pins Theorem 5.4: Max of two valid composite
// timestamps is again a valid composite timestamp, through both the
// binary operator and the MaxAll fold.
func TestMaxOutputStaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	gen := Generator(r, 6, 5, 10, 400)
	for i := 0; i < 5000; i++ {
		a, b := gen(), gen()
		if err := Max(a, b).Valid(); err != nil {
			t.Fatalf("Max(%s, %s) invalid: %v", a, b, err)
		}
		sets := []SetStamp{a, b, gen(), gen()}
		if err := MaxAll(sets...).Valid(); err != nil {
			t.Fatalf("MaxAll(%v) invalid", sets)
		}
	}
}

// TestMaxIntoReusesScratch checks the scratch-reuse contract: results
// equal Max, the returned slice reuses dst's backing array once warm, and
// stale scratch contents never leak into a result.
func TestMaxIntoReusesScratch(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	gen := Generator(r, 5, 4, 10, 400)
	scratch := make(SetStamp, 0, 16)
	for i := 0; i < 5000; i++ {
		a, b := gen(), gen()
		scratch = MaxInto(scratch, a, b)
		if want := Max(a, b); !scratch.Equal(want) {
			t.Fatalf("MaxInto(%s, %s) = %s, want %s", a, b, scratch, want)
		}
		if err := scratch.Valid(); err != nil {
			t.Fatalf("MaxInto(%s, %s) = %s invalid: %v", a, b, scratch, err)
		}
	}
	if cap(scratch) > 64 {
		t.Fatalf("scratch capacity grew to %d; expected it to stabilize near the max set size", cap(scratch))
	}
	// Adversarial inputs take the reference fallback but still fill dst.
	bad := SetStamp{{Site: "z", Global: 9, Local: 1}, {Site: "a", Global: 0, Local: 0}}
	scratch = MaxInto(scratch, bad, bad)
	if want := Max(bad, bad); !scratch.Equal(want) {
		t.Fatalf("MaxInto fallback = %s, want %s", scratch, want)
	}
}

// TestMaxSharedAliasing pins the documented aliasing contract: with one
// empty input the other input's backing array is returned unchanged; with
// two non-empty inputs the result is fresh.
func TestMaxSharedAliasing(t *testing.T) {
	s := NewSetStamp(Stamp{Site: "a", Global: 3, Local: 30})
	if out := MaxShared(nil, s); &out[0] != &s[0] {
		t.Fatalf("MaxShared(nil, s) should alias s")
	}
	if out := MaxShared(s, nil); &out[0] != &s[0] {
		t.Fatalf("MaxShared(s, nil) should alias s")
	}
	u := NewSetStamp(Stamp{Site: "b", Global: 3, Local: 31})
	out := MaxShared(s, u)
	if len(out) > 0 && (&out[0] == &s[0] || &out[0] == &u[0]) {
		t.Fatalf("MaxShared(s, u) must not alias its inputs")
	}
	if want := Max(s, u); !out.Equal(want) {
		t.Fatalf("MaxShared(s, u) = %s, want %s", out, want)
	}
}

// TestSiteStrictGate pins the gate itself: valid generator outputs always
// take the merge path; duplicate-site or unsorted sets never do.
func TestSiteStrictGate(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	gen := Generator(r, 5, 5, 10, 400)
	for i := 0; i < 2000; i++ {
		if s := gen(); !siteStrict(s) {
			t.Fatalf("valid set %s rejected by siteStrict", s)
		}
	}
	if siteStrict(SetStamp{{Site: "b", Global: 1, Local: 1}, {Site: "a", Global: 1, Local: 2}}) {
		t.Fatal("unsorted set accepted by siteStrict")
	}
	if siteStrict(SetStamp{{Site: "a", Global: 1, Local: 1}, {Site: "a", Global: 1, Local: 2}}) {
		t.Fatal("duplicate-site set accepted by siteStrict")
	}
}
