package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Additional cross-cutting properties tying the relations, intervals and
// Max operator together.

// Interval monotonicity: if A < B < C then B lies in the open interval
// (A, C).
func TestOpenIntervalContainsMiddle(t *testing.T) {
	prop := func(a, b, c qSet) bool {
		x, y, z := SetStamp(a), SetStamp(b), SetStamp(c)
		if x.Less(y) && y.Less(z) {
			return y.InOpenSet(x, z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Closed intervals contain open intervals.
func TestClosedContainsOpen(t *testing.T) {
	prop := func(a, b, c qSet) bool {
		x, y, z := SetStamp(a), SetStamp(b), SetStamp(c)
		if y.InOpenSet(x, z) {
			return y.InClosedSet(x, z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// The bounds of a closed interval are inside it whenever the interval is
// well-formed (A ⪯ B).
func TestClosedIntervalContainsBounds(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		if x.WeakLE(y) {
			return x.InClosedSet(x, y) && y.InClosedSet(x, y)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Max dominates both inputs under ⪯ (it is an upper bound).
func TestMaxIsUpperBound(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		m := Max(x, y)
		return x.WeakLE(m) && y.WeakLE(m)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Max is idempotent.
func TestMaxIdempotent(t *testing.T) {
	prop := func(a qSet) bool {
		x := SetStamp(a)
		return Max(x, x).Equal(x)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Max is monotone: if A < B then Max(A, C) ⪯ Max(B, C)... does NOT hold in
// general for partial orders of sets; what does hold is that Max never
// loses the later input: if A < B then Max(A, B) = Max(B, A) ⊇ B's
// undominated components and B ⪯ Max(A, B).
func TestMaxKeepsLaterInput(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		if x.Less(y) {
			m := Max(x, y)
			// Every component of y survives (nothing in x dominates any
			// component of y when x < y... a component of x cannot be
			// after a component of y's max-set; check membership).
			for _, comp := range y {
				found := false
				for _, mc := range m {
					if mc == comp {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Relate agrees with the individual predicates (exhaustive consistency).
func TestSetRelateConsistent(t *testing.T) {
	prop := func(a, b qSet) bool {
		x, y := SetStamp(a), SetStamp(b)
		switch x.Relate(y) {
		case SetBefore:
			return x.Less(y)
		case SetAfter:
			return y.Less(x)
		case SetConcurrent:
			return x.ConcurrentWith(y)
		case SetIncomparable:
			return x.IncomparableWith(y)
		default:
			return false
		}
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Duality: the paper notes T(e1) <_p T(e2) iff T(e2) >_p T(e1) where >_p
// is LessDual with the arguments swapped and the primitive order
// reversed.  Concretely: LessDual(b, a) under the reversed primitive
// order equals Less(a, b).  We verify the directly checkable form:
// Less(a,b) implies NOT LessDual(b,a) can fail — instead check the dual
// pair relationship on singletons, where both collapse to the primitive
// order.
func TestDualOrdersCoincideOnSingletons(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x := Singleton(Stamp(a))
		y := Singleton(Stamp(b))
		return x.Less(y) == LessDual(x, y)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Composite relations collapse to primitive ones on singletons.
func TestSingletonRelationsMatchPrimitive(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		sx, sy := Singleton(x), Singleton(y)
		if sx.Less(sy) != x.Less(y) {
			return false
		}
		if sx.ConcurrentWith(sy) != x.Concurrent(y) {
			return false
		}
		if sx.WeakLE(sy) != x.WeakLE(y) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// MaxSet is idempotent: max(max(ST)) = max(ST).
func TestMaxSetIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		stamps := make([]Stamp, n)
		for i := range stamps {
			stamps[i] = GenStamp(r, qSites, qRatio, qHorizon)
		}
		once := MaxSet(stamps)
		twice := MaxSet(once)
		if !once.Equal(twice) {
			t.Fatalf("MaxSet not idempotent: %s vs %s", once, twice)
		}
	}
}

// Every stamp in the input is ⪯ some stamp of its max-set.
func TestMaxSetDominatesInput(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		stamps := make([]Stamp, n)
		for i := range stamps {
			stamps[i] = GenStamp(r, qSites, qRatio, qHorizon)
		}
		ms := MaxSet(stamps)
		for _, s := range stamps {
			ok := false
			for _, m := range ms {
				if s.WeakLE(m) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("stamp %s not dominated by max-set %s", s, ms)
			}
		}
	}
}
