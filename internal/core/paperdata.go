package core

// This file collects the concrete timestamps printed in the paper so that
// tests, benchmarks and the cmd/ harnesses all reproduce exactly the
// published artifacts (EXPERIMENTS.md rows EX51, FIG2, CEX, ALT).

// Paper51Ratio is the local-ticks-per-global-tick ratio of the Section 5.1
// worked example: local granularity g = 1/100s, global granularity
// g_g = 1/10s, hence 10 local ticks per global tick.
const Paper51Ratio = 10

// PaperSection51Stamps returns the five composite timestamps
// T(e1) … T(e5) of the Section 5.1 worked example, in order.  The paper
// reports T(e1) ≬ T(e2) ≬ T(e3), T(e4) ~ T(e3) and T(e3) < T(e5).
//
// The stamps are quoted verbatim.  Note that T(e5)'s k component
// (k, 9154829, 91548289) is not floor-derivable from its local tick
// (floor(91548289/10) = 9154828) and the published T(e3) < T(e5) relation
// holds only with the published global; see the EX51 tests.
func PaperSection51Stamps() [5]SetStamp {
	k, l, m := SiteID("k"), SiteID("l"), SiteID("m")
	return [5]SetStamp{
		NewSetStamp(
			Stamp{Site: k, Global: 9154827, Local: 91548276},
			Stamp{Site: m, Global: 9154827, Local: 91548277},
		),
		NewSetStamp(
			Stamp{Site: l, Global: 9154827, Local: 91548276},
			Stamp{Site: k, Global: 9154827, Local: 91548277},
		),
		NewSetStamp(
			Stamp{Site: m, Global: 9154827, Local: 91548276},
			Stamp{Site: l, Global: 9154827, Local: 91548277},
		),
		NewSetStamp(
			Stamp{Site: k, Global: 9154828, Local: 91548288},
			Stamp{Site: l, Global: 9154827, Local: 91548277},
		),
		NewSetStamp(
			Stamp{Site: k, Global: 9154829, Local: 91548289},
			Stamp{Site: l, Global: 9154828, Local: 91548287},
		),
	}
}

// PaperFigure2Stamp returns the composite timestamp of the Figure 2 grid
// example, T(e) = {(Site3, 8, 81), (Site6, 7, 72)}.
func PaperFigure2Stamp() SetStamp {
	return NewSetStamp(
		Stamp{Site: "Site3", Global: 8, Local: 81},
		Stamp{Site: "Site6", Global: 7, Local: 72},
	)
}

// PaperCounterexampleStamps returns the three composite timestamps the
// paper uses against the ordering of Schwiderski's dissertation [10]:
//
//	T(e1) = {(site1, 8, 80), (site2, 2, 80)}
//	T(e2) = {(site1, 9, 90), (site2, 8, 80)}
//	T(e3) = {(site2, 9, 90)}
//
// The exact definition of [10]'s happen-before is in an out-of-print
// dissertation and cannot be recovered from the paper text alone (see
// EXPERIMENTS.md, row CEX); the harness instead (a) evaluates every
// candidate ordering of Section 5.1 on these stamps, (b) proves by search
// that the ∃∃ candidate <_p1 is not transitive, and (c) verifies on the
// same data and at random that the paper's <_p has no violation.
//
// Note the published T(e1) is not internally concurrent under
// Definition 4.7 ((site2,2,80) happens before (site1,8,80) since
// 2 < 8−1), and (site2,2,80)/(site2,8,80) even violate the global/local
// monotonicity of Proposition 4.1; the triple is quoted verbatim for
// fidelity and therefore bypasses NewSetStamp's max-set normalization.
func PaperCounterexampleStamps() [3]SetStamp {
	s1, s2 := SiteID("site1"), SiteID("site2")
	return [3]SetStamp{
		{Stamp{Site: s1, Global: 8, Local: 80}, Stamp{Site: s2, Global: 2, Local: 80}},
		{Stamp{Site: s1, Global: 9, Local: 90}, Stamp{Site: s2, Global: 8, Local: 80}},
		{Stamp{Site: s2, Global: 9, Local: 90}},
	}
}

// PaperAltOrderExampleP2 returns the pair the paper uses to show <_p2 (∀∀)
// is more restricted than <_p: A = {(site1,8,80),(site2,7,70)},
// B = {(site3,9,90)}; A <_p B holds but A <_p2 B does not.
func PaperAltOrderExampleP2() (a, b SetStamp) {
	a = NewSetStamp(
		Stamp{Site: "site1", Global: 8, Local: 80},
		Stamp{Site: "site2", Global: 7, Local: 70},
	)
	b = NewSetStamp(Stamp{Site: "site3", Global: 9, Local: 90})
	return a, b
}

// PaperAltOrderExampleP3 returns the pair the paper uses to show <_p3
// (min-based) is more restricted than <_p:
// A = {(site1,8,80),(site2,7,70)}, B = {(site1,8,81),(site2,7,71)};
// A <_p B holds but A <_p3 B does not, since (site1,8,81) is not after
// A's minimum-global component (site2,7,70).
func PaperAltOrderExampleP3() (a, b SetStamp) {
	a = NewSetStamp(
		Stamp{Site: "site1", Global: 8, Local: 80},
		Stamp{Site: "site2", Global: 7, Local: 70},
	)
	b = NewSetStamp(
		Stamp{Site: "site1", Global: 8, Local: 81},
		Stamp{Site: "site2", Global: 7, Local: 71},
	)
	return a, b
}

// Prop42CounterexampleGlobals returns three cross-site stamps with global
// times 1, 2, 3 — the paper's counterexample (Proposition 4.2(6)) showing
// that ~ is not transitive and that ~ does not propagate through <.
func Prop42CounterexampleGlobals() (t1, t2, t3 Stamp) {
	t1 = Stamp{Site: "a", Global: 1, Local: 10}
	t2 = Stamp{Site: "b", Global: 2, Local: 20}
	t3 = Stamp{Site: "c", Global: 3, Local: 30}
	return t1, t2, t3
}
