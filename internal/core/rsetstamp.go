package core

// RSetStamp is the roster-interned form of SetStamp: the same canonical
// (site, local, global)-ordered component set, with every site identity a
// dense Site index instead of a string SiteID.  It exists for the hot
// per-event paths — release keys, composite Max folds, detector buffer
// scans — where component comparisons must be integer-only; the string
// SetStamp stays the semantics of record (reference.go), and the
// differential tests in rsetstamp_test.go pin every relation here against
// it on arbitrary valid inputs.
//
// Unlike SetStamp, whose relation methods route degenerate shapes to the
// quadratic reference implementations, RSetStamp requires the canonical
// valid shape (sorted, at most one component per site).  That is not a
// loss of generality: interned sets are only ever produced by this
// package's own algebra (Roster.AppendCanon, RMaxInto), which preserves
// the shape, while arbitrary user-constructed sets stay in string form.
// Because roster interning preserves SiteID order (see Site), the integer
// merges below order exactly as their string counterparts.
type RSetStamp []RStamp

// siteStrictR is siteStrict on interned components: sorted with strictly
// increasing sites, the shape every valid interned set has.
func siteStrictR(s RSetStamp) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].Site >= s[i].Site {
			return false
		}
	}
	return true
}

// rcrossAgg is crossAgg with interned achiever sites: min/max global with
// the site achieving each, plus the extremes over the remaining sites, so
// "min/max global among components at sites other than X" answers in O(1).
type rcrossAgg struct {
	min1, max1       int64
	minSite, maxSite Site
	min2, max2       int64
	hasMin2, hasMax2 bool
}

// raggregateStrict is aggregateStrict on interned components: one pass,
// sites all distinct.  s must be non-empty.
func raggregateStrict(s RSetStamp) rcrossAgg {
	a := rcrossAgg{
		min1: s[0].Global, max1: s[0].Global,
		minSite: s[0].Site, maxSite: s[0].Site,
	}
	for _, t := range s[1:] {
		g := t.Global
		if g < a.min1 {
			a.min2, a.hasMin2 = a.min1, true
			a.min1, a.minSite = g, t.Site
		} else if !a.hasMin2 || g < a.min2 {
			a.min2, a.hasMin2 = g, true
		}
		if g > a.max1 {
			a.max2, a.hasMax2 = a.max1, true
			a.max1, a.maxSite = g, t.Site
		} else if !a.hasMax2 || g > a.max2 {
			a.max2, a.hasMax2 = g, true
		}
	}
	return a
}

// rcrossBelow is crossBelow with an integer site test: some component at a
// site other than site has global < bound.
func rcrossBelow(a *rcrossAgg, site Site, bound int64) bool {
	if a.min1 >= bound {
		return false
	}
	if a.hasMin2 && a.min2 < bound {
		return true
	}
	return a.minSite != site
}

// rcrossAbove is the mirror: some cross-site global > bound.
func rcrossAbove(a *rcrossAgg, site Site, bound int64) bool {
	if a.max1 <= bound {
		return false
	}
	if a.hasMax2 && a.max2 > bound {
		return true
	}
	return a.maxSite != site
}

// rcrossDominated reports whether t is dominated by some cross-site
// component summarized by agg.
func rcrossDominated(t RStamp, agg *rcrossAgg) bool {
	return rcrossAbove(agg, t.Site, t.Global+1)
}

// Less is SetStamp.Less (Definition 5.3(2)) on interned sets: ∀ t2 ∈ u
// ∃ t1 ∈ s with t1 < t2, evaluated as one integer-only merge pass.  Both
// inputs must have the canonical valid shape (see the type comment).
//
//sentinel:hotpath
func (s RSetStamp) Less(u RSetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].Less(u[0])
	}
	agg := raggregateStrict(s)
	i := 0
	for _, t2 := range u {
		for i < len(s) && s[i].Site < t2.Site {
			i++
		}
		if i < len(s) && s[i].Site == t2.Site && s[i].Local < t2.Local {
			continue // same-site witness (Definition 4.7, local order)
		}
		if rcrossBelow(&agg, t2.Site, t2.Global-1) {
			continue // cross-site witness (one-granule guard band)
		}
		return false
	}
	return true
}

// ConcurrentWith is SetStamp.ConcurrentWith (Definition 5.3(1)) on
// interned sets: all cross-set pairs concurrent, in one merge pass.
//
//sentinel:hotpath
func (s RSetStamp) ConcurrentWith(u RSetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].Concurrent(u[0])
	}
	agg := raggregateStrict(s)
	i := 0
	for _, t2 := range u {
		for i < len(s) && s[i].Site < t2.Site {
			i++
		}
		if i < len(s) && s[i].Site == t2.Site && s[i].Local != t2.Local {
			return false // same-site pair that is not simultaneous
		}
		if rcrossBelow(&agg, t2.Site, t2.Global-1) {
			return false // some t1 happens before t2
		}
		if rcrossAbove(&agg, t2.Site, t2.Global+1) {
			return false // t2 happens before some t1
		}
	}
	return true
}

// WeakLE is SetStamp.WeakLE ("⪯", Definition 5.4) on interned sets: no
// pair with t2 < t1, in one merge pass over s against the aggregate of u.
//
//sentinel:hotpath
func (s RSetStamp) WeakLE(u RSetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].WeakLE(u[0])
	}
	agg := raggregateStrict(u)
	j := 0
	for _, t1 := range s {
		for j < len(u) && u[j].Site < t1.Site {
			j++
		}
		if j < len(u) && u[j].Site == t1.Site && u[j].Local < t1.Local {
			return false // same-site t2 before t1
		}
		if rcrossBelow(&agg, t1.Site, t1.Global-1) {
			return false // cross-site t2 before t1
		}
	}
	return true
}

// MaxGlobalComponent is SetStamp.MaxGlobalComponent on interned sets: the
// component carrying the largest global time, earliest in canonical order
// among ties (index order equals canonical SiteID order, so the winner is
// the same component the string form picks).  It panics on an empty set.
func (s RSetStamp) MaxGlobalComponent() RStamp {
	if len(s) == 0 {
		panic("core: MaxGlobalComponent of empty interned composite timestamp")
	}
	best := s[0]
	for _, t := range s[1:] {
		if t.Global > best.Global {
			best = t
		}
	}
	return best
}

// RMaxInto is MaxInto on interned sets: max(a ∪ b) — Theorem 5.4's reading
// of the Definition 5.9 Max operator — computed into dst's backing array
// (truncating dst first) in one integer-only merge pass.  Both inputs must
// have the canonical valid shape; dst must not overlap a or b.  Because
// interning preserves site order, the result materializes (via
// Roster.AppendStamps) to exactly the set MaxInto produces on the string
// forms.
//
//sentinel:hotpath
func RMaxInto(dst, a, b RSetStamp) RSetStamp {
	dst = dst[:0]
	switch {
	case len(a) == 0:
		return append(dst, b...)
	case len(b) == 0:
		return append(dst, a...)
	}
	aggA, aggB := raggregateStrict(a), raggregateStrict(b)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ta, tb := a[i], b[j]
		switch {
		case ta.Site < tb.Site:
			if !rcrossDominated(ta, &aggB) {
				dst = append(dst, ta)
			}
			i++
		case ta.Site > tb.Site:
			if !rcrossDominated(tb, &aggA) {
				dst = append(dst, tb)
			}
			j++
		default: // one component each at the same site
			i, j = i+1, j+1
			aliveA := ta.Local >= tb.Local && !rcrossDominated(ta, &aggB)
			aliveB := tb.Local >= ta.Local && !rcrossDominated(tb, &aggA)
			switch {
			case aliveA && aliveB:
				// Simultaneous (equal locals): both survive; emit in
				// canonical order, collapsing exact duplicates.
				if c := CompareCanonicalR(ta, tb); c == 0 {
					dst = append(dst, ta)
				} else if c < 0 {
					dst = append(dst, ta, tb)
				} else {
					dst = append(dst, tb, ta)
				}
			case aliveA:
				dst = append(dst, ta)
			case aliveB:
				dst = append(dst, tb)
			}
		}
	}
	for ; i < len(a); i++ {
		if !rcrossDominated(a[i], &aggB) {
			dst = append(dst, a[i])
		}
	}
	for ; j < len(b); j++ {
		if !rcrossDominated(b[j], &aggA) {
			dst = append(dst, b[j])
		}
	}
	return dst
}

// AppendCanon interns every component of s into dst and returns the
// extended slice, with ok=false (and dst unchanged in content) if any
// component's site is not a roster member.  The input must be a valid
// canonical SetStamp; interning preserves order, so the output has the
// canonical interned shape with no re-sort.
func (r *Roster) AppendCanon(dst RSetStamp, s SetStamp) (RSetStamp, bool) {
	base := len(dst)
	for _, t := range s {
		idx, ok := r.idx[t.Site]
		if !ok {
			return dst[:base], false
		}
		dst = append(dst, RStamp{Site: idx, Global: t.Global, Local: t.Local})
	}
	return dst, true
}

// AppendStamps materializes an interned set back to string components,
// appending to dst.  Index order equals canonical SiteID order, so the
// output is in canonical order whenever the input is.
func (r *Roster) AppendStamps(dst SetStamp, s RSetStamp) SetStamp {
	for _, t := range s {
		dst = append(dst, Stamp{Site: r.ids[t.Site], Global: t.Global, Local: t.Local})
	}
	return dst
}
