package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qStamp generates random primitive stamps that respect the clock model of
// Section 4: all sites share the local-tick scale (synchronized within Π)
// and global = TRUNC(local / ratio).  Theorem 4.1's transitivity depends
// on this invariant (Proposition 4.1); see
// TestTransitivityNeedsClockInvariant for what happens without it.
type qStamp Stamp

const (
	qRatio   = 10
	qSites   = 4
	qHorizon = 400 // small horizon so related triples are common
)

func (qStamp) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qStamp(GenStamp(r, qSites, qRatio, qHorizon)))
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(42))}
}

// Theorem 4.1: < on primitive stamps is irreflexive.
func TestPrimitiveOrderStrictPartialIrreflexive(t *testing.T) {
	prop := func(a qStamp) bool {
		return !Stamp(a).Less(Stamp(a))
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Theorem 4.1: < on primitive stamps is transitive.
func TestPrimitiveOrderStrictPartialTransitive(t *testing.T) {
	prop := func(a, b, c qStamp) bool {
		x, y, z := Stamp(a), Stamp(b), Stamp(c)
		if x.Less(y) && y.Less(z) {
			return x.Less(z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(1): < is asymmetric.
func TestProp42_1_Asymmetric(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		return !(x.Less(y) && y.Less(x))
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(2): ⪯ is antisymmetric up to concurrency.
func TestProp42_2_AntisymmetricToConcurrent(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		if x.WeakLE(y) && y.WeakLE(x) {
			return x.Concurrent(y)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(3): exactly one of <, >, ~ holds.
func TestProp42_3_Trichotomy(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		n := 0
		if x.Less(y) {
			n++
		}
		if y.Less(x) {
			n++
		}
		if x.Concurrent(y) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(4): ⪯ is total (either direction or both).
func TestProp42_4_WeakLETotal(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		return x.WeakLE(y) || y.WeakLE(x)
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(5): same-site concurrency collapses to simultaneity.
func TestProp42_5_SameSiteConcurrentIsSimultaneous(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		if x.Concurrent(y) && x.Site == y.Site {
			return x.Simultaneous(y)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(6), first half: simultaneity propagates through <
// regardless of sites.
func TestProp42_6_SimultaneousPropagatesThroughLess(t *testing.T) {
	prop := func(a, c qStamp) bool {
		x, z := Stamp(a), Stamp(c)
		y := x // a distinct stamp simultaneous with x must equal x's site/local
		if x.Less(z) {
			return y.Less(z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(6), second half: the paper's explicit counterexamples
// that mere concurrency does NOT propagate through < and that ~ is not
// transitive (globals 1, 2, 3).
func TestProp42_6_ConcurrencyDoesNotPropagate(t *testing.T) {
	t1, t2, t3 := Prop42CounterexampleGlobals()
	if !(t1.Concurrent(t2) && t2.Less(t3) == false) {
		// t2 (global 2) vs t3 (global 3): one granule apart, concurrent.
		t.Fatalf("setup: want t1~t2 and t2~t3; got %s %s, %s %s",
			t1.Relate(t2), t2, t2.Relate(t3), t3)
	}
	if !t1.Less(t3) {
		t.Fatalf("t1 < t3 expected in the counterexample")
	}
	// So: t3 ~ t2 and t2 ~ t1, yet t1 < t3 — concurrency is not
	// transitive, and t2 ~ t1 with t1 < t3 does not force t2 < t3.
	if t2.Less(t3) {
		t.Fatalf("t2 < t3 must not hold: ~ does not propagate through <")
	}
}

// Proposition 4.2(7): t1 < t2 and t2 ~ t3 imply t1 ⪯ t3.
func TestProp42_7_LessThenConcurrentGivesWeakLE(t *testing.T) {
	prop := func(a, b, c qStamp) bool {
		x, y, z := Stamp(a), Stamp(b), Stamp(c)
		if x.Less(y) && y.Concurrent(z) {
			return x.WeakLE(z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(8): t1 ~ t2 and t2 < t3 imply t1 ⪯ t3.
func TestProp42_8_ConcurrentThenLessGivesWeakLE(t *testing.T) {
	prop := func(a, b, c qStamp) bool {
		x, y, z := Stamp(a), Stamp(b), Stamp(c)
		if x.Concurrent(y) && y.Less(z) {
			return x.WeakLE(z)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(9): ¬(t1 < t2) implies t2 ⪯ t1.
func TestProp42_9_NotLessImpliesReverseWeakLE(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		if !x.Less(y) {
			return y.WeakLE(x)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2(10): mutual non-< implies ~ (definitionally true, kept
// as a regression guard on the definition of Concurrent).
func TestProp42_10_MutualNotLessIsConcurrent(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		if !x.Less(y) && !y.Less(x) {
			return x.Concurrent(y)
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// Proposition 4.1: the clock model ties local and global components.
func TestProp41_LocalGlobalMonotonicity(t *testing.T) {
	prop := func(a, b qStamp) bool {
		x, y := Stamp(a), Stamp(b)
		if x.Local < y.Local && !(x.Global <= y.Global) {
			return false
		}
		if x.Local == y.Local && x.Global != y.Global {
			return false
		}
		if x.Concurrent(y) {
			d := x.Global - y.Global
			if d < 0 {
				d = -d
			}
			if d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestTransitivityNeedsClockInvariant documents that Theorem 4.1's
// transitivity relies on Proposition 4.1's clock invariant: with
// arbitrary (local, global) pairs that no synchronized clock could
// produce, < is not transitive.  This is why stamp producers must derive
// globals from locals (DeriveStamp / clock.SiteClock).
func TestTransitivityNeedsClockInvariant(t *testing.T) {
	// a's global is ahead of its local tick and b's is behind: no
	// synchronized clock pair could produce these.
	a := Stamp{Site: "s", Global: 5, Local: 10}
	b := Stamp{Site: "s", Global: 0, Local: 20}
	c := Stamp{Site: "t", Global: 2, Local: 20}
	if !a.Less(b) || !b.Less(c) {
		t.Fatalf("setup: want a<b (same site) and b<c (cross site)")
	}
	if a.Less(c) {
		t.Fatalf("setup meant to violate transitivity, but a<c holds")
	}
	// With honest stamps derived from locals, the violation disappears.
	a2 := DeriveStamp("s", 10, 10)
	b2 := DeriveStamp("s", 20, 10)
	c2 := DeriveStamp("t", 45, 10)
	if a2.Less(b2) && b2.Less(c2) && !a2.Less(c2) {
		t.Fatalf("derived stamps must be transitive")
	}
}
