package core

import (
	"math/rand"
	"testing"
)

func TestInOpenPrimitive(t *testing.T) {
	a := Stamp{Site: "a", Global: 0, Local: 0}
	b := Stamp{Site: "b", Global: 10, Local: 100}
	inside := Stamp{Site: "c", Global: 5, Local: 50}
	if !inside.InOpen(a, b) {
		t.Errorf("%s ∈ (%s, %s) expected", inside, a, b)
	}
	tooEarly := Stamp{Site: "c", Global: 1, Local: 10}
	if tooEarly.InOpen(a, b) {
		t.Errorf("%s is concurrent with the left bound; not in the open interval", tooEarly)
	}
	tooLate := Stamp{Site: "c", Global: 9, Local: 90}
	if tooLate.InOpen(a, b) {
		t.Errorf("%s is concurrent with the right bound; not in the open interval", tooLate)
	}
}

func TestInOpenDegenerateBounds(t *testing.T) {
	// Bounds that are not ordered admit nothing.
	a := Stamp{Site: "a", Global: 5, Local: 50}
	b := Stamp{Site: "b", Global: 5, Local: 51}
	x := Stamp{Site: "c", Global: 5, Local: 50}
	if x.InOpen(a, b) {
		t.Errorf("open interval with concurrent bounds must be empty")
	}
}

func TestInClosedPrimitive(t *testing.T) {
	a := Stamp{Site: "a", Global: 5, Local: 50}
	b := Stamp{Site: "b", Global: 6, Local: 60}
	// Anything concurrent with both bounds is inside.
	x := Stamp{Site: "c", Global: 5, Local: 55}
	if !x.InClosed(a, b) {
		t.Errorf("%s ∈ [%s, %s] expected", x, a, b)
	}
	// One granule below the left bound is still inside (⪯ via ~).
	y := Stamp{Site: "c", Global: 4, Local: 45}
	if !y.InClosed(a, b) {
		t.Errorf("%s ∈ [%s, %s] expected (closed intervals widen by 1g)", y, a, b)
	}
	// Strictly before the left bound is outside.
	z := Stamp{Site: "c", Global: 2, Local: 25}
	if z.InClosed(a, b) {
		t.Errorf("%s ∉ [%s, %s] expected", z, a, b)
	}
}

// Figure 1: the open interval of two cross-site stamps spans globals
// a.global+2 .. b.global−2, and the closed interval a.global−1 ..
// b.global+1.
func TestFig1WindowsMatchMembership(t *testing.T) {
	a := Stamp{Site: "a", Global: 10, Local: 100}
	b := Stamp{Site: "b", Global: 20, Local: 200}
	open := OpenWindow(a, b)
	if open.Lo != 12 || open.Hi != 18 {
		t.Fatalf("OpenWindow = %s, want {12g_g .. 18g_g}", open)
	}
	closed := ClosedWindow(a, b)
	if closed.Lo != 9 || closed.Hi != 21 {
		t.Fatalf("ClosedWindow = %s, want {9g_g .. 21g_g}", closed)
	}
	// Membership of a third-site stamp agrees with the window rendering
	// for every global tick in range.
	for g := int64(5); g <= 25; g++ {
		x := Stamp{Site: "c", Global: g, Local: g * 10}
		if got, want := x.InOpen(a, b), open.Contains(g); got != want {
			t.Errorf("global %d: InOpen = %v, window = %v", g, got, want)
		}
		if got, want := x.InClosed(a, b), closed.Contains(g); got != want {
			t.Errorf("global %d: InClosed = %v, window = %v", g, got, want)
		}
	}
}

// The paper's non-emptiness condition: the open interval needs
// a.global < b.global − 3.
func TestOpenWindowNonEmptinessCondition(t *testing.T) {
	for gap := int64(0); gap <= 6; gap++ {
		a := Stamp{Site: "a", Global: 10, Local: 100}
		b := Stamp{Site: "b", Global: 10 + gap, Local: (10 + gap) * 10}
		w := OpenWindow(a, b)
		wantNonEmpty := gap >= 4 // a.global < b.global − 3
		if got := !w.Empty(); got != wantNonEmpty {
			t.Errorf("gap %d: open window %s non-empty = %v, want %v", gap, w, got, wantNonEmpty)
		}
	}
}

func TestGlobalWindowHelpers(t *testing.T) {
	w := GlobalWindow{Lo: 3, Hi: 5}
	if w.Empty() || w.Width() != 3 || !w.Contains(4) || w.Contains(6) {
		t.Errorf("window helpers broken: %v", w)
	}
	e := GlobalWindow{Lo: 5, Hi: 3}
	if !e.Empty() || e.Width() != 0 || e.String() != "∅" {
		t.Errorf("empty window helpers broken: %v", e)
	}
	if got, want := w.String(), "{3g_g .. 5g_g}"; got != want {
		t.Errorf("window String = %q, want %q", got, want)
	}
}

func TestInOpenSetComposite(t *testing.T) {
	a := NewSetStamp(Stamp{Site: "a", Global: 0, Local: 0})
	b := NewSetStamp(Stamp{Site: "b", Global: 10, Local: 100})
	mid := NewSetStamp(Stamp{Site: "c", Global: 5, Local: 50}, Stamp{Site: "d", Global: 4, Local: 40})
	if !mid.InOpenSet(a, b) {
		t.Errorf("%s ∈ (%s, %s) expected", mid, a, b)
	}
	if a.InOpenSet(a, b) {
		t.Errorf("left bound not in its own open interval")
	}
}

func TestInClosedSetComposite(t *testing.T) {
	a := NewSetStamp(Stamp{Site: "a", Global: 5, Local: 50})
	b := NewSetStamp(Stamp{Site: "b", Global: 6, Local: 60})
	x := NewSetStamp(Stamp{Site: "c", Global: 5, Local: 55})
	if !x.InClosedSet(a, b) {
		t.Errorf("%s ∈ [%s, %s] expected", x, a, b)
	}
	far := NewSetStamp(Stamp{Site: "c", Global: 50, Local: 500})
	if far.InClosedSet(a, b) {
		t.Errorf("%s ∉ [%s, %s] expected", far, a, b)
	}
}

// Open-interval membership on composite stamps is consistent with the
// composite order: members are strictly between the bounds, so bounds
// relate to members the same way on random data.
func TestOpenSetMembershipConsistentWithOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	gen := Generator(r, qSites, 3, qRatio, qHorizon)
	checked := 0
	for trial := 0; trial < 20000 && checked < 500; trial++ {
		a, x, b := gen(), gen(), gen()
		if x.InOpenSet(a, b) {
			checked++
			if !a.Less(b) {
				t.Fatalf("member between unordered bounds: a=%s x=%s b=%s", a, x, b)
			}
			if !a.Less(x) || !x.Less(b) {
				t.Fatalf("InOpenSet inconsistent with Less: a=%s x=%s b=%s", a, x, b)
			}
		}
	}
	if checked == 0 {
		t.Fatalf("generator produced no interval members; widen horizon")
	}
}
