package core

import (
	"errors"
	"fmt"
)

// SetStamp is the timestamp of a distributed composite event
// (Definition 5.2): a set of (site, global, local) triples, each a maximum
// of the set of constituent primitive timestamps collected when the
// composite event occurred.  Theorem 5.1 guarantees — and Valid checks —
// that the components of a well-formed SetStamp are mutually concurrent:
// they are the multiple "latest" stamps that replace the single t_occ of a
// centralized system.
//
// Components are kept in canonical (site, local, global) order with no
// duplicates so that Equal and String are deterministic; the order carries
// no temporal meaning.
type SetStamp []Stamp

// NewSetStamp builds the composite timestamp of the given primitive stamps:
// max(ST) per Definition 5.1, deduplicated and canonically ordered.  It
// panics on an empty input, because a composite event cannot occur without
// at least one constituent occurrence.
func NewSetStamp(stamps ...Stamp) SetStamp {
	if len(stamps) == 0 {
		panic("core: NewSetStamp of no stamps")
	}
	return MaxSet(stamps)
}

// Singleton wraps one primitive stamp as a composite timestamp; primitive
// events participate in the composite algebra as singleton sets.
func Singleton(t Stamp) SetStamp { return SetStamp{t} }

// MaxSet implements Definition 5.1: given a set of timestamps ST, the
// maxima are the stamps not happening before any other stamp in ST, and
// max(ST) is the set of all of them.  The result is deduplicated and
// canonically ordered.  By Theorem 5.1 its elements are mutually
// concurrent.  MaxSet of an empty slice returns nil.
//
// The input is first brought into canonical order (O(n log n)); a single
// pass then keeps exactly the non-dominated stamps: within one site's run
// only the maximal local tick survives (Definition 4.7 orders same-site
// stamps by local alone), and across sites a stamp survives iff no other
// site's global exceeds its own by more than one granule — an O(1) query
// against the crossAgg two-best summary.  The quadratic transcription of
// the definition is retained as maxSetRef and the differential tests
// assert agreement on arbitrary inputs.
func MaxSet(stamps []Stamp) SetStamp {
	if len(stamps) == 0 {
		return nil
	}
	if len(stamps) == 1 {
		return SetStamp{stamps[0]}
	}
	sorted := make(SetStamp, len(stamps))
	copy(sorted, stamps)
	SortCanonical(sorted)
	agg := aggregate(sorted)
	w := 0
	for i := 0; i < len(sorted); {
		e := i + 1
		for e < len(sorted) && sorted[e].Site == sorted[i].Site {
			e++
		}
		// Within the run [i, e) locals are ascending, so the run's last
		// element carries the maximal local tick; every element with a
		// smaller local is dominated by it (same-site happen-before).
		runMaxLocal := sorted[e-1].Local
		for k := i; k < e; k++ {
			t := sorted[k]
			if t.Local < runMaxLocal {
				continue // dominated within its own site
			}
			if crossDominated(t, &agg) {
				continue // dominated by a cross-site stamp
			}
			if w > 0 && CompareCanonical(sorted[w-1], t) == 0 {
				continue // exact duplicate
			}
			sorted[w] = t
			w++
		}
		i = e
	}
	return sorted[:w]
}

// dedupCanonical removes adjacent duplicates from a canonically sorted set.
func dedupCanonical(ts SetStamp) SetStamp {
	w := 0
	for i, t := range ts {
		if i == 0 || CompareCanonical(t, ts[w-1]) != 0 {
			ts[w] = t
			w++
		}
	}
	return ts[:w]
}

// ErrEmptySetStamp reports a composite timestamp with no components.
var ErrEmptySetStamp = errors.New("core: empty composite timestamp")

// Valid checks the Definition 5.2 invariants: the set is non-empty, free of
// duplicates, canonically ordered, and its components are mutually
// concurrent (the property Theorem 5.1 proves for max-sets).
func (s SetStamp) Valid() error {
	if len(s) == 0 {
		return ErrEmptySetStamp
	}
	for i := 1; i < len(s); i++ {
		if c := CompareCanonical(s[i-1], s[i]); c > 0 {
			return fmt.Errorf("core: composite timestamp not canonically ordered at %d: %s > %s", i, s[i-1], s[i])
		} else if c == 0 {
			return fmt.Errorf("core: duplicate component %s", s[i])
		}
	}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if !s[i].Concurrent(s[j]) {
				return fmt.Errorf("core: components %s and %s are not concurrent", s[i], s[j])
			}
		}
	}
	return nil
}

// Clone returns an independent copy.
func (s SetStamp) Clone() SetStamp {
	if s == nil {
		return nil
	}
	out := make(SetStamp, len(s))
	copy(out, s)
	return out
}

// Equal reports set equality (both sets are canonically ordered).
func (s SetStamp) Equal(u SetStamp) bool {
	if len(s) != len(u) {
		return false
	}
	for i := range s {
		if CompareCanonical(s[i], u[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the set as the paper does, e.g.
// "{(k, 9154827, 91548276), (m, 9154827, 91548277)}".
func (s SetStamp) String() string { return FormatStamps(s) }

// Sites returns the distinct sites contributing components, in canonical
// order.  Because components are mutually concurrent and same-site
// concurrency collapses to simultaneity (Proposition 4.2(5)), a valid
// SetStamp has at most one component per site; hence len(Sites) == len(s).
func (s SetStamp) Sites() []SiteID {
	return s.AppendSites(make([]SiteID, 0, len(s)))
}

// AppendSites is Sites with caller-provided storage: it appends the
// component sites to dst and returns the extended slice, allocating only
// when dst's capacity runs out.  Diagnostic accessors on release/detect
// paths use this form so a reused scratch buffer makes the per-event cost
// zero allocations (hotalloc audit, PR 8).
func (s SetStamp) AppendSites(dst []SiteID) []SiteID {
	for _, t := range s {
		dst = append(dst, t.Site)
	}
	return dst
}

// MaxGlobal returns the largest global component, a convenient scalar
// summary (e.g. for watermarking); it is not a substitute for the partial
// order.
func (s SetStamp) MaxGlobal() int64 {
	if len(s) == 0 {
		panic("core: MaxGlobal of empty composite timestamp")
	}
	m := s[0].Global
	for _, t := range s[1:] {
		if t.Global > m {
			m = t.Global
		}
	}
	return m
}

// MaxGlobalComponent returns the component carrying the largest global
// time — the stamp the watermark release key of internal/ddetect is built
// from.  Among components with equal global time the earliest in
// canonical order wins, so the result is deterministic.  Like MaxGlobal
// it is a scalar convenience, not a substitute for the partial order; it
// panics on an empty set.
func (s SetStamp) MaxGlobalComponent() Stamp {
	if len(s) == 0 {
		panic("core: MaxGlobalComponent of empty composite timestamp")
	}
	best := s[0]
	for _, t := range s[1:] {
		if t.Global > best.Global {
			best = t
		}
	}
	return best
}

// MinGlobal returns the smallest global component.
func (s SetStamp) MinGlobal() int64 {
	if len(s) == 0 {
		panic("core: MinGlobal of empty composite timestamp")
	}
	m := s[0].Global
	for _, t := range s[1:] {
		if t.Global < m {
			m = t.Global
		}
	}
	return m
}

// Less is the paper's chosen strict partial order "<" on composite
// timestamps (Definition 5.3(2)):
//
//	T(e1) < T(e2)  ⇔  ∀ t2 ∈ T(e2) ∃ t1 ∈ T(e1): t1 < t2
//
// Section 5.1 derives this as one of only two least-restricted orderings
// that are transitive and irreflexive (Theorem 5.2); the ∃∃ variant is not
// transitive and the ∀∀ and min-based variants are strictly more
// restricted (see altorder.go).
//
// Evaluated as a single O(n+m) merge pass (see merge.go) when the inputs
// are large and both have the canonical at-most-one-component-per-site
// shape of a valid SetStamp; other inputs take the quadratic reference
// path — below mergeThreshold the scan's early exits and the integer-first
// Stamp.Less beat the merge's mandatory site-ordering walk, and on
// degenerate sets behaviour must be unchanged.
func (s SetStamp) Less(u SetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].Less(u[0])
	}
	if (len(s) > mergeThreshold || len(u) > mergeThreshold) && siteStrict(s) && siteStrict(u) {
		return lessMerge(s, u)
	}
	return lessRef(s, u)
}

// mergeThreshold is the component count above which the relations switch
// from the early-exiting quadratic scans to the O(n+m) merge passes.  The
// scans win below it: a typical call either finds a witness in the first
// element or refutes on the first probe, paying a handful of integer
// comparisons, while the merge must always walk both site sequences and
// pay the siteStrict gate's string comparisons up front.  Above it the
// guaranteed-linear merge takes over before the n·m worst case can bite.
// Theorem 5.1 bounds a valid set by the site count, so sets this large
// only appear in wide deployments.  Max/MaxInto are not thresholded: their
// merge emits sorted output directly, which beats the reference's
// sort+dedup at every size (BenchmarkSetStampAlgebra).
const mergeThreshold = 16

// ConcurrentWith is "~" on composite timestamps (Definition 5.3(1)): every
// component of one set is concurrent with every component of the other.
// Like Less, it runs as one merge pass on canonically shaped inputs.
func (s SetStamp) ConcurrentWith(u SetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].Concurrent(u[0])
	}
	if (len(s) > mergeThreshold || len(u) > mergeThreshold) && siteStrict(s) && siteStrict(u) {
		return concurrentMerge(s, u)
	}
	return concurrentRef(s, u)
}

// IncomparableWith is "≬" (Definition 5.3(3)): none of <, > or ~ holds.
// Unlike primitive stamps — where Proposition 4.2(3) gives trichotomy —
// composite timestamps can be genuinely incomparable; the paper's Section
// 5.1 example has T(e1) ≬ T(e2) ≬ T(e3).
func (s SetStamp) IncomparableWith(u SetStamp) bool {
	return !s.Less(u) && !u.Less(s) && !s.ConcurrentWith(u)
}

// WeakLE is the weaker-less-than-or-equal relation "⪯" on composite
// timestamps (Definition 5.4): every component pair satisfies the primitive
// ⪯.  Theorem 5.3 proves the characterization
//
//	T(e1) ⪯ T(e2)  ⇔  T(e1) ~ T(e2) or T(e1) < T(e2)
//
// for valid (mutually concurrent) composite timestamps, which makes the
// definition consistent with the primitive ⪯ on singletons.
// Like Less, it runs as one merge pass on canonically shaped inputs.
func (s SetStamp) WeakLE(u SetStamp) bool {
	if len(s) == 0 || len(u) == 0 {
		return false
	}
	if len(s) == 1 && len(u) == 1 {
		return s[0].WeakLE(u[0])
	}
	if (len(s) > mergeThreshold || len(u) > mergeThreshold) && siteStrict(s) && siteStrict(u) {
		return weakLEMerge(s, u)
	}
	return weakLERef(s, u)
}

// SetRelation classifies the temporal relationship between two composite
// timestamps.
type SetRelation int

const (
	// SetBefore: s < u under Definition 5.3(2).
	SetBefore SetRelation = iota
	// SetAfter: u < s.
	SetAfter
	// SetConcurrent: s ~ u under Definition 5.3(1).
	SetConcurrent
	// SetIncomparable: none of the above (Definition 5.3(3)).
	SetIncomparable
)

func (r SetRelation) String() string {
	switch r {
	case SetBefore:
		return "<"
	case SetAfter:
		return ">"
	case SetConcurrent:
		return "~"
	case SetIncomparable:
		return "≬"
	default:
		return fmt.Sprintf("SetRelation(%d)", int(r))
	}
}

// Relate classifies s against u.  For valid composite timestamps at most
// one of <, >, ~ holds (a consequence of Theorem 5.2 and the definitions);
// < and > are checked first so that invalid inputs degrade predictably.
func (s SetStamp) Relate(u SetStamp) SetRelation {
	switch {
	case s.Less(u):
		return SetBefore
	case u.Less(s):
		return SetAfter
	case s.ConcurrentWith(u):
		return SetConcurrent
	default:
		return SetIncomparable
	}
}

// JoinConcurrent implements Definition 5.7: the join of two concurrent
// composite timestamps is their set union with duplicates eliminated.  It
// panics if the inputs are not concurrent — callers must dispatch through
// Max, which selects the applicable joining procedure.
func JoinConcurrent(a, b SetStamp) SetStamp {
	if !a.ConcurrentWith(b) {
		panic(fmt.Sprintf("core: JoinConcurrent of non-concurrent timestamps %s and %s", a, b))
	}
	return unionDominant(a, b)
}

// JoinIncomparable implements Definition 5.8: the join of two incomparable
// composite timestamps keeps, from each set, the stamps not happening
// before any stamp of the other set — the "latest" information of both.
//
// Note: the published text reads "{ts ∈ T(e1) such that ∃ts2 ∈ T(e2),
// ts < ts2} ∪ …", but keeping *dominated* stamps contradicts both the
// stated intent ("keep the latest information") and Theorem 5.4
// (Max(T1,T2) = max(T1 ∪ T2)); the negation was evidently dropped in
// typesetting.  We implement ¬∃, which is exactly what Theorem 5.4 forces,
// and the property test TestMaxOperatorEqualsMaxOfUnion pins it down.
func JoinIncomparable(a, b SetStamp) SetStamp {
	if !a.IncomparableWith(b) {
		panic(fmt.Sprintf("core: JoinIncomparable of comparable timestamps %s and %s", a, b))
	}
	return unionDominant(a, b)
}

// unionDominant returns max(a ∪ b) as a fresh slice: one merge pass on
// canonically shaped inputs (the result comes out sorted and deduplicated
// with no post-pass), the pairwise reference scan otherwise.
func unionDominant(a, b SetStamp) SetStamp {
	if siteStrict(a) && siteStrict(b) {
		return unionDominantMerge(make(SetStamp, 0, len(a)+len(b)), a, b)
	}
	return unionDominantRef(a, b)
}

// Max is the operator of Definition 5.9 that propagates composite
// timestamps up the event graph, implemented as Theorem 5.4 characterizes
// it: Max(a, b) = max(a ∪ b), the set of stamps of either input not
// happening before any stamp of the other.
//
// Reproduction note: Definition 5.9 as printed returns the *whole* later
// set when the inputs are comparable, but that is not always max(a ∪ b):
// with a = {(s1,5,50),(s2,6,69)} and b = {(s3,7,75)} we have a < b (the
// ∀∃ order only needs one witness per element of b), yet (s2,6,69) is
// concurrent with (s3,7,75) and so survives in max(a ∪ b).  The printed
// definition and Theorem 5.4 therefore disagree on such inputs.  We follow
// the theorem — it is the form actually used to prove the result is a
// valid composite timestamp, it keeps all "latest" information, and it
// makes Max associative (so MaxAll is fold-order independent).  The
// literal printed definition is preserved as MaxLiteral59 and the
// discrepancy is pinned by a regression test.
func Max(a, b SetStamp) SetStamp {
	switch {
	case len(a) == 0:
		return b.Clone()
	case len(b) == 0:
		return a.Clone()
	default:
		return unionDominant(a, b)
	}
}

// MaxShared is Max without the unconditional Clone on the empty-input
// fast paths: when one input is empty the other is returned as-is,
// aliased rather than copied.  It is the right call on hot paths that
// treat SetStamps as immutable after construction (the convention
// everywhere in this codebase — the algebra only ever returns fresh
// sets); use Max when the caller needs an independently mutable result.
func MaxShared(a, b SetStamp) SetStamp {
	switch {
	case len(a) == 0:
		return b
	case len(b) == 0:
		return a
	default:
		return unionDominant(a, b)
	}
}

// MaxInto computes Max(a, b) into dst's backing array (truncating dst
// first) and returns the resulting slice, growing it only when capacity
// runs out — the scratch-reuse form of the Definition 5.9 operator for
// callers that fold many sets.  dst must not overlap a or b.
func MaxInto(dst, a, b SetStamp) SetStamp {
	dst = dst[:0]
	switch {
	case len(a) == 0:
		return append(dst, b...)
	case len(b) == 0:
		return append(dst, a...)
	}
	if siteStrict(a) && siteStrict(b) {
		return unionDominantMerge(dst, a, b)
	}
	return append(dst, unionDominantRef(a, b)...)
}

// MaxLiteral59 implements Definition 5.9 exactly as printed: the later set
// when the inputs are comparable under the composite <, otherwise the
// join.  It exists to document where the printed definition diverges from
// Theorem 5.4; production code uses Max.
func MaxLiteral59(a, b SetStamp) SetStamp {
	switch {
	case len(a) == 0:
		return b.Clone()
	case len(b) == 0:
		return a.Clone()
	case b.Less(a):
		return a.Clone()
	case a.Less(b):
		return b.Clone()
	default:
		return unionDominant(a, b)
	}
}

// MaxAll folds Max over any number of composite timestamps.  By Theorem
// 5.4 and associativity of max-of-union, the result is max of the union of
// all components regardless of fold order.  The fold ping-pongs between
// two right-sized scratch buffers via MaxInto, so the whole chain costs at
// most two allocations however many sets are folded; the result never
// aliases an input.
func MaxAll(sets ...SetStamp) SetStamp {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0].Clone()
	}
	total := 0
	for _, s := range sets {
		total += len(s) // the union bounds every intermediate result
	}
	var bufs [2]SetStamp
	acc := sets[0]
	k := 0
	for _, s := range sets[1:] {
		if bufs[k] == nil {
			bufs[k] = make(SetStamp, 0, total)
		}
		acc = MaxInto(bufs[k], acc, s)
		k = 1 - k
	}
	return acc
}
