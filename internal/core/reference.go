package core

// This file retains the direct quantifier-for-quantifier transcriptions of
// the paper's composite-timestamp relations and joins — the O(n·m) ∀∃/∀∀
// pairwise scans and the O(n²) maxima scan that setstamp.go used before the
// single-pass site-merge algorithms of merge.go replaced them on the hot
// path.  They serve two purposes:
//
//  1. Semantics of record: each function is the literal reading of its
//     definition (5.1, 5.3, 5.4, 5.9), with no structural assumptions, so
//     the differential property tests in diff_test.go can assert the merge
//     algorithms agree with the definitions on every input — valid,
//     invalid, adversarial.
//  2. Fallback: the merge algorithms require the canonical shape that
//     Proposition 4.2(5) and Theorem 5.1 guarantee for valid composite
//     timestamps (sorted, at most one component per site).  Inputs that
//     fail the cheap shape check (see siteStrict) are routed here, so the
//     exported relations behave identically on degenerate inputs.
//
// None of these functions is reachable from a hot path on valid timestamps.

// lessRef is Definition 5.3(2) verbatim: ∀ t2 ∈ u ∃ t1 ∈ s: t1 < t2.
func lessRef(s, u SetStamp) bool {
	for _, t2 := range u {
		found := false
		for _, t1 := range s {
			if t1.Less(t2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// concurrentRef is Definition 5.3(1) verbatim: every component of one set
// is concurrent with every component of the other.
func concurrentRef(s, u SetStamp) bool {
	for _, t1 := range s {
		for _, t2 := range u {
			if !t1.Concurrent(t2) {
				return false
			}
		}
	}
	return true
}

// weakLERef is Definition 5.4 verbatim: every component pair satisfies the
// primitive ⪯.
func weakLERef(s, u SetStamp) bool {
	for _, t1 := range s {
		for _, t2 := range u {
			if !t1.WeakLE(t2) {
				return false
			}
		}
	}
	return true
}

// maxSetRef is Definition 5.1 verbatim: the stamps of ST not happening
// before any other stamp of ST, deduplicated and canonically ordered.
func maxSetRef(stamps []Stamp) SetStamp {
	out := make(SetStamp, 0, len(stamps))
outer:
	for i, t := range stamps {
		for j, u := range stamps {
			if i != j && t.Less(u) {
				continue outer // t is dominated; not a maximum
			}
		}
		out = append(out, t)
	}
	SortCanonical(out)
	return dedupCanonical(out)
}

// unionDominantRef is max(a ∪ b) computed pairwise: components of a
// dominated by some component of b are dropped and vice versa.  Within a
// valid SetStamp no component dominates another, so cross-set checks
// suffice; on invalid inputs this matches Theorem 5.4's max-of-union read
// of the Max operator, which is what the merge path reproduces.
func unionDominantRef(a, b SetStamp) SetStamp {
	out := make(SetStamp, 0, len(a)+len(b))
	for _, t := range a {
		if !dominatedBy(t, b) {
			out = append(out, t)
		}
	}
	for _, t := range b {
		if !dominatedBy(t, a) {
			out = append(out, t)
		}
	}
	SortCanonical(out)
	return dedupCanonical(out)
}

func dominatedBy(t Stamp, s SetStamp) bool {
	for _, u := range s {
		if t.Less(u) {
			return true
		}
	}
	return false
}
