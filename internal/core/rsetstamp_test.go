package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// rosterN builds a roster of n sites s00..s(n-1).
func rosterN(n int) *Roster {
	ids := make([]SiteID, n)
	for i := range ids {
		ids[i] = SiteID(fmt.Sprintf("s%02d", i))
	}
	return NewRoster(ids)
}

// randValidSet builds a random *valid* SetStamp over the roster's sites:
// random member stamps folded through MaxSet, which canonicalizes and
// keeps only the mutually concurrent maxima — the only shape the interned
// algebra accepts (engine-constructed sets always have it).
func randValidSet(rng *rand.Rand, r *Roster) SetStamp {
	k := 1 + rng.Intn(5)
	stamps := make([]Stamp, k)
	for i := range stamps {
		g := int64(rng.Intn(6))
		stamps[i] = Stamp{
			Site:   r.ids[rng.Intn(r.Len())],
			Global: g,
			Local:  g*10 + int64(rng.Intn(10)),
		}
	}
	return MaxSet(stamps)
}

func intern(t *testing.T, r *Roster, s SetStamp) RSetStamp {
	t.Helper()
	rs, ok := r.AppendCanon(nil, s)
	if !ok {
		t.Fatalf("AppendCanon rejected roster-member set %s", s)
	}
	if !siteStrictR(rs) {
		t.Fatalf("interned set not siteStrict: %v (from %s)", rs, s)
	}
	return rs
}

// TestRSetStampRelationsMatchSetStamp pins the interned relations against
// the string SetStamp algebra — which is itself pinned against the
// quadratic reference.go transcriptions by diff_test.go — on random valid
// sets.  This is the differential chain that lets string SiteIDs survive
// only at the wire/rosterless boundary.
func TestRSetStampRelationsMatchSetStamp(t *testing.T) {
	r := rosterN(7)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4000; trial++ {
		a := randValidSet(rng, r)
		b := randValidSet(rng, r)
		ra := intern(t, r, a)
		rb := intern(t, r, b)
		if got, want := ra.Less(rb), a.Less(b); got != want {
			t.Fatalf("Less mismatch: %s vs %s: interned %v, string %v", a, b, got, want)
		}
		if got, want := ra.ConcurrentWith(rb), a.ConcurrentWith(b); got != want {
			t.Fatalf("ConcurrentWith mismatch: %s vs %s: interned %v, string %v", a, b, got, want)
		}
		if got, want := ra.WeakLE(rb), a.WeakLE(b); got != want {
			t.Fatalf("WeakLE mismatch: %s vs %s: interned %v, string %v", a, b, got, want)
		}
		// Reference transcription cross-check on the same pair: the
		// interned path must agree with reference.go directly, not just
		// through the string fast path.
		if got, want := ra.Less(rb), lessRef(a, b); got != want {
			t.Fatalf("Less vs reference mismatch: %s vs %s: interned %v, ref %v", a, b, got, want)
		}
	}
}

// TestRMaxIntoMatchesMax pins the interned Max fold: RMaxInto then
// materialization must produce byte-for-byte the set Max produces on the
// string forms (the property the pooled composite constructor relies on
// for deterministic eventlogs).
func TestRMaxIntoMatchesMax(t *testing.T) {
	r := rosterN(7)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4000; trial++ {
		a := randValidSet(rng, r)
		b := randValidSet(rng, r)
		ra := intern(t, r, a)
		rb := intern(t, r, b)
		folded := RMaxInto(nil, ra, rb)
		got := r.AppendStamps(nil, folded)
		want := Max(a, b)
		if !got.Equal(want) {
			t.Fatalf("Max mismatch: %s vs %s: interned %s, string %s", a, b, got, want)
		}
		if !siteStrictR(folded) {
			t.Fatalf("RMaxInto result not canonical: %v", folded)
		}
	}
}

// TestRSetStampMaxGlobalComponent pins the release-key component choice:
// same winner as the string form, including ties (earliest in canonical
// order).
func TestRSetStampMaxGlobalComponent(t *testing.T) {
	r := rosterN(7)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		s := randValidSet(rng, r)
		rs := intern(t, r, s)
		got := rs.MaxGlobalComponent()
		want := s.MaxGlobalComponent()
		if r.ids[got.Site] != want.Site || got.Global != want.Global || got.Local != want.Local {
			t.Fatalf("MaxGlobalComponent mismatch on %s: interned %v, string %v", s, got, want)
		}
	}
}

// TestAppendCanonRejectsForeignSites pins the rosterless boundary: a set
// containing a non-member site cannot be interned and stays in string
// form.
func TestAppendCanonRejectsForeignSites(t *testing.T) {
	r := rosterN(3)
	s := SetStamp{{Site: "s00", Global: 1, Local: 10}, {Site: "zz", Global: 1, Local: 11}}
	if got, ok := r.AppendCanon(nil, s); ok {
		t.Fatalf("AppendCanon accepted foreign site: %v", got)
	}
	// Partial progress must be discarded: reusing the same dst must not
	// leak the components interned before the rejection.
	dst := make(RSetStamp, 0, 4)
	out, ok := r.AppendCanon(dst, s)
	if ok || len(out) != 0 {
		t.Fatalf("AppendCanon left partial output: %v ok=%v", out, ok)
	}
}
