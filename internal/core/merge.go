package core

// Single-pass implementations of the composite-timestamp algebra.
//
// A valid SetStamp is canonically ordered and — because its components are
// mutually concurrent and same-site concurrency collapses to simultaneity
// (Proposition 4.2(5), Theorem 5.1) — carries at most one component per
// site.  That shape turns every relation of Definition 5.3/5.4 and the Max
// operator of Definition 5.9 into a site-merge problem:
//
//   - A same-site pair compares by local tick alone (Definition 4.7), and
//     the unique per-site component is found by walking the two sorted
//     sets in lockstep.
//   - A cross-site pair compares only through the one-granule guard band
//     on globals, so "is any cross-site component of S before/after t?"
//     reduces to the minimum/maximum global of S over sites other than
//     t.Site — answerable in O(1) from a two-best aggregate (min/max plus
//     the min/max over the remaining sites) computed in one pass.
//
// Every relation therefore costs O(n+m) and Max builds its output in one
// merge with no sort, versus the O(n·m) pairwise scans retained in
// reference.go.  Inputs that do not have the valid shape (checked by
// siteStrict) are routed to the reference implementations, so exported
// behaviour is identical on arbitrary inputs; the differential property
// tests in diff_test.go pin that down.

import "strings"

// siteStrict reports whether s is sorted with strictly increasing sites —
// the shape every valid SetStamp has (canonical order with at most one
// component per site).  It is the O(n) gate in front of the merge
// algorithms; a false return routes the caller to the quadratic reference
// path so invalid inputs degrade in behaviour-preserving fashion.
func siteStrict(s SetStamp) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].Site >= s[i].Site {
			return false
		}
	}
	return true
}

// crossAgg answers "min/max global among components at sites other than
// X" in O(1) for any X.  It keeps the overall min/max global with its
// site, plus the min/max over components at the remaining sites: if X is
// not the achiever's site the overall extreme applies, otherwise the
// second-best (which by construction is achieved at a different site).
type crossAgg struct {
	min1, max1       int64
	minSite, maxSite SiteID
	min2, max2       int64
	hasMin2, hasMax2 bool
}

// aggregate builds the cross-site aggregate in one pass.  s must be
// non-empty.  It tolerates repeated sites (MaxSet feeds it arbitrary
// sorted multisets): the invariant maintained is that min2/max2 are the
// extremes over components whose site differs from minSite/maxSite.
func aggregate(s SetStamp) crossAgg {
	a := crossAgg{
		min1: s[0].Global, max1: s[0].Global,
		minSite: s[0].Site, maxSite: s[0].Site,
	}
	for _, t := range s[1:] {
		g := t.Global
		switch {
		case t.Site == a.minSite:
			if g < a.min1 {
				a.min1 = g
			}
		case g < a.min1:
			// The displaced min bounds everything seen so far and sits at
			// a different site than t, so it is the new second-best.
			a.min2, a.hasMin2 = a.min1, true
			a.min1, a.minSite = g, t.Site
		case !a.hasMin2 || g < a.min2:
			a.min2, a.hasMin2 = g, true
		}
		switch {
		case t.Site == a.maxSite:
			if g > a.max1 {
				a.max1 = g
			}
		case g > a.max1:
			a.max2, a.hasMax2 = a.max1, true
			a.max1, a.maxSite = g, t.Site
		case !a.hasMax2 || g > a.max2:
			a.max2, a.hasMax2 = g, true
		}
	}
	return a
}

// aggregateStrict is aggregate for siteStrict inputs, whose sites are all
// distinct: the same-site accumulation case of aggregate can never fire,
// so the two-best maintenance needs no site comparison at all — achiever
// sites are recorded for the boundary queries below but never compared
// here.  s must be non-empty.
func aggregateStrict(s SetStamp) crossAgg {
	a := crossAgg{
		min1: s[0].Global, max1: s[0].Global,
		minSite: s[0].Site, maxSite: s[0].Site,
	}
	for _, t := range s[1:] {
		g := t.Global
		if g < a.min1 {
			a.min2, a.hasMin2 = a.min1, true
			a.min1, a.minSite = g, t.Site
		} else if !a.hasMin2 || g < a.min2 {
			a.min2, a.hasMin2 = g, true
		}
		if g > a.max1 {
			a.max2, a.hasMax2 = a.max1, true
			a.max1, a.maxSite = g, t.Site
		} else if !a.hasMax2 || g > a.max2 {
			a.max2, a.hasMax2 = g, true
		}
	}
	return a
}

// crossBelow reports whether some component at a site other than site has
// global < bound.  Integer-first: the site string is consulted only when
// min1 alone straddles the bound.  If min2 < bound then two components do,
// and whichever of the two achievers the query site matches (it can match
// at most one: their sites differ whenever min2 exists via displacement,
// and if both extremes sit at one site then min2 was accumulated from a
// different site by construction), the other is a cross-site witness.
func crossBelow(a *crossAgg, site SiteID, bound int64) bool {
	if a.min1 >= bound {
		return false
	}
	if a.hasMin2 && a.min2 < bound {
		return true
	}
	return a.minSite != site
}

// crossAbove is the mirror of crossBelow: some cross-site global > bound.
func crossAbove(a *crossAgg, site SiteID, bound int64) bool {
	if a.max1 <= bound {
		return false
	}
	if a.hasMax2 && a.max2 > bound {
		return true
	}
	return a.maxSite != site
}

// lessMerge is Definition 5.3(2) — ∀ t2 ∈ u ∃ t1 ∈ s: t1 < t2 — in one
// merge pass.  Both inputs must be siteStrict and non-empty.  For each t2
// the witness, if any, is either s's component at t2's site with a smaller
// local tick, or any cross-site component with global < t2.Global − 1;
// the latter exists iff the cross-site minimum does.
//
//sentinel:hotpath
func lessMerge(s, u SetStamp) bool {
	agg := aggregateStrict(s)
	i := 0
	for _, t2 := range u {
		for i < len(s) && s[i].Site < t2.Site {
			i++
		}
		if i < len(s) && s[i].Site == t2.Site && s[i].Local < t2.Local {
			continue // same-site witness (Definition 4.7, local order)
		}
		if crossBelow(&agg, t2.Site, t2.Global-1) {
			continue // cross-site witness (one-granule guard band)
		}
		return false
	}
	return true
}

// concurrentMerge is Definition 5.3(1) — all cross-set pairs concurrent —
// in one merge pass.  A same-site pair is concurrent iff simultaneous
// (equal locals); a cross-site pair iff the globals are within one
// granule, so it suffices that no cross-site extreme of s breaks the band
// around each t2.  Both inputs must be siteStrict and non-empty.
//
//sentinel:hotpath
func concurrentMerge(s, u SetStamp) bool {
	agg := aggregateStrict(s)
	i := 0
	for _, t2 := range u {
		for i < len(s) && s[i].Site < t2.Site {
			i++
		}
		if i < len(s) && s[i].Site == t2.Site && s[i].Local != t2.Local {
			return false // same-site pair that is not simultaneous
		}
		if crossBelow(&agg, t2.Site, t2.Global-1) {
			return false // some t1 happens before t2
		}
		if crossAbove(&agg, t2.Site, t2.Global+1) {
			return false // t2 happens before some t1
		}
	}
	return true
}

// weakLEMerge is Definition 5.4 — ∀∀ t1 ⪯ t2, equivalently no pair with
// t2 < t1 (Proposition 4.2(4)) — in one merge pass over s against the
// aggregate of u.  Both inputs must be siteStrict and non-empty.
//
//sentinel:hotpath
func weakLEMerge(s, u SetStamp) bool {
	agg := aggregateStrict(u)
	j := 0
	for _, t1 := range s {
		for j < len(u) && u[j].Site < t1.Site {
			j++
		}
		if j < len(u) && u[j].Site == t1.Site && u[j].Local < t1.Local {
			return false // same-site t2 before t1
		}
		if crossBelow(&agg, t1.Site, t1.Global-1) {
			return false // cross-site t2 before t1
		}
	}
	return true
}

// crossDominated reports whether t is dominated by some cross-site
// component summarized by agg: a global more than one granule above t's.
func crossDominated(t Stamp, agg *crossAgg) bool {
	return crossAbove(agg, t.Site, t.Global+1)
}

// unionDominantMerge appends max(a ∪ b) — Theorem 5.4's reading of the
// Definition 5.9 Max operator — to dst in one merge pass and returns the
// extended slice.  Both inputs must be siteStrict and non-empty; dst must
// not alias either input.  The merge emits survivors in canonical order
// directly (no sort, no dedup pass): a component is dropped iff the other
// set's component at the same site has a larger local tick, or the other
// set's cross-site maximum exceeds its global by more than one granule.
//
//sentinel:hotpath
func unionDominantMerge(dst, a, b SetStamp) SetStamp {
	aggA, aggB := aggregateStrict(a), aggregateStrict(b)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ta, tb := a[i], b[j]
		// One runtime string compare per step instead of two: the merge
		// branches on the sign of a single site comparison.
		switch c := strings.Compare(string(ta.Site), string(tb.Site)); {
		case c < 0:
			if !crossDominated(ta, &aggB) {
				dst = append(dst, ta)
			}
			i++
		case c > 0:
			if !crossDominated(tb, &aggA) {
				dst = append(dst, tb)
			}
			j++
		default: // one component each at the same site
			i, j = i+1, j+1
			aliveA := ta.Local >= tb.Local && !crossDominated(ta, &aggB)
			aliveB := tb.Local >= ta.Local && !crossDominated(tb, &aggA)
			switch {
			case aliveA && aliveB:
				// Simultaneous (equal locals): both survive; emit in
				// canonical order, collapsing exact duplicates.
				if c := CompareCanonical(ta, tb); c == 0 {
					dst = append(dst, ta)
				} else if c < 0 {
					dst = append(dst, ta, tb)
				} else {
					dst = append(dst, tb, ta)
				}
			case aliveA:
				dst = append(dst, ta)
			case aliveB:
				dst = append(dst, tb)
			}
		}
	}
	for ; i < len(a); i++ {
		if !crossDominated(a[i], &aggB) {
			dst = append(dst, a[i])
		}
	}
	for ; j < len(b); j++ {
		if !crossDominated(b[j], &aggA) {
			dst = append(dst, b[j])
		}
	}
	return dst
}
