package core

import (
	"testing"
)

func TestLessSameSiteByLocal(t *testing.T) {
	a := Stamp{Site: "s", Global: 5, Local: 50}
	b := Stamp{Site: "s", Global: 5, Local: 51}
	if !a.Less(b) {
		t.Errorf("same-site %s < %s should hold by local tick", a, b)
	}
	if b.Less(a) {
		t.Errorf("same-site %s < %s must not hold", b, a)
	}
}

func TestLessSameSiteEqualLocal(t *testing.T) {
	a := Stamp{Site: "s", Global: 5, Local: 50}
	b := Stamp{Site: "s", Global: 5, Local: 50}
	if a.Less(b) || b.Less(a) {
		t.Errorf("equal same-site stamps must not be ordered")
	}
	if !a.Simultaneous(b) {
		t.Errorf("equal same-site stamps must be simultaneous")
	}
}

func TestLessCrossSiteNeedsTwoGranuleGap(t *testing.T) {
	// Definition 4.7: distinct sites order only when
	// global1 < global2 − 1g_g, i.e. a gap of at least 2 granules.
	cases := []struct {
		g1, g2 int64
		want   bool
	}{
		{5, 5, false},
		{5, 6, false}, // one granule apart: concurrent
		{5, 7, true},  // two granules apart: ordered
		{5, 100, true},
		{6, 5, false},
		{7, 5, false},
	}
	for _, c := range cases {
		a := Stamp{Site: "x", Global: c.g1, Local: c.g1 * 10}
		b := Stamp{Site: "y", Global: c.g2, Local: c.g2 * 10}
		if got := a.Less(b); got != c.want {
			t.Errorf("cross-site globals %d,%d: Less = %v, want %v", c.g1, c.g2, got, c.want)
		}
	}
}

func TestSimultaneousRequiresSameSite(t *testing.T) {
	a := Stamp{Site: "x", Global: 5, Local: 50}
	b := Stamp{Site: "y", Global: 5, Local: 50}
	if a.Simultaneous(b) {
		t.Errorf("cross-site stamps are never simultaneous")
	}
	if !a.Concurrent(b) {
		t.Errorf("cross-site same-global stamps are concurrent")
	}
}

func TestConcurrentIsReflexiveAndSymmetric(t *testing.T) {
	a := Stamp{Site: "x", Global: 5, Local: 50}
	b := Stamp{Site: "y", Global: 6, Local: 60}
	if !a.Concurrent(a) {
		t.Errorf("~ must be reflexive")
	}
	if a.Concurrent(b) != b.Concurrent(a) {
		t.Errorf("~ must be symmetric")
	}
}

func TestConcurrentNotTransitivePaperCounterexample(t *testing.T) {
	// Proposition 4.2(6): globals 1, 2, 3 at distinct sites.
	t1, t2, t3 := Prop42CounterexampleGlobals()
	if !t1.Concurrent(t2) {
		t.Fatalf("%s ~ %s expected", t1, t2)
	}
	if !t2.Concurrent(t3) {
		t.Fatalf("%s ~ %s expected", t2, t3)
	}
	if t1.Concurrent(t3) {
		t.Fatalf("%s ~ %s must NOT hold: ~ is not transitive", t1, t3)
	}
	if !t1.Less(t3) {
		t.Fatalf("%s < %s expected (gap of two granules)", t1, t3)
	}
}

func TestWeakLEDefinition(t *testing.T) {
	a := Stamp{Site: "x", Global: 1, Local: 10}
	b := Stamp{Site: "y", Global: 2, Local: 20}
	c := Stamp{Site: "z", Global: 9, Local: 90}
	if !a.WeakLE(b) {
		t.Errorf("concurrent stamps satisfy ⪯")
	}
	if !a.WeakLE(c) {
		t.Errorf("ordered stamps satisfy ⪯")
	}
	if c.WeakLE(a) {
		t.Errorf("⪯ must fail when strictly after")
	}
}

func TestRelateClassification(t *testing.T) {
	same := Stamp{Site: "s", Global: 3, Local: 30}
	cases := []struct {
		name string
		a, b Stamp
		want Relation
	}{
		{"before", Stamp{"a", 1, 10}, Stamp{"b", 5, 50}, Before},
		{"after", Stamp{"b", 5, 50}, Stamp{"a", 1, 10}, After},
		{"concurrent", Stamp{"a", 3, 30}, Stamp{"b", 4, 40}, Concurrent},
		{"simultaneous", same, same, Simultaneous},
		{"same-site-order", Stamp{"s", 3, 30}, Stamp{"s", 3, 31}, Before},
	}
	for _, c := range cases {
		if got := c.a.Relate(c.b); got != c.want {
			t.Errorf("%s: Relate(%s, %s) = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestRelationString(t *testing.T) {
	cases := map[Relation]string{Before: "<", After: ">", Simultaneous: "=", Concurrent: "~"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Relation %d String = %q, want %q", int(r), got, want)
		}
	}
	if got := Relation(99).String(); got != "Relation(99)" {
		t.Errorf("unknown relation String = %q", got)
	}
}

func TestDeriveStamp(t *testing.T) {
	// The Section 5.1 worked example: local tick 91548276 at ratio 10
	// yields global 9154827.
	s := DeriveStamp("k", 91548276, Paper51Ratio)
	if s.Global != 9154827 {
		t.Errorf("DeriveStamp global = %d, want 9154827", s.Global)
	}
	if s.Local != 91548276 || s.Site != "k" {
		t.Errorf("DeriveStamp did not preserve site/local: %s", s)
	}
}

func TestDeriveStampNegativeLocalFloors(t *testing.T) {
	s := DeriveStamp("k", -1, 10)
	if s.Global != -1 {
		t.Errorf("DeriveStamp(-1) global = %d, want -1 (floor division)", s.Global)
	}
	s = DeriveStamp("k", -10, 10)
	if s.Global != -1 {
		t.Errorf("DeriveStamp(-10) global = %d, want -1", s.Global)
	}
}

func TestDeriveStampPanicsOnBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("DeriveStamp with ratio 0 must panic")
		}
	}()
	DeriveStamp("k", 1, 0)
}

func TestCompareCanonicalTotalOrder(t *testing.T) {
	a := Stamp{Site: "a", Global: 1, Local: 10}
	b := Stamp{Site: "a", Global: 1, Local: 11}
	c := Stamp{Site: "b", Global: 0, Local: 5}
	if CompareCanonical(a, b) >= 0 {
		t.Errorf("canonical a < b by local")
	}
	if CompareCanonical(b, c) >= 0 {
		t.Errorf("canonical site a < site b")
	}
	if CompareCanonical(a, a) != 0 {
		t.Errorf("canonical equal")
	}
	if CompareCanonical(c, a) <= 0 {
		t.Errorf("canonical reverse")
	}
	d := Stamp{Site: "a", Global: 2, Local: 10}
	if CompareCanonical(a, d) >= 0 || CompareCanonical(d, a) <= 0 {
		t.Errorf("canonical ties broken by global")
	}
}

func TestStampString(t *testing.T) {
	s := Stamp{Site: "k", Global: 9154827, Local: 91548276}
	if got, want := s.String(), "(k, 9154827, 91548276)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFormatStamps(t *testing.T) {
	got := FormatStamps([]Stamp{{Site: "a", Global: 1, Local: 10}, {Site: "b", Global: 2, Local: 20}})
	want := "{(a, 1, 10), (b, 2, 20)}"
	if got != want {
		t.Errorf("FormatStamps = %q, want %q", got, want)
	}
	if got := FormatStamps(nil); got != "{}" {
		t.Errorf("FormatStamps(nil) = %q, want {}", got)
	}
}

func TestSortCanonical(t *testing.T) {
	ts := []Stamp{{Site: "b", Global: 2, Local: 20}, {Site: "a", Global: 9, Local: 90}, {Site: "a", Global: 1, Local: 10}}
	SortCanonical(ts)
	if ts[0].Site != "a" || ts[0].Local != 10 || ts[1].Local != 90 || ts[2].Site != "b" {
		t.Errorf("SortCanonical wrong order: %v", ts)
	}
}
