// Package core implements the timestamp algebra of Yang & Chakravarthy,
// "Formal Semantics of Composite Events for Distributed Environments"
// (ICDE 1999): distributed primitive timestamps and their temporal
// relations (Section 4), distributed composite timestamps as sets of
// mutually concurrent "latest" primitive stamps (Section 5), the
// least-restricted strict partial order on those sets, the weaker
// less-than-or-equal relation, open and closed intervals, and the Max
// operator used to propagate timestamps through a distributed event graph.
//
// All global times are expressed in integer multiples of the global
// granularity g_g, so the paper's "T(e1).global < T(e2).global − 1g_g"
// becomes a plain integer comparison with −1.  Local times are integer
// local clock ticks.  The package is pure algebra: it never reads a clock
// (see internal/clock for the simulated time base that produces stamps).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// SiteID identifies a site in the distributed system.
type SiteID string

// Stamp is a distributed primitive event timestamp (Definition 4.6): the
// triple (site, global, local) where site is the site of occurrence, local
// is the local clock tick l_k(e) and global is the derived global time
// g_k(e) = TRUNC_{g_g}(clock_k(l_k)) in units of g_g.
type Stamp struct {
	Site   SiteID
	Global int64
	Local  int64
}

// String renders the stamp as the paper's triple, e.g. "(k, 9154827, 91548276)".
//
//lint:allow hotalloc — rendering is inherently allocating; hot paths only format behind an Active() tracer gate or on error
func (t Stamp) String() string {
	return fmt.Sprintf("(%s, %d, %d)", string(t.Site), t.Global, t.Local)
}

// DeriveStamp builds a stamp whose global component is derived from the
// local tick with the given ratio g_g / g (local ticks per global tick),
// using integer-division TRUNC as fixed by the paper.  The worked example
// of Section 5.1 has ratio 10 (g = 1/100s, g_g = 1/10s).
func DeriveStamp(site SiteID, local int64, ratio int64) Stamp {
	if ratio <= 0 {
		panic(fmt.Sprintf("core: non-positive local-per-global ratio %d", ratio))
	}
	g := local / ratio
	if local < 0 && local%ratio != 0 {
		g--
	}
	return Stamp{Site: site, Global: g, Local: local}
}

// Less reports the happen-before relation "<" of Definition 4.7: stamps at
// the same site compare by local tick; stamps at distinct sites compare by
// global time with a one-granule guard band (t.global < u.global − 1g_g),
// which is the 2g_g-restricted temporal order lifted to timestamps.
//
// The integer tests run first: when the guard-band test and the local-tick
// test agree, both the same-site and the cross-site branch return that
// answer, so the site comparison — the only string operation, and by far
// the expensive one on this hottest of paths — is skipped.  For
// clock-derived stamps the two tests disagree only inside the ±1-granule
// band, so most calls never touch the site at all.
func (t Stamp) Less(u Stamp) bool {
	cross := t.Global < u.Global-1
	local := t.Local < u.Local
	if cross == local {
		return cross
	}
	if t.Site == u.Site {
		return local
	}
	return cross
}

// Simultaneous reports the "=" relation of Definition 4.7: same site and
// same local tick.  Unlike Concurrent, Simultaneous is a true equivalence
// relation (transitive, reflexive, symmetric).
func (t Stamp) Simultaneous(u Stamp) bool {
	return t.Site == u.Site && t.Local == u.Local
}

// Concurrent reports the "~" relation of Definition 4.7: neither stamp
// happens before the other.  Concurrency is reflexive and symmetric but not
// transitive, so it is not an equivalence relation (the paper's globals
// 1, 2, 3 serve as the counterexample).
func (t Stamp) Concurrent(u Stamp) bool {
	return !t.Less(u) && !u.Less(t)
}

// WeakLE reports the weakened less-than-or-equal relation "⪯" of
// Definition 4.8: t ⪯ u iff t < u or t ~ u.  Any two primitive stamps are
// comparable under ⪯ (Proposition 4.2(4)), but ⪯ is not transitive.
func (t Stamp) WeakLE(u Stamp) bool {
	return t.Less(u) || t.Concurrent(u)
}

// Relation classifies the temporal relationship between two primitive
// stamps.  By Proposition 4.2(3) exactly one of Before, After, Concurrent
// holds (Simultaneous is the same-site special case of Concurrent and is
// reported in preference to it).
type Relation int

const (
	// Before means the receiver happens before the argument (t < u).
	Before Relation = iota
	// After means the argument happens before the receiver (u < t).
	After
	// Simultaneous means same site, same local tick (t = u).
	Simultaneous
	// Concurrent means neither happens before the other and the stamps
	// are not simultaneous.
	Concurrent
)

func (r Relation) String() string {
	switch r {
	case Before:
		return "<"
	case After:
		return ">"
	case Simultaneous:
		return "="
	case Concurrent:
		return "~"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Relate classifies t against u.
func (t Stamp) Relate(u Stamp) Relation {
	switch {
	case t.Less(u):
		return Before
	case u.Less(t):
		return After
	case t.Simultaneous(u):
		return Simultaneous
	default:
		return Concurrent
	}
}

// CompareCanonical is a total order on stamps used only for canonical
// storage (sorting set components, map keys, deterministic printing).  It
// has no temporal meaning: the paper's point is precisely that distributed
// time is only partially ordered.
func CompareCanonical(a, b Stamp) int {
	if a.Site != b.Site {
		if a.Site < b.Site {
			return -1
		}
		return 1
	}
	if a.Local != b.Local {
		if a.Local < b.Local {
			return -1
		}
		return 1
	}
	if a.Global != b.Global {
		if a.Global < b.Global {
			return -1
		}
		return 1
	}
	return 0
}

// SortCanonical sorts stamps in canonical (site, local, global) order.
func SortCanonical(ts []Stamp) {
	sort.Slice(ts, func(i, j int) bool { return CompareCanonical(ts[i], ts[j]) < 0 })
}

// FormatStamps renders a slice of stamps as the paper writes composite
// timestamps: "{(k, 9154827, 91548276), (m, 9154827, 91548277)}".
//
//lint:allow hotalloc — rendering is inherently allocating; hot paths only format behind an Active() tracer gate or on error
func FormatStamps(ts []Stamp) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range ts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
