package sitemap

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "sitemap"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/ddetect":  true,
		"repro/internal/detector": true,
		"repro/internal/network":  true,
		"repro/internal/core":     false,
		"repro/internal/workload": false,
		"repro/internal/obs":      false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
