// Package fixture exercises the sitemap analyzer: map types keyed by
// core.SiteID are flagged wherever they appear, ranging over one is
// flagged separately, and dense roster-indexed slices, string-keyed
// registries and //lint:allow-ed sparse maps are not.
package fixture

import "repro/internal/core"

type badHolder struct {
	frontiers map[core.SiteID]int64 // want `sitemap: map keyed by core.SiteID`
}

func badParam(m map[core.SiteID]bool) int { // want `sitemap: map keyed by core.SiteID`
	n := 0
	for id := range m { // want `sitemap: ranging over a map keyed by core.SiteID`
		if id != "" {
			n++
		}
	}
	return n
}

func badMake() {
	_ = make(map[core.SiteID][]byte, 8) // want `sitemap: map keyed by core.SiteID`
}

func good(roster *core.Roster, needers map[string][]core.SiteID) []int64 {
	// Dense per-site state: indexed by core.Site, iterated in roster
	// (canonical site-ID) order by construction.
	frontiers := make([]int64, roster.Len())
	for i := range frontiers {
		frontiers[i] = int64(i)
	}
	// String-keyed registries holding ID slices are fine.
	for _, ids := range needers["typ"] {
		_ = ids
	}
	return frontiers
}

func allowed() {
	off := map[core.SiteID]int{} //lint:allow sitemap — fixture: off-roster stragglers, membership unknown at seal
	off["z"] = 1
}
