// Package sitemap forbids maps keyed by core.SiteID in the packages that
// run on the hot detect/transport path.
//
// PR 6 interned site identity: the roster (core.Roster) assigns every
// member a dense core.Site index at seal, and ddetect, network and the
// detector address per-site state with roster-indexed slices — O(1)
// access with no string hashing, and iteration over 0..Len()-1 is
// automatically in canonical site-ID order.  A `map[core.SiteID]`
// re-introduces both costs and, worse, invites randomized-order
// iteration on paths whose output must be bit-for-bit deterministic
// (mapiter catches the range; this analyzer catches the data structure
// that makes the range tempting).
//
// The analyzer flags every map type whose key is core.SiteID — in
// declarations, struct fields, parameters, composite literals and
// make() calls — plus every `range` over such a map, in
// internal/ddetect, internal/detector and internal/network.  String-keyed
// maps holding []core.SiteID values (e.g. the pre-seal needers registry)
// are fine; so are maps keyed by the dense core.Site when sparseness
// genuinely beats a slice — annotate those //lint:allow sitemap with the
// argument.  Test files are exempt: tests may build small ID-keyed sets
// for assertions.
package sitemap

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the sitemap checker.
var Analyzer = &analysis.Analyzer{
	Name:      "sitemap",
	Doc:       "forbid map[core.SiteID] in roster-indexed packages (ddetect, detector, network); intern through core.Roster and use dense slices",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	for _, p := range []string{
		"repro/internal/ddetect",
		"repro/internal/detector",
		"repro/internal/network",
	} {
		if path == p || strings.HasPrefix(path, p+"/") || strings.HasPrefix(path, p+"_test") {
			return true
		}
	}
	return false
}

// isSiteID reports whether t is the named type repro/internal/core.SiteID.
// The fixture package imports core through its own module path, so the
// match is on the "internal/core" path suffix plus the type name.
func isSiteID(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "SiteID" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/core" || strings.HasSuffix(p, "/internal/core")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				kt := pass.TypeOf(n.Key)
				if kt != nil && isSiteID(kt) {
					pass.Reportf(n.Pos(),
						"sitemap: map keyed by core.SiteID; intern the ID through core.Roster at seal and index a dense []T by core.Site instead (see reorderer.sources), or //lint:allow sitemap with why a sparse string-keyed map is required")
				}
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if m, ok := t.Underlying().(*types.Map); ok && isSiteID(m.Key()) {
					pass.Reportf(n.Pos(),
						"sitemap: ranging over a map keyed by core.SiteID; iterate roster indexes 0..Len()-1 instead — that order is the canonical site-ID order by construction")
				}
			}
			return true
		})
	}
	return nil
}
