// Package hotalloc enforces the hot-path allocation discipline: code
// reachable from a //sentinel:hotpath root must not execute per-call
// allocating constructs, because those paths run once per event and the
// 16-site e2e benchmark already attributes its ~11k allocs/op to exactly
// such per-occurrence garbage (ROADMAP item 5; PAPERS.md: Vaidya &
// Kulkarni treat per-event stamp allocations as the scaling bottleneck).
//
// Roots are declared, not inferred — the crank stage drivers
// (internal/ddetect/stages.go), the merge kernels (internal/core/merge.go),
// the reorderer, network.Bus send/receive and the detector combination
// paths carry the marker — because the hottest edges (pipeline.Stage
// ticks, pool callbacks) are interface calls no static call graph
// resolves.  From the roots the analyzer closes over same-package static
// calls; cross-package callees contribute through the facts layer: every
// module package exports a per-function allocation summary, and a call
// from a hot function to a function whose summary is non-empty is
// flagged at the call site with the inherited provenance.
//
// Constructs flagged inside hot functions:
//
//   - calls into package fmt (formatting state + interface boxing of
//     every argument);
//   - string concatenation, with a sharper message when an operand is a
//     core.SiteID (keys belong on dense core.Site indexes, see DESIGN.md
//     §2g), and allocating string conversions ([]byte/[]rune ↔ string,
//     numeric → string);
//   - per-call map/slice/chan construction: composite literals and make;
//   - closures capturing loop variables (a fresh variable cell plus a
//     fresh closure every iteration since Go 1.22);
//   - interface boxing of composite timestamps: a core.Stamp or
//     core.SetStamp passed to an interface-typed parameter, field or
//     variable.
//
// One-time lazy initialization, error/panic paths and trace-gated code
// are legitimate; sanction them with //lint:allow hotalloc and the
// reason.  The compiler's own view of the same discipline is gated by
// cmd/escapegate against escape.manifest — this analyzer explains
// violations structurally, the gate catches whatever construct taxonomy
// misses.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/interproc"
)

const name = "hotalloc"

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "forbid per-call allocating constructs (fmt, string concat, map/slice literals, loop-var closures, stamp boxing) in functions reachable from //sentinel:hotpath roots, interprocedurally via call-graph facts",
	AppliesTo: appliesTo,
	FactsFor:  factsFor,
	Run:       run,
	Facts:     computeFacts,
}

// appliesTo: the packages that declare hot-path roots.
func appliesTo(path string) bool {
	path = facts.NormPath(path)
	for _, p := range []string{
		"repro/internal/core",
		"repro/internal/ddetect",
		"repro/internal/detector",
		"repro/internal/network",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// factsFor: allocation summaries are computed module-wide so any package
// a hot path calls into carries them.
func factsFor(path string) bool {
	path = facts.NormPath(path)
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis") &&
		!strings.HasPrefix(path, "repro/cmd/sentinel-lint")
}

// alloc is one flagged construct.
type alloc struct {
	pos  token.Pos
	what string
}

type result struct {
	graph *interproc.PkgGraph
	// direct lists each function's flagged constructs, allow-filtered.
	direct map[*interproc.FuncNode][]alloc
}

func analyze(pass *analysis.Pass) *result {
	res := &result{
		graph:  interproc.Graph(pass),
		direct: make(map[*interproc.FuncNode][]alloc),
	}
	for _, n := range res.graph.Funcs {
		if pass.Allows.AllowedFunc(name, n.Decl) {
			continue
		}
		res.direct[n] = collect(pass, n.Decl)
	}
	// Summaries: a function's exported fact is its own constructs, or —
	// when it has none — the first one inherited through its calls.
	rep := make(map[*interproc.FuncNode]string, len(res.graph.Funcs))
	for n, list := range res.direct {
		if len(list) > 0 {
			rep[n] = list[0].what + " at " + interproc.ShortPos(pass.Fset, list[0].pos)
		}
	}
	summary := interproc.Propagate(res.graph, pass.Fset, rep, func(fn *types.Func) string {
		f, _ := pass.Facts.Lookup(fn)
		if len(f.Allocs) == 0 {
			return ""
		}
		return f.Allocs[0]
	}, func(pos token.Pos) bool { return pass.Allows.Allowed(name, pass.Fset, pos) })
	own := pass.Facts.Own(pass.Pkg.Path())
	for _, n := range res.graph.Funcs {
		list := res.direct[n]
		var out []string
		for _, a := range list {
			if len(out) == facts.MaxAllocs {
				break
			}
			out = append(out, a.what+" at "+interproc.ShortPos(pass.Fset, a.pos))
		}
		if len(out) == 0 && summary[n] != "" {
			out = []string{summary[n]}
		}
		if len(out) > 0 {
			own.Update(facts.Key(n.Obj), func(f *facts.Fact) { f.Allocs = out })
		}
	}
	return res
}

func computeFacts(pass *analysis.Pass) error {
	analyze(pass)
	return nil
}

func run(pass *analysis.Pass) error {
	res := analyze(pass)
	hot := res.graph.HotSet()
	for _, n := range res.graph.Funcs {
		if !hot[n] {
			continue
		}
		for _, a := range res.direct[n] {
			pass.Reportf(a.pos,
				"hotalloc: %s in hot-path function %s (reachable from a //sentinel:hotpath root): this allocates per call — hoist, pool or precompute it, or //lint:allow hotalloc with a reason",
				a.what, n.Name())
		}
		for _, c := range n.Calls {
			if res.graph.Node(c.Callee) != nil {
				continue // local callee: itself hot, reported directly
			}
			f, ok := pass.Facts.Lookup(c.Callee)
			if !ok || len(f.Allocs) == 0 {
				continue
			}
			pkg := ""
			if p := c.Callee.Pkg(); p != nil {
				pkg = p.Name() + "."
			}
			pass.Reportf(c.Pos,
				"hotalloc: call to %s%s from hot-path function %s allocates (%s); the hot-path discipline follows the call graph — use an Into/Shared variant, pool in the callee, or //lint:allow hotalloc with a reason",
				pkg, c.Callee.Name(), n.Name(), strings.Join(f.Allocs, "; "))
		}
	}
	return nil
}

// collect walks one function declaration for allocating constructs,
// filtering each through the //lint:allow index (which records the
// suppression for the stale-allow audit).
func collect(pass *analysis.Pass, fd *ast.FuncDecl) []alloc {
	var out []alloc
	add := func(pos token.Pos, format string, args ...any) {
		if pass.Allows.Allowed(name, pass.Fset, pos) {
			return
		}
		out = append(out, alloc{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	loopVars := collectLoopVars(pass, fd)
	ast.Inspect(fd, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			checkCall(pass, node, add)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringKind(pass.TypeOf(node)) {
				if id := siteIDOperand(pass, node); id != "" {
					add(node.OpPos, "string concatenation of a %s (keys belong on dense core.Site indexes)", id)
				} else {
					add(node.OpPos, "string concatenation")
				}
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isStringKind(pass.TypeOf(node.Lhs[0])) {
				add(node.TokPos, "string concatenation (+=)")
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(node)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				add(node.Pos(), "map literal (%s)", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			case *types.Slice:
				add(node.Pos(), "slice literal (%s)", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		case *ast.FuncLit:
			if v := capturedLoopVar(pass, node, loopVars); v != "" {
				add(node.Pos(), "closure capturing loop variable %q (a fresh variable cell and closure every iteration)", v)
			}
		}
		return true
	})
	return out
}

// checkCall flags fmt calls, make of map/slice/chan, allocating string
// conversions, and stamp arguments boxed into interface parameters.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	// Conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypeOf(call.Args[0])
		if from == nil {
			return
		}
		switch {
		case isStringKind(to) && isByteOrRuneSlice(from):
			add(call.Pos(), "%s conversion from %s (copies per call)", types.TypeString(to, types.RelativeTo(pass.Pkg)), from.Underlying())
		case isByteOrRuneSlice(to) && isStringKind(from):
			add(call.Pos(), "%s conversion from string (copies per call)", to.Underlying())
		case isStringKind(to) && isIntegerKind(from):
			add(call.Pos(), "string conversion of an integer (allocates, and almost never what a hot path means — did you want the roster's SiteID?)")
		}
		return
	}
	// fmt calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				add(call.Pos(), "fmt.%s call (formatting state plus boxing of every argument)", sel.Sel.Name)
				return
			}
		}
	}
	// make(map/slice/chan).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) > 0 {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.IsType() {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					add(call.Pos(), "make of %s", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
				case *types.Slice:
					add(call.Pos(), "make of %s", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
				case *types.Chan:
					add(call.Pos(), "make of %s", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
				}
			}
			return
		}
	}
	// Stamp boxing: a core.Stamp/core.SetStamp argument bound to an
	// interface-typed parameter.
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		at := pass.TypeOf(arg)
		if !isStampType(at) {
			continue
		}
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(min(i, sig.Params().Len()-1)).Type()
		case sig.Variadic():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if types.IsInterface(pt) {
			add(arg.Pos(), "%s boxed into an interface parameter (per-call heap copy of the stamp)", types.TypeString(at, types.RelativeTo(pass.Pkg)))
		}
	}
}

// collectLoopVars gathers the objects declared as range/for loop
// variables anywhere in the declaration.
func collectLoopVars(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(fd, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.RangeStmt:
			if node.Tok == token.DEFINE {
				if node.Key != nil {
					def(node.Key)
				}
				if node.Value != nil {
					def(node.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := node.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					def(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// capturedLoopVar returns the name of a loop variable the literal
// captures (declared outside the literal, used inside), "" if none.
func capturedLoopVar(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) string {
	if len(loopVars) == 0 {
		return ""
	}
	found := ""
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !loopVars[obj] {
			return true
		}
		// Declared outside the literal?
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			found = id.Name
		}
		return true
	})
	return found
}

func isStringKind(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerKind(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isStampType reports whether t is core.Stamp or core.SetStamp.
func isStampType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "repro/internal/core" {
		return false
	}
	return obj.Name() == "Stamp" || obj.Name() == "SetStamp"
}

// siteIDOperand reports whether either concat operand is a core.SiteID.
func siteIDOperand(pass *analysis.Pass, be *ast.BinaryExpr) string {
	for _, e := range []ast.Expr{be.X, be.Y} {
		if n, ok := pass.TypeOf(e).(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/core" && obj.Name() == "SiteID" {
				return "core.SiteID"
			}
		}
	}
	return ""
}
