// Package fixture exercises the hotalloc analyzer.  crank is a declared
// //sentinel:hotpath root; step inherits the discipline by local
// reachability; cold has the same constructs and stays silent (facts
// only).  One construct per line: the analyzer anchors each diagnostic
// to the construct, and the harness matches one want per line.
package fixture

import (
	"fmt"

	"repro/internal/core"
)

var (
	global string
	hooks  []func() int
)

func box(v any) {}

func enqueue(f func() int) { hooks = append(hooks, f) }

//sentinel:hotpath
func crank(id core.SiteID, name string, n int, stamps []core.Stamp) {
	fmt.Println(name)     // want `hotalloc: fmt\.Println call`
	_ = id + ":suffix"    // want `hotalloc: string concatenation of a core\.SiteID`
	global += name        // want `hotalloc: string concatenation \(\+=\)`
	_ = []byte(name)      // want `hotalloc: \[\]byte conversion from string`
	_ = string(n)         // want `hotalloc: string conversion of an integer`
	_ = map[string]int{}  // want `hotalloc: map literal \(map\[string\]int\)`
	_ = make([]int, 0, 4) // want `hotalloc: make of \[\]int`
	for _, s := range stamps {
		box(s) // want `core\.Stamp boxed into an interface parameter`
	}
	for i := 0; i < n; i++ {
		enqueue(func() int { return i }) // want `hotalloc: closure capturing loop variable "i"`
	}
	_ = make(map[int]bool) //lint:allow hotalloc — fixture: sanctioned one-time table
	step(name)
}

// step is hot by reachability from crank, not by marker.
func step(name string) {
	_ = fmt.Sprintf("%s!", name) // want `hotalloc: fmt\.Sprintf call .* in hot-path function step`
}

// cold carries the same constructs but is unreachable from any root:
// no diagnostics, only facts.
func cold(name string) {
	fmt.Println(name)
	_ = map[string]int{}
	_ = name + "!"
}
