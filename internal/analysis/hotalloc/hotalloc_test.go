package hotalloc

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "hotalloc"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":             true,
		"repro/internal/ddetect":          true,
		"repro/internal/detector":         true,
		"repro/internal/network":          true,
		"repro/internal/ddetect [d.test]": true,
		"repro/internal/wire":             false,
		"repro/internal/workload":         false,
		"repro/internal/analysis":         false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestFactsFor(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/wire":            true,
		"repro/internal/event":           true,
		"repro/cmd/ablation":             true,
		"repro/internal/analysis/facts":  false,
		"repro/cmd/sentinel-lint":        false,
		"fmt":                            false,
		"golang.org/x/tools/go/analysis": false,
	} {
		if got := Analyzer.FactsFor(path); got != want {
			t.Errorf("FactsFor(%q) = %v, want %v", path, got, want)
		}
	}
}
