// Package interproc gives analyzers a conservative per-package view of
// the call graph, the bridge between one package's syntax and the
// module-wide facts layer (see the facts package):
//
//   - Graph collects every non-test function declaration with its
//     statically resolvable call sites (direct calls and method calls
//     with a concrete receiver; calls through function values and
//     interfaces are invisible to it, which is why hot-path roots are
//     declared explicitly rather than inferred);
//   - HotSet closes the //sentinel:hotpath root markers over those local
//     calls, yielding the functions that inherit the hot-path
//     discipline;
//   - Propagate runs the bottom-up fixpoint that turns direct findings
//     plus callee facts into per-function summaries, the thing each
//     analyzer exports for its dependents.
//
// The conservatism cuts the sound direction for this suite's use: a
// dynamic call that escapes the graph can only *hide* a violation, never
// invent one, and the constructs the analyzers care about on dynamic
// paths (closures themselves, interface boxing) are flagged directly at
// the creation site by hotalloc.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// HotMarker is the magic comment that declares a function a hot-path
// root: every function it can reach through static calls inherits the
// hot-path allocation discipline enforced by the hotalloc analyzer.
const HotMarker = "sentinel:hotpath"

// Call is one statically resolved call site.
type Call struct {
	Pos    token.Pos
	Callee *types.Func
}

// FuncNode is one function declaration and its outgoing static calls.
type FuncNode struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Calls holds the statically resolvable call sites in source order,
	// both intra-package and cross-package.
	Calls []Call
	// Hot marks a declared //sentinel:hotpath root.
	Hot bool
}

// Name renders the node for diagnostics: "F" or "T.M".
func (n *FuncNode) Name() string {
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return n.Decl.Name.Name
	}
	t := n.Decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + n.Decl.Name.Name
	}
	return n.Decl.Name.Name
}

// PkgGraph is the package's function set with static call edges.
type PkgGraph struct {
	Funcs []*FuncNode
	byObj map[*types.Func]*FuncNode
}

// Node resolves a function object to its node, nil for functions outside
// the graph (other packages, test files, function literals).
func (g *PkgGraph) Node(obj *types.Func) *FuncNode { return g.byObj[obj] }

// Graph builds the call graph over the pass's non-test files.  Function
// literals are folded into their enclosing declaration: a call made
// inside a closure is attributed to the function that created the
// closure, which over-approximates reachability in exactly the direction
// the analyzers need.
func Graph(pass *analysis.Pass) *PkgGraph {
	g := &PkgGraph{byObj: make(map[*types.Func]*FuncNode)}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Decl: fd, Obj: obj, Hot: hasHotMarker(fd)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.Info, call); callee != nil {
					node.Calls = append(node.Calls, Call{Pos: call.Pos(), Callee: callee})
				}
				return true
			})
			g.Funcs = append(g.Funcs, node)
			g.byObj[obj] = node
		}
	}
	return g
}

// StaticCallee resolves a call expression to the *types.Func it must
// invoke, or nil for dynamic calls, builtins and conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// A method call through an interface receiver has no
				// static callee.
				if types.IsInterface(recvType(sel)) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Qualified package function: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func recvType(sel *types.Selection) types.Type {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// hasHotMarker reports whether the declaration's doc comment carries the
// //sentinel:hotpath directive.
func hasHotMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if body == HotMarker || strings.HasPrefix(body, HotMarker+" ") {
			return true
		}
	}
	return false
}

// HotSet closes the package's //sentinel:hotpath roots over local static
// calls: the returned set holds every function in the graph reachable
// from a root, roots included.  Cross-package reachability is not walked
// here — a callee in another package contributes through its exported
// facts at the call site instead.
func (g *PkgGraph) HotSet() map[*FuncNode]bool {
	hot := make(map[*FuncNode]bool)
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if hot[n] {
			return
		}
		hot[n] = true
		for _, c := range n.Calls {
			if callee := g.byObj[c.Callee]; callee != nil {
				visit(callee)
			}
		}
	}
	for _, n := range g.Funcs {
		if n.Hot {
			visit(n)
		}
	}
	return hot
}

// Propagate computes the transitive single-finding summary for every
// function in the graph: direct[n] if the function itself violates, else
// the provenance inherited from the first callee — local (fixpoint over
// the package) or external (resolved through the external lookup, i.e.
// imported facts) — that does.  Calls the allowed filter sanctions (a
// //lint:allow on the call line) do not propagate: the directive covers
// the call, so the caller inherits nothing through it.  The result maps
// every node to its summary string, "" meaning clean.
func Propagate(g *PkgGraph, fset *token.FileSet, direct map[*FuncNode]string, external func(*types.Func) string, allowed func(token.Pos) bool) map[*FuncNode]string {
	out := make(map[*FuncNode]string, len(g.Funcs))
	for _, n := range g.Funcs {
		out[n] = direct[n]
	}
	// External facts are stable during the fixpoint; resolve them once.
	for _, n := range g.Funcs {
		if out[n] != "" {
			continue
		}
		for _, c := range n.Calls {
			if g.byObj[c.Callee] != nil || (allowed != nil && allowed(c.Pos)) {
				continue
			}
			if why := external(c.Callee); why != "" {
				out[n] = calledVia(fset, c, why)
				break
			}
		}
	}
	// Local fixpoint: inherit from in-package callees until stable.  The
	// summary is monotone (set once, never cleared), so this terminates
	// in at most |Funcs| rounds even with recursion.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Funcs {
			if out[n] != "" {
				continue
			}
			for _, c := range n.Calls {
				callee := g.byObj[c.Callee]
				if callee == nil || out[callee] == "" || (allowed != nil && allowed(c.Pos)) {
					continue
				}
				out[n] = calledVia(fset, c, out[callee])
				changed = true
				break
			}
		}
	}
	return out
}

// calledVia prefixes a callee's summary with the call-site hop, keeping
// the chain readable while bounding its growth.
func calledVia(fset *token.FileSet, c Call, why string) string {
	name := c.Callee.Name()
	if pkg := c.Callee.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	// Collapse nested hops: keep the first hop and the root cause.
	if i := strings.Index(why, " via "); i >= 0 {
		if j := strings.LastIndex(why, ": "); j > i {
			why = why[j+2:]
		}
	}
	return "via " + name + " (" + ShortPos(fset, c.Pos) + "): " + why
}

// ShortPos renders file:line with the directory stripped, for the
// compact provenance strings carried in facts and diagnostics.
func ShortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
