// Package fixture exercises the stagefx analyzer: bus mutation, shared
// Stats writes and handler fan-out are flagged outside publish-stage
// context; publishStage methods, local Stats snapshots and
// //lint:allow-ed crank stages are not.
package fixture

import (
	"repro/internal/ddetect"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

type sys struct {
	bus   *network.Bus
	stats ddetect.Stats
}

func (s *sys) detectTick(h detector.Handler, o *event.Occurrence) {
	s.bus.Send(0, "a", "b", nil) // want `stagefx: Bus\.Send outside the publish stage`
	s.stats.Raised++             // want `stagefx: Stats mutation outside the publish stage`
	h(o)                         // want `stagefx: subscriber fan-out`
}

func (s *sys) drain() {
	_ = s.bus.DrainDue(0, nil) // want `stagefx: Bus\.DrainDue outside the publish stage`
	s.stats.LatencySum = 1     // want `stagefx: Stats mutation outside the publish stage`
}

type publishStage struct{ sys *sys }

func (p *publishStage) Tick(h detector.Handler, o *event.Occurrence) {
	p.sys.bus.Send(0, "a", "b", nil)
	p.sys.stats.Detections++
	h(o)
}

// crankStage is serialized on the crank goroutine by construction.
//
//lint:allow stagefx — fixture: crank-stage helper, runs before the detect barrier
func crankStage(s *sys) {
	s.stats.Heartbeats++
}

func snapshot(s *sys) ddetect.Stats {
	st := s.stats
	st.Raised++ // local copy, not shared state
	return st
}
