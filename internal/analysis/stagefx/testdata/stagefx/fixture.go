// Package fixture exercises the stagefx analyzer: bus sends outside the
// coalescer flush, bus drains outside the transport stage, shared Stats
// writes and handler fan-out outside publish-stage context are flagged;
// linkCoalescer sends, transportStage drains, publishStage effects, local
// Stats snapshots and //lint:allow-ed crank stages are not.
package fixture

import (
	"repro/internal/ddetect"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

type sys struct {
	bus   *network.Bus
	stats ddetect.Stats
}

func (s *sys) detectTick(h detector.Handler, o *event.Occurrence) {
	s.bus.Send(0, "a", "b", nil) // want `stagefx: Bus\.Send outside the coalescer flush`
	s.stats.Raised++             // want `stagefx: Stats mutation outside the publish stage`
	h(o)                         // want `stagefx: subscriber fan-out`
}

func (s *sys) drain() {
	_ = s.bus.DrainDue(0, nil) // want `stagefx: Bus\.DrainDue outside the transport stage`
	s.stats.LatencySum = 1     // want `stagefx: Stats mutation outside the publish stage`
}

type publishStage struct{ sys *sys }

// The publish stage may fan out to handlers and count, but since PR 4 it
// must hand traffic to the coalescer rather than the bus.
func (p *publishStage) Tick(h detector.Handler, o *event.Occurrence) {
	p.sys.bus.Send(0, "a", "b", nil) // want `stagefx: Bus\.Send outside the coalescer flush`
	p.sys.stats.Detections++
	h(o)
}

type linkCoalescer struct{ sys *sys }

// flush is the designated bus sender: every send method is clean here.
func (c *linkCoalescer) flush() {
	c.sys.bus.Send(0, "a", "b", nil)
	c.sys.bus.SendBatch(0, "a", "b", nil, 3, 0)
	c.sys.bus.SendUnbatched(0, "a", "b", 2, func(int) any { return nil })
}

type transportStage struct{ sys *sys }

// Tick is the designated bus consumer: drains are clean here, but a send
// is not.
func (t *transportStage) Tick() {
	_ = t.sys.bus.DrainDue(0, nil)
	t.sys.bus.DeliverDue(0, func(network.Message) {})
	t.sys.bus.SendBatch(0, "a", "b", nil, 1, 0) // want `stagefx: Bus\.SendBatch outside the coalescer flush`
}

// Being the designated sender does not make the coalescer a consumer:
// drains are still transport-only.
func (c *linkCoalescer) refill() {
	_ = c.sys.bus.DrainDue(0, nil) // want `stagefx: Bus\.DrainDue outside the transport stage`
}

// crankStage is serialized on the crank goroutine by construction.
//
//lint:allow stagefx — fixture: crank-stage helper, runs before the detect barrier
func crankStage(s *sys) {
	s.stats.Heartbeats++
}

func snapshot(s *sys) ddetect.Stats {
	st := s.stats
	st.Raised++ // local copy, not shared state
	return st
}
