// Package stagefx enforces the staged-pipeline effect rule of PR 1: bus
// sends, subscriber fan-out and Stats mutation are publish-stage work.
//
// The parallel detect stage is only deterministic because workers confine
// their writes to per-site state and every shared effect — messages onto
// the network.Bus (whose seeded RNG makes send *order* part of the
// schedule), System.Stats counters, user handler invocation — happens on
// the crank goroutine in site-ID order (see the file comment of
// internal/ddetect/stages.go).  A bus send or stats increment added to
// detect-stage code compiles fine, usually even passes -race with one
// worker, and silently makes results depend on goroutine scheduling.
//
// The analyzer inspects internal/ddetect and flags the effectful
// operations —
//
//   - calls to (*network.Bus).Send / DrainDue / DeliverDue,
//   - writes to fields of ddetect.Stats,
//   - calls to detector.Handler values (subscriber fan-out),
//
// — everywhere except the publish stage itself (methods of publishStage
// and the System.forwardComposite helper it drives).  The other
// single-threaded crank stages (ingest, transport, release) perform
// effects by design, before the detect barrier; each carries a
// function-level //lint:allow stagefx stating that argument, so the
// exemption is visible where the code is.  Test files are exempt.
package stagefx

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the stagefx checker.
var Analyzer = &analysis.Analyzer{
	Name:      "stagefx",
	Doc:       "restrict bus sends, subscriber fan-out and Stats mutation to the publish stage of the detection pipeline (PR-1 determinism rule)",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	return path == "repro/internal/ddetect"
}

// publishContext reports whether fd is part of the publish stage: a
// method of publishStage, or the forwardComposite helper the publish
// stage calls for hierarchical forwarding.
func publishContext(fd *ast.FuncDecl) bool {
	if fd.Name.Name == "forwardComposite" {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "publishStage"
}

// named reports whether t (behind pointers) is the named type
// <pkgSuffix>.<name>.
func named(t types.Type, pkgSuffix, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// busMutators are the Bus methods that enqueue or dequeue traffic (and
// advance the bus's seeded RNG); read-only accessors are not effects.
var busMutators = map[string]bool{"Send": true, "DrainDue": true, "DeliverDue": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || publishContext(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && busMutators[sel.Sel.Name] {
				if t := pass.TypeOf(sel.X); t != nil && named(t, "internal/network", "Bus") {
					pass.Reportf(x.Pos(),
						"stagefx: Bus.%s outside the publish stage (in %s); shared bus traffic must be ordered on the crank goroutine after the detect barrier",
						sel.Sel.Name, fd.Name.Name)
				}
			}
			if t := pass.TypeOf(x.Fun); t != nil && named(t, "internal/detector", "Handler") {
				pass.Reportf(x.Pos(),
					"stagefx: subscriber fan-out (detector.Handler call) outside the publish stage (in %s)",
					fd.Name.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if statsWrite(pass, lhs) {
					pass.Reportf(x.Pos(),
						"stagefx: Stats mutation outside the publish stage (in %s); counters are shared state, updated on the crank goroutine only",
						fd.Name.Name)
					break
				}
			}
		case *ast.IncDecStmt:
			if statsWrite(pass, x.X) {
				pass.Reportf(x.Pos(),
					"stagefx: Stats mutation outside the publish stage (in %s); counters are shared state, updated on the crank goroutine only",
					fd.Name.Name)
			}
		}
		return true
	})
}

// statsWrite reports whether e is (or contains, as a selection chain) a
// field of a *shared* ddetect.Stats value.  Writes into a Stats that is
// itself a plain local variable (a snapshot being assembled, as in
// System.Stats) mutate nothing shared and are not effects.
func statsWrite(pass *analysis.Pass, e ast.Expr) bool {
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if t := pass.TypeOf(sel.X); t != nil && named(t, "internal/ddetect", "Stats") {
			if id, ok := sel.X.(*ast.Ident); ok {
				if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok && !v.IsField() {
					return false // local snapshot copy
				}
			}
			return true
		}
		e = sel.X
	}
}
