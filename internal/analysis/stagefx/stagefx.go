// Package stagefx enforces the staged-pipeline effect rules of PR 1
// (shared effects on the crank goroutine only) and PR 4 (bus traffic
// through the transport-flush paths only).
//
// The parallel detect stage is only deterministic because workers confine
// their writes to per-site state and every shared effect — messages onto
// the network.Bus (whose seeded RNG makes send *order* part of the
// schedule), System.Stats counters, user handler invocation — happens on
// the crank goroutine in site-ID order (see the file comment of
// internal/ddetect/stages.go).  A bus send or stats increment added to
// detect-stage code compiles fine, usually even passes -race with one
// worker, and silently makes results depend on goroutine scheduling.
// Since PR 4 the bus contract is narrower still: a tick's traffic is
// coalesced per link, so a stray direct send anywhere else would bypass
// the batching (skewing the one-draw-per-link delivery schedule that
// makes batched and unbatched runs byte-identical).
//
// The analyzer inspects internal/ddetect and flags:
//
//   - calls to the Bus send methods (Send / SendBatch / SendUnbatched)
//     outside methods of linkCoalescer — the flush is the one place
//     application traffic meets the bus;
//   - calls to the Bus drain methods (DrainDue / DeliverDue) outside
//     methods of transportStage — the one designated consumer;
//   - writes to fields of ddetect.Stats and calls of detector.Handler
//     values (subscriber fan-out) outside the publish stage (methods of
//     publishStage and the System.forwardComposite helper it drives).
//
// The other single-threaded crank stages (ingest, transport, release)
// mutate counters by design, before the detect barrier; each carries a
// function-level //lint:allow stagefx stating that argument, so the
// exemption is visible where the code is.  Test files are exempt.
package stagefx

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the stagefx checker.
var Analyzer = &analysis.Analyzer{
	Name:      "stagefx",
	Doc:       "restrict bus sends, subscriber fan-out and Stats mutation to the publish stage of the detection pipeline (PR-1 determinism rule)",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	return path == "repro/internal/ddetect"
}

// methodOf reports whether fd is a method of the named receiver type.
func methodOf(fd *ast.FuncDecl, recv string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == recv
}

// publishContext reports whether fd is part of the publish stage: a
// method of publishStage, or the forwardComposite helper the publish
// stage calls for hierarchical forwarding.
func publishContext(fd *ast.FuncDecl) bool {
	return fd.Name.Name == "forwardComposite" || methodOf(fd, "publishStage")
}

// named reports whether t (behind pointers) is the named type
// <pkgSuffix>.<name>.
func named(t types.Type, pkgSuffix, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// busSenders are the Bus methods that enqueue traffic (and advance the
// bus's seeded RNG): linkCoalescer-flush-only since PR 4.  busDrainers
// dequeue traffic: transportStage-only.  Read-only accessors are not
// effects.
var (
	busSenders = map[string]bool{
		"Send": true, "SendBatch": true, "SendUnbatched": true,
		"SendBatchSite": true, "SendUnbatchedSite": true,
	}
	busDrainers = map[string]bool{"DrainDue": true, "DeliverDue": true}
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	publish := publishContext(fd)
	sender := methodOf(fd, "linkCoalescer")
	drainer := methodOf(fd, "transportStage")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && (busSenders[sel.Sel.Name] || busDrainers[sel.Sel.Name]) {
				if t := pass.TypeOf(sel.X); t != nil && named(t, "internal/network", "Bus") {
					switch {
					case busSenders[sel.Sel.Name] && !sender:
						pass.Reportf(x.Pos(),
							"stagefx: Bus.%s outside the coalescer flush (in %s); all bus traffic goes through linkCoalescer so a tick's envelopes share one per-link frame and delay draw",
							sel.Sel.Name, fd.Name.Name)
					case busDrainers[sel.Sel.Name] && !drainer:
						pass.Reportf(x.Pos(),
							"stagefx: Bus.%s outside the transport stage (in %s); the transport stage is the bus's one designated consumer",
							sel.Sel.Name, fd.Name.Name)
					}
				}
			}
			if !publish {
				if t := pass.TypeOf(x.Fun); t != nil && named(t, "internal/detector", "Handler") {
					pass.Reportf(x.Pos(),
						"stagefx: subscriber fan-out (detector.Handler call) outside the publish stage (in %s)",
						fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if publish {
				break
			}
			for _, lhs := range x.Lhs {
				if statsWrite(pass, lhs) {
					pass.Reportf(x.Pos(),
						"stagefx: Stats mutation outside the publish stage (in %s); counters are shared state, updated on the crank goroutine only",
						fd.Name.Name)
					break
				}
			}
		case *ast.IncDecStmt:
			if !publish && statsWrite(pass, x.X) {
				pass.Reportf(x.Pos(),
					"stagefx: Stats mutation outside the publish stage (in %s); counters are shared state, updated on the crank goroutine only",
					fd.Name.Name)
			}
		}
		return true
	})
}

// statsWrite reports whether e is (or contains, as a selection chain) a
// field of a *shared* ddetect.Stats value.  Writes into a Stats that is
// itself a plain local variable (a snapshot being assembled, as in
// System.Stats) mutate nothing shared and are not effects.
func statsWrite(pass *analysis.Pass, e ast.Expr) bool {
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if t := pass.TypeOf(sel.X); t != nil && named(t, "internal/ddetect", "Stats") {
			if id, ok := sel.X.(*ast.Ident); ok {
				if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok && !v.IsField() {
					return false // local snapshot copy
				}
			}
			return true
		}
		e = sel.X
	}
}
