package stagefx

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "stagefx"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/ddetect":  true,
		"repro/internal/detector": false,
		"repro/internal/network":  false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
