// Package vetmode implements the `go vet -vettool` unit-checker protocol
// on the standard library alone — a minimal re-implementation of the
// x/tools unitchecker (which is not vendorable in this build
// environment).
//
// `go vet` type-checks nothing itself: for every package (including test
// variants) it writes a JSON config naming the source files, the import
// map and the compiler export data of every dependency, then invokes the
// vettool with that config file as its sole argument.  Run parses the
// files, type-checks them against the export data via go/importer's gc
// lookup mode, runs every applicable analyzer, and prints findings in
// the standard file:line:col format.  Exit codes follow vet convention:
// 0 clean, 1 operational error, 2 diagnostics reported.
//
// Dependencies are visited by go vet in "vetx only" mode (facts
// pre-computation).  This suite defines no facts, so those invocations
// write an empty facts file and return immediately — which is what makes
// `go vet -vettool=sentinel-lint ./...` cheap despite visiting the
// transitive closure.
package vetmode

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/analysis"
)

// Config is the JSON schema `go vet` hands the tool; field names are
// fixed by cmd/go (see cmd/go/internal/work/exec.go, vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run executes the suite for one vet config file and returns the process
// exit code.
func Run(cfgFile string, suite []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The facts file must exist for go vet's cache even though the suite
	// defines no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	var applicable []*analysis.Analyzer
	for _, a := range suite {
		if a.AppliesTo == nil || a.AppliesTo(cfg.ImportPath) {
			applicable = append(applicable, a)
		}
	}
	if len(applicable) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tcfg := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: type-check: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range applicable {
		diags, err := analysis.Run(a, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", cfg.ImportPath, a.Name, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
	}
	return exit
}

func readConfig(name string) (*Config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("vetmode: parsing %s: %v", name, err)
	}
	return cfg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintFlags implements the `-flags` query cmd/go sends before parsing
// the vet command line: a JSON list of flags the tool supports.  The
// suite is not configurable per-flag, so the list is empty.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// SortedNames returns the suite's analyzer names, for usage text.
func SortedNames(suite []*analysis.Analyzer) []string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
