// Package vetmode implements the `go vet -vettool` unit-checker protocol
// on the standard library alone — a minimal re-implementation of the
// x/tools unitchecker (which is not vendorable in this build
// environment).
//
// `go vet` type-checks nothing itself: for every package (including test
// variants) it writes a JSON config naming the source files, the import
// map and the compiler export data of every dependency, then invokes the
// vettool with that config file as its sole argument.  Run parses the
// files, type-checks them against the export data via go/importer's gc
// lookup mode, runs every applicable analyzer, and prints findings in
// the standard file:line:col format.  Exit codes follow vet convention:
// 0 clean, 1 operational error, 2 diagnostics reported.
//
// Dependencies are visited by go vet in "vetx only" mode — facts
// precomputation.  Since the interprocedural upgrade the suite really
// uses it: for module packages the tool type-checks the sources and runs
// each analyzer's Facts pass, serializing the resulting per-function
// summaries (see the facts package) to Config.VetxOutput.  cmd/go then
// hands that file to every direct importer through Config.PackageVetx.
// Because only *direct* imports' vetx files arrive, each export re-emits
// the imported facts it consumed, so the transitive closure flows one
// hop at a time.  Packages outside the module (the stdlib) export an
// empty facts file and return immediately, which keeps
// `go vet -vettool=sentinel-lint ./...` cheap despite visiting the
// transitive closure.
//
// After the suite runs on a reporting package, the shared //lint:allow
// index is audited: directives that suppressed nothing are themselves
// diagnostics (see analysis.StaleAllows), so the exception list cannot
// rot.
package vetmode

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
)

// Config is the JSON schema `go vet` hands the tool; field names are
// fixed by cmd/go (see cmd/go/internal/work/exec.go, vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run executes the suite for one vet config file and returns the process
// exit code, printing findings to stderr.
func Run(cfgFile string, suite []*analysis.Analyzer) int {
	return RunTo(os.Stderr, cfgFile, suite)
}

// RunTo is Run with the diagnostic stream injectable, for tests.
func RunTo(w io.Writer, cfgFile string, suite []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	return runConfig(w, cfg, suite)
}

func runConfig(w io.Writer, cfg *Config, suite []*analysis.Analyzer) int {
	// Which analyzers report here, and which compute facts here?
	var reporting, computing []*analysis.Analyzer
	for _, a := range suite {
		if a.AppliesTo == nil || a.AppliesTo(cfg.ImportPath) {
			reporting = append(reporting, a)
		}
		if a.Facts != nil && a.FactsFor != nil && a.FactsFor(cfg.ImportPath) {
			computing = append(computing, a)
		}
	}

	// Nothing to do for this package (stdlib, or a module package every
	// analyzer ignores): write the empty facts file go vet's cache needs
	// and return.
	if (cfg.VetxOnly && len(computing) == 0) || (len(reporting) == 0 && len(computing) == 0) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(w, err)
				return 1
			}
		}
		return 0
	}

	// Dependency facts: cmd/go hands us the vetx file of every direct
	// import; each of those re-exports its own imports' facts, closing
	// the transitive chain.
	set := facts.NewSet()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintln(w, err)
			return 1
		}
		if err := set.ImportData(data); err != nil {
			fmt.Fprintf(w, "%s: %s: %v\n", cfg.ImportPath, vetx, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				return writeVetx(w, cfg, nil)
			}
			fmt.Fprintln(w, err)
			return 1
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tcfg := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		// In facts mode a failed type-check only costs precision for the
		// dependents; exporting nothing keeps the walk alive, matching
		// SucceedOnTypecheckFailure for reporting packages.
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			return writeVetx(w, cfg, nil)
		}
		fmt.Fprintf(w, "%s: type-check: %v\n", cfg.ImportPath, err)
		return 1
	}

	// One allow index per package, shared across the suite so the
	// stale-allow audit sees every analyzer's suppressions.
	allows := analysis.CollectAllows(fset, files)

	exit := 0
	if cfg.VetxOnly {
		for _, a := range computing {
			pass := analysis.NewPass(a, fset, files, pkg, info, set, allows)
			if err := a.Facts(pass); err != nil {
				fmt.Fprintf(w, "%s: %s: %v\n", cfg.ImportPath, a.Name, err)
				exit = 1
			}
		}
		if code := writeVetx(w, cfg, set); code != 0 {
			return code
		}
		return exit
	}

	ran := make(map[*analysis.Analyzer]bool, len(reporting))
	for _, a := range reporting {
		ran[a] = true
		pass := analysis.NewPass(a, fset, files, pkg, info, set, allows)
		diags, err := analysis.RunPass(pass)
		if err != nil {
			fmt.Fprintf(w, "%s: %s: %v\n", cfg.ImportPath, a.Name, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
	}
	// Facts for the dependents of this package, from analyzers that did
	// not already export them while reporting (Run subsumes Facts).
	for _, a := range computing {
		if ran[a] {
			continue
		}
		pass := analysis.NewPass(a, fset, files, pkg, info, set, allows)
		if err := a.Facts(pass); err != nil {
			fmt.Fprintf(w, "%s: %s: %v\n", cfg.ImportPath, a.Name, err)
			exit = 1
		}
	}
	// The allow audit runs only where the full suite reported; on a
	// facts-only package a directive naming a reporting-domain analyzer
	// would be falsely stale.
	if len(reporting) > 0 {
		known := make(map[string]bool, len(suite))
		for _, a := range suite {
			known[a.Name] = true
		}
		for _, d := range allows.StaleAllows(known) {
			fmt.Fprintf(w, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
	}
	if code := writeVetx(w, cfg, set); code != 0 {
		return code
	}
	return exit
}

// writeVetx serializes the fact set (nil → empty file) to the config's
// VetxOutput, if any.
func writeVetx(w io.Writer, cfg *Config, set *facts.Set) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	var data []byte
	if set != nil {
		var err error
		if data, err = set.ExportData(); err != nil {
			fmt.Fprintln(w, err)
			return 1
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	return 0
}

func readConfig(name string) (*Config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("vetmode: parsing %s: %v", name, err)
	}
	return cfg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintFlags implements the `-flags` query cmd/go sends before parsing
// the vet command line: a JSON list of flags the tool supports.  The
// suite is not configurable per-flag, so the list is empty.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// SortedNames returns the suite's analyzer names, for usage text.
func SortedNames(suite []*analysis.Analyzer) []string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
