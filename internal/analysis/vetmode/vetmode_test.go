package vetmode

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/mapiter"
)

// listPkg is the subset of `go list -json` output the tests need to
// assemble vet configs the way cmd/go does.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
}

// scratchModule builds a throwaway module named "repro" (so the suite's
// reporting domains apply to it) with a facts-only package whose helper
// iterates a map, and a detect-path package that calls the helper.  It
// returns the per-package metadata with compiled export data.
func scratchModule(t *testing.T) map[string]*listPkg {
	t.Helper()
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.24.0\n")
	write("internal/core/helper.go", `package core

// Sum drains a counter map; iteration order is observable through
// nothing here, but the fact must still flow to callers.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`)
	write("internal/detector/top.go", `package detector

import "repro/internal/core"

// Tally inherits core.Sum's map iteration through the call graph.
func Tally(m map[string]int) int { return core.Sum(m) }
`)

	cmd := exec.Command("go", "list", "-export", "-json", "-deps", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	pkgs := make(map[string]*listPkg)
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			t.Fatal(err)
		}
		pkgs[p.ImportPath] = p
	}
	for _, path := range []string{"repro/internal/core", "repro/internal/detector"} {
		if pkgs[path] == nil || pkgs[path].Export == "" {
			t.Fatalf("go list gave no export data for %s", path)
		}
	}
	return pkgs
}

// configFor mimics the vet config cmd/go writes for one package: source
// files, identity import map, and export data for every dependency.
func configFor(t *testing.T, pkgs map[string]*listPkg, path, vetxOut string) *Config {
	t.Helper()
	p := pkgs[path]
	cfg := &Config{
		ID:          path,
		Compiler:    "gc",
		Dir:         p.Dir,
		ImportPath:  path,
		GoVersion:   "go1.24.0",
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		PackageVetx: map[string]string{},
		VetxOutput:  vetxOut,
	}
	for _, f := range p.GoFiles {
		cfg.GoFiles = append(cfg.GoFiles, filepath.Join(p.Dir, f))
	}
	for _, imp := range p.Imports {
		cfg.ImportMap[imp] = imp
	}
	for ip, dep := range pkgs {
		if ip != path && dep.Export != "" {
			cfg.PackageFile[ip] = dep.Export
		}
	}
	return cfg
}

func TestVetxFactsRoundTrip(t *testing.T) {
	pkgs := scratchModule(t)
	tmp := t.TempDir()
	suite := []*analysis.Analyzer{mapiter.Analyzer}

	// Dependency pass, as cmd/go runs it: VetxOnly on the facts-only
	// package, output serialized to its vetx file.
	coreVetx := filepath.Join(tmp, "core.vetx")
	coreCfg := configFor(t, pkgs, "repro/internal/core", coreVetx)
	coreCfg.VetxOnly = true
	var out bytes.Buffer
	if code := runConfig(&out, coreCfg, suite); code != 0 {
		t.Fatalf("core facts pass exited %d: %s", code, out.String())
	}
	data, err := os.ReadFile(coreVetx)
	if err != nil {
		t.Fatal(err)
	}
	set := facts.NewSet()
	if err := set.ImportData(data); err != nil {
		t.Fatal(err)
	}
	if dump := set.Dump(); !strings.Contains(dump, "repro/internal/core.Sum") || !strings.Contains(dump, "mapiter: range over map[string]int") {
		t.Fatalf("core vetx lacks Sum's map-iteration fact:\n%s", dump)
	}

	// Reporting pass on the dependent: the helper's fact must arrive
	// through PackageVetx and surface as a call-site diagnostic.
	topVetx := filepath.Join(tmp, "top.vetx")
	topCfg := configFor(t, pkgs, "repro/internal/detector", topVetx)
	topCfg.PackageVetx["repro/internal/core"] = coreVetx
	out.Reset()
	if code := runConfig(&out, topCfg, suite); code != 2 {
		t.Fatalf("reporting pass exited %d, want 2:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "mapiter: call to core.Sum transitively iterates a map") {
		t.Fatalf("inherited diagnostic missing:\n%s", out.String())
	}

	// The dependent's own vetx re-exports the imported facts, so a
	// second-hop consumer sees the transitive closure.
	data, err = os.ReadFile(topVetx)
	if err != nil {
		t.Fatal(err)
	}
	set2 := facts.NewSet()
	if err := set2.ImportData(data); err != nil {
		t.Fatal(err)
	}
	if dump := set2.Dump(); !strings.Contains(dump, "repro/internal/core.Sum") {
		t.Fatalf("dependent vetx does not re-export imported facts:\n%s", dump)
	}
}

func TestVetTestVariantNormalized(t *testing.T) {
	pkgs := scratchModule(t)
	tmp := t.TempDir()
	suite := []*analysis.Analyzer{mapiter.Analyzer}

	coreVetx := filepath.Join(tmp, "core.vetx")
	coreCfg := configFor(t, pkgs, "repro/internal/core", coreVetx)
	coreCfg.VetxOnly = true
	var out bytes.Buffer
	if code := runConfig(&out, coreCfg, suite); code != 0 {
		t.Fatalf("core facts pass exited %d: %s", code, out.String())
	}

	// cmd/go decorates test variants as "p [p.test]"; the analyzer
	// domains and fact lookups must see the plain path.
	topCfg := configFor(t, pkgs, "repro/internal/detector", filepath.Join(tmp, "top.vetx"))
	topCfg.ImportPath = "repro/internal/detector [repro/internal/detector.test]"
	topCfg.ID = topCfg.ImportPath
	topCfg.PackageVetx["repro/internal/core"] = coreVetx
	out.Reset()
	if code := runConfig(&out, topCfg, suite); code != 2 {
		t.Fatalf("test-variant pass exited %d, want 2:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "mapiter: call to core.Sum") {
		t.Fatalf("test-variant diagnostic missing:\n%s", out.String())
	}
}

func TestVetxOnlySkipsNonComputingPackages(t *testing.T) {
	// A stdlib-looking package no analyzer computes facts for must write
	// an empty vetx and exit clean without parsing anything.
	tmp := t.TempDir()
	vetx := filepath.Join(tmp, "fmt.vetx")
	cfg := &Config{ImportPath: "fmt", VetxOnly: true, VetxOutput: vetx}
	var out bytes.Buffer
	if code := runConfig(&out, cfg, []*analysis.Analyzer{mapiter.Analyzer}); code != 0 {
		t.Fatalf("stdlib facts pass exited %d: %s", code, out.String())
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("stdlib vetx should be empty, got %q", data)
	}
	set := facts.NewSet()
	if err := set.ImportData(data); err != nil {
		t.Fatalf("empty vetx must import cleanly: %v", err)
	}
}

func TestSucceedOnTypecheckFailure(t *testing.T) {
	tmp := t.TempDir()
	src := filepath.Join(tmp, "broken.go")
	if err := os.WriteFile(src, []byte("package broken\n\nfunc f() { undefinedIdent() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(tmp, "broken.vetx")
	cfg := &Config{
		ID:                        "repro/internal/broken",
		Compiler:                  "gc",
		ImportPath:                "repro/internal/broken",
		GoVersion:                 "go1.24.0",
		GoFiles:                   []string{src},
		ImportMap:                 map[string]string{},
		PackageFile:               map[string]string{},
		VetxOutput:                vetx,
		SucceedOnTypecheckFailure: true,
	}
	var out bytes.Buffer
	if code := runConfig(&out, cfg, []*analysis.Analyzer{mapiter.Analyzer}); code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure pass exited %d: %s", code, out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx not written on tolerated type-check failure: %v", err)
	}
}
