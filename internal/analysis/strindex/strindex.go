// Package strindex enforces the interned-dispatch discipline the PR-9
// compiler established: code reachable from a //sentinel:hotpath root in
// the detector or event packages must not index a map by a string-kinded
// key.  Per-publication dispatch walks dense event.TypeID-indexed route
// and subscriber tables (DESIGN.md §2i); a string-keyed map lookup on
// that path reintroduces per-event hashing and key comparison, which is
// exactly the cost Detector.Publish/PublishBatch were restructured to
// shed — and it tends to creep back in silently, because a map lookup
// reads as innocent.
//
// The rule is structural, not allocation-based, so hotalloc does not
// subsume it: m[k] with a string key allocates nothing, and only this
// analyzer objects.  Name→ID translation is legitimate at the declare/
// resolve boundary — those sites carry //lint:allow strindex with the
// reason, and the stale-allow audit keeps the exception list honest.
package strindex

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/interproc"
)

const name = "strindex"

// Analyzer is the interned-dispatch checker.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "forbid string-keyed map indexing in functions reachable from //sentinel:hotpath roots of the dispatch path (detector, event): interned dispatch addresses dense TypeID tables; name lookups belong on the declare/resolve boundary",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo: the packages whose hot roots form the publish/dispatch
// path.  Deliberately narrower than hotalloc's scope — the discipline is
// about dispatch structure, and only these two packages own it.
func appliesTo(path string) bool {
	path = facts.NormPath(path)
	for _, p := range []string{
		"repro/internal/detector",
		"repro/internal/event",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	graph := interproc.Graph(pass)
	hot := graph.HotSet()
	for _, n := range graph.Funcs {
		if !hot[n] || pass.Allows.AllowedFunc(name, n.Decl) {
			continue
		}
		fn := n
		ast.Inspect(fn.Decl, func(node ast.Node) bool {
			ie, ok := node.(*ast.IndexExpr)
			if !ok {
				return true
			}
			m, ok := underlyingOf(pass, ie.X).(*types.Map)
			if !ok || !isStringKind(m.Key()) {
				return true
			}
			if pass.Allows.Allowed(name, pass.Fset, ie.Pos()) {
				return true
			}
			pass.Reportf(ie.Pos(),
				"strindex: string-keyed map index (%s) in hot-path function %s (reachable from a //sentinel:hotpath root): dispatch is interned — address a dense table by event.TypeID or core.Site instead, or //lint:allow strindex with why the name lookup must stay",
				types.TypeString(pass.TypeOf(ie.X), types.RelativeTo(pass.Pkg)), fn.Name())
			return true
		})
	}
	return nil
}

// underlyingOf resolves the map operand's underlying type, nil-safe.
func underlyingOf(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypeOf(e)
	if t == nil {
		return nil
	}
	// Indexing through a map pointer auto-dereferences.
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.Underlying()
}

// isStringKind reports whether the key type is string-kinded, through
// named types (core.SiteID is a string: hashing it per event is the same
// bug wearing a type name).
func isStringKind(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
