// Package fixture exercises the strindex analyzer.  publish is a
// declared //sentinel:hotpath root; route inherits the discipline by
// local reachability; cold has the same lookups and stays silent.  Dense
// integer-indexed tables are the sanctioned shape and never flagged.
package fixture

type typeID int32

type siteID string // a named string type: hashing it per event is the same bug

type table struct {
	byName map[string][]int
	bySite map[siteID]int
	dense  [][]int
}

var sink int

//sentinel:hotpath
func publish(t *table, name string, site siteID, id typeID) {
	sink = t.byName[name][0]         // want `strindex: string-keyed map index \(map\[string\]\[\]int\) in hot-path function publish`
	if _, ok := t.byName[name]; ok { // want `strindex: string-keyed map index`
		sink++
	}
	sink += t.bySite[site] // want `strindex: string-keyed map index \(map\[siteID\]int\)`
	sink += t.dense[id][0] // dense TypeID-indexed table: the sanctioned shape
	//lint:allow strindex — fixture: sanctioned declare-time binding
	sink += t.bySite[site]
	route(t, name)
}

// route is hot by reachability from publish, not by marker.
func route(t *table, name string) {
	t.byName[name] = nil // want `strindex: string-keyed map index .* in hot-path function route`
}

// cold does the same lookups but is unreachable from any root.
func cold(t *table, name string) {
	sink = len(t.byName[name])
	delete(t.byName, name)
}
