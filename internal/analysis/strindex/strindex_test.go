package strindex

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "strindex"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/detector":          true,
		"repro/internal/event":             true,
		"repro/internal/detector [d.test]": true,
		"repro/internal/core":              false,
		"repro/internal/ddetect":           false,
		"repro/internal/workload":          false,
		"repro/internal/analysis":          false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
