// Package stampcmp forbids naive scalar comparison of timestamps outside
// internal/core.
//
// The paper's entire point is that distributed time is only partially
// ordered: primitive stamps compare through the relations of
// Definitions 4.6–4.10 (Stamp.Less, Simultaneous, Concurrent, WeakLE)
// and composite max-sets through the ∀∃ order of Definition 5.3
// (SetStamp.Less and friends).  Comparing Stamp.Global or Stamp.Local
// with <, ==, … re-introduces exactly the bogus total order the paper
// refutes — e.g. `a.Global < b.Global` silently drops the one-granule
// guard band of Definition 4.7 and misorders concurrent events.
//
// The analyzer flags, in every package except internal/core itself:
//
//   - ==/!= between core.Stamp values (use Simultaneous or
//     CompareCanonical, which name the semantics intended);
//   - any comparison of a .Global or .Local field selected from a
//     core.Stamp (go through the relation functions, or push the scalar
//     logic into a named internal/core helper where the invariant is
//     local and reviewable);
//   - ==/!= between core.SetStamp values other than nil checks (use
//     SetStamp.Equal).
//
// Non-temporal identity matches (e.g. rendering grid cells) carry a
// //lint:allow stampcmp with the argument why no temporal meaning is
// attached.  Test files are exempt, like the rest of the suite:
// assertions pin exact expected component values (`got.Local != 5`),
// which is identity checking, not temporal reasoning.
package stampcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the stampcmp checker.
var Analyzer = &analysis.Analyzer{
	Name:      "stampcmp",
	Doc:       "forbid comparing timestamp values or their Global/Local components with built-in operators outside internal/core (use the paper's relations, Defs. 4.6-4.10, 5.3)",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo covers the module except internal/core, where the relation
// functions themselves live and scalar component comparison is the point.
func appliesTo(path string) bool {
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/core") &&
		!strings.HasPrefix(path, "repro/internal/analysis")
}

var comparisons = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

// isCoreNamed reports whether t (possibly behind pointers) is the named
// type internal/core.<name>.
func isCoreNamed(t types.Type, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// stampComponent reports whether e selects the Global or Local field of a
// core.Stamp, returning the field name.
func stampComponent(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Global" && sel.Sel.Name != "Local" {
		return "", false
	}
	if t := pass.TypeOf(sel.X); t != nil && isCoreNamed(t, "Stamp") {
		return sel.Sel.Name, true
	}
	return "", false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !comparisons[be.Op] {
				return true
			}
			for _, operand := range []ast.Expr{be.X, be.Y} {
				if name, ok := stampComponent(pass, operand); ok {
					pass.Reportf(be.Pos(),
						"stampcmp: comparing Stamp.%s with %s bypasses the temporal relations of Defs. 4.6-4.10 (use Stamp.Less/Simultaneous/Concurrent/WeakLE or CompareCanonical, or move the scalar logic into internal/core)",
						name, be.Op)
					return true
				}
			}
			xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if xt == nil || yt == nil {
				return true
			}
			if isCoreNamed(xt, "Stamp") || isCoreNamed(yt, "Stamp") {
				pass.Reportf(be.Pos(),
					"stampcmp: %s on core.Stamp values has no temporal meaning (use Simultaneous for the paper's \"=\" relation, CompareCanonical for storage identity)",
					be.Op)
				return true
			}
			if (isCoreNamed(xt, "SetStamp") || isCoreNamed(yt, "SetStamp")) &&
				!isNil(pass, be.X) && !isNil(pass, be.Y) {
				pass.Reportf(be.Pos(),
					"stampcmp: %s on core.SetStamp values; use SetStamp.Equal or the Def. 5.3 relations",
					be.Op)
			}
			return true
		})
	}
	return nil
}
