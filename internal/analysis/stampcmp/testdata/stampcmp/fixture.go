// Package fixture exercises the stampcmp analyzer: raw scalar
// comparison of timestamps is flagged; the paper's relation functions,
// nil checks and //lint:allow-ed identity matches are not.
package fixture

import "repro/internal/core"

func bad(a, b core.Stamp) {
	_ = a.Global < b.Global  // want `stampcmp: comparing Stamp\.Global with <`
	_ = a.Local >= b.Local   // want `stampcmp: comparing Stamp\.Local with >=`
	_ = a.Global == int64(7) // want `stampcmp: comparing Stamp\.Global with ==`
	_ = a == b               // want `stampcmp: == on core\.Stamp values`
}

func good(a, b core.Stamp, s core.SetStamp) {
	_ = a.Less(b)
	_ = a.Simultaneous(b)
	_ = a.Concurrent(b)
	_ = s == nil
	_ = a.Site == b.Site
	_ = a.Global == b.Global //lint:allow stampcmp — fixture: identity match, no temporal meaning
}
