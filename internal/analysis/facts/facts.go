// Package facts is the serialized interprocedural layer of the analysis
// framework: per-package summaries of what each function transitively
// does, computed bottom-up in dependency order and carried between
// packages by the driver.
//
// Under the `go vet` unit-checker protocol (see vetmode) a package's
// facts travel as the vetx file named by Config.VetxOutput, and the facts
// of its dependencies arrive through Config.PackageVetx.  Because cmd/go
// only hands a tool the vetx files of a package's *direct* imports, every
// export re-emits the imported facts alongside the package's own — the
// transitive closure reaches each consumer through its first-hop deps.
// The standalone driver (cmd/sentinel-lint via load) mirrors the same
// flow in process: one Set lives across the whole walk, each package's
// own facts sealed into the imported view before its dependents run.
//
// A Fact is deliberately a summary, not a proof tree: one provenance
// string per invariant ("range over map[uint64][]envelope at
// reorder.go:204", or "calls repro/internal/core.FormatStamps: fmt.Fprintf
// at stamp.go:180") — enough for an actionable diagnostic at the call
// site that inherits it, cheap enough to serialize for every function in
// the module.  Functions with an empty Fact are simply absent.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// MaxAllocs bounds the allocation-provenance list carried per function;
// one representative per distinct construct is plenty for a diagnostic.
const MaxAllocs = 4

// Fact is the exported summary of one function.  Empty strings / nil
// slices mean "no finding"; a non-empty field carries the provenance of
// one representative violation reachable from the function.
type Fact struct {
	// Walltime: the function transitively reads ambient time or the
	// package-global math/rand state.
	Walltime string `json:"walltime,omitempty"`
	// MapIter: the function transitively ranges over a map (or a map
	// iterator), so its behaviour can depend on randomized map order.
	MapIter string `json:"mapiter,omitempty"`
	// Allocs: representative per-call allocating constructs the function
	// transitively executes (fmt calls, map/slice literals, string
	// concatenation, loop-variable closures, stamp boxing).
	Allocs []string `json:"allocs,omitempty"`
}

// Empty reports whether the fact carries no finding at all.
func (f Fact) Empty() bool {
	return f.Walltime == "" && f.MapIter == "" && len(f.Allocs) == 0
}

// Pkg maps function keys (see Key) to their facts, for one package.
type Pkg map[string]Fact

// Update applies fn to the fact under key, storing the result unless it
// is still empty.
func (p Pkg) Update(key string, fn func(*Fact)) {
	f := p[key]
	fn(&f)
	if f.Empty() {
		delete(p, key)
		return
	}
	p[key] = f
}

// Set is the cross-package fact store a driver threads through one walk:
// the imported view (facts of already-analyzed packages) plus the facts
// being computed for the current package.
type Set struct {
	imported map[string]Pkg // normalized package path → facts
	own      map[string]Pkg
}

// NewSet returns an empty store.
func NewSet() *Set {
	return &Set{imported: make(map[string]Pkg), own: make(map[string]Pkg)}
}

// NormPath strips the test-variant decoration cmd/go appends to import
// paths ("p [p.test]" → "p"), so facts computed for a variant and lookups
// against the plain path agree.
func NormPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// Key names a function within its package: "F" for a package-level
// function, "T.M" for a method with receiver type T (pointerness
// ignored — a *T method and a T method cannot collide in Go).
func Key(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name() + "." + fn.Name()
	case *types.Alias:
		return t.Obj().Name() + "." + fn.Name()
	default:
		return fn.Name()
	}
}

// Own returns the fact map being built for pkgPath (normalized),
// creating it on first use.
func (s *Set) Own(pkgPath string) Pkg {
	path := NormPath(pkgPath)
	p, ok := s.own[path]
	if !ok {
		p = make(Pkg)
		s.own[path] = p
	}
	return p
}

// Lookup resolves a function object to its fact: the current package's
// own facts shadow the imported view, so intra-walk lookups during a
// package's analysis see what was just computed.
func (s *Set) Lookup(fn *types.Func) (Fact, bool) {
	if fn == nil || fn.Pkg() == nil {
		return Fact{}, false
	}
	path, key := NormPath(fn.Pkg().Path()), Key(fn)
	if p, ok := s.own[path]; ok {
		if f, ok := p[key]; ok {
			return f, true
		}
	}
	if p, ok := s.imported[path]; ok {
		if f, ok := p[key]; ok {
			return f, true
		}
	}
	return Fact{}, false
}

// Seal moves the own facts into the imported view, readying the set for
// the next package of an in-process dependency-order walk.
func (s *Set) Seal() {
	for path, p := range s.own {
		s.mergeImported(path, p)
	}
	s.own = make(map[string]Pkg)
}

func (s *Set) mergeImported(path string, p Pkg) {
	dst, ok := s.imported[path]
	if !ok {
		s.imported[path] = p
		return
	}
	for k, f := range p {
		dst[k] = f
	}
}

// wireSet is the serialized layout: package path → function key → fact.
type wireSet map[string]Pkg

// ExportData serializes the full view — imported facts re-exported next
// to the current package's own — as this package's vetx payload.
func (s *Set) ExportData() ([]byte, error) {
	w := make(wireSet, len(s.imported)+len(s.own))
	for path, p := range s.imported {
		if len(p) > 0 {
			w[path] = p
		}
	}
	for path, p := range s.own {
		if len(p) == 0 {
			continue
		}
		if prev, ok := w[path]; ok {
			merged := make(Pkg, len(prev)+len(p))
			for k, f := range prev {
				merged[k] = f
			}
			for k, f := range p {
				merged[k] = f
			}
			w[path] = merged
			continue
		}
		w[path] = p
	}
	return json.Marshal(w)
}

// ImportData merges one dependency's vetx payload into the imported
// view.  Empty payloads (packages that export no facts — the stdlib, or
// a suite predating the facts layer) are accepted silently.
func (s *Set) ImportData(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var w wireSet
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("facts: decoding: %v", err)
	}
	for path, p := range w {
		s.mergeImported(NormPath(path), p)
	}
	return nil
}

// Dump renders the imported+own view as sorted "path key fact" lines,
// for tests and debugging.
func (s *Set) Dump() string {
	var lines []string
	emit := func(path string, p Pkg) {
		for k, f := range p {
			parts := []string{}
			if f.Walltime != "" {
				parts = append(parts, "walltime: "+f.Walltime)
			}
			if f.MapIter != "" {
				parts = append(parts, "mapiter: "+f.MapIter)
			}
			for _, a := range f.Allocs {
				parts = append(parts, "alloc: "+a)
			}
			lines = append(lines, fmt.Sprintf("%s.%s\t%s", path, k, strings.Join(parts, "; ")))
		}
	}
	for path, p := range s.imported {
		emit(path, p)
	}
	for path, p := range s.own {
		emit(path, p)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
