// Package analyzers registers the repo's analyzer suite in one place, so
// the sentinel-lint multichecker, the self-lint smoke test and the
// documentation all agree on what "the suite" is.
package analyzers

import (
	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/obsfx"
	"repro/internal/analysis/poolfx"
	"repro/internal/analysis/sitemap"
	"repro/internal/analysis/stagefx"
	"repro/internal/analysis/stampcmp"
	"repro/internal/analysis/strindex"
	"repro/internal/analysis/walltime"
)

// All returns the full suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		stampcmp.Analyzer,
		mapiter.Analyzer,
		hotalloc.Analyzer,
		strindex.Analyzer,
		sitemap.Analyzer,
		stagefx.Analyzer,
		poolfx.Analyzer,
		obsfx.Analyzer,
	}
}
