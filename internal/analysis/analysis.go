// Package analysis is a minimal, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, built on the
// standard library's go/ast and go/types only (the build environment
// carries no external modules).  It exists so the repo can machine-check
// the invariants its correctness argument rests on — the paper's
// timestamp-relation discipline (Defs. 4.6–4.10, 5.3) and the staged
// pipeline's determinism rules (see internal/ddetect/stages.go) — at vet
// time, in every build, instead of hoping a regression test's workload
// happens to exercise them.
//
// An Analyzer inspects one type-checked package and reports Diagnostics.
// Since the interprocedural upgrade it may also exchange Facts —
// per-function summaries (see the facts package) computed bottom-up in
// dependency order — so an invariant follows the call graph across
// package boundaries instead of stopping at the package that declares
// it.  Three drivers feed analyzers:
//
//   - vetmode implements the `go vet -vettool` unit-checker protocol, so
//     `make lint` runs the suite over every package including test
//     variants, with dependency types coming from compiler export data
//     and dependency facts from the per-package vetx files cmd/go
//     shuttles between invocations;
//   - load + the standalone mode of cmd/sentinel-lint type-check module
//     packages directly, walking them in dependency order with one
//     in-process fact Set;
//   - analysistest runs an analyzer over an uncompiled fixture directory
//     and matches diagnostics against `// want "regexp"` comments.
//
// Every analyzer honours the escape hatch
//
//	//lint:allow <name>[,<name>...] — <reason>
//
// either on (or immediately above) the offending line, or in the doc
// comment of a function declaration, which exempts the whole function
// (facts included: an allowed function does not export the suppressed
// invariant to its callers — the allow is a reviewed sanction, not a
// blind spot).  The reason text is mandatory by convention.  Allows are
// themselves audited: a directive that suppresses nothing is reported
// stale by the drivers (see StaleAllows), so the exception list cannot
// rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/facts"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced and
	// the paper definition or architecture rule it encodes.
	Doc string
	// AppliesTo reports whether the analyzer reports diagnostics for the
	// package with the given import path.  Drivers consult it; test
	// harnesses that call Run directly bypass it (fixtures live under
	// synthetic paths).
	AppliesTo func(pkgPath string) bool
	// FactsFor, when non-nil, reports whether the analyzer computes
	// facts for the package with the given import path.  Drivers call
	// Facts (or Run, which must subsume it) for every such package —
	// including ones AppliesTo rejects — so summaries exist for the
	// packages that merely feed the checked ones.
	FactsFor func(pkgPath string) bool
	// Run inspects one package, reports findings through the pass, and
	// exports the analyzer's facts for it (when the analyzer has any).
	Run func(*Pass) error
	// Facts computes and exports facts only, for packages where the
	// analyzer checks nothing.  Nil for purely intraprocedural analyzers.
	Facts func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the cross-package fact store; never nil (drivers without
	// an interprocedural walk get a fresh empty set per package).
	Facts *facts.Set
	// Allows indexes the package's //lint:allow directives; never nil.
	// Shared across the analyzers of one package so used-tracking for the
	// stale-allow audit aggregates over the whole suite.
	Allows *Allows

	diags []Diagnostic
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// NewPass assembles a pass with the given shared state.  A nil set or
// allows gets a fresh instance, so analyzers never see nil.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, set *facts.Set, allows *Allows) *Pass {
	if set == nil {
		set = facts.NewSet()
	}
	if allows == nil {
		allows = CollectAllows(fset, files)
	}
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: set, Allows: allows}
}

// RunPass executes the pass's analyzer and returns its findings with
// //lint:allow-suppressed diagnostics removed and the rest in position
// order.  Suppressions are recorded on the pass's Allows for the
// stale-allow audit.
func RunPass(pass *Pass) ([]Diagnostic, error) {
	if err := pass.Analyzer.Run(pass); err != nil {
		return nil, err
	}
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !pass.Allows.Allowed(pass.Analyzer.Name, pass.Fset, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// Run executes one analyzer over one package with fresh fact and allow
// state — the single-package entry point used by fixtures and ad-hoc
// callers.  Interprocedural drivers build passes with NewPass and a
// shared Set instead.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunPass(NewPass(a, fset, files, pkg, info, nil, nil))
}

// Allow is one parsed //lint:allow directive.
type Allow struct {
	Pos   token.Pos
	File  string
	Line  int
	Names []string
	// Reason is the text after the dash separator; empty when the author
	// omitted it (itself worth flagging in the audit).
	Reason string
	// FuncLevel marks a directive in a function's doc comment, which
	// exempts the whole body.
	FuncLevel bool
	// Func is the exempted function's name for FuncLevel directives.
	Func string
	// TestFile marks a directive in a _test.go file.  Analyzers skip
	// test files, so such a directive can never fire and is excluded
	// from the stale audit rather than reported.
	TestFile bool

	used bool
	lo   token.Pos // FuncLevel span
	hi   token.Pos
}

// Used reports whether the directive suppressed at least one diagnostic
// or fact during the runs sharing this Allows.
func (a *Allow) Used() bool { return a.used }

// Allows indexes a package's //lint:allow directives and tracks which of
// them actually suppressed something.
type Allows struct {
	list  []*Allow
	lines map[lineKey][]*Allow
}

type lineKey struct {
	file string
	line int
}

// CollectAllows scans the files' comments for //lint:allow directives.
func CollectAllows(fset *token.FileSet, files []*ast.File) *Allows {
	s := &Allows{lines: make(map[lineKey][]*Allow)}
	for _, f := range files {
		testFile := strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
		// Function-level directives first, so line-level lookup can skip
		// doc comments indexed here.
		funcDoc := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				names, reason := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				funcDoc[c] = true
				pos := fset.Position(c.Pos())
				s.list = append(s.list, &Allow{
					Pos: c.Pos(), File: pos.Filename, Line: pos.Line,
					Names: names, Reason: reason,
					FuncLevel: true, Func: fd.Name.Name, TestFile: testFile,
					lo: fd.Pos(), hi: fd.End(),
				})
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if funcDoc[c] {
					continue
				}
				names, reason := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &Allow{
					Pos: c.Pos(), File: pos.Filename, Line: pos.Line,
					Names: names, Reason: reason, TestFile: testFile,
				}
				s.list = append(s.list, a)
				k := lineKey{file: pos.Filename, line: pos.Line}
				s.lines[k] = append(s.lines[k], a)
			}
		}
	}
	sort.Slice(s.list, func(i, j int) bool { return s.list[i].Pos < s.list[j].Pos })
	return s
}

// parseAllow extracts analyzer names and the reason from a //lint:allow
// comment.  Accepted forms: "//lint:allow a", "//lint:allow a,b — reason",
// "// lint:allow a -- reason".
func parseAllow(text string) (names []string, reason string) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "lint:allow") {
		return nil, ""
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "lint:allow"))
	for _, sep := range []string{"--", "—", "–"} {
		if i := strings.Index(rest, sep); i >= 0 {
			reason = strings.TrimSpace(rest[i+len(sep):])
			rest = rest[:i]
			break
		}
	}
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field != "" {
			names = append(names, field)
		}
	}
	return names, reason
}

// Allowed reports whether a diagnostic (or fact) of the named analyzer
// at pos is suppressed — a line directive on the same or the immediately
// preceding line, or a function-level directive spanning pos — and marks
// the suppressing directive used.
func (s *Allows) Allowed(name string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, a := range s.lines[lineKey{file: p.Filename, line: line}] {
			if hasName(a.Names, name) {
				a.used = true
				return true
			}
		}
	}
	for _, a := range s.list {
		if a.FuncLevel && hasName(a.Names, name) && a.lo <= pos && pos < a.hi {
			a.used = true
			return true
		}
	}
	return false
}

// AllowedFunc reports whether the named analyzer is suppressed for the
// whole function declared at fd — a function-level directive naming it —
// marking the directive used.  Analyzers consult this before computing
// facts, so a sanctioned function exports nothing.
func (s *Allows) AllowedFunc(name string, fd *ast.FuncDecl) bool {
	for _, a := range s.list {
		if a.FuncLevel && hasName(a.Names, name) && a.lo == fd.Pos() {
			a.used = true
			return true
		}
	}
	return false
}

func hasName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// All returns every directive in position order, for the audit table.
func (s *Allows) All() []*Allow { return s.list }

// StaleAllows reports, after every analyzer of a suite has run against
// this Allows, the directives that suppressed nothing: either they name
// no analyzer that fired, or they name analyzers that do not exist.
// known is the set of valid analyzer names.  Directives in test files
// are skipped — analyzers do not inspect test files, so an allow there
// is inert by design, not rot.
func (s *Allows) StaleAllows(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range s.list {
		if a.TestFile {
			continue
		}
		var unknown []string
		for _, n := range a.Names {
			if !known[n] {
				unknown = append(unknown, n)
			}
		}
		if len(unknown) > 0 {
			out = append(out, Diagnostic{Pos: a.Pos, Message: fmt.Sprintf(
				"staleallow: //lint:allow names unknown analyzer %s (known: see sentinel-lint usage)",
				strings.Join(unknown, ", "))})
			continue
		}
		if !a.used {
			out = append(out, Diagnostic{Pos: a.Pos, Message: fmt.Sprintf(
				"staleallow: //lint:allow %s suppresses no diagnostic — the code it excused has moved on; delete the directive",
				strings.Join(a.Names, ","))})
		}
	}
	return out
}
