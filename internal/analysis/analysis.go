// Package analysis is a minimal, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, built on the
// standard library's go/ast and go/types only (the build environment
// carries no external modules).  It exists so the repo can machine-check
// the invariants its correctness argument rests on — the paper's
// timestamp-relation discipline (Defs. 4.6–4.10, 5.3) and the staged
// pipeline's determinism rules (see internal/ddetect/stages.go) — at vet
// time, in every build, instead of hoping a regression test's workload
// happens to exercise them.
//
// An Analyzer inspects one type-checked package and reports Diagnostics.
// Three drivers feed it:
//
//   - vetmode implements the `go vet -vettool` unit-checker protocol, so
//     `make lint` runs the suite over every package including test
//     variants, with dependency types coming from compiler export data;
//   - load + the standalone mode of cmd/sentinel-lint type-check module
//     packages directly for in-process use (self-lint smoke tests, ad-hoc
//     runs);
//   - analysistest runs an analyzer over an uncompiled fixture directory
//     and matches diagnostics against `// want "regexp"` comments.
//
// Every analyzer honours the escape hatch
//
//	//lint:allow <name>[,<name>...] — <reason>
//
// either on (or immediately above) the offending line, or in the doc
// comment of a function declaration, which exempts the whole function.
// The reason text is mandatory by convention: an allow is a reviewed,
// documented exception, not a mute button.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced and
	// the paper definition or architecture rule it encodes.
	Doc string
	// AppliesTo reports whether the analyzer inspects the package with
	// the given import path.  Drivers consult it; test harnesses that
	// call Run directly bypass it (fixtures live under synthetic paths).
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run executes one analyzer over one package and returns its findings
// with //lint:allow-suppressed diagnostics removed and the rest in
// position order.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	allows := collectAllows(fset, files)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !allows.allowed(a.Name, fset, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// allowSet indexes //lint:allow directives: by (file, line) for line
// directives and by position range for function-level directives.
type allowSet struct {
	lines map[lineKey]map[string]bool
	spans []allowSpan
}

type lineKey struct {
	file string
	line int
}

type allowSpan struct {
	names    map[string]bool
	lo, hi   token.Pos
	fileName string
}

// collectAllows scans the files' comments for //lint:allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{lines: make(map[lineKey]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{file: pos.Filename, line: pos.Line}
				if s.lines[k] == nil {
					s.lines[k] = make(map[string]bool)
				}
				for n := range names {
					s.lines[k][n] = true
				}
			}
		}
		// Function-level directives: an allow in a FuncDecl's doc comment
		// exempts the entire function body, nested literals included.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fd.Doc.List {
				for n := range parseAllow(c.Text) {
					names[n] = true
				}
			}
			if len(names) > 0 {
				s.spans = append(s.spans, allowSpan{names: names, lo: fd.Pos(), hi: fd.End()})
			}
		}
	}
	return s
}

// parseAllow extracts analyzer names from a //lint:allow comment, or nil.
// Accepted forms: "//lint:allow a", "//lint:allow a,b — reason",
// "// lint:allow a -- reason".
func parseAllow(text string) map[string]bool {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "lint:allow") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "lint:allow"))
	// Everything after a dash separator is the human reason.
	for _, sep := range []string{"--", "—", "–"} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = rest[:i]
		}
	}
	names := make(map[string]bool)
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field != "" {
			names[field] = true
		}
	}
	if len(names) == 0 {
		return nil
	}
	return names
}

// allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed: a line directive on the same or the immediately preceding
// line, or a function-level directive spanning pos.
func (s *allowSet) allowed(name string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		if names := s.lines[lineKey{file: p.Filename, line: line}]; names[name] {
			return true
		}
	}
	for _, sp := range s.spans {
		if sp.names[name] && sp.lo <= pos && pos < sp.hi {
			return true
		}
	}
	return false
}
