package obsfx

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestStageFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "obsfx"))
}

func TestObsPackageFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "obspkg"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/obs":      true,
		"repro/internal/ddetect":  true,
		"repro/internal/detector": false,
		"repro/internal/network":  false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
