// Package obsfx enforces the observability-layer effect rules of the
// internal/obs tentpole: the obs sinks are the *only* observability
// effects in the detection pipeline's stage code, and obs itself never
// touches ambient time or randomness.
//
// The tentpole's determinism claim — byte-identical occurrence logs and
// span streams with the observability stack on or off — rests on two
// disciplines that compile fine when violated:
//
//   - internal/obs is a pure observer fed simulated time by its callers:
//     it must not import time, math/rand or math/rand/v2 at all.  A
//     time.Now inside a sink would stamp spans with wall time and make
//     every trace diff dirty; a rand call could perturb nothing today
//     and silently start perturbing shared state tomorrow.
//   - stage-context code in internal/ddetect (the five stage drivers,
//     the link coalescer and the publish helpers) reports through obs
//     sinks only: no fmt printing, no log package, no builtin
//     print/println, no direct os.Stdout/os.Stderr writes.  Ad-hoc
//     prints in a crank stage are unsynchronized observability effects —
//     unordered relative to spans, invisible to the flight recorder, and
//     racy the moment a stage moves off the crank goroutine.
//   - the detect stage additionally must not touch the Tracer at all:
//     its Tick body runs on worker goroutines, and the tracer's
//     crank-only ID assignment is exactly what makes span IDs
//     deterministic.
//
// Pure string formatting (fmt.Sprintf, fmt.Errorf) is not an effect and
// stays allowed.  Test files are exempt, like the rest of the suite.
package obsfx

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the obsfx checker.
var Analyzer = &analysis.Analyzer{
	Name:      "obsfx",
	Doc:       "keep internal/obs free of ambient time/randomness and restrict stage-context observability effects to internal/obs sinks",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	return path == "repro/internal/obs" || path == "repro/internal/ddetect"
}

// forbiddenImports are the packages obs must not depend on: all of their
// ambient-time and randomness entry points are off-limits, so the import
// itself is the violation.
var forbiddenImports = map[string]bool{
	"time": true, "math/rand": true, "math/rand/v2": true,
}

// stageReceivers are the ddetect types whose methods constitute stage
// context: the five stage drivers plus the link coalescer the transport
// path runs through.
var stageReceivers = map[string]bool{
	"ingestStage": true, "transportStage": true, "releaseStage": true,
	"detectStage": true, "publishStage": true, "linkCoalescer": true,
}

// stageFuncs are free functions and System methods that execute inside a
// stage's slice of the tick.
var stageFuncs = map[string]bool{
	"forwardComposite": true, "stageNote": true,
}

func run(pass *analysis.Pass) error {
	// Rule set is keyed on the package itself: the obs package gets the
	// import ban, everything else (ddetect; fixtures mirror its receiver
	// names) gets the stage-context effect rules.
	obsPkg := pass.Pkg != nil && pass.Pkg.Name() == "obs"
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		if obsPkg {
			checkObsImports(pass, f)
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !stageContext(fd) {
				continue
			}
			checkStageBody(pass, fd)
		}
	}
	return nil
}

// checkObsImports flags ambient time/randomness imports in package obs.
func checkObsImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if forbiddenImports[path] {
			pass.Reportf(imp.Pos(),
				"obsfx: package obs must not import %q; spans and metrics carry caller-supplied simulated time only (internal/clock microticks)",
				path)
		}
	}
}

// stageContext reports whether fd runs inside a pipeline stage's slice
// of the tick.
func stageContext(fd *ast.FuncDecl) bool {
	if stageFuncs[fd.Name.Name] {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && stageReceivers[id.Name]
}

// detectContext reports whether fd is a detectStage method — the one
// stage whose body runs on worker goroutines.
func detectContext(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "detectStage"
}

// pureFmt are the fmt functions with no output effect.
func pureFmt(name string) bool {
	return strings.HasPrefix(name, "Sprint") || name == "Errorf" || name == "Appendf" ||
		strings.HasPrefix(name, "Sscan") || strings.HasPrefix(name, "Fscan")
}

func checkStageBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	detect := detectContext(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "print" || fun.Name == "println" {
					// Only the predeclared builtins; a local function that
					// shadows the name resolves to *types.Func instead.
					if _, builtin := pass.Info.Uses[fun].(*types.Builtin); builtin {
						pass.Reportf(x.Pos(),
							"obsfx: builtin %s in stage context (in %s); crank stages observe through internal/obs sinks only",
							fun.Name, fd.Name.Name)
					}
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok {
						switch pkgName.Imported().Path() {
						case "fmt":
							if !pureFmt(fun.Sel.Name) {
								pass.Reportf(x.Pos(),
									"obsfx: fmt.%s in stage context (in %s); crank stages observe through internal/obs sinks only",
									fun.Sel.Name, fd.Name.Name)
							}
						case "log":
							pass.Reportf(x.Pos(),
								"obsfx: log.%s in stage context (in %s); crank stages observe through internal/obs sinks only",
								fun.Sel.Name, fd.Name.Name)
						}
						return true
					}
				}
				if detect {
					if t := pass.TypeOf(fun.X); t != nil && namedObs(t, "Tracer") {
						pass.Reportf(x.Pos(),
							"obsfx: Tracer.%s in the detect stage (in %s); detect runs on worker goroutines — span points are crank-side only",
							fun.Sel.Name, fd.Name.Name)
					}
				}
			}
		case *ast.SelectorExpr:
			// Direct os.Stdout / os.Stderr references (handed to writers,
			// assigned, …) are output effects however they are used.
			if id, ok := x.X.(*ast.Ident); ok && (x.Sel.Name == "Stdout" || x.Sel.Name == "Stderr") {
				if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "os" {
					pass.Reportf(x.Pos(),
						"obsfx: os.%s referenced in stage context (in %s); crank stages observe through internal/obs sinks only",
						x.Sel.Name, fd.Name.Name)
				}
			}
		}
		return true
	})
}

// namedObs reports whether t (behind pointers) is internal/obs.<name>.
func namedObs(t types.Type, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
