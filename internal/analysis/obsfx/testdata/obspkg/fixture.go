// Package obs mirrors the real internal/obs package name so the obsfx
// analyzer applies its pure-observer rule set: ambient time and
// randomness imports are banned outright — spans and metrics carry only
// caller-supplied simulated time.
package obs

import (
	"math/rand"          // want `obsfx: package obs must not import "math/rand"`
	rand2 "math/rand/v2" // want `obsfx: package obs must not import "math/rand/v2"`
	"strconv"
	"time" // want `obsfx: package obs must not import "time"`
)

// stamp is exactly the bug the rule exists for: a sink minting its own
// wall-clock timestamps instead of carrying the pipeline's microticks.
func stamp() int64 { return time.Now().UnixNano() + rand.Int63() + rand2.Int64() }

// format shows benign stdlib use stays clean.
func format(v int64) string { return strconv.FormatInt(v, 10) }
