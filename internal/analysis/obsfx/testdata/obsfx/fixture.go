// Package fixture exercises the obsfx analyzer's stage-context rules:
// fmt printing, the log package, builtin print/println and direct
// os.Stdout/os.Stderr references are flagged inside stage methods and
// the designated stage helpers; pure formatting, tracer emission from
// crank stages and the same calls outside stage context are not.  The
// detect stage additionally may not touch the tracer at all.
package fixture

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/obs"
)

type ingestStage struct{ tr *obs.Tracer }

func (st *ingestStage) raise() {
	fmt.Println("raised") // want `obsfx: fmt\.Println in stage context`
	log.Printf("raised")  // want `obsfx: log\.Printf in stage context`
	println("raised")     // want `obsfx: builtin println in stage context`
	_ = fmt.Sprintf("stamp %d", 1)
	_ = fmt.Errorf("pure formatting is fine")
	st.tr.Emit(obs.SpanEvent{Kind: obs.KindRaise}) // crank stage: sinks are the sanctioned effect
}

type transportStage struct{}

func (st *transportStage) Tick() io.Writer {
	w := io.Writer(os.Stderr) // want `obsfx: os\.Stderr referenced in stage context`
	fmt.Fprintln(w, "tick")   // want `obsfx: fmt\.Fprintln in stage context`
	return os.Stdout          // want `obsfx: os\.Stdout referenced in stage context`
}

type detectStage struct{ tr *obs.Tracer }

// Tick runs on worker goroutines: even the sanctioned tracer is
// off-limits here.
func (st *detectStage) Tick() {
	_ = st.tr.ID("occ", 0)                          // want `obsfx: Tracer\.ID in the detect stage`
	st.tr.Emit(obs.SpanEvent{Kind: obs.KindDetect}) // want `obsfx: Tracer\.Emit in the detect stage`
}

type publishStage struct{ tr *obs.Tracer }

func (st *publishStage) Tick() {
	st.tr.Emit(obs.SpanEvent{Kind: obs.KindPublish}) // publish runs on the crank: clean
}

// forwardComposite is stage context by name, receiver or not.
func forwardComposite() {
	log.Println("forwarded") // want `obsfx: log\.Println in stage context`
}

// stageNote is the hook System feeds the pipeline driver: stage context.
func stageNote(tr *obs.Tracer) {
	tr.Emit(obs.SpanEvent{Kind: obs.KindNote})
	print("note") // want `obsfx: builtin print in stage context`
}

type releaseStage struct{}

// The suite-wide escape hatch applies here like everywhere else.
//
//lint:allow obsfx — fixture: sanctioned debugging aid, removed before merge
func (st *releaseStage) debug() {
	fmt.Println("allowed by directive")
}

// report is not stage context: ordinary code may print freely.
func report(w io.Writer, n int) {
	fmt.Fprintf(w, "detections=%d\n", n)
	fmt.Println("done")
	log.Printf("done")
}

// println shadowed by a local func is not the builtin.
func (st *releaseStage) deliver() {
	println := func(s string) int { return len(s) }
	_ = println("shadowed")
}
