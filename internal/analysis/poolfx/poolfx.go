// Package poolfx flags (*sync.Pool).Put calls that return a struct to a
// pool without zeroing its reference-carrying fields.
//
// A pooled object outlives its users: whatever pointers it still holds
// when it goes back into the pool are retained until the *next*
// generation overwrites them — a silent leak at best, and with the
// occurrence pool (internal/event) a correctness hazard, because a
// recycled Occurrence that still references constituents or parameter
// maps resurrects freed state into an unrelated event.  The recycling
// function must therefore sever every slice, map and interface field
// before the Put (nil it, clear() it, or truncate it — truncation is a
// deliberate capacity-keeping reuse, which is the pool's point).
//
// The check is function-local by design: the function that calls Put is
// the recycler, and the zeroing discipline belongs next to the Put so a
// reader can audit it in one screen (event.Pool.put is the template).
// For each Put whose argument is a pointer to a named struct, every
// field of that struct whose underlying type is a slice, map or
// interface must appear as an assignment target (x.F = ..., including
// x.F = x.F[:0]) or as the operand of the clear builtin somewhere in the
// enclosing function.  Pointer and string fields are out of scope —
// pools of linked nodes legitimately keep intrusive pointers, and the
// noise would drown the signal.  Pools of boxed slices (*[]byte and
// friends) are exempt wholesale: retaining the backing array is their
// entire purpose.  Test files are exempt.
//
// The escape hatch is //lint:allow poolfx with a reason, audited for
// staleness like every other directive.
package poolfx

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
)

const name = "poolfx"

// Analyzer is the poolfx checker.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "flag (*sync.Pool).Put of a struct whose slice/map/interface fields are not all zeroed in the recycling function",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	path = facts.NormPath(path)
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis") &&
		!strings.HasPrefix(path, "repro/cmd/sentinel-lint")
}

// isPoolPut reports whether call is (*sync.Pool).Put.
func isPoolPut(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// refFields returns the fields of the pointed-to named struct (nil if
// the argument is not a pointer to a named struct) whose underlying type
// is a slice, map or interface.
func refFields(t types.Type) []*types.Var {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var refs []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Type().Underlying().(type) {
		case *types.Slice, *types.Map, *types.Interface:
			refs = append(refs, f)
		}
	}
	return refs
}

// fieldObj resolves a selector expression to the struct field it names,
// nil for anything else (method values, package selectors).
func fieldObj(pass *analysis.Pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// zeroedFields collects every struct field the function assigns to or
// clears: the LHS of any assignment (including x.F = x.F[:0]) and the
// operand of every clear(...) call.
func zeroedFields(pass *analysis.Pass, decl *ast.FuncDecl) map[*types.Var]bool {
	zeroed := map[*types.Var]bool{}
	ast.Inspect(decl, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := fieldObj(pass, lhs); f != nil {
					zeroed[f] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "clear" {
					if f := fieldObj(pass, n.Args[0]); f != nil {
						zeroed[f] = true
					}
				}
			}
		}
		return true
	})
	return zeroed
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || pass.Allows.AllowedFunc(name, decl) {
				continue
			}
			var zeroed map[*types.Var]bool // lazy: most functions have no Put
			ast.Inspect(decl.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || !isPoolPut(pass, call) {
					return true
				}
				refs := refFields(pass.TypeOf(call.Args[0]))
				if len(refs) == 0 {
					return true
				}
				if zeroed == nil {
					zeroed = zeroedFields(pass, decl)
				}
				var missing []string
				for _, fld := range refs {
					if !zeroed[fld] {
						missing = append(missing, fld.Name())
					}
				}
				if len(missing) > 0 {
					pass.Reportf(call.Pos(),
						"poolfx: Put returns a *%s to the pool without zeroing reference field(s) %s — nil, clear or truncate them in this function so the recycled object cannot resurrect old state, or //lint:allow poolfx with a reason",
						typeName(pass, call.Args[0]), strings.Join(missing, ", "))
				}
				return true
			})
		}
	}
	return nil
}

// typeName renders the pointed-to struct's name relative to the package.
func typeName(pass *analysis.Pass, arg ast.Expr) string {
	t := pass.TypeOf(arg)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return types.TypeString(ptr.Elem(), types.RelativeTo(pass.Pkg))
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
