// Package fixture exercises the poolfx analyzer: a (*sync.Pool).Put of
// a pointer-to-struct whose slice/map/interface reference fields are not
// all severed in the recycling function is flagged, per missing field.
// Truncation and clear() count as severing; boxed-slice pools and
// non-struct payloads are out of scope.
package fixture

import "sync"

type obj struct {
	name   string // strings are out of scope
	id     int
	kids   []*obj
	params map[string]any
	val    any
	buf    []byte
}

var pool sync.Pool

func badPut(o *obj) {
	o.kids = nil
	// params, val and buf still reference old state.
	pool.Put(o) // want `poolfx: Put returns a \*obj to the pool without zeroing reference field\(s\) params, val, buf`
}

func goodPut(o *obj) {
	for i := range o.kids {
		o.kids[i] = nil
	}
	o.kids = o.kids[:0] // truncation keeps capacity; the assignment counts
	clear(o.params)     // clear() counts
	o.val = nil
	o.buf = o.buf[:0]
	pool.Put(o)
}

func allowedPut(o *obj) {
	//lint:allow poolfx — fixture: the next generation overwrites every field before use
	pool.Put(o)
}

// Boxed-slice pools retain their backing array on purpose.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func slicePut(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// A Put on some other type named Pool is not sync.Pool's.
type fakePool struct{}

func (fakePool) Put(any) {}

func notSyncPool(o *obj) {
	var p fakePool
	p.Put(o)
}
