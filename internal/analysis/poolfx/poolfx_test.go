package poolfx

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "poolfx"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/event":           true,
		"repro/internal/ddetect":         true,
		"repro/internal/wire":            true,
		"repro":                          true,
		"repro/internal/analysis/poolfx": false,
		"repro/cmd/sentinel-lint":        false,
		"golang.org/x/tools/go/analysis": false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
