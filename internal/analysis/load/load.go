// Package load type-checks this module's packages for in-process static
// analysis (the standalone mode of cmd/sentinel-lint, the self-lint smoke
// test, and the analysistest fixture runner).
//
// It shells out to `go list -export -json -deps`, which resolves import
// paths and produces compiler export data for every dependency from the
// local build cache — fully offline — then parses the module's own
// packages from source and type-checks them against that export data,
// exactly the way the `go vet` unit-checker protocol does (see vetmode).
// Analyzers therefore see identical types whichever driver runs them.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` over the patterns in dir and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer backed by the export files in
// exports (import path → file), as produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.(types.ImporterFrom).Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newInfo returns a fully populated types.Info for analyzer use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func sizes() types.Sizes { return types.SizesFor("gc", runtime.GOARCH) }

// Load lists the patterns (e.g. "./...") relative to modRoot and returns
// every module package parsed and type-checked, in dependency order
// (dependencies before dependents, as `go list -deps` emits them) — the
// order an interprocedural walk needs so each package's facts exist
// before its importers run.  Test files are not included — the vet
// driver covers test variants; see the package comment.
func Load(modRoot string, patterns ...string) ([]*Package, error) {
	listed, err := goList(modRoot, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil {
			continue // dependency outside the module: export data only
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files that is
// not part of any build (an analysistest fixture), resolving its imports
// through `go list -export` run from modRoot.
func LoadDir(modRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	delete(importSet, "unsafe")
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(modRoot, paths...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := exportImporter(fset, exports)
	return check(fset, imp, "fixture/"+filepath.Base(dir), dir, files)
}

// checkFiles parses the named files in dir and type-checks them.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return check(fset, imp, path, dir, files)
}

// check type-checks parsed files as one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := newInfo()
	cfg := &types.Config{Importer: imp, Sizes: sizes()}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}
