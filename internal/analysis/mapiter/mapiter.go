// Package mapiter flags range statements over maps in the packages whose
// iteration order can leak into the occurrence stream.
//
// Go randomizes map iteration order per run.  The distributed detector's
// contract is a bit-for-bit deterministic occurrence stream for a given
// seed and worker count (internal/ddetect/determinism_test.go): any map
// iteration on the ingest → transport → release → detect → publish path
// that influences event order, bus send order, or emitted output breaks
// that contract in a way no fixed workload reliably catches.  The
// reorderer keeps a sorted id slice next to its map for exactly this
// reason (reorderer.ids); Detector.Definitions sorts before returning.
//
// The analyzer covers internal/ddetect, internal/detector and
// internal/network — the packages reachable from the detect and publish
// stages — and flags every `range` over a map there.  Iterations that
// provably cannot observe order (e.g. draining into a set, counting) are
// annotated //lint:allow mapiter with that argument.  Test files are
// exempt: tests assert on aggregates and their iteration order feeds no
// occurrence stream.
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the mapiter checker.
var Analyzer = &analysis.Analyzer{
	Name:      "mapiter",
	Doc:       "flag range-over-map in detect/publish-path packages (ddetect, detector, network) where iteration order can leak into the occurrence stream",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(path string) bool {
	for _, p := range []string{
		"repro/internal/ddetect",
		"repro/internal/detector",
		"repro/internal/network",
	} {
		if path == p || strings.HasPrefix(path, p+"/") || strings.HasPrefix(path, p+"_test") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.Pos(),
					"mapiter: ranging over a map (%s) in a detect/publish-path package; iteration order is randomized per run — iterate a sorted key slice instead (see reorderer.ids), or //lint:allow mapiter with a proof order cannot be observed",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
	return nil
}
