// Package mapiter flags range statements over maps in the packages whose
// iteration order can leak into the occurrence stream.
//
// Go randomizes map iteration order per run.  The distributed detector's
// contract is a bit-for-bit deterministic occurrence stream for a given
// seed and worker count (internal/ddetect/determinism_test.go): any map
// iteration on the ingest → transport → release → detect → publish path
// that influences event order, bus send order, or emitted output breaks
// that contract in a way no fixed workload reliably catches.  The
// reorderer keeps a sorted id slice next to its map for exactly this
// reason (reorderer.ids); Detector.Definitions sorts before returning.
//
// The analyzer reports on internal/ddetect, internal/detector and
// internal/network — the packages reachable from the detect and publish
// stages — and flags there:
//
//   - every `range` over a map value, whatever expression produces it
//     (identifier, struct field, function result);
//   - every `range` over a map iterator from the maps package
//     (maps.Keys/Values/All), which is the same randomized order wearing
//     an iter.Seq;
//   - every call to a function in *another* package whose exported fact
//     says it transitively ranges over a map (see the facts package):
//     the invariant follows the call graph, so a helper in internal/core
//     or internal/event cannot launder a map iteration into the
//     detect/publish path.
//
// Iterations that provably cannot observe order (draining into a set,
// counting) are annotated //lint:allow mapiter with that argument; an
// allowed function exports no fact.  Test files are exempt: tests assert
// on aggregates and their iteration order feeds no occurrence stream.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/interproc"
)

const name = "mapiter"

// Analyzer is the mapiter checker.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "flag range-over-map (and map iterators, and calls to functions that transitively iterate maps) in detect/publish-path packages where iteration order can leak into the occurrence stream",
	AppliesTo: appliesTo,
	FactsFor:  factsFor,
	Run:       run,
	Facts:     computeFacts,
}

func appliesTo(path string) bool {
	path = facts.NormPath(path)
	for _, p := range []string{
		"repro/internal/ddetect",
		"repro/internal/detector",
		"repro/internal/network",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// factsFor: every module package computes facts, so the packages feeding
// the detect/publish path carry their summaries with them.
func factsFor(path string) bool {
	path = facts.NormPath(path)
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis") &&
		!strings.HasPrefix(path, "repro/cmd/sentinel-lint")
}

// mapIterKind classifies a range statement's subject, "" if harmless.
func mapIterKind(pass *analysis.Pass, rs *ast.RangeStmt) string {
	t := pass.TypeOf(rs.X)
	if t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return "range over " + types.TypeString(t, types.RelativeTo(pass.Pkg))
		}
	}
	// Map iterators: ranging over the iter.Seq returned by
	// maps.Keys/Values/All is the same randomized order.  Only the
	// direct call form is recognized; an iterator stored in a variable
	// first escapes this check (and the conservative direction is fine:
	// the helper's own package exports the fact for its callers).
	if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "maps" {
					switch sel.Sel.Name {
					case "Keys", "Values", "All":
						return "range over maps." + sel.Sel.Name + " iterator"
					}
				}
			}
		}
	}
	return ""
}

type rangeOp struct {
	rs   *ast.RangeStmt
	what string
}

type result struct {
	graph  *interproc.PkgGraph
	direct map[*interproc.FuncNode]string
	ops    map[*interproc.FuncNode][]rangeOp
}

func analyze(pass *analysis.Pass) *result {
	res := &result{
		graph:  interproc.Graph(pass),
		direct: make(map[*interproc.FuncNode]string),
		ops:    make(map[*interproc.FuncNode][]rangeOp),
	}
	for _, n := range res.graph.Funcs {
		if pass.Allows.AllowedFunc(name, n.Decl) {
			continue
		}
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			rs, ok := node.(*ast.RangeStmt)
			if !ok {
				return true
			}
			what := mapIterKind(pass, rs)
			if what == "" || pass.Allows.Allowed(name, pass.Fset, rs.Pos()) {
				return true
			}
			res.ops[n] = append(res.ops[n], rangeOp{rs: rs, what: what})
			if res.direct[n] == "" {
				res.direct[n] = what + " at " + interproc.ShortPos(pass.Fset, rs.Pos())
			}
			return true
		})
	}
	summary := interproc.Propagate(res.graph, pass.Fset, res.direct, func(fn *types.Func) string {
		f, _ := pass.Facts.Lookup(fn)
		return f.MapIter
	}, func(pos token.Pos) bool { return pass.Allows.Allowed(name, pass.Fset, pos) })
	own := pass.Facts.Own(pass.Pkg.Path())
	for n, why := range summary {
		if why == "" {
			continue
		}
		own.Update(facts.Key(n.Obj), func(f *facts.Fact) { f.MapIter = why })
	}
	return res
}

func computeFacts(pass *analysis.Pass) error {
	analyze(pass)
	return nil
}

func run(pass *analysis.Pass) error {
	res := analyze(pass)
	for _, n := range res.graph.Funcs {
		for _, op := range res.ops[n] {
			pass.Reportf(op.rs.Pos(),
				"mapiter: %s in a detect/publish-path package; iteration order is randomized per run — iterate a sorted key slice instead (see reorderer.ids), or //lint:allow mapiter with a proof order cannot be observed",
				op.what)
		}
		// Inherited: calls to out-of-domain module functions whose fact
		// says they transitively iterate a map.
		for _, c := range n.Calls {
			if res.graph.Node(c.Callee) != nil {
				continue
			}
			if pkg := c.Callee.Pkg(); pkg == nil || appliesTo(pkg.Path()) {
				continue
			}
			f, ok := pass.Facts.Lookup(c.Callee)
			if !ok || f.MapIter == "" {
				continue
			}
			pass.Reportf(c.Pos,
				"mapiter: call to %s.%s transitively iterates a map (%s); its order can leak into the occurrence stream — sort before iterating in the callee, or //lint:allow mapiter with a proof",
				c.Callee.Pkg().Name(), c.Callee.Name(), f.MapIter)
		}
	}
	return nil
}
