// Package fixture exercises the mapiter analyzer: range over a map is
// flagged; slice iteration and //lint:allow-ed order-insensitive folds
// are not.
package fixture

func bad(m map[string]int) int {
	n := 0
	for _, v := range m { // want `mapiter: ranging over a map`
		n += v
	}
	return n
}

func badKeyed(m map[int]struct{}) []int {
	var out []int
	for k := range m { // want `mapiter: ranging over a map`
		out = append(out, k)
	}
	return out
}

func good(m map[string]int, keys []string) int {
	n := 0
	for _, k := range keys {
		n += m[k]
	}
	for range m { //lint:allow mapiter — fixture: counting only, order cannot be observed
		n++
	}
	return n
}
