// Package fixture exercises the mapiter analyzer: range over a map is
// flagged whatever expression produces the map — identifier, struct
// field, function result — as is range over a maps.Keys/Values/All
// iterator; slice iteration and //lint:allow-ed order-insensitive folds
// are not.
package fixture

import "maps"

type holder struct {
	counts map[string]int
}

func table() map[string]int { return map[string]int{"a": 1} }

func bad(m map[string]int) int {
	n := 0
	for _, v := range m { // want `mapiter: range over map\[string\]int`
		n += v
	}
	return n
}

func badKeyed(m map[int]struct{}) []int {
	var out []int
	for k := range m { // want `mapiter: range over map\[int\]struct\{\}`
		out = append(out, k)
	}
	return out
}

func badField(h *holder) int {
	n := 0
	for _, v := range h.counts { // want `mapiter: range over map\[string\]int`
		n += v
	}
	return n
}

func badResult() int {
	n := 0
	for _, v := range table() { // want `mapiter: range over map\[string\]int`
		n += v
	}
	return n
}

func badIterator(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `mapiter: range over maps\.Keys iterator`
		out = append(out, k)
	}
	for v := range maps.Values(m) { // want `mapiter: range over maps\.Values iterator`
		_ = v
	}
	for k, v := range maps.All(m) { // want `mapiter: range over maps\.All iterator`
		_, _ = k, v
	}
	return out
}

func good(m map[string]int, keys []string) int {
	n := 0
	for _, k := range keys {
		n += m[k]
	}
	for range m { //lint:allow mapiter — fixture: counting only, order cannot be observed
		n++
	}
	return n
}
