package walltime

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "walltime"))
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro":                       true,
		"repro/internal/ddetect":      true,
		"repro/cmd/distsim":           true,
		"repro/internal/analysis":     false,
		"repro/internal/analysistest": false,
		"repro/cmd/sentinel-lint":     false,
		"othermod/internal/ddetect":   false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
