// Package walltime forbids ambient time and global randomness in
// simulation and detection code.
//
// The simulation never reads the wall clock: time advances only through
// internal/clock (System.Advance), which is what makes every scenario —
// including adversarial clock skews and delivery schedules — reproducible
// (see the internal/clock package comment).  Likewise all randomness must
// flow from explicitly seeded *rand.Rand instances, never the package
// globals of math/rand or math/rand/v2, or two runs with the same -seed
// diverge.  A time.Now that slips into a detection path does not fail any
// existing test; it silently destroys replayability.  This analyzer makes
// the rule mechanical.
//
// The check is interprocedural: every module package exports a
// per-function fact — "this function transitively reaches an ambient
// clock or the global generator" — computed bottom-up over the static
// call graph (see the interproc and facts packages).  In the packages
// the analyzer reports on, a call to a function whose fact fires, but
// which lives outside the analyzer's own reporting domain, is flagged at
// the call site with the inherited provenance, so a helper two calls
// deep cannot reintroduce wall time unseen.  References to the forbidden
// functions as values (`d.now = time.Now`) are flagged like calls: the
// capture, not the invocation, is where the ambient clock enters.
//
// Wall-clock instrumentation that measures the engine without feeding the
// simulation (the pipeline Driver's stage-latency clock, cmd/ablation's
// ns/op sampling) is exempted with //lint:allow walltime and a reason;
// an allowed function also exports no fact — the sanction covers its
// callers.  Test files are exempt, like the rest of the suite.
package walltime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/interproc"
)

const name = "walltime"

// Analyzer is the walltime checker.
var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "forbid time.Now/time.Since and package-global math/rand in simulation and detection code (internal/clock and seeded *rand.Rand only), interprocedurally via call-graph facts",
	AppliesTo: appliesTo,
	FactsFor:  factsFor,
	Run:       run,
	Facts:     computeFacts,
}

// appliesTo restricts reporting to this module, minus the linter itself.
func appliesTo(path string) bool {
	path = facts.NormPath(path)
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis") &&
		!strings.HasPrefix(path, "repro/cmd/sentinel-lint")
}

// factsFor computes facts for every module package reporting covers or
// feeds, so summaries exist wherever a checked package's call graph may
// lead.
func factsFor(path string) bool { return appliesTo(path) }

// forbiddenTime are the ambient-time entry points of package time.
// Constructors of timers and tickers are included: they capture the wall
// clock at creation and fire on it.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the package-level functions of math/rand and
// math/rand/v2 that do not touch the shared global source: explicit
// constructors.  Everything else at package level (Intn, Int63, Seed,
// Shuffle, …) reads or writes global state and is forbidden.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

// classify reports the violation in a selector expression, "" if none:
// a use (call or value reference) of a forbidden time function or a
// global math/rand accessor.
func classify(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	// Only uses of the *functions* count; a type reference like
	// *rand.Rand in a declaration is exactly the sanctioned pattern.
	if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		return ""
	}
	switch pkgName.Imported().Path() {
	case "time":
		if forbiddenTime[sel.Sel.Name] {
			return "time." + sel.Sel.Name
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[sel.Sel.Name] {
			return "rand." + sel.Sel.Name
		}
	}
	return ""
}

// analyze does the shared work: direct findings, fact propagation and
// export.  It returns what run needs for reporting.
type result struct {
	graph *interproc.PkgGraph
	// direct maps each function to its first direct violation ("" none),
	// with the op position alongside for reporting.
	direct map[*interproc.FuncNode]string
	pos    map[*interproc.FuncNode][]directOp
	// outside holds direct violations lexically outside any function
	// declaration (package-level var initializers).
	outside []directOp
	// summary is the propagated per-function fact.
	summary map[*interproc.FuncNode]string
}

type directOp struct {
	pos  ast.Node
	what string
}

func analyze(pass *analysis.Pass) *result {
	res := &result{
		graph:  interproc.Graph(pass),
		direct: make(map[*interproc.FuncNode]string),
		pos:    make(map[*interproc.FuncNode][]directOp),
	}
	for _, n := range res.graph.Funcs {
		if pass.Allows.AllowedFunc(name, n.Decl) {
			continue
		}
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			what := classify(pass, sel)
			if what == "" || pass.Allows.Allowed(name, pass.Fset, sel.Pos()) {
				return true
			}
			res.pos[n] = append(res.pos[n], directOp{pos: sel, what: what})
			if res.direct[n] == "" {
				res.direct[n] = what + " at " + interproc.ShortPos(pass.Fset, sel.Pos())
			}
			return true
		})
	}
	// Package-level initializers outside any function body.
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if _, ok := decl.(*ast.FuncDecl); ok {
				continue
			}
			ast.Inspect(decl, func(node ast.Node) bool {
				sel, ok := node.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if what := classify(pass, sel); what != "" &&
					!pass.Allows.Allowed(name, pass.Fset, sel.Pos()) {
					res.outside = append(res.outside, directOp{pos: sel, what: what})
				}
				return true
			})
		}
	}
	res.summary = interproc.Propagate(res.graph, pass.Fset, res.direct, func(fn *types.Func) string {
		f, _ := pass.Facts.Lookup(fn)
		return f.Walltime
	}, func(pos token.Pos) bool { return pass.Allows.Allowed(name, pass.Fset, pos) })
	own := pass.Facts.Own(pass.Pkg.Path())
	for n, why := range res.summary {
		if why == "" {
			continue
		}
		key := facts.Key(n.Obj)
		own.Update(key, func(f *facts.Fact) { f.Walltime = why })
	}
	return res
}

// computeFacts is the facts-only entry point for packages outside the
// reporting domain.
func computeFacts(pass *analysis.Pass) error {
	analyze(pass)
	return nil
}

func run(pass *analysis.Pass) error {
	res := analyze(pass)
	report := func(op directOp) {
		if strings.HasPrefix(op.what, "time.") {
			pass.Reportf(op.pos.Pos(),
				"walltime: %s reads the ambient clock; simulated time comes from internal/clock (//lint:allow walltime for pure instrumentation)",
				op.what)
		} else {
			pass.Reportf(op.pos.Pos(),
				"walltime: %s uses the package-global generator; use an explicitly seeded *rand.Rand so runs are reproducible",
				op.what)
		}
	}
	for _, n := range res.graph.Funcs {
		for _, op := range res.pos[n] {
			report(op)
		}
		// Inherited violations: a call to a function outside this
		// analyzer's reporting domain whose fact fires.  Callees inside
		// the domain are reported directly in their own package.
		for _, c := range n.Calls {
			if res.graph.Node(c.Callee) != nil {
				continue
			}
			if pkg := c.Callee.Pkg(); pkg == nil || appliesTo(pkg.Path()) {
				continue
			}
			f, ok := pass.Facts.Lookup(c.Callee)
			if !ok || f.Walltime == "" {
				continue
			}
			pass.Reportf(c.Pos,
				"walltime: call to %s.%s reaches the ambient clock or global rand (%s); the invariant follows the call graph",
				c.Callee.Pkg().Name(), c.Callee.Name(), f.Walltime)
		}
	}
	for _, op := range res.outside {
		report(op)
	}
	return nil
}
