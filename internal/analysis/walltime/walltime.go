// Package walltime forbids ambient time and global randomness in
// simulation and detection code.
//
// The simulation never reads the wall clock: time advances only through
// internal/clock (System.Advance), which is what makes every scenario —
// including adversarial clock skews and delivery schedules — reproducible
// (see the internal/clock package comment).  Likewise all randomness must
// flow from explicitly seeded *rand.Rand instances, never the package
// globals of math/rand or math/rand/v2, or two runs with the same -seed
// diverge.  A time.Now that slips into a detection path does not fail any
// existing test; it silently destroys replayability.  This analyzer makes
// the rule mechanical.
//
// Wall-clock instrumentation that measures the engine without feeding the
// simulation (the pipeline Driver's stage-latency clock, cmd/ablation's
// ns/op sampling) is exempted with //lint:allow walltime and a reason.
// Test files are exempt, like the rest of the suite: tests legitimately
// sleep to exercise real concurrency, and cannot leak wall time into the
// simulation they drive through the deterministic API.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the walltime checker.
var Analyzer = &analysis.Analyzer{
	Name:      "walltime",
	Doc:       "forbid time.Now/time.Since and package-global math/rand in simulation and detection code (internal/clock and seeded *rand.Rand only)",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo restricts the check to this module, minus the linter itself.
func appliesTo(path string) bool {
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/analysis") &&
		!strings.HasPrefix(path, "repro/cmd/sentinel-lint")
}

// forbiddenTime are the ambient-time entry points of package time.
// Constructors of timers and tickers are included: they capture the wall
// clock at creation and fire on it.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the package-level functions of math/rand and
// math/rand/v2 that do not touch the shared global source: explicit
// constructors.  Everything else at package level (Intn, Int63, Seed,
// Shuffle, …) reads or writes global state and is forbidden.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"walltime: time.%s reads the ambient clock; simulated time comes from internal/clock (//lint:allow walltime for pure instrumentation)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"walltime: rand.%s uses the package-global generator; use an explicitly seeded *rand.Rand so runs are reproducible",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
