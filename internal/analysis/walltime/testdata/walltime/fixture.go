// Package fixture exercises the walltime analyzer: ambient-clock reads
// and package-global randomness are flagged; seeded generators and
// //lint:allow-ed instrumentation are not.
package fixture

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()                     // want `walltime: time\.Now reads the ambient clock`
	_ = time.Since(time.Unix(0, 0))    // want `walltime: time\.Since reads the ambient clock`
	_ = rand.Intn(3)                   // want `walltime: rand\.Intn uses the package-global generator`
	rand.Shuffle(2, func(i, j int) {}) // want `walltime: rand\.Shuffle uses the package-global generator`
}

func good() {
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(3)
	_ = time.Unix(42, 0).UTC()
	_ = time.Now() //lint:allow walltime — fixture: instrumentation-only read
}

// instrumented measures wall-clock cost without feeding simulated time.
//
//lint:allow walltime — fixture: whole-function instrumentation exemption
func instrumented() time.Duration {
	start := time.Now()
	return time.Since(start)
}
