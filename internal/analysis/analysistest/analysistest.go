// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against expectations written in the fixture
// itself, in the style of golang.org/x/tools' analysistest:
//
//	_ = time.Now() // want `walltime: time\.Now reads the ambient clock`
//
// A `// want` comment expects exactly one diagnostic on its line whose
// message matches the quoted regular expression (Go-quoted: backquotes
// or double quotes).  Every diagnostic must be wanted and every want
// must be matched.  Fixtures are loaded through load.LoadDir, so they
// are fully type-checked — against real module packages when they
// import them — and diagnostics pass through analysis.Run, so the
// //lint:allow filtering is exercised exactly as in production.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// expectation is one `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture directory and reports any mismatch between
// produced diagnostics and `// want` expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	modRoot, err := load.ModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.LoadDir(modRoot, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				if w == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				w.file, w.line = pos.Filename, pos.Line
				wants = append(wants, w)
			}
		}
	}
	diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := match(wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the expectation from a `// want "re"` comment, nil
// if the comment is not a want.
func parseWant(text string) (*expectation, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	rest = strings.TrimSpace(rest)
	quoted, err := strconv.Unquote(rest)
	if err != nil {
		return nil, fmt.Errorf("malformed want %s: %v", rest, err)
	}
	re, err := regexp.Compile(quoted)
	if err != nil {
		return nil, fmt.Errorf("bad want pattern %q: %v", quoted, err)
	}
	return &expectation{re: re}, nil
}

// match finds an unmatched expectation on the diagnostic's line whose
// pattern matches the message.
func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
