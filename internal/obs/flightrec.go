package obs

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// ring is a bounded span buffer: once full, the oldest event is
// overwritten and counted as dropped.
type ring struct {
	evs     []SpanEvent
	start   int
	n       int
	dropped uint64
}

func (r *ring) push(ev SpanEvent) {
	if len(ev.Links) > 0 {
		// Sinks must not retain Links; the ring does, so copy.
		ev.Links = append([]uint64(nil), ev.Links...)
	}
	if r.n < len(r.evs) {
		r.evs[(r.start+r.n)%len(r.evs)] = ev
		r.n++
		return
	}
	r.evs[r.start] = ev
	r.start = (r.start + 1) % len(r.evs)
	r.dropped++
}

// FlightRecorder is a span sink keeping the most recent events in a
// bounded ring per site, so a failing test or a distsim run can dump the
// last moments before the anomaly without having logged everything.
// Events with an empty Site land on the "(system)" ring.
//
// With UseRoster attached, rings are keyed by dense roster index — the
// per-span path is a slice index, and both a SiteRef-carrying span and a
// Note addressed by site name land on the same ring.  Off-roster site
// strings keep falling back to the name-keyed map.
type FlightRecorder struct {
	per   int
	rings map[string]*ring
	// roster and dense, once UseRoster runs, key rings by SiteRef
	// (dense[0] is the "(system)" ring, dense[i+1] roster site i).
	roster *core.Roster
	dense  []*ring
}

// NewFlightRecorder returns a recorder keeping up to perSite events per
// site ring (minimum 1).
func NewFlightRecorder(perSite int) *FlightRecorder {
	if perSite < 1 {
		perSite = 1
	}
	return &FlightRecorder{per: perSite, rings: make(map[string]*ring)}
}

// UseRoster switches the recorder to dense ring keying: one slot per
// roster member plus the system ring, addressed by SpanEvent.SiteRef (or
// by roster lookup for Notes and hand-built spans that carry only the
// site name).  Call it before the first span.
func (f *FlightRecorder) UseRoster(r *core.Roster) {
	f.roster = r
	f.dense = make([]*ring, r.Len()+1)
}

// Span implements Sink.
func (f *FlightRecorder) Span(ev SpanEvent) {
	if f.dense != nil {
		ref := int(ev.SiteRef)
		if ref == 0 && ev.Site != "" {
			if s := f.roster.Site(core.SiteID(ev.Site)); s != core.NoSite {
				ref = int(s) + 1
			} else {
				ref = -1 // off-roster name: map fallback below
			}
		}
		if ref >= 0 && ref < len(f.dense) {
			r := f.dense[ref]
			if r == nil {
				r = &ring{evs: make([]SpanEvent, f.per)}
				f.dense[ref] = r
			}
			r.push(ev)
			return
		}
	}
	site := ev.Site
	if site == "" {
		site = "(system)"
	}
	r := f.rings[site]
	if r == nil {
		r = &ring{evs: make([]SpanEvent, f.per)}
		f.rings[site] = r
	}
	r.push(ev)
}

// Note records a free-form breadcrumb (stage summaries, test context) on
// the given site's ring — the same dense ring the site's spans occupy
// when a roster is attached.
func (f *FlightRecorder) Note(site string, at int64, text string) {
	f.Span(SpanEvent{At: at, Kind: KindNote, Site: site, Detail: text})
}

// Len returns the number of buffered events across all rings.
func (f *FlightRecorder) Len() int {
	n := 0
	for _, r := range f.rings {
		n += r.n
	}
	for _, r := range f.dense {
		if r != nil {
			n += r.n
		}
	}
	return n
}

// Dump writes the buffered events grouped by site (sites sorted, events
// oldest first) in the SpanLog line format, with a header per site
// noting how many older events the ring dropped.
func (f *FlightRecorder) Dump(w io.Writer) error {
	named := make(map[string]*ring, len(f.rings)+len(f.dense))
	for site, r := range f.rings { //lint:allow mapiter — collecting into a map rendered via sortedSites below
		named[site] = r
	}
	for ref, r := range f.dense {
		if r == nil {
			continue
		}
		site := "(system)"
		if ref > 0 {
			site = string(f.roster.ID(core.Site(ref - 1)))
		}
		named[site] = r
	}
	for _, site := range sortedSites(named) {
		r := named[site]
		if _, err := fmt.Fprintf(w, "-- site %s: last %d span(s), %d dropped --\n", site, r.n, r.dropped); err != nil {
			return err
		}
		l := NewSpanLog(w)
		for i := 0; i < r.n; i++ {
			l.Span(r.evs[(r.start+i)%len(r.evs)])
		}
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}
