package obs

// Sampler makes deterministic head-sampling decisions for the tracer: a
// raise is kept or dropped by a seeded hash of its identity (event type,
// origin site, and the raise stamp's global/local components), never by
// ambient randomness — the walltime analyzer forbids time/math/rand in
// instrumented code, and determinism is the point: the same seed over the
// same run yields the same sampled-span stream regardless of worker
// count, transport mode or pooling.
//
// Because the decision is a pure function of raise identity, it can be
// recomputed anywhere the identity is known — in particular on the decode
// side of a serializing transport, where the in-memory sample bit does
// not travel with the occurrence.  Identically-stamped raises of the same
// type at the same site share a decision by construction, coherent with
// the paper's treatment of simultaneity (Section 3.1): they are the same
// instant's occurrence as far as the semantics can tell.
//
// Rates are head rates: the decision is made once, at raise, and
// propagates through constituent capture — a composite detection is
// sampled only when every constituent is, so a sampled detection always
// carries complete lineage (no dangling Links in its KindDetect span).
// Per-name overrides (SetRate) thin specific event types or definitions
// below the default without touching the rest.
//
// A nil *Sampler keeps everything, so wiring code guards one pointer
// check.  Not safe for concurrent mutation; configure before the run.
type Sampler struct {
	seed uint64
	rate float64
	// perName overrides the default rate for specific event types (at
	// raise) or definition names (at publish).
	perName map[string]float64
}

// NewSampler returns a sampler keeping the given fraction of raises
// (clamped to [0, 1]) under the given seed.  Rate 1 keeps everything and
// rate 0 keeps nothing — both bypass the hash entirely.
func NewSampler(seed uint64, rate float64) *Sampler {
	return &Sampler{seed: seed, rate: clampRate(rate), perName: make(map[string]float64)}
}

// SetRate overrides the sampling rate for one event type or definition
// name.  Returns the sampler for chaining.
func (s *Sampler) SetRate(name string, rate float64) *Sampler {
	s.perName[name] = clampRate(rate)
	return s
}

// Rate returns the effective rate for name (the default when no override
// is set).
func (s *Sampler) Rate(name string) float64 {
	if s == nil {
		return 1
	}
	if r, ok := s.perName[name]; ok {
		return r
	}
	return s.rate
}

// HasRate reports whether name carries an explicit per-name override.
// Publish-side thinning applies only to overridden definition names, so
// default-rate composites inherit their constituents' head decision
// untouched.
func (s *Sampler) HasRate(name string) bool {
	if s == nil {
		return false
	}
	_, ok := s.perName[name]
	return ok
}

// Keep decides whether the raise identified by (typ, site, global, local)
// is sampled.  A nil sampler keeps everything.
func (s *Sampler) Keep(typ, site string, global, local int64) bool {
	if s == nil {
		return true
	}
	rate := s.rate
	if r, ok := s.perName[typ]; ok {
		rate = r
	}
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	// Compare the top 53 bits of the hash (exactly representable in a
	// float64) against rate·2^53 — a uniform threshold test with no math
	// package dependency.
	h := s.hash(typ, site, global, local)
	return float64(h>>11) < rate*float64(1<<53)
}

// hash is FNV-1a over the raise identity, offset by the seed.
func (s *Sampler) hash(typ, site string, global, local int64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ s.seed
	for i := 0; i < len(typ); i++ {
		h = (h ^ uint64(typ[i])) * prime
	}
	h = (h ^ 0xff) * prime // separator: "AB"+"C" must not collide with "A"+"BC"
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * prime
	}
	for shift := 0; shift < 64; shift += 8 {
		h = (h ^ (uint64(global) >> shift & 0xff)) * prime
	}
	for shift := 0; shift < 64; shift += 8 {
		h = (h ^ (uint64(local) >> shift & 0xff)) * prime
	}
	return h
}

// clampRate pins a rate into [0, 1].
func clampRate(r float64) float64 {
	switch {
	case r < 0:
		return 0
	case r > 1:
		return 1
	}
	return r
}
