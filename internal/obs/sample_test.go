package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSamplerDegenerateRates(t *testing.T) {
	var nilS *Sampler
	if !nilS.Keep("A", "s1", 1, 1) {
		t.Fatal("nil sampler must keep everything")
	}
	if nilS.Rate("A") != 1 || nilS.HasRate("A") {
		t.Fatal("nil sampler must report rate 1 and no overrides")
	}
	all := NewSampler(7, 1)
	none := NewSampler(7, 0)
	for g := int64(0); g < 200; g++ {
		if !all.Keep("A", "s1", g, g%5) {
			t.Fatalf("rate 1 dropped (g=%d)", g)
		}
		if none.Keep("A", "s1", g, g%5) {
			t.Fatalf("rate 0 kept (g=%d)", g)
		}
	}
	if NewSampler(0, 2.5).Rate("x") != 1 || NewSampler(0, -3).Rate("x") != 0 {
		t.Fatal("rates must clamp into [0, 1]")
	}
}

// TestSamplerDeterminism pins the contract the span-stream matrix in
// ddetect relies on: the decision is a pure function of (seed, identity),
// so two samplers under the same seed agree on every raise, and a raise's
// decision never changes between calls.
func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(42, 0.3)
	b := NewSampler(42, 0.3)
	c := NewSampler(43, 0.3)
	divergent := false
	for _, typ := range []string{"A", "B", "AB"} {
		for _, site := range []string{"s1", "s2"} {
			for g := int64(0); g < 300; g++ {
				ka := a.Keep(typ, site, g, g%7)
				if ka != b.Keep(typ, site, g, g%7) {
					t.Fatalf("same seed disagrees at (%s,%s,%d)", typ, site, g)
				}
				if ka != a.Keep(typ, site, g, g%7) {
					t.Fatalf("decision not stable at (%s,%s,%d)", typ, site, g)
				}
				if ka != c.Keep(typ, site, g, g%7) {
					divergent = true
				}
			}
		}
	}
	if !divergent {
		t.Fatal("seeds 42 and 43 sampled identically over 1800 raises")
	}
	// "AB"+"C" and "A"+"BC" are distinct identities: the separator byte
	// between type and site must keep their hashes apart.
	if NewSampler(9, 0.5).hash("AB", "C", 1, 1) == NewSampler(9, 0.5).hash("A", "BC", 1, 1) {
		t.Fatal("type/site concatenation collides")
	}
}

func TestSamplerRateRoughlyHolds(t *testing.T) {
	s := NewSampler(1234, 0.25)
	kept := 0
	const n = 20000
	for g := int64(0); g < n; g++ {
		if s.Keep("A", "s1", g, 0) {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("rate 0.25 kept %.4f of %d raises", frac, n)
	}
}

func TestSamplerPerNameOverride(t *testing.T) {
	s := NewSampler(5, 1).SetRate("B", 0)
	if !s.HasRate("B") || s.HasRate("A") {
		t.Fatal("HasRate must report exactly the overridden names")
	}
	if s.Rate("B") != 0 || s.Rate("A") != 1 {
		t.Fatalf("Rate(B)=%v Rate(A)=%v", s.Rate("B"), s.Rate("A"))
	}
	for g := int64(0); g < 100; g++ {
		if s.Keep("B", "s1", g, 0) {
			t.Fatalf("overridden type kept at rate 0 (g=%d)", g)
		}
		if !s.Keep("A", "s1", g, 0) {
			t.Fatalf("default-rate type dropped at rate 1 (g=%d)", g)
		}
	}
}

// TestFlightRecorderGenerationReuse pins satellite (b): a recycled pool
// slot — the same pointer at a later generation — must surface in a dump
// as a distinct span identity, not as a continuation of the earlier
// lifetime, including after the per-site ring has wrapped.
func TestFlightRecorderGenerationReuse(t *testing.T) {
	f := NewFlightRecorder(3)
	tr := NewTracer(f)
	slot := &struct{ pad int }{}

	// First lifetime of the slot: raise + release.
	id0 := tr.ID(slot, 0)
	tr.Emit(SpanEvent{ID: id0, At: 10, Kind: KindRaise, Site: "s1", Type: "A"})
	tr.Emit(SpanEvent{ID: id0, At: 20, Kind: KindRelease, Site: "s1", Type: "A"})

	// The slot goes back to the pool (generation bump) and is reused for a
	// different occurrence; push enough spans to wrap the 3-deep ring past
	// the first lifetime entirely.
	id1 := tr.ID(slot, 1)
	if id1 == id0 {
		t.Fatalf("generation bump reused span id %d", id0)
	}
	tr.Emit(SpanEvent{ID: id1, At: 30, Kind: KindRaise, Site: "s1", Type: "B"})
	tr.Emit(SpanEvent{ID: id1, At: 40, Kind: KindRelease, Site: "s1", Type: "B"})
	tr.Emit(SpanEvent{ID: id1, At: 50, Kind: KindDetect, Site: "s1", Type: "B", Links: []uint64{id1}})

	// Both lifetimes' keys keep answering with their own IDs.
	if tr.ID(slot, 0) != id0 || tr.ID(slot, 1) != id1 {
		t.Fatal("generation keys not stable after reuse")
	}

	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	want := `-- site s1: last 3 span(s), 2 dropped --
at=30 kind=raise id=2 site=s1 type=B
at=40 kind=release id=2 site=s1 type=B
at=50 kind=detect id=2 site=s1 type=B links=2
`
	if buf.String() != want {
		t.Fatalf("dump after slot reuse + wraparound:\n%s\nwant:\n%s", buf.String(), want)
	}
	if strings.Contains(buf.String(), "type=A") {
		t.Fatal("wrapped ring still shows the first lifetime")
	}
}
