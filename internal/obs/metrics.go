// Package obs is the deterministic observability layer of the detection
// engine: a metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus-text and expvar-style JSON exporters, event-lineage
// tracing (span events following every occurrence from raise through
// transport, release, detection and publication), and a flight recorder
// (a bounded ring of recent spans per site, dumped when something goes
// wrong).
//
// The layer is a *pure observer* of the simulation, by construction:
//
//   - every timestamp in a span or metric sample is simulated time
//     (internal/clock microticks) supplied by the caller — the package
//     imports neither time nor math/rand, and the obsfx analyzer keeps it
//     that way;
//   - span IDs are assigned in emission order on the crank goroutine, so
//     they are a deterministic function of the occurrence stream, never of
//     goroutine scheduling;
//   - with no sink attached every instrument degenerates to a nil-receiver
//     no-op: a nil *Counter, *Gauge, *Histogram or *Tracer accepts every
//     method call, does nothing, and allocates nothing, so instrumented
//     hot paths cost one branch when observability is off
//     (BenchmarkDisabledInstruments pins 0 allocs/op).
//
// The determinism regression in internal/ddetect (TestObsDeterminism)
// pins the consequence: the engine's occurrence log is byte-identical
// with the full observability stack attached and detached.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing metric.  The zero value is ready
// to use; a nil *Counter is a no-op (the disabled-metrics path).  Not
// safe for concurrent use: instruments are updated from the crank
// goroutine only, the same single-writer discipline the engine's Stats
// counters follow.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a metric that can go up and down.  Nil receivers no-op.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over int64 samples (the engine
// observes simulated durations in microticks).  Bucket i counts samples
// ≤ bounds[i]; one implicit +Inf bucket catches the rest.  Nil receivers
// no-op; Observe allocates nothing.
type Histogram struct {
	bounds []int64
	counts []uint64
	sum    int64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra
	// trailing entry for the +Inf bucket.
	Bounds []int64
	Counts []uint64
	Sum    int64
	Total  uint64
}

// Kind classifies a metric sample.
type Kind int

const (
	// KindCounter marks a monotonically increasing sample.
	KindCounter Kind = iota
	// KindGauge marks a point-in-time sample.
	KindGauge
	// KindHistogram marks a bucketed distribution.
	KindHistogram
)

// Sample is one metric reading in a registry snapshot.
type Sample struct {
	Name string
	Kind Kind
	// Value is the counter/gauge/collector reading; unused for
	// histograms.
	Value float64
	// Hist is set for KindHistogram samples.
	Hist *HistogramSnapshot
}

// CollectorFunc is a pull-style metrics source: at snapshot time it is
// handed an emit function and reports (name, value) gauge samples.  It is
// how the engine's pre-existing counter structs (ddetect.Stats,
// pipeline.StageStats, network.Stats) are published through the registry
// without duplicating their bookkeeping on the hot path: the structs stay
// the source of truth and keep their public accessors, the collector
// reads them only when someone exports.  Names ending in "_total" are
// typed as Prometheus counters, everything else as gauges.
type CollectorFunc func(emit func(name string, value float64))

// metric is one registered instrument.
type metric struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and collectors.  Registration happens
// at setup time (it panics on a duplicate name: a metric name is code,
// not input); updates happen on the crank goroutine; Snapshot and the
// exporters may be called between ticks.  A registry belongs to one
// system: wiring the same registry into two Systems would collide their
// instrument names.
type Registry struct {
	metrics    []metric
	byName     map[string]bool
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// register guards duplicate names.
func (r *Registry) register(name string, kind Kind) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if r.byName[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.byName[name] = true
	r.metrics = append(r.metrics, metric{name: name, kind: kind})
}

// Counter registers and returns a counter.  On a nil registry it returns
// nil, whose methods no-op — callers register once at setup and never
// branch again.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.register(name, KindCounter)
	c := &Counter{}
	r.metrics[len(r.metrics)-1].c = c
	return c
}

// Gauge registers and returns a gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.register(name, KindGauge)
	g := &Gauge{}
	r.metrics[len(r.metrics)-1].g = g
	return g
}

// Histogram registers and returns a fixed-bucket histogram with the given
// ascending upper bounds (nil on a nil registry).  Names may carry a
// {label="value"} suffix (the per-definition latency histograms do); the
// Prometheus exporter splices the synthesized `le` bucket label into the
// existing label set.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
		panic(fmt.Sprintf("obs: malformed histogram label suffix in %q", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	r.register(name, KindHistogram)
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.metrics[len(r.metrics)-1].h = h
	return h
}

// RegisterCollector attaches a pull-style source, invoked at every
// snapshot in registration order.  No-op on a nil registry.
func (r *Registry) RegisterCollector(fn CollectorFunc) {
	if r == nil || fn == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

// Snapshot reads every instrument and collector and returns the samples
// sorted by name — a deterministic, exporter-independent view.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.metrics))
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = float64(m.g.Value())
		case KindHistogram:
			s.Hist = &HistogramSnapshot{
				Bounds: append([]int64(nil), m.h.bounds...),
				Counts: append([]uint64(nil), m.h.counts...),
				Sum:    m.h.sum,
				Total:  m.h.total,
			}
		}
		out = append(out, s)
	}
	for _, fn := range r.collectors {
		fn(func(name string, value float64) {
			kind := KindGauge
			if strings.HasSuffix(family(name), "_total") {
				kind = KindCounter
			}
			out = append(out, Sample{Name: name, Kind: kind, Value: value})
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// family strips a {label} suffix off a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSet returns the inner text of a {label} suffix ("" when plain).
func labelSet(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// fmtFloat renders a sample value the way Prometheus and expvar expect:
// integral values without a decimal point.
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: one `# TYPE` line per family, histograms expanded into
// `_bucket{le="..."}`, `_sum` and `_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for _, s := range r.Snapshot() {
		fam := family(s.Name)
		if !typed[fam] {
			typed[fam] = true
			t := "gauge"
			switch {
			case s.Kind == KindHistogram:
				t = "histogram"
			case s.Kind == KindCounter:
				t = "counter"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, t); err != nil {
				return err
			}
		}
		if s.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, fmtFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		lbl := labelSet(s.Name)
		cum := uint64(0)
		for i, c := range s.Hist.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Hist.Bounds) {
				le = strconv.FormatInt(s.Hist.Bounds[i], 10)
			}
			var err error
			if lbl != "" {
				_, err = fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", fam, lbl, le, cum)
			} else {
				_, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, le, cum)
			}
			if err != nil {
				return err
			}
		}
		var err error
		if lbl != "" {
			_, err = fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n", fam, lbl, s.Hist.Sum, fam, lbl, s.Hist.Total)
		} else {
			_, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", fam, s.Hist.Sum, fam, s.Hist.Total)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as one expvar-style JSON object with
// sorted keys: scalar metrics map to numbers, histograms to
// {"count", "sum", "buckets"} objects keyed by upper bound.
func (r *Registry) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, s := range r.Snapshot() {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "\n  %s: ", strconv.Quote(s.Name)); err != nil {
			return err
		}
		if s.Kind != KindHistogram {
			if _, err := io.WriteString(w, fmtFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, `{"count": %d, "sum": %d, "buckets": {`, s.Hist.Total, s.Hist.Sum); err != nil {
			return err
		}
		for j, c := range s.Hist.Counts {
			le := "+Inf"
			if j < len(s.Hist.Bounds) {
				le = strconv.FormatInt(s.Hist.Bounds[j], 10)
			}
			sep := ""
			if j > 0 {
				sep = ", "
			}
			if _, err := fmt.Fprintf(w, "%s%q: %d", sep, le, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}
