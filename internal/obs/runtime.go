package obs

import "runtime"

// RegisterRuntimeCollector attaches Go runtime health metrics (heap, GC,
// goroutines) to the registry as a pull-style collector: nothing is read
// until someone exports, so attaching it costs the hot path nothing.
//
// These are the one deliberate exception to the package's
// simulated-time-only rule: they describe the *process*, not the
// simulation, and are timing-dependent by nature (GC cycles, live heap).
// They are therefore opt-in — the determinism suites never register them —
// and must never feed a determinism comparison.  runtime.ReadMemStats
// stops the world briefly; exporting between ticks keeps that off the
// crank.
func RegisterRuntimeCollector(r *Registry) {
	r.RegisterCollector(func(emit func(name string, value float64)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit("go_heap_alloc_bytes", float64(ms.HeapAlloc))
		emit("go_heap_objects", float64(ms.HeapObjects))
		emit("go_heap_sys_bytes", float64(ms.HeapSys))
		emit("go_gc_cycles_total", float64(ms.NumGC))
		emit("go_gc_pause_ns_total", float64(ms.PauseTotalNs))
		emit("go_alloc_bytes_total", float64(ms.TotalAlloc))
		emit("go_goroutines", float64(runtime.NumGoroutine()))
	})
}
