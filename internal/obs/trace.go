package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// SpanKind names a lineage stage: the life of an occurrence is raise →
// send → recv → release → detect → publish, and each span event marks
// its crossing of one of those boundaries.
type SpanKind uint8

const (
	// KindRaise marks a primitive or composite occurrence entering the
	// system at its origin site.
	KindRaise SpanKind = iota
	// KindSend marks an occurrence leaving a site inside a transport
	// envelope (Peer is the destination).
	KindSend
	// KindRecv marks an occurrence arriving at a consumer site (Peer is
	// the origin).
	KindRecv
	// KindRelease marks the reorder buffer handing an occurrence to the
	// detectors once the site watermark passes it.
	KindRelease
	// KindDetect marks a composite detection; Links carries the span IDs
	// of the constituent occurrences, Detail the Max-set timestamp.
	KindDetect
	// KindPublish marks a detection reaching subscribers (and, for
	// hierarchical definitions, re-entering transport as a constituent).
	KindPublish
	// KindNote is free-form annotation (stage summaries, test
	// breadcrumbs) — mostly used through FlightRecorder.Note.
	KindNote
)

// String returns the lowercase stage name.
func (k SpanKind) String() string {
	switch k {
	case KindRaise:
		return "raise"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindRelease:
		return "release"
	case KindDetect:
		return "detect"
	case KindPublish:
		return "publish"
	case KindNote:
		return "note"
	}
	return "unknown"
}

// SpanEvent is one point on an occurrence's lineage.  At is simulated
// time in microticks; ID is the tracer-assigned span ID of the subject
// occurrence (IDs are assigned in emission order on the crank goroutine,
// so they are deterministic).
type SpanEvent struct {
	ID   uint64
	At   int64
	Kind SpanKind
	// Site is where the event happened; Peer is the other side of a
	// send/recv hop ("" otherwise).
	Site string
	Peer string
	// SiteRef is Site's dense roster index plus one (0 = no site / not
	// interned).  Emitters inside a sealed system set it so roster-aware
	// sinks (ChromeTrace.UseRoster, FlightRecorder.UseRoster) can key
	// their per-site state by integer instead of hashing the string.
	// Text sinks ignore it — span logs print only the string, so
	// determinism artifacts are unchanged.
	SiteRef int32
	// Type is the event type of the subject occurrence.
	Type string
	// Detail carries the composite timestamp (raise/detect) or other
	// stage-specific context.
	Detail string
	// Links are span IDs of related occurrences: for KindDetect, the
	// constituents whose Max-set formed this detection's timestamp.
	Links []uint64
}

// Sink consumes span events.  Implementations must not retain ev.Links
// past the call (tracers may reuse the slice).
type Sink interface {
	Span(ev SpanEvent)
}

// spanKey identifies a traced subject: the subject's identity (pointer)
// plus its pool generation.  Pooled occurrences recycle their storage, so
// a bare pointer would alias spans of unrelated events; stamping the key
// with event.(*Occurrence).Gen() mirrors the pool's own use-after-put
// check and makes each (slot, generation) lifetime a distinct span.
// Unpooled subjects pass gen 0 — the key still holds the pointer, so the
// GC cannot recycle the address underneath the mapping.
type spanKey struct {
	subject any
	gen     uint32
}

// Tracer assigns span IDs to occurrences and forwards events to a sink.
// A nil *Tracer no-ops everywhere, so instrumented code guards one
// pointer check per span point.  A tracer with a nil sink is equally
// inert — ID assignment is skipped along with emission, so wiring the
// tracer in with sinks detached costs only the call-site branches and
// stack-built events (the "enabled-but-unsunk" overhead mode the smoke
// benchmark measures).
//
// Not safe for concurrent use — all span points sit on the crank
// goroutine, which is exactly what makes the IDs deterministic.
type Tracer struct {
	sink Sink
	ids  map[spanKey]uint64
	next uint64
	// links is a scratch buffer handed out by LinkBuf so KindDetect
	// events can carry constituent IDs without a per-event allocation.
	links []uint64
}

// NewTracer returns a tracer feeding sink (which may be nil).
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, ids: make(map[spanKey]uint64)}
}

// Active reports whether Emit would reach a sink.  Use it to skip
// building expensive Detail strings.
func (t *Tracer) Active() bool {
	return t != nil && t.sink != nil
}

// ID returns the span ID for one lifetime of subject, assigning the next
// sequential ID on first sight.  Subjects are compared by identity
// (pointer) plus gen — the occurrence's pool generation
// (event.(*Occurrence).Gen(), 0 for unpooled subjects) — so the same
// *event.Occurrence keeps one ID across its pipeline stages while a
// recycled slot starts a fresh span instead of inheriting the previous
// tenant's.  Returns 0 on a nil or sinkless tracer; real IDs start at 1.
//
// The mapping is append-only: stale (slot, generation) keys from
// completed lifetimes are retained, so a tracing run's working set grows
// with the number of traced occurrences.  Prefer bounded runs or a
// Sampler when tracing a long-lived system.
func (t *Tracer) ID(subject any, gen uint32) uint64 {
	if t == nil || t.sink == nil {
		return 0
	}
	k := spanKey{subject: subject, gen: gen}
	if id, ok := t.ids[k]; ok {
		return id
	}
	t.next++
	t.ids[k] = t.next
	return t.next
}

// LinkBuf returns the tracer's scratch link buffer, emptied.  Append
// constituent IDs to it and pass it as SpanEvent.Links; it is valid
// until the next LinkBuf call.
func (t *Tracer) LinkBuf() []uint64 {
	if t == nil {
		return nil
	}
	t.links = t.links[:0]
	return t.links
}

// KeepLinkBuf stores the (possibly grown) buffer back for reuse.
func (t *Tracer) KeepLinkBuf(buf []uint64) {
	if t != nil {
		t.links = buf
	}
}

// Emit forwards the event to the sink, if any.
func (t *Tracer) Emit(ev SpanEvent) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Span(ev)
}

// MultiSink fans one event out to several sinks in order.
type MultiSink []Sink

// Span implements Sink.
func (m MultiSink) Span(ev SpanEvent) {
	for _, s := range m {
		s.Span(ev)
	}
}

// SpanLog is a line-oriented span sink: one `key=value` record per
// event, human-greppable and trivially diffable.  Write errors are
// sticky; check Err once at the end.
type SpanLog struct {
	w   io.Writer
	err error
	buf []byte
}

// NewSpanLog returns a span log writing to w.
func NewSpanLog(w io.Writer) *SpanLog {
	return &SpanLog{w: w}
}

// Span implements Sink.
func (l *SpanLog) Span(ev SpanEvent) {
	if l.err != nil {
		return
	}
	b := l.buf[:0]
	b = append(b, "at="...)
	b = strconv.AppendInt(b, ev.At, 10)
	b = append(b, " kind="...)
	b = append(b, ev.Kind.String()...)
	b = append(b, " id="...)
	b = strconv.AppendUint(b, ev.ID, 10)
	if ev.Site != "" {
		b = append(b, " site="...)
		b = append(b, ev.Site...)
	}
	if ev.Peer != "" {
		b = append(b, " peer="...)
		b = append(b, ev.Peer...)
	}
	if ev.Type != "" {
		b = append(b, " type="...)
		b = append(b, ev.Type...)
	}
	if len(ev.Links) > 0 {
		b = append(b, " links="...)
		for i, id := range ev.Links {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, id, 10)
		}
	}
	if ev.Detail != "" {
		b = append(b, " detail="...)
		b = strconv.AppendQuote(b, ev.Detail)
	}
	b = append(b, '\n')
	l.buf = b
	_, l.err = l.w.Write(b)
}

// Err returns the first write error, if any.
func (l *SpanLog) Err() error { return l.err }

// ChromeTrace streams span events as Chrome trace_event JSON (the format
// chrome://tracing and Perfetto load): each span event becomes an
// instant event on a per-site track, with the span ID, links and detail
// in args.  Microticks are written as the microsecond timestamps the
// format expects, so one trace-viewer microsecond is one simulated
// microtick.  Call Close to terminate the JSON array.
type ChromeTrace struct {
	w     io.Writer
	err   error
	wrote bool
	// tids maps site → synthetic thread ID, assigned in first-seen
	// order; tidNames remembers them for ordering metadata.
	tids  map[string]int
	order []string
	// refTids, once UseRoster runs, maps SpanEvent.SiteRef → tid (index 0
	// is the "(system)" track), making the per-span tid lookup a slice
	// index instead of a string hash.
	refTids []int
}

// NewChromeTrace returns a Chrome trace writer targeting w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	_, err := io.WriteString(w, "[")
	return &ChromeTrace{w: w, err: err, tids: make(map[string]int)}
}

// UseRoster pre-assigns every site's synthetic thread ID in roster
// (canonical ID) order — tid i+1 for roster index i, with the "(system)"
// track after them — and emits all the thread_name metadata up front.
// Track numbering then depends only on the sealed membership, never on
// which site happens to speak first, so traces from different runs,
// worker counts or transport modes line up track-for-track.  Call it
// before the first span; events carrying a SiteRef skip the string map
// entirely afterwards.
func (c *ChromeTrace) UseRoster(r *core.Roster) {
	c.refTids = make([]int, r.Len()+1)
	for i := 0; i < r.Len(); i++ {
		c.refTids[i+1] = c.tid(string(r.ID(core.Site(i))))
	}
	c.refTids[0] = c.tid("")
}

// tid returns the synthetic thread ID for a site, emitting a
// thread_name metadata record on first sight so viewers label the
// track with the site name.
func (c *ChromeTrace) tid(site string) int {
	if site == "" {
		site = "(system)"
	}
	if id, ok := c.tids[site]; ok {
		return id
	}
	id := len(c.order) + 1
	c.tids[site] = id
	c.order = append(c.order, site)
	c.record(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, id, site))
	return id
}

// tidFor resolves an event's track: the dense SiteRef path when a roster
// is attached, the first-seen string map otherwise.
func (c *ChromeTrace) tidFor(ev SpanEvent) int {
	if c.refTids != nil {
		if ev.SiteRef > 0 && int(ev.SiteRef) < len(c.refTids) {
			return c.refTids[ev.SiteRef]
		}
		if ev.Site == "" {
			return c.refTids[0]
		}
	}
	return c.tid(ev.Site)
}

// record writes one JSON object into the stream.
func (c *ChromeTrace) record(obj string) {
	if c.err != nil {
		return
	}
	sep := ",\n"
	if !c.wrote {
		sep = "\n"
		c.wrote = true
	}
	_, c.err = io.WriteString(c.w, sep+obj)
}

// Span implements Sink.
func (c *ChromeTrace) Span(ev SpanEvent) {
	if c.err != nil {
		return
	}
	tid := c.tidFor(ev)
	var args strings.Builder
	fmt.Fprintf(&args, `{"id":%d`, ev.ID)
	if ev.Peer != "" {
		fmt.Fprintf(&args, `,"peer":%q`, ev.Peer)
	}
	if len(ev.Links) > 0 {
		args.WriteString(`,"links":[`)
		for i, id := range ev.Links {
			if i > 0 {
				args.WriteByte(',')
			}
			fmt.Fprintf(&args, "%d", id)
		}
		args.WriteByte(']')
	}
	if ev.Detail != "" {
		fmt.Fprintf(&args, `,"stamp":%q`, ev.Detail)
	}
	args.WriteByte('}')
	name := ev.Kind.String()
	if ev.Type != "" {
		name += " " + ev.Type
	}
	c.record(fmt.Sprintf(`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%d,"args":%s}`,
		name, tid, ev.At, args.String()))
}

// Close terminates the JSON array.  The trace is not loadable before
// Close.
func (c *ChromeTrace) Close() error {
	if c.err != nil {
		return c.err
	}
	_, c.err = io.WriteString(c.w, "\n]\n")
	return c.err
}

// Err returns the first write error, if any.
func (c *ChromeTrace) Err() error { return c.err }

// sortedSites returns map keys in sorted order (export-path helper; the
// hot path never iterates maps).
func sortedSites[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
