package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Total() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments leaked state: %d %d %d", c.Value(), g.Value(), h.Total())
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", 1) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.RegisterCollector(func(func(string, float64)) { t.Fatal("collector on nil registry") })
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v", s)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup")
	r.Gauge("dup")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100, 1000)
	for _, v := range []int64{0, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Hist == nil {
		t.Fatalf("snapshot = %+v", snap)
	}
	got := snap[0].Hist.Counts
	want := []uint64{2, 3, 0, 1} // ≤10: {0,10}; ≤100: {11,99,100}; ≤1000: {}; +Inf: {5000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if snap[0].Hist.Total != 6 || snap[0].Hist.Sum != 5220 {
		t.Fatalf("total=%d sum=%d", snap[0].Hist.Total, snap[0].Hist.Sum)
	}
}

func TestSnapshotSortedAndCollectorTyping(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(4)
	r.Gauge("aa").Set(-2)
	r.RegisterCollector(func(emit func(string, float64)) {
		emit("mm_total", 9)
		emit(`kk{stage="detect"}`, 1.5)
	})
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	want := []string{"aa", `kk{stage="detect"}`, "mm_total", "zz_total"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
	if snap[2].Kind != KindCounter {
		t.Fatal("collector sample ending in _total should be a counter")
	}
	if snap[1].Kind != KindGauge {
		t.Fatal("labelled collector sample should default to gauge")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(12)
	r.Gauge("inflight").Set(3)
	r.Histogram("lat", 10, 100).Observe(7)
	r.RegisterCollector(func(emit func(string, float64)) {
		emit(`stage_items_total{stage="detect"}`, 5)
		emit(`stage_items_total{stage="ingest"}`, 8)
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE events_total counter
events_total 12
# TYPE inflight gauge
inflight 3
# TYPE lat histogram
lat_bucket{le="10"} 1
lat_bucket{le="100"} 1
lat_bucket{le="+Inf"} 1
lat_sum 7
lat_count 1
# TYPE stage_items_total counter
stage_items_total{stage="detect"} 5
stage_items_total{stage="ingest"} 8
`
	if buf.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestWritePrometheusLabeledHistogram pins the labeled-histogram
// rendering: the le bucket label is spliced into the declared label set
// and the family line strips the labels.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`leg_microticks{leg="send_to_recv"}`, 10, 100)
	h.Observe(7)
	h.Observe(70)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE leg_microticks histogram
leg_microticks_bucket{leg="send_to_recv",le="10"} 1
leg_microticks_bucket{leg="send_to_recv",le="100"} 2
leg_microticks_bucket{leg="send_to_recv",le="+Inf"} 2
leg_microticks_sum{leg="send_to_recv"} 77
leg_microticks_count{leg="send_to_recv"} 2
`
	if buf.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestHistogramMalformedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("malformed label suffix did not panic")
		}
	}()
	NewRegistry().Histogram(`bad{leg="x"`, 10)
}

// TestRuntimeCollector smoke-tests the opt-in process-health collector:
// it registers without colliding and reports a plausible live heap.
func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeCollector(r)
	snap := r.Snapshot()
	got := map[string]float64{}
	for _, s := range snap {
		got[s.Name] = s.Value
		if s.Name == "go_gc_cycles_total" && s.Kind != KindCounter {
			t.Fatal("go_gc_cycles_total should be typed as a counter")
		}
	}
	for _, name := range []string{
		"go_heap_alloc_bytes", "go_heap_objects", "go_heap_sys_bytes",
		"go_gc_cycles_total", "go_gc_pause_ns_total", "go_alloc_bytes_total",
		"go_goroutines",
	} {
		if _, ok := got[name]; !ok {
			t.Fatalf("runtime collector missing %s (snapshot %v)", name, got)
		}
	}
	if got["go_heap_alloc_bytes"] <= 0 || got["go_goroutines"] < 1 {
		t.Fatalf("implausible runtime sample: heap=%v goroutines=%v",
			got["go_heap_alloc_bytes"], got["go_goroutines"])
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("h", 5).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if decoded["a_total"] != float64(2) {
		t.Fatalf("a_total = %v", decoded["a_total"])
	}
	h, ok := decoded["h"].(map[string]any)
	if !ok || h["count"] != float64(1) || h["sum"] != float64(3) {
		t.Fatalf("h = %v", decoded["h"])
	}
	buckets, _ := h["buckets"].(map[string]any)
	if buckets["5"] != float64(1) || buckets["+Inf"] != float64(0) {
		t.Fatalf("buckets = %v", buckets)
	}
}

func TestTracerIDs(t *testing.T) {
	var nilT *Tracer
	if nilT.Active() || nilT.ID("x", 0) != 0 {
		t.Fatal("nil tracer must be inert")
	}
	nilT.Emit(SpanEvent{})

	unsunk := NewTracer(nil)
	if unsunk.Active() || unsunk.ID("x", 0) != 0 {
		t.Fatal("unsunk tracer must skip ID bookkeeping along with emission")
	}
	unsunk.Emit(SpanEvent{ID: 1}) // unsunk: dropped, must not panic

	tr := NewTracer(discardSink{})
	a, b := &struct{ int }{1}, &struct{ int }{1}
	if tr.ID(a, 0) != 1 || tr.ID(b, 0) != 2 || tr.ID(a, 0) != 1 {
		t.Fatal("IDs not sequential/stable by identity")
	}
	// Generation-stamped reuse: the same pointer at a later pool
	// generation is a different lifetime and must get a fresh span ID,
	// while the old (pointer, generation) key keeps answering for the
	// spans already emitted.
	if tr.ID(a, 1) != 3 || tr.ID(a, 0) != 1 || tr.ID(a, 1) != 3 {
		t.Fatal("generation must separate lifetimes of a recycled pointer")
	}
}

// discardSink consumes spans without recording them.
type discardSink struct{}

func (discardSink) Span(SpanEvent) {}

func TestSpanLogFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewSpanLog(&buf)
	tr := NewTracer(l)
	if !tr.Active() {
		t.Fatal("sunk tracer inactive")
	}
	tr.Emit(SpanEvent{ID: 1, At: 420, Kind: KindRaise, Site: "s1", Type: "A", Detail: "{(s1 4 2)}"})
	tr.Emit(SpanEvent{ID: 3, At: 900, Kind: KindDetect, Site: "s2", Type: "AB", Links: []uint64{1, 2}})
	tr.Emit(SpanEvent{ID: 1, At: 500, Kind: KindSend, Site: "s1", Peer: "s2", Type: "A"})
	want := `at=420 kind=raise id=1 site=s1 type=A detail="{(s1 4 2)}"
at=900 kind=detect id=3 site=s2 type=AB links=1,2
at=500 kind=send id=1 site=s1 peer=s2 type=A
`
	if buf.String() != want {
		t.Fatalf("span log:\n%s\nwant:\n%s", buf.String(), want)
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeTrace(&buf)
	c.Span(SpanEvent{ID: 1, At: 100, Kind: KindRaise, Site: "s1", Type: "A", Detail: "{(s1 1 1)}"})
	c.Span(SpanEvent{ID: 2, At: 150, Kind: KindRecv, Site: "s2", Peer: "s1", Type: "A"})
	c.Span(SpanEvent{ID: 3, At: 200, Kind: KindDetect, Site: "s2", Type: "AB", Links: []uint64{1, 2}})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("invalid trace JSON %q: %v", buf.String(), err)
	}
	// 2 thread_name metadata records + 3 instant events.
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5: %v", len(recs), recs)
	}
	if recs[0]["ph"] != "M" || recs[0]["name"] != "thread_name" {
		t.Fatalf("first record should name the track: %v", recs[0])
	}
	detect := recs[4]
	if detect["ph"] != "i" || detect["ts"] != float64(200) || detect["name"] != "detect AB" {
		t.Fatalf("detect record = %v", detect)
	}
	args := detect["args"].(map[string]any)
	links := args["links"].([]any)
	if len(links) != 2 || links[0] != float64(1) {
		t.Fatalf("links = %v", links)
	}
	// Both events on s2 must share a tid distinct from s1's.
	if recs[1]["tid"] == recs[3]["tid"] || recs[3]["tid"] != recs[4]["tid"] {
		t.Fatalf("tid assignment wrong: %v %v %v", recs[1]["tid"], recs[3]["tid"], recs[4]["tid"])
	}
}

// chromeTids parses a trace and returns the site → tid assignment from
// its thread_name metadata records.
func chromeTids(t *testing.T, raw []byte) map[string]float64 {
	t.Helper()
	var recs []map[string]any
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatalf("invalid trace JSON %q: %v", raw, err)
	}
	tids := make(map[string]float64)
	for _, r := range recs {
		if r["ph"] == "M" && r["name"] == "thread_name" {
			args := r["args"].(map[string]any)
			tids[args["name"].(string)] = r["tid"].(float64)
		}
	}
	return tids
}

// TestChromeTraceRosterStableTids pins the UseRoster contract: thread IDs
// are a function of the sealed membership alone, so two runs whose sites
// speak in different orders still number every track identically (the
// first-seen fallback, by contrast, assigns tids in arrival order).
func TestChromeTraceRosterStableTids(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b", "c"})
	run := func(order []string) (map[string]float64, int) {
		var buf bytes.Buffer
		c := NewChromeTrace(&buf)
		c.UseRoster(roster)
		for i, site := range order {
			ref := int32(roster.MustSite(core.SiteID(site))) + 1
			c.Span(SpanEvent{ID: uint64(i + 1), At: int64(i * 10), Kind: KindRaise, Site: site, SiteRef: ref, Type: "A"})
		}
		c.Span(SpanEvent{At: 99, Kind: KindNote, Detail: "tick"}) // system track
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		var recs []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
			t.Fatalf("invalid trace JSON: %v", err)
		}
		return chromeTids(t, buf.Bytes()), len(recs)
	}
	first, n1 := run([]string{"c", "a", "b"})
	second, n2 := run([]string{"b", "c", "a"})
	if n1 != n2 {
		t.Fatalf("record counts differ: %d vs %d", n1, n2)
	}
	want := map[string]float64{"a": 1, "b": 2, "c": 3, "(system)": 4}
	for site, tid := range want {
		if first[site] != tid || second[site] != tid {
			t.Fatalf("tid[%s] = %v / %v across runs, want %v (map %v)", site, first[site], second[site], tid, first)
		}
	}
}

// TestFlightRecorderRosterKeying pins the dense-ring contract: a
// SiteRef-carrying span and a Note addressed by site name share one ring.
func TestFlightRecorderRosterKeying(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b"})
	f := NewFlightRecorder(4)
	f.UseRoster(roster)
	ref := int32(roster.MustSite("b")) + 1
	f.Span(SpanEvent{ID: 1, At: 10, Kind: KindRelease, Site: "b", SiteRef: ref, Type: "A"})
	f.Note("b", 20, "checkpoint")
	f.Note("", 30, "tick done")            // system ring
	f.Note("zz", 40, "off-roster visitor") // name-keyed fallback
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	want := `-- site (system): last 1 span(s), 0 dropped --
at=30 kind=note id=0 detail="tick done"
-- site b: last 2 span(s), 0 dropped --
at=10 kind=release id=1 site=b type=A
at=20 kind=note id=0 site=b detail="checkpoint"
-- site zz: last 1 span(s), 0 dropped --
at=40 kind=note id=0 site=zz detail="off-roster visitor"
`
	if buf.String() != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b bytes.Buffer
	m := MultiSink{NewSpanLog(&a), NewSpanLog(&b)}
	m.Span(SpanEvent{ID: 1, At: 5, Kind: KindNote, Detail: "x"})
	if a.String() != b.String() || a.Len() == 0 {
		t.Fatalf("fan-out mismatch: %q vs %q", a.String(), b.String())
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	f := NewFlightRecorder(3)
	links := []uint64{9}
	for i := 1; i <= 5; i++ {
		f.Span(SpanEvent{ID: uint64(i), At: int64(i * 10), Kind: KindRelease, Site: "s1", Type: "A", Links: links})
	}
	links[0] = 77 // recorder must have copied, not aliased
	f.Note("", 60, "tick 6 done")
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `-- site (system): last 1 span(s), 0 dropped --
at=60 kind=note id=0 detail="tick 6 done"
-- site s1: last 3 span(s), 2 dropped --
at=30 kind=release id=3 site=s1 type=A links=9
at=40 kind=release id=4 site=s1 type=A links=9
at=50 kind=release id=5 site=s1 type=A links=9
`
	if out != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", out, want)
	}
	if strings.Contains(out, "77") {
		t.Fatal("ring aliased the Links slice")
	}
}

// BenchmarkDisabledInstruments pins the acceptance criterion: the
// disabled metrics/tracing path allocates nothing.
func BenchmarkDisabledInstruments(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
		g.Set(int64(i))
		h.Observe(int64(i))
		if tr.Active() {
			b.Fatal("unreachable")
		}
		tr.Emit(SpanEvent{ID: 1, At: int64(i), Kind: KindRaise})
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(1)
		tr.Emit(SpanEvent{Kind: KindSend})
	}); n != 0 {
		b.Fatalf("disabled path allocates %v per op", n)
	}
}

// BenchmarkEnabledCounters measures the live single-writer hot path.
func BenchmarkEnabledCounters(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat", 8, 64, 512, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i & 1023))
	}
}
