package ddetect

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
	"repro/internal/workload"
)

// runScenario executes a fixed adversarial workload and returns the
// detection signatures in order.
func runSerializeScenario(t *testing.T, serialize bool) []string {
	t.Helper()
	sys := MustNewSystem(Config{
		Net: network.Config{BaseLatency: 25, Jitter: 70, DropRate: 0.05,
			RetransmitDelay: 140, Seed: 77},
		Serialize: serialize,
	})
	siteIDs := []core.SiteID{"s0", "s1", "s2"}
	for i, id := range siteIDs {
		sys.MustAddSite(id, int64(i*11)-10, 0)
	}
	for _, typ := range []string{"A", "B", "C"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("s0", "Seq", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("s0", "Guard", "NOT(C)[A, B]", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, name := range []string{"Seq", "Guard"} {
		if err := sys.Subscribe(name, func(o *event.Occurrence) {
			sig := o.Type
			for _, c := range o.Flatten() {
				sig += fmt.Sprintf("|%s@%s:%d", c.Type, c.Site, c.Stamp[0].Local)
			}
			got = append(got, sig)
		}); err != nil {
			t.Fatal(err)
		}
	}
	trace := workload.GenStream(workload.StreamConfig{
		Sites: siteIDs, Types: []string{"A", "B", "C"}, MeanGap: 90, Count: 300, Seed: 5,
	})
	for _, item := range trace.Items {
		sys.Run(item.At, 50)
		sys.Site(item.Site).MustRaise(item.Type, event.Explicit, item.Params)
	}
	if err := sys.Settle(50_000); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSerializeTransparent proves the wire codec is semantically invisible:
// the exact same detections, in the same order, with and without
// serialization of every bus message.
func TestSerializeTransparent(t *testing.T) {
	plain := runSerializeScenario(t, false)
	coded := runSerializeScenario(t, true)
	if len(plain) == 0 {
		t.Fatalf("degenerate scenario: no detections")
	}
	if len(plain) != len(coded) {
		t.Fatalf("detection counts differ: %d vs %d", len(plain), len(coded))
	}
	for i := range plain {
		if plain[i] != coded[i] {
			t.Fatalf("detection %d differs:\n plain: %s\n coded: %s", i, plain[i], coded[i])
		}
	}
}

// TestSerializeRejectsUnencodableParams: raising an event whose parameters
// cannot cross the wire must fail loudly at the raise, not corrupt the
// stream.
func TestSerializeRejectsUnencodableParams(t *testing.T) {
	sys := MustNewSystem(Config{Serialize: true})
	sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "X", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("unencodable params must panic at the raise")
		}
	}()
	edge.MustRaise("A", event.Explicit, event.Params{"bad": make(chan int)})
}
