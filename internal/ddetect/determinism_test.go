package ddetect

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/network"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// scenarioOpts parameterizes runScenario.  The zero value is invalid; use
// defaultScenario() for the canonical six-site adversarial run.
type scenarioOpts struct {
	workers int
	sites   int   // ≥ 3: the definitions live at the first three sites
	count   int   // workload events
	seed    int64 // drives the workload, the network and the site skews
	mutate  func(*Config)
	// noObs leaves the system completely uninstrumented.  By default
	// runScenario arms a flight-recorder-backed tracer (dumped into the
	// test log on failure); TestObsDeterminism needs a genuinely bare
	// baseline to compare against.
	noObs bool
	// inspect, when set, runs against the settled system before it is
	// discarded (pool-counter assertions and the like).
	inspect func(*System)
}

func defaultScenario() scenarioOpts {
	return scenarioOpts{sites: 6, count: 900, seed: 5}
}

// runScenario drives one seeded adversarial scenario — skewed sites,
// jittery lossy network, definitions at three hosts including a
// hierarchically forwarded composite — and serializes every detection (in
// publish order, with full constituent trees) through internal/eventlog.
// The returned bytes are a total description of the occurrence stream.
func runScenario(t testing.TB, o scenarioOpts) ([]byte, Stats) {
	cfg := Config{
		Net: network.Config{
			BaseLatency: 20, Jitter: 70,
			DropRate: 0.05, RetransmitDelay: 150, Seed: o.seed + 101,
		},
		Pipeline: pipeline.Config{Workers: o.workers},
	}
	if o.mutate != nil {
		o.mutate(&cfg)
	}
	if !o.noObs && cfg.Trace == nil {
		attachFlightRecorder(t, &cfg, 48)
	}
	sys := MustNewSystem(cfg)
	rng := rand.New(rand.NewSource(o.seed + 202))
	ids := make([]core.SiteID, o.sites)
	for i := range ids {
		ids[i] = core.SiteID(fmt.Sprintf("s%02d", i))
		sys.MustAddSite(ids[i], rng.Int63n(61)-30, rng.Int63n(4))
	}
	for _, typ := range []string{"A", "B", "C", "D"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	defs := []struct {
		host       core.SiteID
		name, expr string
		ctx        detector.Context
	}{
		{ids[0], "Seq", "A ; B", detector.Chronicle},
		{ids[1], "Conj", "C AND D", detector.Recent},
		{ids[2], "Guard", "NOT(C)[A, D]", detector.Chronicle},
		{ids[2], "Any2", "ANY(2, A, B, C)", detector.Chronicle},
		// Hierarchical: Seq is detected at ids[0] and forwarded to ids[1].
		{ids[1], "Pair", "Seq AND C", detector.Chronicle},
	}
	var buf bytes.Buffer
	log := eventlog.NewWriter(&buf)
	for _, d := range defs {
		if _, err := sys.DefineAt(d.host, d.name, d.expr, d.ctx); err != nil {
			t.Fatal(err)
		}
		if err := sys.Subscribe(d.name, func(o *event.Occurrence) {
			if err := log.Append(o); err != nil {
				t.Errorf("log append: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	trace := workload.GenStream(workload.StreamConfig{
		Sites: ids, Types: []string{"A", "B", "C", "D"},
		MeanGap: 40, Count: o.count, Seed: o.seed,
	})
	for _, item := range trace.Items {
		sys.Run(item.At, 50)
		sys.Site(item.Site).MustRaise(item.Type, event.Explicit, item.Params)
	}
	if err := sys.Settle(50_000); err != nil {
		t.Fatal(err)
	}
	if o.inspect != nil {
		o.inspect(sys)
	}
	return buf.Bytes(), sys.Stats()
}

// runPipelineScenario is the canonical six-site scenario at a given
// worker count (the PR-1 determinism regression's entry point).
func runPipelineScenario(t testing.TB, workers int) ([]byte, Stats) {
	o := defaultScenario()
	o.workers = workers
	return runScenario(t, o)
}

// TestPipelineDeterminism is the regression test for the parallel detect
// stage: the same seeded scenario must produce byte-identical occurrence
// logs whatever the worker count.  Run it under -race to also certify the
// worker pool's isolation contract (the Makefile's ci target does).
func TestPipelineDeterminism(t *testing.T) {
	seqLog, seqStats := runPipelineScenario(t, 0)
	if seqStats.Detections == 0 {
		t.Fatalf("scenario produced no detections; the comparison is vacuous")
	}
	if len(seqLog) == 0 {
		t.Fatalf("empty occurrence log despite %d detections", seqStats.Detections)
	}
	for _, workers := range []int{1, 2, 8} {
		parLog, parStats := runPipelineScenario(t, workers)
		if parStats.Detections != seqStats.Detections {
			t.Fatalf("workers=%d: %d detections, sequential had %d",
				workers, parStats.Detections, seqStats.Detections)
		}
		if !bytes.Equal(seqLog, parLog) {
			t.Fatalf("workers=%d: occurrence log (%d bytes) differs from sequential (%d bytes)",
				workers, len(parLog), len(seqLog))
		}
	}
}

// TestBatchingDeterminism is the PR-4 transport regression: per-link
// envelope coalescing must be invisible to detection.  Across several
// seeds and site counts, the occurrence log must be byte-identical in all
// four transport modes — batching on/off × serialized/in-memory payloads
// — and the batched bus must actually coalesce (fewer messages than
// envelopes).
func TestBatchingDeterminism(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unbatched", func(c *Config) { c.DisableBatching = true }},
		{"serialized", func(c *Config) { c.Serialize = true }},
		{"serialized-unbatched", func(c *Config) { c.Serialize = true; c.DisableBatching = true }},
	}
	for _, seed := range []int64{5, 23, 41} {
		for _, sites := range []int{3, 6} {
			o := scenarioOpts{sites: sites, count: 250, seed: seed}
			baseLog, baseStats := runScenario(t, o)
			if baseStats.Detections == 0 {
				t.Fatalf("seed=%d sites=%d: no detections; comparison is vacuous", seed, sites)
			}
			if baseStats.Net.Sent >= baseStats.Net.Envelopes {
				t.Errorf("seed=%d sites=%d: bus sent %d messages for %d envelopes — nothing coalesced",
					seed, sites, baseStats.Net.Sent, baseStats.Net.Envelopes)
			}
			if baseStats.Net.Batches == 0 {
				t.Errorf("seed=%d sites=%d: no multi-envelope batches", seed, sites)
			}
			for _, v := range variants {
				vo := o
				vo.mutate = v.mutate
				log, st := runScenario(t, vo)
				if !bytes.Equal(baseLog, log) {
					t.Errorf("seed=%d sites=%d %s: occurrence log (%d bytes) differs from batched in-memory (%d bytes)",
						seed, sites, v.name, len(log), len(baseLog))
				}
				if st.Detections != baseStats.Detections || st.Released != baseStats.Released {
					t.Errorf("seed=%d sites=%d %s: det=%d rel=%d, want det=%d rel=%d",
						seed, sites, v.name, st.Detections, st.Released,
						baseStats.Detections, baseStats.Released)
				}
			}
		}
	}
}

// TestPoolingDeterminism is the PR-8 lifecycle regression: recycling
// occurrences through the generation-checked pool must be invisible to
// detection.  Across seeds × site counts × worker counts, the occurrence
// log must be byte-identical with pooling on and off (Config.
// DisablePooling is the differential mode), and the pooled runs must
// actually recycle — puts close to gets — or the comparison would be
// vacuous.  The scenarios run uninstrumented (noObs) so this matrix pins
// pooling in isolation; TestTracerComposesWithPooling and
// TestObsDeterminism cover the pooled-while-traced combination.
func TestPoolingDeterminism(t *testing.T) {
	for _, seed := range []int64{5, 31} {
		for _, sites := range []int{3, 6} {
			for _, workers := range []int{0, 4} {
				var pooled event.PoolStats
				o := scenarioOpts{
					sites: sites, count: 250, seed: seed, workers: workers, noObs: true,
					inspect: func(sys *System) { pooled = sys.PoolStats() },
				}
				baseLog, baseStats := runScenario(t, o)
				if baseStats.Detections == 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: no detections; comparison is vacuous",
						seed, sites, workers)
				}
				if pooled.Gets == 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: pool never used; comparison is vacuous",
						seed, sites, workers)
				}
				// Everything but the per-definition recorder references and
				// any still-buffered partial matches must have been recycled.
				if pooled.Puts == 0 || pooled.Puts < pooled.Gets/2 {
					t.Errorf("seed=%d sites=%d workers=%d: pool stats %+v — occurrences leak instead of recycling",
						seed, sites, workers, pooled)
				}
				if pooled.DoublePuts != 0 {
					t.Errorf("seed=%d sites=%d workers=%d: %d double releases averted",
						seed, sites, workers, pooled.DoublePuts)
				}
				var unpooled event.PoolStats
				uo := o
				uo.mutate = func(c *Config) { c.DisablePooling = true }
				uo.inspect = func(sys *System) { unpooled = sys.PoolStats() }
				log, st := runScenario(t, uo)
				if unpooled.Gets != 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: DisablePooling still drew %d from the pool",
						seed, sites, workers, unpooled.Gets)
				}
				if !bytes.Equal(baseLog, log) {
					t.Errorf("seed=%d sites=%d workers=%d: occurrence log (%d bytes) differs with pooling off (%d bytes)",
						seed, sites, workers, len(log), len(baseLog))
				}
				if st.Detections != baseStats.Detections || st.Released != baseStats.Released {
					t.Errorf("seed=%d sites=%d workers=%d: det=%d rel=%d unpooled, want det=%d rel=%d",
						seed, sites, workers, st.Detections, st.Released,
						baseStats.Detections, baseStats.Released)
				}
			}
		}
	}
}

// TestTracerComposesWithPooling pins the PR-10 contract that replaced
// the old seal()-time tracer-disables-pooling interlock: span identity
// is keyed by (pointer, pool generation), so an attached tracer runs
// over the pooled hot path — the pool is actually exercised (Gets > 0,
// recycling close to complete, zero double puts) and the occurrence log
// is byte-identical to an untraced pooled run.  The steady-state
// pool-hit-rate-1.0 floor is gated in CI by bench-smoke's
// `-min-metric pool-hit-rate` (sync.Pool misses are GC-timing-dependent,
// so a unit test cannot pin the ratio exactly).
func TestTracerComposesWithPooling(t *testing.T) {
	bare := defaultScenario()
	bare.count = 120
	bare.noObs = true
	bareLog, bareStats := runScenario(t, bare)
	if bareStats.Detections == 0 {
		t.Fatal("no detections; comparison is vacuous")
	}

	traced := defaultScenario()
	traced.count = 120
	var ps event.PoolStats
	traced.inspect = func(sys *System) { ps = sys.PoolStats() }
	tracedLog, tracedStats := runScenario(t, traced) // default scenario attaches a flight recorder
	if tracedStats.Detections != bareStats.Detections {
		t.Fatalf("traced run detected %d, untraced %d", tracedStats.Detections, bareStats.Detections)
	}
	if !bytes.Equal(bareLog, tracedLog) {
		t.Fatalf("occurrence log differs with a tracer attached (%d vs %d bytes)", len(tracedLog), len(bareLog))
	}
	if ps.Gets == 0 {
		t.Fatal("traced system never drew from the pool; tracing must compose with pooling")
	}
	if ps.Puts == 0 || ps.Puts < ps.Gets/2 {
		t.Errorf("traced pool stats %+v — occurrences leak instead of recycling", ps)
	}
	if ps.DoublePuts != 0 {
		t.Errorf("%d double releases averted under tracing", ps.DoublePuts)
	}
}

// TestUnbatchedModeReallyUnbatches pins the differential mode's meaning:
// with DisableBatching every envelope is its own bus message.
func TestUnbatchedModeReallyUnbatches(t *testing.T) {
	o := defaultScenario()
	o.count = 120
	o.mutate = func(c *Config) { c.DisableBatching = true }
	_, st := runScenario(t, o)
	if st.Net.Sent != st.Net.Envelopes || st.Net.Batches != 0 {
		t.Fatalf("unbatched mode stats: %+v", st.Net)
	}
}

// TestPipelineDeterminismRepeated re-runs the sequential scenario to pin
// that the log itself is reproducible (no map-iteration or wall-clock
// leakage into the stream).
func TestPipelineDeterminismRepeated(t *testing.T) {
	a, _ := runPipelineScenario(t, 0)
	b, _ := runPipelineScenario(t, 0)
	if !bytes.Equal(a, b) {
		t.Fatalf("sequential runs of the same seed diverge")
	}
}

// TestPipelineStageStats checks the per-stage instrumentation: counters
// flow through Stats and the hook sees every stage of every tick.
func TestPipelineStageStats(t *testing.T) {
	perStage := map[string]int{}
	sys := MustNewSystem(Config{
		Net: network.Config{BaseLatency: 10},
		Pipeline: pipeline.Config{
			OnStage: func(ev pipeline.StageEvent) { perStage[ev.Stage] += ev.Items },
		},
	})
	a := sys.MustAddSite("a", 0, 0)
	sys.MustAddSite("hub", 0, 0)
	for _, typ := range []string{"A", "B"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.MustRaise("A", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
		a.MustRaise("B", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
	}
	if err := sys.Settle(10_000); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if len(st.Stages) != 5 {
		t.Fatalf("got %d stage stats, want 5", len(st.Stages))
	}
	want := []string{"ingest", "transport", "release", "detect", "publish"}
	for i, name := range want {
		if st.Stages[i].Name != name {
			t.Fatalf("stage %d is %q, want %q", i, st.Stages[i].Name, name)
		}
		if st.Stages[i].Ticks == 0 {
			t.Fatalf("stage %q never ticked", name)
		}
	}
	// Cross-check stage item counts against the system counters.
	if got := uint64(perStage["release"]); got != st.Released {
		t.Fatalf("release stage saw %d items, stats say %d released", got, st.Released)
	}
	if got := uint64(perStage["detect"]); got != st.Released {
		t.Fatalf("detect stage saw %d items, want %d (everything released is detected-on)", got, st.Released)
	}
	if got := uint64(perStage["publish"]); got != st.Detections {
		t.Fatalf("publish stage saw %d items, stats say %d detections", got, st.Detections)
	}
	if st.Detections == 0 {
		t.Fatalf("scenario produced no detections")
	}
	// The detect stage's histogram carries one sample per tick.
	det := st.Stages[3]
	if det.Hist.Total() != det.Ticks {
		t.Fatalf("detect histogram has %d samples over %d ticks", det.Hist.Total(), det.Ticks)
	}
}

// TestPipelineWorkersExerciseParallelPath pins that Workers>1 really does
// run detection across goroutines' worth of sites (smoke, not perf): a
// crash/decommission scenario plus temporal-free detection must behave
// identically to sequential even mid-topology-change.
func TestPipelineWorkersCrashParity(t *testing.T) {
	run := func(workers int) (uint64, uint64) {
		sys := MustNewSystem(Config{
			Net:      network.Config{BaseLatency: 15, Jitter: 30, Seed: 4},
			Pipeline: pipeline.Config{Workers: workers},
		})
		a := sys.MustAddSite("a", -10, 0)
		b := sys.MustAddSite("b", 10, 0)
		sys.MustAddSite("hub", 0, 0)
		for _, typ := range []string{"A", "B"} {
			if err := sys.Declare(typ, event.Explicit); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			a.MustRaise("A", event.Explicit, nil)
			sys.Run(sys.Now()+200, 50)
			b.MustRaise("B", event.Explicit, nil)
			sys.Run(sys.Now()+200, 50)
		}
		if err := sys.Crash("b"); err != nil {
			t.Fatal(err)
		}
		sys.Run(sys.Now()+2000, 100)
		if err := sys.Decommission("b"); err != nil {
			t.Fatal(err)
		}
		if err := sys.Settle(20_000); err != nil {
			t.Fatal(err)
		}
		st := sys.Stats()
		return st.Detections, st.Released
	}
	seqDet, seqRel := run(0)
	parDet, parRel := run(4)
	if seqDet != parDet || seqRel != parRel {
		t.Fatalf("crash scenario diverged: seq (det=%d rel=%d) vs par (det=%d rel=%d)",
			seqDet, seqRel, parDet, parRel)
	}
	if seqDet == 0 {
		t.Fatalf("crash scenario produced no detections")
	}
}
