// Package ddetect implements distributed composite event detection
// (Section 5 of the paper): sites raise primitive events stamped by their
// own synchronized-within-Π clocks, forward them over the simulated
// network to the sites hosting composite event definitions, and each
// hosting site's detector evaluates the Snoop operators over the
// composite timestamp algebra of internal/core.
//
// The operator nodes of internal/detector require events in an order that
// linearly extends the composite happen-before order.  Under network
// jitter and clock skew, arrival order is no such thing, so each site runs
// a reorderer with two stages:
//
//  1. FIFO restore: the bus stamps per-link sequence numbers; messages are
//     buffered until their predecessors arrive, recovering each source's
//     emission order (which is local-clock order, hence happen-before
//     order within the source).
//  2. Watermark release: every site periodically heartbeats its current
//     global time.  Because local clocks are monotone, a source whose
//     frontier (last in-order global time) is w can never again emit an
//     event with global time < w.  A buffered event with maximal global
//     component g is released once min over all frontiers ≥ g − 1: any
//     future event f then has g_f ≥ g − 1, which by Definition 4.7 rules
//     out f happening before the released event.  Released events are
//     published in (global, site, local) order, a linear extension of <
//     for the primitive (singleton-stamp) occurrences exchanged between
//     sites.
//
// For hierarchically forwarded *composite* occurrences the (global, site,
// local) key is still used with the stamp's maximal global component;
// under extreme clock skew two multi-component stamps can in principle be
// released in an order that swaps a happen-before pair (never producing a
// false detection — only possibly missing one).  The default deployment —
// each definition fully evaluated at one hosting site over primitive
// streams — is exact.
//
// All per-source state is indexed by dense roster index (core.Site), not
// by SiteID string: a full-membership reorderer (an event sink's) holds
// one sourceState slot per roster member, addressed directly, and a
// self-only reorderer (every other site's) holds exactly one.  Because
// roster index order equals canonical SiteID order, the dense release key
// orders identically to the old string key.
package ddetect

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
)

// envKind distinguishes bus payloads.
type envKind int

const (
	envEvent envKind = iota
	envHeartbeat
)

// envelope is the application payload carried by network messages and the
// site-local self stream.
type envelope struct {
	Kind envKind
	// Occ is the occurrence for envEvent.
	Occ *event.Occurrence
	// Global is the watermark for envHeartbeat.
	Global int64
	// RaisedAt is the reference time the occurrence was raised (for
	// latency accounting) or the heartbeat's nominal instant (the
	// reference the wire codec delta-encodes the frontier against).
	RaisedAt clock.Microticks
}

// sourceState tracks one source's stream at a receiving site.  One link
// sequence number covers one bus message, which since the transport
// started coalescing may carry several envelopes — pending therefore
// buffers envelope runs, not single envelopes.  States live by value in
// the reorderer's dense slice; the pending map is allocated lazily, on a
// source's first out-of-order arrival, so a site with n in-order sources
// carries n small structs and no maps.
type sourceState struct {
	nextSeq  uint64
	pending  map[uint64][]envelope
	frontier int64
	// excluded marks a decommissioned source: its frontier no longer
	// gates the watermark (see System.Decommission).
	excluded bool
}

// reorderer restores a linear extension of happen-before from out-of-order
// arrivals.  Not safe for concurrent use; owned by its site.
type reorderer struct {
	roster *core.Roster
	// self is the owning site's index for a self-only reorderer (its one
	// sourceState is sources[0]); core.NoSite marks full membership, where
	// sources is roster-length and addressed by index directly.
	self    core.Site
	sources []sourceState
	ready   readyQueue
	arrival uint64

	// buffered counts FIFO-pending envelopes for quiescence checks.
	buffered int
	// gating counts non-excluded sources, so exhaustion (everything
	// decommissioned) is O(1) to detect.
	gating int
	// minF caches minFrontier; minDirty forces a recompute after a
	// frontier advance or an exclusion.  The cache is what keeps the
	// release scan from walking the full frontier vector on every tick —
	// a site whose frontiers did not move pays one flag check.
	minF     int64
	minDirty bool
	// stale records that something release-relevant changed (an event
	// ingested, a frontier advanced, a source excluded) since the last
	// release call; a clean reorderer's release is an immediate no-op.
	stale bool
}

// newReorderer builds a full-membership reorderer: one source slot per
// roster member, for the event sinks that can hear from everyone.
func newReorderer(roster *core.Roster) *reorderer {
	r := &reorderer{
		roster:   roster,
		self:     core.NoSite,
		sources:  make([]sourceState, roster.Len()),
		gating:   roster.Len(),
		minDirty: true,
	}
	for i := range r.sources {
		r.sources[i] = sourceState{nextSeq: 1, frontier: math.MinInt64}
	}
	return r
}

// newSelfReorderer builds a self-only reorderer for a site outside every
// needers list: it hears nobody but itself, so one source slot suffices
// and its watermark gates only on its own clock.
func newSelfReorderer(roster *core.Roster, self core.Site) *reorderer {
	return &reorderer{
		roster:   roster,
		self:     self,
		sources:  []sourceState{{nextSeq: 1, frontier: math.MinInt64}},
		gating:   1,
		minDirty: true,
	}
}

// slot maps a source's roster index to its position in sources, or -1 for
// a site this reorderer does not listen to.
func (r *reorderer) slot(from core.Site) int {
	if r.self != core.NoSite {
		if from == r.self {
			return 0
		}
		return -1
	}
	if from < 0 || int(from) >= len(r.sources) {
		return -1
	}
	return int(from)
}

// siteID renders a source index for error messages.
func (r *reorderer) siteID(from core.Site) core.SiteID {
	if r.roster != nil && from >= 0 && int(from) < r.roster.Len() {
		return r.roster.ID(from)
	}
	//lint:allow hotalloc — fallback rendering for error messages only; every accepted message resolves through the roster above
	return core.SiteID(fmt.Sprintf("#%d", from))
}

// source resolves and screens one arrival: the sender must be known, and
// its sequence number neither already consumed nor already buffered.
func (r *reorderer) source(from core.Site, seq uint64) (*sourceState, error) {
	i := r.slot(from)
	if i < 0 {
		//lint:allow hotalloc — error path: a protocol violation (unknown source) terminates the run, so its formatting cost is irrelevant
		return nil, fmt.Errorf("ddetect: message from unknown source %q", r.siteID(from))
	}
	st := &r.sources[i]
	if seq < st.nextSeq {
		//lint:allow hotalloc — error path: duplicate sequence numbers are protocol violations, never the steady state
		return nil, fmt.Errorf("ddetect: duplicate seq %d from %q (next %d)", seq, r.siteID(from), st.nextSeq)
	}
	if _, dup := st.pending[seq]; dup {
		//lint:allow hotalloc — error path: duplicate buffered sequences are protocol violations, never the steady state
		return nil, fmt.Errorf("ddetect: duplicate buffered seq %d from %q", seq, r.siteID(from))
	}
	return st, nil
}

// accept ingests a single-envelope message from a source with its link
// sequence number, draining any in-order run it completes.  The common
// in-order case bypasses the pending map entirely.
//
//sentinel:hotpath
func (r *reorderer) accept(from core.Site, seq uint64, env envelope) error {
	st, err := r.source(from, seq)
	if err != nil {
		return err
	}
	if seq == st.nextSeq {
		st.nextSeq++
		r.ingest(st, env)
		r.drain(st)
		return nil
	}
	if st.pending == nil {
		//lint:allow hotalloc — lazy one-time map per source, only materialized the first time that source delivers out of order
		st.pending = make(map[uint64][]envelope)
	}
	//lint:allow hotalloc — the pending run is retained until the sequence gap fills; the buffer is the point of the reorderer
	st.pending[seq] = []envelope{env}
	r.buffered++
	return nil
}

// acceptBatch ingests one coalesced message: a run of envelopes sharing a
// single link sequence number, in their sender's emission order.  The
// in-order case ingests straight from the caller's slice, which the
// caller may recycle as soon as acceptBatch returns; only an out-of-order
// arrival copies the run into an owned buffer.
//
//sentinel:hotpath
func (r *reorderer) acceptBatch(from core.Site, seq uint64, envs []envelope) error {
	st, err := r.source(from, seq)
	if err != nil {
		return err
	}
	if seq == st.nextSeq {
		st.nextSeq++
		for _, env := range envs {
			r.ingest(st, env)
		}
		r.drain(st)
		return nil
	}
	if st.pending == nil {
		//lint:allow hotalloc — lazy one-time map per source, only materialized the first time that source delivers out of order
		st.pending = make(map[uint64][]envelope)
	}
	st.pending[seq] = append([]envelope(nil), envs...)
	r.buffered += len(envs)
	return nil
}

// drain consumes the in-order run now sitting in the pending map.
func (r *reorderer) drain(st *sourceState) {
	for len(st.pending) > 0 {
		next, ok := st.pending[st.nextSeq]
		if !ok {
			return
		}
		delete(st.pending, st.nextSeq)
		st.nextSeq++
		r.buffered -= len(next)
		for _, env := range next {
			r.ingest(st, env)
		}
	}
}

// ingest processes one in-order envelope: events join the ready queue and
// advance the frontier; heartbeats only advance the frontier.
func (r *reorderer) ingest(st *sourceState, env envelope) {
	switch env.Kind {
	case envEvent:
		g := env.Occ.Stamp.MaxGlobal()
		if g > st.frontier {
			st.frontier = g
			r.minDirty = true
		}
		r.arrival++
		r.ready.push(readyItem{env: env, key: r.releaseKey(env.Occ, r.arrival)})
		r.stale = true
	case envHeartbeat:
		if env.Global > st.frontier {
			st.frontier = env.Global
			r.minDirty = true
			r.stale = true
		}
	}
}

// setFrontier advances a source's frontier directly (used for the site's
// own clock, which needs no heartbeat message).
func (r *reorderer) setFrontier(from core.Site, g int64) {
	if i := r.slot(from); i >= 0 && g > r.sources[i].frontier {
		r.sources[i].frontier = g
		r.minDirty = true
		r.stale = true
	}
}

// minFrontier returns the minimum frontier over the sources still gating
// the watermark, recomputing the cache only after a frontier actually
// moved.  With every source excluded there is nothing left to wait for
// and buffered events release unconditionally.
func (r *reorderer) minFrontier() int64 {
	if !r.minDirty {
		return r.minF
	}
	r.minDirty = false
	if r.gating == 0 {
		r.minF = math.MaxInt64
		return r.minF
	}
	min := int64(math.MaxInt64)
	for i := range r.sources {
		st := &r.sources[i]
		if st.excluded {
			continue
		}
		if st.frontier < min {
			min = st.frontier
		}
	}
	r.minF = min
	return min
}

// exclude removes a source from watermark gating.  Its already-buffered
// FIFO stream remains valid; only its (now silent) clock stops holding
// everyone else back.
func (r *reorderer) exclude(from core.Site) {
	if i := r.slot(from); i >= 0 && !r.sources[i].excluded {
		r.sources[i].excluded = true
		r.gating--
		r.minDirty = true
		r.stale = true
	}
}

// ReleaseMode selects how aggressively the watermark releases events.
type ReleaseMode int

const (
	// ReleaseTotalOrder (the default) releases an event with maximal
	// global component g only once every frontier is at least g+1, so no
	// event with global ≤ g can still arrive.  The release sequence is
	// then globally sorted by (global, site, local) — a deterministic
	// total order identical to a centralized detector fed the same
	// stamps — at the cost of up to two extra granules of latency.
	ReleaseTotalOrder ReleaseMode = iota
	// ReleaseExtension releases as soon as no *happen-before* violation
	// is possible (g ≤ min frontier + 1).  Lowest latency; the sequence
	// is only a linear extension of <, so concurrent events may be
	// interleaved differently than at a centralized oracle, which can
	// change which of several equally valid constituents a context
	// (Recent/Chronicle/…) picks.
	ReleaseExtension
)

func (m ReleaseMode) String() string {
	switch m {
	case ReleaseTotalOrder:
		return "total-order"
	case ReleaseExtension:
		return "extension"
	default:
		return fmt.Sprintf("ReleaseMode(%d)", int(m))
	}
}

// slack returns the release threshold offset relative to the minimum
// frontier: release while top.global ≤ minFrontier + slack.
func (m ReleaseMode) slack() int64 {
	if m == ReleaseExtension {
		return 1
	}
	return -1
}

// release pops every stable event — maximal global component at most
// minFrontier + slack(mode) — in (global, site, local, arrival) order and
// hands it to fn.  It returns the number released.
//
// A reorderer nothing touched since its last release returns immediately:
// no event arrived and no frontier moved, so the stable set cannot have
// grown.  This is what shards the crank's release scan — of thousands of
// sites, only the ones with fresh arrivals or watermark movement do any
// work, and only they consult the frontier vector.
//
//sentinel:hotpath
func (r *reorderer) release(mode ReleaseMode, fn func(envelope)) int {
	if !r.stale || len(r.ready) == 0 {
		return 0
	}
	r.stale = false
	minF := r.minFrontier()
	if minF == math.MinInt64 {
		return 0
	}
	n := 0
	for len(r.ready) > 0 && r.ready[0].key.global <= minF+mode.slack() {
		fn(r.ready.pop().env)
		n++
	}
	return n
}

// releaseInto is release with the callback replaced by a caller-owned
// buffer: stable envelopes are appended to dst in release order and the
// extended slice returned.  It exists for the release stage's parallel
// advance phase — each worker pops its own site's heap into the site's
// released buffer, and the crank accounts the results in site order
// afterwards, so heap maintenance (the sift-heavy part) runs fanned out
// while every observable side effect stays sequential.
//
//sentinel:hotpath
func (r *reorderer) releaseInto(mode ReleaseMode, dst []envelope) []envelope {
	if !r.stale || len(r.ready) == 0 {
		return dst
	}
	r.stale = false
	minF := r.minFrontier()
	if minF == math.MinInt64 {
		return dst
	}
	for len(r.ready) > 0 && r.ready[0].key.global <= minF+mode.slack() {
		dst = append(dst, r.ready.pop().env)
	}
	return dst
}

// pendingEvents reports buffered FIFO gaps plus unreleased ready events,
// for quiescence checks.
func (r *reorderer) pendingEvents() int { return r.buffered + len(r.ready) }

// key orders ready events: ascending maximal global, then site, then the
// local tick of the max-global component, then arrival.  For singleton
// stamps this is a linear extension of the composite happen-before order
// (see the package comment).  The site is a dense roster index: interning
// preserves SiteID order, so the integer compare in less orders exactly
// as the string compare it replaced.
type key struct {
	global  int64
	site    core.Site
	local   int64
	arrival uint64
}

// releaseKey interns the occurrence's max-global stamp component into the
// dense ordering key.  An occurrence carrying an interned stamp (pooled
// raise, roster-aware decode) yields its component pre-interned — no
// roster map lookup; the two paths agree because interning preserves
// SiteID order and the component selection rule is identical
// (TestRSetStampMaxGlobalComponent pins it against the string form).
//
//sentinel:hotpath
func (r *reorderer) releaseKey(o *event.Occurrence, arrival uint64) key {
	if len(o.Interned) > 0 {
		best := o.Interned.MaxGlobalComponent()
		return key{global: best.Global, site: best.Site, local: best.Local, arrival: arrival}
	}
	best := o.Stamp.MaxGlobalComponent()
	return key{global: best.Global, site: r.roster.MustSite(best.Site), local: best.Local, arrival: arrival}
}

func (k key) less(u key) bool {
	if k.global != u.global {
		return k.global < u.global
	}
	if k.site != u.site {
		return k.site < u.site
	}
	if k.local != u.local {
		return k.local < u.local
	}
	return k.arrival < u.arrival
}

type readyItem struct {
	env envelope
	key key
}

// readyQueue is a value-based binary min-heap on key.  It deliberately
// avoids container/heap: items are stored by value in one backing array
// (no per-item allocation) and push/pop sift directly (no interface
// boxing on the hot per-event path).
type readyQueue []readyItem

func (q *readyQueue) push(it readyItem) {
	*q = append(*q, it)
	h := *q
	// Sift up.
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h[i].key.less(h[parent].key) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *readyQueue) pop() readyItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = readyItem{} // release the envelope's occurrence pointer
	h = h[:n]
	*q = h
	// Sift down.
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].key.less(h[l].key) {
			least = r
		}
		if !h[least].key.less(h[i].key) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}
