package ddetect

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

// newTwoSiteSystem builds the standard two-site fixture: a producer site
// "edge" and a hosting site "hub" with a SEQ rule.
func newTwoSiteSystem(t *testing.T, net network.Config) (*System, *Site, *Site) {
	t.Helper()
	sys := MustNewSystem(Config{Net: net})
	hub := sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 20, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	return sys, hub, edge
}

func collect(t *testing.T, sys *System, name string) *[]*event.Occurrence {
	t.Helper()
	var got []*event.Occurrence
	// Subscribe hands out a borrow; Retain keeps the stored occurrences
	// (and their trees) out of the pool for the test's lifetime.
	if err := sys.Subscribe(name, func(o *event.Occurrence) { got = append(got, o.Retain()) }); err != nil {
		t.Fatal(err)
	}
	return &got
}

func TestCrossSiteSequenceDetected(t *testing.T) {
	sys, _, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 30})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")

	edge.MustRaise("A", event.Explicit, nil)
	sys.Run(500, 50) // two granules later: unambiguously ordered
	hub := sys.Site("hub")
	hub.MustRaise("B", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	occ := (*got)[0]
	if len(occ.Constituents) != 2 || occ.Constituents[0].Type != "A" || occ.Constituents[1].Type != "B" {
		t.Fatalf("constituents wrong: %v", occ)
	}
	if err := occ.Stamp.Valid(); err != nil {
		t.Fatalf("composite stamp invalid: %v", err)
	}
}

func TestConcurrentCrossSiteEventsDoNotSequence(t *testing.T) {
	sys, hub, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 30})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")

	sys.Run(200, 50)
	// Raised at (nearly) the same instant at two sites: concurrent under
	// the 2g_g order, so the sequence must NOT fire.
	edge.MustRaise("A", event.Explicit, nil)
	hub.MustRaise("B", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("concurrent events sequenced: %d detections", len(*got))
	}
	// AND on the same trace does fire (no ordering requirement).
	st := sys.Stats()
	if st.Released == 0 {
		t.Fatalf("events were never released to the detector")
	}
}

func TestConcurrentCrossSiteEventsConjoin(t *testing.T) {
	sys, hub, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 30})
	if _, err := sys.DefineAt("hub", "Both", "A AND B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "Both")
	sys.Run(200, 50)
	edge.MustRaise("A", event.Explicit, nil)
	hub.MustRaise("B", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("AND detections = %d, want 1", len(*got))
	}
	if st := (*got)[0].Stamp; len(st) != 2 {
		t.Fatalf("concurrent AND stamp should keep both maxima: %s", st)
	}
}

// Network reordering must not produce out-of-order detection: B raised
// after A but delivered first still yields the sequence.
func TestJitterReorderingHandled(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10, Jitter: 200, Seed: 7}})
	hub := sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	_ = hub
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")

	detected := 0
	for trial := 0; trial < 20; trial++ {
		edge.MustRaise("A", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
		edge.MustRaise("B", event.Explicit, nil)
		sys.Run(sys.Now()+1000, 50)
		if err := sys.Settle(200); err != nil {
			t.Fatal(err)
		}
		if len(*got) != detected+1 {
			t.Fatalf("trial %d: detections = %d, want %d", trial, len(*got), detected+1)
		}
		detected++
	}
}

// Same-site pairs are ordered by local ticks even when their globals tie.
func TestSameSiteFineOrdering(t *testing.T) {
	sys, _, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 5})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")
	sys.Run(1000, 100)
	edge.MustRaise("A", event.Explicit, nil)
	sys.Step(10) // one local tick later, same global granule
	edge.MustRaise("B", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("same-granule same-site sequence not detected: %d", len(*got))
	}
}

func TestDropAndRetransmitStillDetects(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{
		BaseLatency: 20, Jitter: 50, DropRate: 0.3, RetransmitDelay: 120, Seed: 99,
	}})
	sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", -20, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")
	for i := 0; i < 10; i++ {
		edge.MustRaise("A", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
		edge.MustRaise("B", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
	}
	if err := sys.Settle(500); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 10 {
		t.Fatalf("detections = %d, want 10 despite drops", len(*got))
	}
	if sys.Stats().Net.Retransmitted == 0 {
		t.Fatalf("expected retransmissions with DropRate 0.3")
	}
}

func TestUnconsumedEventsCounted(t *testing.T) {
	sysU, _, edgeU := newTwoSiteSystem(t, network.Config{})
	edgeU.MustRaise("A", event.Explicit, nil) // no definitions at all
	if st := sysU.Stats(); st.Unconsumed != 1 {
		t.Fatalf("Unconsumed = %d, want 1", st.Unconsumed)
	}
}

func TestRaiseUnknownTypeFails(t *testing.T) {
	_, _, edge := newTwoSiteSystem(t, network.Config{})
	if _, err := edge.Raise("Nope", event.Explicit, nil); err == nil {
		t.Fatalf("unknown type must be rejected")
	}
}

func TestSealingForbidsLateTopologyChanges(t *testing.T) {
	sys, _, edge := newTwoSiteSystem(t, network.Config{})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("A", event.Explicit, nil) // seals
	if _, err := sys.AddSite("late", 0, 0); err != ErrSealed {
		t.Fatalf("late AddSite = %v, want ErrSealed", err)
	}
	if _, err := sys.DefineAt("hub", "X", "A AND B", detector.Recent); err != ErrSealed {
		t.Fatalf("late DefineAt = %v, want ErrSealed", err)
	}
}

func TestDefineAtErrors(t *testing.T) {
	sys, _, _ := newTwoSiteSystem(t, network.Config{})
	if _, err := sys.DefineAt("nosuch", "X", "A ; B", detector.Recent); err == nil {
		t.Fatalf("unknown host must be rejected")
	}
	if _, err := sys.DefineAt("hub", "X", "A ;;", detector.Recent); err == nil {
		t.Fatalf("syntax errors must surface")
	}
	if _, err := sys.DefineAt("hub", "X", "A ; Nope", detector.Recent); err == nil {
		t.Fatalf("undeclared events must be rejected")
	}
	if err := sys.Subscribe("absent", func(*event.Occurrence) {}); err == nil ||
		!strings.Contains(err.Error(), "absent") {
		t.Fatalf("Subscribe to unknown definition = %v", err)
	}
}

// Hierarchical mode: a composite defined at one site feeds a definition at
// another site.
func TestHierarchicalComposite(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	sys.MustAddSite("s1", 0, 0)
	sys.MustAddSite("s2", 0, 0)
	for _, n := range []string{"A", "B", "C"} {
		if err := sys.Declare(n, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("s1", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("s2", "ABC", "AB ; C", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "ABC")

	s1 := sys.Site("s1")
	s2 := sys.Site("s2")
	s1.MustRaise("A", event.Explicit, nil)
	sys.Run(300, 50)
	s1.MustRaise("B", event.Explicit, nil)
	sys.Run(600, 50)
	s2.MustRaise("C", event.Explicit, nil)
	if err := sys.Settle(200); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("hierarchical detections = %d, want 1", len(*got))
	}
	flat := (*got)[0].Flatten()
	if len(flat) != 3 || flat[0].Type != "A" || flat[2].Type != "C" {
		t.Fatalf("hierarchical constituents wrong: %v", flat)
	}
}

func TestLatencyStatsAccumulate(t *testing.T) {
	sys, _, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 40})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("A", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Released != 1 || st.LatencySum <= 0 || st.MeanLatency() <= 0 {
		t.Fatalf("latency stats = %+v", st)
	}
	if st.LatencyMax < 40 {
		t.Fatalf("latency max %d must include network latency", st.LatencyMax)
	}
}

func TestClockSkewWithinPiStillExact(t *testing.T) {
	// Maximal allowed skew: offsets ±49 with Π=99.  Ordered events two
	// granules apart must still detect; the skewed stamps stay valid.
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	sys.MustAddSite("hub", 49, 0)
	edge := sys.MustAddSite("edge", -49, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")
	edge.MustRaise("A", event.Explicit, nil)
	sys.Run(500, 50)
	sys.Site("hub").MustRaise("B", event.Explicit, nil)
	if err := sys.Settle(200); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("skewed detections = %d, want 1", len(*got))
	}
}

func TestStampNowDerivesFromSiteClock(t *testing.T) {
	sys, hub, _ := newTwoSiteSystem(t, network.Config{})
	sys.Clock().AdvanceTo(12345)
	st := hub.StampNow()
	if st.Site != "hub" || st.Local != 1234 || st.Global != 123 {
		t.Fatalf("StampNow = %s", st)
	}
	if hub.Detector() == nil {
		t.Fatalf("Detector accessor broken")
	}
}

func TestRunStepValidation(t *testing.T) {
	sys, _, _ := newTwoSiteSystem(t, network.Config{})
	defer func() {
		if recover() == nil {
			t.Fatalf("Run with non-positive step must panic")
		}
	}()
	sys.Run(100, 0)
}

func TestSettleReportsNonQuiescence(t *testing.T) {
	// With an enormous latency, one settle step cannot drain the bus.
	sys, _, edge := newTwoSiteSystem(t, network.Config{BaseLatency: 1_000_000})
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("A", event.Explicit, nil)
	if err := sys.Settle(1); err == nil {
		t.Fatalf("Settle must report non-quiescence")
	}
}

// The reorderer releases in a linear extension: a hub-local event and an
// edge event that happens-before it are published in happen-before order
// even though the local one arrives first.
func TestLinearExtensionAcrossSites(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 500}}) // slow network
	hub := sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("B", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")
	edge.MustRaise("A", event.Explicit, nil) // slow to arrive
	sys.Run(300, 50)
	hub.MustRaise("B", event.Explicit, nil) // instantly at hub, but must wait
	if err := sys.Settle(300); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1 (A must be published before B)", len(*got))
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (uint64, float64) {
		sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 20, Jitter: 80, Seed: 5}})
		sys.MustAddSite("hub", 10, 0)
		edge := sys.MustAddSite("edge", -10, 5)
		_ = sys.Declare("A", event.Explicit)
		_ = sys.Declare("B", event.Explicit)
		if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			edge.MustRaise("A", event.Explicit, nil)
			sys.Run(sys.Now()+230, 40)
			edge.MustRaise("B", event.Explicit, nil)
			sys.Run(sys.Now()+170, 40)
		}
		if err := sys.Settle(500); err != nil {
			t.Fatal(err)
		}
		st := sys.Stats()
		return st.Detections, st.MeanLatency()
	}
	d1, l1 := runOnce()
	d2, l2 := runOnce()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("replay diverged: (%d, %f) vs (%d, %f)", d1, l1, d2, l2)
	}
	if d1 == 0 {
		t.Fatalf("replay detected nothing")
	}
}

func TestConfigDefaults(t *testing.T) {
	sys := MustNewSystem(Config{})
	if sys.cfg.Clock != clock.PaperConfig() {
		t.Errorf("default clock config not PaperConfig: %+v", sys.cfg.Clock)
	}
	if sys.cfg.HeartbeatEvery != clock.PaperConfig().GlobalGranularity {
		t.Errorf("default heartbeat = %d", sys.cfg.HeartbeatEvery)
	}
}

func TestReordererRejectsAnomalies(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b"})
	a := roster.MustSite("a")
	r := newReorderer(roster)
	if err := r.accept(core.Site(99), 1, envelope{Kind: envHeartbeat, Global: 1}); err == nil {
		t.Errorf("unknown source must be rejected")
	}
	if err := r.accept(core.NoSite, 1, envelope{Kind: envHeartbeat, Global: 1}); err == nil {
		t.Errorf("NoSite source must be rejected")
	}
	if err := r.accept(a, 1, envelope{Kind: envHeartbeat, Global: 1}); err != nil {
		t.Errorf("in-order accept failed: %v", err)
	}
	if err := r.accept(a, 1, envelope{Kind: envHeartbeat, Global: 2}); err == nil {
		t.Errorf("replayed seq must be rejected")
	}
	if err := r.accept(a, 3, envelope{Kind: envHeartbeat, Global: 3}); err != nil {
		t.Errorf("gap buffering failed: %v", err)
	}
	if err := r.accept(a, 3, envelope{Kind: envHeartbeat, Global: 3}); err == nil {
		t.Errorf("duplicate buffered seq must be rejected")
	}
}

func TestSelfReordererHearsOnlyItself(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b", "c"})
	self := roster.MustSite("b")
	r := newSelfReorderer(roster, self)
	if err := r.accept(roster.MustSite("a"), 1, envelope{Kind: envHeartbeat, Global: 1}); err == nil {
		t.Errorf("foreign source accepted by self-only reorderer")
	}
	occ := event.NewPrimitive("A", event.Explicit, core.DeriveStamp("b", 100, 10), nil)
	if err := r.accept(self, 1, envelope{Kind: envEvent, Occ: occ}); err != nil {
		t.Fatal(err)
	}
	// Only its own frontier gates: the event's own stamp put the frontier
	// at 10, so total order needs 11.
	r.setFrontier(self, 11)
	if n := r.release(ReleaseTotalOrder, func(envelope) {}); n != 1 {
		t.Fatalf("self-only release = %d, want 1", n)
	}
}

func TestReleaseWaitsForAllFrontiers(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b"})
	a, b := roster.MustSite("a"), roster.MustSite("b")
	r := newReorderer(roster)
	occ := event.NewPrimitive("A", event.Explicit, core.DeriveStamp("a", 100, 10), nil)
	if err := r.accept(a, 1, envelope{Kind: envEvent, Occ: occ}); err != nil {
		t.Fatal(err)
	}
	if n := r.release(ReleaseExtension, func(envelope) {}); n != 0 {
		t.Fatalf("released %d before source b ever spoke", n)
	}
	// Extension mode releases once no happen-before violation is
	// possible: global 10 ≤ min frontier 9 + 1.
	if err := r.accept(b, 1, envelope{Kind: envHeartbeat, Global: 9}); err != nil {
		t.Fatal(err)
	}
	if n := r.release(ReleaseExtension, func(envelope) {}); n != 1 {
		t.Fatalf("released %d after frontiers caught up, want 1", n)
	}
}

func TestTotalOrderReleaseIsStricter(t *testing.T) {
	roster := core.NewRoster([]core.SiteID{"a", "b"})
	a, b := roster.MustSite("a"), roster.MustSite("b")
	r := newReorderer(roster)
	occ := event.NewPrimitive("A", event.Explicit, core.DeriveStamp("a", 100, 10), nil)
	if err := r.accept(a, 1, envelope{Kind: envEvent, Occ: occ}); err != nil {
		t.Fatal(err)
	}
	// minF = 9: extension would release (10 ≤ 10) but total order must
	// hold until no global-≤-10 event can arrive (minF ≥ 11).
	if err := r.accept(b, 1, envelope{Kind: envHeartbeat, Global: 9}); err != nil {
		t.Fatal(err)
	}
	if n := r.release(ReleaseTotalOrder, func(envelope) {}); n != 0 {
		t.Fatalf("total-order released %d at minF=9, want 0", n)
	}
	// Every frontier — including the event's own source — must pass
	// global 11 before a global-10 event is totally ordered.
	if err := r.accept(b, 2, envelope{Kind: envHeartbeat, Global: 11}); err != nil {
		t.Fatal(err)
	}
	if n := r.release(ReleaseTotalOrder, func(envelope) {}); n != 0 {
		t.Fatalf("released %d while source a's frontier lags, want 0", n)
	}
	if err := r.accept(a, 2, envelope{Kind: envHeartbeat, Global: 11}); err != nil {
		t.Fatal(err)
	}
	if n := r.release(ReleaseTotalOrder, func(envelope) {}); n != 1 {
		t.Fatalf("total-order released %d at minF=11, want 1", n)
	}
}

// Three-level hierarchical composition across three sites.
func TestThreeLevelHierarchy(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	for _, id := range []core.SiteID{"s1", "s2", "s3"} {
		sys.MustAddSite(id, 0, 0)
	}
	for _, n := range []string{"A", "B", "C", "D"} {
		if err := sys.Declare(n, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("s1", "L1", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("s2", "L2", "L1 ; C", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("s3", "L3", "L2 ; D", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "L3")
	raise := func(site core.SiteID, typ string) {
		sys.Site(site).MustRaise(typ, event.Explicit, nil)
		sys.Run(sys.Now()+400, 50)
	}
	raise("s1", "A")
	raise("s1", "B")
	raise("s2", "C")
	raise("s3", "D")
	if err := sys.Settle(500); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("three-level detections = %d, want 1", len(*got))
	}
	flat := (*got)[0].Flatten()
	if len(flat) != 4 || flat[0].Type != "A" || flat[3].Type != "D" {
		t.Fatalf("constituents = %v", flat)
	}
	if err := (*got)[0].Stamp.Valid(); err != nil {
		t.Fatalf("stamp invalid: %v", err)
	}
}

// The watermark reorderer's releases never violate the publish-order
// contract, verified by the detector's built-in order checker under
// jitter and skew.
func TestReleaseOrderPassesOrderCheck(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 20, Jitter: 90, Seed: 6}})
	hub := sys.MustAddSite("hub", 30, 0)
	edge := sys.MustAddSite("edge", -30, 0)
	for _, n := range []string{"A", "B"} {
		if err := sys.Declare(n, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	hub.Detector().SetOrderChecking(true)
	for i := 0; i < 40; i++ {
		src := []*Site{hub, edge}[i%2]
		src.MustRaise([]string{"A", "B"}[i%2], event.Explicit, nil)
		sys.Run(sys.Now()+150, 50)
	}
	if err := sys.Settle(1_000); err != nil {
		t.Fatal(err)
	}
	if v := hub.Detector().OrderViolations(); v != 0 {
		t.Fatalf("reorderer output violated publish order %d times", v)
	}
}

// The Section 3.1 simultaneity assumptions: with enforcement on, two
// explicit events at one site within the same local tick are rejected.
func TestSimultaneityEnforcement(t *testing.T) {
	sys := MustNewSystem(Config{EnforceSimultaneity: true})
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Declare("Tmp", event.Temporal); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Raise("A", event.Explicit, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Raise("A", event.Explicit, nil); err == nil {
		t.Fatalf("simultaneous explicit events accepted")
	}
	// Temporal events are exempt (assumption 1 even requires them).
	if _, err := edge.Raise("Tmp", event.Temporal, nil); err != nil {
		t.Fatalf("temporal event rejected: %v", err)
	}
	// One local tick later the next explicit event is fine.
	sys.Step(10)
	if _, err := edge.Raise("A", event.Explicit, nil); err != nil {
		t.Fatalf("raise after a tick failed: %v", err)
	}
}

// Without enforcement (the default), same-tick raises are allowed and
// yield simultaneous stamps.
func TestSimultaneityDefaultOff(t *testing.T) {
	sys := MustNewSystem(Config{})
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	o1 := edge.MustRaise("A", event.Explicit, nil)
	o2 := edge.MustRaise("A", event.Explicit, nil)
	if !o1.Stamp[0].Simultaneous(o2.Stamp[0]) {
		t.Fatalf("expected simultaneous stamps, got %s and %s", o1.Stamp, o2.Stamp)
	}
}
