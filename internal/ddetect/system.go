package ddetect

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/wire"
)

// Config assembles a distributed detection system.
type Config struct {
	// Clock is the simulated time base (clock.PaperConfig by default).
	Clock clock.Config
	// Net is the simulated network (perfect by default).
	Net network.Config
	// HeartbeatEvery is the watermark period in microticks; it defaults
	// to one global granule, the finest useful cadence.
	HeartbeatEvery clock.Microticks
	// Release selects the watermark release mode; the zero value is
	// ReleaseTotalOrder (deterministic, centralized-equivalent).
	Release ReleaseMode
	// Serialize, when true, encodes every envelope crossing the bus with
	// internal/wire and decodes it at the receiver, proving the engine
	// needs no shared memory between sites (and costing one codec round
	// trip per message).
	Serialize bool
	// Journal, when non-nil, receives every raised primitive occurrence
	// as an internal/eventlog record, enabling replay-based recovery of
	// detector state after a crash.
	Journal io.Writer
	// EnforceSimultaneity applies the paper's Section 3.1 assumptions 3
	// and 4: no two database events and no two explicit events may be
	// simultaneous.  With it set, raising a second Database or Explicit
	// event at a site within the same local clock tick fails with
	// ErrSimultaneous instead of producing stamps the assumptions forbid
	// (advance the simulated clock between raises).
	EnforceSimultaneity bool
}

func (c Config) withDefaults() Config {
	if c.Clock == (clock.Config{}) {
		c.Clock = clock.PaperConfig()
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.Clock.GlobalGranularity
	}
	return c
}

// Stats aggregates system activity.
type Stats struct {
	Raised     uint64
	Forwarded  uint64 // event messages put on the bus
	Heartbeats uint64
	Released   uint64 // events handed to detectors after reordering
	Detections uint64 // composite occurrences across all definitions
	Unconsumed uint64 // raised events no definition needed
	LatencySum clock.Microticks
	LatencyMax clock.Microticks
	Net        network.Stats
}

// MeanLatency returns the mean raise-to-publish latency in microticks.
func (s Stats) MeanLatency() float64 {
	if s.Released == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Released)
}

// System is a simulated multi-site detection deployment.  It owns the
// clock, the network and all site runtimes, and is driven in simulated
// time by Step/Run/Settle.  Not safe for concurrent use — the simulation
// is deterministic precisely because one goroutine turns the crank.
type System struct {
	cfg      Config
	clk      *clock.System
	bus      *network.Bus
	reg      *event.Registry
	sites    []*Site
	siteByID map[core.SiteID]*Site
	needers  map[string][]core.SiteID
	nextHB   clock.Microticks
	sealed   bool
	stats    Stats
	journal  *eventlog.Writer

	// inFlightEvents counts event envelopes on the bus (heartbeats are
	// perpetual and excluded), for the quiescence check.
	inFlightEvents int
}

// NewSystem builds a system.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	clk, err := clock.NewSystem(cfg.Clock)
	if err != nil {
		return nil, err
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	sys := &System{
		cfg:      cfg,
		clk:      clk,
		bus:      network.NewBus(cfg.Net),
		reg:      event.NewRegistry(),
		siteByID: make(map[core.SiteID]*Site),
		needers:  make(map[string][]core.SiteID),
		nextHB:   cfg.HeartbeatEvery,
	}
	if cfg.Journal != nil {
		sys.journal = eventlog.NewWriter(cfg.Journal)
	}
	return sys, nil
}

// MustNewSystem is NewSystem that panics on error.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the shared event type registry.
func (sys *System) Registry() *event.Registry { return sys.reg }

// Clock returns the simulated time base.
func (sys *System) Clock() *clock.System { return sys.clk }

// Now returns the current reference time.
func (sys *System) Now() clock.Microticks { return sys.clk.Now() }

// Stats returns a snapshot of the counters.
func (sys *System) Stats() Stats {
	st := sys.stats
	st.Net = sys.bus.Stats()
	return st
}

// Site is one site runtime: a clock, a detector and a reorderer.
type Site struct {
	ID  core.SiteID
	sys *System
	clk *clock.SiteClock
	det *detector.Detector
	re  *reorderer

	selfSeq uint64
	// lastLocal tracks the last raised local tick per event class, for
	// Config.EnforceSimultaneity.
	lastLocal map[event.Class]int64
	// crashed marks a site that stopped: it raises nothing and sends no
	// heartbeats.  See System.Crash and System.Decommission.
	crashed bool
}

// ErrSimultaneous reports a violation of the Section 3.1 simultaneity
// assumptions (see Config.EnforceSimultaneity).
var ErrSimultaneous = errors.New("ddetect: two events of the same class at the same site and local tick")

// ErrCrashed reports an operation on a crashed site.
var ErrCrashed = errors.New("ddetect: site has crashed")

// Crash simulates a site failure: the site stops heartbeating and can no
// longer raise events.  Its silence stalls every other site's watermark —
// exactly the behaviour a real watermark-ordered system exhibits — until
// the operator acknowledges the loss with Decommission.
func (sys *System) Crash(id core.SiteID) error {
	sys.seal()
	s := sys.siteByID[id]
	if s == nil {
		return fmt.Errorf("ddetect: unknown site %q", id)
	}
	s.crashed = true
	return nil
}

// Decommission removes a (typically crashed) site's clock from every
// watermark: remaining sites stop waiting for its heartbeats and buffered
// events resume releasing.  Events the dead site sent before crashing are
// still processed.  Detection involving only surviving sites continues;
// anything that needed the dead site's future events is simply never
// completed — the honest semantics of a lost site.
func (sys *System) Decommission(id core.SiteID) error {
	sys.seal()
	if sys.siteByID[id] == nil {
		return fmt.Errorf("ddetect: unknown site %q", id)
	}
	if err := sys.Crash(id); err != nil {
		return err
	}
	for _, s := range sys.sites {
		s.re.exclude(id)
	}
	return nil
}

// siteTime adapts a site clock to detector.TimeSource.
type siteTime struct {
	sys *clock.System
	clk *clock.SiteClock
	id  core.SiteID
}

func (st siteTime) Now() clock.Microticks { return st.sys.Now() }

func (st siteTime) StampAt(ref clock.Microticks) core.Stamp {
	l := st.clk.LocalTick(ref)
	return core.Stamp{Site: st.id, Global: st.clk.GlobalTick(l), Local: l}
}

// ErrSealed is returned when topology changes after the simulation
// started.
var ErrSealed = errors.New("ddetect: topology is sealed once the simulation has started")

// AddSite registers a site with the given clock offset and drift (bounded
// by the configured precision Π).
func (sys *System) AddSite(id core.SiteID, offset clock.Microticks, driftPPM int64) (*Site, error) {
	if sys.sealed {
		return nil, ErrSealed
	}
	sc, err := sys.clk.AddSite(string(id), offset, driftPPM)
	if err != nil {
		return nil, err
	}
	s := &Site{
		ID:  id,
		sys: sys,
		clk: sc,
		det: detector.New(id, sys.reg, siteTime{sys: sys.clk, clk: sc, id: id}),
	}
	sys.sites = append(sys.sites, s)
	sort.Slice(sys.sites, func(i, j int) bool { return sys.sites[i].ID < sys.sites[j].ID })
	sys.siteByID[id] = s
	return s, nil
}

// MustAddSite is AddSite that panics on error.
func (sys *System) MustAddSite(id core.SiteID, offset clock.Microticks, driftPPM int64) *Site {
	s, err := sys.AddSite(id, offset, driftPPM)
	if err != nil {
		panic(err)
	}
	return s
}

// Site returns the site runtime registered under id, or nil.
func (sys *System) Site(id core.SiteID) *Site { return sys.siteByID[id] }

// Declare registers a primitive event type usable at any site.
func (sys *System) Declare(name string, class event.Class) error {
	_, err := sys.reg.Declare(name, class)
	return err
}

// DefineAt compiles a named composite event at the hosting site.  Every
// primitive (or previously defined composite) the expression references is
// recorded as needed by the host, so Raise forwards matching occurrences
// there; a referenced composite defined at another site is additionally
// forwarded from its own host when it is detected (hierarchical mode).
func (sys *System) DefineAt(host core.SiteID, name, expression string, ctx detector.Context) (*detector.Definition, error) {
	if sys.sealed {
		return nil, ErrSealed
	}
	s := sys.siteByID[host]
	if s == nil {
		return nil, fmt.Errorf("ddetect: unknown host site %q", host)
	}
	root, err := expr.Parse(expression)
	if err != nil {
		return nil, err
	}
	def, err := s.det.Define(name, root, ctx)
	if err != nil {
		return nil, err
	}
	for _, prim := range expr.Primitives(root) {
		sys.addNeeder(prim, host)
		// Hierarchical forwarding: if prim is a composite defined at a
		// different site, ship its detections to this host.
		if producer := sys.hostOf(prim); producer != nil && producer.ID != host {
			prim := prim
			from := producer
			producer.det.Subscribe(prim, func(o *event.Occurrence) {
				sys.forwardComposite(from, o)
			})
		}
	}
	s.det.Subscribe(name, func(*event.Occurrence) { sys.stats.Detections++ })
	return def, nil
}

// addNeeder records that host needs occurrences of typ (idempotent).
func (sys *System) addNeeder(typ string, host core.SiteID) {
	for _, h := range sys.needers[typ] {
		if h == host {
			return
		}
	}
	sys.needers[typ] = append(sys.needers[typ], host)
	sort.Slice(sys.needers[typ], func(i, j int) bool { return sys.needers[typ][i] < sys.needers[typ][j] })
}

// hostOf returns the site at which a composite name is defined, or nil.
func (sys *System) hostOf(name string) *Site {
	for _, s := range sys.sites {
		for _, def := range s.det.Definitions() {
			if def.Name == name {
				return s
			}
		}
	}
	return nil
}

// Subscribe attaches a handler to a definition at its hosting site.
func (sys *System) Subscribe(name string, h detector.Handler) error {
	s := sys.hostOf(name)
	if s == nil {
		return fmt.Errorf("ddetect: no site defines %q", name)
	}
	s.det.Subscribe(name, h)
	return nil
}

// seal freezes the topology and equips every site's reorderer with the
// full source set.
func (sys *System) seal() {
	if sys.sealed {
		return
	}
	sys.sealed = true
	ids := make([]core.SiteID, 0, len(sys.sites))
	for _, s := range sys.sites {
		ids = append(ids, s.ID)
	}
	for _, s := range sys.sites {
		s.re = newReorderer(ids)
	}
}

// StampNow returns the site's current primitive timestamp.
func (s *Site) StampNow() core.Stamp {
	ref := s.sys.clk.Now()
	l := s.clk.LocalTick(ref)
	return core.Stamp{Site: s.ID, Global: s.clk.GlobalTick(l), Local: l}
}

// Detector exposes the site's detector (for advanced wiring in examples
// and tests).
func (s *Site) Detector() *detector.Detector { return s.det }

// Raise raises a primitive event at this site, stamped by its clock, and
// forwards it to every site whose definitions need it.  It returns the
// occurrence.
func (s *Site) Raise(typ string, class event.Class, params event.Params) (*event.Occurrence, error) {
	sys := s.sys
	sys.seal()
	if !sys.reg.Has(typ) {
		return nil, fmt.Errorf("%w: %q", event.ErrUnknownType, typ)
	}
	if s.crashed {
		return nil, fmt.Errorf("%w: %q", ErrCrashed, s.ID)
	}
	occ := event.NewPrimitive(typ, class, s.StampNow(), params)
	if sys.cfg.EnforceSimultaneity && (class == event.Database || class == event.Explicit) {
		if s.lastLocal == nil {
			s.lastLocal = make(map[event.Class]int64)
		}
		local := occ.Stamp[0].Local
		if last, seen := s.lastLocal[class]; seen && last == local {
			return nil, fmt.Errorf("%w: %s at %s, local tick %d", ErrSimultaneous, class, s.ID, local)
		}
		s.lastLocal[class] = local
	}
	if sys.journal != nil {
		if err := sys.journal.Append(occ); err != nil {
			return nil, fmt.Errorf("ddetect: journal: %w", err)
		}
	}
	now := sys.clk.Now()
	env := envelope{Kind: envEvent, Occ: occ, RaisedAt: now}
	sys.stats.Raised++
	needers := sys.needers[typ]
	if len(needers) == 0 {
		sys.stats.Unconsumed++
		return occ, nil
	}
	for _, dst := range needers {
		if dst == s.ID {
			s.selfDeliver(env)
		} else {
			sys.bus.Send(now, s.ID, dst, sys.payload(env))
			sys.stats.Forwarded++
			sys.inFlightEvents++
		}
	}
	return occ, nil
}

// MustRaise is Raise that panics on error.
func (s *Site) MustRaise(typ string, class event.Class, params event.Params) *event.Occurrence {
	o, err := s.Raise(typ, class, params)
	if err != nil {
		panic(err)
	}
	return o
}

// forwardComposite ships a locally detected composite occurrence to the
// sites that need it by name (hierarchical mode).
func (sys *System) forwardComposite(from *Site, o *event.Occurrence) {
	now := sys.clk.Now()
	env := envelope{Kind: envEvent, Occ: o, RaisedAt: now}
	for _, dst := range sys.needers[o.Type] {
		if dst == from.ID {
			continue // local consumers already saw it via the detector
		}
		sys.bus.Send(now, from.ID, dst, sys.payload(env))
		sys.stats.Forwarded++
		sys.inFlightEvents++
	}
}

// payload prepares an envelope for the bus: the envelope itself, or its
// wire encoding when Config.Serialize is set.
func (sys *System) payload(env envelope) any {
	if !sys.cfg.Serialize {
		return env
	}
	we := wire.Envelope{Global: env.Global, RaisedAt: int64(env.RaisedAt)}
	if env.Kind == envEvent {
		we.Kind = wire.KindEvent
		we.Occ = env.Occ
	} else {
		we.Kind = wire.KindHeartbeat
	}
	buf, err := wire.Encode(we)
	if err != nil {
		panic(fmt.Sprintf("ddetect: envelope not encodable: %v", err))
	}
	return buf
}

// unpayload reverses payload.
func (sys *System) unpayload(p any) envelope {
	switch x := p.(type) {
	case envelope:
		return x
	case []byte:
		we, err := wire.Decode(x)
		if err != nil {
			panic(fmt.Sprintf("ddetect: corrupt envelope: %v", err))
		}
		env := envelope{Global: we.Global, RaisedAt: clock.Microticks(we.RaisedAt)}
		if we.Kind == wire.KindEvent {
			env.Kind = envEvent
			env.Occ = we.Occ
		} else {
			env.Kind = envHeartbeat
		}
		return env
	default:
		panic(fmt.Sprintf("ddetect: unexpected payload type %T", p))
	}
}

// selfDeliver puts a local occurrence through the site's own reorderer
// stream so local and remote events interleave in one linear extension.
func (s *Site) selfDeliver(env envelope) {
	s.selfSeq++
	if err := s.re.accept(s.ID, s.selfSeq, env); err != nil {
		panic(err) // programming error: self stream is always in order
	}
}

// Step advances simulated time by dt and processes everything that became
// due: heartbeats, message deliveries, watermark releases and detector
// timers.  Processing is deterministic (sites in ID order).
func (sys *System) Step(dt clock.Microticks) {
	sys.seal()
	now := sys.clk.Advance(dt)
	sys.tick(now)
}

// Run advances to target in fixed steps.
func (sys *System) Run(target, step clock.Microticks) {
	if step <= 0 {
		panic("ddetect: non-positive step")
	}
	for sys.clk.Now() < target {
		dt := step
		if rem := target - sys.clk.Now(); rem < dt {
			dt = rem
		}
		sys.Step(dt)
	}
}

// Settle keeps stepping by the heartbeat period until the network and all
// reorderers are quiescent (or maxSteps is exhausted), so every raised
// event that can be detected has been.
func (sys *System) Settle(maxSteps int) error {
	sys.seal()
	for i := 0; i < maxSteps; i++ {
		if sys.quiescent() {
			return nil
		}
		sys.Step(sys.cfg.HeartbeatEvery)
	}
	if !sys.quiescent() {
		return fmt.Errorf("ddetect: not quiescent after %d settle steps", maxSteps)
	}
	return nil
}

func (sys *System) quiescent() bool {
	if sys.inFlightEvents > 0 {
		return false
	}
	for _, s := range sys.sites {
		if s.re.pendingEvents() > 0 {
			return false
		}
	}
	return true
}

// tick processes everything due at the (already advanced) time now.
func (sys *System) tick(now clock.Microticks) {
	// 1. Heartbeats due up to now.
	for sys.nextHB <= now {
		for _, s := range sys.sites {
			if s.crashed {
				continue
			}
			g := s.clk.GlobalTick(s.clk.LocalTick(sys.nextHB))
			s.re.setFrontier(s.ID, g)
			for _, dst := range sys.sites {
				if dst.ID == s.ID {
					continue
				}
				sys.bus.Send(sys.nextHB, s.ID, dst.ID, sys.payload(envelope{Kind: envHeartbeat, Global: g}))
				sys.stats.Heartbeats++
			}
		}
		sys.nextHB += sys.cfg.HeartbeatEvery
	}
	// 2. Deliver due messages into reorderers.
	sys.bus.DeliverDue(now, func(m network.Message) {
		dst := sys.siteByID[m.To]
		if dst == nil {
			panic(fmt.Sprintf("ddetect: message to unknown site %q", m.To))
		}
		env := sys.unpayload(m.Payload)
		if env.Kind == envEvent {
			sys.inFlightEvents--
		}
		if err := dst.re.accept(m.From, m.Seq, env); err != nil {
			panic(err) // bus sequencing guarantees make this unreachable
		}
	})
	// 3. Release stable events to detectors and fire timers.
	for _, s := range sys.sites {
		s.re.release(sys.cfg.Release, func(env envelope) {
			sys.stats.Released++
			lat := now - env.RaisedAt
			sys.stats.LatencySum += lat
			if lat > sys.stats.LatencyMax {
				sys.stats.LatencyMax = lat
			}
			s.det.Publish(env.Occ)
		})
		s.det.AdvanceTo(now)
	}
}
