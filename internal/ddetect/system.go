package ddetect

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Config assembles a distributed detection system.
type Config struct {
	// Clock is the simulated time base (clock.PaperConfig by default).
	Clock clock.Config
	// Net is the simulated network (perfect by default).
	Net network.Config
	// HeartbeatEvery is the watermark period in microticks; it defaults
	// to one global granule, the finest useful cadence.
	HeartbeatEvery clock.Microticks
	// Release selects the watermark release mode; the zero value is
	// ReleaseTotalOrder (deterministic, centralized-equivalent).
	Release ReleaseMode
	// Serialize, when true, encodes every envelope crossing the bus with
	// internal/wire and decodes it at the receiver, proving the engine
	// needs no shared memory between sites (and costing one codec round
	// trip per message).
	Serialize bool
	// DisableBatching turns off per-link envelope coalescing: every
	// envelope travels as its own bus message, with the same per-flush
	// delay schedule the batched transport would have produced (see
	// network.Bus.SendUnbatched).  Detection output is byte-identical
	// either way — this is the differential mode that proves batching is
	// a pure transport optimization, and a way to measure its win.
	DisableBatching bool
	// Journal, when non-nil, receives every raised primitive occurrence
	// as an internal/eventlog record, enabling replay-based recovery of
	// detector state after a crash.
	Journal io.Writer
	// DisablePooling turns off occurrence recycling: every raise and
	// every composite allocates fresh storage that falls to the garbage
	// collector, exactly the pre-pool behaviour.  Detection output is
	// byte-identical either way (TestPoolingDeterminism) — this is the
	// differential mode that proves pooling is a pure memory
	// optimization.  Tracing composes with pooling: span identity is
	// keyed by (pointer, pool generation), so recycling a slot starts a
	// fresh span instead of aliasing the old one
	// (TestTracerComposesWithPooling).
	DisablePooling bool
	// DisableSharing turns off common-subexpression sharing in every
	// site's detector: each definition compiles a private operator
	// subgraph, the pre-CSE behaviour.  Detection output is
	// byte-identical either way (TestSharingDeterminism) — this is the
	// differential mode that proves the shared detection graph is a pure
	// compile/dispatch optimization.
	DisableSharing bool
	// EnforceSimultaneity applies the paper's Section 3.1 assumptions 3
	// and 4: no two database events and no two explicit events may be
	// simultaneous.  With it set, raising a second Database or Explicit
	// event at a site within the same local clock tick fails with
	// ErrSimultaneous instead of producing stamps the assumptions forbid
	// (advance the simulated clock between raises).
	EnforceSimultaneity bool
	// Pipeline configures the staged execution: Workers sets the
	// detect-stage worker count (0 = everything on the crank goroutine,
	// the sequential legacy behavior; results are identical either way)
	// and OnStage is an optional per-stage instrumentation hook.  See
	// internal/pipeline.
	Pipeline pipeline.Config
	// Trace, when non-nil, receives a span event at every lineage point
	// an occurrence crosses — raise, send, recv, release, detect,
	// publish — plus a per-stage note each tick.  Tracing is a pure
	// observer: span IDs are assigned in crank-order (deterministic for
	// every worker count), all timestamps are simulated microticks, and
	// the occurrence stream is byte-identical with tracing on or off
	// (TestObsDeterminism).  Tracing composes with pooling — span
	// identity is keyed by (pointer, pool generation), mirroring the
	// pool's own use-after-put check, so a recycled slot starts a fresh
	// span — and the span stream is identical pooled or unpooled.  In
	// Serialize mode, occurrences decoded on the receiving side are
	// distinct objects and get fresh span IDs; the send/recv hop is
	// still visible via site+peer+type.  A tracing run retains an ID per
	// traced occurrence, so prefer bounded runs or a Sample rate for
	// long-lived systems.
	Trace *obs.Tracer
	// Sample, when non-nil alongside Trace, head-samples the span
	// stream: each raise is kept or dropped by a seeded hash of its
	// identity (type, origin site, stamp) — no ambient randomness — and
	// the decision propagates through constituent capture, so a
	// composite detection is sampled exactly when every constituent is
	// and a sampled detection always carries complete lineage.  An
	// explicit per-definition rate (Sampler.SetRate) thins that
	// definition's detections further; it can only drop, never resurrect
	// a lineage the head decision dropped.  Stats, eventlogs and
	// detection are sampling-blind (TestObsDeterminism runs the matrix
	// at rates 0, 0.1 and 1).  A nil Sampler keeps every span.
	Sample *obs.Sampler
	// Metrics, when non-nil, is populated with the system's native
	// instruments (release/detection latency histograms) and a collector
	// bridging the Stats/StageStats/network.Stats counters, so one
	// Registry snapshot exports everything.  A Registry belongs to one
	// System (instrument names would collide otherwise).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Clock == (clock.Config{}) {
		c.Clock = clock.PaperConfig()
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.Clock.GlobalGranularity
	}
	if c.Pipeline.Workers < 0 {
		c.Pipeline.Workers = 0
	}
	return c
}

// Stats aggregates system activity.
type Stats struct {
	Raised     uint64
	Forwarded  uint64 // event messages put on the bus
	Heartbeats uint64
	Released   uint64 // events handed to detectors after reordering
	Detections uint64 // composite occurrences across all definitions
	Unconsumed uint64 // raised events no definition needed
	LatencySum clock.Microticks
	LatencyMax clock.Microticks
	Net        network.Stats
	// Stages holds per-stage tick counters and wall-clock latency
	// histograms, in pipeline order (ingest, transport, release, detect,
	// publish).
	Stages []pipeline.StageStats
	// Definitions holds per-definition detection counts and latencies,
	// sorted by definition name.
	Definitions []DefStats
	// Legs holds per-leg pipeline latency aggregates (raise→send,
	// send→recv, recv→release, raise→release for self-delivered events,
	// release→publish for detection constituents), indexed by StageLeg.
	// All deltas are simulated microticks, so the aggregates are as
	// deterministic as the run.
	Legs []LegStats
}

// MeanLatency returns the mean raise-to-release latency in microticks:
// how long the average occurrence waited between being raised and
// clearing its consumer's watermark.  (It was previously documented as
// raise-to-publish, which conflated transport latency with detection
// latency; per-definition detection latency lives in Definitions.)
func (s Stats) MeanLatency() float64 {
	if s.Released == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Released)
}

// DefStats aggregates one definition's detections.  Latency here is
// *detection* latency in event time: publish instant minus the start of
// the newest global granule in the detection's Max-set timestamp — i.e.
// how far behind its own constituents each detection ran.  Being a pure
// function of simulated time and the composite timestamp, it is
// identical across worker counts and transport modes.
type DefStats struct {
	// Name is the definition name.
	Name string
	// Detections counts published occurrences of this definition.
	Detections uint64
	// LatencySum and LatencyMax aggregate detection latency in
	// microticks.
	LatencySum clock.Microticks
	LatencyMax clock.Microticks
}

// MeanLatency returns the mean detection latency in microticks.
func (d DefStats) MeanLatency() float64 {
	if d.Detections == 0 {
		return 0
	}
	return float64(d.LatencySum) / float64(d.Detections)
}

// StageLeg identifies one pipeline-leg transition in the per-stage
// latency attribution.  The engine stamps each occurrence with the last
// stage boundary it crossed (event.StageMark) and the simulated instant
// it did; each subsequent crossing attributes the delta to one leg.
// Detect and publish share a tick instant (detections buffered by the
// detect barrier complete in the same tick's publish stage), so the
// raise→send→recv→release→detect→publish chain collapses its final two
// hops into release→publish.
type StageLeg uint8

const (
	// LegRaiseSend: raise to the coalescer flush that put the occurrence
	// on the bus.
	LegRaiseSend StageLeg = iota
	// LegSendRecv: bus flight time, flush to transport-stage accept.
	LegSendRecv
	// LegRecvRelease: reorder-buffer dwell, accept to watermark release.
	LegRecvRelease
	// LegRaiseRelease: the self-delivery shortcut — an occurrence
	// consumed at its origin site never crosses the bus, so its one
	// observable hop is raise to watermark release.
	LegRaiseRelease
	// LegReleasePublish: detector hold — how long a constituent waited
	// between its watermark release and the publication of a detection
	// it participated in.  Observed per (constituent, detection) pair,
	// so a constituent reused by a Recent context is attributed once per
	// detection.
	LegReleasePublish

	numLegs
)

// String returns the leg name used in metric labels and reports.
func (l StageLeg) String() string {
	switch l {
	case LegRaiseSend:
		return "raise_to_send"
	case LegSendRecv:
		return "send_to_recv"
	case LegRecvRelease:
		return "recv_to_release"
	case LegRaiseRelease:
		return "raise_to_release_local"
	case LegReleasePublish:
		return "release_to_publish"
	}
	return "unknown"
}

// LegStats aggregates one leg's simulated-time deltas.  For an
// occurrence consumed at several sites the mark follows the most recent
// crossing in crank order — a deterministic approximation that keeps the
// attribution at two fields per occurrence instead of per-delivery
// state.
type LegStats struct {
	// Leg names the transition.
	Leg StageLeg
	// Count, Sum and Max aggregate the observed deltas in microticks.
	Count uint64
	Sum   clock.Microticks
	Max   clock.Microticks
}

// Mean returns the mean delta in microticks.
func (l LegStats) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// System is a simulated multi-site detection deployment.  It owns the
// clock, the network and all site runtimes, and is driven in simulated
// time by Step/Run/Settle.
//
// Each tick runs an explicit five-stage pipeline — ingest, transport,
// release, detect, publish (see stages.go and internal/pipeline).  The
// public entry points are not safe for concurrent use: one goroutine
// turns the crank.  With Config.Pipeline.Workers > 1 the detect stage
// fans out across sites on a worker pool that joins at a per-tick
// barrier; all cross-site effects are buffered and applied in site-ID
// order afterwards, so the occurrence stream is bit-for-bit identical to
// the sequential mode.
type System struct {
	cfg   Config
	clk   *clock.System
	bus   *network.Bus
	reg   *event.Registry
	sites []*Site
	// roster is the sealed membership: dense index i names sys.sites[i]
	// (AddSite keeps sites sorted by ID, and roster order is ID order).
	// Every post-seal hot path — reorderers, the coalescer's link keys,
	// the bus's dense link index, the wire codec — runs on these indexes;
	// strings survive only at the public API and in eventlog/report
	// output, so determinism artifacts stay byte-identical.
	roster *core.Roster
	// needers records, per event type, the ID-sorted hosting sites whose
	// definitions reference it; needersIdx is its dense post-seal twin
	// (same order — interning preserves ID order), the form the raise and
	// publish hot paths consult.
	needers    map[string][]core.SiteID
	needersIdx map[string][]core.Site
	// codec is the roster-aware wire codec (Serialize mode): interned site
	// indexes in occurrence frames, delta-encoded heartbeat frontiers.
	codec *wire.Codec
	// hbSinks (fixed at seal) lists the sites that can receive remote
	// event envelopes — the sites appearing in some needers list.  Only
	// their watermarks gate on remote frontiers, so only they are
	// heartbeated; a heartbeat to any other site would advance a
	// frontier nothing ever waits on.
	hbSinks []*Site
	nextHB  clock.Microticks
	sealed  bool
	stats   Stats
	journal *eventlog.Writer

	// tr is the lineage tracer (nil when Config.Trace is unset: every
	// span point then costs one nil check); smp is the head sampler
	// gating its span stream (nil keeps everything).  defStats
	// accumulates per-definition detection stats, keyed by name;
	// defNames keeps the names sorted so snapshots and exporters never
	// iterate the map.
	tr       *obs.Tracer
	smp      *obs.Sampler
	defStats map[string]*DefStats
	defNames []string
	// hRelease and hDetect are the system's native metric instruments
	// (nil no-ops without Config.Metrics): simulated-time histograms of
	// raise-to-release and detection latency.
	hRelease *obs.Histogram
	hDetect  *obs.Histogram
	// legs aggregates per-leg pipeline latency always (plain field
	// arithmetic, no allocation); hLegs mirrors each leg into a registry
	// histogram when Config.Metrics is set (nil no-ops otherwise), and
	// defHold does the same per definition for the release→publish hold
	// of its constituents (created at DefineAt, nil map without
	// Metrics).
	legs    [numLegs]LegStats
	hLegs   [numLegs]*obs.Histogram
	defHold map[string]*obs.Histogram

	// handlers holds System.Subscribe handlers by definition name; the
	// publish stage fans detections out to them on the crank goroutine.
	handlers map[string][]detector.Handler

	// pipe composes the five stage drivers; pool is the worker pool the
	// release and detect stages fan out on; ingest is kept aside because
	// Site.Raise drives it between ticks; coal is the per-link transport
	// coalescer the ingest and publish stages queue into and flush (see
	// coalesce.go).
	pipe   *pipeline.Driver
	pool   *pipeline.Pool
	ingest *ingestStage
	coal   *linkCoalescer

	// opool recycles occurrences, their stamp storage and constituent
	// lists through the whole lifecycle — raise, transport, detection,
	// publish (see internal/event's pool.go for the ownership rules).
	// nil only when pooling is off (Config.DisablePooling); every
	// Retain/Release in the engine is then a no-op.  Tracing does not
	// suspend it: span identity is generation-stamped, so recycling is
	// invisible to the tracer.
	opool *event.Pool

	// inFlightEvents counts event envelopes on the bus (heartbeats are
	// perpetual and excluded), for the quiescence check.
	inFlightEvents int
}

// NewSystem builds a system.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	clk, err := clock.NewSystem(cfg.Clock)
	if err != nil {
		return nil, err
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	sys := &System{
		cfg:      cfg,
		clk:      clk,
		bus:      network.NewBus(cfg.Net),
		reg:      event.NewRegistry(),
		needers:  make(map[string][]core.SiteID),
		handlers: make(map[string][]detector.Handler),
		nextHB:   cfg.HeartbeatEvery,
		pool:     pipeline.NewPool(cfg.Pipeline.Workers),
		tr:       cfg.Trace,
		smp:      cfg.Sample,
		defStats: make(map[string]*DefStats),
	}
	for i := range sys.legs {
		sys.legs[i].Leg = StageLeg(i)
	}
	if reg := cfg.Metrics; reg != nil {
		// Bucket bounds in microticks, spanning sub-granule to
		// many-granule latencies under the default 100-microtick granule.
		bounds := []int64{10, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000}
		sys.hRelease = reg.Histogram("sentinel_release_latency_microticks", bounds...)
		sys.hDetect = reg.Histogram("sentinel_detect_latency_microticks", bounds...)
		for i := range sys.hLegs {
			sys.hLegs[i] = reg.Histogram(
				fmt.Sprintf("sentinel_stage_leg_microticks{leg=%q}", StageLeg(i)), bounds...)
		}
		sys.defHold = make(map[string]*obs.Histogram)
		reg.RegisterCollector(sys.collectMetrics)
	}
	if cfg.Journal != nil {
		sys.journal = eventlog.NewWriter(cfg.Journal)
	}
	sys.coal = newLinkCoalescer(sys)
	sys.ingest = &ingestStage{sys: sys}
	sys.pipe = pipeline.NewDriver(
		sys.ingest,
		&transportStage{sys: sys},
		&releaseStage{sys: sys},
		&detectStage{sys: sys},
		&publishStage{sys: sys},
	)
	sys.pipe.Hook(cfg.Pipeline.OnStage)
	if sys.tr != nil {
		sys.pipe.Hook(sys.stageNote)
	}
	return sys, nil
}

// stageNote mirrors non-empty stage ticks into the tracer as system-ring
// notes, giving flight-recorder dumps the stage context around the spans.
// Wall-clock elapsed time is deliberately omitted: every field of a span
// must be a function of simulated time so traces diff cleanly across
// runs.
func (sys *System) stageNote(ev pipeline.StageEvent) {
	if ev.Items == 0 {
		return
	}
	var detail string
	if sys.tr.Active() {
		detail = fmt.Sprintf("items=%d", ev.Items)
	}
	sys.tr.Emit(obs.SpanEvent{At: int64(ev.Now), Kind: obs.KindNote, Type: ev.Stage, Detail: detail})
}

// MustNewSystem is NewSystem that panics on error.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the shared event type registry.
func (sys *System) Registry() *event.Registry { return sys.reg }

// Clock returns the simulated time base.
func (sys *System) Clock() *clock.System { return sys.clk }

// Now returns the current reference time.
func (sys *System) Now() clock.Microticks { return sys.clk.Now() }

// Workers returns the detect-stage worker count (0 = sequential).
func (sys *System) Workers() int { return sys.pool.Workers() }

// Stats returns a snapshot of the counters, including per-stage pipeline
// stats and per-definition detection stats (sorted by name).
func (sys *System) Stats() Stats {
	st := sys.stats
	st.Net = sys.bus.Stats()
	st.Stages = sys.pipe.Stats()
	if len(sys.defNames) > 0 {
		st.Definitions = make([]DefStats, 0, len(sys.defNames))
		for _, name := range sys.defNames {
			st.Definitions = append(st.Definitions, *sys.defStats[name])
		}
	}
	st.Legs = append([]LegStats(nil), sys.legs[:]...)
	return st
}

// collectMetrics is the pull bridge registered on Config.Metrics: it
// republishes the Stats/StageStats/network.Stats counters as registry
// samples at snapshot time, keeping the structs the single source of
// truth with zero hot-path duplication.  Only simulated-time quantities
// are exported (stage wall-clock histograms stay in Stats.Stages), so a
// registry export is as deterministic as the run itself.
func (sys *System) collectMetrics(emit func(name string, value float64)) {
	st := sys.stats
	emit("sentinel_raised_total", float64(st.Raised))
	emit("sentinel_forwarded_total", float64(st.Forwarded))
	emit("sentinel_heartbeats_total", float64(st.Heartbeats))
	emit("sentinel_released_total", float64(st.Released))
	emit("sentinel_detections_total", float64(st.Detections))
	emit("sentinel_unconsumed_total", float64(st.Unconsumed))
	net := sys.bus.Stats()
	emit("sentinel_net_messages_sent_total", float64(net.Sent))
	emit("sentinel_net_messages_delivered_total", float64(net.Delivered))
	emit("sentinel_net_retransmitted_total", float64(net.Retransmitted))
	emit("sentinel_net_envelopes_total", float64(net.Envelopes))
	emit("sentinel_net_batches_total", float64(net.Batches))
	emit("sentinel_net_payload_bytes_total", float64(net.PayloadBytes))
	emit("sentinel_net_max_in_flight", float64(net.MaxInFlight))
	// Occurrence pool counters.  Gets/puts/double-puts are logical
	// lifecycle transitions and as deterministic as the run.  Misses are
	// deliberately NOT exported: they are timing-dependent (the runtime
	// may drop pooled objects under GC pressure — and does so randomly
	// under the race detector), which would break the run-to-run
	// byte-identical registry export; read them from PoolStats() or the
	// distsim -stats section instead.
	ps := sys.opool.Stats()
	emit("sentinel_pool_gets_total", float64(ps.Gets))
	emit("sentinel_pool_puts_total", float64(ps.Puts))
	emit("sentinel_pool_double_puts_averted_total", float64(ps.DoublePuts))
	for _, ss := range sys.pipe.Stats() {
		emit(fmt.Sprintf("sentinel_stage_items_total{stage=%q}", ss.Name), float64(ss.Items))
		emit(fmt.Sprintf("sentinel_stage_ticks_total{stage=%q}", ss.Name), float64(ss.Ticks))
	}
	for _, name := range sys.defNames {
		ds := sys.defStats[name]
		emit(fmt.Sprintf("sentinel_def_detections_total{def=%q}", name), float64(ds.Detections))
		emit(fmt.Sprintf("sentinel_def_latency_max_microticks{def=%q}", name), float64(ds.LatencyMax))
		emit(fmt.Sprintf("sentinel_def_latency_mean_microticks{def=%q}", name), ds.MeanLatency())
	}
	for _, s := range sys.sites {
		is := s.det.Introspect()
		emit(fmt.Sprintf("sentinel_detector_state_size{site=%q}", s.ID), float64(is.StateSize))
		emit(fmt.Sprintf("sentinel_detector_dropped_total{site=%q}", s.ID), float64(is.Dropped))
		emit(fmt.Sprintf("sentinel_detector_pending_timers{site=%q}", s.ID), float64(is.PendingTimers))
		emit(fmt.Sprintf("sentinel_detector_nodes{site=%q}", s.ID), float64(is.NodeCount))
		emit(fmt.Sprintf("sentinel_detector_shared_subexprs{site=%q}", s.ID), float64(is.SharedSubexprs))
		emit(fmt.Sprintf("sentinel_detector_interned_subtrees{site=%q}", s.ID), float64(is.InternedSubtrees))
	}
}

// legFor maps a (last crossed, now crossing) stage-mark pair to the leg
// it observes, or numLegs for transitions that carry no attribution
// (repeat crossings by multi-consumer events, serialize-decoded
// occurrences whose pre-decode history ended at the encode).
func legFor(from, to event.StageMark) StageLeg {
	switch {
	case from == event.MarkRaise && to == event.MarkSend:
		return LegRaiseSend
	case from == event.MarkSend && to == event.MarkRecv:
		return LegSendRecv
	case from == event.MarkRecv && to == event.MarkRelease:
		return LegRecvRelease
	case from == event.MarkRaise && to == event.MarkRelease:
		return LegRaiseRelease
	}
	return numLegs
}

// mark records that o just crossed stage boundary m at the simulated
// instant now: defined transitions attribute the delta since the last
// crossing to their leg, every crossing restamps the mark.  Runs on the
// crank goroutine only (ingest raise, coalescer flush, transport accept,
// release accounting), so the leg aggregates are single-writer like
// every other Stats counter.
//
//sentinel:hotpath
func (sys *System) mark(o *event.Occurrence, m event.StageMark, now clock.Microticks) {
	if leg := legFor(o.Mark, m); leg < numLegs {
		d := now - clock.Microticks(o.MarkAt)
		ls := &sys.legs[leg]
		ls.Count++
		ls.Sum += d
		if d > ls.Max {
			ls.Max = d
		}
		sys.hLegs[leg].Observe(int64(d))
	}
	o.Mark = m
	o.MarkAt = int64(now)
}

// observeHold attributes, for each constituent the detection o captured,
// the wait between the constituent's watermark release and this publish
// instant — the detector-hold leg — plus the per-definition hold
// histogram when metrics are attached.  Constituent marks are left
// untouched: a constituent a Recent context reuses is attributed once
// per detection it participates in, each time from its release instant.
//
//sentinel:hotpath
func (sys *System) observeHold(o *event.Occurrence, now clock.Microticks) {
	var h *obs.Histogram
	if sys.defHold != nil {
		h = sys.defHold[o.Type]
	}
	for _, c := range o.Constituents {
		if c.Mark != event.MarkRelease {
			continue
		}
		d := now - clock.Microticks(c.MarkAt)
		ls := &sys.legs[LegReleasePublish]
		ls.Count++
		ls.Sum += d
		if d > ls.Max {
			ls.Max = d
		}
		sys.hLegs[LegReleasePublish].Observe(int64(d))
		h.Observe(int64(d))
	}
}

// decideSample resolves the head-sampling decision for an occurrence
// whose bit is still unset: primitives hash their raise identity (type,
// origin site, stamp — the same inputs whether computed at raise or
// recomputed after a serialize-mode decode), composites AND their
// constituents' decisions so a kept detection always carries complete
// lineage, and a definition name carrying an explicit per-name rate is
// thinned further by a hash of the detection's own identity.  Callers
// gate on sys.smp != nil; the result is also stamped on o so each
// occurrence is decided once.
//
//sentinel:hotpath
func (sys *System) decideSample(o *event.Occurrence) event.SampleState {
	if o.Sample != event.SampleUndecided {
		return o.Sample
	}
	smp := sys.smp
	keep := true
	if len(o.Constituents) == 0 {
		st0 := o.Stamp[0]
		keep = smp.Keep(o.Type, string(st0.Site), st0.Global, st0.Local)
	} else {
		for _, c := range o.Constituents {
			if sys.decideSample(c) == event.SampleDrop {
				keep = false
				break
			}
		}
		if keep && smp.HasRate(o.Type) {
			keep = smp.Keep(o.Type, string(o.Site), o.Stamp.MaxGlobal(), 0)
		}
	}
	if keep {
		o.Sample = event.SampleKeep
	} else {
		o.Sample = event.SampleDrop
	}
	return o.Sample
}

// Site is one site runtime: a clock, a detector and a reorderer.
type Site struct {
	ID  core.SiteID
	sys *System
	clk *clock.SiteClock
	det *detector.Detector
	re  *reorderer
	// idx is the site's dense roster index, assigned at seal; every
	// post-seal per-message path addresses the site by it.
	idx core.Site

	selfSeq uint64
	// lastLocal tracks the last raised local tick per event class, for
	// Config.EnforceSimultaneity.
	lastLocal map[event.Class]int64
	// crashed marks a site that stopped: it raises nothing and sends no
	// heartbeats.  See System.Crash and System.Decommission.
	crashed bool

	// Inter-stage buffers, each owned by exactly one stage at a time:
	// released carries the envelopes this site's reorderer popped during
	// the parallel advance phase of the release stage to its sequential
	// accounting phase (see releaseStage.Tick); inbox carries
	// watermark-released occurrences from the release stage to the
	// detect stage; detected carries this site's composite detections
	// (appended by the per-definition recorder, in detection order) from
	// the detect stage to the publish stage.  In parallel mode the
	// worker that owns this site is the only goroutine touching any of
	// them.
	released []envelope
	inbox    []*event.Occurrence
	detected []*event.Occurrence
}

// ErrSimultaneous reports a violation of the Section 3.1 simultaneity
// assumptions (see Config.EnforceSimultaneity).
var ErrSimultaneous = errors.New("ddetect: two events of the same class at the same site and local tick")

// ErrCrashed reports an operation on a crashed site.
var ErrCrashed = errors.New("ddetect: site has crashed")

// Crash simulates a site failure: the site stops heartbeating and can no
// longer raise events.  Its silence stalls every other site's watermark —
// exactly the behaviour a real watermark-ordered system exhibits — until
// the operator acknowledges the loss with Decommission.
func (sys *System) Crash(id core.SiteID) error {
	sys.seal()
	s := sys.siteFor(id)
	if s == nil {
		return fmt.Errorf("ddetect: unknown site %q", id)
	}
	s.crashed = true
	return nil
}

// Decommission removes a (typically crashed) site's clock from every
// watermark: remaining sites stop waiting for its heartbeats and buffered
// events resume releasing.  Events the dead site sent before crashing are
// still processed.  Detection involving only surviving sites continues;
// anything that needed the dead site's future events is simply never
// completed — the honest semantics of a lost site.
func (sys *System) Decommission(id core.SiteID) error {
	sys.seal()
	dead := sys.siteFor(id)
	if dead == nil {
		return fmt.Errorf("ddetect: unknown site %q", id)
	}
	if err := sys.Crash(id); err != nil {
		return err
	}
	for _, s := range sys.sites {
		s.re.exclude(dead.idx)
	}
	return nil
}

// siteTime adapts a site clock to detector.TimeSource.
type siteTime struct {
	sys *clock.System
	clk *clock.SiteClock
	id  core.SiteID
}

func (st siteTime) Now() clock.Microticks { return st.sys.Now() }

func (st siteTime) StampAt(ref clock.Microticks) core.Stamp {
	l := st.clk.LocalTick(ref)
	return core.Stamp{Site: st.id, Global: st.clk.GlobalTick(l), Local: l}
}

// ErrSealed is returned when topology changes after the simulation
// started.
var ErrSealed = errors.New("ddetect: topology is sealed once the simulation has started")

// AddSite registers a site with the given clock offset and drift (bounded
// by the configured precision Π).
func (sys *System) AddSite(id core.SiteID, offset clock.Microticks, driftPPM int64) (*Site, error) {
	if sys.sealed {
		return nil, ErrSealed
	}
	sc, err := sys.clk.AddSite(string(id), offset, driftPPM)
	if err != nil {
		return nil, err
	}
	s := &Site{
		ID:  id,
		sys: sys,
		clk: sc,
		det: detector.New(id, sys.reg, siteTime{sys: sys.clk, clk: sc, id: id}),
	}
	if sys.cfg.DisableSharing {
		s.det.SetSharing(false)
	}
	sys.sites = append(sys.sites, s)
	sort.Slice(sys.sites, func(i, j int) bool { return sys.sites[i].ID < sys.sites[j].ID })
	return s, nil
}

// siteFor resolves a SiteID to its runtime by binary search over the
// ID-sorted site slice — the one string lookup left on the control paths
// (Crash, Decommission, DefineAt, Site); everything per-message runs on
// dense roster indexes.
func (sys *System) siteFor(id core.SiteID) *Site {
	i := sort.Search(len(sys.sites), func(i int) bool { return sys.sites[i].ID >= id })
	if i < len(sys.sites) && sys.sites[i].ID == id {
		return sys.sites[i]
	}
	return nil
}

// MustAddSite is AddSite that panics on error.
func (sys *System) MustAddSite(id core.SiteID, offset clock.Microticks, driftPPM int64) *Site {
	s, err := sys.AddSite(id, offset, driftPPM)
	if err != nil {
		panic(err)
	}
	return s
}

// Site returns the site runtime registered under id, or nil.
func (sys *System) Site(id core.SiteID) *Site { return sys.siteFor(id) }

// Roster returns the sealed membership — index i names the i'th site in
// ID order — sealing the topology if the simulation has not started yet
// (call it after every AddSite/DefineAt).  Attach it to roster-aware
// observers (obs.ChromeTrace.UseRoster, obs.FlightRecorder.UseRoster)
// before the first tick so their per-site state keys by dense index.
func (sys *System) Roster() *core.Roster {
	sys.seal()
	return sys.roster
}

// Declare registers a primitive event type usable at any site.
func (sys *System) Declare(name string, class event.Class) error {
	_, err := sys.reg.Declare(name, class)
	return err
}

// DefineAt compiles a named composite event at the hosting site.  Every
// primitive (or previously defined composite) the expression references is
// recorded as needed by the host, so the ingest stage forwards matching
// occurrences there; a referenced composite defined at another site is
// additionally forwarded from its own host when it is detected
// (hierarchical mode, handled by the publish stage).
func (sys *System) DefineAt(host core.SiteID, name, expression string, ctx detector.Context) (*detector.Definition, error) {
	if sys.sealed {
		return nil, ErrSealed
	}
	s := sys.siteFor(host)
	if s == nil {
		return nil, fmt.Errorf("ddetect: unknown host site %q", host)
	}
	root, err := expr.Parse(expression)
	if err != nil {
		return nil, err
	}
	def, err := s.det.Define(name, root, ctx)
	if err != nil {
		return nil, err
	}
	for _, prim := range expr.Primitives(root) {
		sys.addNeeder(prim, host)
	}
	// Per-definition stats slot (publish stage fills it); defNames keeps
	// the map's keys sorted so snapshots never iterate the map.
	if sys.defStats[name] == nil {
		sys.defStats[name] = &DefStats{Name: name}
		sys.defNames = append(sys.defNames, name)
		sort.Strings(sys.defNames)
		if sys.defHold != nil {
			sys.defHold[name] = sys.cfg.Metrics.Histogram(
				fmt.Sprintf("sentinel_def_hold_microticks{def=%q}", name),
				10, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000)
		}
	}
	// Recorder: buffer every detection of this definition on its host
	// site, in detection order.  The publish stage completes them after
	// the detect barrier — counting, System.Subscribe fan-out and
	// hierarchical forwarding to the sites recorded in needers.  In
	// parallel mode this closure runs on the worker that owns s, which
	// is the only goroutine appending to s.detected.
	s.det.Subscribe(name, func(o *event.Occurrence) {
		o.Retain() // the publish stage owns this reference and releases it
		s.detected = append(s.detected, o)
	})
	return def, nil
}

// addNeeder records that host needs occurrences of typ (idempotent).
func (sys *System) addNeeder(typ string, host core.SiteID) {
	for _, h := range sys.needers[typ] {
		if h == host {
			return
		}
	}
	sys.needers[typ] = append(sys.needers[typ], host)
	sort.Slice(sys.needers[typ], func(i, j int) bool { return sys.needers[typ][i] < sys.needers[typ][j] })
}

// hostOf returns the site at which a composite name is defined, or nil.
func (sys *System) hostOf(name string) *Site {
	for _, s := range sys.sites {
		for _, def := range s.det.Definitions() {
			if def.Name == name {
				return s
			}
		}
	}
	return nil
}

// Subscribe attaches a handler to a definition.  Handlers run on the
// crank goroutine during the publish stage, after the detect barrier, in
// deterministic (site, detection) order — never concurrently, whatever
// the worker count.
//
// The occurrence passed to a handler is a borrow: it (and its
// constituent tree) is valid for the duration of the call, after which
// the publish stage may recycle it through the occurrence pool.  A
// handler that stores the pointer past its return must call Retain (and
// Release when done); handlers that only read fields, serialize, or
// count need nothing.
func (sys *System) Subscribe(name string, h detector.Handler) error {
	if sys.hostOf(name) == nil {
		return fmt.Errorf("ddetect: no site defines %q", name)
	}
	sys.handlers[name] = append(sys.handlers[name], h)
	return nil
}

// seal freezes the topology: it interns the membership into the roster
// (dense index i names sys.sites[i], since both are ID-sorted), attaches
// the roster to the bus and the wire codec, translates the needers lists
// to dense form, and equips every site's reorderer with its source set.
// Event envelopes only ever flow to the sites recorded in some needers
// list (any site may raise any type, so each such sink can hear from
// every other site); a site outside every needers list receives nothing,
// so its watermark gates only on its own frontier and nobody needs to
// heartbeat it.  seal fixes both sides of that asymmetry: full source
// sets (and heartbeat fan-in, see ingestStage.Tick) for the sinks,
// self-only for everyone else.
func (sys *System) seal() {
	if sys.sealed {
		return
	}
	sys.sealed = true
	ids := make([]core.SiteID, 0, len(sys.sites))
	for _, s := range sys.sites {
		ids = append(ids, s.ID)
	}
	sys.roster = core.NewRoster(ids)
	for i, s := range sys.sites {
		s.idx = core.Site(i)
	}
	sys.bus.SetRoster(sys.roster)
	sys.codec = &wire.Codec{Roster: sys.roster, Granule: int64(sys.cfg.Clock.GlobalGranularity), Types: sys.reg}
	sink := make([]bool, len(sys.sites))
	sys.needersIdx = make(map[string][]core.Site, len(sys.needers))
	for typ, hosts := range sys.needers { //lint:allow mapiter — per-type entries are independent and each dense list inherits its string list's ID-sorted order; hbSinks below is appended in sys.sites order
		dense := make([]core.Site, len(hosts))
		for i, h := range hosts {
			dense[i] = sys.roster.MustSite(h)
			sink[dense[i]] = true
		}
		sys.needersIdx[typ] = dense
	}
	for _, s := range sys.sites {
		if sink[s.idx] {
			s.re = newReorderer(sys.roster)
			sys.hbSinks = append(sys.hbSinks, s)
		} else {
			s.re = newSelfReorderer(sys.roster, s.idx)
		}
	}
	// Occurrence pooling needs the sealed roster (interned stamp
	// components).  Tracing no longer suspends it: span identity is
	// keyed by (pointer, generation), so a recycled slot cannot alias a
	// previous tenant's span.
	if !sys.cfg.DisablePooling {
		sys.opool = event.NewPool(sys.roster)
		for _, s := range sys.sites {
			s.det.UsePool(sys.opool)
		}
	}
}

// PoolStats returns a snapshot of the occurrence pool counters (zero when
// pooling is off).
func (sys *System) PoolStats() event.PoolStats { return sys.opool.Stats() }

// StampNow returns the site's current primitive timestamp.
func (s *Site) StampNow() core.Stamp {
	ref := s.sys.clk.Now()
	l := s.clk.LocalTick(ref)
	return core.Stamp{Site: s.ID, Global: s.clk.GlobalTick(l), Local: l}
}

// Detector exposes the site's detector (for advanced wiring in examples
// and tests).  Handlers subscribed directly here — rather than through
// System.Subscribe — run inside the detect stage, on a worker goroutine
// when Config.Pipeline.Workers > 1.
func (s *Site) Detector() *detector.Detector { return s.det }

// Raise raises a primitive event at this site, stamped by its clock, and
// forwards it to every site whose definitions need it (the ingest stage).
// The returned occurrence is a borrow: with pooling active it stays valid
// only until the Step that consumes its deliveries, after which it may be
// recycled — read or copy what you need (the stamp, the type) before
// stepping.  An occurrence no definition consumes is never recycled.
func (s *Site) Raise(typ string, class event.Class, params event.Params) (*event.Occurrence, error) {
	return s.sys.ingest.raise(s, typ, class, params)
}

// MustRaise is Raise that panics on error.
func (s *Site) MustRaise(typ string, class event.Class, params event.Params) *event.Occurrence {
	o, err := s.Raise(typ, class, params)
	if err != nil {
		panic(err)
	}
	return o
}

// forwardComposite queues a locally detected composite occurrence for the
// sites that reference it by name (hierarchical mode); the publish stage
// flushes the queued forwards at the end of its Tick.  Runs on the crank
// goroutine (publish stage).
func (sys *System) forwardComposite(from *Site, o *event.Occurrence) {
	needers := sys.needersIdx[o.Type]
	if len(needers) == 0 {
		return
	}
	now := sys.clk.Now()
	env := envelope{Kind: envEvent, Occ: o, RaisedAt: now}
	for _, dst := range needers {
		if dst == from.idx {
			continue // local consumers already saw it via the detector
		}
		sys.coal.add(from.idx, dst, env)
		sys.stats.Forwarded++
		sys.inFlightEvents++
	}
}

// payload prepares an envelope for the bus: the envelope itself, or its
// wire encoding — dense site indexes, delta frontiers — when
// Config.Serialize is set.
func (sys *System) payload(env envelope) any {
	if !sys.cfg.Serialize {
		return env
	}
	we := wire.Envelope{Global: env.Global, RaisedAt: int64(env.RaisedAt)}
	if env.Kind == envEvent {
		we.Kind = wire.KindEvent
		we.Occ = env.Occ
	} else {
		we.Kind = wire.KindHeartbeat
	}
	//lint:allow hotalloc — the encoded frame IS the message payload handed to the bus; its allocation is the product of serialization
	buf, err := sys.codec.Encode(we)
	if err != nil {
		//lint:allow hotalloc — panic message on an unencodable envelope; never formats on the steady path
		panic(fmt.Sprintf("ddetect: envelope not encodable: %v", err))
	}
	return buf
}

// unpayload reverses payload.
func (sys *System) unpayload(p any) envelope {
	switch x := p.(type) {
	case envelope:
		return x
	case []byte:
		//lint:allow hotalloc — Decode allocates only when rejecting a corrupt frame (error construction); the decoded envelope reuses the frame's bytes
		we, err := sys.codec.Decode(x)
		if err != nil {
			//lint:allow hotalloc — panic message on a corrupt envelope; never formats on the steady path
			panic(fmt.Sprintf("ddetect: corrupt envelope: %v", err))
		}
		env := envelope{Global: we.Global, RaisedAt: clock.Microticks(we.RaisedAt)}
		if we.Kind == wire.KindEvent {
			env.Kind = envEvent
			env.Occ = we.Occ
		} else {
			env.Kind = envHeartbeat
		}
		return env
	default:
		//lint:allow hotalloc — panic message on an impossible payload type; never formats on the steady path
		panic(fmt.Sprintf("ddetect: unexpected payload type %T", p))
	}
}

// selfDeliver puts a local occurrence through the site's own reorderer
// stream so local and remote events interleave in one linear extension.
// Like coal.add it takes the delivery's reference on the occurrence; the
// detect stage releases it after dispatch.
func (s *Site) selfDeliver(env envelope) {
	env.Occ.Retain()
	s.selfSeq++
	if err := s.re.accept(s.idx, s.selfSeq, env); err != nil {
		panic(err) // programming error: self stream is always in order
	}
}

// Step advances simulated time by dt and runs one pipeline tick over
// everything that became due: heartbeats, message deliveries, watermark
// releases, detection and publication.  Processing is deterministic
// (stages in order, sites in ID order) for every worker count.
func (sys *System) Step(dt clock.Microticks) {
	sys.seal()
	now := sys.clk.Advance(dt)
	sys.pipe.Tick(now)
}

// Run advances to target in fixed steps.
func (sys *System) Run(target, step clock.Microticks) {
	if step <= 0 {
		panic("ddetect: non-positive step")
	}
	for sys.clk.Now() < target {
		dt := step
		if rem := target - sys.clk.Now(); rem < dt {
			dt = rem
		}
		sys.Step(dt)
	}
}

// Settle keeps stepping by the heartbeat period until the network and all
// reorderers are quiescent (or maxSteps is exhausted), so every raised
// event that can be detected has been.
func (sys *System) Settle(maxSteps int) error {
	sys.seal()
	for i := 0; i < maxSteps; i++ {
		if sys.quiescent() {
			return nil
		}
		sys.Step(sys.cfg.HeartbeatEvery)
	}
	if !sys.quiescent() {
		return fmt.Errorf("ddetect: not quiescent after %d settle steps", maxSteps)
	}
	return nil
}

// quiescent reports whether nothing is in flight or buffered.  The
// inter-stage buffers need no check: every Step drains inbox and detected
// completely before returning.
func (sys *System) quiescent() bool {
	if sys.inFlightEvents > 0 {
		return false
	}
	for _, s := range sys.sites {
		if s.re.pendingEvents() > 0 {
			return false
		}
	}
	return true
}
