package ddetect

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

// Temporal operators in the distributed engine: ticks are stamped by the
// hosting site's clock and interleave with remote events through the
// reorderer.
func TestDistributedPeriodic(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	hub := sys.MustAddSite("hub", 0, 0)
	ward := sys.MustAddSite("ward", 20, 0)
	_ = hub
	for _, typ := range []string{"Admit", "Discharge"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "Watch", "P(Admit, 500, Discharge)", detector.Recent); err != nil {
		t.Fatal(err)
	}
	var ticks []*event.Occurrence
	if err := sys.Subscribe("Watch", func(o *event.Occurrence) { ticks = append(ticks, o.Retain()) }); err != nil {
		t.Fatal(err)
	}
	ward.MustRaise("Admit", event.Explicit, nil)
	sys.Run(1800, 100) // ticks due around 600, 1100, 1600 (after release latency)
	n := len(ticks)
	if n < 2 {
		t.Fatalf("periodic fired %d times, want at least 2", n)
	}
	ward.MustRaise("Discharge", event.Explicit, nil)
	if err := sys.Settle(100); err != nil {
		t.Fatal(err)
	}
	after := len(ticks)
	sys.Run(sys.Now()+3000, 100)
	if len(ticks) != after {
		t.Fatalf("periodic kept firing after discharge: %d -> %d", after, len(ticks))
	}
	// Tick stamps come from the hosting site.
	for _, o := range ticks {
		tick := o.Flatten()[1]
		if tick.Stamp[0].Site != "hub" {
			t.Fatalf("tick stamped at %s, want hub", tick.Stamp[0].Site)
		}
	}
}

func TestDistributedPlus(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("Alarm", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DefineAt("hub", "Escalate", "PLUS(Alarm, 700)", detector.Recent); err != nil {
		t.Fatal(err)
	}
	var fired []*event.Occurrence
	if err := sys.Subscribe("Escalate", func(o *event.Occurrence) { fired = append(fired, o.Retain()) }); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("Alarm", event.Explicit, nil)
	sys.Run(600, 100)
	if len(fired) != 0 {
		t.Fatalf("PLUS fired before its delta")
	}
	sys.Run(1500, 100)
	if len(fired) != 1 {
		t.Fatalf("PLUS fired %d times, want 1", len(fired))
	}
}

// Masked expressions work across sites: the mask filters at the hosting
// detector's edge after forwarding.
func TestDistributedMaskedSequence(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 15}})
	sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	for _, typ := range []string{"Trade", "Close"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "BigThenClose", "Trade[qty >= 100] ; Close", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	var got []*event.Occurrence
	if err := sys.Subscribe("BigThenClose", func(o *event.Occurrence) { got = append(got, o.Retain()) }); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("Trade", event.Explicit, event.Params{"qty": 5})
	sys.Run(400, 50)
	edge.MustRaise("Trade", event.Explicit, event.Params{"qty": 500})
	sys.Run(800, 50)
	edge.MustRaise("Close", event.Explicit, nil)
	if err := sys.Settle(200); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if got[0].Flatten()[0].Params["qty"] != 500 {
		t.Fatalf("mask paired the small trade: %v", got[0].Flatten()[0].Params)
	}
}
