package ddetect

import (
	"errors"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

// A crashed site's silence stalls the watermark (buffered events stop
// releasing) until the operator decommissions it — the classic behaviour
// of watermark-ordered systems, reproduced and then resolved.
func TestCrashStallsUntilDecommission(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	hub := sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 0, 0)
	flaky := sys.MustAddSite("flaky", 0, 0)
	_ = flaky
	for _, typ := range []string{"A", "B"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")

	// Healthy phase.
	edge.MustRaise("A", event.Explicit, nil)
	sys.Run(400, 50)
	hub.MustRaise("B", event.Explicit, nil)
	sys.Run(800, 50)
	if len(*got) != 1 {
		t.Fatalf("healthy phase: detections = %d, want 1", len(*got))
	}

	// flaky crashes; new events stall behind its silent clock.
	if err := sys.Crash("flaky"); err != nil {
		t.Fatal(err)
	}
	edge.MustRaise("A", event.Explicit, nil)
	sys.Run(sys.Now()+400, 50)
	hub.MustRaise("B", event.Explicit, nil)
	sys.Run(sys.Now()+2_000, 50)
	if len(*got) != 1 {
		t.Fatalf("stall phase: detections = %d, want still 1 (watermark must stall)", len(*got))
	}

	// Operator acknowledges the loss: detection resumes.
	if err := sys.Decommission("flaky"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(1_000); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("post-decommission: detections = %d, want 2", len(*got))
	}
}

func TestCrashedSiteCannotRaise(t *testing.T) {
	sys := MustNewSystem(Config{})
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if err := sys.Crash("edge"); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Raise("A", event.Explicit, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("raise on crashed site = %v, want ErrCrashed", err)
	}
}

func TestCrashUnknownSite(t *testing.T) {
	sys := MustNewSystem(Config{})
	sys.MustAddSite("a", 0, 0)
	if err := sys.Crash("ghost"); err == nil {
		t.Fatalf("crashing an unknown site must fail")
	}
	if err := sys.Decommission("ghost"); err == nil {
		t.Fatalf("decommissioning an unknown site must fail")
	}
}

// Events a site sent before crashing are still detected after it is
// decommissioned.
func TestPreCrashEventsSurviveDecommission(t *testing.T) {
	sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 10}})
	sys.MustAddSite("hub", 0, 0)
	flaky := sys.MustAddSite("flaky", 0, 0)
	for _, typ := range []string{"A", "B"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	got := collect(t, sys, "AB")

	flaky.MustRaise("A", event.Explicit, nil)
	sys.Run(300, 50)
	flaky.MustRaise("B", event.Explicit, nil) // in flight when the site dies
	if err := sys.Crash("flaky"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Decommission("flaky"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(1_000); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("pre-crash events lost: detections = %d, want 1", len(*got))
	}
}
