package ddetect

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/wire"
)

// This file holds the five stage drivers the System composes into its
// per-tick pipeline (see internal/pipeline):
//
//	ingest    — site raises (stamping, simultaneity enforcement,
//	            journaling, bus hand-off) and watermark heartbeats
//	transport — batch-draining the bus and restoring per-link FIFO
//	            order in each site's reorderer
//	release   — watermark release of stable events into per-site
//	            detect inboxes
//	detect    — running every site's detector graph over its inbox,
//	            optionally in parallel across sites (pipeline.Pool)
//	publish   — subscriber fan-out, hierarchical forwarding and stats,
//	            in deterministic site order
//
// Only the detect stage runs off the crank goroutine, and it confines
// every write to per-site state (the detector, the site's inbox and
// detected buffers).  Everything that touches shared state — the bus,
// the RNG behind it, the Stats counters, user handlers — happens in the
// single-threaded stages, in site-ID order, so the sequence of
// side-effects is identical whatever the worker count: the determinism
// argument for the per-tick barrier.

// ingestStage drives the raise path and the heartbeat cadence.  Raises
// happen between ticks (the application calls Site.Raise); the stage's
// Tick emits due heartbeats and accounts the raises since the last tick.
type ingestStage struct {
	sys *System
	// raised counts Site.Raise calls since the last tick, for the
	// stage's item accounting.
	raised int
}

func (st *ingestStage) Name() string { return "ingest" }

// Tick queues due watermark heartbeats — each site's global time read at
// the nominal heartbeat instant — and then flushes the link coalescer:
// everything queued since the last flush (raises between ticks plus these
// heartbeats) leaves as one batch per link.  Per-link order is raises
// first, heartbeats second, exactly the per-link send order of the
// unbatched transport.
//
//lint:allow stagefx — ingest runs single-threaded on the crank goroutine before the detect barrier; its heartbeat counters and coalescer flush execute in deterministic site/link order regardless of worker count
//sentinel:hotpath
func (st *ingestStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := st.raised
	st.raised = 0
	for sys.nextHB <= now {
		for _, s := range sys.sites {
			if s.crashed {
				continue
			}
			g := s.clk.GlobalTick(s.clk.LocalTick(sys.nextHB))
			s.re.setFrontier(s.idx, g)
			// Only the event sinks (sites in some needers list) gate
			// their watermark on remote frontiers; heartbeating anyone
			// else would advance a frontier nothing waits on (see
			// System.seal).  RaisedAt carries the nominal heartbeat
			// instant — the reference the wire codec delta-encodes the
			// frontier against in Serialize mode.
			for _, dst := range sys.hbSinks {
				if dst == s {
					continue
				}
				sys.coal.add(s.idx, dst.idx, envelope{Kind: envHeartbeat, Global: g, RaisedAt: sys.nextHB})
				sys.stats.Heartbeats++
				n++
			}
		}
		sys.nextHB += sys.cfg.HeartbeatEvery
	}
	sys.coal.flush(now)
	return n
}

// raise is the ingest half of Site.Raise: stamp, enforce the Section 3.1
// simultaneity assumptions, journal, and hand the occurrence to the
// transport (the link coalescer, flushed at the next ingest tick) or the
// site's own stream.  With Serialize on, encodability is checked here,
// eagerly — the encoding itself happens at the deferred flush, and a
// failure there would be detached from the raise that caused it.
//
//lint:allow stagefx — raise is called by the application between ticks, never from a detect worker; its coalescer adds and counters are serialized on the caller's goroutine while no stage is running
func (st *ingestStage) raise(s *Site, typ string, class event.Class, params event.Params) (*event.Occurrence, error) {
	sys := st.sys
	sys.seal()
	typeID := sys.reg.TypeID(typ)
	if typeID == 0 {
		return nil, fmt.Errorf("%w: %q", event.ErrUnknownType, typ)
	}
	if s.crashed {
		return nil, fmt.Errorf("%w: %q", ErrCrashed, s.ID)
	}
	var occ *event.Occurrence
	if pool := sys.opool; pool != nil {
		// Pooled raise: the occurrence, its singleton stamp and the
		// interned component (filled from the site's dense index — no
		// roster lookup) come from recycled storage; params stay
		// caller-owned.  The creator reference is dropped below once the
		// deliveries hold their own.
		occ = pool.GetPrimitive(typ, class, s.StampNow(), s.idx, params)
	} else {
		occ = event.NewPrimitive(typ, class, s.StampNow(), params)
	}
	// The existence check above already paid the name lookup; carrying
	// the dense ID from here on keeps every downstream dispatch — local
	// delivery and each receiving site's detector — string-free.
	occ.TypeID = typeID
	if sys.cfg.Serialize {
		if err := wire.ValidateOccurrence(occ); err != nil {
			return nil, fmt.Errorf("ddetect: occurrence not encodable: %w", err)
		}
	}
	if sys.cfg.EnforceSimultaneity && (class == event.Database || class == event.Explicit) {
		if s.lastLocal == nil {
			s.lastLocal = make(map[event.Class]int64)
		}
		local := occ.Stamp[0].Local
		if last, seen := s.lastLocal[class]; seen && last == local {
			return nil, fmt.Errorf("%w: %s at %s, local tick %d", ErrSimultaneous, class, s.ID, local)
		}
		s.lastLocal[class] = local
	}
	if sys.journal != nil {
		if err := sys.journal.Append(occ); err != nil {
			return nil, fmt.Errorf("ddetect: journal: %w", err)
		}
	}
	now := sys.clk.Now()
	env := envelope{Kind: envEvent, Occ: occ, RaisedAt: now}
	sys.stats.Raised++
	st.raised++
	// First stage crossing: no leg to attribute yet, just stamp the mark.
	occ.Mark = event.MarkRaise
	occ.MarkAt = int64(now)
	if sys.smp != nil {
		sys.decideSample(occ)
	}
	if tr := sys.tr; tr != nil && occ.Sample != event.SampleDrop {
		var detail string
		if tr.Active() {
			detail = occ.Stamp.String()
		}
		tr.Emit(obs.SpanEvent{ID: tr.ID(occ, occ.Gen()), At: int64(now), Kind: obs.KindRaise,
			Site: string(s.ID), SiteRef: int32(s.idx) + 1, Type: typ, Detail: detail})
	}
	needers := sys.needersIdx[typ]
	if len(needers) == 0 {
		sys.stats.Unconsumed++
		return occ, nil
	}
	for _, dst := range needers {
		if dst == s.idx {
			s.selfDeliver(env)
		} else {
			sys.coal.add(s.idx, dst, env)
			sys.stats.Forwarded++
			sys.inFlightEvents++
		}
	}
	// Drop the creator's reference: the deliveries queued above hold their
	// own.  The returned occurrence is a borrow, valid until the detect
	// stage consumes the deliveries in a later Step; an unconsumed raise
	// (the early return above) keeps the creator reference and stays a
	// plain heap borrow forever.
	occ.Release()
	return occ, nil
}

// transportStage drains the bus in one batch per tick, unpacks each
// message's payload — a coalesced envelope run, a serialized batch frame,
// or a single envelope in the differential unbatched mode — and feeds the
// envelopes into the destination site's reorderer, which restores
// per-link FIFO order.  The drain and decode scratch slices are reused
// across ticks, and unpacked batch containers go back to the coalescer's
// free lists.
type transportStage struct {
	sys     *System
	batch   []network.Message
	decoded []envelope
	// now is the current tick's simulated time, stashed by Tick so the
	// accept helpers can stamp recv spans without threading it through.
	now clock.Microticks
}

func (st *transportStage) Name() string { return "transport" }

// Tick drains due messages into per-site reorderers; the count it reports
// is envelopes, not bus messages.
//
//sentinel:hotpath
func (st *transportStage) Tick(now clock.Microticks) int {
	sys := st.sys
	st.now = now
	st.batch = sys.bus.DrainDue(now, st.batch[:0])
	n := 0
	for i := range st.batch {
		m := &st.batch[i]
		// The bus carries dense indexes once the roster is attached (at
		// seal, before any traffic); resolving the destination is one
		// slice index, no string hash.
		if m.ToSite < 0 || int(m.ToSite) >= len(sys.sites) {
			//lint:allow hotalloc — panic message on a routing bug; never formats on the steady path
			panic(fmt.Sprintf("ddetect: message to unknown site %q", m.To))
		}
		dst := sys.sites[m.ToSite]
		switch p := m.Payload.(type) {
		case *envRun:
			st.acceptRun(dst, m.FromSite, m.From, m.Seq, p.envs)
			n += len(p.envs)
			sys.coal.recycleEnvs(p.envs)
			sys.coal.recycleRun(p)
		case []byte:
			if wire.IsBatch(p) {
				st.decoded = st.decoded[:0]
				//lint:allow hotalloc — DecodeBatch allocates only when rejecting a corrupt frame, and the panic below formats only then
				if err := sys.codec.DecodeBatch(p, st.collect); err != nil {
					//lint:allow hotalloc — panic message on a corrupt batch; never formats on the steady path
					panic(fmt.Sprintf("ddetect: corrupt batch: %v", err))
				}
				st.acceptRun(dst, m.FromSite, m.From, m.Seq, st.decoded)
				n += len(st.decoded)
				clear(st.decoded)
				sys.coal.recycleBuf(p)
				break
			}
			st.acceptOne(dst, m.FromSite, m.From, m.Seq, sys.unpayload(p))
			n++
		default:
			st.acceptOne(dst, m.FromSite, m.From, m.Seq, sys.unpayload(p))
			n++
		}
		m.Payload = nil
	}
	return n
}

// collect is the streaming DecodeBatch callback, hoisted to a method so
// the per-message decode loop allocates no closure.
func (st *transportStage) collect(we wire.Envelope) error {
	env := envelope{Global: we.Global, RaisedAt: clock.Microticks(we.RaisedAt)}
	if we.Kind == wire.KindEvent {
		env.Kind = envEvent
		env.Occ = we.Occ
	} else {
		env.Kind = envHeartbeat
	}
	st.decoded = append(st.decoded, env)
	return nil
}

// acceptRun hands one coalesced envelope run to the reorderer.  The dense
// from index feeds the reorderer; the string peer only labels spans.
func (st *transportStage) acceptRun(dst *Site, from core.Site, peer core.SiteID, seq uint64, envs []envelope) {
	sys := st.sys
	for _, env := range envs {
		if env.Kind == envEvent {
			sys.inFlightEvents--
			sys.acceptEvent(env.Occ, dst, peer, st.now)
		}
	}
	if err := dst.re.acceptBatch(from, seq, envs); err != nil {
		panic(err) // bus sequencing guarantees make this unreachable
	}
}

// acceptOne hands one single-envelope message to the reorderer.
func (st *transportStage) acceptOne(dst *Site, from core.Site, peer core.SiteID, seq uint64, env envelope) {
	if env.Kind == envEvent {
		st.sys.inFlightEvents--
		st.sys.acceptEvent(env.Occ, dst, peer, st.now)
	}
	if err := dst.re.accept(from, seq, env); err != nil {
		panic(err) // bus sequencing guarantees make this unreachable
	}
}

// acceptEvent applies the per-arrival observability: the recv latency
// mark, the serialize-mode sample recomputation (a decoded occurrence is
// a fresh object whose in-memory sample bit did not travel — the
// decision is a pure function of raise identity, so recomputing it here
// yields the bit the origin stamped), and the recv span.
//
//sentinel:hotpath
func (sys *System) acceptEvent(occ *event.Occurrence, dst *Site, peer core.SiteID, now clock.Microticks) {
	if occ.Sample == event.SampleUndecided && sys.smp != nil {
		sys.decideSample(occ)
	}
	sys.mark(occ, event.MarkRecv, now)
	if tr := sys.tr; tr != nil && occ.Sample != event.SampleDrop {
		tr.Emit(obs.SpanEvent{ID: tr.ID(occ, occ.Gen()), At: int64(now), Kind: obs.KindRecv,
			Site: string(dst.ID), SiteRef: int32(dst.idx) + 1, Peer: string(peer), Type: occ.Type})
	}
}

// releaseStage pops every watermark-stable event, in each site's
// deterministic (global, site, local, arrival) order, into the site's
// detect inbox, accounting raise-to-release latency.
//
// The stage runs in two phases.  The advance phase fans the per-site
// reorderer stepping — the stale-flag check, the frontier minimum, the
// sift-heavy heap pops — across the worker pool; each worker appends its
// own site's stable envelopes to that site's released buffer, touching
// nothing shared.  The accounting phase then walks the sites in ID order
// on the crank goroutine and applies every observable side effect — the
// Stats counters, the latency histogram, the trace spans, the inbox
// append — exactly as the sequential loop did, so the history is
// byte-identical (spans included) for every worker count.
type releaseStage struct {
	sys *System
}

func (st *releaseStage) Name() string { return "release" }

// Tick releases watermark-stable events into the detect inboxes.
//
//lint:allow stagefx — the accounting loop below runs single-threaded on the crank goroutine; the fanned-out advance phase touches only per-site reorderer state and per-site buffers
//sentinel:hotpath
func (st *releaseStage) Tick(now clock.Microticks) int {
	sys := st.sys
	sites := sys.sites
	sys.pool.Run(len(sites), func(i int) {
		s := sites[i]
		s.released = s.re.releaseInto(sys.cfg.Release, s.released[:0])
	})
	n := 0
	for _, s := range sites {
		if len(s.released) == 0 {
			continue
		}
		for _, env := range s.released {
			sys.stats.Released++
			lat := now - env.RaisedAt
			sys.stats.LatencySum += lat
			if lat > sys.stats.LatencyMax {
				sys.stats.LatencyMax = lat
			}
			sys.hRelease.Observe(int64(lat))
			sys.mark(env.Occ, event.MarkRelease, now)
			if tr := sys.tr; tr != nil && env.Occ.Sample != event.SampleDrop {
				tr.Emit(obs.SpanEvent{ID: tr.ID(env.Occ, env.Occ.Gen()), At: int64(now), Kind: obs.KindRelease,
					Site: string(s.ID), SiteRef: int32(s.idx) + 1, Type: env.Occ.Type})
			}
			s.inbox = append(s.inbox, env.Occ)
		}
		n += len(s.released)
		clear(s.released)
		s.released = s.released[:0]
	}
	return n
}

// detectStage runs every site's detector over its released inbox and
// fires due detector timers — in parallel across sites when the pool has
// workers.  Workers confine their writes to the site they own: the
// detector graph, the inbox they drain and the detected buffer the
// System's per-definition recorder appends to.  Detections are NOT
// published here; they are buffered per site and handed to the publish
// stage, so user handlers, stats and bus traffic stay on the crank
// goroutine and in deterministic site order.
type detectStage struct {
	sys *System
	// active is the reused shard list: the sites with a non-empty inbox
	// or an armed detector timer this tick.  For an idle site both
	// PublishBatch (empty batch) and AdvanceTo (no timers) are no-ops, so
	// skipping it changes nothing except the work: at thousands of sites
	// the stage touches only the handful that heard something.  Built by
	// iterating sys.sites in ID order, so the shard keeps the
	// deterministic site order the barrier argument relies on.
	active []*Site
}

func (st *detectStage) Name() string { return "detect" }

//sentinel:hotpath
func (st *detectStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := 0
	active := st.active[:0]
	for _, s := range sys.sites {
		if len(s.inbox) > 0 || s.det.PendingTimers() > 0 {
			active = append(active, s)
			n += len(s.inbox)
		}
	}
	st.active = active
	sys.pool.Run(len(active), func(i int) {
		s := active[i]
		s.det.PublishBatch(s.inbox)
		// Dispatch done: drop the delivery references taken at coal.add /
		// selfDeliver.  Whatever the graph buffered holds its own.
		for j, o := range s.inbox {
			s.inbox[j] = nil
			o.Release()
		}
		s.inbox = s.inbox[:0]
		s.det.AdvanceTo(now)
	})
	return n
}

// publishStage completes each buffered detection on the crank goroutine,
// iterating sites in ID order: count it, fan it out to System.Subscribe
// handlers, and forward it to remote sites whose definitions reference it
// by name (hierarchical mode).  Running after the detect barrier keeps
// the bus send order — and hence the seeded jitter/loss schedule —
// independent of the worker count.
type publishStage struct {
	sys *System
}

func (st *publishStage) Name() string { return "publish" }

//sentinel:hotpath
func (st *publishStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := 0
	for _, s := range sys.sites {
		// The full-site scan stays (an active list here would change when
		// handler-injected detections at already-visited sites drain,
		// breaking byte-parity with the sequential history); the common
		// idle site costs one length check.
		if len(s.detected) == 0 {
			continue
		}
		// Index loop: a handler that publishes into this site's detector
		// can append further detections mid-drain; they are completed in
		// the same tick.
		for i := 0; i < len(s.detected); i++ {
			o := s.detected[i]
			sys.stats.Detections++
			// Detection latency in event time: how far past the newest
			// global granule in its Max-set timestamp this detection
			// published.  A pure function of simulated time and the
			// composite timestamp, so identical across worker counts and
			// transport modes.
			lat := now - clock.Microticks(o.Stamp.MaxGlobal())*sys.cfg.Clock.GlobalGranularity
			if lat < 0 {
				lat = 0
			}
			if ds := sys.defStats[o.Type]; ds != nil {
				ds.Detections++
				ds.LatencySum += lat
				if lat > ds.LatencyMax {
					ds.LatencyMax = lat
				}
			}
			sys.hDetect.Observe(int64(lat))
			sys.observeHold(o, now)
			if sys.smp != nil {
				sys.decideSample(o)
			}
			if tr := sys.tr; tr != nil && o.Sample != event.SampleDrop {
				links := tr.LinkBuf()
				for _, c := range o.Constituents {
					links = append(links, tr.ID(c, c.Gen()))
				}
				var detail string
				if tr.Active() {
					detail = o.Stamp.String()
				}
				id := tr.ID(o, o.Gen())
				tr.Emit(obs.SpanEvent{ID: id, At: int64(now), Kind: obs.KindDetect,
					Site: string(s.ID), SiteRef: int32(s.idx) + 1, Type: o.Type, Detail: detail, Links: links})
				tr.KeepLinkBuf(links)
				tr.Emit(obs.SpanEvent{ID: id, At: int64(now), Kind: obs.KindPublish,
					Site: string(s.ID), SiteRef: int32(s.idx) + 1, Type: o.Type})
			}
			// A detection's publish is its raise as far as downstream legs
			// are concerned: hierarchical forwards attribute raise→send,
			// send→recv, … like any primitive from here.
			o.Mark = event.MarkRaise
			o.MarkAt = int64(now)
			hs := sys.handlers[o.Type]
			for _, h := range hs {
				h(o)
			}
			sys.forwardComposite(s, o)
			// Drop the recorder's reference.  Handlers have run by now:
			// System.Subscribe's contract is a borrow — the occurrence is
			// valid for the duration of each handler call, and a handler
			// that keeps the pointer must Retain it — so publish is where
			// the detection's tree returns to the pool.
			o.Release()
			n++
		}
		clear(s.detected)
		s.detected = s.detected[:0]
	}
	// Flush the hierarchical forwards (and anything a handler raised)
	// queued above: one batch per link per tick.
	sys.coal.flush(now)
	return n
}
