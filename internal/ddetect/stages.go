package ddetect

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/network"
)

// This file holds the five stage drivers the System composes into its
// per-tick pipeline (see internal/pipeline):
//
//	ingest    — site raises (stamping, simultaneity enforcement,
//	            journaling, bus hand-off) and watermark heartbeats
//	transport — batch-draining the bus and restoring per-link FIFO
//	            order in each site's reorderer
//	release   — watermark release of stable events into per-site
//	            detect inboxes
//	detect    — running every site's detector graph over its inbox,
//	            optionally in parallel across sites (pipeline.Pool)
//	publish   — subscriber fan-out, hierarchical forwarding and stats,
//	            in deterministic site order
//
// Only the detect stage runs off the crank goroutine, and it confines
// every write to per-site state (the detector, the site's inbox and
// detected buffers).  Everything that touches shared state — the bus,
// the RNG behind it, the Stats counters, user handlers — happens in the
// single-threaded stages, in site-ID order, so the sequence of
// side-effects is identical whatever the worker count: the determinism
// argument for the per-tick barrier.

// ingestStage drives the raise path and the heartbeat cadence.  Raises
// happen between ticks (the application calls Site.Raise); the stage's
// Tick emits due heartbeats and accounts the raises since the last tick.
type ingestStage struct {
	sys *System
	// raised counts Site.Raise calls since the last tick, for the
	// stage's item accounting.
	raised int
}

func (st *ingestStage) Name() string { return "ingest" }

// Tick emits due watermark heartbeats onto the bus.
//
//lint:allow stagefx — ingest runs single-threaded on the crank goroutine before the detect barrier; its heartbeat sends and counters execute in deterministic site order regardless of worker count
func (st *ingestStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := st.raised
	st.raised = 0
	for sys.nextHB <= now {
		for _, s := range sys.sites {
			if s.crashed {
				continue
			}
			g := s.clk.GlobalTick(s.clk.LocalTick(sys.nextHB))
			s.re.setFrontier(s.ID, g)
			for _, dst := range sys.sites {
				if dst.ID == s.ID {
					continue
				}
				sys.bus.Send(sys.nextHB, s.ID, dst.ID, sys.payload(envelope{Kind: envHeartbeat, Global: g}))
				sys.stats.Heartbeats++
				n++
			}
		}
		sys.nextHB += sys.cfg.HeartbeatEvery
	}
	return n
}

// raise is the ingest half of Site.Raise: stamp, enforce the Section 3.1
// simultaneity assumptions, journal, and hand the occurrence to the
// transport (bus) or the site's own stream.
//
//lint:allow stagefx — raise is called by the application between ticks, never from a detect worker; its bus sends and counters are serialized on the caller's goroutine while no stage is running
func (st *ingestStage) raise(s *Site, typ string, class event.Class, params event.Params) (*event.Occurrence, error) {
	sys := st.sys
	sys.seal()
	if !sys.reg.Has(typ) {
		return nil, fmt.Errorf("%w: %q", event.ErrUnknownType, typ)
	}
	if s.crashed {
		return nil, fmt.Errorf("%w: %q", ErrCrashed, s.ID)
	}
	occ := event.NewPrimitive(typ, class, s.StampNow(), params)
	if sys.cfg.EnforceSimultaneity && (class == event.Database || class == event.Explicit) {
		if s.lastLocal == nil {
			s.lastLocal = make(map[event.Class]int64)
		}
		local := occ.Stamp[0].Local
		if last, seen := s.lastLocal[class]; seen && last == local {
			return nil, fmt.Errorf("%w: %s at %s, local tick %d", ErrSimultaneous, class, s.ID, local)
		}
		s.lastLocal[class] = local
	}
	if sys.journal != nil {
		if err := sys.journal.Append(occ); err != nil {
			return nil, fmt.Errorf("ddetect: journal: %w", err)
		}
	}
	now := sys.clk.Now()
	env := envelope{Kind: envEvent, Occ: occ, RaisedAt: now}
	sys.stats.Raised++
	st.raised++
	needers := sys.needers[typ]
	if len(needers) == 0 {
		sys.stats.Unconsumed++
		return occ, nil
	}
	for _, dst := range needers {
		if dst == s.ID {
			s.selfDeliver(env)
		} else {
			sys.bus.Send(now, s.ID, dst, sys.payload(env))
			sys.stats.Forwarded++
			sys.inFlightEvents++
		}
	}
	return occ, nil
}

// transportStage drains the bus in one batch per tick and feeds each
// message into its destination site's reorderer, which restores per-link
// FIFO order.  The batch slice is reused across ticks.
type transportStage struct {
	sys   *System
	batch []network.Message
}

func (st *transportStage) Name() string { return "transport" }

// Tick drains due messages into per-site reorderers.
//
//lint:allow stagefx — transport is the designated consumer of the bus: it runs single-threaded on the crank goroutine before the detect barrier, so its DrainDue cannot race the publish stage's sends
func (st *transportStage) Tick(now clock.Microticks) int {
	sys := st.sys
	st.batch = sys.bus.DrainDue(now, st.batch[:0])
	for _, m := range st.batch {
		dst := sys.siteByID[m.To]
		if dst == nil {
			panic(fmt.Sprintf("ddetect: message to unknown site %q", m.To))
		}
		env := sys.unpayload(m.Payload)
		if env.Kind == envEvent {
			sys.inFlightEvents--
		}
		if err := dst.re.accept(m.From, m.Seq, env); err != nil {
			panic(err) // bus sequencing guarantees make this unreachable
		}
	}
	return len(st.batch)
}

// releaseStage pops every watermark-stable event, in each site's
// deterministic (global, site, local, arrival) order, into the site's
// detect inbox, accounting raise-to-release latency.  The callback handed
// to the reorderer is built once and re-targeted via the now/cur fields,
// so the per-tick, per-site release loop allocates nothing.
type releaseStage struct {
	sys *System
	now clock.Microticks
	cur *Site
	fn  func(envelope)
}

func (st *releaseStage) Name() string { return "release" }

// deliver is the release callback, hoisted out of Tick so the per-site
// loop reuses one closure instead of allocating one per site per tick.
//
//lint:allow stagefx — deliver is invoked only from release Tick, single-threaded on the crank goroutine before the detect barrier; its latency counters are updated in deterministic (site, release-key) order
func (st *releaseStage) deliver(env envelope) {
	sys := st.sys
	sys.stats.Released++
	lat := st.now - env.RaisedAt
	sys.stats.LatencySum += lat
	if lat > sys.stats.LatencyMax {
		sys.stats.LatencyMax = lat
	}
	st.cur.inbox = append(st.cur.inbox, env.Occ)
}

// Tick releases watermark-stable events into the detect inboxes.
//
//lint:allow stagefx — release runs single-threaded on the crank goroutine before the detect barrier; its latency counters are updated in deterministic (site, release-key) order
func (st *releaseStage) Tick(now clock.Microticks) int {
	sys := st.sys
	if st.fn == nil {
		st.fn = st.deliver
	}
	st.now = now
	n := 0
	for _, s := range sys.sites {
		st.cur = s
		n += s.re.release(sys.cfg.Release, st.fn)
	}
	st.cur = nil
	return n
}

// detectStage runs every site's detector over its released inbox and
// fires due detector timers — in parallel across sites when the pool has
// workers.  Workers confine their writes to the site they own: the
// detector graph, the inbox they drain and the detected buffer the
// System's per-definition recorder appends to.  Detections are NOT
// published here; they are buffered per site and handed to the publish
// stage, so user handlers, stats and bus traffic stay on the crank
// goroutine and in deterministic site order.
type detectStage struct {
	sys *System
}

func (st *detectStage) Name() string { return "detect" }

func (st *detectStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := 0
	for _, s := range sys.sites {
		n += len(s.inbox)
	}
	sys.pool.Run(len(sys.sites), func(i int) {
		s := sys.sites[i]
		s.det.PublishBatch(s.inbox)
		s.inbox = s.inbox[:0]
		s.det.AdvanceTo(now)
	})
	return n
}

// publishStage completes each buffered detection on the crank goroutine,
// iterating sites in ID order: count it, fan it out to System.Subscribe
// handlers, and forward it to remote sites whose definitions reference it
// by name (hierarchical mode).  Running after the detect barrier keeps
// the bus send order — and hence the seeded jitter/loss schedule —
// independent of the worker count.
type publishStage struct {
	sys *System
}

func (st *publishStage) Name() string { return "publish" }

func (st *publishStage) Tick(now clock.Microticks) int {
	sys := st.sys
	n := 0
	for _, s := range sys.sites {
		// Index loop: a handler that publishes into this site's detector
		// can append further detections mid-drain; they are completed in
		// the same tick.
		for i := 0; i < len(s.detected); i++ {
			o := s.detected[i]
			sys.stats.Detections++
			for _, h := range sys.handlers[o.Type] {
				h(o)
			}
			sys.forwardComposite(s, o)
			n++
		}
		s.detected = s.detected[:0]
	}
	return n
}
