package ddetect

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
	"repro/internal/workload"
)

// TestSoak runs a long randomized multi-site workload with every runtime
// invariant armed at once:
//
//   - adversarial network (jitter beyond inter-arrival gaps, loss);
//   - skewed, drifting clocks within Π;
//   - serialization of every bus message;
//   - publish-order checking at every hosting detector;
//   - buffer limits (bounded memory) with eviction accounting;
//   - stamp validity of every detected composite.
//
// It is the closest thing to a production burn-in the simulation offers.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const sites = 6
	const events = 3_000

	cfg := Config{
		Net: network.Config{
			BaseLatency: 25, Jitter: 120, DropRate: 0.08, RetransmitDelay: 180, Seed: 1234,
		},
		Serialize: true,
	}
	// Flight recorder: if any invariant below trips, the last spans per
	// site land in the test log.
	attachFlightRecorder(t, &cfg, 64)
	sys := MustNewSystem(cfg)
	rng := rand.New(rand.NewSource(99))
	ids := make([]core.SiteID, sites)
	for i := range ids {
		ids[i] = core.SiteID(string(rune('a' + i)))
		sys.MustAddSite(ids[i], rng.Int63n(99)-49, rng.Int63n(3))
	}
	types := []string{"A", "B", "C", "D"}
	for _, typ := range types {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	defs := []struct {
		name, expr string
		ctx        detector.Context
	}{
		{"Seq", "A ; B", detector.Chronicle},
		{"Conj", "C AND D", detector.Recent},
		{"Guard", "NOT(C)[A, D]", detector.Continuous},
		{"Sweep", "A*(A, B, C)", detector.Chronicle},
		{"Pick", "ANY(3, A, B, C, D)", detector.Cumulative},
		{"Masked", "A[n >= 500] ; D", detector.Chronicle},
	}
	hosts := []core.SiteID{ids[0], ids[1]} // definitions split over two hubs
	detections := 0
	for i, d := range defs {
		host := hosts[i%len(hosts)]
		if _, err := sys.DefineAt(host, d.name, d.expr, d.ctx); err != nil {
			t.Fatal(err)
		}
		if err := sys.Subscribe(d.name, func(o *event.Occurrence) {
			detections++
			if err := o.Stamp.Valid(); err != nil {
				t.Errorf("invalid detection stamp: %v", err)
			}
			if len(o.Stamp) > sites {
				t.Errorf("stamp larger than site count: %s", o.Stamp)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts {
		sys.Site(h).Detector().SetOrderChecking(true)
		sys.Site(h).Detector().SetBufferLimit(64)
	}

	trace := workload.GenStream(workload.StreamConfig{
		Sites: ids, Types: types, MeanGap: 45, Count: events, Seed: 77,
	})
	for _, item := range trace.Items {
		sys.Run(item.At, 60)
		sys.Site(item.Site).MustRaise(item.Type, event.Explicit, event.Params{"n": int(item.Params["n"].(int))})
	}
	if err := sys.Settle(100_000); err != nil {
		t.Fatal(err)
	}

	st := sys.Stats()
	// Both hubs need all four types, so every raised event is released
	// once per hub.
	if st.Released != 2*st.Raised {
		t.Fatalf("released %d, want %d (every event at both hubs)", st.Released, 2*st.Raised)
	}
	if detections == 0 {
		t.Fatalf("soak detected nothing")
	}
	for _, h := range hosts {
		d := sys.Site(h).Detector()
		if v := d.OrderViolations(); v != 0 {
			t.Fatalf("host %s: %d publish-order violations", h, v)
		}
		if s := d.StateSize(); s > 64*8*2+64 {
			t.Fatalf("host %s: state %d exceeds the configured bound", h, s)
		}
	}
	if st.Net.Retransmitted == 0 {
		t.Fatalf("soak network never dropped — adversity misconfigured")
	}
	t.Logf("soak: raised=%d detections=%d meanLatency=%.1f dropped(hub0)=%d",
		st.Raised, detections, st.MeanLatency(), sys.Site(hosts[0]).Detector().DroppedOccurrences())
}
