package ddetect

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/network"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// tenantOpts parameterizes runTenantScenario: a multi-tenant variant of
// runScenario whose definition set comes from workload.GenDefs instead of
// the fixed five, hosted round-robin across the sites with contexts drawn
// from the full detector.Contexts() range.
type tenantOpts struct {
	sites   int
	count   int // workload events
	defs    int
	overlap float64
	workers int
	seed    int64
	mutate  func(*Config)
}

// runTenantScenario drives one seeded multi-tenant scenario and returns
// the serialized occurrence stream, the system stats, and the total
// number of shared-subexpression cache entries across all site detectors
// (0 when sharing is disabled — the non-vacuousness signal).
func runTenantScenario(t testing.TB, o tenantOpts) ([]byte, Stats, int) {
	t.Helper()
	cfg := Config{
		Net: network.Config{
			BaseLatency: 20, Jitter: 70,
			DropRate: 0.05, RetransmitDelay: 150, Seed: o.seed + 101,
		},
		Pipeline: pipeline.Config{Workers: o.workers},
	}
	if o.mutate != nil {
		o.mutate(&cfg)
	}
	sys := MustNewSystem(cfg)
	rng := rand.New(rand.NewSource(o.seed + 202))
	ids := make([]core.SiteID, o.sites)
	for i := range ids {
		ids[i] = core.SiteID(fmt.Sprintf("s%02d", i))
		sys.MustAddSite(ids[i], rng.Int63n(61)-30, rng.Int63n(4))
	}
	p := o.defs / 8
	if p < 8 {
		p = 8
	}
	types := workload.TypeNames(p)
	for _, typ := range types {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	ctxs := detector.Contexts()
	defs := workload.GenDefs(workload.DefsConfig{
		Count: o.defs, Types: types, Overlap: o.overlap,
		Contexts: len(ctxs), Seed: o.seed,
	})
	var buf bytes.Buffer
	log := eventlog.NewWriter(&buf)
	for i, d := range defs {
		if _, err := sys.DefineAt(ids[i%len(ids)], d.Name, d.Expr, ctxs[d.Ctx]); err != nil {
			t.Fatal(err)
		}
		if err := sys.Subscribe(d.Name, func(occ *event.Occurrence) {
			if err := log.Append(occ); err != nil {
				t.Errorf("log append: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	trace := workload.GenStream(workload.StreamConfig{
		Sites: ids, Types: types, MeanGap: 40, Count: o.count, Seed: o.seed,
	})
	for _, item := range trace.Items {
		sys.Run(item.At, 50)
		sys.Site(item.Site).MustRaise(item.Type, event.Explicit, item.Params)
	}
	if err := sys.Settle(50_000); err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, id := range ids {
		shared += sys.Site(id).Detector().Introspect().SharedSubexprs
	}
	return buf.Bytes(), sys.Stats(), shared
}

// TestSharingDeterminism is the PR-9 compiler regression: hash-consed
// common-subexpression sharing must be invisible to detection.  Across
// seeds × site counts × worker counts on an overlap-heavy tenant
// workload, the occurrence log must be byte-identical with sharing on and
// off (Config.DisableSharing is the differential mode), and the shared
// runs must actually share — a non-empty shared-subexpression cache — or
// the comparison would be vacuous.
func TestSharingDeterminism(t *testing.T) {
	for _, seed := range []int64{5, 31} {
		for _, sites := range []int{3, 6} {
			for _, workers := range []int{0, 4} {
				o := tenantOpts{
					sites: sites, count: 250, seed: seed, workers: workers,
					defs: 96, overlap: 0.7,
				}
				baseLog, baseStats, shared := runTenantScenario(t, o)
				if baseStats.Detections == 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: no detections; comparison is vacuous",
						seed, sites, workers)
				}
				if shared == 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: overlap-heavy workload built no shared subexpressions; comparison is vacuous",
						seed, sites, workers)
				}
				uo := o
				uo.mutate = func(c *Config) { c.DisableSharing = true }
				log, st, unshared := runTenantScenario(t, uo)
				if unshared != 0 {
					t.Fatalf("seed=%d sites=%d workers=%d: DisableSharing still built %d shared subexpressions",
						seed, sites, workers, unshared)
				}
				if !bytes.Equal(baseLog, log) {
					t.Errorf("seed=%d sites=%d workers=%d: occurrence log (%d bytes) differs with sharing off (%d bytes)",
						seed, sites, workers, len(log), len(baseLog))
				}
				if st.Detections != baseStats.Detections || st.Released != baseStats.Released {
					t.Errorf("seed=%d sites=%d workers=%d: det=%d rel=%d unshared, want det=%d rel=%d",
						seed, sites, workers, st.Detections, st.Released,
						baseStats.Detections, baseStats.Released)
				}
			}
		}
	}
}

// TestManyDefinitionsDeterminism runs the pipeline-determinism matrix
// once at the 1000-definition scale the PR-9 compiler targets: sharing
// on/off × workers 0/4 must all produce the byte-identical occurrence
// log.  One seed — the point is the scale, not the sweep.
func TestManyDefinitionsDeterminism(t *testing.T) {
	base := tenantOpts{sites: 4, count: 300, seed: 7, defs: 1000, overlap: 0.5}
	refLog, refStats, shared := runTenantScenario(t, base)
	if refStats.Detections == 0 {
		t.Fatal("1000-definition scenario produced no detections")
	}
	if shared == 0 {
		t.Fatal("1000-definition scenario built no shared subexpressions")
	}
	for _, workers := range []int{0, 4} {
		for _, disable := range []bool{false, true} {
			if workers == 0 && !disable {
				continue // the reference arm
			}
			o := base
			o.workers = workers
			if disable {
				o.mutate = func(c *Config) { c.DisableSharing = true }
			}
			log, st, _ := runTenantScenario(t, o)
			if !bytes.Equal(refLog, log) {
				t.Errorf("workers=%d sharing-off=%v: occurrence log (%d bytes) differs from reference (%d bytes)",
					workers, disable, len(log), len(refLog))
			}
			if st.Detections != refStats.Detections {
				t.Errorf("workers=%d sharing-off=%v: %d detections, want %d",
					workers, disable, st.Detections, refStats.Detections)
			}
		}
	}
}
