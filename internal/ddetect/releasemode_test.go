package ddetect

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
)

// runReleaseScenario executes a fixed workload under the given release
// mode and returns the detection signatures plus the stats.
func runReleaseScenario(t *testing.T, mode ReleaseMode, gapSteps int) ([]string, Stats) {
	t.Helper()
	sys := MustNewSystem(Config{
		Net:     network.Config{BaseLatency: 20, Jitter: 60, Seed: 44},
		Release: mode,
	})
	siteIDs := []core.SiteID{"s0", "s1"}
	for i, id := range siteIDs {
		sys.MustAddSite(id, int64(i*17)-8, 0)
	}
	for _, typ := range []string{"A", "B"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("s0", "Seq", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := sys.Subscribe("Seq", func(o *event.Occurrence) {
		sig := ""
		for _, c := range o.Flatten() {
			sig += fmt.Sprintf("%s@%s:%d;", c.Type, c.Site, c.Stamp[0].Local)
		}
		got = append(got, sig)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		src := sys.Site(siteIDs[i%2])
		src.MustRaise("A", event.Explicit, nil)
		sys.Run(sys.Now()+int64(gapSteps)*100, 50)
		src.MustRaise("B", event.Explicit, nil)
		sys.Run(sys.Now()+int64(gapSteps)*100, 50)
	}
	if err := sys.Settle(10_000); err != nil {
		t.Fatal(err)
	}
	return got, sys.Stats()
}

// On well-separated workloads (every event granules apart, so nothing is
// concurrent) the extension mode detects exactly what total order does —
// only faster.
func TestExtensionMatchesTotalOrderWhenSeparated(t *testing.T) {
	total, stTotal := runReleaseScenario(t, ReleaseTotalOrder, 3)
	ext, stExt := runReleaseScenario(t, ReleaseExtension, 3)
	if len(total) != len(ext) {
		t.Fatalf("detection counts differ: total-order %d vs extension %d", len(total), len(ext))
	}
	for i := range total {
		if total[i] != ext[i] {
			t.Fatalf("detection %d differs:\n total: %s\n ext:   %s", i, total[i], ext[i])
		}
	}
	if len(total) != 30 {
		t.Fatalf("expected all 30 pairs detected, got %d", len(total))
	}
	if stExt.MeanLatency() >= stTotal.MeanLatency() {
		t.Fatalf("extension mode should have lower ordering latency: %f vs %f",
			stExt.MeanLatency(), stTotal.MeanLatency())
	}
}

func TestReleaseModeStrings(t *testing.T) {
	if ReleaseTotalOrder.String() != "total-order" || ReleaseExtension.String() != "extension" {
		t.Fatalf("ReleaseMode strings wrong")
	}
	if ReleaseMode(9).String() == "" {
		t.Fatalf("unknown mode String empty")
	}
	if ReleaseTotalOrder.slack() != -1 || ReleaseExtension.slack() != 1 {
		t.Fatalf("slack values drifted")
	}
}
