package ddetect

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/wire"
)

// linkCoalescer accumulates the envelopes bound for each (from,to) link
// and hands them to the bus in per-tick batches: one Message — one
// latency/jitter/loss draw, one link sequence number, one wire frame when
// serializing — per link per flush, instead of one per (occurrence,
// destination).  The ingest and publish stages are its only producers
// (Site.Raise between ticks, heartbeats and hierarchical forwards during
// their Ticks), and each flushes at the end of its Tick, so everything a
// tick emits onto a link travels as one frame.
//
// Batching is a pure transport optimization: per-link envelope order is
// exactly the per-link send order the unbatched system produced, the
// receiving reorderer unpacks a batch back into individual envelopes
// before FIFO restore, and — the property TestBatchingDeterminism pins —
// the delivery schedule is byte-identical with batching disabled, because
// the differential mode (Config.DisableBatching → Bus.SendUnbatched)
// consumes the same one draw per link flush.
//
// All methods run on the crank goroutine (stages are single-threaded and
// Raise is a between-ticks call), so the free lists need no locking.  The
// flush methods are the only code in this package allowed to call the
// Bus's send methods — enforced by the stagefx analyzer.
type linkCoalescer struct {
	sys *System
	// byLink indexes the accumulating batches by packed (from,to) roster
	// index pair — an integer-keyed map, so the per-envelope add hashes
	// two int32s instead of two strings.
	byLink map[uint64]*linkBatch
	// order lists the links with pending envelopes in first-use order —
	// deterministic, since every add happens on the crank goroutine —
	// and is the flush iteration order (the byLink map is lookup-only:
	// map iteration order must never reach the bus).
	order []*linkBatch

	// freeEnvs recycles flushed batch slices for in-memory payloads; the
	// transport stage returns each slice after unpacking it.  freeRuns
	// recycles the envRun boxes those slices ship in, freeBufs does the
	// same for serialized frames, and wenvs is the reused wire-envelope
	// staging slice for batch encoding.
	freeEnvs [][]envelope
	freeRuns []*envRun
	freeBufs [][]byte
	wenvs    []wire.Envelope
}

// envRun is the bus payload of an in-memory coalesced batch.  Boxing the
// run as a pointer costs nothing per flush; boxing the []envelope slice
// header directly into the Message's any field copied it to the heap on
// every send — the single largest allocation site of the 16-site
// end-to-end profile before this container existed.
type envRun struct {
	envs []envelope
}

// linkBatch is one link's accumulating envelope run, addressed by dense
// roster indexes.
type linkBatch struct {
	from, to core.Site
	envs     []envelope
}

func newLinkCoalescer(sys *System) *linkCoalescer {
	return &linkCoalescer{sys: sys, byLink: make(map[uint64]*linkBatch)}
}

// packLink packs a (from,to) roster index pair into one map key.
func packLink(from, to core.Site) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// add queues one envelope for the (from,to) link, to be sent at the next
// flush.  An event envelope's queued pointer is a stored reference: add is
// the single choke point through which every remote delivery passes —
// raises, heartbeat-era forwards, hierarchical composite forwards — so the
// transport's Retain lives here and is dropped wherever the envelope's
// journey ends (the detect stage after dispatch for in-memory payloads,
// the serializing flush after encoding).
//
//sentinel:hotpath
func (c *linkCoalescer) add(from, to core.Site, env envelope) {
	if env.Kind == envEvent {
		env.Occ.Retain()
	}
	k := packLink(from, to)
	lb := c.byLink[k]
	if lb == nil {
		lb = &linkBatch{from: from, to: to}
		c.byLink[k] = lb
	}
	if len(lb.envs) == 0 {
		if n := len(c.freeEnvs); n > 0 {
			lb.envs, c.freeEnvs = c.freeEnvs[n-1], c.freeEnvs[:n-1]
		}
		c.order = append(c.order, lb)
	}
	lb.envs = append(lb.envs, env)
}

// pending reports whether any link has unflushed envelopes.
func (c *linkCoalescer) pendingLinks() int { return len(c.order) }

// flush hands every pending link batch to the bus, in deterministic
// first-use link order, consuming exactly one delay/loss draw per link.
// It runs single-threaded on the crank goroutine (end of the ingest and
// publish Ticks); the stagefx analyzer recognizes linkCoalescer methods
// as the designated Bus senders.
func (c *linkCoalescer) flush(now clock.Microticks) {
	if len(c.order) == 0 {
		return
	}
	sys := c.sys
	for _, lb := range c.order {
		envs := lb.envs
		lb.envs = nil
		tr := sys.tr
		var from, to core.SiteID
		if tr != nil {
			from, to = sys.roster.ID(lb.from), sys.roster.ID(lb.to)
		}
		for _, env := range envs {
			if env.Kind != envEvent {
				continue
			}
			// The flush instant is the moment the occurrence actually hits
			// the bus: the raise→send latency mark and — when tracing, for
			// sampled lineages — one send span per event envelope
			// (heartbeats are perpetual noise and go unattributed).  Span
			// fields stay strings, so traces diff against old captures.
			sys.mark(env.Occ, event.MarkSend, now)
			if tr != nil && env.Occ.Sample != event.SampleDrop {
				tr.Emit(obs.SpanEvent{ID: tr.ID(env.Occ, env.Occ.Gen()), At: int64(now), Kind: obs.KindSend,
					Site: string(from), SiteRef: int32(lb.from) + 1, Peer: string(to), Type: env.Occ.Type})
			}
		}
		switch {
		case sys.cfg.DisableBatching:
			// Differential mode: the same envelopes as per-envelope
			// messages with consecutive sequence numbers, under the one
			// shared draw SendBatchSite would have consumed.
			sys.bus.SendUnbatchedSite(now, lb.from, lb.to, len(envs), func(i int) any {
				return sys.payload(envs[i])
			})
			if sys.cfg.Serialize {
				// The wire frames carry copies; the originals' transport
				// references end here.  Unserialized payloads box the
				// envelope itself, so the reference rides the message.
				releaseOccs(envs)
			}
			c.recycleEnvs(envs)
		case sys.cfg.Serialize:
			buf := c.getBuf()
			//lint:allow hotalloc — AppendBatch allocates only on its error path (unencodable batch), and the panic below formats only then
			buf, err := sys.codec.AppendBatch(buf, c.stage(envs))
			if err != nil {
				//lint:allow hotalloc — panic message on a corrupt batch; never formats on the steady path
				panic(fmt.Sprintf("ddetect: batch not encodable: %v", err))
			}
			clear(c.wenvs) // drop the staged occurrence references
			sys.bus.SendBatchSite(now, lb.from, lb.to, buf, len(envs), len(buf))
			// The receiver decodes fresh occurrences from the frame; the
			// in-memory originals' transport references end at the encode.
			releaseOccs(envs)
			c.recycleEnvs(envs)
		default:
			// In-memory payload: ownership of the envelopes — and their
			// occurrence references — transfers to the message inside a
			// pooled envRun box; the transport stage recycles both after
			// unpacking.
			sys.bus.SendBatchSite(now, lb.from, lb.to, c.getRun(envs), len(envs), 0)
		}
	}
	c.order = c.order[:0]
}

// stage converts a run of internal envelopes to wire envelopes in the
// reused staging slice.
func (c *linkCoalescer) stage(envs []envelope) []wire.Envelope {
	wenvs := c.wenvs[:0]
	for _, env := range envs {
		we := wire.Envelope{Global: env.Global, RaisedAt: int64(env.RaisedAt)}
		if env.Kind == envEvent {
			we.Kind = wire.KindEvent
			we.Occ = env.Occ
		} else {
			we.Kind = wire.KindHeartbeat
		}
		wenvs = append(wenvs, we)
	}
	c.wenvs = wenvs
	return wenvs
}

// releaseOccs drops the transport's occurrence references after a run was
// serialized: the receiving side decodes fresh objects, so the in-memory
// originals' transport life ends at the encode.
func releaseOccs(envs []envelope) {
	for _, env := range envs {
		if env.Kind == envEvent {
			env.Occ.Release()
		}
	}
}

// recycleEnvs returns a flushed (or unpacked) batch slice to the free
// list, dropping its occurrence pointers first.
func (c *linkCoalescer) recycleEnvs(envs []envelope) {
	clear(envs)
	c.freeEnvs = append(c.freeEnvs, envs[:0])
}

// getRun boxes a flushed envelope slice in a pooled envRun for the bus.
func (c *linkCoalescer) getRun(envs []envelope) *envRun {
	n := len(c.freeRuns)
	if n == 0 {
		return &envRun{envs: envs}
	}
	run := c.freeRuns[n-1]
	c.freeRuns = c.freeRuns[:n-1]
	run.envs = envs
	return run
}

// recycleRun returns an unpacked envRun box to the free list.
func (c *linkCoalescer) recycleRun(run *envRun) {
	run.envs = nil
	c.freeRuns = append(c.freeRuns, run)
}

// getBuf pops a recycled wire-frame buffer (or nil, letting AppendBatch
// allocate the first time).
func (c *linkCoalescer) getBuf() []byte {
	n := len(c.freeBufs)
	if n == 0 {
		return nil
	}
	buf := c.freeBufs[n-1]
	c.freeBufs = c.freeBufs[:n-1]
	return buf[:0]
}

// recycleBuf returns a delivered wire frame to the free list.
func (c *linkCoalescer) recycleBuf(buf []byte) {
	c.freeBufs = append(c.freeBufs, buf[:0])
}
