package ddetect

import (
	"bytes"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/eventlog"
	"repro/internal/network"
)

// Every raised primitive lands in the journal, and replaying the journal
// through a fresh centralized detector reproduces the detections the
// distributed run made (total-order release is centralized-equivalent, so
// the journal in raise order replayed in stamp order is the same stream).
func TestJournalCapturesRaisedEvents(t *testing.T) {
	var journal bytes.Buffer
	sys := MustNewSystem(Config{
		Net:     network.Config{BaseLatency: 15, Jitter: 25, Seed: 2},
		Journal: &journal,
	})
	sys.MustAddSite("hub", 0, 0)
	edge := sys.MustAddSite("edge", 10, 0)
	for _, typ := range []string{"A", "B"} {
		if err := sys.Declare(typ, event.Explicit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.DefineAt("hub", "AB", "A ; B", detector.Chronicle); err != nil {
		t.Fatal(err)
	}
	distDetections := 0
	if err := sys.Subscribe("AB", func(*event.Occurrence) { distDetections++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		edge.MustRaise("A", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
		edge.MustRaise("B", event.Explicit, nil)
		sys.Run(sys.Now()+300, 50)
	}
	if err := sys.Settle(1_000); err != nil {
		t.Fatal(err)
	}

	occs, _, err := eventlog.Scan(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(occs)) != sys.Stats().Raised {
		t.Fatalf("journal has %d records, raised %d", len(occs), sys.Stats().Raised)
	}

	// Recovery: replay into a fresh single-site detector.
	reg := event.NewRegistry()
	reg.MustDeclare("A", event.Explicit)
	reg.MustDeclare("B", event.Explicit)
	d := detector.New("recovered", reg, nil)
	d.MustDefine("AB", "A ; B", detector.Chronicle)
	recDetections := 0
	d.Subscribe("AB", func(*event.Occurrence) { recDetections++ })
	if _, err := eventlog.Replay(bytes.NewReader(journal.Bytes()), d); err != nil {
		t.Fatal(err)
	}
	if recDetections != distDetections {
		t.Fatalf("replayed detections %d != distributed %d", recDetections, distDetections)
	}
}

func TestJournalRejectsUnencodableParams(t *testing.T) {
	var journal bytes.Buffer
	sys := MustNewSystem(Config{Journal: &journal})
	edge := sys.MustAddSite("edge", 0, 0)
	if err := sys.Declare("A", event.Explicit); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Raise("A", event.Explicit, event.Params{"bad": []int{1}}); err == nil {
		t.Fatalf("unencodable params must fail the raise when journaling")
	}
}
