package ddetect

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/network"
	"repro/internal/workload"
)

// scaleMemberships are the roster sizes the scale tests sweep.  They run
// in tier-1 `go test ./...` with tiny event counts, so the dense
// roster-indexed paths (slot addressing, frontier vector, release key)
// are exercised at four-digit membership without waiting on benchmarks.
var scaleMemberships = []int{64, 256, 1024}

// TestReordererScaleMembership drives a full-membership reorderer at each
// scale: one event per source over a small global window, with one member
// held silent to prove the watermark gates on the full frontier vector,
// then heartbeats that open the gate in two steps.  Release order must be
// the (global, site, local, arrival) linear extension, where the dense
// site index orders exactly as the site-ID string it interns.
func TestReordererScaleMembership(t *testing.T) {
	for _, n := range scaleMemberships {
		t.Run(fmt.Sprintf("sites=%d", n), func(t *testing.T) {
			ids := workload.SiteIDs(n)
			roster := core.NewRoster(ids)
			r := newReorderer(roster)

			// Sources 0..n-2 each contribute one event; globals cycle over
			// [10, 17) so the heap has to interleave sites.  Source n-1
			// stays silent.
			globalOf := func(i int) int64 { return int64(10 + (i*3)%7) }
			lowest := 0
			for i := 0; i < n-1; i++ {
				g := globalOf(i)
				if g == 10 {
					lowest++
				}
				occ := event.NewPrimitive("A", event.Explicit,
					core.DeriveStamp(ids[i], g*10, 10), nil)
				if err := r.accept(core.Site(i), 1, envelope{Kind: envEvent, Occ: occ}); err != nil {
					t.Fatal(err)
				}
			}
			if got := r.release(ReleaseExtension, func(envelope) {}); got != 0 {
				t.Fatalf("released %d events while %s was silent, want 0", got, ids[n-1])
			}
			if got := r.pendingEvents(); got != n-1 {
				t.Fatalf("pendingEvents = %d, want %d", got, n-1)
			}

			// The silent member heartbeats global 9: min frontier 9, so
			// extension mode releases exactly the global-10 events.
			if err := r.accept(core.Site(n-1), 1, envelope{Kind: envHeartbeat, Global: 9}); err != nil {
				t.Fatal(err)
			}
			var keys []key
			sink := func(env envelope) {
				keys = append(keys, key{
					global: env.Occ.Stamp.MaxGlobal(),
					site:   roster.MustSite(env.Occ.Stamp.MaxGlobalComponent().Site),
				})
			}
			if got := r.release(ReleaseExtension, sink); got != lowest {
				t.Fatalf("partial release = %d, want %d (the global-10 events)", got, lowest)
			}

			// Everyone advances far past the window: the rest releases, in
			// both modes' threshold (use total order for the stricter gate).
			for i := 0; i < n; i++ {
				if err := r.accept(core.Site(i), 2, envelope{Kind: envHeartbeat, Global: 1000}); err != nil {
					t.Fatal(err)
				}
			}
			if got := r.release(ReleaseTotalOrder, sink); got != n-1-lowest {
				t.Fatalf("final release = %d, want %d", got, n-1-lowest)
			}
			if got := r.pendingEvents(); got != 0 {
				t.Fatalf("pendingEvents after full release = %d, want 0", got)
			}

			// The concatenated release sequence is sorted by (global, site),
			// and equal-global runs ascend by roster index — i.e. by site ID.
			for i := 1; i < len(keys); i++ {
				a, b := keys[i-1], keys[i]
				if a.global > b.global || (a.global == b.global && a.site >= b.site) {
					t.Fatalf("release order violated at %d: (%d,%d) then (%d,%d)",
						i, a.global, a.site, b.global, b.site)
				}
			}
		})
	}
}

// TestReordererScaleExclusion pins the decommission path at scale: a lone
// speaker is gated by every silent member until all of them are excluded,
// at which point its event releases against its own frontier alone.
func TestReordererScaleExclusion(t *testing.T) {
	for _, n := range scaleMemberships {
		t.Run(fmt.Sprintf("sites=%d", n), func(t *testing.T) {
			ids := workload.SiteIDs(n)
			roster := core.NewRoster(ids)
			r := newReorderer(roster)
			occ := event.NewPrimitive("A", event.Explicit,
				core.DeriveStamp(ids[0], 100, 10), nil)
			if err := r.accept(core.Site(0), 1, envelope{Kind: envEvent, Occ: occ}); err != nil {
				t.Fatal(err)
			}
			if got := r.release(ReleaseExtension, func(envelope) {}); got != 0 {
				t.Fatalf("released %d with %d silent members, want 0", got, n-1)
			}
			for i := 1; i < n; i++ {
				r.exclude(core.Site(i))
			}
			// min frontier is now the speaker's own 10: 10 ≤ 10+1 releases.
			if got := r.release(ReleaseExtension, func(envelope) {}); got != 1 {
				t.Fatalf("released %d after excluding all silent members, want 1", got)
			}
		})
	}
}

// TestWatermarkGatingScaleSystem runs the full pipeline end to end at each
// membership: a cross-site sequence between the lexically last and first
// sites, with every other member contributing only heartbeats.  The
// detection firing proves the watermark waited for — and then heard from —
// all n frontiers; the released count proves no event leaked early.
func TestWatermarkGatingScaleSystem(t *testing.T) {
	for _, n := range scaleMemberships {
		t.Run(fmt.Sprintf("sites=%d", n), func(t *testing.T) {
			if testing.Short() && n > 256 {
				t.Skip("large membership skipped in -short mode")
			}
			sys := MustNewSystem(Config{Net: network.Config{BaseLatency: 20}})
			ids := workload.SiteIDs(n)
			for _, id := range ids {
				sys.MustAddSite(id, 0, 0)
			}
			for _, typ := range []string{"A", "B"} {
				if err := sys.Declare(typ, event.Explicit); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sys.DefineAt(ids[0], "AB", "A ; B", detector.Chronicle); err != nil {
				t.Fatal(err)
			}
			got := collect(t, sys, "AB")

			sys.Site(ids[n-1]).MustRaise("A", event.Explicit, nil)
			sys.Run(500, 50) // two granules later: unambiguously ordered
			sys.Site(ids[0]).MustRaise("B", event.Explicit, nil)
			if err := sys.Settle(5_000); err != nil {
				t.Fatal(err)
			}
			if len(*got) != 1 {
				t.Fatalf("detections = %d, want 1", len(*got))
			}
			st := sys.Stats()
			if st.Released != 2 {
				t.Fatalf("released = %d, want 2 (both constituents, exactly once)", st.Released)
			}
		})
	}
}
