package ddetect

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
)

// attachFlightRecorder arms a flight-recorder-backed tracer on cfg
// (callers check cfg.Trace is still free) and dumps the recorded spans
// into the test log if the test fails — the last moments before the
// anomaly, per site.
func attachFlightRecorder(t testing.TB, cfg *Config, perSite int) *obs.FlightRecorder {
	rec := obs.NewFlightRecorder(perSite)
	cfg.Trace = obs.NewTracer(rec)
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var d bytes.Buffer
		if err := rec.Dump(&d); err == nil && d.Len() > 0 {
			t.Logf("flight recorder (last spans before failure):\n%s", d.String())
		}
	})
	return rec
}

// TestObsDeterminism is the tentpole acceptance test: the full
// observability stack — lineage tracer into span log + flight recorder,
// metrics registry with the system collector — must be a pure observer.
// Across seeds and site counts the occurrence log is byte-identical with
// the stack attached and detached, and the span stream itself is
// byte-identical across worker counts (span IDs are crank-ordered).
func TestObsDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 31} {
		for _, sites := range []int{3, 6} {
			bare := scenarioOpts{sites: sites, count: 250, seed: seed, noObs: true}
			bareLog, bareStats := runScenario(t, bare)
			if bareStats.Detections == 0 {
				t.Fatalf("seed=%d sites=%d: no detections; comparison is vacuous", seed, sites)
			}

			runObs := func(workers int) ([]byte, []byte, *obs.Registry) {
				var spans bytes.Buffer
				var reg *obs.Registry
				o := scenarioOpts{sites: sites, count: 250, seed: seed, workers: workers, noObs: true}
				o.mutate = func(c *Config) {
					c.Trace = obs.NewTracer(obs.MultiSink{
						obs.NewSpanLog(&spans),
						obs.NewFlightRecorder(16),
					})
					reg = obs.NewRegistry()
					c.Metrics = reg
				}
				log, st := runScenario(t, o)
				if st.Detections != bareStats.Detections {
					t.Fatalf("seed=%d sites=%d workers=%d: %d detections with obs, %d without",
						seed, sites, workers, st.Detections, bareStats.Detections)
				}
				return log, spans.Bytes(), reg
			}

			obsLog, spans0, reg := runObs(0)
			if !bytes.Equal(bareLog, obsLog) {
				t.Errorf("seed=%d sites=%d: occurrence log differs with observability attached (%d vs %d bytes)",
					seed, sites, len(obsLog), len(bareLog))
			}
			if len(spans0) == 0 {
				t.Fatalf("seed=%d sites=%d: tracer emitted nothing", seed, sites)
			}
			for _, kind := range []string{"kind=raise", "kind=send", "kind=recv", "kind=release", "kind=detect", "kind=publish"} {
				if !bytes.Contains(spans0, []byte(kind)) {
					t.Errorf("seed=%d sites=%d: span log has no %s events", seed, sites, kind)
				}
			}
			// The metrics bridge must agree with the Stats counters.
			var prom bytes.Buffer
			if err := reg.WritePrometheus(&prom); err != nil {
				t.Fatal(err)
			}
			wantLine := "sentinel_detections_total " + uitoa(bareStats.Detections)
			if !strings.Contains(prom.String(), wantLine+"\n") {
				t.Errorf("seed=%d sites=%d: prometheus export missing %q", seed, sites, wantLine)
			}
			if !strings.Contains(prom.String(), "sentinel_release_latency_microticks_count") {
				t.Errorf("seed=%d sites=%d: native release histogram missing from export", seed, sites)
			}

			// Worker counts must not perturb the span stream: every span
			// point sits on the crank goroutine.
			obsLogPar, spansPar, _ := runObs(4)
			if !bytes.Equal(bareLog, obsLogPar) {
				t.Errorf("seed=%d sites=%d workers=4: occurrence log differs with observability attached", seed, sites)
			}
			if !bytes.Equal(spans0, spansPar) {
				t.Errorf("seed=%d sites=%d: span stream differs between workers=0 (%d bytes) and workers=4 (%d bytes)",
					seed, sites, len(spans0), len(spansPar))
			}
		}
	}
}

// uitoa avoids fmt in the hot assertion strings above.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestObsSerializeMode smokes the tracing caveat documented on
// Config.Trace: in Serialize mode decoded occurrences get fresh span
// IDs, but the occurrence log must still be byte-identical and the
// lineage stages all present.
func TestObsSerializeMode(t *testing.T) {
	bare := scenarioOpts{sites: 3, count: 150, seed: 11, noObs: true,
		mutate: func(c *Config) { c.Serialize = true }}
	bareLog, bareStats := runScenario(t, bare)
	if bareStats.Detections == 0 {
		t.Fatal("no detections; comparison is vacuous")
	}
	var spans bytes.Buffer
	traced := bare
	traced.mutate = func(c *Config) {
		c.Serialize = true
		c.Trace = obs.NewTracer(obs.NewSpanLog(&spans))
	}
	tracedLog, _ := runScenario(t, traced)
	if !bytes.Equal(bareLog, tracedLog) {
		t.Fatal("occurrence log differs with tracing in Serialize mode")
	}
	for _, kind := range []string{"kind=raise", "kind=recv", "kind=detect"} {
		if !bytes.Contains(spans.Bytes(), []byte(kind)) {
			t.Errorf("span log has no %s events", kind)
		}
	}
}

// TestDefStats pins the per-definition latency satellite: detections are
// attributed to their definition with event-time latency aggregates that
// are identical across worker counts.
func TestDefStats(t *testing.T) {
	o := defaultScenario()
	o.count = 300
	_, st := runScenario(t, o)
	if len(st.Definitions) != 5 {
		t.Fatalf("got %d definition stats, want 5: %+v", len(st.Definitions), st.Definitions)
	}
	var total uint64
	for i, ds := range st.Definitions {
		if i > 0 && st.Definitions[i-1].Name >= ds.Name {
			t.Fatalf("definitions not sorted by name: %+v", st.Definitions)
		}
		total += ds.Detections
		if ds.Detections > 0 {
			if ds.MeanLatency() <= 0 || ds.LatencyMax < clock.Microticks(ds.MeanLatency()) {
				t.Errorf("%s: implausible latency mean=%.1f max=%d", ds.Name, ds.MeanLatency(), ds.LatencyMax)
			}
		} else if ds.MeanLatency() != 0 {
			t.Errorf("%s: zero detections but mean latency %f", ds.Name, ds.MeanLatency())
		}
	}
	if total != st.Detections {
		t.Fatalf("per-definition detections sum to %d, stats say %d", total, st.Detections)
	}

	par := o
	par.workers = 4
	_, stPar := runScenario(t, par)
	if len(stPar.Definitions) != len(st.Definitions) {
		t.Fatalf("worker count changed definition stats length")
	}
	for i := range st.Definitions {
		if st.Definitions[i] != stPar.Definitions[i] {
			t.Fatalf("definition stats diverge across worker counts:\nseq: %+v\npar: %+v",
				st.Definitions[i], stPar.Definitions[i])
		}
	}
}

// TestTracerUnsunkIsInert pins the overhead mode used by the smoke
// benchmark: a tracer with no sink changes nothing and emits nothing.
func TestTracerUnsunkIsInert(t *testing.T) {
	bare := scenarioOpts{sites: 3, count: 150, seed: 19, noObs: true}
	bareLog, _ := runScenario(t, bare)
	unsunk := bare
	unsunk.mutate = func(c *Config) { c.Trace = obs.NewTracer(nil) }
	unsunkLog, _ := runScenario(t, unsunk)
	if !bytes.Equal(bareLog, unsunkLog) {
		t.Fatal("enabled-but-unsunk tracer perturbed the occurrence log")
	}
}

// TestMetricsJSONExportFromSystem smokes the expvar-style exporter on a
// live system registry (format details are pinned in internal/obs).
func TestMetricsJSONExportFromSystem(t *testing.T) {
	reg := obs.NewRegistry()
	o := scenarioOpts{sites: 3, count: 100, seed: 3, noObs: true,
		mutate: func(c *Config) { c.Metrics = reg }}
	_, st := runScenario(t, o)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sentinel_raised_total": `+uitoa(st.Raised)) {
		t.Fatalf("JSON export missing raised counter:\n%s", buf.String())
	}
	if _, err := io.Copy(io.Discard, &buf); err != nil {
		t.Fatal(err)
	}
}
