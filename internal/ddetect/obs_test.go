package ddetect

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/obs"
)

// attachFlightRecorder arms a flight-recorder-backed tracer on cfg
// (callers check cfg.Trace is still free) and dumps the recorded spans
// into the test log if the test fails — the last moments before the
// anomaly, per site.
func attachFlightRecorder(t testing.TB, cfg *Config, perSite int) *obs.FlightRecorder {
	rec := obs.NewFlightRecorder(perSite)
	cfg.Trace = obs.NewTracer(rec)
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var d bytes.Buffer
		if err := rec.Dump(&d); err == nil && d.Len() > 0 {
			t.Logf("flight recorder (last spans before failure):\n%s", d.String())
		}
	})
	return rec
}

// TestObsDeterminism is the tentpole acceptance test: the full
// observability stack — lineage tracer into span log + flight recorder,
// metrics registry with the system collector — must be a pure observer.
// Across seeds and site counts the occurrence log is byte-identical with
// the stack attached and detached, and the span stream itself is
// byte-identical across worker counts (span IDs are crank-ordered),
// across pooling modes (span identity is generation-stamped) and for
// every sampling rate (the PR-10 matrix below: rates 0/0.1/1 × workers
// 0/4 × pooled/unpooled).  Every traced run draws from the pool.
func TestObsDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 31} {
		for _, sites := range []int{3, 6} {
			bare := scenarioOpts{sites: sites, count: 250, seed: seed, noObs: true}
			bareLog, bareStats := runScenario(t, bare)
			if bareStats.Detections == 0 {
				t.Fatalf("seed=%d sites=%d: no detections; comparison is vacuous", seed, sites)
			}

			runObs := func(workers int, disablePooling bool, rate float64) ([]byte, []byte, *obs.Registry) {
				var spans bytes.Buffer
				var reg *obs.Registry
				var ps event.PoolStats
				o := scenarioOpts{sites: sites, count: 250, seed: seed, workers: workers, noObs: true}
				o.mutate = func(c *Config) {
					c.DisablePooling = disablePooling
					c.Trace = obs.NewTracer(obs.MultiSink{
						obs.NewSpanLog(&spans),
						obs.NewFlightRecorder(16),
					})
					if rate >= 0 {
						c.Sample = obs.NewSampler(42, rate)
					}
					reg = obs.NewRegistry()
					c.Metrics = reg
				}
				o.inspect = func(sys *System) { ps = sys.PoolStats() }
				log, st := runScenario(t, o)
				if st.Detections != bareStats.Detections {
					t.Fatalf("seed=%d sites=%d workers=%d pooled=%v rate=%v: %d detections with obs, %d without",
						seed, sites, workers, !disablePooling, rate, st.Detections, bareStats.Detections)
				}
				if !disablePooling && ps.Gets == 0 {
					t.Fatalf("seed=%d sites=%d workers=%d rate=%v: traced run never drew from the pool",
						seed, sites, workers, rate)
				}
				if disablePooling && ps.Gets != 0 {
					t.Fatalf("seed=%d sites=%d workers=%d rate=%v: DisablePooling still drew %d from the pool",
						seed, sites, workers, rate, ps.Gets)
				}
				return log, spans.Bytes(), reg
			}

			obsLog, spans0, reg := runObs(0, false, -1)
			if !bytes.Equal(bareLog, obsLog) {
				t.Errorf("seed=%d sites=%d: occurrence log differs with observability attached (%d vs %d bytes)",
					seed, sites, len(obsLog), len(bareLog))
			}
			if len(spans0) == 0 {
				t.Fatalf("seed=%d sites=%d: tracer emitted nothing", seed, sites)
			}
			for _, kind := range []string{"kind=raise", "kind=send", "kind=recv", "kind=release", "kind=detect", "kind=publish"} {
				if !bytes.Contains(spans0, []byte(kind)) {
					t.Errorf("seed=%d sites=%d: span log has no %s events", seed, sites, kind)
				}
			}
			// The metrics bridge must agree with the Stats counters.
			var prom bytes.Buffer
			if err := reg.WritePrometheus(&prom); err != nil {
				t.Fatal(err)
			}
			wantLine := "sentinel_detections_total " + uitoa(bareStats.Detections)
			if !strings.Contains(prom.String(), wantLine+"\n") {
				t.Errorf("seed=%d sites=%d: prometheus export missing %q", seed, sites, wantLine)
			}
			if !strings.Contains(prom.String(), "sentinel_release_latency_microticks_count") {
				t.Errorf("seed=%d sites=%d: native release histogram missing from export", seed, sites)
			}
			if !strings.Contains(prom.String(), `sentinel_stage_leg_microticks_count{leg="send_to_recv"}`) {
				t.Errorf("seed=%d sites=%d: labeled stage-leg histogram missing from export", seed, sites)
			}

			// Worker counts must not perturb the span stream: every span
			// point sits on the crank goroutine.
			obsLogPar, spansPar, _ := runObs(4, false, -1)
			if !bytes.Equal(bareLog, obsLogPar) {
				t.Errorf("seed=%d sites=%d workers=4: occurrence log differs with observability attached", seed, sites)
			}
			if !bytes.Equal(spans0, spansPar) {
				t.Errorf("seed=%d sites=%d: span stream differs between workers=0 (%d bytes) and workers=4 (%d bytes)",
					seed, sites, len(spans0), len(spansPar))
			}

			// Pooling must not perturb the span stream either: span
			// identity is keyed (pointer, generation), so the ID sequence
			// is a function of the occurrence stream alone.
			unpooledLog, spansUnpooled, _ := runObs(0, true, -1)
			if !bytes.Equal(bareLog, unpooledLog) {
				t.Errorf("seed=%d sites=%d: occurrence log differs traced+DisablePooling", seed, sites)
			}
			if !bytes.Equal(spans0, spansUnpooled) {
				t.Errorf("seed=%d sites=%d: span stream differs traced+pooled (%d bytes) vs traced+DisablePooling (%d bytes)",
					seed, sites, len(spans0), len(spansUnpooled))
			}

			// The sampling matrix runs once (the heaviest combination):
			// for each head rate the eventlog stays byte-identical to bare
			// and the span stream is invariant across workers and pooling.
			if seed != 7 || sites != 6 {
				continue
			}
			for _, rate := range []float64{0, 0.1, 1.0} {
				ref := [][]byte(nil)
				for _, workers := range []int{0, 4} {
					for _, disablePooling := range []bool{false, true} {
						log, spans, _ := runObs(workers, disablePooling, rate)
						if !bytes.Equal(bareLog, log) {
							t.Errorf("rate=%v workers=%d pooled=%v: occurrence log differs from bare",
								rate, workers, !disablePooling)
						}
						ref = append(ref, spans)
					}
				}
				for i := 1; i < len(ref); i++ {
					if !bytes.Equal(ref[0], ref[i]) {
						t.Errorf("rate=%v: sampled span stream differs across the workers×pooling matrix (variant %d: %d vs %d bytes)",
							rate, i, len(ref[i]), len(ref[0]))
					}
				}
				switch rate {
				case 0:
					if bytes.Contains(ref[0], []byte("kind=raise")) {
						t.Errorf("rate=0: lineage spans leaked through a keep-nothing sampler")
					}
					if !bytes.Contains(ref[0], []byte("kind=note")) {
						t.Errorf("rate=0: stage notes should survive sampling")
					}
				case 1.0:
					if !bytes.Equal(ref[0], spans0) {
						t.Errorf("rate=1: sampled span stream differs from the unsampled one (%d vs %d bytes)",
							len(ref[0]), len(spans0))
					}
				default:
					if !bytes.Contains(ref[0], []byte("kind=raise")) || len(ref[0]) >= len(spans0) {
						t.Errorf("rate=%v: expected a thinned-but-nonempty lineage stream (%d vs %d bytes unsampled)",
							rate, len(ref[0]), len(spans0))
					}
					assertCompleteLineage(t, ref[0])
				}
			}
		}
	}
}

// assertCompleteLineage parses a span log and checks the head-sampling
// lineage guarantee: every ID a detect span links to has already
// appeared in the stream (as a raise, or a recv for serialize-decoded
// constituents) — a sampled detection never references a dropped span.
func assertCompleteLineage(t *testing.T, spans []byte) {
	t.Helper()
	seen := map[string]bool{}
	detects := 0
	for _, line := range strings.Split(string(spans), "\n") {
		fields := strings.Fields(line)
		var id, links string
		for _, f := range fields {
			switch {
			case strings.HasPrefix(f, "id="):
				id = f[len("id="):]
			case strings.HasPrefix(f, "links="):
				links = f[len("links="):]
			}
		}
		if links != "" {
			detects++
			for _, l := range strings.Split(links, ",") {
				if !seen[l] {
					t.Errorf("detect span links id=%s which never appeared: %s", l, line)
				}
			}
		}
		if id != "" && id != "0" {
			seen[id] = true
		}
	}
	if detects == 0 {
		t.Error("no linked detect spans in the sampled stream; lineage check is vacuous")
	}
}

// uitoa avoids fmt in the hot assertion strings above.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestObsSerializeMode smokes the tracing caveat documented on
// Config.Trace: in Serialize mode decoded occurrences get fresh span
// IDs, but the occurrence log must still be byte-identical and the
// lineage stages all present.
func TestObsSerializeMode(t *testing.T) {
	bare := scenarioOpts{sites: 3, count: 150, seed: 11, noObs: true,
		mutate: func(c *Config) { c.Serialize = true }}
	bareLog, bareStats := runScenario(t, bare)
	if bareStats.Detections == 0 {
		t.Fatal("no detections; comparison is vacuous")
	}
	var spans bytes.Buffer
	traced := bare
	traced.mutate = func(c *Config) {
		c.Serialize = true
		c.Trace = obs.NewTracer(obs.NewSpanLog(&spans))
	}
	tracedLog, _ := runScenario(t, traced)
	if !bytes.Equal(bareLog, tracedLog) {
		t.Fatal("occurrence log differs with tracing in Serialize mode")
	}
	for _, kind := range []string{"kind=raise", "kind=recv", "kind=detect"} {
		if !bytes.Contains(spans.Bytes(), []byte(kind)) {
			t.Errorf("span log has no %s events", kind)
		}
	}
}

// TestDefStats pins the per-definition latency satellite: detections are
// attributed to their definition with event-time latency aggregates that
// are identical across worker counts.
func TestDefStats(t *testing.T) {
	o := defaultScenario()
	o.count = 300
	_, st := runScenario(t, o)
	if len(st.Definitions) != 5 {
		t.Fatalf("got %d definition stats, want 5: %+v", len(st.Definitions), st.Definitions)
	}
	var total uint64
	for i, ds := range st.Definitions {
		if i > 0 && st.Definitions[i-1].Name >= ds.Name {
			t.Fatalf("definitions not sorted by name: %+v", st.Definitions)
		}
		total += ds.Detections
		if ds.Detections > 0 {
			if ds.MeanLatency() <= 0 || ds.LatencyMax < clock.Microticks(ds.MeanLatency()) {
				t.Errorf("%s: implausible latency mean=%.1f max=%d", ds.Name, ds.MeanLatency(), ds.LatencyMax)
			}
		} else if ds.MeanLatency() != 0 {
			t.Errorf("%s: zero detections but mean latency %f", ds.Name, ds.MeanLatency())
		}
	}
	if total != st.Detections {
		t.Fatalf("per-definition detections sum to %d, stats say %d", total, st.Detections)
	}

	par := o
	par.workers = 4
	_, stPar := runScenario(t, par)
	if len(stPar.Definitions) != len(st.Definitions) {
		t.Fatalf("worker count changed definition stats length")
	}
	for i := range st.Definitions {
		if st.Definitions[i] != stPar.Definitions[i] {
			t.Fatalf("definition stats diverge across worker counts:\nseq: %+v\npar: %+v",
				st.Definitions[i], stPar.Definitions[i])
		}
	}
}

// TestTracerUnsunkIsInert pins the overhead mode used by the smoke
// benchmark: a tracer with no sink changes nothing and emits nothing.
func TestTracerUnsunkIsInert(t *testing.T) {
	bare := scenarioOpts{sites: 3, count: 150, seed: 19, noObs: true}
	bareLog, _ := runScenario(t, bare)
	unsunk := bare
	unsunk.mutate = func(c *Config) { c.Trace = obs.NewTracer(nil) }
	unsunkLog, _ := runScenario(t, unsunk)
	if !bytes.Equal(bareLog, unsunkLog) {
		t.Fatal("enabled-but-unsunk tracer perturbed the occurrence log")
	}
}

// TestMetricsJSONExportFromSystem smokes the expvar-style exporter on a
// live system registry (format details are pinned in internal/obs).
func TestMetricsJSONExportFromSystem(t *testing.T) {
	reg := obs.NewRegistry()
	o := scenarioOpts{sites: 3, count: 100, seed: 3, noObs: true,
		mutate: func(c *Config) { c.Metrics = reg }}
	_, st := runScenario(t, o)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sentinel_raised_total": `+uitoa(st.Raised)) {
		t.Fatalf("JSON export missing raised counter:\n%s", buf.String())
	}
	if _, err := io.Copy(io.Discard, &buf); err != nil {
		t.Fatal(err)
	}
}
