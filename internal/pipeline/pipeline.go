// Package pipeline is the staged-execution substrate of the distributed
// detector: it replaces the former monolithic per-tick crank with an
// explicit sequence of named stages (ingest → transport → release →
// detect → publish), instruments every stage tick with counters and
// wall-clock latency histograms, and provides the worker pool the detect
// stage uses to fan out across sites.
//
// The package is deliberately generic — a Stage is anything that can
// process one simulated-time tick — so the observability layer and future
// backends plug into the same seam.  Determinism is preserved by
// construction: within a tick the Driver runs stages strictly in order,
// and Pool.Run's only contract is "fn(i) ran for every i, all complete at
// return", with fn restricted to per-i state, so goroutine scheduling
// cannot leak into results (the per-tick barrier).
package pipeline

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"repro/internal/clock"
)

// Stage is one pipeline stage.  Tick processes everything due at the
// (already advanced) simulated time now and returns the number of items
// it handled, for instrumentation.  A stage owns its inter-stage buffers
// while it runs; the Driver guarantees stages of one tick never overlap.
type Stage interface {
	Name() string
	Tick(now clock.Microticks) int
}

// StageEvent is one instrumentation sample: a stage finished its slice of
// a tick.  Hooks receive it synchronously on the crank goroutine, so they
// must be cheap; they are the seam the observability layer plugs into.
type StageEvent struct {
	// Stage is the stage name ("ingest", "transport", …).
	Stage string
	// Now is the simulated time of the tick.
	Now clock.Microticks
	// Items is the number of items the stage processed this tick.
	Items int
	// Elapsed is the wall-clock time the stage spent.
	Elapsed time.Duration
}

// Config parameterizes the staged execution of a system.
type Config struct {
	// Workers is the detect-stage worker count.  0 (the default) runs
	// every stage on the crank goroutine — the legacy sequential
	// behavior.  Workers > 1 detects across sites in parallel, joining
	// at a per-tick barrier; results are bit-for-bit identical to the
	// sequential mode (see the package comment).
	Workers int
	// OnStage, when non-nil, receives a StageEvent after every stage
	// tick.
	OnStage func(StageEvent)
}

// histBuckets is the number of power-of-two latency buckets; bucket i
// covers elapsed times of [2^i, 2^(i+1)) nanoseconds, the last bucket is
// open-ended (≥ ~2s).
const histBuckets = 32

// Histogram is a power-of-two-bucketed wall-clock latency histogram.
type Histogram struct {
	Counts [histBuckets]uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) { h.Counts[bucketOf(d)]++ }

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// top of the bucket the quantile falls in.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return time.Duration(1) << (i + 1)
		}
	}
	return time.Duration(1) << histBuckets
}

// String renders the non-empty buckets compactly, e.g. "<2µs:31 <4µs:8".
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "<%v:%d", time.Duration(1)<<(i+1), c)
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// StageStats aggregates one stage's activity across ticks.
type StageStats struct {
	Name  string
	Ticks uint64
	// Items is the total number of items the stage processed.
	Items uint64
	// Busy is the total wall-clock time spent in the stage; MaxTick is
	// the longest single tick.
	Busy    time.Duration
	MaxTick time.Duration
	// Hist buckets per-tick wall-clock latency.
	Hist Histogram
}

// Driver composes stages and turns the crank: one Tick runs every stage
// once, in order, sampling a StageEvent around each.
type Driver struct {
	stages []Stage
	hooks  []func(StageEvent)
	stats  []StageStats
	// now supplies the wall-clock instants the per-stage latency
	// histograms are built from.  It is instrumentation only: nothing it
	// returns feeds simulated time or detection results, which is why
	// this is the single permitted wall-clock read in the engine.
	now func() time.Time
}

// NewDriver builds a driver over the given stages, run in the given
// order.
func NewDriver(stages ...Stage) *Driver {
	d := &Driver{
		stages: stages,
		stats:  make([]StageStats, len(stages)),
		now:    time.Now, //lint:allow walltime — latency instrumentation, never simulation state; see Driver.now
	}
	for i, s := range stages {
		d.stats[i].Name = s.Name()
	}
	return d
}

// SetNow replaces the wall-clock source used for stage latency
// instrumentation (nil restores time.Now), making the histograms and
// per-stage counters testable with a deterministic fake.
func (d *Driver) SetNow(now func() time.Time) {
	if now == nil {
		now = time.Now //lint:allow walltime — default restore of the instrumentation clock
	}
	d.now = now
}

// Hook registers an instrumentation hook; hooks run synchronously after
// every stage tick, in registration order.
func (d *Driver) Hook(fn func(StageEvent)) {
	if fn != nil {
		d.hooks = append(d.hooks, fn)
	}
}

// Tick runs every stage once at simulated time now.
func (d *Driver) Tick(now clock.Microticks) {
	for i, s := range d.stages {
		start := d.now()
		items := s.Tick(now)
		elapsed := d.now().Sub(start)
		st := &d.stats[i]
		st.Ticks++
		st.Items += uint64(items)
		st.Busy += elapsed
		if elapsed > st.MaxTick {
			st.MaxTick = elapsed
		}
		st.Hist.Observe(elapsed)
		if len(d.hooks) > 0 {
			ev := StageEvent{Stage: st.Name, Now: now, Items: items, Elapsed: elapsed}
			for _, h := range d.hooks {
				h(ev)
			}
		}
	}
}

// Stats returns a snapshot of the per-stage counters, in stage order.
func (d *Driver) Stats() []StageStats {
	out := make([]StageStats, len(d.stats))
	copy(out, d.stats)
	return out
}
