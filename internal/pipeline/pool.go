package pipeline

import (
	"sync"
	"sync/atomic"
)

// Pool fans work out across a bounded number of goroutines and joins
// before returning — the detect stage's per-tick barrier.  A Pool with
// Workers ≤ 1 (or a nil Pool) runs everything inline on the caller's
// goroutine, which is the sequential legacy mode.
//
// Pool spawns its goroutines per Run call (work stealing off an atomic
// counter), so it holds no resources between ticks and needs no Close.
type Pool struct {
	workers int
}

// NewPool creates a pool.  workers ≤ 1 means inline execution.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	return &Pool{workers: workers}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Run calls fn(i) for every i in [0, n) and returns only when all calls
// have completed.  fn must confine its writes to state owned by index i;
// under that contract the results are identical for any worker count, so
// parallelism cannot perturb determinism.  Panics in fn are re-raised on
// the calling goroutine after the barrier.
func (p *Pool) Run(n int, fn func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	type trapped struct{ v any }
	var (
		next     atomic.Int64
		panicked atomic.Value
		wg       sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, trapped{v: r})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(trapped).v)
	}
}
