package pipeline

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// countStage counts ticks and reports a fixed item count.
type countStage struct {
	name  string
	items int
	ticks int
	trace *[]string
}

func (s *countStage) Name() string { return s.name }
func (s *countStage) Tick(now clock.Microticks) int {
	s.ticks++
	if s.trace != nil {
		*s.trace = append(*s.trace, s.name)
	}
	return s.items
}

func TestDriverRunsStagesInOrder(t *testing.T) {
	var trace []string
	a := &countStage{name: "a", items: 2, trace: &trace}
	b := &countStage{name: "b", items: 3, trace: &trace}
	d := NewDriver(a, b)
	d.Tick(10)
	d.Tick(20)
	want := []string{"a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	st := d.Stats()
	if st[0].Name != "a" || st[0].Ticks != 2 || st[0].Items != 4 {
		t.Fatalf("stage a stats %+v", st[0])
	}
	if st[1].Name != "b" || st[1].Ticks != 2 || st[1].Items != 6 {
		t.Fatalf("stage b stats %+v", st[1])
	}
	if st[0].Hist.Total() != 2 {
		t.Fatalf("histogram samples %d, want 2", st[0].Hist.Total())
	}
}

func TestDriverFakeClock(t *testing.T) {
	a := &countStage{name: "a", items: 1}
	b := &countStage{name: "b", items: 1}
	d := NewDriver(a, b)
	// Fake clock: each stage appears to take exactly 64ns (two reads per
	// stage, 32ns apart), so every instrumentation field is predictable.
	var ticks int64
	d.SetNow(func() time.Time {
		ticks++
		return time.Unix(0, 32*ticks)
	})
	var elapsed []time.Duration
	d.Hook(func(ev StageEvent) { elapsed = append(elapsed, ev.Elapsed) })
	d.Tick(1)
	d.Tick(2)
	for i, e := range elapsed {
		if e != 32*time.Nanosecond {
			t.Fatalf("event %d elapsed %v, want 32ns", i, e)
		}
	}
	for _, st := range d.Stats() {
		if st.Busy != 64*time.Nanosecond || st.MaxTick != 32*time.Nanosecond {
			t.Fatalf("stage %s busy=%v max=%v, want 64ns/32ns", st.Name, st.Busy, st.MaxTick)
		}
		// 32ns falls in bucket [32, 64) = index 5, both samples.
		if st.Hist.Counts[5] != 2 || st.Hist.Total() != 2 {
			t.Fatalf("stage %s histogram %v", st.Name, st.Hist.Counts)
		}
	}
	// SetNow(nil) restores a real clock; ticking must not panic and keeps
	// counting.
	d.SetNow(nil)
	d.Tick(3)
	if st := d.Stats(); st[0].Ticks != 3 {
		t.Fatalf("ticks %d, want 3", st[0].Ticks)
	}
}

func TestDriverHooks(t *testing.T) {
	a := &countStage{name: "a", items: 1}
	d := NewDriver(a)
	var events []StageEvent
	d.Hook(func(ev StageEvent) { events = append(events, ev) })
	d.Tick(42)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Stage != "a" || ev.Now != 42 || ev.Items != 1 || ev.Elapsed < 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)                   // bucket 0
	h.Observe(3 * time.Nanosecond) // bucket 1
	h.Observe(1500 * time.Nanosecond)
	if h.Total() != 4 {
		t.Fatalf("total %d, want 4", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[10] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("quantile %v", q)
	}
	if h.Quantile(1.0) < h.Quantile(0.0) {
		t.Fatalf("quantiles not monotone")
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	if (&Histogram{}).String() != "-" {
		t.Fatalf("empty histogram string %q", (&Histogram{}).String())
	}
}

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		p := NewPool(workers)
		const n = 100
		var hits [n]atomic.Int32
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestPoolBarrier(t *testing.T) {
	// Every fn must have completed when Run returns.
	p := NewPool(4)
	var done atomic.Int32
	p.Run(64, func(i int) {
		time.Sleep(time.Microsecond)
		done.Add(1)
	})
	if got := done.Load(); got != 64 {
		t.Fatalf("barrier leaked: %d of 64 done at return", got)
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.Run(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Fatalf("panic did not propagate")
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	ran := 0
	p.Run(5, func(i int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d of 5", ran)
	}
	if p.Workers() != 0 {
		t.Fatalf("nil pool workers %d", p.Workers())
	}
}
