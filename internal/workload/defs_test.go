package workload

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// The generator is deterministic: one config, one definition set.
func TestGenDefsDeterministic(t *testing.T) {
	cfg := DefsConfig{Count: 200, Types: TypeNames(16), Overlap: 0.5, Contexts: 5, Seed: 42}
	a := GenDefs(cfg)
	b := GenDefs(cfg)
	if len(a) != 200 {
		t.Fatalf("generated %d defs, want 200", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("def %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Every generated expression parses, every name is unique, and contexts
// stay inside the requested range.
func TestGenDefsWellFormed(t *testing.T) {
	defs := GenDefs(DefsConfig{Count: 500, Types: TypeNames(8), Overlap: 0.7, Contexts: 5, Seed: 7})
	names := make(map[string]bool, len(defs))
	for _, d := range defs {
		if names[d.Name] {
			t.Fatalf("duplicate name %q", d.Name)
		}
		names[d.Name] = true
		if _, err := expr.Parse(d.Expr); err != nil {
			t.Fatalf("%s: %q does not parse: %v", d.Name, d.Expr, err)
		}
		if d.Ctx < 0 || d.Ctx >= 5 {
			t.Fatalf("%s: context %d outside [0,5)", d.Name, d.Ctx)
		}
	}
}

// The overlap knob controls structural sharing: at 0 every body is
// distinct; at high overlap many bodies embed one of the few core
// subexpressions.
func TestGenDefsOverlapKnob(t *testing.T) {
	types := TypeNames(16)
	zero := GenDefs(DefsConfig{Count: 256, Types: types, Overlap: 0, Seed: 1})
	seen := make(map[string]bool)
	for _, d := range zero {
		if seen[d.Expr] {
			t.Fatalf("overlap 0 produced duplicate body %q", d.Expr)
		}
		seen[d.Expr] = true
	}
	high := GenDefs(DefsConfig{Count: 256, Types: types, Overlap: 0.9, CorePool: 4, Seed: 1})
	shared := 0
	for _, d := range high {
		// Core-embedding bodies are "((A op B) OR C)" — nested parens.
		if strings.Count(d.Expr, "(") == 2 {
			shared++
		}
	}
	if shared < 180 || shared > 256 {
		t.Fatalf("overlap 0.9: %d/256 defs embed a core subexpression", shared)
	}
}

// TypeNames pads like SiteIDs: lexical order equals index order.
func TestTypeNames(t *testing.T) {
	names := TypeNames(101)
	if names[0] != "Ev000" || names[100] != "Ev100" {
		t.Fatalf("padding: got %q..%q", names[0], names[100])
	}
	small := TypeNames(8)
	if small[7] != "Ev07" {
		t.Fatalf("small alphabet: got %q", small[7])
	}
}
