package workload

// Multi-tenant definition-set generation: a deterministic, seeded
// generator for the thousands-of-definitions regime the north star
// implies (millions of users each installing a handful of rules).  The
// overlap knob controls what fraction of definitions embed a
// subexpression drawn from a small shared core pool — the structural
// property the detector's hash-consed compiler exploits — so benchmarks
// can sweep 0% (every rule private) to 90%+ (heavy tenancy overlap on a
// few popular patterns).

import (
	"fmt"
	"math/rand"
)

// DefSpec is one generated definition: a unique name, an expression in
// the concrete syntax of internal/expr, and a parameter-context index
// into detector.Contexts() (kept as a plain int so this package does not
// depend on the detector).
type DefSpec struct {
	Name string
	Expr string
	Ctx  int
}

// DefsConfig describes a generated definition set.
type DefsConfig struct {
	// Count is the number of definitions.
	Count int
	// Types is the primitive alphabet expressions draw from.  Size it to
	// the definition count (e.g. Count/8) to hold per-type fan-in
	// constant across scales, or keep it small to concentrate load.
	Types []string
	// Overlap in [0,1] is the fraction of definitions whose body embeds
	// a subexpression from the shared core pool; the rest get bodies
	// derived from their own index, distinct by construction.
	Overlap float64
	// CorePool is the number of distinct shared subexpressions (default
	// 16): smaller pools mean more tenants per shared subtree.
	CorePool int
	// Contexts is the number of parameter-context indexes to draw Ctx
	// from (default 1, i.e. every definition gets Ctx 0).
	Contexts int
	// Seed fixes the generated set.
	Seed int64
}

// GenDefs generates a deterministic definition set.  Definition names
// are "Def00000"-style (zero-padded to sort lexically in index order)
// and never collide with the alphabet.  Overlapping definitions embed
// "(core OR extra)" so the core subtree is structurally shared while the
// whole body stays distinct per definition; non-overlapping definitions
// are operator/pair combinations of their own index, so two of them
// share at most a primitive leaf.
func GenDefs(cfg DefsConfig) []DefSpec {
	if cfg.Count <= 0 || len(cfg.Types) < 2 || cfg.Overlap < 0 || cfg.Overlap > 1 {
		panic(fmt.Sprintf("workload: degenerate defs config %+v", cfg))
	}
	corePool := cfg.CorePool
	if corePool <= 0 {
		corePool = 16
	}
	contexts := cfg.Contexts
	if contexts <= 0 {
		contexts = 1
	}
	r := rand.New(rand.NewSource(SubSeed(cfg.Seed, "defs")))
	P := len(cfg.Types)
	ops := []string{";", "OR", "AND"}

	// The shared core pool: distinct binary subexpressions over the
	// alphabet, indexed deterministically so pool entry k is the same
	// for every run of the same config.
	core := make([]string, corePool)
	for k := range core {
		a := cfg.Types[k%P]
		b := cfg.Types[(k/P+k+1)%P]
		core[k] = fmt.Sprintf("(%s %s %s)", a, ops[k%len(ops)], b)
	}

	width := 5
	for limit := 100000; cfg.Count > limit; limit *= 10 {
		width++
	}
	defs := make([]DefSpec, cfg.Count)
	for u := range defs {
		var body string
		if r.Float64() < cfg.Overlap {
			// Tenant rule embedding a popular shared pattern: the core
			// subtree compiles once per (context, subtree); the OR wrapper
			// stays private to the definition.
			c := core[r.Intn(corePool)]
			extra := cfg.Types[r.Intn(P)]
			body = fmt.Sprintf("(%s OR %s)", c, extra)
		} else {
			// Private rule derived from the definition index: the pair
			// (u mod P, u/P mod P) with a varying operator is distinct from
			// every other private rule while u < P².
			a := cfg.Types[u%P]
			b := cfg.Types[(u/P)%P]
			op := ops[(u/(P*P))%len(ops)]
			body = fmt.Sprintf("(%s %s %s)", a, op, b)
		}
		defs[u] = DefSpec{
			Name: fmt.Sprintf("Def%0*d", width, u),
			Expr: body,
			Ctx:  r.Intn(contexts),
		}
	}
	return defs
}

// TypeNames generates an n-type primitive alphabet ("Ev00".."EvNN"),
// zero-padded like SiteIDs so lexical order equals index order.
func TypeNames(n int) []string {
	if n <= 0 {
		panic(fmt.Sprintf("workload: TypeNames(%d)", n))
	}
	width := 2
	for limit := 100; n > limit; limit *= 10 {
		width++
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Ev%0*d", width, i)
	}
	return out
}
