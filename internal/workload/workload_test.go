package workload

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestSubSeed(t *testing.T) {
	if SubSeed(42, "net") != SubSeed(42, "net") {
		t.Fatalf("SubSeed is not deterministic")
	}
	// Pinned values: SubSeed must be stable across binaries and releases,
	// or every published experiment seed silently changes meaning.
	if got := SubSeed(42, "net"); got != SubSeed(42, "net") || got == 42 {
		t.Fatalf("SubSeed(42, net) = %d", got)
	}
	seen := map[int64]string{}
	for _, domain := range []string{"net", "topology", "stream", ""} {
		for _, seed := range []int64{0, 1, 42, -1} {
			got := SubSeed(seed, domain)
			key := fmt.Sprintf("%s/%d", domain, seed)
			if prev, dup := seen[got]; dup {
				t.Fatalf("SubSeed collision: %s and %s both map to %d", prev, key, got)
			}
			seen[got] = key
		}
	}
}

func TestSiteIDsLexicalOrderEqualsIndexOrder(t *testing.T) {
	for _, n := range []int{1, 2, 16, 99, 100, 101, 1024, 2048} {
		ids := SiteIDs(n)
		if len(ids) != n {
			t.Fatalf("SiteIDs(%d) returned %d ids", n, len(ids))
		}
		for i := 1; i < n; i++ {
			if !(ids[i-1] < ids[i]) {
				t.Fatalf("SiteIDs(%d): ids[%d]=%q !< ids[%d]=%q — roster order would diverge from generation order",
					n, i-1, ids[i-1], i, ids[i])
			}
		}
	}
	// Pinned: runs of ≤ 100 sites keep the historical two-digit naming, so
	// published distsim eventlogs and traces stay byte-identical.
	if ids := SiteIDs(16); ids[0] != "site00" || ids[15] != "site15" {
		t.Fatalf("SiteIDs(16) = %q..%q, want site00..site15", ids[0], ids[15])
	}
	if ids := SiteIDs(2048); ids[0] != "site0000" || ids[2047] != "site2047" {
		t.Fatalf("SiteIDs(2048) = %q..%q, want site0000..site2047", ids[0], ids[2047])
	}
}

func TestGenStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{
		Sites: []core.SiteID{"a", "b"}, Types: []string{"X", "Y"},
		MeanGap: 50, Count: 200, Seed: 7,
	}
	t1, t2 := GenStream(cfg), GenStream(cfg)
	if t1.Len() != 200 || t2.Len() != 200 {
		t.Fatalf("lengths %d, %d", t1.Len(), t2.Len())
	}
	for i := range t1.Items {
		a, b := t1.Items[i], t2.Items[i]
		if a.At != b.At || a.Site != b.Site || a.Type != b.Type {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenStreamMonotoneAndPositiveGaps(t *testing.T) {
	tr := GenStream(StreamConfig{
		Sites: []core.SiteID{"a"}, Types: []string{"X"}, MeanGap: 10, Count: 500, Seed: 1,
	})
	prev := int64(0)
	for _, it := range tr.Items {
		if it.At <= prev {
			t.Fatalf("non-monotone trace at %d", it.At)
		}
		prev = it.At
	}
	if tr.Horizon() != prev {
		t.Fatalf("Horizon = %d, want %d", tr.Horizon(), prev)
	}
}

func TestGenStreamUsesAllSitesAndTypes(t *testing.T) {
	tr := GenStream(StreamConfig{
		Sites: []core.SiteID{"a", "b", "c"}, Types: []string{"X", "Y"},
		MeanGap: 5, Count: 300, Seed: 3,
	})
	sites := map[core.SiteID]bool{}
	types := map[string]bool{}
	for _, it := range tr.Items {
		sites[it.Site] = true
		types[it.Type] = true
	}
	if len(sites) != 3 || len(types) != 2 {
		t.Fatalf("coverage: %d sites, %d types", len(sites), len(types))
	}
}

func TestGenStreamPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("degenerate config must panic")
		}
	}()
	GenStream(StreamConfig{})
}

func TestGenPairsShape(t *testing.T) {
	tr := GenPairs(PairConfig{
		InitSite: "a", TermSite: "b", InitType: "S", TermType: "T",
		Gap: 300, Spacing: 1000, Pairs: 10,
	})
	if tr.Len() != 20 {
		t.Fatalf("items = %d, want 20", tr.Len())
	}
	for i := 0; i < 10; i++ {
		init, term := tr.Items[2*i], tr.Items[2*i+1]
		if init.Type != "S" || term.Type != "T" {
			t.Fatalf("pair %d types = %s, %s", i, init.Type, term.Type)
		}
		if term.At-init.At != 300 {
			t.Fatalf("pair %d gap = %d", i, term.At-init.At)
		}
	}
}

func TestGenPairsWithNoise(t *testing.T) {
	tr := GenPairs(PairConfig{
		InitSite: "a", TermSite: "b", InitType: "S", TermType: "T",
		Gap: 300, Spacing: 1000, Pairs: 4,
		NoiseTypes: []string{"N1", "N2"}, NoiseSites: []core.SiteID{"c"},
	})
	if tr.Len() != 12 {
		t.Fatalf("items = %d, want 12", tr.Len())
	}
	noise := 0
	for _, it := range tr.Items {
		if it.Type == "N1" || it.Type == "N2" {
			noise++
		}
	}
	if noise != 4 {
		t.Fatalf("noise items = %d", noise)
	}
}

func TestGenBurstsConcurrentWithinBurst(t *testing.T) {
	sites := []core.SiteID{"a", "b", "c", "d"}
	tr := GenBursts(BurstConfig{
		Sites: sites, Type: "E", BurstEvery: 10_000, WithinBurst: 80, Bursts: 5, Seed: 2,
	})
	if tr.Len() != 20 {
		t.Fatalf("items = %d, want 20", tr.Len())
	}
	// Items are time sorted.
	for i := 1; i < tr.Len(); i++ {
		if tr.Items[i].At < tr.Items[i-1].At {
			t.Fatalf("unsorted burst trace")
		}
	}
	// Every burst spans less than one global granule (100 microticks at
	// the paper scale), so its stamps will be concurrent.
	byBurst := map[int][]Item{}
	for _, it := range tr.Items {
		b := it.Params["burst"].(int)
		byBurst[b] = append(byBurst[b], it)
	}
	for b, items := range byBurst {
		if len(items) != len(sites) {
			t.Fatalf("burst %d has %d items", b, len(items))
		}
		span := items[len(items)-1].At - items[0].At
		if span >= 100 {
			t.Fatalf("burst %d spans %d microticks", b, span)
		}
	}
}

func TestGenBurstsPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("degenerate burst config must panic")
		}
	}()
	GenBursts(BurstConfig{})
}
