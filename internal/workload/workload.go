// Package workload generates deterministic event traces and parameter
// sweeps for the benchmark harness.  All randomness is seeded; the same
// configuration always produces the same trace, so benchmark comparisons
// are apples-to-apples.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
)

// SubSeed derives a stream-specific seed from a root seed and a domain
// label, so independent consumers (topology, network schedule, event
// stream) draw from decorrelated generators while one -seed flag still
// reproduces the whole run.  The mixing is a fixed FNV-1a fold of the
// domain followed by a splitmix64 finalizer — stable across binaries and
// platforms, never random at package level.
func SubSeed(seed int64, domain string) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x00000100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= fnvPrime
	}
	z := uint64(seed) + h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SiteIDs generates n site identifiers ("site00".."siteNN") zero-padded
// to the width of the largest index, so the lexical SiteID order equals
// the numeric index order for any n.  That equality is load-bearing once
// membership is sealed: the roster interns IDs in sorted order, and code
// that builds topology with SiteIDs(n) gets roster index i == generation
// index i.  Width is at least 2, which keeps runs of up to 100 sites
// byte-identical with the historical "site%02d" naming.
func SiteIDs(n int) []core.SiteID {
	if n <= 0 {
		panic(fmt.Sprintf("workload: SiteIDs(%d)", n))
	}
	width := 2
	for limit := 100; n > limit; limit *= 10 {
		width++
	}
	ids := make([]core.SiteID, n)
	for i := range ids {
		ids[i] = core.SiteID(fmt.Sprintf("site%0*d", width, i))
	}
	return ids
}

// Item is one scheduled primitive event raising.
type Item struct {
	At     clock.Microticks
	Site   core.SiteID
	Type   string
	Class  event.Class
	Params event.Params
}

// Trace is a time-ordered schedule of raisings.
type Trace struct {
	Items []Item
}

// Len returns the number of items.
func (t *Trace) Len() int { return len(t.Items) }

// Horizon returns the time of the last item (0 for an empty trace).
func (t *Trace) Horizon() clock.Microticks {
	if len(t.Items) == 0 {
		return 0
	}
	return t.Items[len(t.Items)-1].At
}

// StreamConfig describes a multi-site Poisson-like event stream.
type StreamConfig struct {
	// Sites raise events round-robin weighted uniformly.
	Sites []core.SiteID
	// Types are drawn uniformly.
	Types []string
	// MeanGap is the mean inter-arrival time in microticks
	// (exponentially distributed).
	MeanGap clock.Microticks
	// Count is the number of events to schedule.
	Count int
	// Seed fixes the schedule.
	Seed int64
	// Class applies to all items (Explicit by default).
	Class event.Class
	// OmitParams leaves every Item's Params nil instead of attaching the
	// {"n": i} sequence map.  Benchmarks that raise with nil params set it
	// so schedule generation stays allocation-flat per item.
	OmitParams bool
}

// GenStream generates a Poisson-like stream: exponential inter-arrival
// times with the configured mean, uniform site and type choice.
func GenStream(cfg StreamConfig) *Trace {
	if len(cfg.Sites) == 0 || len(cfg.Types) == 0 || cfg.Count <= 0 || cfg.MeanGap <= 0 {
		panic(fmt.Sprintf("workload: degenerate stream config %+v", cfg))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Items: make([]Item, 0, cfg.Count)}
	at := clock.Microticks(0)
	for i := 0; i < cfg.Count; i++ {
		gap := clock.Microticks(math.Round(r.ExpFloat64() * float64(cfg.MeanGap)))
		if gap < 1 {
			gap = 1
		}
		at += gap
		it := Item{
			At:    at,
			Site:  cfg.Sites[r.Intn(len(cfg.Sites))],
			Type:  cfg.Types[r.Intn(len(cfg.Types))],
			Class: cfg.Class,
		}
		if !cfg.OmitParams {
			it.Params = event.Params{"n": i}
		}
		tr.Items = append(tr.Items, it)
	}
	return tr
}

// PairConfig describes an initiator/terminator workload for SEQ-style
// rules: initiators at one site followed after a configurable delay by
// terminators at another, with optional noise events interleaved.
type PairConfig struct {
	InitSite, TermSite core.SiteID
	InitType, TermType string
	// Gap is the initiator→terminator delay; chosen ≥ 2 global granules
	// to make the pair unambiguously ordered, < 2 granules to stress
	// concurrency.
	Gap clock.Microticks
	// Spacing separates successive pairs.
	Spacing clock.Microticks
	// Pairs is the number of pairs.
	Pairs int
	// NoiseTypes, if non-empty, inserts one noise event per pair midway
	// through the gap, cycling through sites and types.
	NoiseTypes []string
	NoiseSites []core.SiteID
}

// GenPairs generates the pair workload.
func GenPairs(cfg PairConfig) *Trace {
	if cfg.Pairs <= 0 || cfg.Spacing <= 0 {
		panic(fmt.Sprintf("workload: degenerate pair config %+v", cfg))
	}
	tr := &Trace{}
	at := clock.Microticks(0)
	for i := 0; i < cfg.Pairs; i++ {
		at += cfg.Spacing
		tr.Items = append(tr.Items, Item{At: at, Site: cfg.InitSite, Type: cfg.InitType,
			Params: event.Params{"pair": i}})
		if len(cfg.NoiseTypes) > 0 && len(cfg.NoiseSites) > 0 {
			tr.Items = append(tr.Items, Item{
				At:   at + cfg.Gap/2,
				Site: cfg.NoiseSites[i%len(cfg.NoiseSites)],
				Type: cfg.NoiseTypes[i%len(cfg.NoiseTypes)],
			})
		}
		tr.Items = append(tr.Items, Item{At: at + cfg.Gap, Site: cfg.TermSite, Type: cfg.TermType,
			Params: event.Params{"pair": i}})
	}
	return tr
}

// BurstConfig describes a concurrency-stress workload: bursts of events
// raised at many sites within one global granule, so their stamps are
// mutually concurrent.
type BurstConfig struct {
	Sites []core.SiteID
	Type  string
	// BurstEvery separates bursts.
	BurstEvery clock.Microticks
	// WithinBurst spreads the burst's events over at most this span
	// (keep it under one granule for guaranteed concurrency).
	WithinBurst clock.Microticks
	Bursts      int
	Seed        int64
}

// GenBursts generates the burst workload: every burst raises one event
// per site at jittered instants inside the burst window.
func GenBursts(cfg BurstConfig) *Trace {
	if len(cfg.Sites) == 0 || cfg.Bursts <= 0 || cfg.BurstEvery <= 0 {
		panic(fmt.Sprintf("workload: degenerate burst config %+v", cfg))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	at := clock.Microticks(0)
	for b := 0; b < cfg.Bursts; b++ {
		at += cfg.BurstEvery
		for _, site := range cfg.Sites {
			jitter := clock.Microticks(0)
			if cfg.WithinBurst > 0 {
				jitter = r.Int63n(cfg.WithinBurst)
			}
			tr.Items = append(tr.Items, Item{At: at + jitter, Site: site, Type: cfg.Type,
				Params: event.Params{"burst": b}})
		}
	}
	sortByTime(tr)
	return tr
}

// sortByTime stably orders items by time (sites in configuration order on
// ties, preserving generation order).
func sortByTime(tr *Trace) {
	items := tr.Items
	// Insertion sort keeps this dependency-free and stable; traces are
	// generated once per benchmark, not in hot loops.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].At < items[j-1].At; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
