package expr

// Hash-consing of event expressions.  An Interner maps structurally equal
// subtrees to the same dense NodeID, turning the AST forest of a
// definition set into a DAG: common-subexpression lookup becomes integer
// equality instead of re-serializing ctx.String()+expr.String() keys on
// every compile.  At 10k overlapping definitions the old scheme rebuilt
// O(|expr|) strings per node per compile; interning visits each node once
// and hashes a constant-size shallow record (kind tag + payload + child
// IDs), so compiling N definitions is linear in total AST size.
//
// IDs are stable for the lifetime of the Interner and dense from 0, which
// makes them usable as slice indexes in downstream caches (the detector's
// shared-node table keys on {context, NodeID}).

// NodeID identifies an interned subtree.  Two subtrees receive the same
// NodeID iff they are structurally equal (expr.Equal).
type NodeID int32

// node kind tags for shallow hashing; distinct per concrete AST type so
// (A OR B) and (A AND B) with identical children never collide on
// structure alone.
const (
	kindPrim uint64 = iota + 1
	kindOr
	kindAnd
	kindSeq
	kindAny
	kindNot
	kindAperiodic
	kindPeriodic
	kindPlus
)

// internedNode is the canonical record for one NodeID: a representative
// AST node plus the interned IDs of its children (in Children() order).
type internedNode struct {
	rep  Node
	kids []NodeID
	hash uint64
}

// Interner hash-conses expression subtrees into dense NodeIDs.  The zero
// value is not usable; call NewInterner.  Not safe for concurrent use.
type Interner struct {
	table map[uint64][]NodeID // shallow hash → candidate IDs
	nodes []internedNode      // NodeID → canonical record
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{table: make(map[uint64][]NodeID)}
}

// Len returns the number of distinct subtrees interned so far.
func (in *Interner) Len() int { return len(in.nodes) }

// Node returns the representative AST node for id.
func (in *Interner) Node(id NodeID) Node { return in.nodes[id].rep }

// Children returns the interned child IDs of id, aligned with the
// representative node's Children() order.  The returned slice is owned by
// the interner and must not be mutated.
func (in *Interner) Children(id NodeID) []NodeID { return in.nodes[id].kids }

// Intern returns the canonical ID for the subtree rooted at n, interning
// children first so equal subtrees anywhere in the forest share IDs.
func (in *Interner) Intern(n Node) NodeID {
	children := n.Children()
	var kids []NodeID
	if len(children) > 0 {
		kids = make([]NodeID, len(children))
		for i, c := range children {
			kids[i] = in.Intern(c)
		}
	}
	h := shallowHash(n, kids)
	for _, id := range in.table[h] {
		cand := &in.nodes[id]
		if shallowEqual(n, cand.rep, kids, cand.kids) {
			return id
		}
	}
	id := NodeID(len(in.nodes))
	in.nodes = append(in.nodes, internedNode{rep: n, kids: kids, hash: h})
	in.table[h] = append(in.table[h], id)
	return id
}

// FNV-1a, the repo-standard seed hash (workload.SubSeed uses the same
// constants).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v>>(8*uint(i))))
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	h = hashU64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

func hashBool(h uint64, b bool) uint64 {
	if b {
		return hashByte(h, 1)
	}
	return hashByte(h, 0)
}

// shallowHash hashes one node's own payload plus its (already canonical)
// child IDs.  Structural equality of subtrees then reduces to shallow
// equality at every level, because equal children have equal IDs.
func shallowHash(n Node, kids []NodeID) uint64 {
	h := fnvOffset
	switch x := n.(type) {
	case *Prim:
		h = hashU64(h, kindPrim)
		h = hashString(h, x.Name)
		h = hashMask(h, x.Mask)
	case *Or:
		h = hashU64(h, kindOr)
	case *And:
		h = hashU64(h, kindAnd)
	case *Seq:
		h = hashU64(h, kindSeq)
	case *Any:
		h = hashU64(h, kindAny)
		h = hashU64(h, uint64(x.M))
	case *Not:
		h = hashU64(h, kindNot)
	case *Aperiodic:
		h = hashU64(h, kindAperiodic)
		h = hashBool(h, x.Cumulative)
	case *Periodic:
		h = hashU64(h, kindPeriodic)
		h = hashU64(h, uint64(x.Period))
		h = hashBool(h, x.Cumulative)
	case *Plus:
		h = hashU64(h, kindPlus)
		h = hashU64(h, uint64(x.Delta))
	}
	for _, k := range kids {
		h = hashU64(h, uint64(k))
	}
	return h
}

// hashMask folds a mask's conditions into the hash.  Values are the
// parser's literal types (int64, float64, string, bool); float64 hashes
// by decimal rendering so 1.0 vs the int64 1 stay distinct (they are
// distinct under maskEqual's interface comparison too).
func hashMask(h uint64, m Mask) uint64 {
	h = hashU64(h, uint64(len(m)))
	for _, c := range m {
		h = hashString(h, c.Key)
		h = hashU64(h, uint64(c.Op))
		h = hashString(h, formatLiteral(c.Value))
	}
	return h
}

// shallowEqual reports equality of two nodes given that their children
// compare by canonical ID.  b is a previously interned representative, so
// matching kind plus payload plus kid IDs implies structural equality.
func shallowEqual(a, b Node, akids, bkids []NodeID) bool {
	if len(akids) != len(bkids) {
		return false
	}
	for i := range akids {
		if akids[i] != bkids[i] {
			return false
		}
	}
	switch x := a.(type) {
	case *Prim:
		y, ok := b.(*Prim)
		return ok && x.Name == y.Name && maskEqual(x.Mask, y.Mask)
	case *Or:
		_, ok := b.(*Or)
		return ok
	case *And:
		_, ok := b.(*And)
		return ok
	case *Seq:
		_, ok := b.(*Seq)
		return ok
	case *Any:
		y, ok := b.(*Any)
		return ok && x.M == y.M
	case *Not:
		_, ok := b.(*Not)
		return ok
	case *Aperiodic:
		y, ok := b.(*Aperiodic)
		return ok && x.Cumulative == y.Cumulative
	case *Periodic:
		y, ok := b.(*Periodic)
		return ok && x.Cumulative == y.Cumulative && x.Period == y.Period
	case *Plus:
		y, ok := b.(*Plus)
		return ok && x.Delta == y.Delta
	default:
		return false
	}
}
