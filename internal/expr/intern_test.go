package expr

import (
	"fmt"
	"testing"
)

func parseT(t *testing.T, s string) Node {
	t.Helper()
	n, err := Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return n
}

// Structurally equal subtrees intern to the same ID even when they come
// from different parses, and distinct subtrees never collide.
func TestInternCanonical(t *testing.T) {
	in := NewInterner()
	a := in.Intern(parseT(t, "(A ; B)"))
	b := in.Intern(parseT(t, "(A ; B)"))
	if a != b {
		t.Fatalf("equal trees interned to %d and %d", a, b)
	}
	c := in.Intern(parseT(t, "(B ; A)"))
	if c == a {
		t.Fatalf("(B ; A) shares ID %d with (A ; B)", a)
	}
	// Same children, different operator kind.
	d := in.Intern(parseT(t, "(A AND B)"))
	e := in.Intern(parseT(t, "(A OR B)"))
	if d == e || d == a {
		t.Fatalf("operator kinds collided: seq=%d and=%d or=%d", a, d, e)
	}
}

// Interning a larger tree reuses the IDs of already-interned subtrees:
// the forest becomes a DAG.
func TestInternSharesSubtrees(t *testing.T) {
	in := NewInterner()
	sub := in.Intern(parseT(t, "(A ; B)"))
	root := in.Intern(parseT(t, "((A ; B) OR C)"))
	kids := in.Children(root)
	if len(kids) != 2 || kids[0] != sub {
		t.Fatalf("root children = %v, want [%d, _]", kids, sub)
	}
	// A and B themselves are shared: total distinct nodes are
	// A, B, (A ; B), C, ((A ; B) OR C) = 5.
	if in.Len() != 5 {
		t.Fatalf("interner holds %d nodes, want 5", in.Len())
	}
}

// Payload fields that are not children (ANY m, P period, PLUS delta,
// cumulative flags, masks) must distinguish nodes.
func TestInternPayloadDistinguishes(t *testing.T) {
	in := NewInterner()
	cases := [][2]string{
		{"ANY(1, A, B)", "ANY(2, A, B)"},
		{"P(A, 5t, B)", "P(A, 6t, B)"},
		{"P(A, 5t, B)", "P*(A, 5t, B)"},
		{"PLUS(A, 5t)", "PLUS(A, 6t)"},
		{"A(A, B, C)", "A*(A, B, C)"},
		{"A[x == 1]", "A[x == 2]"},
		{"A[x == 1]", "A"},
		{"A[x == 1]", "A[x >= 1]"},
		{"A[x == 1]", "A[y == 1]"},
	}
	for _, c := range cases {
		l := in.Intern(parseT(t, c[0]))
		r := in.Intern(parseT(t, c[1]))
		if l == r {
			t.Errorf("%q and %q interned to the same ID %d", c[0], c[1], l)
		}
	}
	// Mask literal types: 1 (int64) vs 1.0 (float64) differ under
	// maskEqual, so they must differ under interning too.
	l := in.Intern(&Prim{Name: "A", Mask: Mask{{Key: "x", Op: OpEq, Value: int64(1)}}})
	r := in.Intern(&Prim{Name: "A", Mask: Mask{{Key: "x", Op: OpEq, Value: float64(1)}}})
	if l == r {
		t.Errorf("int64(1) and float64(1) mask literals interned to the same ID")
	}
}

// Interned IDs agree with expr.Equal across a generated corpus: same ID
// iff structurally equal.
func TestInternMatchesEqual(t *testing.T) {
	exprs := []string{
		"A", "B", "(A ; B)", "(A ; B)", "(B ; A)", "(A OR B)", "(A AND B)",
		"ANY(2, A, B, C)", "ANY(3, A, B, C)",
		"NOT(B)[A, C]", "NOT(A)[B, C]",
		"A(A, B, C)", "A*(A, B, C)",
		"P(A, 1s, B)", "P(A, 2s, B)", "P*(A, 1s, B)",
		"PLUS(A, 1s)", "PLUS(B, 1s)",
		"((A ; B) OR (A ; B))", "((A ; B) OR C)",
		"A[x == 1]", "A[x == 1, y == \"s\"]",
	}
	in := NewInterner()
	trees := make([]Node, len(exprs))
	ids := make([]NodeID, len(exprs))
	for i, s := range exprs {
		trees[i] = parseT(t, s)
		ids[i] = in.Intern(trees[i])
	}
	for i := range trees {
		for j := range trees {
			eq := Equal(trees[i], trees[j])
			same := ids[i] == ids[j]
			if eq != same {
				t.Errorf("%q vs %q: Equal=%v but sameID=%v", exprs[i], exprs[j], eq, same)
			}
		}
	}
	// Representative nodes round-trip: the stored rep is structurally
	// equal to what was interned.
	for i, id := range ids {
		if !Equal(in.Node(id), trees[i]) {
			t.Errorf("representative for %q is not Equal to the interned tree", exprs[i])
		}
	}
}

// Children IDs align with the representative's Children() order for
// every operator shape, including Periodic whose Period is payload.
func TestInternChildrenAlignment(t *testing.T) {
	in := NewInterner()
	for _, s := range []string{
		"(A ; B)", "ANY(2, A, B, C)", "NOT(B)[A, C]",
		"A(A, B, C)", "P(A, 1s, B)", "PLUS(A, 1s)",
	} {
		n := parseT(t, s)
		id := in.Intern(n)
		kids := in.Children(id)
		want := in.Node(id).Children()
		if len(kids) != len(want) {
			t.Fatalf("%q: %d kid IDs for %d children", s, len(kids), len(want))
		}
		for i, c := range want {
			if !Equal(in.Node(kids[i]), c) {
				t.Errorf("%q child %d: interned kid does not match Children()[%d]", s, i, i)
			}
		}
	}
}

// Interning N structurally identical definitions is O(total nodes), not
// O(N * re-serialized key length): a smoke guard that Len stays flat.
func TestInternDedupAtScale(t *testing.T) {
	in := NewInterner()
	first := in.Intern(parseT(t, "((A ; B) AND PLUS(C, 10s))"))
	for i := 0; i < 500; i++ {
		if id := in.Intern(parseT(t, "((A ; B) AND PLUS(C, 10s))")); id != first {
			t.Fatalf("iteration %d interned to %d, want %d", i, id, first)
		}
	}
	if in.Len() != 6 { // A, B, (A;B), C, PLUS(C,10s), root
		t.Fatalf("interner holds %d nodes, want 6", in.Len())
	}
	// Distinct trees still get fresh IDs after heavy dedup traffic.
	seen := map[NodeID]bool{}
	for i := 0; i < 50; i++ {
		id := in.Intern(parseT(t, fmt.Sprintf("PLUS(A, %dt)", i+1)))
		if seen[id] {
			t.Fatalf("duplicate ID %d for distinct delta %d", id, i+1)
		}
		seen[id] = true
	}
}
