// Package expr defines the Snoop composite-event specification language of
// Sentinel: an AST for the operators of Sections 3.2 and 5.3 (OR, AND,
// ANY, SEQ, NOT, A, A*, P, P*, PLUS), a lexer and recursive-descent parser
// for the textual form, a validator against an event.Registry, and a
// pretty-printer whose output re-parses to the same tree.
//
// Concrete syntax (precedence low → high; all binary operators associate
// left):
//
//	expr    := seq
//	seq     := or  ( ";"  or )*                      sequence E1 ; E2
//	or      := and ( "OR" and )*                     disjunction
//	and     := unary ( "AND" unary )*                conjunction
//	unary   := IDENT mask?
//	         | "(" expr ")"
//	         | "ANY"  "(" INT "," expr ("," expr)+ ")"
//	         | "NOT"  "(" expr ")" "[" expr "," expr "]"
//	         | "A"    "(" expr "," expr "," expr ")"
//	         | "A*"   "(" expr "," expr "," expr ")"
//	         | "P"    "(" expr "," DURATION "," expr ")"
//	         | "P*"   "(" expr "," DURATION "," expr ")"
//	         | "PLUS" "(" expr "," DURATION ")"
//
//	mask    := "[" cond ("," cond)* "]"             attribute filter
//	cond    := IDENT ("=="|"!="|"<"|"<="|">"|">=") literal
//	literal := "-"? INT | "-"? FLOAT | STRING | "true" | "false"
//
// DURATION is an integer with an optional unit suffix (t = reference
// microticks, s, m, h — the latter three assume the one-microtick-per-ms
// convention of clock.PaperConfig); a bare integer is in microticks.
package expr

import (
	"fmt"
	"strings"
)

// Node is a node of the event-expression AST.
type Node interface {
	// String renders the node in concrete syntax that re-parses to an
	// equal tree.
	String() string
	// Children returns the sub-expressions in evaluation order.
	Children() []Node
	node()
}

// Prim references a declared primitive (or named composite) event type,
// optionally restricted by an attribute mask:
// "Deposit[amount >= 1000]".
type Prim struct {
	Name string
	Mask Mask
}

func (p *Prim) String() string {
	if len(p.Mask) == 0 {
		return p.Name
	}
	return p.Name + p.Mask.String()
}
func (p *Prim) Children() []Node { return nil }
func (p *Prim) node()            {}

// Or is the disjunction E1 ∨ E2: occurs when either constituent occurs.
type Or struct {
	L, R Node
}

func (o *Or) String() string   { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }
func (o *Or) Children() []Node { return []Node{o.L, o.R} }
func (o *Or) node()            {}

// And is the conjunction E1 ∧ E2 (Section 5.3): occurs when both
// constituents have occurred, in any order.
type And struct {
	L, R Node
}

func (a *And) String() string   { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }
func (a *And) Children() []Node { return []Node{a.L, a.R} }
func (a *And) node()            {}

// Seq is the sequence operator E1 ; E2 (Section 5.3): occurs when E2
// occurs provided E1 occurred before it — in the distributed semantics,
// T(e1) < T(e2) under the composite happen-before order.
type Seq struct {
	L, R Node
}

func (s *Seq) String() string   { return fmt.Sprintf("(%s ; %s)", s.L, s.R) }
func (s *Seq) Children() []Node { return []Node{s.L, s.R} }
func (s *Seq) node()            {}

// Any is ANY(m, E1, …, En): occurs when m distinct constituent event types
// out of the n listed have occurred.
type Any struct {
	M      int
	Events []Node
}

func (a *Any) String() string {
	parts := make([]string, 0, len(a.Events)+1)
	parts = append(parts, fmt.Sprintf("%d", a.M))
	for _, e := range a.Events {
		parts = append(parts, e.String())
	}
	return fmt.Sprintf("ANY(%s)", strings.Join(parts, ", "))
}
func (a *Any) Children() []Node { return a.Events }
func (a *Any) node()            {}

// Not is NOT(E2)[E1, E3] (Section 5.3): occurs when E3 occurs after E1
// with no occurrence of E2 in the (open) interval between them.
type Not struct {
	E2 Node // the absent event
	E1 Node // interval initiator
	E3 Node // interval terminator
}

func (n *Not) String() string   { return fmt.Sprintf("NOT(%s)[%s, %s]", n.E2, n.E1, n.E3) }
func (n *Not) Children() []Node { return []Node{n.E2, n.E1, n.E3} }
func (n *Not) node()            {}

// Aperiodic is A(E1, E2, E3) or, when Cumulative, A*(E1, E2, E3)
// (Section 5.3).  A signals each occurrence of E2 inside the interval
// opened by E1 and closed by E3; A* accumulates the E2 occurrences and
// signals once when E3 occurs.
type Aperiodic struct {
	E1, E2, E3 Node
	Cumulative bool
}

func (a *Aperiodic) String() string {
	op := "A"
	if a.Cumulative {
		op = "A*"
	}
	return fmt.Sprintf("%s(%s, %s, %s)", op, a.E1, a.E2, a.E3)
}
func (a *Aperiodic) Children() []Node { return []Node{a.E1, a.E2, a.E3} }
func (a *Aperiodic) node()            {}

// Periodic is P(E1, [t], E3) or, when Cumulative, P*(E1, [t], E3): a
// temporal event that fires every Period microticks inside the interval
// opened by E1 and closed by E3; P* accumulates the tick instants and
// signals once when E3 occurs.
type Periodic struct {
	E1         Node
	Period     int64 // in reference microticks; must be positive
	E3         Node
	Cumulative bool
}

func (p *Periodic) String() string {
	op := "P"
	if p.Cumulative {
		op = "P*"
	}
	return fmt.Sprintf("%s(%s, %s, %s)", op, p.E1, FormatDuration(p.Period), p.E3)
}
func (p *Periodic) Children() []Node { return []Node{p.E1, p.E3} }
func (p *Periodic) node()            {}

// Plus is PLUS(E, t): occurs t microticks after each occurrence of E.
type Plus struct {
	E     Node
	Delta int64 // in reference microticks; must be positive
}

func (p *Plus) String() string   { return fmt.Sprintf("PLUS(%s, %s)", p.E, FormatDuration(p.Delta)) }
func (p *Plus) Children() []Node { return []Node{p.E} }
func (p *Plus) node()            {}

// Walk visits the tree rooted at n in pre-order, calling fn on each node;
// if fn returns false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Primitives returns the distinct primitive event names referenced by the
// expression, in first-appearance order.
func Primitives(n Node) []string {
	seen := make(map[string]bool)
	var out []string
	Walk(n, func(m Node) bool {
		if p, ok := m.(*Prim); ok && !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
		return true
	})
	return out
}

// Equal reports structural equality of two expressions.
func Equal(a, b Node) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case *Prim:
		y, ok := b.(*Prim)
		return ok && x.Name == y.Name && maskEqual(x.Mask, y.Mask)
	case *Or:
		y, ok := b.(*Or)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *And:
		y, ok := b.(*And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Seq:
		y, ok := b.(*Seq)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Any:
		y, ok := b.(*Any)
		if !ok || x.M != y.M || len(x.Events) != len(y.Events) {
			return false
		}
		for i := range x.Events {
			if !Equal(x.Events[i], y.Events[i]) {
				return false
			}
		}
		return true
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.E2, y.E2) && Equal(x.E1, y.E1) && Equal(x.E3, y.E3)
	case *Aperiodic:
		y, ok := b.(*Aperiodic)
		return ok && x.Cumulative == y.Cumulative &&
			Equal(x.E1, y.E1) && Equal(x.E2, y.E2) && Equal(x.E3, y.E3)
	case *Periodic:
		y, ok := b.(*Periodic)
		return ok && x.Cumulative == y.Cumulative && x.Period == y.Period &&
			Equal(x.E1, y.E1) && Equal(x.E3, y.E3)
	case *Plus:
		y, ok := b.(*Plus)
		return ok && x.Delta == y.Delta && Equal(x.E, y.E)
	default:
		return false
	}
}

// FormatDuration renders a microtick duration with the largest exact unit.
// Durations are in reference microticks (g_z); the s/m/h units assume the
// clock.PaperConfig convention of one microtick = 1ms.
func FormatDuration(d int64) string {
	switch {
	case d != 0 && d%3_600_000 == 0:
		return fmt.Sprintf("%dh", d/3_600_000)
	case d != 0 && d%60_000 == 0:
		return fmt.Sprintf("%dm", d/60_000)
	case d != 0 && d%1_000 == 0:
		return fmt.Sprintf("%ds", d/1_000)
	default:
		return fmt.Sprintf("%dt", d)
	}
}
