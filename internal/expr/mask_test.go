package expr

import (
	"testing"

	"repro/internal/event"
)

func TestParseMaskForms(t *testing.T) {
	n := MustParse(`Deposit[amount >= 1000, branch == "north", ok == true, rate < 1.5, delta != -3]`)
	p, okCast := n.(*Prim)
	if !okCast || p.Name != "Deposit" || len(p.Mask) != 5 {
		t.Fatalf("parse = %#v", n)
	}
	want := []Cond{
		{Key: "amount", Op: OpGe, Value: int64(1000)},
		{Key: "branch", Op: OpEq, Value: "north"},
		{Key: "ok", Op: OpEq, Value: true},
		{Key: "rate", Op: OpLt, Value: 1.5},
		{Key: "delta", Op: OpNe, Value: int64(-3)},
	}
	for i, c := range p.Mask {
		if c != want[i] {
			t.Errorf("cond %d = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestMaskStringRoundTrip(t *testing.T) {
	corpus := []string{
		`Deposit[amount >= 1000]`,
		`Deposit[amount >= 1000, branch == "north"] ; Withdraw[amount > 500]`,
		`NOT(Cancel[hard == true])[Open, Close]`,
		`ANY(2, A1[x == 1], B1[y != "z"], C1)`,
		`A(S[go == false], M[v <= -2], T)`,
	}
	for _, in := range corpus {
		n1 := MustParse(in)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Errorf("re-parse of %q -> %q failed: %v", in, n1.String(), err)
			continue
		}
		if !Equal(n1, n2) {
			t.Errorf("round trip changed %q: %s vs %s", in, n1, n2)
		}
	}
}

func TestMaskParseErrors(t *testing.T) {
	bad := []string{
		`E[,]`,
		`E[x]`,
		`E[x ==]`,
		`E[x == ]`,
		`E[x = 1]`,      // single '=' is not a comparison
		`E[x == "open]`, // unterminated string
		`E[x == -"s"]`,  // negated string
		`E[x == -true]`, // negated bool
		`E[x == yes]`,   // bare identifier literal
		`E[x == 1`,      // unterminated mask
		`E[1 == x]`,     // literal on the left
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestCondHolds(t *testing.T) {
	p := event.Params{"amount": 1000, "rate": 1.25, "branch": "north", "ok": true, "big": int64(5)}
	cases := []struct {
		cond Cond
		want bool
	}{
		{Cond{"amount", OpGe, int64(1000)}, true},
		{Cond{"amount", OpGt, int64(1000)}, false},
		{Cond{"amount", OpLt, int64(2000)}, true},
		{Cond{"big", OpEq, int64(5)}, true},
		{Cond{"rate", OpEq, 1.25}, true},
		{Cond{"rate", OpNe, 1.25}, false},
		{Cond{"amount", OpEq, 1000.0}, true}, // int param vs float literal
		{Cond{"branch", OpEq, "north"}, true},
		{Cond{"branch", OpLt, "o"}, true},
		{Cond{"branch", OpGt, "z"}, false},
		{Cond{"ok", OpEq, true}, true},
		{Cond{"ok", OpNe, true}, false},
		{Cond{"ok", OpLt, true}, false}, // bools are unordered
		{Cond{"missing", OpEq, int64(1)}, false},
		{Cond{"branch", OpEq, int64(3)}, false}, // type mismatch
		{Cond{"amount", OpEq, "1000"}, false},   // type mismatch
	}
	for _, c := range cases {
		if got := c.cond.Holds(p); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.cond, p, got, c.want)
		}
	}
}

func TestMaskMatchesConjunction(t *testing.T) {
	m := Mask{
		{Key: "amount", Op: OpGe, Value: int64(100)},
		{Key: "branch", Op: OpEq, Value: "north"},
	}
	if !m.Matches(event.Params{"amount": 150, "branch": "north"}) {
		t.Errorf("matching params rejected")
	}
	if m.Matches(event.Params{"amount": 150, "branch": "south"}) {
		t.Errorf("one failing condition must reject")
	}
	if (Mask{}).Matches(nil) != true {
		t.Errorf("empty mask matches everything")
	}
}

func TestMaskEqualInExprEqual(t *testing.T) {
	a := MustParse(`E[x == 1]`)
	b := MustParse(`E[x == 1]`)
	c := MustParse(`E[x == 2]`)
	d := MustParse(`E[x != 1]`)
	e := MustParse(`E`)
	if !Equal(a, b) {
		t.Errorf("identical masks must be Equal")
	}
	for _, other := range []Node{c, d, e} {
		if Equal(a, other) {
			t.Errorf("Equal(%s, %s) must be false", a, other)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d String = %q", int(op), op.String())
		}
	}
}

func TestMaskedDurationLiteral(t *testing.T) {
	// Duration suffixes in mask literals are microticks.
	n := MustParse(`E[elapsed > 5s]`)
	c := n.(*Prim).Mask[0]
	if c.Value != int64(5000) {
		t.Errorf("duration literal = %v", c.Value)
	}
}

func TestStringEscapes(t *testing.T) {
	n := MustParse(`E[name == "a\"b"]`)
	if got := n.(*Prim).Mask[0].Value; got != `a"b` {
		t.Errorf("escaped string = %q", got)
	}
}

func TestValidateRejectsOrderedBooleans(t *testing.T) {
	n := MustParse(`E[ok < true]`)
	if err := Validate(n, nil); err == nil {
		t.Fatalf("ordering a boolean must fail validation")
	}
	if err := Validate(MustParse(`E[ok == true]`), nil); err != nil {
		t.Fatalf("boolean equality must validate: %v", err)
	}
}
