package expr

import (
	"fmt"

	"repro/internal/event"
)

// Parse parses the concrete Snoop syntax documented in the package comment
// and returns the AST.
func Parse(input string) (Node, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek().describe())
	}
	return n, nil
}

// MustParse is Parse that panics on error, for tests and examples with
// literal expressions.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	input string
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().pos, Input: p.input, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, p.errorf("expected %s, found %s", k, t.describe())
	}
	return p.next(), nil
}

// parseExpr := seq (lowest precedence).
func (p *parser) parseExpr() (Node, error) {
	return p.parseSeq()
}

func (p *parser) parseSeq() (Node, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSemi {
		p.next()
		right, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		left = &Seq{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		prim := &Prim{Name: t.text}
		if p.peek().kind == tokLBracket {
			mask, err := p.parseMask()
			if err != nil {
				return nil, err
			}
			prim.Mask = mask
		}
		return prim, nil
	case tokLParen:
		p.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return n, nil
	case tokKeyword:
		switch t.text {
		case "ANY":
			return p.parseAny()
		case "NOT":
			return p.parseNot()
		case "A", "ASTAR":
			return p.parseAperiodic(t.text == "ASTAR")
		case "P", "PSTAR":
			return p.parsePeriodic(t.text == "PSTAR")
		case "PLUS":
			return p.parsePlus()
		default:
			return nil, p.errorf("operator %s cannot start an expression", t.describe())
		}
	default:
		return nil, p.errorf("expected event expression, found %s", t.describe())
	}
}

func (p *parser) parseAny() (Node, error) {
	p.next() // ANY
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	mt, err := p.expect(tokInt)
	if err != nil {
		return nil, err
	}
	var events []Node
	for p.peek().kind == tokComma {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if len(events) < 2 {
		return nil, p.errorf("ANY needs at least two constituent events, got %d", len(events))
	}
	return &Any{M: int(mt.val), Events: events}, nil
}

func (p *parser) parseNot() (Node, error) {
	p.next() // NOT
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e2, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	e1, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	e3, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return &Not{E2: e2, E1: e1, E3: e3}, nil
}

func (p *parser) parseAperiodic(cumulative bool) (Node, error) {
	p.next() // A or A*
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e1, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	e2, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	e3, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &Aperiodic{E1: e1, E2: e2, E3: e3, Cumulative: cumulative}, nil
}

func (p *parser) parseDuration() (int64, error) {
	t := p.peek()
	if t.kind != tokInt && t.kind != tokDuration {
		return 0, p.errorf("expected duration, found %s", t.describe())
	}
	p.next()
	return t.val, nil
}

func (p *parser) parsePeriodic(cumulative bool) (Node, error) {
	p.next() // P or P*
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e1, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	period, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	e3, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &Periodic{E1: e1, Period: period, E3: e3, Cumulative: cumulative}, nil
}

func (p *parser) parsePlus() (Node, error) {
	p.next() // PLUS
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	delta, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &Plus{E: e, Delta: delta}, nil
}

// parseMask parses "[" cond ("," cond)* "]" where
// cond := IDENT cmp literal.
func (p *parser) parseMask() (Mask, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	var m Mask
	for {
		key, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		cmp, err := p.expect(tokCmp)
		if err != nil {
			return nil, err
		}
		op, ok := cmpOps[cmp.text]
		if !ok {
			return nil, p.errorf("unknown comparison %q", cmp.text)
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		m = append(m, Cond{Key: key.text, Op: op, Value: lit})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return m, nil
}

var cmpOps = map[string]CmpOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

// parseLiteral parses a mask value: integer (optionally negative), float,
// quoted string, or true/false.
func (p *parser) parseLiteral() (any, error) {
	neg := false
	if p.peek().kind == tokMinus {
		p.next()
		neg = true
	}
	t := p.peek()
	switch t.kind {
	case tokInt, tokDuration:
		p.next()
		v := t.val
		if neg {
			v = -v
		}
		return v, nil
	case tokFloat:
		p.next()
		v := t.fval
		if neg {
			v = -v
		}
		return v, nil
	case tokStr:
		if neg {
			return nil, p.errorf("cannot negate a string literal")
		}
		p.next()
		return t.text, nil
	case tokIdent:
		if neg {
			return nil, p.errorf("cannot negate %q", t.text)
		}
		switch t.text {
		case "true":
			p.next()
			return true, nil
		case "false":
			p.next()
			return false, nil
		}
		return nil, p.errorf("expected literal, found %s", t.describe())
	default:
		return nil, p.errorf("expected literal, found %s", t.describe())
	}
}

// ValidationError describes a semantic problem in an expression.
type ValidationError struct {
	Node Node
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("expr: invalid expression %s: %s", e.Node, e.Msg)
}

// Validate checks the expression against the registry: every referenced
// primitive must be declared, ANY's m must satisfy 1 ≤ m ≤ n, periods and
// deltas must be positive.  It returns the first error found.
func Validate(n Node, reg *event.Registry) error {
	var firstErr error
	Walk(n, func(m Node) bool {
		if firstErr != nil {
			return false
		}
		switch x := m.(type) {
		case *Prim:
			if reg != nil && !reg.Has(x.Name) {
				firstErr = &ValidationError{Node: x, Msg: fmt.Sprintf("event type %q is not declared", x.Name)}
			}
			for _, c := range x.Mask {
				if _, isBool := c.Value.(bool); isBool && c.Op != OpEq && c.Op != OpNe {
					firstErr = &ValidationError{Node: x,
						Msg: fmt.Sprintf("mask condition %q orders a boolean; only == and != apply", c.String())}
					break
				}
			}
		case *Any:
			if x.M < 1 || x.M > len(x.Events) {
				firstErr = &ValidationError{Node: x, Msg: fmt.Sprintf("ANY m=%d out of range 1..%d", x.M, len(x.Events))}
			}
		case *Periodic:
			if x.Period <= 0 {
				firstErr = &ValidationError{Node: x, Msg: "period must be positive"}
			}
		case *Plus:
			if x.Delta <= 0 {
				firstErr = &ValidationError{Node: x, Msg: "delta must be positive"}
			}
		}
		return true
	})
	return firstErr
}
