package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/event"
)

// Event masks: attribute predicates attached to a primitive event
// reference, as in Sentinel's event parameters — e.g.
//
//	Deposit[amount >= 1000, branch == "north"] ; Withdraw
//
// A masked reference matches an occurrence only when every condition holds
// on its parameter list.  Masks filter at the graph edge, before any
// operator buffering, so non-matching occurrences cost nothing downstream.

// CmpOp is a mask comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Cond is one mask condition: key op value.
type Cond struct {
	Key   string
	Op    CmpOp
	Value any // int64, float64, string or bool
}

func (c Cond) String() string {
	return fmt.Sprintf("%s %s %s", c.Key, c.Op, formatLiteral(c.Value))
}

func formatLiteral(v any) string {
	switch x := v.(type) {
	case string:
		return strconv.Quote(x)
	case bool:
		return strconv.FormatBool(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Holds evaluates the condition against a parameter list.  A missing key
// or a type that cannot be compared yields false — masks are filters, not
// assertions.
func (c Cond) Holds(p event.Params) bool {
	v, ok := p[c.Key]
	if !ok {
		return false
	}
	switch want := c.Value.(type) {
	case int64:
		got, ok := numeric(v)
		if !ok {
			return false
		}
		return cmpFloat(got, float64(want), c.Op)
	case float64:
		got, ok := numeric(v)
		if !ok {
			return false
		}
		return cmpFloat(got, want, c.Op)
	case string:
		got, ok := v.(string)
		if !ok {
			return false
		}
		return cmpOrd(strings.Compare(got, want), c.Op)
	case bool:
		got, ok := v.(bool)
		if !ok {
			return false
		}
		switch c.Op {
		case OpEq:
			return got == want
		case OpNe:
			return got != want
		default:
			return false // booleans are not ordered
		}
	default:
		return false
	}
}

// numeric widens the engine's numeric parameter types to float64.
func numeric(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

func cmpOrd(c int, op CmpOp) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Mask is a conjunction of conditions.
type Mask []Cond

// Matches reports whether every condition holds.
func (m Mask) Matches(p event.Params) bool {
	for _, c := range m {
		if !c.Holds(p) {
			return false
		}
	}
	return true
}

func (m Mask) String() string {
	parts := make([]string, len(m))
	for i, c := range m {
		parts[i] = c.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// maskEqual reports structural equality of masks.
func maskEqual(a, b Mask) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Op != b[i].Op || a[i].Value != b[i].Value {
			return false
		}
	}
	return true
}
