package expr

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func TestParsePrimitive(t *testing.T) {
	n := MustParse("Deposit")
	p, ok := n.(*Prim)
	if !ok || p.Name != "Deposit" {
		t.Fatalf("parse = %#v, want Prim{Deposit}", n)
	}
}

func TestParseBinaryOperators(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"A1 ; B1", "(A1 ; B1)"},
		{"A1 AND B1", "(A1 AND B1)"},
		{"A1 OR B1", "(A1 OR B1)"},
		{"A1 OR B1 OR C1", "((A1 OR B1) OR C1)"}, // left assoc
		{"A1 AND B1 ; C1", "((A1 AND B1) ; C1)"}, // AND binds tighter
		{"A1 OR B1 ; C1 OR D1", "((A1 OR B1) ; (C1 OR D1))"},
		{"A1 AND B1 OR C1", "((A1 AND B1) OR C1)"}, // AND over OR
		{"(A1 ; B1) AND C1", "((A1 ; B1) AND C1)"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSingleLetterOperatorNamesAsIdentifiers(t *testing.T) {
	// "A" and "P" are operator keywords only before an argument list;
	// bare they are event identifiers.
	n := MustParse("A ; P")
	s, ok := n.(*Seq)
	if !ok {
		t.Fatalf("parse = %#v, want Seq", n)
	}
	if s.L.(*Prim).Name != "A" || s.R.(*Prim).Name != "P" {
		t.Fatalf("A/P must parse as identifiers here: %s", n)
	}
	if _, ok := MustParse("A(A, P, B)").(*Aperiodic); !ok {
		t.Fatalf("A( must still parse as the aperiodic operator")
	}
	if a, ok := MustParse("A*(A, P, B)").(*Aperiodic); !ok || !a.Cumulative {
		t.Fatalf("A*( must still parse as the cumulative aperiodic operator")
	}
	if _, err := Parse("A * B"); err == nil {
		t.Fatalf("a stray '*' is not part of the language")
	}
}

func TestDottedIdentifiers(t *testing.T) {
	n := MustParse("Stock.update ; tx.commit")
	s, ok := n.(*Seq)
	if !ok || s.L.(*Prim).Name != "Stock.update" || s.R.(*Prim).Name != "tx.commit" {
		t.Fatalf("dotted identifiers mis-parsed: %s", n)
	}
}

func TestParseAny(t *testing.T) {
	n := MustParse("ANY(2, E1, E2, E3)")
	a, ok := n.(*Any)
	if !ok || a.M != 2 || len(a.Events) != 3 {
		t.Fatalf("parse = %#v", n)
	}
}

func TestParseNot(t *testing.T) {
	n := MustParse("NOT(Mid)[Start, End]")
	x, ok := n.(*Not)
	if !ok {
		t.Fatalf("parse = %#v", n)
	}
	if x.E2.String() != "Mid" || x.E1.String() != "Start" || x.E3.String() != "End" {
		t.Fatalf("NOT roles wrong: %s", n)
	}
}

func TestParseAperiodic(t *testing.T) {
	n := MustParse("A(S, M, E)")
	a, ok := n.(*Aperiodic)
	if !ok || a.Cumulative {
		t.Fatalf("parse = %#v, want non-cumulative A", n)
	}
	n = MustParse("A*(S, M, E)")
	a, ok = n.(*Aperiodic)
	if !ok || !a.Cumulative {
		t.Fatalf("parse = %#v, want cumulative A*", n)
	}
}

func TestParsePeriodic(t *testing.T) {
	n := MustParse("P(S, 5s, E)")
	p, ok := n.(*Periodic)
	if !ok || p.Cumulative || p.Period != 5000 {
		t.Fatalf("parse = %#v, want P with period 5000", n)
	}
	n = MustParse("P*(S, 100, E)")
	p, ok = n.(*Periodic)
	if !ok || !p.Cumulative || p.Period != 100 {
		t.Fatalf("parse = %#v, want P* with period 100 microticks", n)
	}
}

func TestParsePlus(t *testing.T) {
	n := MustParse("PLUS(E, 2m)")
	p, ok := n.(*Plus)
	if !ok || p.Delta != 120000 {
		t.Fatalf("parse = %#v, want PLUS delta 120000", n)
	}
}

func TestParseDurationUnits(t *testing.T) {
	cases := map[string]int64{"7t": 7, "3s": 3000, "2m": 120000, "1h": 3600000, "42": 42}
	for in, want := range cases {
		n := MustParse("PLUS(E, " + in + ")")
		if got := n.(*Plus).Delta; got != want {
			t.Errorf("duration %q = %d, want %d", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"A1 ;",
		"(A1",
		"ANY(2, E1)",           // too few constituents
		"NOT(A1)[B1]",          // missing comma/second bound
		"PLUS(E, xyz)",         // not a duration
		"PLUS(E, 5q)",          // unknown unit
		"A1 B1",                // juxtaposition
		"OR",                   // operator cannot start
		"A1 ; ; B1",            // empty operand
		"#",                    // bad character
		"99999999999999999999", // out of range
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestSyntaxErrorIncludesPositionAndInput(t *testing.T) {
	_, err := Parse("A1 ; #")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Pos != 5 || !strings.Contains(se.Error(), "A1 ; #") {
		t.Errorf("SyntaxError = %v", se)
	}
}

// The pretty-printer output re-parses to an equal tree for a corpus of
// expressions covering every operator.
func TestStringRoundTrip(t *testing.T) {
	corpus := []string{
		"E1",
		"E1 ; E2",
		"E1 AND E2 OR E3 ; E4",
		"ANY(2, E1, E2, E3)",
		"NOT(E2)[E1, E3]",
		"A(E1, E2, E3)",
		"A*(E1, E2 ; E5, E3)",
		"P(E1, 30s, E3)",
		"P*(E1, 100t, E3)",
		"PLUS(E1 OR E2, 1h)",
		"NOT(A(E1, E2, E3))[ANY(2, X, Y), PLUS(Z, 5s)]",
	}
	for _, in := range corpus {
		n1 := MustParse(in)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Errorf("re-parse of %q -> %q failed: %v", in, n1.String(), err)
			continue
		}
		if !Equal(n1, n2) {
			t.Errorf("round trip changed %q: %s vs %s", in, n1, n2)
		}
	}
}

func TestEqualDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"E1 ; E2", "E2 ; E1"},
		{"E1 AND E2", "E1 OR E2"},
		{"ANY(2, E1, E2, E3)", "ANY(3, E1, E2, E3)"},
		{"A(E1, E2, E3)", "A*(E1, E2, E3)"},
		{"P(E1, 5s, E3)", "P(E1, 6s, E3)"},
		{"PLUS(E1, 5s)", "PLUS(E1, 6s)"},
		{"NOT(E2)[E1, E3]", "NOT(E1)[E2, E3]"},
	}
	for _, p := range pairs {
		if Equal(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("Equal(%q, %q) must be false", p[0], p[1])
		}
	}
	if !Equal(nil, nil) || Equal(MustParse("E1"), nil) {
		t.Errorf("nil handling broken")
	}
}

func TestPrimitives(t *testing.T) {
	n := MustParse("NOT(E2)[E1, E3 ; E1]")
	got := Primitives(n)
	want := []string{"E2", "E1", "E3"}
	if len(got) != len(want) {
		t.Fatalf("Primitives = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Primitives = %v, want %v", got, want)
		}
	}
}

func TestWalkPruning(t *testing.T) {
	n := MustParse("(E1 ; E2) AND E3")
	var visited []string
	Walk(n, func(m Node) bool {
		visited = append(visited, m.String())
		_, isSeq := m.(*Seq)
		return !isSeq // prune below the sequence
	})
	for _, v := range visited {
		if v == "E1" || v == "E2" {
			t.Errorf("walk visited pruned node %s", v)
		}
	}
	if len(visited) != 3 { // And, Seq, E3
		t.Errorf("visited %v, want 3 nodes", visited)
	}
}

func TestValidate(t *testing.T) {
	reg := event.NewRegistry()
	reg.MustDeclare("E1", event.Explicit)
	reg.MustDeclare("E2", event.Explicit)

	if err := Validate(MustParse("E1 ; E2"), reg); err != nil {
		t.Errorf("valid expression rejected: %v", err)
	}
	if err := Validate(MustParse("E1 ; Nope"), reg); err == nil {
		t.Errorf("undeclared event must be rejected")
	} else if !strings.Contains(err.Error(), "Nope") {
		t.Errorf("error should name the missing event: %v", err)
	}
	bad := &Any{M: 5, Events: []Node{&Prim{Name: "E1"}, &Prim{Name: "E2"}}}
	if err := Validate(bad, reg); err == nil {
		t.Errorf("ANY with m > n must be rejected")
	}
	if err := Validate(&Periodic{E1: &Prim{Name: "E1"}, Period: 0, E3: &Prim{Name: "E2"}}, reg); err == nil {
		t.Errorf("non-positive period must be rejected")
	}
	if err := Validate(&Plus{E: &Prim{Name: "E1"}, Delta: -1}, reg); err == nil {
		t.Errorf("negative delta must be rejected")
	}
	// nil registry skips declaration checks but not structural ones.
	if err := Validate(MustParse("Whatever ; Whoever"), nil); err != nil {
		t.Errorf("nil registry should skip declaration checks: %v", err)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[int64]string{
		1:       "1t",
		999:     "999t",
		1000:    "1s",
		60000:   "1m",
		3600000: "1h",
		7200000: "2h",
		61000:   "61s",
		0:       "0t",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse of garbage must panic")
		}
	}()
	MustParse("(((")
}

func TestChildrenShapes(t *testing.T) {
	if c := MustParse("P(E1, 5s, E3)").Children(); len(c) != 2 {
		t.Errorf("Periodic children = %d, want 2 (the period is not a node)", len(c))
	}
	if c := MustParse("NOT(E2)[E1, E3]").Children(); len(c) != 3 {
		t.Errorf("Not children = %d, want 3", len(c))
	}
	if c := MustParse("PLUS(E1, 5s)").Children(); len(c) != 1 {
		t.Errorf("Plus children = %d, want 1", len(c))
	}
}
