package expr

import (
	"math/rand"
	"testing"
)

// Random-AST round-trip: generate arbitrary well-formed expressions,
// render them, re-parse, and require structural equality.  This covers
// operator/precedence/mask interactions the hand-written corpus misses.

func randomLiteral(r *rand.Rand) any {
	switch r.Intn(4) {
	case 0:
		return r.Int63n(10_000) - 5_000
	case 1:
		return float64(r.Intn(100)) + 0.5
	case 2:
		return "v" + string(rune('a'+r.Intn(26)))
	default:
		return r.Intn(2) == 0
	}
}

func randomMask(r *rand.Rand) Mask {
	n := r.Intn(3)
	if n == 0 {
		return nil
	}
	m := make(Mask, n)
	for i := range m {
		v := randomLiteral(r)
		op := CmpOp(r.Intn(6))
		if _, isBool := v.(bool); isBool {
			op = []CmpOp{OpEq, OpNe}[r.Intn(2)] // booleans are unordered
		}
		m[i] = Cond{
			Key:   "k" + string(rune('a'+r.Intn(6))),
			Op:    op,
			Value: v,
		}
	}
	return m
}

func randomExpr(r *rand.Rand, depth int) Node {
	if depth <= 0 || r.Intn(4) == 0 {
		return &Prim{
			Name: "Ev" + string(rune('A'+r.Intn(6))),
			Mask: randomMask(r),
		}
	}
	switch r.Intn(9) {
	case 0:
		return &Or{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &And{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 2:
		return &Seq{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 3:
		n := 2 + r.Intn(3)
		events := make([]Node, n)
		for i := range events {
			events[i] = randomExpr(r, depth-1)
		}
		return &Any{M: 1 + r.Intn(n), Events: events}
	case 4:
		return &Not{E2: randomExpr(r, depth-1), E1: randomExpr(r, depth-1), E3: randomExpr(r, depth-1)}
	case 5:
		return &Aperiodic{E1: randomExpr(r, depth-1), E2: randomExpr(r, depth-1),
			E3: randomExpr(r, depth-1), Cumulative: r.Intn(2) == 0}
	case 6:
		return &Periodic{E1: randomExpr(r, depth-1), Period: 1 + r.Int63n(100_000),
			E3: randomExpr(r, depth-1), Cumulative: r.Intn(2) == 0}
	case 7:
		return &Plus{E: randomExpr(r, depth-1), Delta: 1 + r.Int63n(100_000)}
	default:
		return &Prim{Name: "EvZ"}
	}
}

func TestRandomASTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20_24))
	for trial := 0; trial < 3000; trial++ {
		n1 := randomExpr(r, 4)
		text := n1.String()
		n2, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: generated %q does not parse: %v", trial, text, err)
		}
		if !Equal(n1, n2) {
			t.Fatalf("trial %d: round trip changed\n  text: %s\n  back: %s", trial, text, n2)
		}
	}
}

// All generated expressions validate against a registry declaring their
// primitives (structural validity is orthogonal to round-tripping).
func TestRandomASTValidates(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		n := randomExpr(r, 3)
		if err := Validate(n, nil); err != nil {
			t.Fatalf("trial %d: generated expression invalid: %v (%s)", trial, err, n)
		}
	}
}
