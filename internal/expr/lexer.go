package expr

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates the lexical classes of the Snoop concrete syntax.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt      // bare integer
	tokDuration // integer with a unit suffix
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokKeyword // OR, AND, ANY, NOT, A, ASTAR, P, PSTAR, PLUS
	tokCmp     // == != < <= > >=
	tokStr     // double-quoted string literal
	tokFloat   // floating point literal
	tokMinus   // '-' (only in mask literals)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokDuration:
		return "duration"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokKeyword:
		return "keyword"
	case tokCmp:
		return "comparison"
	case tokStr:
		return "string"
	case tokFloat:
		return "float"
	case tokMinus:
		return "'-'"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	val  int64   // for tokInt and tokDuration (microticks)
	fval float64 // for tokFloat
	pos  int
}

// keywords are case-sensitive operator names.  "A*" and "P*" lex as the
// keywords ASTAR and PSTAR.
var keywords = map[string]string{
	"OR":   "OR",
	"AND":  "AND",
	"ANY":  "ANY",
	"NOT":  "NOT",
	"A":    "A",
	"P":    "P",
	"PLUS": "PLUS",
}

// durationUnits maps unit suffixes to microticks (see FormatDuration).
var durationUnits = map[string]int64{
	"t": 1,
	"s": 1_000,
	"m": 60_000,
	"h": 3_600_000,
}

// SyntaxError is a lexing or parsing error with its byte offset in the
// input.
type SyntaxError struct {
	Pos   int
	Input string
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == ';':
			toks = append(toks, token{kind: tokSemi, text: ";", pos: i})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokMinus, text: "-", pos: i})
			i++
		case c == '=' || c == '!':
			if i+1 >= len(input) || input[i+1] != '=' {
				return nil, &SyntaxError{Pos: i, Input: input, Msg: fmt.Sprintf("unexpected character %q", string(c))}
			}
			toks = append(toks, token{kind: tokCmp, text: input[i : i+2], pos: i})
			i += 2
		case c == '<' || c == '>':
			j := i + 1
			if j < len(input) && input[j] == '=' {
				j++
			}
			toks = append(toks, token{kind: tokCmp, text: input[i:j], pos: i})
			i = j
		case c == '"':
			start := i
			i++
			var sb []byte
			closed := false
			for i < len(input) {
				if input[i] == '\\' && i+1 < len(input) {
					sb = append(sb, input[i+1])
					i += 2
					continue
				}
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				sb = append(sb, input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Input: input, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokStr, text: string(sb), pos: start})
		case unicode.IsDigit(c):
			start := i
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			// Optional fraction makes it a float literal.
			if i < len(input) && input[i] == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])) {
				i++
				for i < len(input) && unicode.IsDigit(rune(input[i])) {
					i++
				}
				f, err := strconv.ParseFloat(input[start:i], 64)
				if err != nil {
					return nil, &SyntaxError{Pos: start, Input: input, Msg: "bad float literal"}
				}
				toks = append(toks, token{kind: tokFloat, text: input[start:i], fval: f, pos: start})
				continue
			}
			digits := input[start:i]
			n, err := strconv.ParseInt(digits, 10, 64)
			if err != nil {
				return nil, &SyntaxError{Pos: start, Input: input, Msg: "integer out of range"}
			}
			// Optional unit suffix directly attached.
			us := i
			for i < len(input) && unicode.IsLetter(rune(input[i])) {
				i++
			}
			if unit := input[us:i]; unit != "" {
				mult, ok := durationUnits[unit]
				if !ok {
					return nil, &SyntaxError{Pos: us, Input: input, Msg: fmt.Sprintf("unknown duration unit %q", unit)}
				}
				toks = append(toks, token{kind: tokDuration, text: input[start:i], val: n * mult, pos: start})
			} else {
				toks = append(toks, token{kind: tokInt, text: digits, val: n, pos: start})
			}
		case unicode.IsLetter(c) || c == '_':
			// Identifiers may contain dots after the first character, so
			// database event names like "Stock.update" and transaction
			// events like "tx.commit" are first-class.
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) ||
				input[i] == '_' || input[i] == '.') {
				i++
			}
			word := input[start:i]
			kw, isKw := keywords[word]
			// The one-letter operator names "A" and "P" are keywords only
			// when they open an argument list ("A(", "A*("); otherwise
			// they are ordinary event identifiers.
			if isKw && (kw == "A" || kw == "P") {
				j := i
				if j < len(input) && input[j] == '*' {
					j++
				}
				for j < len(input) && (input[j] == ' ' || input[j] == '\t') {
					j++
				}
				if j >= len(input) || input[j] != '(' {
					isKw = false
				}
			}
			if isKw {
				// "A*" and "P*" are distinct keywords.
				if (kw == "A" || kw == "P") && i < len(input) && input[i] == '*' {
					i++
					kw += "STAR"
				}
				toks = append(toks, token{kind: tokKeyword, text: kw, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			return nil, &SyntaxError{Pos: i, Input: input, Msg: fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// describe renders a token for error messages.
func (t token) describe() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}
