package eventlog

import (
	"bytes"
	"errors"

	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/event"
)

func occ(typ string, local int64) *event.Occurrence {
	return event.NewPrimitive(typ, event.Explicit, core.DeriveStamp("s1", local, 10),
		event.Params{"local": local})
}

func TestAppendScanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*event.Occurrence
	for i := int64(0); i < 50; i++ {
		o := occ([]string{"A", "B", "C"}[i%3], i*25)
		want = append(want, o)
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 50 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, offset, err := Scan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if offset != int64(buf.Len()) {
		t.Fatalf("clean offset %d != log length %d", offset, buf.Len())
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !got[i].Stamp.Equal(want[i].Stamp) {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], want[i])
		}
		if got[i].Params["local"] != want[i].Stamp[0].Local {
			t.Fatalf("record %d params lost: %v", i, got[i].Params)
		}
	}
}

func TestTornTailDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := int64(0); i < 10; i++ {
		if err := w.Append(occ("A", i*25)); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.Len()
	if err := w.Append(occ("A", 999)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-record: drop the last 3 bytes.
	torn := buf.Bytes()[:buf.Len()-3]

	got, offset, err := Scan(bytes.NewReader(torn))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d records, want 10", len(got))
	}
	if offset != int64(whole) {
		t.Fatalf("clean offset %d, want %d (truncation point)", offset, whole)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := int64(0); i < 5; i++ {
		if err := w.Append(occ("A", i*25)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte in the middle of the log.
	data := append([]byte{}, buf.Bytes()...)
	data[len(data)/2] ^= 0xFF
	_, _, err := Scan(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
		t.Fatalf("corruption not reported: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	data := []byte{0x00, 0x01, 0x02}
	if _, _, err := Scan(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic = %v", err)
	}
}

func TestEmptyLog(t *testing.T) {
	got, offset, err := Scan(bytes.NewReader(nil))
	if err != nil || len(got) != 0 || offset != 0 {
		t.Fatalf("empty log: %v %d %v", got, offset, err)
	}
}

// The headline recovery property: replaying the log through a fresh
// detector reconstructs both the detections and the internal state.
func TestRecoveryReconstructsState(t *testing.T) {
	newDetector := func() (*detector.Detector, *int) {
		reg := event.NewRegistry()
		for _, n := range []string{"A", "B", "C"} {
			reg.MustDeclare(n, event.Explicit)
		}
		d := detector.New("s1", reg, nil)
		d.MustDefine("X", "(A ; B) ; C", detector.Chronicle)
		n := 0
		d.Subscribe("X", func(*event.Occurrence) { n++ })
		return d, &n
	}

	// "Production" run: publish and log 60 random events.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	prod, prodDetections := newDetector()
	r := rand.New(rand.NewSource(5))
	for i := int64(0); i < 60; i++ {
		o := occ([]string{"A", "B", "C"}[r.Intn(3)], i*25)
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
		prod.Publish(o)
	}

	// "Crash and recover": fresh detector, replay the log.
	rec, recDetections := newDetector()
	n, err := Replay(bytes.NewReader(buf.Bytes()), rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("replayed %d, want 60", n)
	}
	if *recDetections != *prodDetections {
		t.Fatalf("recovered detections %d != production %d", *recDetections, *prodDetections)
	}
	if rec.StateSize() != prod.StateSize() {
		t.Fatalf("recovered state %d != production %d", rec.StateSize(), prod.StateSize())
	}
	// And the recovered engine continues identically.
	prod.Publish(occ("C", 10_000))
	rec.Publish(occ("C", 10_000))
	if *recDetections != *prodDetections {
		t.Fatalf("post-recovery divergence: %d vs %d", *recDetections, *prodDetections)
	}
}

func TestReplayWithTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := int64(0); i < 4; i++ {
		if err := w.Append(occ("A", i*25)); err != nil {
			t.Fatal(err)
		}
	}
	torn := buf.Bytes()[:buf.Len()-2]
	reg := event.NewRegistry()
	reg.MustDeclare("A", event.Explicit)
	d := detector.New("s1", reg, nil)
	n, err := Replay(bytes.NewReader(torn), d)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records before the tear, want 3", n)
	}
}

func TestFileBackedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for i := int64(0); i < 20; i++ {
		if err := w.Append(occ("A", i*25)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, _, err := Scan(f2)
	if err != nil || len(got) != 20 {
		t.Fatalf("file scan: %d records, %v", len(got), err)
	}
}

func TestTruncateAtCleanOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for i := int64(0); i < 8; i++ {
		if err := w.Append(occ("A", i*25)); err != nil {
			t.Fatal(err)
		}
	}
	// Torn write at the tail.
	if _, err := f.Write([]byte{magic, 0x55, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, clean, scanErr := Scan(bytes.NewReader(data))
	if !errors.Is(scanErr, ErrTorn) {
		t.Fatalf("scan = %v, want ErrTorn", scanErr)
	}
	if err := os.Truncate(path, clean); err != nil {
		t.Fatal(err)
	}
	// After truncation the log is clean.
	data, _ = os.ReadFile(path)
	got, _, err := Scan(bytes.NewReader(data))
	if err != nil || len(got) != 8 {
		t.Fatalf("after truncate: %d records, %v", len(got), err)
	}
}

func TestUnencodableOccurrenceRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bad := event.NewPrimitive("A", event.Explicit, core.DeriveStamp("s1", 1, 10),
		event.Params{"ch": make(chan int)})
	if err := w.Append(bad); err == nil {
		t.Fatalf("unencodable occurrence accepted")
	}
	if w.Count() != 0 {
		t.Fatalf("failed append counted")
	}
}
